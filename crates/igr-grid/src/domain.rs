//! Physical geometry of a rectilinear block.

use crate::shape::{Axis, GridShape};

/// Physical extents of a (sub)domain and the cell geometry derived from them.
///
/// Grids are uniform rectilinear, as in the paper's production runs (3.3 T-cell
/// Super Heavy case uses a rectilinear grid). Cell `i` along x is centered at
/// `x0 + (i + 1/2) dx`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Domain {
    pub lo: [f64; 3],
    pub hi: [f64; 3],
    pub shape: GridShape,
    /// Explicit cell sizes. Stored rather than derived so a decomposed
    /// block can carry *exactly* the global grid's Δx (deriving it from the
    /// block extents would differ in the last ulp and break bitwise
    /// single-rank/decomposed equality).
    dx: [f64; 3],
}

impl Domain {
    pub fn new(lo: [f64; 3], hi: [f64; 3], shape: GridShape) -> Self {
        for d in 0..3 {
            assert!(
                hi[d] > lo[d],
                "domain must have positive extent on axis {d}"
            );
        }
        let dx = [
            (hi[0] - lo[0]) / shape.nx as f64,
            (hi[1] - lo[1]) / shape.ny as f64,
            (hi[2] - lo[2]) / shape.nz as f64,
        ];
        Domain { lo, hi, shape, dx }
    }

    /// Build from an origin and exact cell sizes (decomposed blocks).
    pub fn from_dx(lo: [f64; 3], dx: [f64; 3], shape: GridShape) -> Self {
        for d in 0..3 {
            assert!(dx[d] > 0.0, "cell size must be positive on axis {d}");
        }
        let n = [shape.nx as f64, shape.ny as f64, shape.nz as f64];
        Domain {
            lo,
            hi: [
                lo[0] + n[0] * dx[0],
                lo[1] + n[1] * dx[1],
                lo[2] + n[2] * dx[2],
            ],
            shape,
            dx,
        }
    }

    /// Unit cube with the given shape — convenient for tests and 1-D demos.
    pub fn unit(shape: GridShape) -> Self {
        Domain::new([0.0; 3], [1.0, 1.0, 1.0], shape)
    }

    /// Physical length along an axis.
    #[inline]
    pub fn length(&self, axis: Axis) -> f64 {
        self.hi[axis.dim()] - self.lo[axis.dim()]
    }

    /// Cell size along an axis.
    #[inline]
    pub fn dx(&self, axis: Axis) -> f64 {
        self.dx[axis.dim()]
    }

    /// Smallest active-axis cell size (enters the CFL condition).
    pub fn dx_min(&self) -> f64 {
        self.shape
            .active_axes()
            .map(|a| self.dx(a))
            .fold(f64::INFINITY, f64::min)
    }

    /// Largest active-axis cell size (enters `α = α_f · Δx_max²`).
    pub fn dx_max(&self) -> f64 {
        self.shape
            .active_axes()
            .map(|a| self.dx(a))
            .fold(0.0, f64::max)
    }

    /// Center coordinate of (possibly ghost) cell index `i` along `axis`.
    #[inline]
    pub fn center(&self, axis: Axis, i: i32) -> f64 {
        self.lo[axis.dim()] + (i as f64 + 0.5) * self.dx(axis)
    }

    /// Center of cell `(i, j, k)`.
    #[inline]
    pub fn cell_center(&self, i: i32, j: i32, k: i32) -> [f64; 3] {
        [
            self.center(Axis::X, i),
            self.center(Axis::Y, j),
            self.center(Axis::Z, k),
        ]
    }

    /// Cell volume.
    #[inline]
    pub fn cell_volume(&self) -> f64 {
        self.dx(Axis::X) * self.dx(Axis::Y) * self.dx(Axis::Z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_geometry() {
        let d = Domain::new([0.0, 0.0, 0.0], [2.0, 1.0, 1.0], GridShape::new(4, 2, 1, 2));
        assert_eq!(d.dx(Axis::X), 0.5);
        assert_eq!(d.dx(Axis::Y), 0.5);
        assert_eq!(d.center(Axis::X, 0), 0.25);
        assert_eq!(d.center(Axis::X, 3), 1.75);
        assert_eq!(d.center(Axis::X, -1), -0.25); // ghost center extrapolates
        assert_eq!(d.cell_volume(), 0.25);
    }

    #[test]
    fn dx_min_max_skip_degenerate_axes() {
        // z has extent 1 and dz = 1.0 but is inactive, so it must not pollute
        // the CFL or alpha scales.
        let d = Domain::new([0.0; 3], [1.0, 2.0, 1.0], GridShape::new(10, 10, 1, 2));
        assert!((d.dx_min() - 0.1).abs() < 1e-15);
        assert!((d.dx_max() - 0.2).abs() < 1e-15);
    }

    #[test]
    fn unit_domain() {
        let d = Domain::unit(GridShape::new(8, 8, 8, 3));
        assert_eq!(d.length(Axis::Z), 1.0);
        assert_eq!(d.dx(Axis::Z), 0.125);
    }

    #[test]
    #[should_panic(expected = "positive extent")]
    fn inverted_domain_rejected() {
        Domain::new([1.0, 0.0, 0.0], [0.0, 1.0, 1.0], GridShape::new(2, 2, 2, 1));
    }
}
