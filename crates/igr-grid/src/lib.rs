//! Structured rectilinear grid substrate.
//!
//! The paper's solver (MFC) operates on rectilinear grids with ghost (halo)
//! layers for the reconstruction stencil and MPI exchange. This crate provides
//! that substrate:
//!
//! * [`GridShape`] — index space with ghost layers, x-fastest linear layout;
//! * [`Domain`] — physical extents and cell geometry (`Δx`, centers);
//! * [`Field`] — a scalar field with storage precision decoupled from compute
//!   precision (via `igr-prec`), plus halo slab pack/unpack;
//! * [`Decomp`] — 3-D block decomposition of a global grid over ranks
//!   (the `MPI_Dims_create`-style factorization used for scaling runs);
//! * [`Axis`] — the dimension-splitting direction tag used throughout the
//!   solver stack.

mod decomp;
mod domain;
mod field;
mod shape;

pub use decomp::{Decomp, SubDomain};
pub use domain::Domain;
pub use field::Field;
pub use shape::{Axis, GridShape};
