//! 3-D block decomposition of a global grid over ranks.
//!
//! The paper arranges ranks "in a rectilinear configuration" (§7.2); the weak
//! and strong scaling experiments use blocks chosen so "all MPI communication
//! directions are touched". This module provides the `MPI_Dims_create`-style
//! factorization, per-rank subdomain extents, and neighbor lookup that both
//! the threaded runs (`igr-comm`) and the performance model (`igr-perf`) use.

use crate::domain::Domain;
use crate::shape::{Axis, GridShape};

/// A rank's block in a decomposed global grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SubDomain {
    /// Cartesian coordinates of this block in the rank grid.
    pub coords: [usize; 3],
    /// Global index of the first interior cell along each axis.
    pub offset: [usize; 3],
    /// Interior extents of the block.
    pub extent: [usize; 3],
}

/// A 3-D block decomposition: `dims[0] x dims[1] x dims[2]` ranks covering a
/// global `n[0] x n[1] x n[2]` grid. Remainder cells are spread over the
/// leading blocks on each axis, so extents differ by at most one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Decomp {
    pub global: [usize; 3],
    pub dims: [usize; 3],
    pub periodic: [bool; 3],
}

impl Decomp {
    /// Build a decomposition with explicit rank dims.
    pub fn with_dims(global: [usize; 3], dims: [usize; 3], periodic: [bool; 3]) -> Self {
        for d in 0..3 {
            assert!(dims[d] >= 1, "rank dims must be positive");
            assert!(
                global[d] >= dims[d],
                "axis {d}: cannot split {} cells over {} ranks",
                global[d],
                dims[d]
            );
        }
        Decomp {
            global,
            dims,
            periodic,
        }
    }

    /// Factor `n_ranks` into near-cubic dims, never splitting a degenerate
    /// axis (extent 1). Mirrors `MPI_Dims_create` but weights by grid extent
    /// so slab-like grids get slab-like rank layouts.
    pub fn auto(global: [usize; 3], n_ranks: usize, periodic: [bool; 3]) -> Self {
        assert!(n_ranks >= 1);
        let mut dims = [1usize; 3];
        // Greedily assign prime factors (largest first) to the axis with the
        // largest cells-per-rank ratio that can still be split.
        let mut factors = prime_factors(n_ranks);
        factors.sort_unstable_by(|a, b| b.cmp(a));
        for f in factors {
            let mut best: Option<usize> = None;
            let mut best_ratio = 0.0f64;
            for d in 0..3 {
                let new_dim = dims[d] * f;
                if global[d] >= new_dim {
                    let ratio = global[d] as f64 / dims[d] as f64;
                    if ratio > best_ratio {
                        best_ratio = ratio;
                        best = Some(d);
                    }
                }
            }
            let d =
                best.unwrap_or_else(|| panic!("cannot decompose {global:?} over {n_ranks} ranks"));
            dims[d] *= f;
        }
        Decomp::with_dims(global, dims, periodic)
    }

    pub fn n_ranks(&self) -> usize {
        self.dims[0] * self.dims[1] * self.dims[2]
    }

    /// Rank id from Cartesian coordinates (x-fastest, like our cell layout).
    pub fn rank_of(&self, coords: [usize; 3]) -> usize {
        debug_assert!(
            coords[0] < self.dims[0] && coords[1] < self.dims[1] && coords[2] < self.dims[2]
        );
        (coords[2] * self.dims[1] + coords[1]) * self.dims[0] + coords[0]
    }

    /// Cartesian coordinates of a rank id.
    pub fn coords_of(&self, rank: usize) -> [usize; 3] {
        debug_assert!(rank < self.n_ranks());
        [
            rank % self.dims[0],
            (rank / self.dims[0]) % self.dims[1],
            rank / (self.dims[0] * self.dims[1]),
        ]
    }

    /// The block owned by `rank`.
    pub fn subdomain(&self, rank: usize) -> SubDomain {
        let coords = self.coords_of(rank);
        let mut offset = [0usize; 3];
        let mut extent = [0usize; 3];
        for d in 0..3 {
            let (o, e) = split_axis(self.global[d], self.dims[d], coords[d]);
            offset[d] = o;
            extent[d] = e;
        }
        SubDomain {
            coords,
            offset,
            extent,
        }
    }

    /// Neighbor rank across the `side` face of `axis` (`side = ±1`), or
    /// `None` at a non-periodic physical boundary.
    pub fn neighbor(&self, rank: usize, axis: Axis, side: i32) -> Option<usize> {
        let d = axis.dim();
        let mut c = self.coords_of(rank);
        let n = self.dims[d] as i32;
        let pos = c[d] as i32 + side.signum();
        let wrapped = if pos < 0 || pos >= n {
            if !self.periodic[d] {
                return None;
            }
            (pos + n) % n
        } else {
            pos
        };
        // A periodic axis with a single rank is its own neighbor.
        c[d] = wrapped as usize;
        Some(self.rank_of(c))
    }

    /// Local grid shape (with ghosts) for `rank`.
    pub fn local_shape(&self, rank: usize, ng: usize) -> GridShape {
        let sd = self.subdomain(rank);
        GridShape::new(sd.extent[0], sd.extent[1], sd.extent[2], ng)
    }

    /// Local physical domain for `rank` given the global domain box. The
    /// block carries the *exact* global Δx so decomposed kernels see
    /// bitwise-identical geometry.
    pub fn local_domain(&self, rank: usize, global_domain: &Domain, ng: usize) -> Domain {
        let sd = self.subdomain(rank);
        let mut lo = [0.0; 3];
        let mut dx = [0.0; 3];
        for (d, axis) in Axis::ALL.iter().enumerate() {
            dx[d] = global_domain.dx(*axis);
            lo[d] = global_domain.lo[d] + sd.offset[d] as f64 * dx[d];
        }
        Domain::from_dx(lo, dx, self.local_shape(rank, ng))
    }

    /// Halo cells exchanged per step per rank (both sides, all active axes),
    /// for `depth` ghost layers — the communication-volume input to the
    /// scaling model.
    pub fn halo_cells(&self, rank: usize, depth: usize) -> usize {
        let sd = self.subdomain(rank);
        let mut total = 0;
        for (d, axis) in Axis::ALL.iter().enumerate() {
            let face = sd.extent[(d + 1) % 3] * sd.extent[(d + 2) % 3];
            for side in [-1, 1] {
                if self.neighbor(rank, *axis, side).is_some() {
                    total += face * depth;
                }
            }
        }
        total
    }
}

/// Split `n` cells over `parts` blocks; block `idx` gets `(offset, extent)`.
fn split_axis(n: usize, parts: usize, idx: usize) -> (usize, usize) {
    let base = n / parts;
    let rem = n % parts;
    let extent = base + usize::from(idx < rem);
    let offset = idx * base + idx.min(rem);
    (offset, extent)
}

fn prime_factors(mut n: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut p = 2;
    while p * p <= n {
        while n % p == 0 {
            out.push(p);
            n /= p;
        }
        p += 1;
    }
    if n > 1 {
        out.push(n);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_axis_covers_exactly() {
        for n in [7usize, 8, 100, 1] {
            for parts in 1..=n {
                let mut covered = 0;
                let mut next = 0;
                for idx in 0..parts {
                    let (o, e) = split_axis(n, parts, idx);
                    assert_eq!(o, next, "blocks must be contiguous");
                    assert!(e >= n / parts && e <= n / parts + 1);
                    covered += e;
                    next = o + e;
                }
                assert_eq!(covered, n);
            }
        }
    }

    #[test]
    fn auto_never_splits_degenerate_axes() {
        let d = Decomp::auto([1024, 512, 1], 8, [false; 3]);
        assert_eq!(d.dims[2], 1);
        assert_eq!(d.n_ranks(), 8);
        let d1 = Decomp::auto([4096, 1, 1], 4, [false; 3]);
        assert_eq!(d1.dims, [4, 1, 1]);
    }

    #[test]
    fn auto_prefers_near_cubic_for_cubic_grids() {
        let d = Decomp::auto([256, 256, 256], 8, [true; 3]);
        assert_eq!(d.dims, [2, 2, 2]);
        let d64 = Decomp::auto([256, 256, 256], 64, [true; 3]);
        assert_eq!(d64.dims, [4, 4, 4]);
    }

    #[test]
    fn rank_coords_roundtrip() {
        let d = Decomp::with_dims([64, 64, 64], [4, 2, 3], [false; 3]);
        for r in 0..d.n_ranks() {
            assert_eq!(d.rank_of(d.coords_of(r)), r);
        }
    }

    #[test]
    fn subdomains_tile_the_global_grid() {
        let d = Decomp::with_dims([65, 34, 17], [4, 3, 2], [false; 3]);
        let mut counted = 0usize;
        for r in 0..d.n_ranks() {
            let sd = d.subdomain(r);
            counted += sd.extent[0] * sd.extent[1] * sd.extent[2];
            for ax in 0..3 {
                assert!(sd.offset[ax] + sd.extent[ax] <= d.global[ax]);
            }
        }
        assert_eq!(counted, 65 * 34 * 17);
    }

    #[test]
    fn neighbors_respect_periodicity() {
        let d = Decomp::with_dims([32, 32, 32], [2, 2, 2], [true, false, true]);
        let r0 = d.rank_of([0, 0, 0]);
        // x periodic: low neighbor wraps to the high block.
        assert_eq!(d.neighbor(r0, Axis::X, -1), Some(d.rank_of([1, 0, 0])));
        // y not periodic: low neighbor is the physical boundary.
        assert_eq!(d.neighbor(r0, Axis::Y, -1), None);
        assert_eq!(d.neighbor(r0, Axis::Y, 1), Some(d.rank_of([0, 1, 0])));
        // z periodic with 2 ranks: both sides resolve to the other block.
        assert_eq!(d.neighbor(r0, Axis::Z, -1), Some(d.rank_of([0, 0, 1])));
    }

    #[test]
    fn single_rank_periodic_axis_is_self_neighbor() {
        let d = Decomp::with_dims([16, 16, 16], [1, 1, 1], [true; 3]);
        assert_eq!(d.neighbor(0, Axis::X, 1), Some(0));
        assert_eq!(d.neighbor(0, Axis::X, -1), Some(0));
    }

    #[test]
    fn local_domain_geometry_is_consistent() {
        let global = Domain::new([0.0; 3], [4.0, 2.0, 1.0], GridShape::new(64, 32, 16, 3));
        let d = Decomp::with_dims([64, 32, 16], [2, 2, 1], [false; 3]);
        // Sub-block dx must equal global dx.
        for r in 0..d.n_ranks() {
            let ld = d.local_domain(r, &global, 3);
            assert!((ld.dx(Axis::X) - global.dx(Axis::X)).abs() < 1e-14);
            assert!((ld.dx(Axis::Y) - global.dx(Axis::Y)).abs() < 1e-14);
        }
        // Blocks abut: rank 0's hi-x == rank 1's lo-x.
        let d0 = d.local_domain(d.rank_of([0, 0, 0]), &global, 3);
        let d1 = d.local_domain(d.rank_of([1, 0, 0]), &global, 3);
        assert!((d0.hi[0] - d1.lo[0]).abs() < 1e-14);
    }

    #[test]
    fn halo_cells_count_faces() {
        // 2x1x1 ranks, non-periodic: each rank has one x-neighbor.
        let d = Decomp::with_dims([8, 4, 4], [2, 1, 1], [false; 3]);
        assert_eq!(d.halo_cells(0, 3), 3 * 4 * 4);
        // Fully periodic 2x2x2 on a cube: 6 faces each.
        let dp = Decomp::with_dims([8, 8, 8], [2, 2, 2], [true; 3]);
        assert_eq!(dp.halo_cells(0, 3), 6 * 3 * 4 * 4);
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn overdecomposition_rejected() {
        Decomp::with_dims([4, 4, 4], [8, 1, 1], [false; 3]);
    }
}
