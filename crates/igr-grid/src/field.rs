//! Scalar fields on a grid block, with halo slab extraction.

use crate::shape::{Axis, GridShape};
use igr_prec::{MixedVec, Real, Storage};

/// A scalar field over a [`GridShape`] (interior + ghosts), stored in
/// precision `S` and accessed in compute precision `R`.
///
/// The persistent solver state (`17 N` scalars per the paper's §5.2) is held
/// in `Field`s; all kernel intermediates are thread-local compute-precision
/// temporaries and never materialize as fields.
#[derive(Clone)]
pub struct Field<R: Real, S: Storage<R>> {
    data: MixedVec<R, S>,
    shape: GridShape,
}

impl<R: Real, S: Storage<R>> std::fmt::Debug for Field<R, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Field")
            .field("shape", &self.shape)
            .field("storage_bytes", &self.storage_bytes())
            .finish()
    }
}

impl<R: Real, S: Storage<R>> Field<R, S> {
    pub fn zeros(shape: GridShape) -> Self {
        Field {
            data: MixedVec::zeros(shape.n_total()),
            shape,
        }
    }

    #[inline]
    pub fn shape(&self) -> GridShape {
        self.shape
    }

    /// Storage bytes (memory-footprint accounting).
    pub fn storage_bytes(&self) -> usize {
        self.data.storage_bytes()
    }

    /// Value at (possibly ghost) cell `(i, j, k)`.
    #[inline(always)]
    pub fn at(&self, i: i32, j: i32, k: i32) -> R {
        self.data.get(self.shape.idx(i, j, k))
    }

    #[inline(always)]
    pub fn set(&mut self, i: i32, j: i32, k: i32, x: R) {
        self.data.set(self.shape.idx(i, j, k), x);
    }

    /// Value at a linear index into the stored block.
    #[inline(always)]
    pub fn at_lin(&self, lin: usize) -> R {
        self.data.get(lin)
    }

    #[inline(always)]
    pub fn set_lin(&mut self, lin: usize, x: R) {
        self.data.set(lin, x);
    }

    pub fn fill(&mut self, x: R) {
        self.data.fill(x);
    }

    /// Raw packed storage (e.g. for chunked parallel writes).
    #[inline]
    pub fn packed(&self) -> &[S::Packed] {
        self.data.packed()
    }

    #[inline]
    pub fn packed_mut(&mut self) -> &mut [S::Packed] {
        self.data.packed_mut()
    }

    /// Apply `f(i, j, k, x) -> x'` to every interior cell (serial).
    pub fn map_interior(&mut self, mut f: impl FnMut(i32, i32, i32, R) -> R) {
        let shape = self.shape;
        for k in 0..shape.nz as i32 {
            for j in 0..shape.ny as i32 {
                for i in 0..shape.nx as i32 {
                    let lin = shape.idx(i, j, k);
                    let x = self.data.get(lin);
                    self.data.set(lin, f(i, j, k, x));
                }
            }
        }
    }

    /// Sum of `f(x)` over interior cells in f64 (for conservation checks).
    ///
    /// Iterates contiguous interior rows as slices (one ghost-offset
    /// computation per row, not per cell); the accumulation order is the
    /// fixed x-fastest interior order, so results are bit-stable.
    pub fn sum_interior(&self, mut f: impl FnMut(R) -> f64) -> f64 {
        let nx = self.shape.nx;
        let packed = self.data.packed();
        let mut acc = 0.0f64;
        for start in self.shape.interior_row_starts() {
            for &p in &packed[start..start + nx] {
                acc += f(S::unpack(p));
            }
        }
        acc
    }

    /// Max of `f(x)` over interior cells (same row-slice iteration and fixed
    /// evaluation order as [`Field::sum_interior`]).
    pub fn max_interior(&self, mut f: impl FnMut(R) -> f64) -> f64 {
        let nx = self.shape.nx;
        let packed = self.data.packed();
        let mut acc = f64::NEG_INFINITY;
        for start in self.shape.interior_row_starts() {
            for &p in &packed[start..start + nx] {
                acc = acc.max(f(S::unpack(p)));
            }
        }
        acc
    }

    /// First non-finite interior value, if any, in x-fastest interior order
    /// (instability detection).
    ///
    /// Same row-slice iteration as [`Field::sum_interior`], but the common
    /// (healthy) case is branch-free: `x * 0.0` is `0.0` for every finite
    /// `x` and NaN for NaN/±inf, so a whole row reduces to one accumulator
    /// check with no per-cell compare — and, unlike summing the values
    /// themselves, the accumulator cannot overflow into a false positive.
    /// Only a poisoned row pays the per-cell search for the offending cell.
    /// Recovery-armed runs scan every field at every snapshot boundary, so
    /// this sits on the steady-state hot path, not just the failure path.
    pub fn find_non_finite_interior(&self) -> Option<(i32, i32, i32)> {
        let nx = self.shape.nx;
        let packed = self.data.packed();
        for start in self.shape.interior_row_starts() {
            let row = &packed[start..start + nx];
            let mut acc = 0.0f64;
            for &p in row {
                acc += S::unpack(p).to_f64() * 0.0;
            }
            if acc != 0.0 {
                for (off, &p) in row.iter().enumerate() {
                    if !S::unpack(p).is_finite() {
                        return Some(self.shape.coords(start + off));
                    }
                }
            }
        }
        None
    }

    /// Number of cells in one halo slab of `depth` layers on `axis`.
    pub fn slab_len(&self, axis: Axis, depth: usize) -> usize {
        let s = self.shape;
        depth
            * match axis {
                Axis::X => s.ny * s.nz,
                Axis::Y => s.nx * s.nz,
                Axis::Z => s.nx * s.ny,
            }
    }

    /// Pack the `depth` interior layers adjacent to the `side` boundary of
    /// `axis` into `buf` (send buffer for a halo exchange). `side = -1` packs
    /// layers `0..depth`, `side = +1` packs layers `n-depth..n`.
    pub fn pack_slab(&self, axis: Axis, side: i32, depth: usize, buf: &mut Vec<R>) {
        buf.clear();
        let s = self.shape;
        let n = s.extent(axis) as i32;
        let range = if side < 0 {
            0..depth as i32
        } else {
            (n - depth as i32)..n
        };
        self.for_slab(axis, range, |x| buf.push(x));
    }

    /// Unpack a received halo buffer into the `depth` ghost layers beyond the
    /// `side` boundary of `axis` (inverse of the *opposite* side's pack).
    pub fn unpack_slab(&mut self, axis: Axis, side: i32, depth: usize, buf: &[R]) {
        let s = self.shape;
        let n = s.extent(axis) as i32;
        let range = if side < 0 {
            -(depth as i32)..0
        } else {
            n..(n + depth as i32)
        };
        let mut it = buf.iter();
        let shape = s;
        // Iteration order must match pack_slab's.
        match axis {
            Axis::X => {
                for k in 0..shape.nz as i32 {
                    for j in 0..shape.ny as i32 {
                        for i in range.clone() {
                            self.data.set(
                                shape.idx(i, j, k),
                                *it.next().expect("halo buffer too short"),
                            );
                        }
                    }
                }
            }
            Axis::Y => {
                for k in 0..shape.nz as i32 {
                    for j in range.clone() {
                        for i in 0..shape.nx as i32 {
                            self.data.set(
                                shape.idx(i, j, k),
                                *it.next().expect("halo buffer too short"),
                            );
                        }
                    }
                }
            }
            Axis::Z => {
                for k in range.clone() {
                    for j in 0..shape.ny as i32 {
                        for i in 0..shape.nx as i32 {
                            self.data.set(
                                shape.idx(i, j, k),
                                *it.next().expect("halo buffer too short"),
                            );
                        }
                    }
                }
            }
        }
        assert!(it.next().is_none(), "halo buffer too long");
    }

    /// Cells in one *extended* halo slab: `depth` layers along `axis` over
    /// the full stored cross-section (transverse ghosts included). Halo
    /// exchanges use extended slabs so edge/corner ghosts propagate across
    /// ranks exactly like the sequential axis-by-axis BC fill.
    pub fn slab_len_ext(&self, axis: Axis, depth: usize) -> usize {
        let s = self.shape;
        let (ea, eb) = transverse(axis);
        depth * s.total(ea) * s.total(eb)
    }

    /// Pack the `depth` interior layers adjacent to `side` over the full
    /// stored cross-section.
    pub fn pack_slab_ext(&self, axis: Axis, side: i32, depth: usize, buf: &mut Vec<R>) {
        buf.clear();
        let n = self.shape.extent(axis) as i32;
        let range = if side < 0 {
            0..depth as i32
        } else {
            (n - depth as i32)..n
        };
        self.for_slab_ext(axis, range, |x| buf.push(x));
    }

    /// Unpack an extended halo buffer into the ghost layers beyond `side`.
    pub fn unpack_slab_ext(&mut self, axis: Axis, side: i32, depth: usize, buf: &[R]) {
        let shape = self.shape;
        let n = shape.extent(axis) as i32;
        let range = if side < 0 {
            -(depth as i32)..0
        } else {
            n..(n + depth as i32)
        };
        let mut it = buf.iter();
        let (ea, eb) = transverse(axis);
        let (ga, gb) = (shape.ghosts(ea) as i32, shape.ghosts(eb) as i32);
        let (na, nb) = (shape.extent(ea) as i32, shape.extent(eb) as i32);
        for b in -gb..nb + gb {
            for a in -ga..na + ga {
                for c in range.clone() {
                    let (i, j, k) = place(axis, c, a, b);
                    self.data.set(
                        shape.idx(i, j, k),
                        *it.next().expect("halo buffer too short"),
                    );
                }
            }
        }
        assert!(it.next().is_none(), "halo buffer too long");
    }

    fn for_slab_ext(&self, axis: Axis, range: std::ops::Range<i32>, mut f: impl FnMut(R)) {
        let shape = self.shape;
        let (ea, eb) = transverse(axis);
        let (ga, gb) = (shape.ghosts(ea) as i32, shape.ghosts(eb) as i32);
        let (na, nb) = (shape.extent(ea) as i32, shape.extent(eb) as i32);
        for b in -gb..nb + gb {
            for a in -ga..na + ga {
                for c in range.clone() {
                    let (i, j, k) = place(axis, c, a, b);
                    f(self.data.get(shape.idx(i, j, k)));
                }
            }
        }
    }

    fn for_slab(&self, axis: Axis, range: std::ops::Range<i32>, mut f: impl FnMut(R)) {
        let shape = self.shape;
        match axis {
            Axis::X => {
                for k in 0..shape.nz as i32 {
                    for j in 0..shape.ny as i32 {
                        for i in range.clone() {
                            f(self.data.get(shape.idx(i, j, k)));
                        }
                    }
                }
            }
            Axis::Y => {
                for k in 0..shape.nz as i32 {
                    for j in range.clone() {
                        for i in 0..shape.nx as i32 {
                            f(self.data.get(shape.idx(i, j, k)));
                        }
                    }
                }
            }
            Axis::Z => {
                for k in range.clone() {
                    for j in 0..shape.ny as i32 {
                        for i in 0..shape.nx as i32 {
                            f(self.data.get(shape.idx(i, j, k)));
                        }
                    }
                }
            }
        }
    }
}

/// The two axes transverse to `axis`, in x→y→z order.
#[inline]
fn transverse(axis: Axis) -> (Axis, Axis) {
    match axis {
        Axis::X => (Axis::Y, Axis::Z),
        Axis::Y => (Axis::X, Axis::Z),
        Axis::Z => (Axis::X, Axis::Y),
    }
}

/// Assemble `(i, j, k)` from the axis coordinate `c` and transverse `(a, b)`.
#[inline]
fn place(axis: Axis, c: i32, a: i32, b: i32) -> (i32, i32, i32) {
    match axis {
        Axis::X => (c, a, b),
        Axis::Y => (a, c, b),
        Axis::Z => (a, b, c),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igr_prec::{StoreF32, StoreF64};

    fn tagged_field(shape: GridShape) -> Field<f64, StoreF64> {
        // Interior cell (i,j,k) tagged with a unique value.
        let mut f = Field::zeros(shape);
        f.map_interior(|i, j, k, _| (i + 100 * j + 10_000 * k) as f64 + 0.5);
        f
    }

    #[test]
    fn at_and_set_roundtrip_including_ghosts() {
        let mut f: Field<f64, StoreF64> = Field::zeros(GridShape::new(4, 4, 4, 2));
        f.set(-2, 0, 3, 7.25);
        f.set(5, 3, -1, -1.5);
        assert_eq!(f.at(-2, 0, 3), 7.25);
        assert_eq!(f.at(5, 3, -1), -1.5);
        assert_eq!(f.at(0, 0, 0), 0.0);
    }

    #[test]
    fn pack_then_unpack_transfers_boundary_layers() {
        // Simulate a periodic halo exchange on a single block: the low-side
        // interior layers must land in the high-side ghosts and vice versa.
        let shape = GridShape::new(5, 4, 3, 2);
        let mut f = tagged_field(shape);
        let g = f.clone();
        let depth = 2;

        let mut lo = Vec::new();
        let mut hi = Vec::new();
        for axis in [Axis::X, Axis::Y, Axis::Z] {
            g.pack_slab(axis, -1, depth, &mut lo);
            g.pack_slab(axis, 1, depth, &mut hi);
            assert_eq!(lo.len(), g.slab_len(axis, depth));
            f.unpack_slab(axis, 1, depth, &lo); // low interior -> high ghosts
            f.unpack_slab(axis, -1, depth, &hi); // high interior -> low ghosts
        }

        // Check x-axis periodicity: ghost (-1, j, k) == interior (nx-1, j, k).
        for k in 0..3 {
            for j in 0..4 {
                assert_eq!(f.at(-1, j, k), f.at(4, j, k));
                assert_eq!(f.at(-2, j, k), f.at(3, j, k));
                assert_eq!(f.at(5, j, k), f.at(0, j, k));
                assert_eq!(f.at(6, j, k), f.at(1, j, k));
            }
        }
        // And y/z similarly (spot checks).
        assert_eq!(f.at(2, -1, 1), f.at(2, 3, 1));
        assert_eq!(f.at(2, 1, -2), f.at(2, 1, 1));
        assert_eq!(f.at(2, 1, 3), f.at(2, 1, 0));
    }

    #[test]
    fn slab_len_matches_pack_output() {
        let f: Field<f32, StoreF32> = Field::zeros(GridShape::new(6, 5, 4, 3));
        assert_eq!(f.slab_len(Axis::X, 3), 3 * 5 * 4);
        assert_eq!(f.slab_len(Axis::Y, 3), 3 * 6 * 4);
        assert_eq!(f.slab_len(Axis::Z, 3), 3 * 6 * 5);
    }

    #[test]
    fn reductions_cover_interior_only() {
        let shape = GridShape::new(3, 3, 1, 2);
        let mut f: Field<f64, StoreF64> = Field::zeros(shape);
        // Poison ghosts; reductions must not see them.
        for j in -2..5 {
            for i in -2..5 {
                if !shape.in_interior(i, j, 0) {
                    f.set(i, j, 0, 1e9);
                }
            }
        }
        f.map_interior(|_, _, _, _| 2.0);
        assert_eq!(f.sum_interior(|x| x), 18.0);
        assert_eq!(f.max_interior(|x| x), 2.0);
    }

    #[test]
    fn non_finite_scan_sees_interior_only_and_reports_the_first_cell() {
        let shape = GridShape::new(4, 3, 2, 2);
        let mut f: Field<f64, StoreF64> = Field::zeros(shape);
        // Poisoned ghosts must be invisible to the scan.
        f.set(-1, 0, 0, f64::NAN);
        f.set(4, 2, 1, f64::INFINITY);
        assert_eq!(f.find_non_finite_interior(), None);
        // Huge-but-finite values must not trip it either (the row check
        // cannot overflow into a false positive).
        f.map_interior(|_, _, _, _| f64::MAX);
        assert_eq!(f.find_non_finite_interior(), None);
        // Two poisoned interior cells: the first in x-fastest order wins.
        f.set(3, 2, 1, f64::NEG_INFINITY);
        f.set(1, 1, 1, f64::NAN);
        assert_eq!(f.find_non_finite_interior(), Some((1, 1, 1)));
        f.set(1, 1, 1, 0.0);
        assert_eq!(f.find_non_finite_interior(), Some((3, 2, 1)));
    }

    #[test]
    fn storage_bytes_scale_with_precision() {
        let shape = GridShape::new(8, 1, 1, 3);
        let f64_field: Field<f64, StoreF64> = Field::zeros(shape);
        let f32_field: Field<f32, StoreF32> = Field::zeros(shape);
        assert_eq!(f64_field.storage_bytes(), shape.n_total() * 8);
        assert_eq!(f32_field.storage_bytes(), shape.n_total() * 4);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn unpack_rejects_short_buffer() {
        let mut f: Field<f64, StoreF64> = Field::zeros(GridShape::new(4, 4, 1, 2));
        f.unpack_slab(Axis::X, 1, 2, &[1.0; 3]);
    }

    #[test]
    fn extended_slabs_cover_transverse_ghosts() {
        let shape = GridShape::new(4, 3, 1, 2);
        let f: Field<f64, StoreF64> = Field::zeros(shape);
        // x-slab cross-section: (3+2*2) stored y cells x 1 z cell.
        assert_eq!(f.slab_len_ext(Axis::X, 2), 2 * 7);
        assert_eq!(f.slab_len_ext(Axis::Y, 2), 2 * 8);
    }

    #[test]
    fn extended_pack_unpack_roundtrips_through_a_self_exchange() {
        // Periodic single-block: pack low interior (ext), unpack into high
        // ghosts; values must match a direct periodic fill, including the
        // corner regions that standard slabs skip.
        let shape = GridShape::new(5, 4, 1, 2);
        let mut f = tagged_field(shape);
        // Tag the y-ghost rows too (as a prior y-exchange would have).
        for l in 1..=2i32 {
            for i in -2..7 {
                f.set(i, -l, 0, 7_000.0 + (i + 10 * l) as f64);
                f.set(i, 3 + l, 0, 8_000.0 + (i + 10 * l) as f64);
            }
        }
        let mut lo = Vec::new();
        let mut hi = Vec::new();
        f.pack_slab_ext(Axis::X, -1, 2, &mut lo);
        f.pack_slab_ext(Axis::X, 1, 2, &mut hi);
        assert_eq!(lo.len(), f.slab_len_ext(Axis::X, 2));
        let mut g = f.clone();
        g.unpack_slab_ext(Axis::X, 1, 2, &lo);
        g.unpack_slab_ext(Axis::X, -1, 2, &hi);
        // Interior-row ghosts match periodic wrap...
        for j in 0..4 {
            assert_eq!(g.at(5, j, 0), f.at(0, j, 0));
            assert_eq!(g.at(-1, j, 0), f.at(4, j, 0));
        }
        // ...and the corner ghosts carry the transverse-ghost data.
        assert_eq!(g.at(5, -1, 0), f.at(0, -1, 0));
        assert_eq!(g.at(-2, 5, 0), f.at(3, 5, 0));
    }
}
