//! Index space of a structured grid block with ghost layers.

/// A coordinate direction. The solver is dimension-split (Algorithm 1 loops
/// `dir <- (x, y, z)`), so almost every kernel is parameterized by `Axis`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Axis {
    X,
    Y,
    Z,
}

impl Axis {
    pub const ALL: [Axis; 3] = [Axis::X, Axis::Y, Axis::Z];

    /// 0/1/2 index of the axis.
    #[inline]
    pub const fn dim(self) -> usize {
        match self {
            Axis::X => 0,
            Axis::Y => 1,
            Axis::Z => 2,
        }
    }

    /// Unit offset of this axis in (i, j, k) space.
    #[inline]
    pub const fn unit(self) -> (i32, i32, i32) {
        match self {
            Axis::X => (1, 0, 0),
            Axis::Y => (0, 1, 0),
            Axis::Z => (0, 0, 1),
        }
    }

    pub const fn name(self) -> &'static str {
        match self {
            Axis::X => "x",
            Axis::Y => "y",
            Axis::Z => "z",
        }
    }
}

/// Index space of one grid block: `n = (nx, ny, nz)` interior cells plus `ng`
/// ghost layers on every side of every *active* axis.
///
/// Degenerate axes (extent 1) carry no ghost layers and no fluxes — this is
/// how 1-D and 2-D problems (shock tubes, flow-map demos) run through the
/// same 3-D code path.
///
/// Linear layout is x-fastest (`i` contiguous), matching the memory-coalescing
/// layout of the paper's GPU kernels and giving the CPU cache-friendly inner
/// loops.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GridShape {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
    /// Ghost width on active axes (3 for the 5th-order stencil's -2..+3 footprint).
    pub ng: usize,
}

impl GridShape {
    pub fn new(nx: usize, ny: usize, nz: usize, ng: usize) -> Self {
        assert!(
            nx >= 1 && ny >= 1 && nz >= 1,
            "grid extents must be positive"
        );
        assert!(ng >= 1, "at least one ghost layer is required");
        GridShape { nx, ny, nz, ng }
    }

    /// Interior extent along an axis.
    #[inline]
    pub fn extent(&self, axis: Axis) -> usize {
        match axis {
            Axis::X => self.nx,
            Axis::Y => self.ny,
            Axis::Z => self.nz,
        }
    }

    /// Whether fluxes are computed along `axis` (extent > 1).
    #[inline]
    pub fn is_active(&self, axis: Axis) -> bool {
        self.extent(axis) > 1
    }

    /// Active axes in dimension-split order.
    pub fn active_axes(&self) -> impl Iterator<Item = Axis> + '_ {
        Axis::ALL.into_iter().filter(|&a| self.is_active(a))
    }

    /// Ghost width along an axis (0 on degenerate axes).
    #[inline]
    pub fn ghosts(&self, axis: Axis) -> usize {
        if self.is_active(axis) {
            self.ng
        } else {
            0
        }
    }

    /// Total (interior + ghost) extent along an axis.
    #[inline]
    pub fn total(&self, axis: Axis) -> usize {
        self.extent(axis) + 2 * self.ghosts(axis)
    }

    /// Number of interior cells.
    #[inline]
    pub fn n_interior(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Number of stored cells (interior + ghosts).
    #[inline]
    pub fn n_total(&self) -> usize {
        self.total(Axis::X) * self.total(Axis::Y) * self.total(Axis::Z)
    }

    /// Stride (in scalars) of a +1 step along `axis`.
    #[inline]
    pub fn stride(&self, axis: Axis) -> usize {
        match axis {
            Axis::X => 1,
            Axis::Y => self.total(Axis::X),
            Axis::Z => self.total(Axis::X) * self.total(Axis::Y),
        }
    }

    /// Linear index of interior cell `(i, j, k)`; ghost cells are addressed
    /// with negative indices or indices `>= extent`.
    #[inline(always)]
    pub fn idx(&self, i: i32, j: i32, k: i32) -> usize {
        let gx = self.ghosts(Axis::X) as i32;
        let gy = self.ghosts(Axis::Y) as i32;
        let gz = self.ghosts(Axis::Z) as i32;
        debug_assert!(
            i >= -gx && (i as i64) < (self.nx as i64 + gx as i64),
            "i={i} out of range"
        );
        debug_assert!(
            j >= -gy && (j as i64) < (self.ny as i64 + gy as i64),
            "j={j} out of range"
        );
        debug_assert!(
            k >= -gz && (k as i64) < (self.nz as i64 + gz as i64),
            "k={k} out of range"
        );
        let sx = self.stride(Axis::Y);
        let sxy = self.stride(Axis::Z);
        ((k + gz) as usize) * sxy + ((j + gy) as usize) * sx + (i + gx) as usize
    }

    /// Inverse of [`GridShape::idx`] restricted to stored cells.
    #[inline]
    pub fn coords(&self, lin: usize) -> (i32, i32, i32) {
        let sx = self.stride(Axis::Y);
        let sxy = self.stride(Axis::Z);
        let k = lin / sxy;
        let j = (lin % sxy) / sx;
        let i = lin % sx;
        (
            i as i32 - self.ghosts(Axis::X) as i32,
            j as i32 - self.ghosts(Axis::Y) as i32,
            k as i32 - self.ghosts(Axis::Z) as i32,
        )
    }

    /// Iterate over all interior cells as linear indices, x-fastest.
    pub fn interior_indices(&self) -> impl Iterator<Item = usize> + '_ {
        let shape = *self;
        (0..self.nz as i32).flat_map(move |k| {
            (0..shape.ny as i32)
                .flat_map(move |j| (0..shape.nx as i32).map(move |i| shape.idx(i, j, k)))
        })
    }

    /// Linear start index of every interior x-row `(j, k)`, in the same
    /// (x-fastest) order as [`GridShape::interior_indices`]. Each row is
    /// `nx` contiguous cells, so reductions and stencil kernels can iterate
    /// plain slices instead of paying per-cell ghost-offset arithmetic.
    pub fn interior_row_starts(&self) -> impl Iterator<Item = usize> + '_ {
        let shape = *self;
        (0..self.nz as i32).flat_map(move |k| (0..shape.ny as i32).map(move |j| shape.idx(0, j, k)))
    }

    /// Is `(i, j, k)` an interior cell?
    #[inline]
    pub fn in_interior(&self, i: i32, j: i32, k: i32) -> bool {
        i >= 0
            && (i as usize) < self.nx
            && j >= 0
            && (j as usize) < self.ny
            && k >= 0
            && (k as usize) < self.nz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_include_ghosts_only_on_active_axes() {
        let s = GridShape::new(8, 4, 1, 3);
        assert_eq!(s.total(Axis::X), 14);
        assert_eq!(s.total(Axis::Y), 10);
        assert_eq!(s.total(Axis::Z), 1); // degenerate: no ghosts
        assert_eq!(s.n_interior(), 32);
        assert_eq!(s.n_total(), 140);
    }

    #[test]
    fn one_dimensional_shape_has_single_active_axis() {
        let s = GridShape::new(100, 1, 1, 3);
        let active: Vec<_> = s.active_axes().collect();
        assert_eq!(active, vec![Axis::X]);
        assert!(!s.is_active(Axis::Y));
        assert_eq!(s.ghosts(Axis::Y), 0);
    }

    #[test]
    fn idx_is_x_fastest_and_ghost_aware() {
        let s = GridShape::new(4, 3, 2, 2);
        assert_eq!(s.idx(-2, -2, -2), 0); // first stored cell
        assert_eq!(s.idx(-1, -2, -2), 1);
        assert_eq!(
            s.idx(0, 0, 0),
            2 * s.stride(Axis::Z) + 2 * s.stride(Axis::Y) + 2
        );
        // +1 in x moves by 1
        assert_eq!(s.idx(1, 0, 0), s.idx(0, 0, 0) + 1);
        // +1 in y moves by total x extent
        assert_eq!(s.idx(0, 1, 0), s.idx(0, 0, 0) + 8);
    }

    #[test]
    fn coords_inverts_idx_for_all_stored_cells() {
        let s = GridShape::new(5, 4, 3, 2);
        for lin in 0..s.n_total() {
            let (i, j, k) = s.coords(lin);
            assert_eq!(s.idx(i, j, k), lin);
        }
    }

    #[test]
    fn interior_iteration_covers_each_cell_once() {
        let s = GridShape::new(4, 3, 2, 1);
        let v: Vec<usize> = s.interior_indices().collect();
        assert_eq!(v.len(), 24);
        let mut uniq = v.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 24);
        for lin in v {
            let (i, j, k) = s.coords(lin);
            assert!(s.in_interior(i, j, k));
        }
    }

    #[test]
    fn interior_row_starts_match_interior_indices() {
        for s in [
            GridShape::new(5, 4, 3, 2),
            GridShape::new(7, 1, 1, 3),
            GridShape::new(4, 6, 1, 1),
        ] {
            let by_rows: Vec<usize> = s
                .interior_row_starts()
                .flat_map(|start| start..start + s.nx)
                .collect();
            let by_cells: Vec<usize> = s.interior_indices().collect();
            assert_eq!(by_rows, by_cells);
        }
    }

    #[test]
    fn axis_helpers() {
        assert_eq!(Axis::X.dim(), 0);
        assert_eq!(Axis::Z.unit(), (0, 0, 1));
        assert_eq!(Axis::Y.name(), "y");
        assert_eq!(Axis::ALL.len(), 3);
    }

    #[test]
    #[should_panic(expected = "ghost")]
    fn zero_ghost_width_rejected() {
        GridShape::new(4, 4, 4, 0);
    }
}
