//! Property tests of the block decomposition and the halo slab codecs —
//! the invariants every decomposed run silently relies on.

use igr_grid::{Axis, Decomp, Field, GridShape};
use igr_prec::StoreF64;
use proptest::prelude::*;

fn global_dims() -> impl Strategy<Value = [usize; 3]> {
    (4usize..24, 3usize..20, 3usize..16).prop_map(|(a, b, c)| [a, b, c])
}

/// Rank-grid dims that always fit the smallest global extents above.
fn rank_dims() -> impl Strategy<Value = [usize; 3]> {
    (1usize..4, 1usize..4, 1usize..3).prop_map(|(a, b, c)| [a, b, c])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The subdomains tile the global grid exactly: every global cell is
    /// owned by exactly one rank, and the local sizes sum to the total.
    #[test]
    fn subdomains_partition_the_global_grid(
        global in global_dims(),
        dims in rank_dims(),
        periodic in any::<[bool; 3]>(),
    ) {
        let d = Decomp::with_dims(global, dims, periodic);
        let n_ranks = d.n_ranks();
        let mut owned = vec![0u8; global[0] * global[1] * global[2]];
        let mut total = 0usize;
        for r in 0..n_ranks {
            let sd = d.subdomain(r);
            let mut cells = 1usize;
            for a in 0..3 {
                prop_assert!(sd.offset[a] + sd.extent[a] <= global[a]);
                cells *= sd.extent[a];
            }
            total += cells;
            for k in sd.offset[2]..sd.offset[2] + sd.extent[2] {
                for j in sd.offset[1]..sd.offset[1] + sd.extent[1] {
                    for i in sd.offset[0]..sd.offset[0] + sd.extent[0] {
                        owned[(k * global[1] + j) * global[0] + i] += 1;
                    }
                }
            }
        }
        prop_assert_eq!(total, global[0] * global[1] * global[2]);
        prop_assert!(owned.iter().all(|&c| c == 1), "double/zero ownership");
    }

    /// Rank <-> Cartesian-coordinate maps invert each other.
    #[test]
    fn rank_coords_roundtrip(
        global in global_dims(),
        dims in rank_dims(),
    ) {
        let d = Decomp::with_dims(global, dims, [false; 3]);
        for r in 0..d.n_ranks() {
            prop_assert_eq!(d.rank_of(d.coords_of(r)), r);
        }
    }

    /// Neighbor links are symmetric: going +1 then -1 along any axis comes
    /// back, and non-periodic boundaries have no neighbor beyond the edge.
    #[test]
    fn neighbor_links_are_symmetric(
        global in global_dims(),
        dims in rank_dims(),
        periodic in any::<[bool; 3]>(),
    ) {
        let d = Decomp::with_dims(global, dims, periodic);
        for r in 0..d.n_ranks() {
            for axis in [Axis::X, Axis::Y, Axis::Z] {
                if let Some(nb) = d.neighbor(r, axis, 1) {
                    prop_assert_eq!(d.neighbor(nb, axis, -1), Some(r));
                }
                if let Some(nb) = d.neighbor(r, axis, -1) {
                    prop_assert_eq!(d.neighbor(nb, axis, 1), Some(r));
                }
            }
        }
    }

    /// Periodicity makes every rank's neighborhood total along that axis:
    /// with periodic wrap there is always a neighbor (it may be the rank
    /// itself when the axis has one block).
    #[test]
    fn periodic_axes_always_have_neighbors(
        global in global_dims(),
        dims in rank_dims(),
    ) {
        let d = Decomp::with_dims(global, dims, [true; 3]);
        for r in 0..d.n_ranks() {
            for axis in [Axis::X, Axis::Y, Axis::Z] {
                prop_assert!(d.neighbor(r, axis, 1).is_some());
                prop_assert!(d.neighbor(r, axis, -1).is_some());
            }
        }
    }

    /// Halo slab pack → unpack round-trips arbitrary interior data.
    #[test]
    fn slab_pack_unpack_roundtrip(
        nx in 4usize..12,
        ny in 1usize..10,
        values in prop::collection::vec(-1e6f64..1e6, 1),
    ) {
        let ng = 2;
        let shape = GridShape::new(nx, ny, 1, ng);
        let seed = values[0];
        let mut src: Field<f64, StoreF64> = Field::zeros(shape);
        src.map_interior(|i, j, k, _| seed + (i + 100 * j + 10_000 * k) as f64);
        let mut dst: Field<f64, StoreF64> = Field::zeros(shape);

        for axis in [Axis::X, Axis::Y] {
            if shape.extent(axis) < ng {
                continue;
            }
            for side in [-1i32, 1] {
                let mut buf = Vec::new();
                src.pack_slab(axis, side, ng, &mut buf);
                prop_assert_eq!(buf.len(), src.slab_len(axis, ng));
                // Receiving side: unpack into the *ghost* slab of dst on
                // the opposite side; then the ghost values equal the
                // sender's interior boundary values.
                dst.unpack_slab(axis, -side, ng, &buf);
            }
        }
        // Spot-check the x low ghost of dst against the x high interior of
        // src (periodic-exchange convention).
        if shape.extent(Axis::X) >= ng {
            for j in 0..ny as i32 {
                for l in 1..=ng as i32 {
                    let ghost = dst.at(-l, j, 0);
                    let interior = src.at(nx as i32 - l, j, 0);
                    prop_assert_eq!(ghost, interior);
                }
            }
        }
    }
}
