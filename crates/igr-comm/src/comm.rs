//! Point-to-point messaging and collectives.

use crossbeam::channel::{Receiver, Sender};
use igr_prec::f16;
use std::sync::{Arc, Barrier};

/// Element types that can travel through a message.
pub trait CommData: Copy + Send + 'static {
    fn to_bytes(slice: &[Self]) -> Vec<u8>;
    fn from_bytes(bytes: &[u8]) -> Vec<Self>;
}

macro_rules! impl_comm_data {
    ($t:ty, $width:expr, $to:expr, $from:expr) => {
        impl CommData for $t {
            fn to_bytes(slice: &[Self]) -> Vec<u8> {
                let mut out = Vec::with_capacity(slice.len() * $width);
                for &x in slice {
                    out.extend_from_slice(&($to)(x));
                }
                out
            }
            fn from_bytes(bytes: &[u8]) -> Vec<Self> {
                assert_eq!(
                    bytes.len() % $width,
                    0,
                    "byte length not a multiple of element width"
                );
                bytes
                    .chunks_exact($width)
                    .map(|c| ($from)(c.try_into().unwrap()))
                    .collect()
            }
        }
    };
}

impl_comm_data!(f64, 8, f64::to_le_bytes, f64::from_le_bytes);
impl_comm_data!(f32, 4, f32::to_le_bytes, f32::from_le_bytes);
impl_comm_data!(u64, 8, u64::to_le_bytes, u64::from_le_bytes);
impl_comm_data!(u8, 1, |x: u8| [x], |c: [u8; 1]| c[0]);

impl CommData for f16 {
    fn to_bytes(slice: &[Self]) -> Vec<u8> {
        let mut out = Vec::with_capacity(slice.len() * 2);
        for &x in slice {
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        out
    }
    fn from_bytes(bytes: &[u8]) -> Vec<Self> {
        bytes
            .chunks_exact(2)
            .map(|c| f16::from_bits(u16::from_le_bytes(c.try_into().unwrap())))
            .collect()
    }
}

/// Reduction operator for [`Comm::allreduce_f64`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceOp {
    Sum,
    Min,
    Max,
}

impl ReduceOp {
    fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }

    fn apply_u64(self, a: u64, b: u64) -> u64 {
        match self {
            ReduceOp::Sum => a.wrapping_add(b),
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }
}

pub(crate) struct Packet {
    pub src: usize,
    pub tag: u64,
    pub data: Vec<u8>,
}

/// Internal tags (top bit set) are reserved for collectives.
const INTERNAL: u64 = 1 << 63;

/// A rank's communicator handle.
pub struct Comm {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Packet>>,
    inbox: Receiver<Packet>,
    /// Out-of-order messages awaiting a matching recv.
    pending: Vec<Packet>,
    barrier: Arc<Barrier>,
    bytes_sent: u64,
    messages_sent: u64,
}

impl Comm {
    pub(crate) fn new(
        rank: usize,
        size: usize,
        senders: Vec<Sender<Packet>>,
        inbox: Receiver<Packet>,
        barrier: Arc<Barrier>,
    ) -> Self {
        Comm {
            rank,
            size,
            senders,
            inbox,
            pending: Vec::new(),
            barrier,
            bytes_sent: 0,
            messages_sent: 0,
        }
    }

    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn size(&self) -> usize {
        self.size
    }

    /// Total payload bytes this rank has sent (traffic metering for the
    /// scaling model).
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Buffered (never-blocking) send, like a small-message `MPI_Send`.
    pub fn send<T: CommData>(&mut self, to: usize, tag: u64, data: &[T]) {
        assert!(tag & INTERNAL == 0, "user tags must not set the top bit");
        self.send_raw(to, tag, T::to_bytes(data));
    }

    fn send_raw(&mut self, to: usize, tag: u64, bytes: Vec<u8>) {
        assert!(to < self.size, "destination rank {to} out of range");
        self.bytes_sent += bytes.len() as u64;
        self.messages_sent += 1;
        self.senders[to]
            .send(Packet {
                src: self.rank,
                tag,
                data: bytes,
            })
            .expect("destination rank hung up");
    }

    /// Blocking receive matching `(from, tag)`; out-of-order arrivals are
    /// buffered.
    pub fn recv<T: CommData>(&mut self, from: usize, tag: u64) -> Vec<T> {
        assert!(tag & INTERNAL == 0, "user tags must not set the top bit");
        T::from_bytes(&self.recv_raw(from, tag))
    }

    fn recv_raw(&mut self, from: usize, tag: u64) -> Vec<u8> {
        if let Some(idx) = self
            .pending
            .iter()
            .position(|p| p.src == from && p.tag == tag)
        {
            return self.pending.swap_remove(idx).data;
        }
        loop {
            let p = self.inbox.recv().expect("universe shut down mid-recv");
            if p.src == from && p.tag == tag {
                return p.data;
            }
            self.pending.push(p);
        }
    }

    /// Exchange buffers with a partner in one call (deadlock-free because
    /// sends are buffered).
    pub fn sendrecv<T: CommData>(
        &mut self,
        to: usize,
        send_tag: u64,
        data: &[T],
        from: usize,
        recv_tag: u64,
    ) -> Vec<T> {
        self.send(to, send_tag, data);
        self.recv(from, recv_tag)
    }

    /// Synchronize all ranks.
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// Reduce a scalar over all ranks in deterministic rank order and
    /// broadcast the result.
    pub fn allreduce_f64(&mut self, x: f64, op: ReduceOp) -> f64 {
        const TAG_GATHER: u64 = INTERNAL | 1;
        const TAG_RESULT: u64 = INTERNAL | 2;
        if self.rank == 0 {
            let mut acc = x;
            for src in 1..self.size {
                let v = f64::from_bytes(&self.recv_raw(src, TAG_GATHER))[0];
                acc = op.apply(acc, v);
            }
            for dst in 1..self.size {
                self.send_raw(dst, TAG_RESULT, f64::to_bytes(&[acc]));
            }
            acc
        } else {
            self.send_raw(0, TAG_GATHER, f64::to_bytes(&[x]));
            f64::from_bytes(&self.recv_raw(0, TAG_RESULT))[0]
        }
    }

    /// [`Self::allreduce_f64`] for integer scalars: reduce over all ranks
    /// in deterministic rank order and broadcast the result. The collective
    /// every rank uses to reach *one* decision (e.g. whether a decomposed
    /// run resumes from per-rank restart files or starts fresh — all ranks
    /// must agree, or they would deadlock in the first halo exchange).
    pub fn allreduce_u64(&mut self, x: u64, op: ReduceOp) -> u64 {
        const TAG_GATHER: u64 = INTERNAL | 5;
        const TAG_RESULT: u64 = INTERNAL | 6;
        if self.rank == 0 {
            let mut acc = x;
            for src in 1..self.size {
                let v = u64::from_bytes(&self.recv_raw(src, TAG_GATHER))[0];
                acc = op.apply_u64(acc, v);
            }
            for dst in 1..self.size {
                self.send_raw(dst, TAG_RESULT, u64::to_bytes(&[acc]));
            }
            acc
        } else {
            self.send_raw(0, TAG_GATHER, u64::to_bytes(&[x]));
            u64::from_bytes(&self.recv_raw(0, TAG_RESULT))[0]
        }
    }

    /// Broadcast a buffer from `root` to all ranks.
    pub fn broadcast<T: CommData>(&mut self, root: usize, data: &[T]) -> Vec<T> {
        const TAG_BCAST: u64 = INTERNAL | 3;
        if self.rank == root {
            let bytes = T::to_bytes(data);
            for dst in 0..self.size {
                if dst != root {
                    self.send_raw(dst, TAG_BCAST, bytes.clone());
                }
            }
            data.to_vec()
        } else {
            T::from_bytes(&self.recv_raw(root, TAG_BCAST))
        }
    }

    /// Gather per-rank scalars to `root` (rank order); other ranks get an
    /// empty vec.
    pub fn gather_f64(&mut self, root: usize, x: f64) -> Vec<f64> {
        const TAG: u64 = INTERNAL | 4;
        if self.rank == root {
            let mut out = vec![0.0; self.size];
            out[self.rank] = x;
            for src in 0..self.size {
                if src != root {
                    out[src] = f64::from_bytes(&self.recv_raw(src, TAG))[0];
                }
            }
            out
        } else {
            self.send_raw(root, TAG, f64::to_bytes(&[x]));
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comm_data_roundtrips() {
        let f = [1.5f64, -2.25, 0.0];
        assert_eq!(f64::from_bytes(&f64::to_bytes(&f)), f);
        let g = [1.5f32, -2.25];
        assert_eq!(f32::from_bytes(&f32::to_bytes(&g)), g);
        let h = [f16::from_f32(0.5), f16::from_f32(-3.0)];
        let rt = f16::from_bytes(&f16::to_bytes(&h));
        assert_eq!(rt[0].to_bits(), h[0].to_bits());
        assert_eq!(rt[1].to_bits(), h[1].to_bits());
        let b = [1u8, 2, 255];
        assert_eq!(u8::from_bytes(&u8::to_bytes(&b)), b);
        let u = [u64::MAX, 0, 42];
        assert_eq!(u64::from_bytes(&u64::to_bytes(&u)), u);
    }

    #[test]
    fn reduce_ops() {
        assert_eq!(ReduceOp::Sum.apply(2.0, 3.0), 5.0);
        assert_eq!(ReduceOp::Min.apply(2.0, 3.0), 2.0);
        assert_eq!(ReduceOp::Max.apply(2.0, 3.0), 3.0);
        assert_eq!(ReduceOp::Sum.apply_u64(2, 3), 5);
        assert_eq!(ReduceOp::Min.apply_u64(u64::MAX, 3), 3);
        assert_eq!(ReduceOp::Max.apply_u64(u64::MAX, 3), u64::MAX);
    }

    #[test]
    fn allreduce_u64_agrees_on_every_rank() {
        use crate::universe::Universe;
        // The resume-consensus pattern: every rank proposes a step (or the
        // u64::MAX "no restart file" sentinel) and min/max must agree
        // everywhere, full u64 range included.
        let proposals = [7u64, u64::MAX, 7, 7];
        let out = Universe::run(4, move |mut comm| {
            let x = proposals[comm.rank()];
            let lo = comm.allreduce_u64(x, ReduceOp::Min);
            let hi = comm.allreduce_u64(x, ReduceOp::Max);
            let n = comm.allreduce_u64(1, ReduceOp::Sum);
            (lo, hi, n)
        });
        for &(lo, hi, n) in &out {
            assert_eq!(lo, 7);
            assert_eq!(hi, u64::MAX);
            assert_eq!(n, 4);
        }
    }

    #[test]
    #[should_panic(expected = "multiple of element width")]
    fn misaligned_bytes_rejected() {
        let _ = f64::from_bytes(&[0u8; 7]);
    }
}
