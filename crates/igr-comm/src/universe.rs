//! Rank spawning: one OS thread per rank, scoped so panics propagate.

use crate::comm::{Comm, Packet};
use crossbeam::channel::unbounded;
use std::sync::{Arc, Barrier};

/// Factory for rank worlds.
pub struct Universe;

impl Universe {
    /// Run `f(comm)` on `n_ranks` concurrent ranks and return their results
    /// in rank order. Panics in any rank propagate (failing the test/run).
    pub fn run<T, F>(n_ranks: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Comm) -> T + Send + Sync,
    {
        assert!(n_ranks >= 1, "need at least one rank");
        let mut senders = Vec::with_capacity(n_ranks);
        let mut inboxes = Vec::with_capacity(n_ranks);
        for _ in 0..n_ranks {
            let (tx, rx) = unbounded::<Packet>();
            senders.push(tx);
            inboxes.push(rx);
        }
        let barrier = Arc::new(Barrier::new(n_ranks));

        let mut results: Vec<Option<T>> = (0..n_ranks).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n_ranks);
            for (rank, inbox) in inboxes.into_iter().enumerate() {
                let senders = senders.clone();
                let barrier = Arc::clone(&barrier);
                let f = &f;
                handles.push(scope.spawn(move || {
                    let comm = Comm::new(rank, n_ranks, senders, inbox, barrier);
                    f(comm)
                }));
            }
            for (rank, h) in handles.into_iter().enumerate() {
                results[rank] = Some(h.join().expect("rank panicked"));
            }
        });
        results.into_iter().map(|r| r.unwrap()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::ReduceOp;

    #[test]
    fn single_rank_universe_works() {
        let out = Universe::run(1, |comm| {
            assert_eq!(comm.rank(), 0);
            assert_eq!(comm.size(), 1);
            comm.rank() + 10
        });
        assert_eq!(out, vec![10]);
    }

    #[test]
    fn ring_pass_delivers_in_order() {
        let n = 5;
        let out = Universe::run(n, |mut comm| {
            let next = (comm.rank() + 1) % n;
            let prev = (comm.rank() + n - 1) % n;
            let payload = vec![comm.rank() as f64 * 1.5];
            let got = comm.sendrecv(next, 7, &payload, prev, 7);
            got[0]
        });
        for (rank, v) in out.iter().enumerate() {
            let prev = (rank + n - 1) % n;
            assert_eq!(*v, prev as f64 * 1.5);
        }
    }

    #[test]
    fn tag_matching_reorders_messages() {
        // Rank 0 sends two messages with different tags; rank 1 receives
        // them in the opposite order.
        let out = Universe::run(2, |mut comm| {
            if comm.rank() == 0 {
                comm.send(1, 100, &[1.0f64]);
                comm.send(1, 200, &[2.0f64]);
                0.0
            } else {
                let second = comm.recv::<f64>(0, 200)[0];
                let first = comm.recv::<f64>(0, 100)[0];
                second * 10.0 + first
            }
        });
        assert_eq!(out[1], 21.0);
    }

    #[test]
    fn allreduce_agrees_on_all_ranks() {
        let n = 7;
        for (op, expect) in [
            (ReduceOp::Sum, (0..7).sum::<i32>() as f64),
            (ReduceOp::Min, 0.0),
            (ReduceOp::Max, 6.0),
        ] {
            let out = Universe::run(n, |mut comm| comm.allreduce_f64(comm.rank() as f64, op));
            for v in &out {
                assert_eq!(*v, expect, "{op:?}");
            }
        }
    }

    #[test]
    fn broadcast_distributes_roots_buffer() {
        let out = Universe::run(4, |mut comm| {
            let data = if comm.rank() == 2 {
                vec![3.5f64, 4.5]
            } else {
                vec![]
            };
            comm.broadcast(2, &data)
        });
        for v in out {
            assert_eq!(v, vec![3.5, 4.5]);
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let out = Universe::run(4, |mut comm| {
            comm.gather_f64(0, (comm.rank() * comm.rank()) as f64)
        });
        assert_eq!(out[0], vec![0.0, 1.0, 4.0, 9.0]);
        assert!(out[1].is_empty());
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        Universe::run(8, |comm| {
            counter.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            // After the barrier every rank must see all increments.
            assert_eq!(counter.load(Ordering::SeqCst), 8);
        });
    }

    #[test]
    fn traffic_counters_track_sends() {
        let out = Universe::run(2, |mut comm| {
            if comm.rank() == 0 {
                comm.send(1, 5, &[0.0f64; 100]);
                (comm.bytes_sent(), comm.messages_sent())
            } else {
                let _ = comm.recv::<f64>(0, 5);
                (comm.bytes_sent(), comm.messages_sent())
            }
        });
        assert_eq!(out[0], (800, 1));
        assert_eq!(out[1], (0, 0));
    }
}
