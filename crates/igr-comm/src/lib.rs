//! Message-passing substrate: the repo's MPI stand-in.
//!
//! The paper runs on Cray MPICH over Slingshot with GPU-aware halo
//! exchanges. Here, ranks are OS threads in one process, point-to-point
//! messages travel over lock-free channels with `(source, tag)` matching,
//! and the same decomposition/halo-exchange code paths run for real — so
//! the decomposed solver can be validated bit-for-bit against single-block
//! runs, and the scaling harnesses measure genuine parallel execution.
//!
//! Deliberate semantic matches with MPI:
//! * buffered non-blocking sends (an unbounded channel never blocks);
//! * blocking receives with out-of-order `(src, tag)` matching;
//! * collectives (barrier, allreduce, broadcast, gather) that every rank of
//!   the universe must enter;
//! * deterministic reduction order (rank order) so FP64 results are
//!   bit-reproducible run to run — stronger than MPI, deliberately, because
//!   tests rely on it;
//! * per-rank traffic counters (the scaling model consumes these).

mod cart;
mod comm;
mod universe;

pub use cart::CartComm;
pub use comm::{Comm, CommData, ReduceOp};
pub use universe::Universe;
