//! Cartesian communicator: the rank topology of the decomposed solver.

use crate::comm::{Comm, CommData};
use igr_grid::{Axis, Decomp};

/// A communicator bound to a 3-D block decomposition — the analogue of an
/// `MPI_Cart_create` communicator.
pub struct CartComm {
    pub comm: Comm,
    pub decomp: Decomp,
}

impl CartComm {
    pub fn new(comm: Comm, decomp: Decomp) -> Self {
        assert_eq!(
            comm.size(),
            decomp.n_ranks(),
            "decomposition must match universe size"
        );
        CartComm { comm, decomp }
    }

    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// Neighbor across the `side` face of `axis` (None at physical walls).
    pub fn neighbor(&self, axis: Axis, side: i32) -> Option<usize> {
        self.decomp.neighbor(self.comm.rank(), axis, side)
    }

    /// Deterministic tag for a halo message: direction- and phase-unique.
    /// `phase` distinguishes multiple exchanges in flight (e.g. the five
    /// conserved fields plus Σ).
    pub fn halo_tag(axis: Axis, side: i32, phase: u64) -> u64 {
        let s = if side > 0 { 1 } else { 0 };
        phase * 16 + axis.dim() as u64 * 2 + s
    }

    /// Exchange one axis's halos: send `lo_send`/`hi_send` to the two
    /// neighbors, receive their counterparts. Returns
    /// `(from_low_neighbor, from_high_neighbor)`, `None` at physical walls.
    ///
    /// The phase tag keeps simultaneous exchanges of different fields
    /// untangled. Sends are buffered, so posting both sends before both
    /// receives is deadlock-free.
    pub fn exchange<T: CommData>(
        &mut self,
        axis: Axis,
        phase: u64,
        lo_send: &[T],
        hi_send: &[T],
    ) -> (Option<Vec<T>>, Option<Vec<T>>) {
        let _sp = igr_obs::span!("comm.halo");
        let lo = self.neighbor(axis, -1);
        let hi = self.neighbor(axis, 1);
        // Tags are directional in *flight* direction: a message traveling
        // "down" (to the low neighbor) carries the down tag.
        let tag_down = Self::halo_tag(axis, -1, phase);
        let tag_up = Self::halo_tag(axis, 1, phase);
        if let Some(lo) = lo {
            self.comm.send(lo, tag_down, lo_send);
        }
        if let Some(hi) = hi {
            self.comm.send(hi, tag_up, hi_send);
        }
        // What arrives from the low neighbor traveled "up"; from the high
        // neighbor traveled "down".
        let from_lo = lo.map(|src| self.comm.recv(src, tag_up));
        let from_hi = hi.map(|src| self.comm.recv(src, tag_down));
        (from_lo, from_hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;

    #[test]
    fn tags_are_unique_per_direction_and_phase() {
        let mut seen = std::collections::HashSet::new();
        for phase in 0..6 {
            for axis in Axis::ALL {
                for side in [-1, 1] {
                    assert!(
                        seen.insert(CartComm::halo_tag(axis, side, phase)),
                        "duplicate tag"
                    );
                }
            }
        }
    }

    #[test]
    fn exchange_on_periodic_ring_wraps() {
        let decomp = Decomp::with_dims([8, 1, 1], [4, 1, 1], [true, false, false]);
        let out = Universe::run(4, |comm| {
            let mut cart = CartComm::new(comm, decomp.clone());
            let me = cart.rank() as f64;
            let (from_lo, from_hi) = cart.exchange(Axis::X, 0, &[me], &[me + 0.5]);
            (from_lo.unwrap()[0], from_hi.unwrap()[0])
        });
        // from_lo is the low neighbor's hi_send (me+0.5); from_hi is the
        // high neighbor's lo_send (me).
        for rank in 0..4usize {
            let lo_n = (rank + 3) % 4;
            let hi_n = (rank + 1) % 4;
            assert_eq!(out[rank].0, lo_n as f64 + 0.5);
            assert_eq!(out[rank].1, hi_n as f64);
        }
    }

    #[test]
    fn physical_walls_return_none() {
        let decomp = Decomp::with_dims([8, 1, 1], [2, 1, 1], [false; 3]);
        let out = Universe::run(2, |comm| {
            let mut cart = CartComm::new(comm, decomp.clone());
            let me = cart.rank() as f64;
            let (lo, hi) = cart.exchange(Axis::X, 0, &[me], &[me]);
            (lo.is_some(), hi.is_some())
        });
        assert_eq!(out[0], (false, true));
        assert_eq!(out[1], (true, false));
    }

    #[test]
    fn multiple_phases_do_not_cross_talk() {
        let decomp = Decomp::with_dims([4, 1, 1], [2, 1, 1], [true, false, false]);
        let out = Universe::run(2, |comm| {
            let mut cart = CartComm::new(comm, decomp.clone());
            let me = cart.rank() as f64;
            // Two interleaved exchanges with different phases.
            let (a_lo, _) = cart.exchange(Axis::X, 0, &[me * 10.0], &[me * 10.0]);
            let (b_lo, _) = cart.exchange(Axis::X, 1, &[me * 100.0], &[me * 100.0]);
            (a_lo.unwrap()[0], b_lo.unwrap()[0])
        });
        assert_eq!(out[0].0, 10.0);
        assert_eq!(out[0].1, 100.0);
        assert_eq!(out[1].0, 0.0);
        assert_eq!(out[1].1, 0.0);
    }

    #[test]
    #[should_panic(expected = "rank panicked")]
    fn size_mismatch_is_rejected() {
        let decomp = Decomp::with_dims([8, 1, 1], [4, 1, 1], [false; 3]);
        Universe::run(2, |comm| {
            let _ = CartComm::new(comm, decomp.clone());
        });
    }
}
