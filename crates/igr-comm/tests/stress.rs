//! Randomized stress tests of the message-passing substrate: all-to-all
//! traffic with adversarial tag/payload patterns, and collective results
//! checked against serial reductions.

use igr_comm::{Comm, ReduceOp, Universe};
use proptest::prelude::*;

/// Deterministic payload for a (from, to, tag) triple.
fn payload(from: usize, to: usize, tag: u64, len: usize) -> Vec<f64> {
    (0..len)
        .map(|i| (from * 1000 + to * 100 + i) as f64 + tag as f64 * 0.5)
        .collect()
}

proptest! {
    // Thread spawning per case: keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Full all-to-all with distinct tags per pair: every payload arrives
    /// intact regardless of send interleaving.
    #[test]
    fn all_to_all_delivers_every_payload(
        n_ranks in 2usize..6,
        base_len in 1usize..64,
    ) {
        let ok = Universe::run(n_ranks, |mut comm: Comm| {
            let me = comm.rank();
            // Send to everyone else first (unbounded channels: no deadlock).
            for to in 0..n_ranks {
                if to == me {
                    continue;
                }
                let tag = (me * n_ranks + to) as u64;
                let data = payload(me, to, tag, base_len + to);
                comm.send(to, tag, &data);
            }
            // Receive from everyone, in *reverse* rank order to stress the
            // tag-matching queue.
            let mut all_ok = true;
            for from in (0..n_ranks).rev() {
                if from == me {
                    continue;
                }
                let tag = (from * n_ranks + me) as u64;
                let got: Vec<f64> = comm.recv(from, tag);
                all_ok &= got == payload(from, me, tag, base_len + me);
            }
            all_ok
        });
        prop_assert!(ok.into_iter().all(|x| x));
    }

    /// Allreduce agrees with the serial reduction for every op and any
    /// rank count.
    #[test]
    fn allreduce_matches_serial_reduction(
        values in prop::collection::vec(-1e3f64..1e3, 2..6),
    ) {
        let n = values.len();
        for (op, serial) in [
            (ReduceOp::Sum, values.iter().sum::<f64>()),
            (ReduceOp::Min, values.iter().cloned().fold(f64::INFINITY, f64::min)),
            (ReduceOp::Max, values.iter().cloned().fold(f64::NEG_INFINITY, f64::max)),
        ] {
            let vals = values.clone();
            let results = Universe::run(n, move |mut comm: Comm| {
                comm.allreduce_f64(vals[comm.rank()], op)
            });
            for r in results {
                prop_assert!(
                    (r - serial).abs() < 1e-9 * serial.abs().max(1.0),
                    "op {op:?}: {r} vs serial {serial}"
                );
            }
        }
    }

    /// A ring rotation via sendrecv moves each rank's token exactly one
    /// step without deadlock, for any ring size.
    #[test]
    fn sendrecv_ring_rotates_tokens(n_ranks in 2usize..7) {
        let results = Universe::run(n_ranks, |mut comm: Comm| {
            let me = comm.rank();
            let right = (me + 1) % n_ranks;
            let left = (me + n_ranks - 1) % n_ranks;
            let token = [me as f64 * 3.0 + 1.0];
            let got: Vec<f64> = comm.sendrecv(right, 7, &token, left, 7);
            got[0]
        });
        for (me, got) in results.into_iter().enumerate() {
            let left = (me + n_ranks - 1) % n_ranks;
            assert_eq!(got, left as f64 * 3.0 + 1.0);
        }
    }

    /// Broadcast from any root replicates the root's buffer bit-exactly.
    #[test]
    fn broadcast_from_any_root(
        n_ranks in 2usize..6,
        root_pick in 0usize..16,
        data in prop::collection::vec(-1e6f64..1e6, 1..32),
    ) {
        let root = root_pick % n_ranks;
        let data_c = data.clone();
        let results = Universe::run(n_ranks, move |mut comm: Comm| {
            let mine = if comm.rank() == root {
                data_c.clone()
            } else {
                vec![0.0; data_c.len()]
            };
            comm.broadcast(root, &mine)
        });
        for r in results {
            prop_assert_eq!(&r, &data);
        }
    }
}
