//! Shared harness utilities for the table/figure reproduction binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md's per-experiment index): it prints a *measured*
//! section (real runs of this repo's solvers at laptop scale) and a
//! *modeled* section (the `igr-perf` machine models at paper scale), in the
//! same rows/series layout as the paper.

use std::fmt::Write as _;

/// Fixed-width text table writer (the binaries print paper-like tables).
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    pub fn render(&self) -> String {
        let ncol = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for c in 0..ncol {
                let _ = write!(out, "{:>width$}  ", cells[c], width = widths[c]);
            }
            out.push('\n');
        };
        line(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * ncol;
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }
}

/// Format a float with engineering-friendly precision.
pub fn fmt_g(x: f64) -> String {
    if x == 0.0 {
        return "0".into();
    }
    let a = x.abs();
    if (0.01..10000.0).contains(&a) {
        format!("{x:.3}")
    } else {
        format!("{x:.3e}")
    }
}

/// Format an optional value, with the paper's footnote for unstable cells.
pub fn fmt_opt(x: Option<f64>) -> String {
    match x {
        Some(v) => fmt_g(v),
        None => "*N/A".into(),
    }
}

/// Print a section header.
pub fn section(title: &str) {
    println!("\n=== {title} ===\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = TextTable::new(vec!["a", "bbbb"]);
        t.row(vec!["1", "2"]);
        t.row(vec!["100", "20000"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("bbbb"));
        assert!(lines[3].contains("20000"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_g(0.0), "0");
        assert_eq!(fmt_g(3.14159), "3.142");
        assert!(fmt_g(1e12).contains('e'));
        assert_eq!(fmt_opt(None), "*N/A");
        assert_eq!(fmt_opt(Some(2.0)), "2.000");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["1"]);
    }
}
