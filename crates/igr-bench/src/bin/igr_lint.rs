//! Workspace invariant checker — the CI gate for the rules in
//! `crates/igr-lint` (see `docs/ANALYSIS.md` for the rule catalog and the
//! allowlist justification policy).
//!
//! ```bash
//! # interactive run from anywhere in the workspace:
//! cargo run --release -p igr-bench --bin igr_lint
//!
//! # CI gate: nonzero exit on any unallowlisted finding or stale
//! # lint.allow entry, JSON-lines findings written for artifact upload:
//! cargo run --release -p igr-bench --bin igr_lint -- --ci --out lint_findings.jsonl
//! ```
//!
//! Output is one JSON object per finding (allowlisted findings carry their
//! justification; stale allowlist entries are findings too, under the
//! `stale-allow` rule), so the artifact diffs cleanly across runs.

use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: igr_lint [--ci] [--root DIR] [--out FILE.jsonl]\n\
             \n\
             --ci    exit 1 on any unallowlisted finding or stale lint.allow entry\n\
             --root  workspace root to lint (default: autodetected from the\n\
             \x20       manifest dir / current dir by looking for Cargo.toml + crates/)\n\
             --out   write JSON-lines findings (always includes allowlisted\n\
             \x20       findings and stale allowlist entries)"
        );
        return;
    }
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .map(|i| {
                args.get(i + 1).unwrap_or_else(|| {
                    eprintln!("{name} takes a value");
                    std::process::exit(2);
                })
            })
            .cloned()
    };
    let ci = args.iter().any(|a| a == "--ci");
    let root = flag("--root").map(PathBuf::from).unwrap_or_else(|| {
        find_workspace_root().unwrap_or_else(|| {
            eprintln!("igr_lint: could not locate the workspace root (use --root)");
            std::process::exit(2);
        })
    });

    let report = match igr_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("igr_lint: {e}");
            std::process::exit(2);
        }
    };

    if let Some(out) = flag("--out") {
        if let Err(e) = std::fs::write(&out, report.to_jsonl()) {
            eprintln!("igr_lint: write {out}: {e}");
            std::process::exit(2);
        }
    }

    let allowed = report.findings.iter().filter(|f| f.allowed).count();
    let violations: Vec<_> = report.violations().collect();
    for f in &violations {
        println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
        if !f.snippet.is_empty() {
            println!("    {}", f.snippet);
        }
    }
    for e in &report.stale_allow {
        println!(
            "lint.allow:{}: [stale-allow] entry `{} | {} | {}` matched no finding — delete it",
            e.line, e.rule, e.path_suffix, e.pattern
        );
    }
    println!(
        "igr_lint: {} file(s) scanned, {} violation(s), {} allowlisted, {} stale allow entr{}",
        report.files_scanned,
        violations.len(),
        allowed,
        report.stale_allow.len(),
        if report.stale_allow.len() == 1 {
            "y"
        } else {
            "ies"
        },
    );

    if ci && !report.is_clean() {
        std::process::exit(1);
    }
}

/// Find the workspace root: walk up from `CARGO_MANIFEST_DIR` (when built
/// by cargo) or the current dir, looking for a `Cargo.toml` next to a
/// `crates/` directory.
fn find_workspace_root() -> Option<PathBuf> {
    let start = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .or_else(|| std::env::current_dir().ok())?;
    let mut dir = start.as_path();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir.to_path_buf());
        }
        dir = dir.parent()?;
    }
}
