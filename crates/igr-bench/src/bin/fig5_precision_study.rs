//! Fig. 5 reproduction: a three-engine plume simulated with FP16/32 mixed,
//! FP32, and FP64 storage under IGR, plus the FP64 baseline numerics.
//!
//! The paper's finding: FP32 and FP64 are visually indistinguishable; FP16
//! storage seeds hydrodynamic instabilities earlier (its rounding noise acts
//! as a perturbation) but remains faithful; the baseline shows grid-aligned
//! artifacts. We quantify: per-precision deviation from the FP64 IGR run,
//! instability onset (growth of transverse kinetic energy), and stability.

use igr_app::cases;
use igr_app::driver::{Cadence, Driver, FnObserver};
use igr_app::io::plane_slice;
use igr_bench::{fmt_g, section, TextTable};
use igr_core::solver::{GhostOps, RhsScheme, Solver};
use igr_prec::{Real, Storage, StoreF16, StoreF32, StoreF64};

/// Transverse (x-direction) kinetic energy: the jet flows along +y, so
/// x-momentum growth tracks shear-layer instability onset.
fn transverse_ke<R: Real, S: Storage<R>, Sch: RhsScheme<R, S>, G: GhostOps<R, S>>(
    s: &Solver<R, S, Sch, G>,
) -> f64 {
    let shape = s.q.shape();
    let mut ke = 0.0;
    for k in 0..shape.nz as i32 {
        for j in 0..shape.ny as i32 {
            for i in 0..shape.nx as i32 {
                let rho = s.q.rho.at(i, j, k).to_f64();
                let mx = s.q.mx.at(i, j, k).to_f64();
                ke += 0.5 * mx * mx / rho;
            }
        }
    }
    ke
}

fn rho_slice_f64<R: Real, S: Storage<R>, Sch: RhsScheme<R, S>, G: GhostOps<R, S>>(
    s: &Solver<R, S, Sch, G>,
) -> Vec<Vec<f64>> {
    plane_slice(&s.q.rho, 0)
}

fn max_abs_diff(a: &[Vec<f64>], b: &[Vec<f64>]) -> f64 {
    let mut m = 0.0f64;
    for (ra, rb) in a.iter().zip(b) {
        for (x, y) in ra.iter().zip(rb) {
            m = m.max((x - y).abs());
        }
    }
    m
}

/// March `steps` steps through the unified driver, recording the
/// transverse-KE instability-onset series after every step. A diverging run
/// reports how far it got (`ok = false`) — the sub-FP64 stability question
/// is the point of the figure.
fn run_onset<R: Real, S: Storage<R>, Sch: RhsScheme<R, S>, G: GhostOps<R, S>>(
    solver: &mut Solver<R, S, Sch, G>,
    steps: usize,
) -> (Vec<f64>, bool) {
    let mut onset = Vec::with_capacity(steps);
    let ok = Driver::new()
        .max_steps(steps)
        .observe(
            Cadence::EveryStep,
            FnObserver(|s: &Solver<R, S, Sch, G>, _info: &_| {
                onset.push(transverse_ke(s));
                Ok(())
            }),
        )
        .run(solver)
        .is_ok();
    (onset, ok)
}

fn main() {
    let n = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(48usize);
    let steps = 60;
    let noise = 1e-4;
    let seed = 7;

    section(&format!(
        "Fig. 5: three-engine configuration, {}x{} cells, {} steps, noise {:.0e}",
        2 * n,
        n,
        steps,
        noise
    ));

    let case = cases::three_engine_2d(n, noise, seed);

    // Reference: FP64 IGR.
    let mut ref64 = case.igr_solver::<f64, StoreF64>();
    let (onset64, ok64) = run_onset(&mut ref64, steps);
    let slice64 = rho_slice_f64(&ref64);

    // FP32 IGR.
    let mut s32 = case.igr_solver::<f32, StoreF32>();
    let (onset32, ok32) = run_onset(&mut s32, steps);
    let slice32 = rho_slice_f64(&s32);

    // FP16-storage IGR.
    let mut s16 = case.igr_solver::<f32, StoreF16>();
    let (onset16, ok16) = run_onset(&mut s16, steps);
    let slice16 = rho_slice_f64(&s16);

    // FP64 baseline numerics.
    let mut sb = case.weno_solver::<f64, StoreF64>();
    let okb = Driver::new().max_steps(steps).run(&mut sb).is_ok();
    let slice_b = rho_slice_f64(&sb);

    let mut t = TextTable::new(vec![
        "Run",
        "stable?",
        "max |rho - rho_fp64_igr|",
        "transverse KE (final)",
    ]);
    t.row(vec![
        "IGR FP64 (reference)".to_string(),
        ok64.to_string(),
        "0".to_string(),
        fmt_g(*onset64.last().unwrap_or(&0.0)),
    ]);
    t.row(vec![
        "IGR FP32".to_string(),
        ok32.to_string(),
        fmt_g(max_abs_diff(&slice32, &slice64)),
        fmt_g(*onset32.last().unwrap_or(&0.0)),
    ]);
    t.row(vec![
        "IGR FP16/32".to_string(),
        ok16.to_string(),
        fmt_g(max_abs_diff(&slice16, &slice64)),
        fmt_g(*onset16.last().unwrap_or(&0.0)),
    ]);
    t.row(vec![
        "Baseline FP64".to_string(),
        okb.to_string(),
        fmt_g(max_abs_diff(&slice_b, &slice64)),
        "-".to_string(),
    ]);
    println!("{}", t.render());

    println!("Shape checks vs the paper:");
    println!(
        "  FP32 deviation from FP64 ({:.2e}) << FP16 deviation ({:.2e})  [paper: FP32/FP64 visually identical]",
        max_abs_diff(&slice32, &slice64),
        max_abs_diff(&slice16, &slice64),
    );
    println!(
        "  Baseline deviates from IGR reference by {:.2e}  [different numerics: grid-aligned artifacts]",
        max_abs_diff(&slice_b, &slice64)
    );

    // Emit instability-onset series.
    let mut csv = String::from("step,ke_fp64,ke_fp32,ke_fp16\n");
    for i in 0..onset64.len().min(onset32.len()).min(onset16.len()) {
        csv.push_str(&format!(
            "{i},{:.6e},{:.6e},{:.6e}\n",
            onset64[i], onset32[i], onset16[i]
        ));
    }
    std::fs::write("fig5_onset.csv", csv).ok();
    println!("instability-onset series written to fig5_onset.csv");
}
