//! Fig. 2 reproduction: inviscid regularization (IGR) vs localized
//! artificial diffusivity (LAD), on (a) a shock problem and (b) an
//! oscillatory problem.
//!
//! (a) A double Sod tube on a periodic domain (discontinuities at x = 0.25
//!     and 0.75) has an exact solution from the Riemann solver while the
//!     waves are separated. LAD spreads the shock over a user-set width
//!     with a profile that is not high-order smooth; IGR's shock is smooth
//!     at the grid scale. Both are quantified against the exact profile.
//! (b) A high-wavenumber acoustic packet: widening LAD's shock support
//!     (larger C_β) dissipates the oscillation amplitude; IGR preserves it.

use igr_app::cases;
use igr_app::driver::Driver;
use igr_app::io::{csv_string, primitive_profiles};
use igr_baseline::exact_riemann::{ExactRiemann, PrimitiveState};
use igr_baseline::lad::Lad1d;
use igr_bench::{fmt_g, section, TextTable};
use igr_core::bc::BcSet;
use igr_core::eos::Prim;
use igr_core::{IgrConfig, State};
use igr_grid::{Domain, GridShape};
use igr_prec::StoreF64;

const GAMMA: f64 = 1.4;

/// Double Sod data, with the jumps smoothed over width `w` (a sharp jump is
/// not an admissible initial state for the *regularized* equations: its
/// O(1/Δx) velocity gradient pumps a transient Σ spike that survives as an
/// acoustic artifact; the IGR shock has a smooth internal structure of
/// width ~√α ≈ 2–3 cells, so we initialize at that width — an O(Δx)
/// perturbation of the exact-solution comparison).
fn double_sod_init(x: f64, w: f64) -> (f64, f64, f64) {
    let blend = if w > 0.0 {
        0.5 * (((x - 0.25) / w).tanh() - ((x - 0.75) / w).tanh())
    } else if (0.25..0.75).contains(&x) {
        1.0
    } else {
        0.0
    };
    (0.125 + 0.875 * blend, 0.0, 0.1 + 0.9 * blend)
}

/// Exact pressure profile of the double Sod tube at time `t` (valid while
/// the fans from the two discontinuities stay separated).
fn exact_pressure(n: usize, t: f64) -> Vec<f64> {
    let right = ExactRiemann::solve(
        PrimitiveState::new(1.0, 0.0, 1.0),
        PrimitiveState::new(0.125, 0.0, 0.1),
        GAMMA,
    );
    let dx = 1.0 / n as f64;
    (0..n)
        .map(|i| {
            let x = (i as f64 + 0.5) * dx;
            // The problem is mirror-symmetric about x = 0.5: fold the left
            // half onto the right discontinuity's frame.
            let xi = if x >= 0.5 {
                (x - 0.75) / t
            } else {
                -(x - 0.25) / t
            };
            right.sample(xi).p
        })
        .collect()
}

fn run_igr(n: usize, t_end: f64, alpha_factor: f64) -> Vec<f64> {
    let shape = GridShape::new(n, 1, 1, 3);
    let domain = Domain::unit(shape);
    let cfg = IgrConfig {
        alpha_factor,
        bc: BcSet::all_periodic(),
        ..IgrConfig::default()
    };
    let w = 2.0 / n as f64;
    let mut q: State<f64, StoreF64> = State::zeros(shape);
    q.set_prim_field(&domain, GAMMA, |p| {
        let (r, u, pr) = double_sod_init(p[0], w);
        Prim::new(r, [u, 0.0, 0.0], pr)
    });
    let mut solver = igr_core::solver::igr_solver(cfg, domain, q);
    Driver::new()
        .until(t_end)
        .max_steps(100_000)
        .run(&mut solver)
        .unwrap();
    let (_, _, p) = primitive_profiles(&solver.q, GAMMA);
    p
}

fn run_lad(n: usize, t_end: f64, c_beta: f64) -> Vec<f64> {
    let w = 2.0 / n as f64;
    let mut s = Lad1d::new(n, 1.0, GAMMA, c_beta, |x| double_sod_init(x, w));
    while s.t() < t_end {
        let dt = s.stable_dt(0.35).min(t_end - s.t());
        s.step(dt);
    }
    (0..n).map(|i| s.p(i)).collect()
}

fn l1(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>() / a.len() as f64
}

/// Smoothness of the captured shock: the max second difference of p over
/// the shock region, normalized by the pressure jump. A profile that is
/// high-order smooth at the grid scale scores low; a viscous profile with
/// sensor kinks (LAD) scores high — the paper's Fig. 2(a,i) vs (a,ii)
/// distinction.
fn shock_roughness(p: &[f64], x: &[f64], shock_window: (f64, f64), jump: f64) -> f64 {
    let mut m = 0.0f64;
    for i in 1..p.len() - 1 {
        if x[i] > shock_window.0 && x[i] < shock_window.1 {
            m = m.max((p[i + 1] - 2.0 * p[i] + p[i - 1]).abs());
        }
    }
    m / jump
}

/// Oscillation excess: total variation beyond the reference's (Gibbs
/// ringing indicator).
fn tv_excess(p: &[f64], reference: &[f64]) -> f64 {
    let tv = |v: &[f64]| -> f64 { v.windows(2).map(|w| (w[1] - w[0]).abs()).sum() };
    (tv(p) - tv(reference)).max(0.0)
}

fn main() {
    let n = 512;
    let t_end = 0.1;

    section("Fig. 2(a): shock problem — pressure profiles");
    let exact = exact_pressure(n, t_end);
    let igr = run_igr(n, t_end, 10.0);
    let lad_narrow = run_lad(n, t_end, 1.0);
    let lad_wide = run_lad(n, t_end, 5.0);

    // The left-moving shock at t=0.1 sits near x = 0.09 (mirror at 0.91).
    let xs: Vec<f64> = (0..n).map(|i| (i as f64 + 0.5) / n as f64).collect();
    let window = (0.04, 0.14);
    let jump = 0.30313 - 0.1; // p* - p_ambient
    let mut t = TextTable::new(vec![
        "Method",
        "L1(p) vs exact",
        "TV excess (ringing)",
        "shock roughness",
    ]);
    for (name, p) in [
        ("IGR", &igr),
        ("LAD (narrow)", &lad_narrow),
        ("LAD (wide)", &lad_wide),
    ] {
        t.row(vec![
            name.to_string(),
            fmt_g(l1(p, &exact)),
            fmt_g(tv_excess(p, &exact)),
            fmt_g(shock_roughness(p, &xs, window, jump)),
        ]);
    }
    println!("{}", t.render());
    println!("IGR's L1 is dominated by its *designed* smooth shock broadening (Fig. 2(a,ii));");
    println!("'shock roughness' (normalized max 2nd difference in the shock region) is the");
    println!("paper's smoothness contrast: LAD profiles carry sensor kinks, IGR is smooth.");

    // Emit the series (the actual figure data).
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            vec![
                (i as f64 + 0.5) / n as f64,
                exact[i],
                igr[i],
                lad_narrow[i],
                lad_wide[i],
            ]
        })
        .collect();
    let csv = csv_string(
        &["x", "p_exact", "p_igr", "p_lad_narrow", "p_lad_wide"],
        &rows,
    );
    let path = "fig2a_shock.csv";
    std::fs::write(path, csv).ok();
    println!("series written to {path}");

    section("Fig. 2(b): oscillatory problem — amplitude preservation");
    // Acoustic packet advected for one domain transit.
    let k = 16;
    let amp = 5e-3;
    let n_osc = 256;
    let c = (GAMMA_OSC).sqrt();
    let t_osc = 0.5 / c;

    let igr_amp = {
        let case = cases::acoustic_packet(n_osc, k, amp);
        let mut solver = case.igr_solver::<f64, StoreF64>();
        Driver::new()
            .until(t_osc)
            .max_steps(100_000)
            .run(&mut solver)
            .unwrap();
        let (rho, _, _) = primitive_profiles(&solver.q, GAMMA);
        amplitude(&rho)
    };
    let lad_amp = |c_beta: f64| -> f64 {
        let mut s = Lad1d::new(n_osc, 1.0, GAMMA, c_beta, |x| {
            let sft = amp * (std::f64::consts::TAU * k as f64 * x).sin();
            (1.0 + sft, c * sft, 1.0 + GAMMA * sft)
        });
        while s.t() < t_osc {
            let dt = s.stable_dt(0.3).min(t_osc - s.t());
            s.step(dt);
        }
        let rho: Vec<f64> = s.rho.clone();
        amplitude(&rho)
    };

    let mut o = TextTable::new(vec!["Method", "retained amplitude", "fraction of initial"]);
    let a_igr = igr_amp;
    let a_narrow = lad_amp(1.0);
    let a_wide = lad_amp(50.0);
    for (name, a) in [
        ("IGR", a_igr),
        ("LAD (narrow)", a_narrow),
        ("LAD (wide)", a_wide),
    ] {
        o.row(vec![name.to_string(), fmt_g(a), fmt_g(a / amp)]);
    }
    println!("{}", o.render());
    println!(
        "Shape check: IGR preserves the oscillation ({:.0}%) while wide LAD dissipates it ({:.0}%),",
        100.0 * a_igr / amp,
        100.0 * a_wide / amp
    );
    println!("matching Fig. 2(b)'s message that viscous widening destroys fine-scale features.");
}

const GAMMA_OSC: f64 = GAMMA;

fn amplitude(rho: &[f64]) -> f64 {
    let mean = rho.iter().sum::<f64>() / rho.len() as f64;
    rho.iter().map(|r| (r - mean).abs()).fold(0.0, f64::max)
}
