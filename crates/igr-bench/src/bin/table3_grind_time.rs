//! Table 3 reproduction: grind time (ns per cell per step) for the WENO
//! baseline vs IGR, across precisions and memory modes.
//!
//! Measured section: both schemes run for real on this machine's CPU, on
//! the same 3-D Mach-10 jet workload, at FP64 / FP32 / FP16-storage. The
//! *ratios* (IGR vs baseline; FP32 vs FP64) are the reproducible claim.
//! Modeled section: the anchor-and-predict device models of `igr-perf`
//! regenerate the paper's full table.

use igr_app::{cases, measure_grind};
use igr_bench::{fmt_g, fmt_opt, section, TextTable};
use igr_perf::{GrindModel, MemoryMode, Precision, Scheme};
use igr_prec::{StoreF16, StoreF32, StoreF64};

fn main() {
    let n = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(24usize);
    let warmup = 1;
    let steps = 3;

    section(&format!(
        "Table 3 (measured): single Mach-10 jet, {}x{}x{} cells, host CPU",
        2 * n,
        n,
        n
    ));

    let case = cases::single_jet_3d(n);
    let mut t = TextTable::new(vec!["Scheme", "Precision", "ns/cell/step", "vs IGR FP64"]);

    let igr64 = {
        let mut s = case.igr_solver::<f64, StoreF64>();
        measure_grind(&mut s, warmup, steps).ns_per_cell_step
    };
    let igr32 = {
        let mut s = case.igr_solver::<f32, StoreF32>();
        measure_grind(&mut s, warmup, steps).ns_per_cell_step
    };
    let igr16 = {
        let mut s = case.igr_solver::<f32, StoreF16>();
        measure_grind(&mut s, warmup, steps).ns_per_cell_step
    };
    let weno64 = {
        let mut s = case.weno_solver::<f64, StoreF64>();
        measure_grind(&mut s, warmup, steps).ns_per_cell_step
    };

    t.row(vec![
        "WENO5+HLLC",
        "FP64",
        &fmt_g(weno64),
        &fmt_g(weno64 / igr64),
    ]);
    t.row(vec!["IGR", "FP64", &fmt_g(igr64), "1.000"]);
    t.row(vec!["IGR", "FP32", &fmt_g(igr32), &fmt_g(igr32 / igr64)]);
    t.row(vec!["IGR", "FP16/32", &fmt_g(igr16), &fmt_g(igr16 / igr64)]);
    println!("{}", t.render());
    println!(
        "Headline ratio: WENO/IGR (FP64) = {:.2}x (paper: ~4.4x on GH200, ~5.4x per MI250X GCD)",
        weno64 / igr64
    );

    section("Table 3 (modeled): paper devices, anchor-and-predict");
    let mut m = TextTable::new(vec![
        "Device",
        "Precision",
        "Baseline in-core",
        "IGR in-core",
        "IGR unified",
    ]);
    for model in GrindModel::paper_devices() {
        for prec in [Precision::Fp64, Precision::Fp32, Precision::Fp16Fp32] {
            let base = model.grind_ns(Scheme::WenoBaseline, prec, MemoryMode::InCore);
            let (ic, un) = if model.spec.unified_pool {
                // MI300A is always unified.
                (None, model.grind_ns(Scheme::Igr, prec, MemoryMode::Unified))
            } else {
                (
                    model.grind_ns(Scheme::Igr, prec, MemoryMode::InCore),
                    model.grind_ns(Scheme::Igr, prec, MemoryMode::Unified),
                )
            };
            m.row(vec![
                model.spec.name.to_string(),
                prec.label().to_string(),
                fmt_opt(base),
                if model.spec.unified_pool {
                    "(unified)".into()
                } else {
                    fmt_opt(ic)
                },
                fmt_opt(un),
            ]);
        }
    }
    println!("{}", m.render());
    println!("*N/A: numerically unstable below FP64 (paper Table 3's '*').");
    println!(
        "Paper FP64 row: GH200 16.89/3.83/4.18; MI250X GCD 69.72/13.01/19.81; MI300A 29.50/-/7.21."
    );

    // Table 1 lists FLOPs among the measurement mechanisms: report the
    // achieved rates implied by the measured grind times, and the
    // arithmetic-intensity gap that explains why the fused IGR kernel wins
    // more wall time than its FLOP advantage alone would give.
    section("FLOP accounting (Table 1's measurement mechanism)");
    let fm = igr_perf::FlopModel::default();
    let mut ft = TextTable::new(vec![
        "Scheme",
        "FLOPs/cell/step",
        "GFLOP/s (measured)",
        "FLOP/byte",
    ]);
    for (scheme, label, grind) in [
        (Scheme::Igr, "IGR", igr64),
        (Scheme::WenoBaseline, "WENO5+HLLC", weno64),
    ] {
        ft.row(vec![
            label.to_string(),
            format!("{:.0}", fm.per_step(scheme)),
            fmt_g(fm.gflops(scheme, grind)),
            fmt_g(fm.arithmetic_intensity(scheme, 8.0)),
        ]);
    }
    println!("{}", ft.render());
    println!(
        "FLOP ratio WENO/IGR = {:.2}x vs wall-time ratio {:.2}x: the extra gap is staged memory traffic.",
        fm.per_step(Scheme::WenoBaseline) / fm.per_step(Scheme::Igr),
        weno64 / igr64
    );
}
