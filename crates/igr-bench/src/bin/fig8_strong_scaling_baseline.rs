//! Fig. 8 reproduction: strong scaling of IGR vs the optimized WENO
//! baseline, FP32, Frontier — plus the capacity gap that drives it.
//!
//! The baseline's memory footprint caps its per-node problem at a fraction
//! of IGR's (421 M vs 10.5 B cells/node in the paper), so its 8-node base
//! problem is small and drowns in per-step overhead as it spreads across
//! the machine: 6 % vs 38 % efficiency at full system.

use igr_app::cases;
use igr_bench::{fmt_g, section, TextTable};
use igr_perf::{
    CapacityModel, GrindModel, MemoryLayout, MemoryMode, Precision, ScalingModel, Scheme, System,
};
use igr_prec::StoreF64;

fn main() {
    section("Fig. 8 capacity inputs: cells per Frontier node, FP32");
    let igr_cap = CapacityModel::new(MemoryLayout::igr_unified_12_17(4.0))
        .max_cells_per_device(64 << 30, 64 << 30)
        * 8.0;
    let weno_cap =
        CapacityModel::new(MemoryLayout::weno_in_core(4.0)).max_cells_per_device(64 << 30, 0) * 8.0;
    let mut c = TextTable::new(vec!["Scheme", "cells/node (model)", "cells/node (paper)"]);
    c.row(vec![
        "IGR unified".to_string(),
        fmt_g(igr_cap),
        "10.5e9".to_string(),
    ]);
    c.row(vec![
        "Baseline in-core".to_string(),
        fmt_g(weno_cap),
        "421e6".to_string(),
    ]);
    println!("{}", c.render());
    println!("(Our reimplemented baseline stores 65 arrays; MFC's production WENO path");
    println!("stores more, which is why the paper's baseline capacity is smaller still.)");

    section("Fig. 8 (modeled): strong scaling, FP32, Frontier, 8-node base");
    let igr = ScalingModel::new(
        System::FRONTIER,
        GrindModel::mi250x_gcd(),
        Scheme::Igr,
        Precision::Fp32,
    );
    let mut weno = ScalingModel::new(
        System::FRONTIER,
        GrindModel::mi250x_gcd(),
        Scheme::WenoBaseline,
        Precision::Fp32,
    );
    weno.mode = MemoryMode::InCore;

    // Base problems fill 8 nodes at each scheme's capacity (paper's values).
    let igr_global = 10.5e9 * 8.0;
    let weno_global = 0.421e9 * 8.0;
    let mut nodes: Vec<usize> = (3..14).map(|p| 1usize << p).collect();
    nodes.push(9408);

    let igr_pts = igr.strong_scaling(igr_global, 8, &nodes);
    let weno_pts = weno.strong_scaling(weno_global, 8, &nodes);
    let mut t = TextTable::new(vec![
        "nodes",
        "IGR speedup",
        "IGR eff.",
        "baseline speedup",
        "baseline eff.",
    ]);
    for (pi, pw) in igr_pts.iter().zip(&weno_pts) {
        t.row(vec![
            pi.nodes.to_string(),
            fmt_g(pi.speedup),
            format!("{:.1}%", 100.0 * pi.efficiency),
            fmt_g(pw.speedup),
            format!("{:.1}%", 100.0 * pw.efficiency),
        ]);
    }
    println!("{}", t.render());
    println!("Paper: 38% (IGR) vs 6% (baseline) at full system.");

    section("Measured (host CPU): per-step cost ratio driving the gap");
    // The other half of Fig. 8's story: at equal cell counts the baseline
    // also pays more per cell-step, measured here for real.
    let case = cases::single_jet_3d(20);
    let gi = {
        let mut s = case.igr_solver::<f64, StoreF64>();
        igr_app::measure_grind(&mut s, 1, 3)
    };
    let gw = {
        let mut s = case.weno_solver::<f64, StoreF64>();
        igr_app::measure_grind(&mut s, 1, 3)
    };
    println!(
        "measured grind: IGR {:.0} ns/cell/step, baseline {:.0} ns/cell/step (ratio {:.2}x)",
        gi.ns_per_cell_step,
        gw.ns_per_cell_step,
        gw.ns_per_cell_step / gi.ns_per_cell_step
    );
}
