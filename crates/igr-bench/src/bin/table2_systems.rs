//! Table 2 reproduction: node and full-system properties of the machines.

use igr_bench::{section, TextTable};
use igr_perf::System;

fn main() {
    section("Table 2: Node and full system properties");
    let mut t = TextTable::new(vec![
        "System",
        "Nodes",
        "Devices",
        "Device",
        "HBM/dev [GB]",
        "Host/dev [GB]",
        "Sys HBM [PB]",
        "Sys host [PB]",
        "Peak power [MW]",
        "Rmax [PF]",
        "TOP500",
    ]);
    const GB: f64 = (1u64 << 30) as f64;
    const PB: f64 = (1u64 << 50) as f64;
    for sys in System::PAPER_SYSTEMS.iter().chain([&System::JUPITER]) {
        t.row(vec![
            sys.name.to_string(),
            sys.nodes.to_string(),
            sys.total_devices().to_string(),
            sys.device.name.to_string(),
            format!("{:.0}", sys.device.device_mem_bytes as f64 / GB),
            format!("{:.0}", sys.device.host_mem_bytes as f64 / GB),
            format!("{:.2}", sys.total_device_memory() as f64 / PB),
            format!("{:.2}", sys.total_host_memory() as f64 / PB),
            format!("{:.1}", sys.peak_power_mw),
            format!("{:.0}", sys.rmax_pflops),
            sys.top500_rank.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Paper values (Table 2): El Capitan 11136 nodes / 5.6 PB APU / 34.8 MW / 1742 PF / #1;"
    );
    println!("Frontier 9472 nodes / 4.8+4.8 PB / 24.6 MW / 1353 PF / #2; Alps 2688 nodes / 1.0+1.3 PB / 7.1 MW / 435 PF / #8.");
}
