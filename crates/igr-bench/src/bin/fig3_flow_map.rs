//! Fig. 3 reproduction: flow-map trajectories under IGR in the 1-D
//! pressureless system, for regularization strengths α ∈ {0, 1e-5, 1e-4,
//! 1e-3}.
//!
//! Two tracer particles straddle a forming shock. With α = 0 (the exact
//! free-streaming characteristics) the trajectories cross; with IGR they
//! converge asymptotically without crossing, faster for smaller α.

use igr_bench::{fmt_g, section, TextTable};
use igr_core::pressureless::{ballistic_trajectory, Pressureless1d, SigmaSolve, TracerSet};

fn u0(x: f64) -> f64 {
    0.5 * (std::f64::consts::TAU * x).sin()
}

fn main() {
    let n = 512;
    let (x1, x2) = (0.40, 0.60);
    let t_end = 1.2;
    let alphas = [1e-5, 1e-4, 1e-3];

    section("Fig. 3: tracer trajectories, pressureless IGR");

    // Ballistic (alpha = 0, exact characteristics).
    let mut series: Vec<(String, Vec<(f64, f64, f64)>)> = Vec::new();
    let times: Vec<f64> = (0..=120).map(|i| i as f64 * t_end / 120.0).collect();
    let ballistic: Vec<(f64, f64, f64)> = times
        .iter()
        .map(|&t| {
            (
                t,
                ballistic_trajectory(x1, u0(x1), t),
                ballistic_trajectory(x2, u0(x2), t),
            )
        })
        .collect();
    series.push(("alpha=0 (exact)".to_string(), ballistic.clone()));

    for &alpha in &alphas {
        let mut flow = Pressureless1d::new(n, 1.0, alpha, SigmaSolve::Jacobi(5), u0);
        let mut tracers = TracerSet::new(&[x1, x2]);
        let mut rec: Vec<(f64, f64, f64)> = vec![(0.0, x1, x2)];
        while flow.t() < t_end {
            let dt = flow.stable_dt(0.3).min(t_end - flow.t());
            tracers.advect(&flow, dt);
            flow.step(dt);
            rec.push((flow.t(), tracers.x[0], tracers.x[1]));
        }
        series.push((format!("alpha={alpha:.0e}"), rec));
    }

    // Report the trajectory gap at a few times.
    let mut t = TextTable::new(vec![
        "series",
        "gap@t=0",
        "gap@t=0.6",
        "gap@t=1.2",
        "crossed?",
    ]);
    for (name, rec) in &series {
        let gap_at = |tq: f64| -> f64 {
            let (_, a, b) = rec
                .iter()
                .min_by(|x, y| (x.0 - tq).abs().partial_cmp(&(y.0 - tq).abs()).unwrap())
                .unwrap();
            b - a
        };
        let crossed = rec.iter().any(|&(_, a, b)| b < a);
        t.row(vec![
            name.clone(),
            fmt_g(gap_at(0.0)),
            fmt_g(gap_at(0.6)),
            fmt_g(gap_at(1.2)),
            if crossed {
                "YES".into()
            } else {
                "no".to_string()
            },
        ]);
    }
    println!("{}", t.render());
    println!("Paper's Fig. 3 shape: the exact (alpha=0) characteristics cross; IGR");
    println!("trajectories converge without crossing, with the gap at fixed t");
    println!("shrinking as alpha decreases (vanishing-viscosity limit).");

    // Emit the full trajectory series.
    let mut csv = String::from("t");
    for (name, _) in &series {
        csv.push_str(&format!(",x1[{name}],x2[{name}]"));
    }
    csv.push('\n');
    for (i, &tq) in times.iter().enumerate() {
        csv.push_str(&format!("{tq:.5}"));
        for (_, rec) in &series {
            let idx = ((i as f64 / (times.len() - 1) as f64) * (rec.len() - 1) as f64) as usize;
            let (_, a, b) = rec[idx];
            csv.push_str(&format!(",{a:.8},{b:.8}"));
        }
        csv.push('\n');
    }
    std::fs::write("fig3_flow_map.csv", csv).ok();
    println!("series written to fig3_flow_map.csv");
}
