//! Measured grind-time benchmark: the repo's tracked perf trajectory.
//!
//! Runs calibrated 2-D and 3-D engine-array cases across thread counts,
//! precisions, and kernel paths (fused vs. reference), and emits the results
//! as `BENCH_grind.json` (schema: `igr_perf::bench`, documented in
//! `docs/PERFORMANCE.md`). CI runs `--quick` and gates on the checked-in
//! baseline snapshot via `--check-against`.
//!
//! ```text
//! bench_grind [--quick] [--out PATH] [--check-against PATH]
//!             [--tolerance F] [--n3d N] [--n2d N] [--steps N] [--warmup N]
//!             [--reps N] [--trace-out PATH]
//! ```
//!
//! Exit status is non-zero iff a `--check-against` comparison finds a
//! 1-thread fused-kernel grind time more than `tolerance` (default 0.25 =
//! 25%) slower than the baseline. Multi-thread fused timings are emitted
//! and logged alongside the gate but never fail it — shared runners are too
//! noisy — so the scaling trajectory is tracked without flaking CI.
//!
//! `--trace-out` enables `igr-obs` span tracing for the whole run: each
//! record in `BENCH_grind.json` gains a per-phase `"phases"` wall-time
//! breakdown and a chrome://tracing `trace.json` is written at exit. Spans
//! cost a few atomics per *step* (not per cell), but the gated numbers are
//! by policy measured untraced, so leave it off when refreshing baselines.

use igr_app::grind::try_measure_grind;
use igr_app::{cases, CaseSetup};
use igr_bench::section;
use igr_core::config::KernelPath;
use igr_perf::bench::{check_regression, GrindRecord, GrindReport};
use igr_prec::{Real, Storage, StoreF16, StoreF32, StoreF64};

struct Args {
    quick: bool,
    out: String,
    check_against: Option<String>,
    tolerance: f64,
    n3d: usize,
    n2d: usize,
    steps: usize,
    warmup: usize,
    reps: usize,
    trace_out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        out: "BENCH_grind.json".into(),
        check_against: None,
        tolerance: 0.25,
        n3d: 0, // resolved after --quick is known
        n2d: 0,
        steps: 0,
        warmup: 0,
        reps: 3,
        trace_out: None,
    };
    let mut it = std::env::args().skip(1);
    let mut n3d = None;
    let mut n2d = None;
    let mut steps = None;
    let mut warmup = None;
    while let Some(a) = it.next() {
        let mut val = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match a.as_str() {
            "--quick" => args.quick = true,
            "--out" => args.out = val("--out"),
            "--check-against" => args.check_against = Some(val("--check-against")),
            "--tolerance" => args.tolerance = val("--tolerance").parse().expect("--tolerance"),
            "--n3d" => n3d = Some(val("--n3d").parse().expect("--n3d")),
            "--n2d" => n2d = Some(val("--n2d").parse().expect("--n2d")),
            "--steps" => steps = Some(val("--steps").parse().expect("--steps")),
            "--warmup" => warmup = Some(val("--warmup").parse().expect("--warmup")),
            "--reps" => args.reps = val("--reps").parse().expect("--reps"),
            "--trace-out" => args.trace_out = Some(val("--trace-out")),
            other => panic!("unknown argument: {other}"),
        }
    }
    args.n3d = n3d.unwrap_or(if args.quick { 16 } else { 32 });
    args.n2d = n2d.unwrap_or(if args.quick { 32 } else { 64 });
    args.steps = steps.unwrap_or(if args.quick { 3 } else { 8 });
    args.warmup = warmup.unwrap_or(if args.quick { 1 } else { 2 });
    args
}

/// One measurement under an installed thread pool: best (minimum) grind of
/// `reps` fresh-solver repetitions — single-shot timings on a shared or
/// single-core host spike with scheduling noise, and the minimum is the
/// least-interference estimate. A diverging configuration (e.g. a case that
/// is numerically unstable at FP16 storage) yields NaN, which serializes as
/// JSON `null` rather than aborting the whole run; divergence is
/// deterministic, so the first repetition decides.
fn run_one<R: Real, S: Storage<R>>(
    case: &CaseSetup,
    kernel: KernelPath,
    threads: usize,
    warmup: usize,
    steps: usize,
    reps: usize,
) -> f64 {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool");
    pool.install(|| {
        let mut best = f64::INFINITY;
        for _ in 0..reps.max(1) {
            let mut cfg = case.igr_config();
            cfg.kernel = kernel;
            let mut solver =
                igr_core::solver::igr_solver(cfg, case.domain, case.init_state::<R, S>());
            match try_measure_grind(&mut solver, warmup, steps) {
                Ok(g) => best = best.min(g.ns_per_cell_step),
                Err(e) => {
                    eprintln!("  ({}, {} {}t): diverged: {e}", case.name, R::NAME, threads);
                    return f64::NAN;
                }
            }
        }
        best
    })
}

#[allow(clippy::too_many_arguments)]
fn run_precision(
    case: &CaseSetup,
    precision: &str,
    kernel: KernelPath,
    threads: usize,
    warmup: usize,
    steps: usize,
    reps: usize,
) -> f64 {
    match precision {
        "fp64" => run_one::<f64, StoreF64>(case, kernel, threads, warmup, steps, reps),
        "fp32" => run_one::<f32, StoreF32>(case, kernel, threads, warmup, steps, reps),
        "fp16/32" => run_one::<f32, StoreF16>(case, kernel, threads, warmup, steps, reps),
        other => panic!("unknown precision {other}"),
    }
}

/// Per-phase cumulative span time from the global registry, name-keyed.
/// Deltas of two calls bracket one measurement's phase breakdown.
fn phase_totals() -> std::collections::BTreeMap<String, u64> {
    igr_obs::Registry::global()
        .snapshot()
        .histograms
        .iter()
        .map(|h| (h.name.clone(), h.total_ns))
        .collect()
}

fn main() {
    let args = parse_args();
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let tracing = args.trace_out.is_some();
    if tracing {
        igr_obs::enable();
        igr_obs::Registry::global().set_capture_events(true);
    }

    let cases: Vec<CaseSetup> = vec![
        cases::three_engine_2d(args.n2d, 1e-3, 42),
        cases::super_heavy_3d(args.n3d),
    ];
    let precisions: &[&str] = if args.quick {
        &["fp64", "fp32"]
    } else {
        &["fp64", "fp32", "fp16/32"]
    };
    // Quick mode measures the gated 1-thread point *and* the 8-thread fused
    // grind: the latter is tracked (emitted + logged) but never gated, so
    // the thread-scaling trajectory has a CI-archived baseline without
    // flaking on noisy shared runners.
    let thread_counts: &[usize] = if args.quick { &[1, 8] } else { &[1, 2, 4, 8] };
    let max_threads = *thread_counts.iter().max().unwrap();

    section(&format!(
        "bench_grind: {} case(s), precisions {:?}, threads {:?}, {} steps (+{} warmup){}",
        cases.len(),
        precisions,
        thread_counts,
        args.steps,
        args.warmup,
        if args.quick { " [quick]" } else { "" }
    ));

    let mut report = GrindReport::new(host_threads, args.quick);
    for case in &cases {
        let shape = case.domain.shape;
        for &precision in precisions {
            // The fused path at every thread count; the reference path at the
            // endpoints (1 and max threads) for speedup_vs_reference.
            let mut runs: Vec<(KernelPath, usize)> = thread_counts
                .iter()
                .map(|&t| (KernelPath::Fused, t))
                .collect();
            runs.push((KernelPath::Reference, 1));
            if max_threads > 1 {
                runs.push((KernelPath::Reference, max_threads));
            }

            let mut measured: Vec<(KernelPath, usize, f64, Option<Vec<(String, f64)>>)> =
                Vec::new();
            for &(kernel, threads) in &runs {
                let before = tracing.then(phase_totals);
                let ns = run_precision(
                    case,
                    precision,
                    kernel,
                    threads,
                    args.warmup,
                    args.steps,
                    args.reps,
                );
                // Registry deltas across the measurement = this
                // configuration's phase breakdown (all reps + warmup).
                let phases = before.map(|before| {
                    phase_totals()
                        .into_iter()
                        .map(|(name, ns)| {
                            let d = ns.saturating_sub(before.get(&name).copied().unwrap_or(0));
                            (name, d as f64 * 1e-9)
                        })
                        .filter(|&(_, s)| s > 0.0)
                        .collect()
                });
                println!(
                    "  {:<16} {:<8} {:<10} {:>2}t  {:>10.1} ns/cell/step",
                    case.name,
                    precision,
                    kernel.label(),
                    threads,
                    ns
                );
                measured.push((kernel, threads, ns, phases));
            }

            let grind_of = |kernel: KernelPath, threads: usize| -> Option<f64> {
                measured
                    .iter()
                    .find(|(k, t, _, _)| *k == kernel && *t == threads)
                    .map(|&(_, _, ns, _)| ns)
            };
            for (kernel, threads, ns, phases) in &measured {
                let (kernel, threads, ns) = (*kernel, *threads, *ns);
                report.results.push(GrindRecord {
                    case: case.name.clone(),
                    nx: shape.nx,
                    ny: shape.ny,
                    nz: shape.nz,
                    cells: shape.n_interior(),
                    precision: precision.into(),
                    kernel: kernel.label().into(),
                    threads,
                    warmup: args.warmup,
                    steps: args.steps,
                    ns_per_cell_step: ns,
                    cells_per_s: 1e9 / ns,
                    speedup_vs_1t: grind_of(kernel, 1)
                        .filter(|_| threads > 1)
                        .map(|base| base / ns),
                    speedup_vs_reference: (kernel == KernelPath::Fused)
                        .then(|| grind_of(KernelPath::Reference, threads))
                        .flatten()
                        .map(|base| base / ns),
                    phases: phases.clone(),
                });
            }
        }
    }

    std::fs::write(&args.out, report.to_json()).expect("write BENCH_grind.json");
    println!("\nwrote {} ({} results)", args.out, report.results.len());

    // Tracked but deliberately not gated: the multi-thread fused grind.
    // Shared CI runners are too noisy to fail a build on parallel timings,
    // but logging + emitting them gives the thread-scaling work a baseline.
    let scaled: Vec<&GrindRecord> = report
        .results
        .iter()
        .filter(|r| r.kernel == "fused" && r.threads > 1)
        .collect();
    if !scaled.is_empty() {
        section("multi-thread fused grind (tracked, not gated)");
        for r in &scaled {
            println!(
                "  {:<16} {:<8} {:>2}t  {:>10.1} ns/cell/step  ({} vs 1t)",
                r.case,
                r.precision,
                r.threads,
                r.ns_per_cell_step,
                r.speedup_vs_1t
                    .map(|s| format!("{s:.2}x"))
                    .unwrap_or_else(|| "n/a".into()),
            );
        }
    }

    if let Some(path) = &args.trace_out {
        let file = std::fs::File::create(path).expect("create trace file");
        let mut w = std::io::BufWriter::new(file);
        igr_obs::Registry::global()
            .export_chrome_trace(&mut w)
            .expect("write trace");
        println!(
            "trace: {} spans written to {path} (open in chrome://tracing or ui.perfetto.dev)",
            igr_obs::Registry::global().event_count()
        );
    }

    if let Some(path) = &args.check_against {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let baseline = GrindReport::parse(&text)
            .unwrap_or_else(|e| panic!("cannot parse baseline {path}: {e}"));
        let findings = check_regression(&report, &baseline, args.tolerance);
        let mut failed = false;
        section(&format!(
            "regression check vs {path} (tolerance {:.0}%)",
            args.tolerance * 100.0
        ));
        for f in &findings {
            let status = match (f.current_ns, f.regressed) {
                (None, _) => "SKIP (not measured)".to_string(),
                (Some(cur), false) => format!("ok   ({:.1} vs {:.1} ns)", cur, f.baseline_ns),
                (Some(cur), true) => {
                    failed = true;
                    format!(
                        "FAIL ({:.1} ns vs baseline {:.1} ns, +{:.0}%)",
                        cur,
                        f.baseline_ns,
                        100.0 * (cur / f.baseline_ns - 1.0)
                    )
                }
            };
            println!("  {:<50} {status}", f.config);
        }
        // A gate that matched nothing is vacuous, not green: it means the
        // bench configuration drifted from the snapshot (e.g. grid-size
        // defaults changed without re-baselining) and regressions would
        // sail through unmeasured.
        if !findings.iter().any(|f| f.current_ns.is_some()) {
            eprintln!(
                "regression check matched no baseline entry — re-generate {path} \
                 for the current bench configuration (see docs/PERFORMANCE.md)"
            );
            std::process::exit(1);
        }
        if failed {
            eprintln!("grind-time regression detected");
            std::process::exit(1);
        }
    }
}
