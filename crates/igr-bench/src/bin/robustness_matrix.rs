//! Robustness matrix: the α–sweep-count interplay on a sharp shock tube.
//!
//! The paper's "≤ 5 Jacobi sweeps" holds for warm-started Σ on the smooth
//! flows of its evaluation. On *sharp* initial discontinuities the moving
//! shock makes Σ chase its own foot: the Jacobi smooth-mode damping factor
//! is ~4κ/(1+4κ) per sweep with κ = α/Δx², so larger α needs more sweeps
//! (or a smaller CFL) to track. α_f = 10 with 5 sweeps — the defaults — is
//! robust; this harness documents the stability boundary.

use igr_app::driver::{Driver, StopReason};
use igr_core::bc::BcSet;
use igr_core::config::ReconOrder;
use igr_core::eos::Prim;
use igr_core::{IgrConfig, State};
use igr_grid::{Domain, GridShape};
use igr_prec::StoreF64;

fn run(
    n: usize,
    t_end: f64,
    alpha: f64,
    order: ReconOrder,
    smooth_cells: f64,
    sweeps: usize,
    cfl: f64,
) -> String {
    let shape = GridShape::new(n, 1, 1, 3);
    let domain = Domain::unit(shape);
    let cfg = IgrConfig {
        alpha_factor: alpha,
        order,
        sweeps,
        cfl,
        bc: BcSet::all_periodic(),
        ..IgrConfig::default()
    };
    let dx = 1.0 / n as f64;
    let w = smooth_cells * dx;
    let mut q: State<f64, StoreF64> = State::zeros(shape);
    q.set_prim_field(&domain, 1.4, |p| {
        let x = p[0];
        // Smoothed double Sod: blend with tanh of width w.
        let blend = if w > 0.0 {
            0.5 * (((x - 0.25) / w).tanh() - ((x - 0.75) / w).tanh())
        } else if (0.25..0.75).contains(&x) {
            1.0
        } else {
            0.0
        };
        Prim::new(
            0.125 + blend * (1.0 - 0.125),
            [0.0; 3],
            0.1 + blend * (1.0 - 0.1),
        )
    });
    let mut solver = igr_core::solver::igr_solver(cfg, domain, q);
    match Driver::new()
        .until(t_end)
        .max_steps(200_000)
        .run(&mut solver)
    {
        // MaxSteps is a legitimate outcome for the slow-tracking corners
        // this harness charts — report which condition ended the run.
        Ok(summary) if summary.stop == StopReason::TimeReached => {
            format!("OK    steps={} t={:.3}", summary.steps, solver.t())
        }
        Ok(summary) => format!(
            "OK    steps={} t={:.3} (stopped: {:?})",
            summary.steps,
            solver.t(),
            summary.stop
        ),
        Err(e) => format!("FAIL  {e} (t={:.4})", solver.t()),
    }
}

fn main() {
    let n = 512;
    let t = 0.1;
    println!("sharp double-Sod tube, n={n}, t_end={t} (OK = finite to t_end)\n");
    for (label, alpha, order, smooth, sweeps, cfl) in [
        (
            "alpha=10 s5 (defaults)",
            10.0,
            ReconOrder::Fifth,
            0.0,
            5,
            0.4,
        ),
        (
            "alpha=10 s5 smooth IC",
            10.0,
            ReconOrder::Fifth,
            2.0,
            5,
            0.4,
        ),
        ("alpha=10 s8", 10.0, ReconOrder::Fifth, 0.0, 8, 0.4),
        ("alpha=5  s5", 5.0, ReconOrder::Fifth, 0.0, 5, 0.4),
        (
            "alpha=20 s5 (lags shock)",
            20.0,
            ReconOrder::Fifth,
            0.0,
            5,
            0.4,
        ),
        ("alpha=20 s10", 20.0, ReconOrder::Fifth, 0.0, 10, 0.4),
        ("alpha=20 s5 cfl=0.2", 20.0, ReconOrder::Fifth, 0.0, 5, 0.2),
        (
            "alpha=50 s5 smooth IC",
            50.0,
            ReconOrder::Fifth,
            2.0,
            5,
            0.4,
        ),
        ("order3 alpha=20 s5", 20.0, ReconOrder::Third, 0.0, 5, 0.4),
        ("order1 alpha=20 s5", 20.0, ReconOrder::First, 0.0, 5, 0.4),
        ("alpha=10 s5 n=1024", 10.0, ReconOrder::Fifth, 0.0, 5, 0.4),
    ] {
        let nn = if label.contains("1024") { 1024 } else { n };
        println!(
            "{label:28} -> {}",
            run(nn, t, alpha, order, smooth, sweeps, cfl)
        );
    }
}
