//! Table 4 reproduction: energy (µJ) per grid cell per time step, baseline
//! vs IGR, per machine — plus a measured CPU-proxy section.

use igr_app::{cases, measure_grind};
use igr_bench::{fmt_g, section, TextTable};
use igr_perf::{EnergyModel, Precision, Scheme};
use igr_prec::StoreF64;

fn main() {
    section("Table 4 (modeled): energy per cell-step, FP64");
    let mut t = TextTable::new(vec![
        "Energy (uJ)",
        "El Capitan (MI300A)",
        "Frontier (MI250X)",
        "Alps (GH200)",
    ]);
    let models = EnergyModel::paper_devices(); // MI300A, MI250X, GH200 order
    let row = |scheme: Scheme| -> Vec<String> {
        models
            .iter()
            .map(|m| fmt_g(m.energy_uj(scheme, Precision::Fp64).unwrap()))
            .collect()
    };
    let b = row(Scheme::WenoBaseline);
    let i = row(Scheme::Igr);
    t.row(vec![
        "Baseline".to_string(),
        b[0].clone(),
        b[1].clone(),
        b[2].clone(),
    ]);
    t.row(vec![
        "IGR".to_string(),
        i[0].clone(),
        i[1].clone(),
        i[2].clone(),
    ]);
    println!("{}", t.render());
    println!("Paper: Baseline 15.24 / 10.67 / 9.349; IGR 3.493 / 1.982 / 2.466.");
    let mut imp = TextTable::new(vec![
        "Machine",
        "Improvement (model)",
        "Improvement (paper)",
    ]);
    let paper_imp = [15.24 / 3.493, 10.67 / 1.982, 9.349 / 2.466];
    for (m, p) in models.iter().zip(paper_imp) {
        imp.row(vec![
            m.grind.spec.name.to_string(),
            fmt_g(m.improvement_fp64()),
            fmt_g(p),
        ]);
    }
    println!("{}", imp.render());

    section("Measured CPU proxy: grind time x nominal package power");
    // On the host CPU we cannot read RAPL counters portably; we report the
    // measured grind times with an assumed fixed package power, which
    // preserves exactly the ratio structure (energy ratio == grind ratio at
    // equal power — the paper's "to lowest order" statement for Frontier /
    // El Capitan).
    let n = 20;
    let case = cases::single_jet_3d(n);
    let watts = 65.0;
    let gi = {
        let mut s = case.igr_solver::<f64, StoreF64>();
        measure_grind(&mut s, 1, 3)
    };
    let gw = {
        let mut s = case.weno_solver::<f64, StoreF64>();
        measure_grind(&mut s, 1, 3)
    };
    let mut meas = TextTable::new(vec!["Scheme", "ns/cell/step", "uJ/cell/step @65W"]);
    meas.row(vec![
        "Baseline",
        &fmt_g(gw.ns_per_cell_step),
        &fmt_g(gw.energy_uj(watts)),
    ]);
    meas.row(vec![
        "IGR",
        &fmt_g(gi.ns_per_cell_step),
        &fmt_g(gi.energy_uj(watts)),
    ]);
    println!("{}", meas.render());
    println!(
        "Measured energy improvement (equal-power proxy): {:.2}x (paper: 4.4x / 5.4x / 3.8x)",
        gw.energy_uj(watts) / gi.energy_uj(watts)
    );
}
