//! Accuracy-side ablations of the design choices DESIGN.md calls out.
//!
//! The criterion benches time these knobs; this harness measures what they
//! do to the *solution*:
//!
//! 1. α-prefactor sweep → regularized shock width (√α scaling, §5.2);
//! 2. Jacobi vs Gauss–Seidel residual per sweep (warm-started);
//! 3. reconstruction order 1/3/5 → smooth-advection error;
//! 4. RK order 1/2/3 → temporal convergence;
//! 5. warm-start sweep count → Sod accuracy (the "≤ 5 sweeps" claim).

use igr_app::cases;
use igr_baseline::exact_riemann::{ExactRiemann, PrimitiveState};
use igr_bench::{fmt_g, section, TextTable};
use igr_core::config::{EllipticKind, ReconOrder, RkOrder};
use igr_core::solver::igr_solver;
use igr_grid::Axis;
use igr_prec::StoreF64;

/// 10–90 % density-transition width of the regularized shock in a Sod run.
fn sod_shock_width(n: usize, alpha_factor: f64) -> f64 {
    let case = cases::sod(n);
    let mut cfg = case.igr_config();
    cfg.alpha_factor = alpha_factor;
    let mut s = igr_solver::<f64, StoreF64>(cfg, case.domain, case.init_state());
    s.run_until(0.2, 100_000).expect("sod run");
    // The shock at t=0.2 sits near x ~ 0.85 with rho jumping ~0.266->0.125.
    let exact = ExactRiemann::solve(
        PrimitiveState::new(1.0, 0.0, 1.0),
        PrimitiveState::new(0.125, 0.0, 0.1),
        case.gamma,
    );
    let (rho_post, rho_pre) = (exact.sample(1.6).rho, 0.125);
    let hi = rho_pre + 0.9 * (rho_post - rho_pre);
    let lo = rho_pre + 0.1 * (rho_post - rho_pre);
    let mut x_hi = f64::NAN;
    let mut x_lo = f64::NAN;
    for i in (0..n as i32).rev() {
        let r = s.q.rho.at(i, 0, 0);
        if r >= lo && x_lo.is_nan() {
            x_lo = case.domain.center(Axis::X, i);
        }
        if r >= hi && x_hi.is_nan() {
            x_hi = case.domain.center(Axis::X, i);
            break;
        }
    }
    (x_lo - x_hi).abs()
}

/// L∞ advection error of the density RHS at a given reconstruction order.
fn advection_error(order: ReconOrder) -> f64 {
    use igr_core::bc::{fill_ghosts, BcSet, ALL_FACES};
    use igr_core::eos::Prim;
    use igr_core::rhs::{accumulate_fluxes, FluxParams};
    use igr_grid::{Domain, Field, GridShape};

    let n = 64;
    let shape = GridShape::new(n, 1, 1, 3);
    let domain = Domain::unit(shape);
    let tau = std::f64::consts::TAU;
    let u0 = 0.7;
    let eps = 1e-3;
    let mut q: igr_core::State<f64, StoreF64> = igr_core::State::zeros(shape);
    q.set_prim_field(&domain, 1.4, |p| {
        Prim::new(1.0 + eps * (tau * p[0]).sin(), [u0, 0.0, 0.0], 1.0)
    });
    fill_ghosts(
        &mut q,
        &domain,
        &BcSet::all_periodic(),
        1.4,
        0.0,
        &ALL_FACES,
    );
    let sigma: Field<f64, StoreF64> = Field::zeros(shape);
    let params = FluxParams::new(&q, &sigma, &domain, 1.4, 0.0, 0.0, order, false);
    let mut rhs = igr_core::State::zeros(shape);
    accumulate_fluxes(&params, &mut rhs);
    let mut e = 0.0f64;
    for i in 0..n as i32 {
        let x = domain.center(Axis::X, i);
        let expect = -u0 * eps * tau * (tau * x).cos();
        e = e.max((rhs.rho.at(i, 0, 0) - expect).abs());
    }
    e
}

/// Sod L1 density error at a given warm-start sweep count.
fn sod_l1(sweeps: usize, elliptic: EllipticKind) -> f64 {
    let n = 512;
    let case = cases::sod(n);
    let mut cfg = case.igr_config();
    cfg.sweeps = sweeps;
    cfg.elliptic = elliptic;
    let mut s = igr_solver::<f64, StoreF64>(cfg, case.domain, case.init_state());
    s.run_until(0.2, 100_000).expect("sod run");
    let exact = ExactRiemann::solve(
        PrimitiveState::new(1.0, 0.0, 1.0),
        PrimitiveState::new(0.125, 0.0, 0.1),
        case.gamma,
    );
    let mut l1 = 0.0;
    for i in 0..n as i32 {
        let x = case.domain.center(Axis::X, i);
        l1 += (s.q.rho.at(i, 0, 0) - exact.sample((x - 0.5) / 0.2).rho).abs();
    }
    l1 / n as f64
}

fn main() {
    section("Ablation 1: alpha prefactor -> regularized shock width (Sod, 512 cells)");
    let mut t = TextTable::new(vec!["alpha_f", "width (cells)", "width / sqrt(alpha_f)"]);
    let n = 512;
    let dx = 1.0 / n as f64;
    for af in [2.5, 10.0, 40.0] {
        let w = sod_shock_width(n, af);
        t.row(vec![
            format!("{af}"),
            fmt_g(w / dx),
            fmt_g(w / dx / af.sqrt()),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Constant last column = the paper's 'alpha sets the width, sqrt(alpha) ~ mesh' (§5.2)."
    );

    section("Ablation 2: reconstruction order -> smooth advection error (64 cells)");
    let mut t = TextTable::new(vec!["order", "Linf(d rho/dt)"]);
    for (name, order) in [
        ("1st", ReconOrder::First),
        ("3rd", ReconOrder::Third),
        ("5th", ReconOrder::Fifth),
    ] {
        t.row(vec![
            name.to_string(),
            format!("{:.3e}", advection_error(order)),
        ]);
    }
    println!("{}", t.render());

    section("Ablation 3: RK order -> temporal error (smooth wave, fixed dt)");
    let mut t = TextTable::new(vec!["rk", "L1(rho) vs rk3 fine-dt ref"]);
    let reference = {
        let case = cases::steepening_wave(128, 0.1);
        let mut cfg = case.igr_config();
        cfg.rk = RkOrder::Rk3;
        let mut s = igr_solver::<f64, StoreF64>(cfg, case.domain, case.init_state());
        s.fixed_dt = Some(2.5e-4);
        s.run_until(0.2, 100_000).unwrap();
        s
    };
    for (name, rk) in [
        ("rk1", RkOrder::Rk1),
        ("rk2", RkOrder::Rk2),
        ("rk3", RkOrder::Rk3),
    ] {
        let case = cases::steepening_wave(128, 0.1);
        let mut cfg = case.igr_config();
        cfg.rk = rk;
        let mut s = igr_solver::<f64, StoreF64>(cfg, case.domain, case.init_state());
        s.fixed_dt = Some(2e-3);
        s.run_until(0.2, 100_000).unwrap();
        let mut l1 = 0.0;
        for i in 0..128 {
            l1 += (s.q.rho.at(i, 0, 0) - reference.q.rho.at(i, 0, 0)).abs();
        }
        t.row(vec![name.to_string(), format!("{:.3e}", l1 / 128.0)]);
    }
    println!("{}", t.render());

    section("Ablation 4: warm-start sweeps x relaxation -> Sod L1 (the '<= 5 sweeps' claim)");
    let mut t = TextTable::new(vec!["sweeps", "Jacobi L1", "Gauss-Seidel L1"]);
    for sweeps in [1usize, 2, 5, 10] {
        t.row(vec![
            sweeps.to_string(),
            format!("{:.4e}", sod_l1(sweeps, EllipticKind::Jacobi)),
            format!("{:.4e}", sod_l1(sweeps, EllipticKind::GaussSeidel)),
        ]);
    }
    println!("{}", t.render());
    println!("Accuracy saturates by ~5 sweeps — more sweeps buy nothing (paper §5.2).");
}
