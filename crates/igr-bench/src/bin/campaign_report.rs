//! Campaign report: the ensemble analogue of the per-table reproduction
//! binaries. Runs a laptop-scale engineering campaign over the parameter
//! plane §3 of the paper motivates — engine-out sets, thrust-vectoring
//! angles, ambient backpressure, and scheme/precision cross-checks — and
//! prints the aggregate table plus cache statistics.
//!
//! ```bash
//! cargo run --release -p igr-bench --bin campaign_report
//! # share a persistent cache with other runs/processes:
//! cargo run --release -p igr-bench --bin campaign_report -- --store target/campaign_store.jsonl
//! ```

use igr_bench::TextTable;
use igr_campaign::{
    sweep, BaseCase, Campaign, Delta, ExecConfig, ResultStore, ScenarioSpec, SchemeKind, Sweep,
};
use igr_prec::PrecisionMode;

fn main() {
    // `--store <path>` backs the cache with the on-disk JSON-lines store:
    // scenarios simulated by any earlier process (this binary or the
    // campaign example share content hashes) are served from the file.
    let args: Vec<String> = std::env::args().collect();
    let store = match args.iter().position(|a| a == "--store") {
        Some(i) => {
            let path = args.get(i + 1).expect("--store takes a file path");
            let store = ResultStore::open(path).expect("open store file");
            let rec = store.recovery().unwrap_or_default();
            println!(
                "store {path}: {} results recovered, {} stale/corrupt lines skipped",
                rec.loaded, rec.skipped
            );
            store
        }
        None => ResultStore::new(),
    };
    let mut campaign = Campaign::with_store(ExecConfig::default(), store);

    // ---- Campaign 1: the engineering box — engine-out x gimbal x
    //      backpressure on the 3-engine array. ----------------------------
    let engineering = sweep::engine_out_gimbal_backpressure(
        24,
        60,
        &[vec![], vec![0], vec![1]],
        &[0.0, 0.1],
        &[1.0, 0.25],
    )
    .expand();
    println!(
        "== campaign 1: engine-out x gimbal x backpressure ({} scenarios)",
        engineering.len()
    );
    let rep1 = campaign.run(&engineering);
    print!("{}", rep1.to_text());

    // ---- Campaign 2: scheme x precision robustness cross-check on the
    //      steepening-wave workload (the Fig. 5-style matrix, ensemble-run).
    let mut base = ScenarioSpec::new(BaseCase::SteepeningWave { amp: 0.2 }, 64);
    base.steps = 4;
    let matrix = Sweep::cartesian(base)
        .axis(
            "scheme",
            vec![
                Delta::Scheme(SchemeKind::Igr),
                Delta::Scheme(SchemeKind::WenoBaseline),
            ],
        )
        .axis(
            "precision",
            vec![
                Delta::Precision(PrecisionMode::Fp64),
                Delta::Precision(PrecisionMode::Fp32),
                Delta::Precision(PrecisionMode::Fp16Fp32),
            ],
        )
        .expand();
    println!(
        "\n== campaign 2: scheme x precision matrix ({} scenarios)",
        matrix.len()
    );
    let rep2 = campaign.run(&matrix);
    let mut table = TextTable::new(vec![
        "scenario",
        "status",
        "grind ns/cell/step",
        "energy drift",
    ]);
    for row in &rep2.rows {
        let r = &row.result;
        table.row(vec![
            r.name.clone(),
            if r.status.is_ok() {
                "ok".into()
            } else {
                "FAILED".into()
            },
            format!("{:.0}", r.ns_per_cell_step),
            format!("{:.2e}", r.energy_drift),
        ]);
    }
    print!("{}", table.render());

    // ---- Campaign 3: resubmit campaign 1 — everything cache-served. -----
    let rep3 = campaign.run(&engineering);
    println!(
        "\n== campaign 3: resubmission of campaign 1 -> {} executed, {} cache hits",
        rep3.executed, rep3.cache_hits
    );
    println!(
        "store: {} results | {} hits | {} misses | {} cell-steps simulated in total",
        campaign.store().len(),
        campaign.store().hits(),
        campaign.store().misses(),
        rep1.cell_steps_executed() + rep2.cell_steps_executed(),
    );

    std::fs::create_dir_all("target").expect("create target/");
    std::fs::write("target/campaign_report.json", rep1.to_json()).expect("write JSON");
    std::fs::write("target/campaign_report.csv", rep1.to_csv()).expect("write CSV");
    println!("wrote target/campaign_report.json and target/campaign_report.csv");
}
