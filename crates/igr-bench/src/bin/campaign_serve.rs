//! Queue-native campaign server: front a shared result store with the
//! line-delimited JSON wire protocol, so campaigns can be submitted from
//! other processes (and other machines) and served from one content-hash
//! cache.
//!
//! ```bash
//! # serve a persistent store on a fixed port:
//! cargo run --release -p igr-bench --bin campaign_serve -- \
//!     --addr 127.0.0.1:7171 --store target/campaign_store.jsonl --workers 4
//!
//! # poke it from a shell (one JSON object per line; see docs/PROTOCOL.md):
//! printf '%s\n' '{"op":"hello","proto":2,"hash_v":2}' '{"op":"stats"}' \
//!     '{"op":"shutdown"}' | nc 127.0.0.1 7171
//! ```
//!
//! The server exits when a client sends the `shutdown` verb; the store file
//! keeps every result computed while serving, ready for the next process.

use igr_campaign::{
    AntiEntropy, CampaignServer, ExecConfig, FederationConfig, ResultStore, PROTO_VERSION,
};
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .map(|i| {
                args.get(i + 1).unwrap_or_else(|| {
                    eprintln!("{name} takes a value");
                    std::process::exit(2);
                })
            })
            .cloned()
    };
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: campaign_serve [--addr HOST:PORT] [--store FILE.jsonl] [--workers N]\n\
             \x20                     [--trace-out FILE.json] [--peers HOST:PORT,...]\n\
             \x20                     [--sync-interval-ms N] [--checkpoint-dir DIR]\n\
             \n\
             --addr       listen address (default 127.0.0.1:7171; port 0 = OS-assigned)\n\
             --store      JSON-lines result store to share (default: in-memory)\n\
             --workers    background execution workers (default: ExecConfig::default())\n\
             --peers      comma-separated peer servers to anti-entropy with (SYNC/PUSH;\n\
             \x20            see docs/FEDERATION.md)\n\
             --sync-interval-ms  gossip round interval with --peers (default 1000)\n\
             --checkpoint-dir    directory for per-scenario restart files; scenarios\n\
             \x20            with checkpoint_every autosave (`<hash>.ckpt`, or\n\
             \x20            `<hash>.rank<N>.ckpt` per rank when ranks > 1) and resume\n\
             --trace-out  write a chrome://tracing trace.json of every solver/queue\n\
             \x20            phase on shutdown (enables span tracing for the whole run)"
        );
        return;
    }
    let addr = flag("--addr").unwrap_or_else(|| "127.0.0.1:7171".into());

    let trace_out = flag("--trace-out");
    if trace_out.is_some() {
        igr_obs::enable();
        igr_obs::Registry::global().set_capture_events(true);
    }

    let store = match flag("--store") {
        Some(path) => {
            let store = ResultStore::open(&path).expect("open store file");
            let rec = store.recovery().unwrap_or_default();
            println!(
                "store {path}: {} results recovered, {} stale/corrupt lines skipped, \
                 {} dead lines",
                rec.loaded,
                rec.skipped,
                store.dead_lines()
            );
            store
        }
        None => {
            println!("store: in-memory (pass --store FILE.jsonl to persist results)");
            ResultStore::new()
        }
    };

    let mut cfg = match flag("--workers") {
        Some(n) => ExecConfig::with_workers(n.parse().expect("--workers takes an integer")),
        None => ExecConfig::default(),
    };
    if let Some(dir) = flag("--checkpoint-dir") {
        std::fs::create_dir_all(&dir).expect("create checkpoint dir");
        cfg.checkpoint_dir = Some(dir.into());
    }

    let workers = cfg.workers;
    let server = CampaignServer::bind(&addr, cfg, store).expect("bind listen address");
    println!(
        "campaign_serve: listening on {} (proto v{PROTO_VERSION}, {workers} workers)",
        server.local_addr(),
    );
    println!("send {{\"op\":\"shutdown\"}} (after a hello) to stop gracefully");

    let agent = flag("--peers").map(|peers| {
        let peers: Vec<String> = peers
            .split(',')
            .map(str::trim)
            .filter(|p| !p.is_empty())
            .map(String::from)
            .collect();
        let interval = Duration::from_millis(
            flag("--sync-interval-ms")
                .map(|n| n.parse().expect("--sync-interval-ms takes an integer"))
                .unwrap_or(1000),
        );
        println!("anti-entropy: gossiping with {peers:?} every {interval:?}");
        AntiEntropy::spawn(&server, peers, interval, FederationConfig::default())
    });

    let store = {
        // The agent holds a queue handle; stop it before join() so the
        // store comes back intact.
        let server = server;
        while !server.is_shutting_down() {
            std::thread::sleep(Duration::from_millis(25));
        }
        drop(agent);
        server.join()
    };
    println!(
        "shut down: {} results in the store{}",
        store.len(),
        store
            .path()
            .map(|p| format!(" ({} persisted)", p.display()))
            .unwrap_or_default()
    );

    if let Some(path) = trace_out {
        let file = std::fs::File::create(&path).expect("create trace file");
        let mut w = std::io::BufWriter::new(file);
        igr_obs::Registry::global()
            .export_chrome_trace(&mut w)
            .expect("write trace");
        println!(
            "trace: {} spans written to {path} (open in chrome://tracing or ui.perfetto.dev)",
            igr_obs::Registry::global().event_count()
        );
    }
}
