//! Queue-native campaign server: front a shared result store with the
//! line-delimited JSON wire protocol, so campaigns can be submitted from
//! other processes (and other machines) and served from one content-hash
//! cache.
//!
//! ```bash
//! # serve a persistent store on a fixed port:
//! cargo run --release -p igr-bench --bin campaign_serve -- \
//!     --addr 127.0.0.1:7171 --store target/campaign_store.jsonl --workers 4
//!
//! # poke it from a shell (one JSON object per line; see docs/PROTOCOL.md):
//! printf '%s\n' '{"op":"hello","proto":2,"hash_v":2}' '{"op":"stats"}' \
//!     '{"op":"shutdown"}' | nc 127.0.0.1 7171
//! ```
//!
//! The server exits when a client sends the `shutdown` verb; the store file
//! keeps every result computed while serving, ready for the next process.

use igr_campaign::{CampaignServer, ExecConfig, ResultStore, PROTO_VERSION};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .map(|i| {
                args.get(i + 1).unwrap_or_else(|| {
                    eprintln!("{name} takes a value");
                    std::process::exit(2);
                })
            })
            .cloned()
    };
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: campaign_serve [--addr HOST:PORT] [--store FILE.jsonl] [--workers N]\n\
             \x20                     [--trace-out FILE.json]\n\
             \n\
             --addr       listen address (default 127.0.0.1:7171; port 0 = OS-assigned)\n\
             --store      JSON-lines result store to share (default: in-memory)\n\
             --workers    background execution workers (default: ExecConfig::default())\n\
             --trace-out  write a chrome://tracing trace.json of every solver/queue\n\
             \x20            phase on shutdown (enables span tracing for the whole run)"
        );
        return;
    }
    let addr = flag("--addr").unwrap_or_else(|| "127.0.0.1:7171".into());

    let trace_out = flag("--trace-out");
    if trace_out.is_some() {
        igr_obs::enable();
        igr_obs::Registry::global().set_capture_events(true);
    }

    let store = match flag("--store") {
        Some(path) => {
            let store = ResultStore::open(&path).expect("open store file");
            let rec = store.recovery().unwrap_or_default();
            println!(
                "store {path}: {} results recovered, {} stale/corrupt lines skipped, \
                 {} dead lines",
                rec.loaded,
                rec.skipped,
                store.dead_lines()
            );
            store
        }
        None => {
            println!("store: in-memory (pass --store FILE.jsonl to persist results)");
            ResultStore::new()
        }
    };

    let cfg = match flag("--workers") {
        Some(n) => ExecConfig::with_workers(n.parse().expect("--workers takes an integer")),
        None => ExecConfig::default(),
    };

    let workers = cfg.workers;
    let server = CampaignServer::bind(&addr, cfg, store).expect("bind listen address");
    println!(
        "campaign_serve: listening on {} (proto v{PROTO_VERSION}, {workers} workers)",
        server.local_addr(),
    );
    println!("send {{\"op\":\"shutdown\"}} (after a hello) to stop gracefully");

    let store = server.join();
    println!(
        "shut down: {} results in the store{}",
        store.len(),
        store
            .path()
            .map(|p| format!(" ({} persisted)", p.display()))
            .unwrap_or_default()
    );

    if let Some(path) = trace_out {
        let file = std::fs::File::create(&path).expect("create trace file");
        let mut w = std::io::BufWriter::new(file);
        igr_obs::Registry::global()
            .export_chrome_trace(&mut w)
            .expect("write trace");
        println!(
            "trace: {} spans written to {path} (open in chrome://tracing or ui.perfetto.dev)",
            igr_obs::Registry::global().event_count()
        );
    }
}
