//! §7.2 record-size reproduction: maximum problem sizes per device and per
//! system, including the 200 T-cell / 1-quadrillion-DoF Frontier run and
//! the JUPITER extrapolation.

use igr_bench::{fmt_g, section, TextTable};
use igr_perf::{CapacityModel, MemoryLayout, System};

fn main() {
    section("Capacity report: IGR with unified memory, FP16 storage");
    let mut t = TextTable::new(vec![
        "System",
        "layout",
        "cells/device (model)",
        "edge/device",
        "edge (paper)",
        "system cells",
        "system DoF",
    ]);
    let paper_edges = [
        (System::EL_CAPITAN, MemoryLayout::igr_in_core(2.0), 1380.0),
        (
            System::FRONTIER,
            MemoryLayout::igr_unified_12_17(2.0),
            1386.0,
        ),
        (System::ALPS, MemoryLayout::igr_unified_12_17(2.0), 1611.0),
        (
            System::JUPITER,
            MemoryLayout::igr_unified_12_17(2.0),
            1611.0,
        ),
    ];
    for (sys, layout, paper_edge) in paper_edges {
        let m = CapacityModel::new(layout).with_usable_fraction(0.93);
        let per_dev = m.max_cells_on(&sys) / sys.total_devices() as f64;
        t.row(vec![
            sys.name.to_string(),
            layout.name.to_string(),
            fmt_g(per_dev),
            format!("{:.0}", per_dev.cbrt()),
            format!("{paper_edge:.0}"),
            fmt_g(m.max_cells_on(&sys)),
            fmt_g(5.0 * m.max_cells_on(&sys)),
        ]);
    }
    println!("{}", t.render());

    section("Headline records (from the paper's per-device grids)");
    let mut h = TextTable::new(vec!["Claim", "value", "threshold", "met?"]);
    let frontier_cells = 1386f64.powi(3) * 75264.0;
    h.row(vec![
        "Frontier run, grid cells".to_string(),
        fmt_g(frontier_cells),
        "2.0e14 (200T)".to_string(),
        (frontier_cells > 200e12).to_string(),
    ]);
    h.row(vec![
        "Frontier run, DoF".to_string(),
        fmt_g(5.0 * frontier_cells),
        "1.0e15 (1Q)".to_string(),
        (5.0 * frontier_cells > 1e15).to_string(),
    ]);
    let alps_cells = 1611f64.powi(3) * System::ALPS.total_devices() as f64;
    h.row(vec![
        "Alps full-system cells".to_string(),
        fmt_g(alps_cells),
        "45e12".to_string(),
        ((alps_cells / 45e12 - 1.0).abs() < 0.05).to_string(),
    ]);
    let jupiter_cells = 1611f64.powi(3) * System::JUPITER.total_devices() as f64;
    h.row(vec![
        "JUPITER extrapolation cells".to_string(),
        fmt_g(jupiter_cells),
        "100.3e12".to_string(),
        ((jupiter_cells / 100.3e12 - 1.0).abs() < 0.05).to_string(),
    ]);
    let elcap_cells = 1380f64.powi(3) * 4.0 * 10750.0;
    h.row(vec![
        "El Capitan run cells".to_string(),
        fmt_g(elcap_cells),
        "113e12".to_string(),
        ((elcap_cells / 113e12 - 1.0).abs() < 0.05).to_string(),
    ]);
    println!("{}", h.render());
    println!(
        "Factor over the prior largest compressible CFD run (10T cells): {:.0}x",
        frontier_cells / 10e12
    );
}
