//! Fig. 7 reproduction: strong scaling on all three systems from an 8-node
//! base, FP16/32 mixed precision.

use igr_bench::{fmt_g, section, TextTable};
use igr_perf::{GrindModel, Precision, ScalingModel, Scheme, System};

fn main() {
    section("Fig. 7 (modeled): strong scaling, FP16/32, 8-node base");
    let configs = [
        (System::EL_CAPITAN, GrindModel::mi300a(), 11136usize),
        (System::FRONTIER, GrindModel::mi250x_gcd(), 9408),
        (System::ALPS, GrindModel::gh200(), 2688),
    ];
    for (sys, grind, full_nodes) in configs {
        let model = ScalingModel::new(sys, grind, Scheme::Igr, Precision::Fp16Fp32);
        // The strong-scaling problem fills the 8-node base configuration.
        let global = model.max_cells_per_device() * (8 * sys.devices_per_node) as f64;
        let mut nodes: Vec<usize> = (3..15)
            .map(|p| 1usize << p)
            .filter(|&n| n < full_nodes)
            .collect();
        nodes.push(full_nodes);
        let pts = model.strong_scaling(global, 8, &nodes);
        let mut t = TextTable::new(vec!["nodes", "speedup", "ideal", "efficiency"]);
        for p in &pts {
            t.row(vec![
                p.nodes.to_string(),
                fmt_g(p.speedup),
                fmt_g(p.nodes as f64 / 8.0),
                format!("{:.1}%", 100.0 * p.efficiency),
            ]);
        }
        println!("{} (global {:.2e} cells):", sys.name, global);
        println!("{}", t.render());
    }
    println!("Paper: 90%/90%/86% at 32x devices; 44% (El Capitan), 44% (Frontier),");
    println!("80% (Alps) at the full systems; ~500x wall-time reduction for an");
    println!("8-node problem stretched to a full machine.");
}
