//! Fig. 6 reproduction: weak scaling on El Capitan, Frontier, and Alps.
//!
//! Modeled section: normalized wall time per step at fixed per-device load
//! as device counts grow to the full systems (the paper's ≈100 %
//! efficiencies). Measured section: thread-rank decomposed runs on this
//! host validate the *inputs* to the model — per-rank halo volumes scale
//! with surface area, not volume, and the decomposed solver reproduces the
//! single-rank physics exactly. (This container exposes a single core, so
//! thread-rank wall-clock speedup is not observable here.)

use igr_app::{cases, run_decomposed};
use igr_bench::{fmt_g, section, TextTable};
use igr_perf::{GrindModel, Precision, ScalingModel, Scheme, System};
use igr_prec::StoreF64;

fn main() {
    section("Fig. 6 (modeled): weak scaling, FP16/32, unified memory");
    let configs = [
        (
            System::EL_CAPITAN,
            GrindModel::mi300a(),
            1380usize,
            10750usize,
        ),
        (System::FRONTIER, GrindModel::mi250x_gcd(), 1386, 9408),
        (System::ALPS, GrindModel::gh200(), 1611, 2304),
    ];
    for (sys, grind, edge, full_nodes) in configs {
        let model = ScalingModel::new(sys, grind, Scheme::Igr, Precision::Fp16Fp32);
        let cells = (edge as f64).powi(3);
        let mut nodes = vec![16usize, 64, 256, 1024];
        nodes.retain(|&n| n < full_nodes);
        nodes.push(full_nodes);
        let pts = model.weak_scaling(cells, &nodes);
        let mut t = TextTable::new(vec!["nodes", "devices", "norm. wall time", "efficiency"]);
        let base = pts[0].step_time_s;
        for p in &pts {
            t.row(vec![
                p.nodes.to_string(),
                (p.nodes * sys.devices_per_node).to_string(),
                fmt_g(p.step_time_s / base),
                format!("{:.1}%", 100.0 * p.efficiency),
            ]);
        }
        println!("{} ({}³ cells/device):", sys.name, edge);
        println!("{}", t.render());
    }
    println!("Paper: 97% efficiency to 43K MI300As; ~100% to 37.6K MI250X GPUs (200T cells);");
    println!("~100% to 9.2K GH200s. JUPITER extrapolation: 100.3T cells / 501T DoF.");

    section("Measured (thread ranks): halo volume scales with surface, physics unchanged");
    let mut t = TextTable::new(vec![
        "ranks",
        "global cells",
        "cells/rank",
        "halo bytes/rank/step",
        "max |diff| vs 1 rank",
    ]);
    // Weak scaling: per-rank block fixed at 32x32x1; ranks grow the domain.
    let steps = 3;
    let per_rank = 32usize;
    let reference: Vec<(usize, f64, u64)> = [1usize, 2, 4]
        .iter()
        .map(|&ranks| {
            let nx = per_rank * ranks;
            let case = cases::steepening_wave(nx, 0.2);
            // 2-D-ify: keep 1-D for simplicity; decomposition splits x.
            let cfg = case.igr_config();
            let init = case.init.clone();
            let run =
                run_decomposed::<f64, StoreF64>(&cfg, &case.domain, ranks, steps, move |p| init(p));
            (ranks, nx as f64, run.total_bytes_sent / ranks as u64)
        })
        .collect();
    for (ranks, cells, halo) in &reference {
        // Single-rank equivalence on the same global grid.
        let nx = *cells as usize;
        let case = cases::steepening_wave(nx, 0.2);
        let cfg = case.igr_config();
        let i1 = case.init.clone();
        let single = run_decomposed::<f64, StoreF64>(&cfg, &case.domain, 1, steps, move |p| i1(p));
        let im = case.init.clone();
        let multi =
            run_decomposed::<f64, StoreF64>(&cfg, &case.domain, *ranks, steps, move |p| im(p));
        let diff = single.state.max_diff(&multi.state);
        t.row(vec![
            ranks.to_string(),
            fmt_g(*cells),
            fmt_g(*cells / *ranks as f64),
            halo.to_string(),
            format!("{diff:.1e}"),
        ]);
    }
    println!("{}", t.render());
    println!("Halo bytes per rank are constant under weak scaling (surface, not volume),");
    println!("which is why the modeled curves above are flat.");
}
