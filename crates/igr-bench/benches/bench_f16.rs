//! FP16 storage-path microbenchmark: conversion throughput of the software
//! binary16 (the cost the FP16/32 mixed mode pays on every load/store).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use igr_prec::f16;

fn bench_conversions(c: &mut Criterion) {
    let data_f32: Vec<f32> = (0..4096)
        .map(|i| (i as f32 * 0.371).sin() * 100.0)
        .collect();
    let data_f16: Vec<f16> = data_f32.iter().map(|&x| f16::from_f32(x)).collect();

    let mut group = c.benchmark_group("f16");
    group.throughput(Throughput::Elements(data_f32.len() as u64));

    group.bench_function("narrow_f32_to_f16", |b| {
        b.iter(|| {
            let mut acc = 0u16;
            for &x in black_box(&data_f32) {
                acc ^= f16::from_f32(x).to_bits();
            }
            acc
        })
    });
    group.bench_function("widen_f16_to_f32", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for &h in black_box(&data_f16) {
                acc += h.to_f32();
            }
            acc
        })
    });
    group.bench_function("roundtrip_rmw", |b| {
        // The RHS accumulation pattern: load, add, store.
        let mut buf = data_f16.clone();
        b.iter(|| {
            for h in buf.iter_mut() {
                *h = f16::from_f32(h.to_f32() + 0.5);
            }
            buf[0].to_bits()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_conversions);
criterion_main!(benches);
