//! IGR elliptic-solve ablation: Jacobi vs Gauss–Seidel, and sweep-count
//! scaling (the paper uses ≤ 5 warm-started sweeps; this shows why more
//! would be wasted time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use igr_core::bc::{fill_ghosts, BcSet, ALL_FACES};
use igr_core::eos::Prim;
use igr_core::sigma::{
    compute_igr_source, compute_igr_source_reference, gauss_seidel_sweep, jacobi_sweep,
};
use igr_core::State;
use igr_grid::{Axis, Domain, Field, GridShape};
use igr_prec::StoreF64;

fn setup(n: usize) -> (State<f64, StoreF64>, Domain, Field<f64, StoreF64>, f64) {
    let shape = GridShape::new(n, n, n, 3);
    let domain = Domain::unit(shape);
    let mut q = State::zeros(shape);
    let tau = std::f64::consts::TAU;
    q.set_prim_field(&domain, 1.4, |p| {
        Prim::new(
            1.0 + 0.3 * (tau * p[0]).sin(),
            [(tau * p[1]).cos(), 0.2, (tau * p[2]).sin()],
            1.0,
        )
    });
    fill_ghosts(
        &mut q,
        &domain,
        &BcSet::all_periodic(),
        1.4,
        0.0,
        &ALL_FACES,
    );
    let alpha = 10.0 * domain.dx(Axis::X).powi(2);
    let mut b = Field::zeros(shape);
    compute_igr_source(&q, &domain, alpha, &mut b);
    (q, domain, b, alpha)
}

fn bench_sweeps(c: &mut Criterion) {
    let n = 32;
    let (q, domain, b, alpha) = setup(n);
    let shape = q.shape();

    let mut group = c.benchmark_group("elliptic");
    group.sample_size(10);

    for sweeps in [1usize, 3, 5, 10] {
        group.bench_function(BenchmarkId::new("jacobi", sweeps), |bch| {
            let mut sigma = Field::zeros(shape);
            let mut tmp = Field::zeros(shape);
            bch.iter(|| {
                for _ in 0..sweeps {
                    jacobi_sweep(&q.rho, &b, &sigma, &mut tmp, &domain, alpha);
                    std::mem::swap(&mut sigma, &mut tmp);
                }
            });
        });
    }
    group.bench_function("gauss_seidel_5", |bch| {
        let mut sigma = Field::zeros(shape);
        bch.iter(|| {
            for _ in 0..5 {
                gauss_seidel_sweep(&q.rho, &b, &mut sigma, &domain, alpha);
            }
        });
    });
    group.bench_function("source_term", |bch| {
        let mut out = Field::zeros(shape);
        bch.iter(|| compute_igr_source(&q, &domain, alpha, &mut out));
    });
    // The pre-optimization kernel (6 redundant neighbour 1/ρ divisions per
    // cell) — the rolling-row `source_term` above is measured against this.
    group.bench_function("source_term_reference", |bch| {
        let mut out = Field::zeros(shape);
        bch.iter(|| compute_igr_source_reference(&q, &domain, alpha, &mut out));
    });
    group.finish();
}

criterion_group!(benches, bench_sweeps);
criterion_main!(benches);
