//! Halo-exchange cost: slab pack/unpack and a full rank-pair exchange —
//! the communication side of the scaling model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use igr_comm::Universe;
use igr_grid::{Axis, Decomp, Field, GridShape};
use igr_prec::StoreF64;

fn bench_pack_unpack(c: &mut Criterion) {
    let mut group = c.benchmark_group("halo_pack");
    for n in [16usize, 32] {
        let shape = GridShape::new(n, n, n, 3);
        let mut f: Field<f64, StoreF64> = Field::zeros(shape);
        f.map_interior(|i, j, k, _| (i + j + k) as f64);
        let slab = f.slab_len_ext(Axis::X, 3);
        group.throughput(Throughput::Elements(slab as u64));
        group.bench_function(BenchmarkId::new("pack_ext_x", n), |b| {
            let mut buf = Vec::with_capacity(slab);
            b.iter(|| {
                f.pack_slab_ext(Axis::X, -1, 3, &mut buf);
                buf.len()
            })
        });
        group.bench_function(BenchmarkId::new("unpack_ext_x", n), |b| {
            let mut buf = Vec::with_capacity(slab);
            f.pack_slab_ext(Axis::X, -1, 3, &mut buf);
            let mut g = f.clone();
            b.iter(|| {
                g.unpack_slab_ext(Axis::X, 1, 3, &buf);
            })
        });
    }
    group.finish();
}

fn bench_exchange(c: &mut Criterion) {
    let mut group = c.benchmark_group("halo_exchange");
    group.sample_size(10);
    for len in [1024usize, 16384] {
        group.throughput(Throughput::Bytes((len * 8) as u64));
        group.bench_function(BenchmarkId::new("pair_roundtrip", len), |b| {
            b.iter(|| {
                let decomp = Decomp::with_dims([len, 1, 1], [2, 1, 1], [true, false, false]);
                let out = Universe::run(2, |comm| {
                    let mut cart = igr_comm::CartComm::new(comm, decomp.clone());
                    let data = vec![cart.rank() as f64; len / 2];
                    let (lo, hi) = cart.exchange(Axis::X, 0, &data, &data);
                    lo.map(|v| v.len()).unwrap_or(0) + hi.map(|v| v.len()).unwrap_or(0)
                });
                out[0]
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pack_unpack, bench_exchange);
criterion_main!(benches);
