//! Multicomponent-extension ablation: the cost of the two-fluid
//! five-equation model relative to the single-fluid solver on the same
//! grid.
//!
//! The paper's storage accounting is "for a single species (advected
//! fluid) case"; the two-fluid model streams 7 instead of 5 state arrays
//! and adds the non-conservative α term, so its grind time should sit
//! ~25–50 % above single-fluid — far from the 4× gap to the WENO baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use igr_app::cases;
use igr_prec::{StoreF32, StoreF64};
use igr_species::{species_solver, MixEos, MixPrim, SpeciesConfig, SpeciesState};

fn species_setup<S: igr_prec::Storage<f32>>(n: usize) -> igr_species::SpeciesSolver<f32, S> {
    species_setup_generic::<f32, S>(n)
}

fn species_setup_generic<R: igr_prec::Real, S: igr_prec::Storage<R>>(
    n: usize,
) -> igr_species::SpeciesSolver<R, S> {
    let shape = igr_grid::GridShape::new(2 * n, n, n, 3);
    let domain = igr_grid::Domain::new([0.0, -0.5, -0.5], [2.0, 0.5, 0.5], shape);
    let eos = MixEos {
        gamma1: 1.4,
        gamma2: 1.25,
    };
    let cfg = SpeciesConfig {
        eos,
        ..Default::default()
    };
    let tau = std::f64::consts::TAU;
    let mut q = SpeciesState::zeros(shape);
    q.set_prim_field(&domain, &eos, |p| {
        let a = (0.5 + 0.4 * (tau * p[0]).sin() * (tau * p[1]).cos()).clamp(0.01, 0.99);
        MixPrim::new(
            [a * 1.0, (1.0 - a) * 0.5],
            [0.5 * (tau * p[2]).sin(), 0.2, 0.0],
            1.0 + 0.1 * (tau * p[0]).cos(),
            a,
        )
    });
    species_solver(cfg, domain, q)
}

fn bench_two_fluid_step(c: &mut Criterion) {
    let n = 16; // 32x16x16 cells, matching bench_rhs
    let case = cases::single_jet_3d(n);
    let cells = (2 * n * n * n) as u64;

    let mut group = c.benchmark_group("two_fluid_step");
    group.sample_size(10);
    group.throughput(Throughput::Elements(cells));

    group.bench_function(BenchmarkId::new("single_fluid", "fp64"), |b| {
        let mut s = case.igr_solver::<f64, StoreF64>();
        s.nan_check_every = 0;
        s.step().unwrap();
        s.fixed_dt = Some(s.stable_dt());
        b.iter(|| s.step().unwrap());
    });
    group.bench_function(BenchmarkId::new("two_fluid", "fp64"), |b| {
        let mut s = species_setup_generic::<f64, StoreF64>(n);
        s.nan_check_every = 0;
        s.step().unwrap();
        s.fixed_dt = Some(s.stable_dt());
        b.iter(|| s.step().unwrap());
    });
    group.bench_function(BenchmarkId::new("two_fluid", "fp32"), |b| {
        let mut s = species_setup::<StoreF32>(n);
        s.nan_check_every = 0;
        s.step().unwrap();
        s.fixed_dt = Some(s.stable_dt());
        b.iter(|| s.step().unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_two_fluid_step);
criterion_main!(benches);
