//! Interface-reconstruction microbenchmark: the linear schemes IGR enables
//! vs the nonlinear WENO5 the baseline needs. The per-interface cost gap is
//! one of the two ingredients of the 4× grind-time factor (the other being
//! the Riemann solver).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use igr_baseline::weno::weno5_pair;
use igr_core::recon::{recon1, recon3, recon5};

fn bench_recon(c: &mut Criterion) {
    // A realistic window: smooth data with a gradient.
    let w = [1.00f64, 1.05, 1.11, 1.18, 1.26, 1.35];
    let n_iters = 1024u64;

    let mut group = c.benchmark_group("recon_per_interface");
    group.throughput(Throughput::Elements(n_iters));
    group.bench_function("linear_1st", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..n_iters {
                let (l, r) = recon1(black_box(&w));
                acc += l + r;
            }
            acc
        })
    });
    group.bench_function("linear_3rd", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..n_iters {
                let (l, r) = recon3(black_box(&w));
                acc += l + r;
            }
            acc
        })
    });
    group.bench_function("linear_5th", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..n_iters {
                let (l, r) = recon5(black_box(&w));
                acc += l + r;
            }
            acc
        })
    });
    group.bench_function("weno5_js", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..n_iters {
                let (l, r) = weno5_pair(black_box(&w));
                acc += l + r;
            }
            acc
        })
    });
    group.finish();
}

fn bench_flux(c: &mut Criterion) {
    use igr_baseline::hllc::hllc_flux;
    use igr_core::eos::{cons_to_prim, inviscid_flux, max_wave_speed, Prim};

    let ql = Prim::new(1.0, [0.3, 0.1, -0.2], 1.0).to_cons(1.4);
    let qr = Prim::new(0.9, [0.2, 0.0, -0.1], 0.8).to_cons(1.4);
    let n_iters = 1024u64;

    let mut group = c.benchmark_group("flux_per_interface");
    group.throughput(Throughput::Elements(n_iters));
    group.bench_function("lax_friedrichs", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..n_iters {
                let (ql, qr) = (black_box(&ql), black_box(&qr));
                let pl = cons_to_prim(ql, 1.4);
                let pr = cons_to_prim(qr, 1.4);
                let lam = f64::max(
                    max_wave_speed(0, &pl, 0.0, 1.4),
                    max_wave_speed(0, &pr, 0.0, 1.4),
                );
                let fl = inviscid_flux(0, ql, &pl, pl.p);
                let fr = inviscid_flux(0, qr, &pr, pr.p);
                for v in 0..5 {
                    acc += 0.5 * (fl[v] + fr[v]) - 0.5 * lam * (qr[v] - ql[v]);
                }
            }
            acc
        })
    });
    group.bench_function("hllc", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..n_iters {
                let f = hllc_flux(0, black_box(&ql), black_box(&qr), 1.4);
                for v in 0..5 {
                    acc += f[v];
                }
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_recon, bench_flux);
criterion_main!(benches);
