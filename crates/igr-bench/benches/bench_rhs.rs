//! Kernel-level grind benchmark: the fused IGR RHS vs the staged WENO+HLLC
//! RHS on the same block — the measured anchor behind Table 3, and the
//! fused-vs-staged ablation from DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use igr_app::cases;
use igr_prec::{StoreF16, StoreF32, StoreF64};

fn bench_full_step(c: &mut Criterion) {
    let n = 16; // 32x16x16 cells
    let case = cases::single_jet_3d(n);
    let cells = (2 * n * n * n) as u64;

    let mut group = c.benchmark_group("full_step");
    group.sample_size(10);
    group.throughput(Throughput::Elements(cells));

    group.bench_function(BenchmarkId::new("igr", "fp64"), |b| {
        let mut s = case.igr_solver::<f64, StoreF64>();
        s.nan_check_every = 0;
        s.step().unwrap();
        s.fixed_dt = Some(s.stable_dt());
        b.iter(|| s.step().unwrap());
    });
    group.bench_function(BenchmarkId::new("igr", "fp32"), |b| {
        let mut s = case.igr_solver::<f32, StoreF32>();
        s.nan_check_every = 0;
        s.step().unwrap();
        s.fixed_dt = Some(s.stable_dt());
        b.iter(|| s.step().unwrap());
    });
    group.bench_function(BenchmarkId::new("igr", "fp16_storage"), |b| {
        let mut s = case.igr_solver::<f32, StoreF16>();
        s.nan_check_every = 0;
        s.step().unwrap();
        s.fixed_dt = Some(s.stable_dt());
        b.iter(|| s.step().unwrap());
    });
    group.bench_function(BenchmarkId::new("weno_hllc", "fp64"), |b| {
        let mut s = case.weno_solver::<f64, StoreF64>();
        s.nan_check_every = 0;
        s.step().unwrap();
        s.fixed_dt = Some(s.stable_dt());
        b.iter(|| s.step().unwrap());
    });
    // The fused-vs-staged ablation: identical IGR numerics, materialized
    // intermediates. Separates the fusion effect from the numerics effect.
    group.bench_function(BenchmarkId::new("igr_staged", "fp64"), |b| {
        let mut s = igr_baseline::staged_igr::staged_igr_solver::<f64, StoreF64>(
            case.igr_config(),
            case.domain,
            case.init_state(),
        );
        s.nan_check_every = 0;
        s.step().unwrap();
        s.fixed_dt = Some(s.stable_dt());
        b.iter(|| s.step().unwrap());
    });
    group.finish();
}

fn bench_recon_order_ablation(c: &mut Criterion) {
    use igr_core::config::ReconOrder;
    let n = 16;
    let cells = (2 * n * n * n) as u64;
    let mut group = c.benchmark_group("recon_order");
    group.sample_size(10);
    group.throughput(Throughput::Elements(cells));
    for (name, order) in [
        ("first", ReconOrder::First),
        ("third", ReconOrder::Third),
        ("fifth", ReconOrder::Fifth),
    ] {
        group.bench_function(name, |b| {
            let case = cases::single_jet_3d(n);
            let mut cfg = case.igr_config();
            cfg.order = order;
            let mut s =
                igr_core::solver::igr_solver::<f64, StoreF64>(cfg, case.domain, case.init_state());
            s.nan_check_every = 0;
            s.step().unwrap();
            s.fixed_dt = Some(s.stable_dt());
            b.iter(|| s.step().unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_full_step, bench_recon_order_ablation);
criterion_main!(benches);
