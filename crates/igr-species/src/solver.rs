//! Configuration and time-marching driver for the two-fluid IGR solver.

use crate::bc::{fill_ghosts, SpeciesBcSet};
use crate::eos::MixEos;
use crate::rhs::{
    accumulate_fluxes2, compute_igr_source_mix, compute_mixture_density, FluxParams2,
};
use crate::state::SpeciesState;
use igr_core::config::{EllipticKind, ReconOrder, RkOrder};
use igr_core::memory::MemoryReport;
use igr_core::sigma::{gauss_seidel_sweep, jacobi_sweep};
use igr_core::solver::{SolverError, StepInfo};
use igr_grid::{Domain, Field};
use igr_prec::{Real, Storage};

/// Full configuration of the two-fluid IGR solver. Mirrors
/// [`igr_core::IgrConfig`] with the mixture EOS in place of a single γ.
#[derive(Clone, Debug)]
pub struct SpeciesConfig {
    /// Two-gas mixture equation of state.
    pub eos: MixEos,
    /// Shear viscosity of the mixture (single constant; per-fluid blending
    /// is a straightforward extension).
    pub mu: f64,
    /// Bulk viscosity of the mixture.
    pub zeta: f64,
    /// IGR strength prefactor: `α_igr = alpha_factor · Δx_max²`.
    pub alpha_factor: f64,
    /// Elliptic sweeps per RHS evaluation (warm-started).
    pub sweeps: usize,
    /// Sweeps for the very first RHS evaluation.
    pub cold_start_sweeps: usize,
    /// Jacobi or Gauss–Seidel relaxation.
    pub elliptic: EllipticKind,
    /// Interface reconstruction order.
    pub order: ReconOrder,
    /// Time integrator.
    pub rk: RkOrder,
    /// Acoustic CFL number.
    pub cfl: f64,
    /// Boundary conditions on the six faces.
    pub bc: SpeciesBcSet,
}

impl Default for SpeciesConfig {
    fn default() -> Self {
        SpeciesConfig {
            eos: MixEos::air_helium(),
            mu: 0.0,
            zeta: 0.0,
            alpha_factor: 10.0,
            sweeps: 5,
            cold_start_sweeps: 100,
            elliptic: EllipticKind::Jacobi,
            order: ReconOrder::Fifth,
            rk: RkOrder::Rk3,
            cfl: 0.4,
            bc: SpeciesBcSet::all_periodic(),
        }
    }
}

impl SpeciesConfig {
    /// The regularization strength for a given maximum cell size.
    pub fn alpha(&self, dx_max: f64) -> f64 {
        self.alpha_factor * dx_max * dx_max
    }

    /// Reject invalid parameter combinations.
    pub fn validate(&self) -> Result<(), String> {
        self.eos.validate()?;
        if self.cfl <= 0.0 || self.cfl > 1.0 {
            return Err(format!("cfl must be in (0, 1], got {}", self.cfl));
        }
        if self.alpha_factor < 0.0 {
            return Err("alpha_factor must be non-negative".into());
        }
        if self.mu < 0.0 || self.zeta < 0.0 {
            return Err("viscosities must be non-negative".into());
        }
        if self.sweeps == 0 && self.alpha_factor > 0.0 {
            return Err("IGR requires at least one elliptic sweep".into());
        }
        self.bc.validate()
    }
}

/// The per-solver elliptic workspace: Σ, its Jacobi double buffer, the
/// elliptic right-hand side, and the mixture-density field the sweeps read.
struct SigmaWorkspace<R: Real, S: Storage<R>> {
    sigma: Field<R, S>,
    sigma_tmp: Option<Field<R, S>>,
    igr_rhs: Field<R, S>,
    rho_mix: Field<R, S>,
    warm: bool,
}

impl<R: Real, S: Storage<R>> SigmaWorkspace<R, S> {
    fn new(shape: igr_grid::GridShape, elliptic: EllipticKind) -> Self {
        SigmaWorkspace {
            sigma: Field::zeros(shape),
            sigma_tmp: match elliptic {
                EllipticKind::Jacobi => Some(Field::zeros(shape)),
                EllipticKind::GaussSeidel => None,
            },
            igr_rhs: Field::zeros(shape),
            rho_mix: Field::zeros(shape),
            warm: false,
        }
    }

    /// Relax eq. (9) with mixture density, warm-starting from the previous Σ.
    fn solve(
        &mut self,
        cfg: &SpeciesConfig,
        domain: &Domain,
        alpha_igr: f64,
        q: &SpeciesState<R, S>,
    ) {
        compute_igr_source_mix(q, domain, alpha_igr, &mut self.igr_rhs);
        compute_mixture_density(q, &mut self.rho_mix);
        let sweeps = if self.warm {
            cfg.sweeps
        } else {
            cfg.sweeps.max(cfg.cold_start_sweeps)
        };
        self.warm = true;
        let scalar_bcs = cfg.bc.scalar_bcs();
        for _ in 0..sweeps {
            igr_core::bc::fill_scalar_ghosts(
                &mut self.sigma,
                &scalar_bcs,
                &igr_core::bc::ALL_FACES,
            );
            match cfg.elliptic {
                EllipticKind::Jacobi => {
                    let tmp = self.sigma_tmp.as_mut().expect("Jacobi requires sigma_tmp");
                    jacobi_sweep(
                        &self.rho_mix,
                        &self.igr_rhs,
                        &self.sigma,
                        tmp,
                        domain,
                        alpha_igr,
                    );
                    std::mem::swap(&mut self.sigma, tmp);
                }
                EllipticKind::GaussSeidel => {
                    gauss_seidel_sweep(
                        &self.rho_mix,
                        &self.igr_rhs,
                        &mut self.sigma,
                        domain,
                        alpha_igr,
                    );
                }
            }
        }
        igr_core::bc::fill_scalar_ghosts(&mut self.sigma, &scalar_bcs, &igr_core::bc::ALL_FACES);
    }
}

/// Time-marching driver of the two-fluid model: owns the two state buffers
/// (the paper's two-buffer RK arrangement), the RHS buffer, and the elliptic
/// workspace.
pub struct SpeciesSolver<R: Real, S: Storage<R>> {
    /// Configuration (treat as immutable after construction).
    pub cfg: SpeciesConfig,
    /// Current solution.
    pub q: SpeciesState<R, S>,
    q_rk: SpeciesState<R, S>,
    rhs: SpeciesState<R, S>,
    ws: SigmaWorkspace<R, S>,
    domain: Domain,
    alpha_igr: f64,
    t: f64,
    step_count: usize,
    /// Check for NaN/Inf every `n` steps (0 disables).
    pub nan_check_every: usize,
    /// Optional fixed time step (bypasses the CFL scan when set).
    pub fixed_dt: Option<f64>,
}

impl<R: Real, S: Storage<R>> SpeciesSolver<R, S> {
    /// Build a solver on `domain` with initial state `q`.
    pub fn new(cfg: SpeciesConfig, domain: Domain, q: SpeciesState<R, S>) -> Self {
        cfg.validate().expect("invalid SpeciesConfig");
        let shape = domain.shape;
        assert_eq!(q.shape(), shape, "state shape must match domain shape");
        let alpha_igr = cfg.alpha(domain.dx_max());
        let ws = SigmaWorkspace::new(shape, cfg.elliptic);
        SpeciesSolver {
            cfg,
            q,
            q_rk: SpeciesState::zeros(shape),
            rhs: SpeciesState::zeros(shape),
            ws,
            domain,
            alpha_igr,
            t: 0.0,
            step_count: 0,
            nan_check_every: 1,
            fixed_dt: None,
        }
    }

    /// Current simulated time.
    pub fn t(&self) -> f64 {
        self.t
    }

    /// Steps taken so far.
    pub fn steps_taken(&self) -> usize {
        self.step_count
    }

    /// Reset the march clock (simulation time and step counter) — checkpoint
    /// restore re-enters an interrupted run's timeline.
    pub fn reset_clock(&mut self, t: f64, steps: usize) {
        self.t = t;
        self.step_count = steps;
    }

    /// The domain this solver marches on.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// The regularization strength in use.
    pub fn alpha_igr(&self) -> f64 {
        self.alpha_igr
    }

    /// Current entropic pressure field.
    pub fn sigma(&self) -> &Field<R, S> {
        &self.ws.sigma
    }

    /// Mutable access to Σ for checkpoint restore. Marks the workspace warm
    /// so the next solve does ordinary warm-started sweeps instead of the
    /// cold-start count — restoring both Σ and the flow state reproduces an
    /// uninterrupted run bit for bit.
    pub fn sigma_mut(&mut self) -> &mut Field<R, S> {
        self.ws.warm = true;
        &mut self.ws.sigma
    }

    /// CFL-limited time step for the current state.
    pub fn stable_dt(&self) -> f64 {
        self.q.max_dt(
            &self.domain,
            &self.cfg.eos,
            self.cfg.mu,
            self.cfg.zeta,
            self.cfg.cfl,
        )
    }

    /// Advance one step (SSP-RK per the configuration). Returns the step
    /// record or the detected failure.
    pub fn step(&mut self) -> Result<StepInfo, SolverError> {
        let dt = self.fixed_dt.unwrap_or_else(|| self.stable_dt());
        if !(dt > 0.0 && dt.is_finite()) {
            return Err(SolverError::DegenerateDt {
                step: self.step_count,
                dt,
            });
        }
        let dt_r = R::from_f64(dt);
        let t0 = self.t;

        match self.cfg.rk {
            RkOrder::Rk1 => {
                stage_rhs(self, t0, StageBuf::Q);
                self.q_rk.euler_from(&self.q, dt_r, &self.rhs);
            }
            RkOrder::Rk2 => {
                stage_rhs(self, t0, StageBuf::Q);
                self.q_rk.euler_from(&self.q, dt_r, &self.rhs);
                stage_rhs(self, t0, StageBuf::QRk);
                self.q_rk
                    .rk_combine(R::HALF, &self.q, R::HALF, dt_r, &self.rhs);
            }
            RkOrder::Rk3 => {
                stage_rhs(self, t0, StageBuf::Q);
                self.q_rk.euler_from(&self.q, dt_r, &self.rhs);
                stage_rhs(self, t0, StageBuf::QRk);
                self.q_rk.rk_combine(
                    R::from_f64(0.75),
                    &self.q,
                    R::from_f64(0.25),
                    dt_r,
                    &self.rhs,
                );
                stage_rhs(self, t0, StageBuf::QRk);
                self.q_rk.rk_combine(
                    R::from_f64(1.0 / 3.0),
                    &self.q,
                    R::from_f64(2.0 / 3.0),
                    dt_r,
                    &self.rhs,
                );
            }
        }
        std::mem::swap(&mut self.q, &mut self.q_rk);

        self.t += dt;
        self.step_count += 1;
        if self.nan_check_every > 0 && self.step_count % self.nan_check_every == 0 {
            if let Some((var, pos)) = self.q.find_non_finite() {
                return Err(SolverError::NonFinite {
                    step: self.step_count,
                    var,
                    pos,
                });
            }
        }
        Ok(StepInfo {
            step: self.step_count,
            t: self.t,
            dt,
        })
    }

    /// March to `t_end` (never overshooting) or `max_steps`, whichever first.
    pub fn run_until(&mut self, t_end: f64, max_steps: usize) -> Result<usize, SolverError> {
        let mut n = 0;
        while self.t < t_end && n < max_steps {
            let remaining = t_end - self.t;
            let dt_cfl = self.fixed_dt.unwrap_or_else(|| self.stable_dt());
            let prev_fixed = self.fixed_dt;
            self.fixed_dt = Some(dt_cfl.min(remaining));
            let r = self.step();
            self.fixed_dt = prev_fixed;
            r?;
            n += 1;
        }
        Ok(n)
    }

    /// Persistent-array inventory: `3·7` state/stage/RHS arrays + Σ +
    /// elliptic RHS + mixture density (+ Σ copy under Jacobi) — the
    /// two-fluid analogue of the paper's 17–18 N accounting.
    pub fn memory_report(&self) -> MemoryReport {
        let shape = self.domain.shape;
        let n = shape.n_total();
        let mut r = MemoryReport::new(shape.n_interior());
        for (name, st) in [("q", &self.q), ("q_rk", &self.q_rk), ("rhs", &self.rhs)] {
            for (v, f) in st.fields().into_iter().enumerate() {
                r.push(format!("{name}[{v}]"), n, f.storage_bytes());
            }
        }
        r.push("sigma", n, self.ws.sigma.storage_bytes());
        r.push("igr_rhs", n, self.ws.igr_rhs.storage_bytes());
        r.push("rho_mix", n, self.ws.rho_mix.storage_bytes());
        if let Some(tmp) = &self.ws.sigma_tmp {
            r.push("sigma_tmp (Jacobi)", n, tmp.storage_bytes());
        }
        r
    }
}

/// Which buffer holds the current RK stage.
enum StageBuf {
    Q,
    QRk,
}

/// One RHS evaluation: ghost fill → Σ solve → fused flux accumulation.
/// Free function with explicit field borrows so the stage state and the
/// workspace can be borrowed disjointly.
fn stage_rhs<R: Real, S: Storage<R>>(s: &mut SpeciesSolver<R, S>, t: f64, buf: StageBuf) {
    let (stage, rhs) = match buf {
        StageBuf::Q => (&mut s.q, &mut s.rhs),
        StageBuf::QRk => (&mut s.q_rk, &mut s.rhs),
    };
    fill_ghosts(stage, &s.domain, &s.cfg.bc, &s.cfg.eos, t);
    let use_sigma = s.alpha_igr > 0.0;
    if use_sigma {
        s.ws.solve(&s.cfg, &s.domain, s.alpha_igr, stage);
    }
    rhs.zero();
    let params = FluxParams2::new(
        stage,
        &s.ws.sigma,
        &s.domain,
        s.cfg.eos,
        s.cfg.mu,
        s.cfg.zeta,
        s.cfg.order,
        use_sigma,
    );
    accumulate_fluxes2(&params, rhs);
}

/// Convenience constructor mirroring `igr_core::solver::igr_solver`.
pub fn species_solver<R: Real, S: Storage<R>>(
    cfg: SpeciesConfig,
    domain: Domain,
    q: SpeciesState<R, S>,
) -> SpeciesSolver<R, S> {
    SpeciesSolver::new(cfg, domain, q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eos::{MixPrim, I_E, I_R1, I_R2};
    use igr_grid::GridShape;
    use igr_prec::StoreF64;

    type Sv = SpeciesSolver<f64, StoreF64>;

    fn interface_setup(n: usize, u0: f64) -> (SpeciesConfig, Domain, SpeciesState<f64, StoreF64>) {
        let shape = GridShape::new(n, 1, 1, 3);
        let domain = Domain::unit(shape);
        let cfg = SpeciesConfig::default();
        let mut q = SpeciesState::zeros(shape);
        let w = 4.0 / n as f64;
        q.set_prim_field(&domain, &cfg.eos, |p| {
            // Smooth material blob: fluid 1 (air-like) inside, fluid 2 out.
            let a = 0.5 * ((p[0] - 0.3) / w).tanh() - 0.5 * ((p[0] - 0.7) / w).tanh();
            let a = a.clamp(0.0, 1.0);
            MixPrim::new([a * 1.0, (1.0 - a) * 0.138], [u0, 0.0, 0.0], 1.0, a)
        });
        (cfg, domain, q)
    }

    #[test]
    fn resting_material_interface_is_a_steady_state() {
        let (cfg, domain, q) = interface_setup(64, 0.0);
        let mut s = Sv::new(cfg, domain, q);
        let before = s.q.clone();
        for _ in 0..20 {
            s.step().unwrap();
        }
        for i in 0..64 {
            let pr = s.q.prim_at(i, 0, 0, &s.cfg.eos);
            assert!(pr.vel[0].abs() < 1e-12, "u stays zero: {}", pr.vel[0]);
            assert!((pr.p - 1.0).abs() < 1e-11, "p stays 1: {}", pr.p);
        }
        // The interface itself may diffuse a little; density field is close.
        assert!(s.q.max_diff(&before) < 0.05);
    }

    #[test]
    fn advected_interface_keeps_pressure_and_velocity_constant() {
        // The classic oscillation-free interface-advection test: p and u
        // must stay uniform while the material interface translates.
        let (cfg, domain, q) = interface_setup(128, 1.0);
        let mut s = Sv::new(cfg, domain, q);
        s.run_until(0.25, 10_000).unwrap();
        let mut max_dp = 0.0f64;
        let mut max_du = 0.0f64;
        for i in 0..128 {
            let pr = s.q.prim_at(i, 0, 0, &s.cfg.eos);
            max_dp = max_dp.max((pr.p - 1.0).abs());
            max_du = max_du.max((pr.vel[0] - 1.0).abs());
        }
        assert!(max_dp < 1e-9, "pressure oscillation {max_dp}");
        assert!(max_du < 1e-9, "velocity oscillation {max_du}");
        let (lo, hi) = s.q.alpha_range();
        assert!(hi > 0.9 && lo > -1e-6, "α range [{lo}, {hi}]");
    }

    #[test]
    fn conserved_totals_are_preserved_on_periodic_box() {
        let (cfg, domain, q) = interface_setup(64, 0.7);
        let before = q.totals(&domain);
        let mut s = Sv::new(cfg, domain, q);
        for _ in 0..15 {
            s.step().unwrap();
        }
        let after = s.q.totals(&domain);
        for v in [I_R1, I_R2, I_E] {
            let scale = before[v].abs().max(1.0);
            assert!(
                (after[v] - before[v]).abs() < 1e-12 * scale,
                "var {v}: {} -> {}",
                before[v],
                after[v]
            );
        }
    }

    #[test]
    fn reduces_exactly_to_single_fluid_when_gammas_match() {
        // γ1 = γ2: the mixture model must reproduce the single-fluid IGR
        // solver's pressure/velocity evolution on a steepening wave.
        let n = 64;
        let shape = GridShape::new(n, 1, 1, 3);
        let domain = Domain::unit(shape);
        let tau = std::f64::consts::TAU;

        let mut q5: igr_core::State<f64, StoreF64> = igr_core::State::zeros(shape);
        q5.set_prim_field(&domain, 1.4, |p| {
            igr_core::eos::Prim::new(1.0, [0.4 * (tau * p[0]).sin(), 0.0, 0.0], 1.0)
        });
        let cfg5 = igr_core::IgrConfig::default();
        let mut s5 = igr_core::solver::igr_solver(cfg5, domain, q5.clone());

        let q7 = SpeciesState::from_single_fluid(&q5, 0.3);
        let cfg7 = SpeciesConfig {
            eos: MixEos::single(1.4),
            ..Default::default()
        };
        let mut s7 = Sv::new(cfg7, domain, q7);

        let dt = 1e-3;
        s5.fixed_dt = Some(dt);
        s7.fixed_dt = Some(dt);
        for _ in 0..50 {
            s5.step().unwrap();
            s7.step().unwrap();
        }
        let eos = MixEos::single(1.4);
        let mut max_dp = 0.0f64;
        let mut max_drho = 0.0f64;
        for i in 0..n as i32 {
            let a = s5.q.prim_at(i, 0, 0, 1.4);
            let b = s7.q.prim_at(i, 0, 0, &eos);
            max_dp = max_dp.max((a.p - b.p).abs());
            max_drho = max_drho.max((a.rho - b.rho()).abs());
            assert!((b.alpha - 0.3).abs() < 1e-12, "α must stay exactly uniform");
        }
        assert!(max_dp < 1e-11, "pressure deviation {max_dp}");
        assert!(max_drho < 1e-11, "density deviation {max_drho}");
    }

    #[test]
    fn two_gamma_sod_produces_a_single_pressure_plateau() {
        // Air (γ=1.4, left) driving helium (γ=1.67, right): the star region
        // must have matched pressure and velocity across the contact.
        let n = 256;
        let shape = GridShape::new(n, 1, 1, 3);
        let domain = Domain::unit(shape);
        let cfg = SpeciesConfig {
            bc: SpeciesBcSet::all_outflow(),
            ..Default::default()
        };
        let mut q = SpeciesState::zeros(shape);
        let w = 2.0 / n as f64;
        q.set_prim_field(&domain, &cfg.eos, |p| {
            let b = 0.5 * (1.0 - ((p[0] - 0.5) / w).tanh()); // 1 left, 0 right
            MixPrim::new([b * 1.0, (1.0 - b) * 0.125], [0.0; 3], 0.1 + 0.9 * b, b)
        });
        let mut s = Sv::new(cfg, domain, q);
        s.run_until(0.15, 20_000).unwrap();
        assert!(s.q.find_non_finite().is_none());
        // Linear (unlimited) reconstruction overshoots the steep contact by
        // a few percent; IGR regularizes *shocks* (velocity-gradient
        // driven), not contacts, so a small α overshoot is the expected
        // behaviour of this scheme class.
        let (lo, hi) = s.q.alpha_range();
        assert!(lo > -0.05 && hi < 1.05, "α range [{lo}, {hi}]");
        // Sample the star region left and right of the contact: pressures
        // match (a contact supports no pressure jump).
        let eos = s.cfg.eos;
        let pr_l = s.q.prim_at((0.62 * n as f64) as i32, 0, 0, &eos);
        let pr_r = s.q.prim_at((0.72 * n as f64) as i32, 0, 0, &eos);
        assert!(
            (pr_l.p - pr_r.p).abs() < 0.05 * pr_l.p,
            "star pressures {} vs {}",
            pr_l.p,
            pr_r.p
        );
        assert!((pr_l.vel[0] - pr_r.vel[0]).abs() < 0.05 * pr_l.vel[0].abs().max(0.1));
    }

    #[test]
    fn memory_report_counts_the_two_fluid_budget() {
        let (cfg, domain, q) = interface_setup(32, 0.0);
        assert_eq!(cfg.elliptic, EllipticKind::Jacobi);
        let s = Sv::new(cfg, domain, q);
        let r = s.memory_report();
        // 21 state/stage/rhs + sigma + igr_rhs + rho_mix + sigma_tmp = 25.
        assert_eq!(r.entries.len(), 25);
        assert_eq!(r.total_scalars(), 25 * domain.shape.n_total());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = SpeciesConfig::default();
        cfg.eos.gamma2 = 0.5;
        assert!(cfg.validate().is_err());
        let cfg2 = SpeciesConfig {
            cfl: 0.0,
            ..Default::default()
        };
        assert!(cfg2.validate().is_err());
        let cfg3 = SpeciesConfig {
            sweeps: 0,
            ..Default::default()
        };
        assert!(cfg3.validate().is_err());
        let cfg4 = SpeciesConfig {
            sweeps: 0,
            alpha_factor: 0.0,
            ..Default::default()
        };
        assert!(cfg4.validate().is_ok());
    }

    #[test]
    fn nan_detection_aborts_cleanly() {
        let (cfg, domain, mut q) = interface_setup(32, 0.0);
        q.fields_mut()[I_E].set(5, 0, 0, f64::NAN);
        let mut s = Sv::new(cfg, domain, q);
        let err = s.step().unwrap_err();
        assert!(matches!(err, SolverError::NonFinite { .. }));
    }

    #[test]
    fn alpha_stays_bounded_through_a_shock_interface_interaction() {
        // A right-running shock in air hits a helium slab: α must remain in
        // [−ε, 1+ε] and the solution finite (IGR smooths the shock).
        let n = 256;
        let shape = GridShape::new(n, 1, 1, 3);
        let domain = Domain::unit(shape);
        let cfg = SpeciesConfig {
            bc: SpeciesBcSet::all_outflow(),
            ..Default::default()
        };
        let mut q = SpeciesState::zeros(shape);
        let w = 2.0 / n as f64;
        q.set_prim_field(&domain, &cfg.eos, |p| {
            // Post-shock air (Ms ≈ 1.5) | quiescent air | helium slab.
            let sh = 0.5 * (1.0 - ((p[0] - 0.2) / w).tanh());
            let he = 0.5 * (((p[0] - 0.5) / w).tanh() - ((p[0] - 0.8) / w).tanh());
            let a = (1.0 - he).clamp(0.0, 1.0);
            let rho_air = 1.0 + sh * 0.862; // 1.862 post-shock
            let rho = a * rho_air + (1.0 - a) * 0.138;
            let u = sh * 0.7;
            let p_ = 1.0 + sh * 1.458; // 2.458 post-shock
            MixPrim::new([a * rho, (1.0 - a) * rho], [u, 0.0, 0.0], p_, a)
        });
        let mut s = Sv::new(cfg, domain, q);
        s.run_until(0.25, 40_000).unwrap();
        assert!(s.q.find_non_finite().is_none());
        let (lo, hi) = s.q.alpha_range();
        assert!(lo > -0.05 && hi < 1.05, "α range [{lo}, {hi}]");
    }

    #[test]
    fn gauss_seidel_and_rk2_paths_run() {
        let (mut cfg, domain, q) = interface_setup(48, 0.5);
        cfg.elliptic = EllipticKind::GaussSeidel;
        cfg.rk = RkOrder::Rk2;
        let mut s = Sv::new(cfg, domain, q);
        for _ in 0..5 {
            s.step().unwrap();
        }
        assert!(s.q.find_non_finite().is_none());
        // GS variant drops the extra Σ array: 24 entries instead of 25.
        assert_eq!(s.memory_report().entries.len(), 24);
    }
}
