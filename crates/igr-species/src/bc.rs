//! Ghost-cell fill for the two-fluid state.
//!
//! Mirrors `igr_core::bc` (axis-by-axis over the full stored cross-section,
//! so edge and corner ghosts are consistent) but carries the seven-field
//! state and mixture inflow profiles.

use crate::eos::{MixEos, MixPrim, I_MX};
use crate::state::SpeciesState;
use igr_grid::{Axis, Domain, GridShape};
use igr_prec::{Real, Storage};
use std::sync::Arc;

/// A spatially varying, time-dependent mixture inflow (e.g. a two-gas jet
/// array: exhaust species into ambient air).
pub trait MixInflowProfile: Send + Sync {
    /// Primitive mixture state imposed at position `pos` and time `t`.
    fn prim(&self, pos: [f64; 3], t: f64) -> MixPrim<f64>;
}

impl<F> MixInflowProfile for F
where
    F: Fn([f64; 3], f64) -> MixPrim<f64> + Send + Sync,
{
    fn prim(&self, pos: [f64; 3], t: f64) -> MixPrim<f64> {
        self(pos, t)
    }
}

/// Boundary condition on one face of the two-fluid domain.
#[derive(Clone)]
pub enum SpeciesBc {
    /// Wrap to the opposite side.
    Periodic,
    /// Zero-gradient extrapolation.
    Outflow,
    /// Slip wall: mirror the interior, negate the normal momentum.
    Reflective,
    /// Uniform Dirichlet inflow.
    Inflow(MixPrim<f64>),
    /// Spatially varying Dirichlet inflow.
    InflowProfile(Arc<dyn MixInflowProfile>),
}

impl std::fmt::Debug for SpeciesBc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpeciesBc::Periodic => write!(f, "Periodic"),
            SpeciesBc::Outflow => write!(f, "Outflow"),
            SpeciesBc::Reflective => write!(f, "Reflective"),
            SpeciesBc::Inflow(p) => write!(f, "Inflow({p:?})"),
            SpeciesBc::InflowProfile(_) => write!(f, "InflowProfile(..)"),
        }
    }
}

/// Boundary conditions on all six faces; `faces[axis][0]` is the low side.
#[derive(Clone, Debug)]
pub struct SpeciesBcSet {
    /// Per-axis `[low, high]` conditions.
    pub faces: [[SpeciesBc; 2]; 3],
}

impl SpeciesBcSet {
    /// Periodic on every face.
    pub fn all_periodic() -> Self {
        SpeciesBcSet {
            faces: std::array::from_fn(|_| [SpeciesBc::Periodic, SpeciesBc::Periodic]),
        }
    }

    /// Zero-gradient outflow on every face.
    pub fn all_outflow() -> Self {
        SpeciesBcSet {
            faces: std::array::from_fn(|_| [SpeciesBc::Outflow, SpeciesBc::Outflow]),
        }
    }

    /// Replace one face's condition (builder style).
    pub fn with_face(mut self, axis: Axis, side: usize, bc: SpeciesBc) -> Self {
        self.faces[axis.dim()][side] = bc;
        self
    }

    /// The condition on one face.
    pub fn face(&self, axis: Axis, side: usize) -> &SpeciesBc {
        &self.faces[axis.dim()][side]
    }

    /// Periodic pairs must match, as in the single-fluid solver.
    pub fn validate(&self) -> Result<(), String> {
        for d in 0..3 {
            let lo = matches!(self.faces[d][0], SpeciesBc::Periodic);
            let hi = matches!(self.faces[d][1], SpeciesBc::Periodic);
            if lo != hi {
                return Err(format!("axis {d}: periodic BCs must come in pairs"));
            }
        }
        Ok(())
    }

    /// The equivalent single-fluid `BcSet` for *scalar* ghost fills (Σ):
    /// only periodic-vs-Neumann matters there, so every non-periodic face
    /// maps to `Outflow`.
    pub fn scalar_bcs(&self) -> igr_core::bc::BcSet {
        let mut out = igr_core::bc::BcSet::all_outflow();
        for (d, axis) in Axis::ALL.iter().enumerate() {
            for side in 0..2 {
                if matches!(self.faces[d][side], SpeciesBc::Periodic) {
                    out = out.with_face(*axis, side, igr_core::bc::Bc::Periodic);
                }
            }
        }
        out
    }
}

/// Fill every ghost layer of the two-fluid state at time `t`.
pub fn fill_ghosts<R: Real, S: Storage<R>>(
    state: &mut SpeciesState<R, S>,
    domain: &Domain,
    bcs: &SpeciesBcSet,
    eos: &MixEos,
    t: f64,
) {
    let shape = state.shape();
    for axis in [Axis::X, Axis::Y, Axis::Z] {
        if !shape.is_active(axis) {
            continue;
        }
        for side in 0..2 {
            fill_face(state, domain, bcs.face(axis, side), eos, t, axis, side);
        }
    }
}

fn fill_face<R: Real, S: Storage<R>>(
    state: &mut SpeciesState<R, S>,
    domain: &Domain,
    bc: &SpeciesBc,
    eos: &MixEos,
    t: f64,
    axis: Axis,
    side: usize,
) {
    let shape = state.shape();
    let n = shape.extent(axis) as i32;
    let ng = shape.ghosts(axis) as i32;

    for l in 1..=ng {
        let ghost = if side == 0 { -l } else { n - 1 + l };
        for (b, a) in cross_section(shape, axis) {
            let (i, j, k) = assemble(axis, ghost, a, b);
            match bc {
                SpeciesBc::Periodic => {
                    let src = if side == 0 { n - l } else { l - 1 };
                    let (si, sj, sk) = assemble(axis, src, a, b);
                    let q = state.cons_at(si, sj, sk);
                    state.set_cons(i, j, k, q);
                }
                SpeciesBc::Outflow => {
                    let src = if side == 0 { 0 } else { n - 1 };
                    let (si, sj, sk) = assemble(axis, src, a, b);
                    let q = state.cons_at(si, sj, sk);
                    state.set_cons(i, j, k, q);
                }
                SpeciesBc::Reflective => {
                    let src = if side == 0 { l - 1 } else { n - l };
                    let (si, sj, sk) = assemble(axis, src, a, b);
                    let mut q = state.cons_at(si, sj, sk);
                    q[I_MX + axis.dim()] = -q[I_MX + axis.dim()];
                    state.set_cons(i, j, k, q);
                }
                SpeciesBc::Inflow(pr) => {
                    let prr: MixPrim<R> =
                        MixPrim::from_f64([pr.ar[0], pr.ar[1]], pr.vel, pr.p, pr.alpha);
                    state.set_cons(i, j, k, prr.to_cons(eos));
                }
                SpeciesBc::InflowProfile(profile) => {
                    let pos = domain.cell_center(i, j, k);
                    let pr = profile.prim(pos, t);
                    let prr: MixPrim<R> =
                        MixPrim::from_f64([pr.ar[0], pr.ar[1]], pr.vel, pr.p, pr.alpha);
                    state.set_cons(i, j, k, prr.to_cons(eos));
                }
            }
        }
    }
}

/// Full stored cross-section perpendicular to `axis` (ghost rows of the
/// other axes included, so corners get filled by the sequential x→y→z pass).
fn cross_section(shape: GridShape, axis: Axis) -> impl Iterator<Item = (i32, i32)> {
    let (ea, eb) = match axis {
        Axis::X => (Axis::Y, Axis::Z),
        Axis::Y => (Axis::X, Axis::Z),
        Axis::Z => (Axis::X, Axis::Y),
    };
    let (ga, gb) = (shape.ghosts(ea) as i32, shape.ghosts(eb) as i32);
    let (na, nb) = (shape.extent(ea) as i32, shape.extent(eb) as i32);
    (-gb..nb + gb).flat_map(move |b| (-ga..na + ga).map(move |a| (b, a)))
}

#[inline]
fn assemble(axis: Axis, c: i32, a: i32, b: i32) -> (i32, i32, i32) {
    match axis {
        Axis::X => (c, a, b),
        Axis::Y => (a, c, b),
        Axis::Z => (a, b, c),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eos::I_A;
    use igr_prec::StoreF64;

    type St = SpeciesState<f64, StoreF64>;

    const EOS: MixEos = MixEos {
        gamma1: 1.4,
        gamma2: 1.67,
    };

    fn graded_state(shape: GridShape) -> (St, Domain) {
        let domain = Domain::unit(shape);
        let mut s = St::zeros(shape);
        s.set_prim_field(&domain, &EOS, |p| {
            let a = (0.2 + 0.6 * p[0]).clamp(0.0, 1.0);
            MixPrim::new(
                [a * 1.0, (1.0 - a) * 0.5],
                [0.5, -0.25, 0.0],
                1.0 + 0.1 * p[0],
                a,
            )
        });
        (s, domain)
    }

    #[test]
    fn periodic_fill_wraps_all_seven_fields() {
        let shape = GridShape::new(8, 4, 1, 3);
        let (mut s, d) = graded_state(shape);
        fill_ghosts(&mut s, &d, &SpeciesBcSet::all_periodic(), &EOS, 0.0);
        for j in 0..4 {
            for l in 1..=3 {
                assert_eq!(s.cons_at(-l, j, 0), s.cons_at(8 - l, j, 0));
                assert_eq!(s.cons_at(7 + l, j, 0), s.cons_at(l - 1, j, 0));
            }
        }
    }

    #[test]
    fn reflective_fill_negates_only_normal_momentum() {
        let shape = GridShape::new(8, 1, 1, 3);
        let (mut s, d) = graded_state(shape);
        let bcs = SpeciesBcSet::all_outflow()
            .with_face(Axis::X, 0, SpeciesBc::Reflective)
            .with_face(Axis::X, 1, SpeciesBc::Reflective);
        fill_ghosts(&mut s, &d, &bcs, &EOS, 0.0);
        for l in 1..=3i32 {
            let g = s.cons_at(-l, 0, 0);
            let m = s.cons_at(l - 1, 0, 0);
            assert_eq!(g[I_MX], -m[I_MX]);
            assert_eq!(g[I_MX + 1], m[I_MX + 1]);
            assert_eq!(g[I_A], m[I_A]);
        }
    }

    #[test]
    fn inflow_imposes_the_mixture_state() {
        let shape = GridShape::new(8, 1, 1, 3);
        let (mut s, d) = graded_state(shape);
        let jet = MixPrim::new([2.0, 0.0], [3.0, 0.0, 0.0], 5.0, 1.0);
        let bcs = SpeciesBcSet::all_outflow().with_face(Axis::X, 0, SpeciesBc::Inflow(jet));
        fill_ghosts(&mut s, &d, &bcs, &EOS, 0.0);
        let pr = s.prim_at(-1, 0, 0, &EOS);
        assert!((pr.ar[0] - 2.0).abs() < 1e-14);
        assert!((pr.p - 5.0).abs() < 1e-13);
        assert!((pr.alpha - 1.0).abs() < 1e-14);
    }

    #[test]
    fn inflow_profile_sees_position_and_time() {
        let shape = GridShape::new(4, 4, 1, 2);
        let (mut s, d) = graded_state(shape);
        let profile = Arc::new(|pos: [f64; 3], t: f64| {
            MixPrim::new([1.0 + pos[1] + t, 0.0], [0.0; 3], 1.0, 1.0)
        });
        let bcs =
            SpeciesBcSet::all_outflow().with_face(Axis::X, 0, SpeciesBc::InflowProfile(profile));
        fill_ghosts(&mut s, &d, &bcs, &EOS, 0.5);
        let pr = s.prim_at(-1, 1, 0, &EOS);
        // y-center of j=1 on a 4-cell unit axis = 0.375.
        assert!((pr.ar[0] - (1.0 + 0.375 + 0.5)).abs() < 1e-12);
    }

    #[test]
    fn scalar_bcs_preserve_periodicity_only() {
        let bcs = SpeciesBcSet::all_outflow()
            .with_face(Axis::Y, 0, SpeciesBc::Periodic)
            .with_face(Axis::Y, 1, SpeciesBc::Periodic)
            .with_face(
                Axis::X,
                0,
                SpeciesBc::Inflow(MixPrim::pure1(1.0, [0.0; 3], 1.0)),
            );
        let sb = bcs.scalar_bcs();
        assert!(matches!(sb.face(Axis::Y, 0), igr_core::bc::Bc::Periodic));
        assert!(matches!(sb.face(Axis::X, 0), igr_core::bc::Bc::Outflow));
        bcs.validate().unwrap();
    }

    #[test]
    fn unpaired_periodicity_is_rejected() {
        let bad = SpeciesBcSet::all_periodic().with_face(Axis::Z, 1, SpeciesBc::Outflow);
        assert!(bad.validate().is_err());
    }
}
