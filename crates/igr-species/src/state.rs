//! The seven stored fields of the two-fluid model as structure-of-arrays.

use crate::eos::{
    cons_to_prim, Cons2, MixEos, MixPrim, I_A, I_E, I_MX, I_MY, I_MZ, I_R1, I_R2, NS,
};
use igr_grid::{Domain, Field, GridShape};
use igr_prec::{Real, Storage};
use rayon::prelude::*;

/// Stored state (or RHS accumulator) of the two-fluid model on one block:
/// `(α₁ρ₁, α₂ρ₂, ρu, ρv, ρw, E, α₁)`, each its own [`Field`] (SoA).
#[derive(Clone, Debug)]
pub struct SpeciesState<R: Real, S: Storage<R>> {
    fields: [Field<R, S>; NS],
    shape: GridShape,
}

impl<R: Real, S: Storage<R>> SpeciesState<R, S> {
    /// All-zero state on `shape`.
    pub fn zeros(shape: GridShape) -> Self {
        SpeciesState {
            fields: std::array::from_fn(|_| Field::zeros(shape)),
            shape,
        }
    }

    /// The grid shape this state lives on.
    #[inline]
    pub fn shape(&self) -> GridShape {
        self.shape
    }

    /// Total storage bytes of the seven fields.
    pub fn storage_bytes(&self) -> usize {
        self.fields.iter().map(|f| f.storage_bytes()).sum()
    }

    /// Immutable views of the seven fields, in stored order.
    pub fn fields(&self) -> [&Field<R, S>; NS] {
        std::array::from_fn(|v| &self.fields[v])
    }

    /// Mutable views of the seven fields.
    pub fn fields_mut(&mut self) -> [&mut Field<R, S>; NS] {
        self.fields.each_mut()
    }

    /// One field by variable index (`I_R1` … `I_A`).
    #[inline]
    pub fn field(&self, v: usize) -> &Field<R, S> {
        &self.fields[v]
    }

    /// The seven packed arrays as mutable slices (chunked parallel writes).
    pub fn split_mut_packed(&mut self) -> [&mut [S::Packed]; NS] {
        self.fields.each_mut().map(|f| f.packed_mut())
    }

    /// Stored tuple at a (possibly ghost) cell.
    #[inline(always)]
    pub fn cons_at(&self, i: i32, j: i32, k: i32) -> Cons2<R> {
        std::array::from_fn(|v| self.fields[v].at(i, j, k))
    }

    /// Stored tuple at a linear index.
    #[inline(always)]
    pub fn cons_at_lin(&self, lin: usize) -> Cons2<R> {
        std::array::from_fn(|v| self.fields[v].at_lin(lin))
    }

    /// Write a stored tuple at a cell.
    #[inline(always)]
    pub fn set_cons(&mut self, i: i32, j: i32, k: i32, q: Cons2<R>) {
        for (v, field) in self.fields.iter_mut().enumerate() {
            field.set(i, j, k, q[v]);
        }
    }

    /// Primitive mixture state at a cell.
    #[inline]
    pub fn prim_at(&self, i: i32, j: i32, k: i32, eos: &MixEos) -> MixPrim<R> {
        cons_to_prim(&self.cons_at(i, j, k), eos)
    }

    /// Initialize every interior cell from a primitive-state function of the
    /// cell-center position.
    pub fn set_prim_field(
        &mut self,
        domain: &Domain,
        eos: &MixEos,
        f: impl Fn([f64; 3]) -> MixPrim<f64>,
    ) {
        let shape = self.shape;
        for k in 0..shape.nz as i32 {
            for j in 0..shape.ny as i32 {
                for i in 0..shape.nx as i32 {
                    let p64 = f(domain.cell_center(i, j, k));
                    let pr: MixPrim<R> =
                        MixPrim::from_f64([p64.ar[0], p64.ar[1]], p64.vel, p64.p, p64.alpha);
                    self.set_cons(i, j, k, pr.to_cons(eos));
                }
            }
        }
    }

    /// Set every stored (interior + ghost) cell to zero.
    pub fn zero(&mut self) {
        for f in &mut self.fields {
            f.fill(R::ZERO);
        }
    }

    /// `self = src + dt * rhs` elementwise (RK stage 1), parallel.
    pub fn euler_from(&mut self, src: &SpeciesState<R, S>, dt: R, rhs: &SpeciesState<R, S>) {
        for ((dst, s), r) in self.fields.iter_mut().zip(&src.fields).zip(&rhs.fields) {
            dst.packed_mut()
                .par_iter_mut()
                .zip(s.packed().par_iter())
                .zip(r.packed().par_iter())
                .for_each(|((d, &sv), &rv)| {
                    *d = S::pack(S::unpack(sv) + dt * S::unpack(rv));
                });
        }
    }

    /// `self = a*base + b*(self + dt*rhs)` elementwise (SSP-RK combine),
    /// parallel — the same two-buffer arrangement as the single-fluid state.
    pub fn rk_combine(
        &mut self,
        a: R,
        base: &SpeciesState<R, S>,
        b: R,
        dt: R,
        rhs: &SpeciesState<R, S>,
    ) {
        for ((dst, s), r) in self.fields.iter_mut().zip(&base.fields).zip(&rhs.fields) {
            dst.packed_mut()
                .par_iter_mut()
                .zip(s.packed().par_iter())
                .zip(r.packed().par_iter())
                .for_each(|((d, &sv), &rv)| {
                    let cur = S::unpack(*d);
                    *d = S::pack(a * S::unpack(sv) + b * (cur + dt * S::unpack(rv)));
                });
        }
    }

    /// Interior integrals of the stored quantities times cell volume:
    /// `(m₁, m₂, ρu, ρv, ρw, E, α₁)`. The first six are conserved; the
    /// volume-fraction integral is conserved for divergence-free transport
    /// only (its equation is non-conservative).
    pub fn totals(&self, domain: &Domain) -> [f64; NS] {
        let vol = domain.cell_volume();
        std::array::from_fn(|v| self.fields[v].sum_interior(|x| x.to_f64()) * vol)
    }

    /// Largest admissible time step under the acoustic CFL condition, with a
    /// parabolic term when viscosity is active.
    pub fn max_dt(&self, domain: &Domain, eos: &MixEos, mu: f64, zeta: f64, cfl: f64) -> f64 {
        let shape = self.shape;
        let inv_dx: Vec<(usize, f64)> = shape
            .active_axes()
            .map(|a| (a.dim(), 1.0 / domain.dx(a)))
            .collect();
        let diff = mu.max(zeta);
        let max_signal = (0..shape.nz as i32)
            .into_par_iter()
            .map(|k| {
                let mut local_max = 0.0f64;
                for j in 0..shape.ny as i32 {
                    for i in 0..shape.nx as i32 {
                        let pr = self.prim_at(i, j, k, eos);
                        let c = pr.sound_speed(eos).to_f64();
                        let mut s = 0.0;
                        for &(d, idx) in &inv_dx {
                            s += (pr.vel[d].to_f64().abs() + c) * idx;
                            if diff > 0.0 {
                                s += 2.0 * diff / pr.rho().to_f64() * idx * idx;
                            }
                        }
                        local_max = local_max.max(s);
                    }
                }
                local_max
            })
            .reduce(|| 0.0, f64::max);
        assert!(
            max_signal > 0.0 && max_signal.is_finite(),
            "degenerate wave speeds"
        );
        cfl / max_signal
    }

    /// First non-finite interior value, if any (instability detection).
    /// Row-slice scan with a branch-free healthy path — see
    /// [`igr_grid::Field::find_non_finite_interior`].
    pub fn find_non_finite(&self) -> Option<(usize, (i32, i32, i32))> {
        self.fields
            .iter()
            .enumerate()
            .find_map(|(v, f)| f.find_non_finite_interior().map(|pos| (v, pos)))
    }

    /// Interior range of the volume fraction `(min, max)` — the boundedness
    /// diagnostic (`α ∈ [0, 1]` up to reconstruction overshoot).
    pub fn alpha_range(&self) -> (f64, f64) {
        let f = &self.fields[I_A];
        let max = f.max_interior(|x| x.to_f64());
        let min = -f.max_interior(|x| -x.to_f64());
        (min, max)
    }

    /// Max-norm of the difference to another state over interior cells.
    pub fn max_diff(&self, other: &SpeciesState<R, S>) -> f64 {
        assert_eq!(self.shape, other.shape);
        let mut m = 0.0f64;
        for (a, b) in self.fields.iter().zip(&other.fields) {
            for lin in self.shape.interior_indices() {
                m = m.max((a.at_lin(lin).to_f64() - b.at_lin(lin).to_f64()).abs());
            }
        }
        m
    }

    /// Embed a single-fluid conserved state at uniform volume fraction
    /// `alpha`: `m₁ = α·ρ`, `m₂ = (1−α)·ρ`, momenta/energy copied. Used by
    /// the single-fluid-reduction tests and cases.
    pub fn from_single_fluid(q5: &igr_core::State<R, S>, alpha: f64) -> Self {
        let shape = q5.shape();
        let mut out = Self::zeros(shape);
        let a = R::from_f64(alpha);
        for lin in 0..shape.n_total() {
            let rho = q5.rho.at_lin(lin);
            out.fields[I_R1].set_lin(lin, a * rho);
            out.fields[I_R2].set_lin(lin, (R::ONE - a) * rho);
            out.fields[I_MX].set_lin(lin, q5.mx.at_lin(lin));
            out.fields[I_MY].set_lin(lin, q5.my.at_lin(lin));
            out.fields[I_MZ].set_lin(lin, q5.mz.at_lin(lin));
            out.fields[I_E].set_lin(lin, q5.en.at_lin(lin));
            out.fields[I_A].set_lin(lin, a);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igr_prec::StoreF64;

    type St = SpeciesState<f64, StoreF64>;

    const EOS: MixEos = MixEos {
        gamma1: 1.4,
        gamma2: 1.67,
    };

    fn uniform(shape: GridShape, pr: MixPrim<f64>) -> (St, Domain) {
        let domain = Domain::unit(shape);
        let mut s = St::zeros(shape);
        s.set_prim_field(&domain, &EOS, |_| pr);
        (s, domain)
    }

    #[test]
    fn set_prim_then_prim_at_roundtrips() {
        let shape = GridShape::new(4, 4, 2, 3);
        let (s, _) = uniform(shape, MixPrim::new([0.3, 0.9], [0.1, 0.2, 0.3], 0.8, 0.4));
        let pr = s.prim_at(2, 1, 1, &EOS);
        assert!((pr.p - 0.8).abs() < 1e-14);
        assert!((pr.alpha - 0.4).abs() < 1e-14);
        assert!((pr.rho() - 1.2).abs() < 1e-14);
    }

    #[test]
    fn totals_of_uniform_state() {
        let shape = GridShape::new(8, 8, 1, 3);
        let (s, d) = uniform(shape, MixPrim::new([0.5, 1.5], [0.0; 3], 1.0, 0.25));
        let t = s.totals(&d);
        assert!((t[I_R1] - 0.5).abs() < 1e-12);
        assert!((t[I_R2] - 1.5).abs() < 1e-12);
        assert!((t[I_A] - 0.25).abs() < 1e-12);
        assert!(t[I_MX].abs() < 1e-14);
    }

    #[test]
    fn euler_and_rk_combine_are_affine() {
        let shape = GridShape::new(4, 1, 1, 3);
        let (base, _) = uniform(shape, MixPrim::new([1.0, 0.0], [0.0; 3], 1.0, 1.0));
        let mut rhs = St::zeros(shape);
        rhs.fields_mut()[I_A].map_interior(|_, _, _, _| 2.0);
        let mut out = St::zeros(shape);
        out.euler_from(&base, 0.25, &rhs);
        assert!((out.field(I_A).at(1, 0, 0) - 1.5).abs() < 1e-14);
        out.rk_combine(0.5, &base, 0.5, 0.25, &rhs);
        // 0.5*1 + 0.5*(1.5 + 0.25*2) = 1.5
        assert!((out.field(I_A).at(1, 0, 0) - 1.5).abs() < 1e-14);
    }

    #[test]
    fn max_dt_uses_the_fastest_pure_fluid() {
        let shape = GridShape::new(16, 1, 1, 3);
        let (s1, d) = uniform(shape, MixPrim::pure1(1.0, [0.0; 3], 1.0));
        let (s2, _) = uniform(shape, MixPrim::pure2(1.0, [0.0; 3], 1.0));
        let dt1 = s1.max_dt(&d, &EOS, 0.0, 0.0, 0.5);
        let dt2 = s2.max_dt(&d, &EOS, 0.0, 0.0, 0.5);
        // Fluid 2 (higher gamma) is stiffer: smaller dt.
        assert!(dt2 < dt1);
        let c = 1.4f64.sqrt();
        assert!((dt1 - 0.5 / (c * 16.0)).abs() < 1e-12);
    }

    #[test]
    fn alpha_range_and_non_finite_detection() {
        let shape = GridShape::new(4, 4, 1, 3);
        let (mut s, _) = uniform(shape, MixPrim::new([0.5, 0.5], [0.0; 3], 1.0, 0.5));
        assert_eq!(s.alpha_range(), (0.5, 0.5));
        assert!(s.find_non_finite().is_none());
        s.fields_mut()[I_E].set(1, 2, 0, f64::INFINITY);
        let (v, pos) = s.find_non_finite().unwrap();
        assert_eq!(v, I_E);
        assert_eq!(pos, (1, 2, 0));
    }

    #[test]
    fn single_fluid_embedding_preserves_mixture_density_and_energy() {
        let shape = GridShape::new(8, 1, 1, 3);
        let domain = Domain::unit(shape);
        let mut q5: igr_core::State<f64, StoreF64> = igr_core::State::zeros(shape);
        q5.set_prim_field(&domain, 1.4, |p| {
            igr_core::eos::Prim::new(1.0 + 0.3 * p[0], [0.5, 0.0, 0.0], 2.0)
        });
        let q7 = St::from_single_fluid(&q5, 0.3);
        for i in 0..8 {
            let pr5 = q5.prim_at(i, 0, 0, 1.4);
            let pr7 = q7.prim_at(i, 0, 0, &MixEos::single(1.4));
            assert!((pr7.rho() - pr5.rho).abs() < 1e-14);
            assert!((pr7.p - pr5.p).abs() < 1e-12);
            assert!((pr7.alpha - 0.3).abs() < 1e-15);
        }
    }
}
