//! The fused, dimension-split RHS kernel of the two-fluid model.
//!
//! Identical in structure to `igr_core::rhs` (thread-local reconstruction,
//! flux, and gradient temporaries; slab-parallel over the outermost active
//! axis; fixed per-cell arithmetic order, so results are bitwise independent
//! of the thread count), with two extensions:
//!
//! 1. seven stored variables instead of five, and
//! 2. the quasi-conservative volume-fraction update
//!    `∂α/∂t = −∇·(αu) + α ∇·u`, whose non-conservative product uses the
//!    *same* interface velocity `u* = (u_L + u_R)/2` as the central part of
//!    the conservative flux — so a uniform `α` receives an exactly zero
//!    update, and (because `Γ(α)` is linear) a material interface in
//!    pressure/velocity equilibrium stays in equilibrium to machine
//!    precision.

use crate::eos::{
    cons_to_prim, inviscid_flux, max_wave_speed, Cons2, MixEos, MixPrim, I_A, I_E, I_MX, NS,
};
use crate::state::SpeciesState;
use igr_core::config::ReconOrder;
use igr_core::recon::recon;
use igr_core::rhs::{layer_chunks, prefix_sums};
use igr_grid::{Axis, Domain, Field, GridShape};
use igr_prec::{Real, Storage};
use rayon::prelude::*;

/// Interface flux record: the seven numerical fluxes plus the interface
/// velocity that feeds the non-conservative `α ∇·u` term.
#[derive(Clone, Copy)]
pub struct IfaceFlux<R: Real> {
    /// Numerical flux of each stored variable.
    pub f: Cons2<R>,
    /// `u* = (u_L + u_R)/2` along the sweep direction.
    pub ustar: R,
}

impl<R: Real> IfaceFlux<R> {
    fn zero() -> Self {
        IfaceFlux {
            f: [R::ZERO; NS],
            ustar: R::ZERO,
        }
    }
}

/// Everything the flux kernel needs, borrowed immutably and shared across
/// tasks.
pub struct FluxParams2<'a, R: Real, S: Storage<R>> {
    /// Current stage state (ghosts filled).
    pub q: &'a SpeciesState<R, S>,
    /// Entropic pressure field; read only when `use_sigma`.
    pub sigma: &'a Field<R, S>,
    /// Mixture equation of state.
    pub eos: MixEos,
    /// Shear viscosity.
    pub mu: R,
    /// Bulk viscosity.
    pub zeta: R,
    /// Are viscous fluxes active?
    pub viscous: bool,
    /// Is the entropic pressure active?
    pub use_sigma: bool,
    /// Reconstruction order.
    pub order: ReconOrder,
    /// `1/Δx` per axis.
    pub inv_dx: [R; 3],
    /// `1/(2Δx)` per axis.
    pub inv2dx: [R; 3],
    /// Linear strides per axis.
    pub strides: [usize; 3],
    /// Grid shape.
    pub shape: GridShape,
}

impl<'a, R: Real, S: Storage<R>> FluxParams2<'a, R, S> {
    /// Bundle the kernel inputs.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        q: &'a SpeciesState<R, S>,
        sigma: &'a Field<R, S>,
        domain: &Domain,
        eos: MixEos,
        mu: f64,
        zeta: f64,
        order: ReconOrder,
        use_sigma: bool,
    ) -> Self {
        let shape = q.shape();
        let dx = [domain.dx(Axis::X), domain.dx(Axis::Y), domain.dx(Axis::Z)];
        FluxParams2 {
            q,
            sigma,
            eos,
            mu: R::from_f64(mu),
            zeta: R::from_f64(zeta),
            viscous: mu != 0.0 || zeta != 0.0,
            use_sigma,
            order,
            inv_dx: std::array::from_fn(|d| R::from_f64(1.0 / dx[d])),
            inv2dx: std::array::from_fn(|d| R::from_f64(0.5 / dx[d])),
            strides: [
                shape.stride(Axis::X),
                shape.stride(Axis::Y),
                shape.stride(Axis::Z),
            ],
            shape,
        }
    }

    /// Cell-centred mixture velocity at a linear index.
    #[inline(always)]
    fn vel_at(&self, lin: usize) -> [R; 3] {
        let q = self.q;
        let inv_rho = R::ONE / (q.field(0).at_lin(lin) + q.field(1).at_lin(lin));
        [
            q.field(I_MX).at_lin(lin) * inv_rho,
            q.field(I_MX + 1).at_lin(lin) * inv_rho,
            q.field(I_MX + 2).at_lin(lin) * inv_rho,
        ]
    }

    /// Numerical flux through the interface between cell `lin_c` and its
    /// successor along axis `d`.
    #[inline(always)]
    fn interface_flux(&self, d: usize, lin_c: usize) -> IfaceFlux<R> {
        let st = self.strides[d];
        let base = lin_c - 2 * st;

        // Load the 6-cell stored windows (Algorithm 1's q ← -2..3 — which in
        // the paper already includes the advected α).
        let mut w = [[R::ZERO; 6]; NS];
        for o in 0..6 {
            let lin = base + o * st;
            let qq = self.q.cons_at_lin(lin);
            for v in 0..NS {
                w[v][o] = qq[v];
            }
        }

        let mut ql = [R::ZERO; NS];
        let mut qr = [R::ZERO; NS];
        for v in 0..NS {
            let (l, r) = recon(self.order, &w[v]);
            ql[v] = l;
            qr[v] = r;
        }

        // Entropic pressure at the interface: same reconstruction.
        let (mut sl, mut sr) = (R::ZERO, R::ZERO);
        if self.use_sigma {
            let mut sw = [R::ZERO; 6];
            for (o, swo) in sw.iter_mut().enumerate() {
                *swo = self.sigma.at_lin(base + o * st);
            }
            let (l, r) = recon(self.order, &sw);
            sl = l;
            sr = r;
        }

        let mut prl = cons_to_prim(&ql, &self.eos);
        let mut prr = cons_to_prim(&qr, &self.eos);

        // Positivity/validity safeguard: fall back to donor-cell states when
        // the linear reconstruction overshoots into an inadmissible mixture
        // (negative mixture density/pressure, or α far enough outside [0, 1]
        // that Γ(α) flips sign).
        let valid = |pr: &MixPrim<R>| {
            pr.rho() > R::ZERO && pr.p > R::ZERO && self.eos.big_gamma(pr.alpha) > R::ZERO
        };
        if !(valid(&prl) && valid(&prr)) {
            for v in 0..NS {
                ql[v] = w[v][2];
                qr[v] = w[v][3];
            }
            prl = cons_to_prim(&ql, &self.eos);
            prr = cons_to_prim(&qr, &self.eos);
            if self.use_sigma {
                sl = self.sigma.at_lin(lin_c);
                sr = self.sigma.at_lin(lin_c + st);
            }
        }

        let lam =
            max_wave_speed(d, &prl, sl, &self.eos).max(max_wave_speed(d, &prr, sr, &self.eos));
        let fl = inviscid_flux(d, &ql, &prl, prl.p + sl);
        let fr = inviscid_flux(d, &qr, &prr, prr.p + sr);

        let mut out = IfaceFlux::zero();
        for v in 0..NS {
            out.f[v] = R::HALF * (fl[v] + fr[v]) - R::HALF * lam * (qr[v] - ql[v]);
        }
        out.ustar = R::HALF * (prl.vel[d] + prr.vel[d]);

        if self.viscous {
            self.subtract_viscous_flux(d, lin_c, &prl, &prr, &mut out.f);
        }
        out
    }

    /// Viscous contribution at the interface, identical to the single-fluid
    /// kernel with the mixture density in the velocities.
    #[inline(always)]
    fn subtract_viscous_flux(
        &self,
        d: usize,
        lin_c: usize,
        prl: &MixPrim<R>,
        prr: &MixPrim<R>,
        f: &mut Cons2<R>,
    ) {
        let st = self.strides[d];
        let lin_p = lin_c + st;
        let u_c = self.vel_at(lin_c);
        let u_p = self.vel_at(lin_p);

        let mut grad = [[R::ZERO; 3]; 3];
        for a in 0..3 {
            grad[a][d] = (u_p[a] - u_c[a]) * self.inv_dx[d];
        }
        for (e, axis) in Axis::ALL.iter().enumerate() {
            if e == d || !self.shape.is_active(*axis) {
                continue;
            }
            let se = self.strides[e];
            let up_c = self.vel_at(lin_c + se);
            let dn_c = self.vel_at(lin_c - se);
            let up_p = self.vel_at(lin_p + se);
            let dn_p = self.vel_at(lin_p - se);
            for a in 0..3 {
                let g_c = (up_c[a] - dn_c[a]) * self.inv2dx[e];
                let g_p = (up_p[a] - dn_p[a]) * self.inv2dx[e];
                grad[a][e] = R::HALF * (g_c + g_p);
            }
        }

        let div = grad[0][0] + grad[1][1] + grad[2][2];
        let bulk = (self.zeta - R::TWO * self.mu / R::from_f64(3.0)) * div;
        for a in 0..3 {
            let mut tau_ad = self.mu * (grad[a][d] + grad[d][a]);
            if a == d {
                tau_ad += bulk;
            }
            f[I_MX + a] -= tau_ad;
            f[I_E] -= R::HALF * (prl.vel[a] + prr.vel[a]) * tau_ad;
        }
    }
}

/// Accumulate `−∇·F` (plus the non-conservative `α ∇·u` term) into `rhs` for
/// all active directions. `rhs` must be zeroed; ghosts of `q` and `sigma`
/// must be filled.
pub fn accumulate_fluxes2<R: Real, S: Storage<R>>(
    p: &FluxParams2<'_, R, S>,
    rhs: &mut SpeciesState<R, S>,
) {
    let shape = p.shape;
    let threads = rayon::current_num_threads();

    if shape.is_active(Axis::Z) {
        let sxy = shape.stride(Axis::Z);
        let n_layers = shape.total(Axis::Z);
        let counts = layer_chunks(n_layers, threads);
        let bounds = prefix_sums(&counts);
        let sizes: Vec<usize> = counts.iter().map(|&c| c * sxy).collect();
        let gz = shape.ghosts(Axis::Z) as i32;
        par_over_uneven_chunks7(rhs, &sizes, |ci, chunks| {
            let l0 = bounds[ci] as i32;
            let l1 = bounds[ci + 1] as i32;
            let k0 = (l0 - gz).max(0);
            let k1 = (l1 - gz).min(shape.nz as i32);
            if k0 >= k1 {
                return;
            }
            let off = l0 as usize * sxy;
            let mut scratch = Scratch::new(shape.nx);
            process_block(p, chunks, off, 0..shape.ny as i32, k0..k1, &mut scratch);
        });
    } else if shape.is_active(Axis::Y) {
        let sx = shape.stride(Axis::Y);
        let n_layers = shape.total(Axis::Y);
        let counts = layer_chunks(n_layers, threads);
        let bounds = prefix_sums(&counts);
        let sizes: Vec<usize> = counts.iter().map(|&c| c * sx).collect();
        let gy = shape.ghosts(Axis::Y) as i32;
        par_over_uneven_chunks7(rhs, &sizes, |ci, chunks| {
            let l0 = bounds[ci] as i32;
            let l1 = bounds[ci + 1] as i32;
            let j0 = (l0 - gy).max(0);
            let j1 = (l1 - gy).min(shape.ny as i32);
            if j0 >= j1 {
                return;
            }
            let off = l0 as usize * sx;
            let mut scratch = Scratch::new(shape.nx);
            process_block(p, chunks, off, j0..j1, 0..1, &mut scratch);
        });
    } else {
        let chunks = rhs.split_mut_packed();
        let mut scratch = Scratch::new(shape.nx);
        process_block(p, chunks, 0, 0..1, 0..1, &mut scratch);
    }
}

/// Split the seven arrays into aligned chunks and run `f` on each set in
/// parallel (the 7-variable sibling of `igr_core::rhs::par_over_chunks`).
pub fn par_over_chunks7<R: Real, S: Storage<R>>(
    rhs: &mut SpeciesState<R, S>,
    csize: usize,
    f: impl Fn(usize, [&mut [S::Packed]; NS]) + Sync,
) {
    let [r0, r1, r2, r3, r4, r5, r6] = rhs.split_mut_packed();
    r0.par_chunks_mut(csize)
        .zip(r1.par_chunks_mut(csize))
        .zip(r2.par_chunks_mut(csize))
        .zip(r3.par_chunks_mut(csize))
        .zip(r4.par_chunks_mut(csize))
        .zip(r5.par_chunks_mut(csize))
        .zip(r6.par_chunks_mut(csize))
        .enumerate()
        .for_each(|(ci, ((((((c0, c1), c2), c3), c4), c5), c6))| {
            f(ci, [c0, c1, c2, c3, c4, c5, c6])
        });
}

/// [`par_over_chunks7`] with caller-specified chunk sizes (the balanced
/// layer decomposition of [`layer_chunks`]).
pub fn par_over_uneven_chunks7<R: Real, S: Storage<R>>(
    rhs: &mut SpeciesState<R, S>,
    sizes: &[usize],
    f: impl Fn(usize, [&mut [S::Packed]; NS]) + Sync,
) {
    let [r0, r1, r2, r3, r4, r5, r6] = rhs.split_mut_packed();
    r0.par_uneven_chunks_mut(sizes.to_vec())
        .zip(r1.par_uneven_chunks_mut(sizes.to_vec()))
        .zip(r2.par_uneven_chunks_mut(sizes.to_vec()))
        .zip(r3.par_uneven_chunks_mut(sizes.to_vec()))
        .zip(r4.par_uneven_chunks_mut(sizes.to_vec()))
        .zip(r5.par_uneven_chunks_mut(sizes.to_vec()))
        .zip(r6.par_uneven_chunks_mut(sizes.to_vec()))
        .enumerate()
        .for_each(|(ci, ((((((c0, c1), c2), c3), c4), c5), c6))| {
            f(ci, [c0, c1, c2, c3, c4, c5, c6])
        });
}

/// Per-task flux-row buffers.
struct Scratch<R: Real> {
    lo: Vec<IfaceFlux<R>>,
    hi: Vec<IfaceFlux<R>>,
}

impl<R: Real> Scratch<R> {
    fn new(nx: usize) -> Self {
        Scratch {
            lo: vec![IfaceFlux::zero(); nx],
            hi: vec![IfaceFlux::zero(); nx],
        }
    }
}

fn process_block<R: Real, S: Storage<R>>(
    p: &FluxParams2<'_, R, S>,
    mut chunks: [&mut [S::Packed]; NS],
    off: usize,
    j_range: std::ops::Range<i32>,
    k_range: std::ops::Range<i32>,
    scratch: &mut Scratch<R>,
) {
    let shape = p.shape;
    if shape.is_active(Axis::X) {
        sweep_x(p, &mut chunks, off, j_range.clone(), k_range.clone());
    }
    if shape.is_active(Axis::Y) {
        sweep_row_buffered(
            p,
            &mut chunks,
            off,
            Axis::Y,
            j_range.clone(),
            k_range.clone(),
            scratch,
        );
    }
    if shape.is_active(Axis::Z) {
        sweep_row_buffered(p, &mut chunks, off, Axis::Z, j_range, k_range, scratch);
    }
}

/// Difference two interface fluxes into the cell at `loc`, including the
/// non-conservative volume-fraction term.
#[inline(always)]
fn apply_cell<R: Real, S: Storage<R>>(
    chunks: &mut [&mut [S::Packed]; NS],
    loc: usize,
    f_lo: &IfaceFlux<R>,
    f_hi: &IfaceFlux<R>,
    alpha_c: R,
    inv_dx: R,
) {
    for v in 0..NS {
        let acc = S::unpack(chunks[v][loc]) + (f_lo.f[v] - f_hi.f[v]) * inv_dx;
        chunks[v][loc] = S::pack(acc);
    }
    // α: −∇·(αu) is already accumulated above; add +α_c ∇·u with the same
    // interface velocities, so uniform α telescopes to exactly zero.
    let acc = S::unpack(chunks[I_A][loc]) + alpha_c * (f_hi.ustar - f_lo.ustar) * inv_dx;
    chunks[I_A][loc] = S::pack(acc);
}

fn sweep_x<R: Real, S: Storage<R>>(
    p: &FluxParams2<'_, R, S>,
    chunks: &mut [&mut [S::Packed]; NS],
    off: usize,
    j_range: std::ops::Range<i32>,
    k_range: std::ops::Range<i32>,
) {
    let shape = p.shape;
    let inv_dx = p.inv_dx[0];
    let alpha_field = p.q.field(I_A);
    for k in k_range {
        for j in j_range.clone() {
            let base = shape.idx(0, j, k);
            let mut f_prev = p.interface_flux(0, base - 1);
            for c in 0..shape.nx {
                let lin = base + c;
                let f_cur = p.interface_flux(0, lin);
                apply_cell::<R, S>(
                    chunks,
                    lin - off,
                    &f_prev,
                    &f_cur,
                    alpha_field.at_lin(lin),
                    inv_dx,
                );
                f_prev = f_cur;
            }
        }
    }
}

fn sweep_row_buffered<R: Real, S: Storage<R>>(
    p: &FluxParams2<'_, R, S>,
    chunks: &mut [&mut [S::Packed]; NS],
    off: usize,
    axis: Axis,
    j_range: std::ops::Range<i32>,
    k_range: std::ops::Range<i32>,
    scratch: &mut Scratch<R>,
) {
    let shape = p.shape;
    let d = axis.dim();
    let inv_dx = p.inv_dx[d];
    let nx = shape.nx;
    let alpha_field = p.q.field(I_A);

    match axis {
        Axis::Y => {
            for k in k_range {
                let row0 = shape.idx(0, j_range.start - 1, k);
                for i in 0..nx {
                    scratch.lo[i] = p.interface_flux(d, row0 + i);
                }
                for j in j_range.clone() {
                    let row = shape.idx(0, j, k);
                    for i in 0..nx {
                        scratch.hi[i] = p.interface_flux(d, row + i);
                    }
                    for i in 0..nx {
                        apply_cell::<R, S>(
                            chunks,
                            row + i - off,
                            &scratch.lo[i],
                            &scratch.hi[i],
                            alpha_field.at_lin(row + i),
                            inv_dx,
                        );
                    }
                    std::mem::swap(&mut scratch.lo, &mut scratch.hi);
                }
            }
        }
        Axis::Z => {
            for j in j_range {
                let row0 = shape.idx(0, j, k_range.start - 1);
                for i in 0..nx {
                    scratch.lo[i] = p.interface_flux(d, row0 + i);
                }
                for k in k_range.clone() {
                    let row = shape.idx(0, j, k);
                    for i in 0..nx {
                        scratch.hi[i] = p.interface_flux(d, row + i);
                    }
                    for i in 0..nx {
                        apply_cell::<R, S>(
                            chunks,
                            row + i - off,
                            &scratch.lo[i],
                            &scratch.hi[i],
                            alpha_field.at_lin(row + i),
                            inv_dx,
                        );
                    }
                    std::mem::swap(&mut scratch.lo, &mut scratch.hi);
                }
            }
        }
        Axis::X => unreachable!("x uses sweep_x"),
    }
}

/// Compute the IGR elliptic source `b = α_igr (tr((∇u)²) + tr²(∇u))` with
/// mixture velocities (the two-fluid sibling of
/// `igr_core::sigma::compute_igr_source`).
pub fn compute_igr_source_mix<R: Real, S: Storage<R>>(
    q: &SpeciesState<R, S>,
    domain: &Domain,
    alpha_igr: f64,
    out: &mut Field<R, S>,
) {
    let shape = q.shape();
    let al = R::from_f64(alpha_igr);
    let inv2dx: [R; 3] = [
        R::from_f64(0.5 / domain.dx(Axis::X)),
        R::from_f64(0.5 / domain.dx(Axis::Y)),
        R::from_f64(0.5 / domain.dx(Axis::Z)),
    ];
    let active: [bool; 3] = [
        shape.is_active(Axis::X),
        shape.is_active(Axis::Y),
        shape.is_active(Axis::Z),
    ];
    let sxy = shape.stride(Axis::Z);
    let gz = shape.ghosts(Axis::Z);
    out.packed_mut()
        .par_chunks_mut(sxy)
        .enumerate()
        .for_each(|(layer, chunk)| {
            let k = layer as i32 - gz as i32;
            if k < 0 || k >= shape.nz as i32 {
                return;
            }
            let vel_at = |lin: usize| -> [R; 3] {
                let inv_rho = R::ONE / (q.field(0).at_lin(lin) + q.field(1).at_lin(lin));
                [
                    q.field(I_MX).at_lin(lin) * inv_rho,
                    q.field(I_MX + 1).at_lin(lin) * inv_rho,
                    q.field(I_MX + 2).at_lin(lin) * inv_rho,
                ]
            };
            for j in 0..shape.ny as i32 {
                for i in 0..shape.nx as i32 {
                    let lin = shape.idx(i, j, k);
                    let mut g = [[R::ZERO; 3]; 3];
                    for (b, axis) in Axis::ALL.iter().enumerate() {
                        if !active[b] {
                            continue;
                        }
                        let st = shape.stride(*axis);
                        let up = vel_at(lin + st);
                        let dn = vel_at(lin - st);
                        for a in 0..3 {
                            g[a][b] = (up[a] - dn[a]) * inv2dx[b];
                        }
                    }
                    let mut tr_g2 = R::ZERO;
                    for a in 0..3 {
                        for b in 0..3 {
                            tr_g2 += g[a][b] * g[b][a];
                        }
                    }
                    let tr = g[0][0] + g[1][1] + g[2][2];
                    chunk[lin - layer * sxy] = S::pack(al * (tr_g2 + tr * tr));
                }
            }
        });
}

/// Mixture density `ρ = m₁ + m₂` over every stored cell (input to the
/// elliptic sweeps, which take a density field).
pub fn compute_mixture_density<R: Real, S: Storage<R>>(
    q: &SpeciesState<R, S>,
    out: &mut Field<R, S>,
) {
    let m1 = q.field(0);
    let m2 = q.field(1);
    out.packed_mut()
        .par_iter_mut()
        .enumerate()
        .for_each(|(lin, o)| {
            *o = S::pack(m1.at_lin(lin) + m2.at_lin(lin));
        });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bc::{fill_ghosts, SpeciesBcSet};
    use igr_prec::StoreF64;

    type St = SpeciesState<f64, StoreF64>;
    type F = Field<f64, StoreF64>;

    const EOS: MixEos = MixEos {
        gamma1: 1.4,
        gamma2: 1.67,
    };

    fn rhs_of(shape: GridShape, init: impl Fn([f64; 3]) -> MixPrim<f64>, mu: f64) -> (St, Domain) {
        let domain = Domain::unit(shape);
        let mut q = St::zeros(shape);
        q.set_prim_field(&domain, &EOS, init);
        fill_ghosts(&mut q, &domain, &SpeciesBcSet::all_periodic(), &EOS, 0.0);
        let sigma = F::zeros(shape);
        let params = FluxParams2::new(&q, &sigma, &domain, EOS, mu, 0.0, ReconOrder::Fifth, false);
        let mut rhs = St::zeros(shape);
        accumulate_fluxes2(&params, &mut rhs);
        (rhs, domain)
    }

    #[test]
    fn uniform_mixture_is_equilibrium() {
        for shape in [
            GridShape::new(16, 1, 1, 3),
            GridShape::new(8, 8, 1, 3),
            GridShape::new(6, 6, 6, 3),
        ] {
            let (rhs, _) = rhs_of(
                shape,
                |_| MixPrim::new([0.3, 0.9], [0.4, -0.2, 0.1], 1.5, 0.25),
                0.0,
            );
            for f in rhs.fields() {
                assert!(f.max_interior(|x| x.abs()) < 1e-13, "shape {shape:?}");
            }
        }
    }

    #[test]
    fn material_interface_at_rest_stays_at_rest() {
        // Varying α and partial densities; uniform p, u = 0. The momentum
        // and *total energy divided by Γ(α)* must see zero RHS: the LF
        // dissipation of E matches the dissipation of Γ(α)·p by linearity.
        let tau = std::f64::consts::TAU;
        let (rhs, _) = rhs_of(
            GridShape::new(32, 1, 1, 3),
            |p| {
                let a = 0.5 + 0.4 * (tau * p[0]).sin();
                MixPrim::new([a * 1.0, (1.0 - a) * 0.2], [0.0; 3], 1.0, a)
            },
            0.0,
        );
        // Momentum RHS must vanish identically (uniform pressure).
        for v in I_MX..I_MX + 3 {
            assert!(
                rhs.field(v).max_interior(|x| x.abs()) < 1e-12,
                "momentum component {v} must be in equilibrium"
            );
        }
    }

    #[test]
    fn uniform_alpha_receives_exactly_zero_update() {
        // Strongly varying velocity/density, uniform α: conservative α flux
        // and the non-conservative term must cancel to machine precision.
        let tau = std::f64::consts::TAU;
        let a0 = 0.37;
        let (rhs, _) = rhs_of(
            GridShape::new(48, 1, 1, 3),
            |p| {
                let rho = 1.0 + 0.4 * (tau * p[0]).sin();
                MixPrim::new(
                    [a0 * rho, (1.0 - a0) * rho],
                    [0.7 * (tau * p[0]).cos(), 0.0, 0.0],
                    1.0 + 0.2 * (tau * 2.0 * p[0]).cos(),
                    a0,
                )
            },
            0.0,
        );
        assert!(
            rhs.field(I_A).max_interior(|x| x.abs()) < 1e-12,
            "uniform α must telescope to zero: {}",
            rhs.field(I_A).max_interior(|x| x.abs())
        );
    }

    #[test]
    fn conservative_variables_telescope_on_periodic_box() {
        let tau = std::f64::consts::TAU;
        let (rhs, _) = rhs_of(
            GridShape::new(12, 10, 8, 3),
            |p| {
                let a = 0.5 + 0.3 * (tau * p[0]).sin() * (tau * p[1]).cos();
                MixPrim::new(
                    [a * (1.0 + 0.2 * (tau * p[2]).sin()), (1.0 - a) * 0.8],
                    [0.5 * (tau * p[2]).sin(), -0.2, 0.1 * (tau * p[0]).cos()],
                    1.0 + 0.2 * (tau * p[1]).sin(),
                    a,
                )
            },
            0.0,
        );
        // The first six variables are conservative: their RHS sums telescope.
        for v in 0..I_A {
            let f = rhs.field(v);
            let total = f.sum_interior(|x| x);
            let scale = f.max_interior(|x| x.abs()).max(1.0);
            assert!(
                total.abs() < 1e-10 * scale * rhs.shape().n_interior() as f64,
                "var {v}: total {total}"
            );
        }
    }

    #[test]
    fn species_advection_matches_analytic_derivative() {
        // Pure α advection at constant (rho, u, p): dα/dt = −u ∂α/∂x.
        let n = 64;
        let tau = std::f64::consts::TAU;
        let u0 = 0.7;
        let eps = 1e-3;
        let (rhs, domain) = rhs_of(
            GridShape::new(n, 1, 1, 3),
            |p| {
                let a = 0.5 + eps * (tau * p[0]).sin();
                MixPrim::new([a, 1.0 - a], [u0, 0.0, 0.0], 1.0, a)
            },
            0.0,
        );
        let mut max_err = 0.0f64;
        for i in 0..n as i32 {
            let x = domain.center(Axis::X, i);
            let expect = -u0 * eps * tau * (tau * x).cos();
            max_err = max_err.max((rhs.field(I_A).at(i, 0, 0) - expect).abs());
        }
        assert!(max_err < 1e-3 * eps, "max_err {max_err}");
    }

    #[test]
    fn rhs_is_independent_of_thread_count_bitwise() {
        let tau = std::f64::consts::TAU;
        let init = |p: [f64; 3]| {
            let a = 0.5 + 0.3 * (tau * p[0]).sin();
            MixPrim::new(
                [a, (1.0 - a) * 1.3],
                [0.4 * (tau * p[1]).cos(), 0.1, -0.3 * (tau * p[2]).sin()],
                1.0,
                a,
            )
        };
        let shape = GridShape::new(16, 12, 10, 3);
        let pool1 = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let pool4 = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let r1 = pool1.install(|| rhs_of(shape, init, 0.01).0);
        let r4 = pool4.install(|| rhs_of(shape, init, 0.01).0);
        assert_eq!(r1.max_diff(&r4), 0.0);
    }

    #[test]
    fn mixture_density_and_igr_source_agree_with_single_fluid() {
        // Embed a single-fluid state; the mixture source must equal the
        // single-fluid source field exactly.
        let shape = GridShape::new(16, 8, 1, 3);
        let domain = Domain::unit(shape);
        let tau = std::f64::consts::TAU;
        let mut q5: igr_core::State<f64, StoreF64> = igr_core::State::zeros(shape);
        q5.set_prim_field(&domain, 1.4, |p| {
            igr_core::eos::Prim::new(
                1.0 + 0.2 * (tau * p[0]).sin(),
                [(tau * p[1]).cos(), 0.3, 0.0],
                1.0,
            )
        });
        igr_core::bc::fill_ghosts(
            &mut q5,
            &domain,
            &igr_core::bc::BcSet::all_periodic(),
            1.4,
            0.0,
            &igr_core::bc::ALL_FACES,
        );
        let q7 = St::from_single_fluid(&q5, 0.4);

        let alpha_igr = 0.01;
        let mut b5 = F::zeros(shape);
        igr_core::sigma::compute_igr_source(&q5, &domain, alpha_igr, &mut b5);
        let mut b7 = F::zeros(shape);
        compute_igr_source_mix(&q7, &domain, alpha_igr, &mut b7);
        let mut rho = F::zeros(shape);
        compute_mixture_density(&q7, &mut rho);
        for lin in shape.interior_indices() {
            assert!((b5.at_lin(lin) - b7.at_lin(lin)).abs() < 1e-13);
            assert!((rho.at_lin(lin) - q5.rho.at_lin(lin)).abs() < 1e-14);
        }
    }
}
