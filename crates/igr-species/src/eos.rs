//! Mixture thermodynamics for two ideal gases under the isobaric closure.
//!
//! The stored state is `q = (α₁ρ₁, α₂ρ₂, ρu, ρv, ρw, E, α₁)`. The mixture
//! density is `ρ = α₁ρ₁ + α₂ρ₂`, and the equation of state is
//! `p = (E − ρ|u|²/2) / Γ(α₁)` with
//!
//! ```text
//! Γ(α) = α/(γ₁−1) + (1−α)/(γ₂−1).
//! ```
//!
//! `Γ` is **linear** in `α` — the property the oscillation-free interface
//! transport of the flux kernel relies on (see crate docs).

use igr_prec::Real;

/// Number of stored variables per cell.
pub const NS: usize = 7;

/// Indices into the stored tuple.
pub const I_R1: usize = 0;
/// Second partial density `α₂ρ₂`.
pub const I_R2: usize = 1;
/// x-momentum.
pub const I_MX: usize = 2;
/// y-momentum.
pub const I_MY: usize = 3;
/// z-momentum.
pub const I_MZ: usize = 4;
/// Total energy.
pub const I_E: usize = 5;
/// Volume fraction of fluid 1.
pub const I_A: usize = 6;

/// Stored state at one point.
pub type Cons2<R> = [R; NS];

/// Two-gas mixture equation of state: the specific-heat ratios of the two
/// components.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MixEos {
    /// γ of fluid 1 (the fluid whose volume fraction is stored).
    pub gamma1: f64,
    /// γ of fluid 2.
    pub gamma2: f64,
}

impl MixEos {
    /// Air (γ = 1.4) / helium (γ = 1.67): the classic shock–bubble pairing.
    pub fn air_helium() -> Self {
        MixEos {
            gamma1: 1.4,
            gamma2: 1.67,
        }
    }

    /// Both fluids identical — the model must then reduce *exactly* to the
    /// single-fluid solver (tested).
    pub fn single(gamma: f64) -> Self {
        MixEos {
            gamma1: gamma,
            gamma2: gamma,
        }
    }

    /// `Γ(α) = α/(γ₁−1) + (1−α)/(γ₂−1)`, linear in `α`.
    #[inline(always)]
    pub fn big_gamma<R: Real>(&self, alpha: R) -> R {
        let g1 = R::from_f64(1.0 / (self.gamma1 - 1.0));
        let g2 = R::from_f64(1.0 / (self.gamma2 - 1.0));
        alpha * g1 + (R::ONE - alpha) * g2
    }

    /// Effective mixture ratio of specific heats `γ_mix(α) = 1 + 1/Γ(α)`.
    #[inline(always)]
    pub fn gamma_mix<R: Real>(&self, alpha: R) -> R {
        R::ONE + R::ONE / self.big_gamma(alpha)
    }

    pub fn validate(&self) -> Result<(), String> {
        if self.gamma1 <= 1.0 || self.gamma2 <= 1.0 {
            return Err(format!(
                "both specific-heat ratios must exceed 1, got ({}, {})",
                self.gamma1, self.gamma2
            ));
        }
        Ok(())
    }
}

/// Primitive mixture state at one point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MixPrim<R: Real> {
    /// Partial densities `(α₁ρ₁, α₂ρ₂)`.
    pub ar: [R; 2],
    /// Velocity.
    pub vel: [R; 3],
    /// Thermodynamic pressure.
    pub p: R,
    /// Volume fraction of fluid 1.
    pub alpha: R,
}

impl<R: Real> MixPrim<R> {
    /// Build from partial densities, velocity, pressure, volume fraction.
    pub fn new(ar: [R; 2], vel: [R; 3], p: R, alpha: R) -> Self {
        MixPrim { ar, vel, p, alpha }
    }

    /// Pure fluid 1 at `(ρ, u, p)`.
    pub fn pure1(rho: R, vel: [R; 3], p: R) -> Self {
        MixPrim {
            ar: [rho, R::ZERO],
            vel,
            p,
            alpha: R::ONE,
        }
    }

    /// Pure fluid 2 at `(ρ, u, p)`.
    pub fn pure2(rho: R, vel: [R; 3], p: R) -> Self {
        MixPrim {
            ar: [R::ZERO, rho],
            vel,
            p,
            alpha: R::ZERO,
        }
    }

    /// Convert from f64 components (case-setup convenience).
    pub fn from_f64(ar: [f64; 2], vel: [f64; 3], p: f64, alpha: f64) -> Self {
        MixPrim {
            ar: [R::from_f64(ar[0]), R::from_f64(ar[1])],
            vel: [
                R::from_f64(vel[0]),
                R::from_f64(vel[1]),
                R::from_f64(vel[2]),
            ],
            p: R::from_f64(p),
            alpha: R::from_f64(alpha),
        }
    }

    /// Mixture density `ρ = α₁ρ₁ + α₂ρ₂`.
    #[inline(always)]
    pub fn rho(&self) -> R {
        self.ar[0] + self.ar[1]
    }

    /// Stored (quasi-conservative) variables.
    #[inline(always)]
    pub fn to_cons(&self, eos: &MixEos) -> Cons2<R> {
        let rho = self.rho();
        let ke = R::HALF
            * rho
            * (self.vel[0] * self.vel[0] + self.vel[1] * self.vel[1] + self.vel[2] * self.vel[2]);
        [
            self.ar[0],
            self.ar[1],
            rho * self.vel[0],
            rho * self.vel[1],
            rho * self.vel[2],
            eos.big_gamma(self.alpha) * self.p + ke,
            self.alpha,
        ]
    }

    /// Mixture sound speed `c = sqrt(γ_mix p / ρ)` (frozen/isobaric-closure
    /// estimate — an upper bound on the Wood speed, which is what the CFL
    /// scan and the Lax–Friedrichs dissipation need).
    #[inline(always)]
    pub fn sound_speed(&self, eos: &MixEos) -> R {
        (eos.gamma_mix(self.alpha) * self.p / self.rho()).sqrt()
    }
}

/// Primitive variables from the stored tuple.
#[inline(always)]
pub fn cons_to_prim<R: Real>(q: &Cons2<R>, eos: &MixEos) -> MixPrim<R> {
    let rho = q[I_R1] + q[I_R2];
    let inv_rho = R::ONE / rho;
    let vel = [q[I_MX] * inv_rho, q[I_MY] * inv_rho, q[I_MZ] * inv_rho];
    let ke = R::HALF * rho * (vel[0] * vel[0] + vel[1] * vel[1] + vel[2] * vel[2]);
    let p = (q[I_E] - ke) / eos.big_gamma(q[I_A]);
    MixPrim {
        ar: [q[I_R1], q[I_R2]],
        vel,
        p,
        alpha: q[I_A],
    }
}

/// Inviscid flux along axis `d` with total pressure `ptot = p + Σ`.
///
/// The last slot carries the *central* part of the volume-fraction flux,
/// `α u_n`; the kernel pairs it with the non-conservative `α ∇·u` term so
/// that a uniform `α` has an exactly zero update.
#[inline(always)]
pub fn inviscid_flux<R: Real>(d: usize, q: &Cons2<R>, pr: &MixPrim<R>, ptot: R) -> Cons2<R> {
    let un = pr.vel[d];
    let mut f = [
        q[I_R1] * un,
        q[I_R2] * un,
        q[I_MX] * un,
        q[I_MY] * un,
        q[I_MZ] * un,
        (q[I_E] + ptot) * un,
        q[I_A] * un,
    ];
    f[I_MX + d] += ptot;
    f
}

/// Largest signal speed of a state along axis `d`, with the entropic
/// pressure folded into the effective sound speed as in `igr-core`.
#[inline(always)]
pub fn max_wave_speed<R: Real>(d: usize, pr: &MixPrim<R>, sigma: R, eos: &MixEos) -> R {
    let p_eff = (pr.p + sigma).max(R::from_f64(1e-300));
    pr.vel[d].abs() + (eos.gamma_mix(pr.alpha) * p_eff / pr.rho()).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    const EOS: MixEos = MixEos {
        gamma1: 1.4,
        gamma2: 1.67,
    };

    #[test]
    fn gamma_is_linear_in_alpha() {
        // Γ(sa + (1-s)b) = s Γ(a) + (1-s) Γ(b) for the mixture rule.
        for (a, b, s) in [(0.0, 1.0, 0.3), (0.2, 0.9, 0.7), (0.5, 0.5, 0.1)] {
            let lhs: f64 = EOS.big_gamma(s * a + (1.0 - s) * b);
            let rhs = s * EOS.big_gamma(a) + (1.0 - s) * EOS.big_gamma(b);
            assert!((lhs - rhs).abs() < 1e-15);
        }
    }

    #[test]
    fn pure_fluid_limits_match_single_gas_eos() {
        assert!((EOS.gamma_mix(1.0f64) - 1.4).abs() < 1e-14);
        assert!((EOS.gamma_mix(0.0f64) - 1.67).abs() < 1e-14);
    }

    #[test]
    fn prim_cons_roundtrip() {
        let pr = MixPrim::new([0.3, 0.9], [0.4, -0.2, 1.1], 0.75, 0.35);
        let q = pr.to_cons(&EOS);
        let back = cons_to_prim(&q, &EOS);
        assert!((back.p - pr.p).abs() < 1e-14);
        assert!((back.alpha - pr.alpha).abs() < 1e-14);
        for d in 0..3 {
            assert!((back.vel[d] - pr.vel[d]).abs() < 1e-14);
        }
        for s in 0..2 {
            assert!((back.ar[s] - pr.ar[s]).abs() < 1e-14);
        }
    }

    #[test]
    fn pure_fluid_energy_matches_single_gas() {
        // With alpha = 1 the energy must be p/(gamma1-1) + ke.
        let pr = MixPrim::pure1(1.3, [2.0, 0.0, 0.0], 0.9);
        let q = pr.to_cons(&EOS);
        let expect = 0.9 / 0.4 + 0.5 * 1.3 * 4.0;
        assert!((q[I_E] - expect).abs() < 1e-14);
    }

    #[test]
    fn sound_speed_interpolates_between_pure_fluids() {
        let mk = |alpha: f64| MixPrim::new([alpha, 1.0 - alpha], [0.0; 3], 1.0, alpha);
        let c1 = mk(1.0).sound_speed(&EOS);
        let c2 = mk(0.0).sound_speed(&EOS);
        let cm = mk(0.5).sound_speed(&EOS);
        assert!((c1 - 1.4f64.sqrt()).abs() < 1e-14);
        assert!((c2 - 1.67f64.sqrt()).abs() < 1e-14);
        assert!(cm > c1.min(c2) && cm < c1.max(c2));
    }

    #[test]
    fn flux_of_stationary_mixture_is_pressure_only() {
        let pr = MixPrim::new([0.4, 0.8], [0.0; 3], 2.5, 0.6);
        let q = pr.to_cons(&EOS);
        for d in 0..3 {
            let f = inviscid_flux(d, &q, &pr, pr.p);
            assert_eq!(f[I_R1], 0.0);
            assert_eq!(f[I_R2], 0.0);
            assert_eq!(f[I_E], 0.0);
            assert_eq!(f[I_A], 0.0);
            for a in 0..3 {
                let expect = if a == d { 2.5 } else { 0.0 };
                assert_eq!(f[I_MX + a], expect);
            }
        }
    }

    #[test]
    fn entropic_pressure_enters_momentum_and_energy_only() {
        let pr = MixPrim::new([0.5, 0.5], [1.0, 0.0, 0.0], 1.0, 0.5);
        let q = pr.to_cons(&EOS);
        let sigma = 0.25;
        let f0 = inviscid_flux(0, &q, &pr, pr.p);
        let f1 = inviscid_flux(0, &q, &pr, pr.p + sigma);
        assert!((f1[I_MX] - f0[I_MX] - sigma).abs() < 1e-15);
        assert!((f1[I_E] - f0[I_E] - sigma).abs() < 1e-15);
        assert_eq!(f1[I_R1], f0[I_R1]);
        assert_eq!(f1[I_A], f0[I_A]);
    }

    #[test]
    fn wave_speed_reduces_to_single_gas_and_grows_with_sigma() {
        let pr = MixPrim::pure1(1.0, [0.5, 0.0, 0.0], 1.0);
        let s0 = max_wave_speed(0, &pr, 0.0, &EOS);
        assert!((s0 - (0.5 + 1.4f64.sqrt())).abs() < 1e-14);
        assert!(max_wave_speed(0, &pr, 0.5, &EOS) > s0);
    }

    #[test]
    fn invalid_eos_is_rejected() {
        assert!(MixEos {
            gamma1: 1.0,
            gamma2: 1.4
        }
        .validate()
        .is_err());
        assert!(MixEos {
            gamma1: 1.4,
            gamma2: 0.9
        }
        .validate()
        .is_err());
        assert!(MixEos::air_helium().validate().is_ok());
    }
}
