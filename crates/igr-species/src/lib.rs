//! Multicomponent IGR: the two-fluid five-equation model with an advected
//! volume fraction, regularized by the entropic pressure.
//!
//! The paper's Algorithm 1 already carries an advected field `α` next to
//! `(ρ, ρu, E)` — MFC is a multi-component solver — and §3 names "tracking
//! the mixture ratios of different gases and fluids" as the natural
//! extension of the demonstration. This crate implements that extension:
//! the Allaire-style five-equation model for two ideal gases,
//!
//! ```text
//! ∂(α₁ρ₁)/∂t + ∇·(α₁ρ₁ u)              = 0
//! ∂(α₂ρ₂)/∂t + ∇·(α₂ρ₂ u)              = 0
//! ∂(ρu)/∂t   + ∇·(ρu⊗u + (p+Σ)I − τ)   = 0
//! ∂E/∂t      + ∇·[(E + p + Σ)u − u·τ]  = 0
//! ∂α₁/∂t     + u·∇α₁                    = 0
//! ```
//!
//! with the isobaric-closure mixture rule `Γ(α) := 1/(γ_mix−1)
//! = α/(γ₁−1) + (1−α)/(γ₂−1)` and `p = (E − ρ|u|²/2)/Γ(α)`. The entropic
//! pressure Σ solves the same elliptic problem as in the single-fluid
//! solver (eq. 9 of the paper) with the *mixture* density.
//!
//! The volume fraction is updated quasi-conservatively,
//! `∂α/∂t = −∇·(αu) + α∇·u`, with the non-conservative product discretized
//! from the same interface velocities as the conservative flux. Because
//! `Γ` is *linear* in `α`, this discretization transports material
//! interfaces without spurious pressure oscillations (Abgrall's
//! consistency argument) — verified to machine precision by the tests.
//!
//! Numerics mirror `igr-core` exactly: 5th/3rd/1st-order linear
//! reconstruction, local Lax–Friedrichs fluxes, SSP-RK3 with two state
//! buffers, and a fused RHS kernel whose intermediates are thread-local.
//!
//! Crate layout:
//! * [`eos`] — mixture thermodynamics (`MixEos`, `MixPrim`) and fluxes;
//! * [`state`] — the seven stored fields `(α₁ρ₁, α₂ρ₂, ρu, ρv, ρw, E, α₁)`;
//! * [`bc`] — ghost fill for the seven-field state;
//! * [`rhs`] — the fused dimension-split RHS kernel;
//! * [`solver`] — configuration and the time-marching driver.

pub mod bc;
pub mod eos;
pub mod rhs;
pub mod solver;
pub mod state;

pub use bc::{SpeciesBc, SpeciesBcSet};
pub use eos::{MixEos, MixPrim, NS};
pub use solver::{species_solver, SpeciesConfig, SpeciesSolver};
pub use state::SpeciesState;

/// Degrees of freedom per grid cell in the two-fluid model: two partial
/// densities, three momenta, total energy, and the volume fraction.
pub const DOF_PER_CELL_TWO_FLUID: usize = NS;
