//! Property tests of the mixture thermodynamics and the oscillation-free
//! interface transport — randomized versions of the crate's structural
//! claims.

use igr_core::config::ReconOrder;
use igr_grid::{Domain, Field, GridShape};
use igr_prec::StoreF64;
use igr_species::eos::{cons_to_prim, I_A, I_MX};
use igr_species::rhs::{accumulate_fluxes2, FluxParams2};
use igr_species::{MixEos, MixPrim, SpeciesState};
use proptest::prelude::*;

/// Admissible random mixture primitives.
fn prim_strategy() -> impl Strategy<Value = MixPrim<f64>> {
    (
        0.0f64..1.0,   // alpha
        0.05f64..5.0,  // phasic density 1
        0.05f64..5.0,  // phasic density 2
        -3.0f64..3.0,  // u
        -3.0f64..3.0,  // v
        0.05f64..10.0, // p
    )
        .prop_map(|(a, r1, r2, u, v, p)| MixPrim::new([a * r1, (1.0 - a) * r2], [u, v, 0.0], p, a))
}

fn eos_strategy() -> impl Strategy<Value = MixEos> {
    (1.05f64..2.0, 1.05f64..2.0).prop_map(|(g1, g2)| MixEos {
        gamma1: g1,
        gamma2: g2,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// prim -> cons -> prim is the identity for admissible states and any
    /// valid gamma pair.
    #[test]
    fn prim_cons_roundtrip(pr in prim_strategy(), eos in eos_strategy()) {
        let q = pr.to_cons(&eos);
        let back = cons_to_prim(&q, &eos);
        prop_assert!((back.p - pr.p).abs() < 1e-10 * pr.p.max(1.0));
        prop_assert!((back.alpha - pr.alpha).abs() < 1e-12);
        for d in 0..3 {
            prop_assert!((back.vel[d] - pr.vel[d]).abs() < 1e-10);
        }
    }

    /// Γ(α) is linear: Γ(sa + (1-s)b) = sΓ(a) + (1-s)Γ(b). This is the
    /// property the oscillation-free transport proof rests on.
    #[test]
    fn big_gamma_is_linear(
        eos in eos_strategy(),
        a in 0.0f64..1.0,
        b in 0.0f64..1.0,
        s in 0.0f64..1.0,
    ) {
        let lhs: f64 = eos.big_gamma(s * a + (1.0 - s) * b);
        let rhs = s * eos.big_gamma(a) + (1.0 - s) * eos.big_gamma(b);
        prop_assert!((lhs - rhs).abs() < 1e-13);
    }

    /// Mixture sound speed is bracketed by the two pure-fluid speeds at the
    /// same (rho, p).
    #[test]
    fn sound_speed_is_bracketed(
        eos in eos_strategy(),
        a in 0.0f64..1.0,
        rho in 0.1f64..5.0,
        p in 0.1f64..5.0,
    ) {
        let mk = |alpha: f64| MixPrim::new([alpha * rho, (1.0 - alpha) * rho], [0.0; 3], p, alpha);
        let c = mk(a).sound_speed(&eos);
        let c1 = mk(1.0).sound_speed(&eos);
        let c2 = mk(0.0).sound_speed(&eos);
        prop_assert!(c >= c1.min(c2) - 1e-12 && c <= c1.max(c2) + 1e-12);
    }

    /// One RHS evaluation on a random material field in pressure/velocity
    /// equilibrium (u = 0, p uniform, arbitrary smooth α and phasic
    /// densities) produces zero momentum RHS: no spurious interface force.
    #[test]
    fn random_resting_interfaces_feel_no_force(
        eos in eos_strategy(),
        phases in prop::collection::vec((0.1f64..2.0, 0.1f64..2.0, 0.0f64..std::f64::consts::TAU), 3),
        p0 in 0.2f64..5.0,
    ) {
        let n = 32;
        let shape = GridShape::new(n, 1, 1, 3);
        let domain = Domain::unit(shape);
        let mut q: SpeciesState<f64, StoreF64> = SpeciesState::zeros(shape);
        let tau = std::f64::consts::TAU;
        q.set_prim_field(&domain, &eos, |pos| {
            let mut a = 0.5f64;
            for (amp, k, ph) in &phases {
                a += 0.15 * amp * (tau * k.ceil() * pos[0] + ph).sin();
            }
            let a = a.clamp(0.01, 0.99);
            MixPrim::new([a * 1.0, (1.0 - a) * 0.3], [0.0; 3], p0, a)
        });
        igr_species::bc::fill_ghosts(
            &mut q,
            &domain,
            &igr_species::SpeciesBcSet::all_periodic(),
            &eos,
            0.0,
        );
        let sigma: Field<f64, StoreF64> = Field::zeros(shape);
        let params = FluxParams2::new(&q, &sigma, &domain, eos, 0.0, 0.0, ReconOrder::Fifth, false);
        let mut rhs = SpeciesState::zeros(shape);
        accumulate_fluxes2(&params, &mut rhs);
        let m = rhs.field(I_MX).max_interior(|x| x.abs());
        prop_assert!(m < 1e-11 * p0.max(1.0), "momentum RHS {m}");
    }

    /// Uniform α on a random flow field gets an exactly-cancelling update
    /// (conservative flux vs non-conservative product).
    #[test]
    fn uniform_alpha_update_cancels(
        eos in eos_strategy(),
        a0 in 0.05f64..0.95,
        amp in 0.05f64..0.5,
    ) {
        let n = 32;
        let shape = GridShape::new(n, 1, 1, 3);
        let domain = Domain::unit(shape);
        let tau = std::f64::consts::TAU;
        let mut q: SpeciesState<f64, StoreF64> = SpeciesState::zeros(shape);
        q.set_prim_field(&domain, &eos, |pos| {
            let rho = 1.0 + 0.4 * (tau * pos[0]).sin();
            MixPrim::new(
                [a0 * rho, (1.0 - a0) * rho],
                [amp * (tau * pos[0]).cos(), 0.0, 0.0],
                1.0 + 0.2 * (tau * 2.0 * pos[0]).cos(),
                a0,
            )
        });
        igr_species::bc::fill_ghosts(
            &mut q,
            &domain,
            &igr_species::SpeciesBcSet::all_periodic(),
            &eos,
            0.0,
        );
        let sigma: Field<f64, StoreF64> = Field::zeros(shape);
        let params = FluxParams2::new(&q, &sigma, &domain, eos, 0.0, 0.0, ReconOrder::Fifth, false);
        let mut rhs = SpeciesState::zeros(shape);
        accumulate_fluxes2(&params, &mut rhs);
        let m = rhs.field(I_A).max_interior(|x| x.abs());
        prop_assert!(m < 1e-11, "uniform-α residual {m}");
    }
}
