//! Rule-engine tests over the seeded fixture files in `tests/fixtures/`.
//!
//! Each fixture deliberately contains both violations and near-misses
//! (violating tokens inside strings, comments, raw strings, `#[cfg(test)]`
//! regions) so the tests pin *both* directions: the rules fire where they
//! must, and the lexer masking keeps them quiet where they must not. The
//! workspace walker never descends into `fixtures/` directories
//! (`igr_lint::SKIP_DIRS`), so these seeded violations can never dirty the
//! live scan.

use igr_lint::{lint_sources, parse_allowlist, RuleConfig, SourceFile};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Scan one fixture under a chosen root-relative path (which is what scopes
/// the per-file rules) with no allowlist.
fn scan_as(rel_path: &str, name: &str) -> Vec<(String, usize, String)> {
    let file = SourceFile::new(rel_path.to_string(), fixture(name));
    let report = lint_sources(&[file], &RuleConfig::default(), &[]);
    report
        .findings
        .iter()
        .map(|f| (f.rule.to_string(), f.line, f.snippet.clone()))
        .collect()
}

#[test]
fn unsafe_in_strings_comments_and_raw_strings_never_fires() {
    // Outside any rule-scoped path: only the unsafe rule applies.
    let findings = scan_as("crates/igr-x/src/a.rs", "strings_and_comments.rs");
    assert_eq!(
        findings.len(),
        1,
        "exactly the un-audited unsafe block must fire, got {findings:?}"
    );
    let (rule, line, snippet) = &findings[0];
    assert_eq!(rule, "unsafe-requires-safety");
    assert!(
        snippet.contains("unsafe") && *line > 20,
        "must point at `unaudited`, got line {line}: {snippet}"
    );
}

#[test]
fn safety_comment_on_wrong_line_does_not_count() {
    let findings = scan_as("crates/igr-x/src/b.rs", "safety_wrong_line.rs");
    // `broken_link` fires (code line between SAFETY and unsafe);
    // `attribute_between` and `trailing_same_line` are covered.
    assert_eq!(findings.len(), 1, "got {findings:?}");
    assert_eq!(findings[0].0, "unsafe-requires-safety");
    assert_eq!(findings[0].1, 8, "must flag the unsafe in broken_link");
}

#[test]
fn codec_and_wall_clock_rules_are_path_scoped() {
    // Under a codec + hashed path: HashMap (x2: use + signature) and
    // Instant (x2: use + call) fire — but never from the comment or string.
    let findings = scan_as("crates/igr-campaign/src/persist.rs", "codec_and_clock.rs");
    let codec: Vec<_> = findings
        .iter()
        .filter(|f| f.0 == "no-unordered-iteration-in-codecs")
        .collect();
    let clock: Vec<_> = findings
        .iter()
        .filter(|f| f.0 == "no-wall-clock-in-hashed-paths")
        .collect();
    assert_eq!(codec.len(), 2, "HashMap in use + fn signature: {codec:?}");
    assert_eq!(clock.len(), 2, "Instant in use + now() call: {clock:?}");
    assert!(
        findings.iter().all(|f| f.1 != 8),
        "the comment line must never fire: {findings:?}"
    );

    // The same file outside the configured paths is silent.
    let elsewhere = scan_as("crates/igr-x/src/c.rs", "codec_and_clock.rs");
    assert!(elsewhere.is_empty(), "got {elsewhere:?}");
}

#[test]
fn panic_policy_skips_cfg_test_regions() {
    let findings = scan_as("crates/igr-core/src/fake.rs", "panic_test_region.rs");
    let panics: Vec<_> = findings.iter().filter(|f| f.0 == "panic-policy").collect();
    assert_eq!(
        panics.len(),
        2,
        "library unwrap + expect fire, test-region ones do not: {panics:?}"
    );
    assert!(panics.iter().all(|f| f.1 < 12), "got {panics:?}");

    // Outside the panic-free crate prefixes the rule does not apply at all.
    let elsewhere = scan_as("crates/igr-bench/src/fake.rs", "panic_test_region.rs");
    assert!(
        elsewhere.iter().all(|f| f.0 != "panic-policy"),
        "got {elsewhere:?}"
    );
}

#[test]
fn allowlist_hit_suppresses_and_miss_goes_stale() {
    let file = SourceFile::new(
        "crates/igr-core/src/fake.rs".to_string(),
        fixture("panic_test_region.rs"),
    );
    let entries = parse_allowlist(
        "panic-policy | igr-core/src/fake.rs | v.unwrap() | fixture: invariant documented\n\
         panic-policy | igr-core/src/fake.rs | no-such-snippet | fixture: never matches\n",
    )
    .unwrap();
    let report = lint_sources(&[file], &RuleConfig::default(), &entries);

    // The unwrap is allowlisted (justification attached), the expect is not.
    let allowed: Vec<_> = report.findings.iter().filter(|f| f.allowed).collect();
    assert_eq!(allowed.len(), 1, "{:?}", report.findings);
    assert_eq!(
        allowed[0].justification.as_deref(),
        Some("fixture: invariant documented")
    );
    let open: Vec<_> = report.violations().collect();
    assert_eq!(open.len(), 1, "the .expect( finding stays open");

    // The second entry matched nothing: reported stale, and staleness alone
    // makes the report dirty.
    assert_eq!(report.stale_allow.len(), 1);
    assert_eq!(report.stale_allow[0].pattern, "no-such-snippet");
    assert!(!report.is_clean());
}

#[test]
fn docs_policy_fires_on_lib_roots_only() {
    let bare = "pub fn undocumented() {}\n";
    let report = lint_sources(
        &[
            SourceFile::new("crates/igr-x/src/lib.rs".into(), bare.to_string()),
            SourceFile::new("crates/igr-x/src/other.rs".into(), bare.to_string()),
            SourceFile::new("vendor/fake/src/lib.rs".into(), bare.to_string()),
            SourceFile::new(
                "crates/igr-y/src/lib.rs".into(),
                "#![deny(missing_docs)]\n//! ok\n".to_string(),
            ),
        ],
        &RuleConfig::default(),
        &[],
    );
    let docs: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "docs-policy")
        .collect();
    assert_eq!(docs.len(), 1, "{docs:?}");
    assert_eq!(docs[0].file, "crates/igr-x/src/lib.rs");
}
