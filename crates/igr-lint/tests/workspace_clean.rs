//! The live workspace must lint clean — the same gate CI applies via
//! `igr_lint --ci`, run here as a plain test so a violating change fails
//! `cargo test` locally before it ever reaches CI.

use std::path::PathBuf;

#[test]
fn live_workspace_is_lint_clean() {
    // crates/igr-lint/ -> workspace root.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("igr-lint lives two levels below the workspace root")
        .to_path_buf();
    assert!(
        root.join("Cargo.toml").is_file() && root.join("crates").is_dir(),
        "workspace root not found at {}",
        root.display()
    );

    let report = igr_lint::lint_workspace(&root).expect("lint run must not error");
    let violations: Vec<String> = report
        .violations()
        .map(|f| format!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.snippet))
        .collect();
    let stale: Vec<String> = report
        .stale_allow
        .iter()
        .map(|e| {
            format!(
                "lint.allow:{}: {} | {} | {}",
                e.line, e.rule, e.path_suffix, e.pattern
            )
        })
        .collect();
    assert!(
        report.is_clean(),
        "workspace must be lint-clean; fix or allowlist (with a justification) in lint.allow.\n\
         violations:\n  {}\nstale allow entries:\n  {}",
        violations.join("\n  "),
        stale.join("\n  "),
    );
    assert!(
        report.files_scanned > 100,
        "suspiciously few files scanned ({}) — walker broke?",
        report.files_scanned
    );
}
