//! Fixture: a `SAFETY:` comment separated from its `unsafe` by a real code
//! line does not count — the link is broken. Attributes and blanks in
//! between are fine.

fn broken_link(p: *mut f64) {
    // SAFETY: this comment is orphaned by the statement below.
    let offset = 3usize;
    unsafe {
        *p.add(offset) = 1.0;
    }
}

fn attribute_between(p: *mut f64) {
    // SAFETY: attributes and blank lines do not break the link.
    #[allow(clippy::identity_op)]

    unsafe {
        *p.add(1 * 1) = 2.0;
    }
}

fn trailing_same_line(p: *mut f64) {
    unsafe { *p = 3.0 } // SAFETY: same-line trailing comment counts.
}
