//! Fixture: `unsafe` inside literals and comments must never fire; a bare
//! `unsafe` in code must. (This file is lint input, never compiled.)

fn literals() {
    let _a = "this string says unsafe but is not code";
    let _b = r#"raw string with unsafe and .unwrap() inside"#;
    let _c = r##"nested raw "#"# with unsafe"##;
    let _d = 'u'; // char literal, not a lifetime
    /* block comment saying unsafe
       /* nested block comment, also unsafe */
       still inside the outer comment: unsafe */
    let _e = b"byte string with unsafe";
}

fn audited(p: *mut f64) {
    // SAFETY: fixture — p is valid by construction of the test harness.
    unsafe {
        *p = 1.0;
    }
}

fn unaudited(p: *mut f64) {
    unsafe {
        *p = 2.0;
    }
}
