//! Fixture: scanned under a codec-module path, `HashMap`/`HashSet` and
//! wall-clock types must fire; the same identifiers inside comments and
//! strings must not.

use std::collections::HashMap;
use std::time::Instant;

// A comment mentioning HashMap and Instant: not code, no finding.

fn encode(m: &HashMap<u64, u64>) -> Vec<u8> {
    let _msg = "Instant and HashMap in a string are fine";
    let _t = Instant::now();
    let mut out = Vec::new();
    for (k, v) in m {
        out.extend_from_slice(&k.to_le_bytes());
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}
