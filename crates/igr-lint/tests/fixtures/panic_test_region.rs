//! Fixture: `.unwrap()`/`.expect(` in library code fire; the same calls
//! inside a `#[cfg(test)]` region do not.

pub fn library_code(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn library_expect(v: Option<u32>) -> u32 {
    v.expect("fixture message")
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
        let w: Option<u32> = Some(4);
        assert_eq!(w.expect("fine in tests"), 4);
    }
}
