#![deny(missing_docs)]
//! `igr-lint` — the workspace-wide invariant checker.
//!
//! The reproduction's load-bearing guarantees — bitwise determinism across
//! thread counts and kernel paths, hash-neutrality of wall-clock fields,
//! disjointness of the red–black raw-pointer writes — are contracts that a
//! single silent violation (an un-audited `unsafe` block, an `Instant`
//! leaking into a content-hashed struct, a `HashMap` iteration feeding a
//! codec) would corrupt quietly. This crate makes those conventions
//! *checked artifacts*, the same discipline the grind-bench gate applies to
//! performance:
//!
//! * **Layer 1 (this crate)** — a hand-rolled, zero-dependency static
//!   analysis pass: a comment/string/raw-string-aware lexer
//!   ([`lexer`]) feeds a rule engine ([`rules`]) whose findings are
//!   filtered through a checked-in, justification-mandatory allowlist
//!   ([`allow`]) and emitted as JSON lines ([`findings`]). Run it via the
//!   `igr_lint` binary in `igr-bench`, or [`lint_workspace`] directly.
//! * **Layer 2 (dynamic)** — the `cfg(igr_race_check)` shadow write-set
//!   recorder in `vendor/rayon` and `igr-core`, which turns the red–black
//!   sweep's "raw-pointer writes are disjoint" safety argument into an
//!   executed assertion. See `rayon::shadow` and `docs/ANALYSIS.md`.
//!
//! The offline build environment has no `syn`/`clippy`, so everything here
//! follows the workspace's hand-rolled-JSON tradition: plain `std`, no
//! dependencies, deterministic output.

pub mod allow;
pub mod findings;
pub mod lexer;
pub mod rules;

pub use allow::{apply_allowlist, parse_allowlist, AllowEntry};
pub use findings::Finding;
pub use rules::{RuleConfig, SourceFile};

use std::path::{Path, PathBuf};

/// Name of the checked-in allowlist file at the workspace root.
pub const ALLOW_FILE: &str = "lint.allow";

/// Directory names the workspace walker never descends into: build output,
/// VCS metadata, lint-rule *test fixtures* (which deliberately contain
/// seeded violations), and the `docs/` tree (prose, plus rendered vendored
/// documentation).
pub const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures", "docs"];

/// The outcome of a full lint run.
pub struct LintReport {
    /// Every finding, allowlisted or not, in deterministic (path, line)
    /// order.
    pub findings: Vec<Finding>,
    /// `lint.allow` entries that matched no finding — stale entries that
    /// must be pruned so the allowlist cannot rot as code is fixed.
    pub stale_allow: Vec<AllowEntry>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// Findings *not* covered by the allowlist — the ones that fail CI.
    pub fn violations(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.allowed)
    }

    /// `true` when there is nothing to fail on: no unallowlisted finding
    /// and no stale allowlist entry.
    pub fn is_clean(&self) -> bool {
        self.violations().next().is_none() && self.stale_allow.is_empty()
    }

    /// The whole report as JSON lines: one object per finding, plus one
    /// `"rule":"stale-allow"` object per unused allowlist entry. Consumers
    /// must tolerate unknown keys (append-only schema).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.to_json());
            out.push('\n');
        }
        for e in &self.stale_allow {
            let f = Finding {
                rule: "stale-allow",
                file: ALLOW_FILE.to_string(),
                line: e.line,
                snippet: format!("{} | {} | {}", e.rule, e.path_suffix, e.pattern),
                message: "allowlist entry matched no finding — the exception it covered \
                          has been fixed; delete the entry"
                    .to_string(),
                allowed: false,
                justification: None,
            };
            out.push_str(&f.to_json());
            out.push('\n');
        }
        out
    }
}

/// Recursively collect every `.rs` file under `root`, skipping
/// [`SKIP_DIRS`], in sorted (deterministic) order. Paths returned are
/// root-relative with forward slashes.
pub fn collect_rust_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| format!("strip_prefix {}: {e}", path.display()))?;
            out.push(rel.to_path_buf());
        }
    }
    Ok(())
}

/// Lint already-lexed sources against `cfg` and `entries`. The pure core of
/// [`lint_workspace`], shared by the fixture tests (which feed synthetic
/// files and allowlists without touching the real tree).
pub fn lint_sources(files: &[SourceFile], cfg: &RuleConfig, entries: &[AllowEntry]) -> LintReport {
    let mut findings = Vec::new();
    rules::run_all(files, cfg, &mut findings);
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    let stale = apply_allowlist(entries, &mut findings);
    LintReport {
        findings,
        stale_allow: stale.into_iter().map(|i| entries[i].clone()).collect(),
        files_scanned: files.len(),
    }
}

/// Lint the workspace rooted at `root` with the default [`RuleConfig`] and
/// the allowlist at `<root>/lint.allow` (absent file = empty allowlist).
///
/// Errors are I/O or allowlist-syntax problems, formatted one per line —
/// a malformed `lint.allow` (missing field, empty justification) is a hard
/// error, never a silent skip.
pub fn lint_workspace(root: &Path) -> Result<LintReport, String> {
    let allow_path = root.join(ALLOW_FILE);
    let entries = match std::fs::read_to_string(&allow_path) {
        Ok(text) => parse_allowlist(&text).map_err(|errs| errs.join("\n"))?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(format!("read {}: {e}", allow_path.display())),
    };
    let rel_paths = collect_rust_files(root)?;
    let mut files = Vec::with_capacity(rel_paths.len());
    for rel in &rel_paths {
        let abs = root.join(rel);
        let text =
            std::fs::read_to_string(&abs).map_err(|e| format!("read {}: {e}", abs.display()))?;
        let rel_str = rel
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        files.push(SourceFile::new(rel_str, text));
    }
    Ok(lint_sources(&files, &RuleConfig::default(), &entries))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_jsonl_includes_stale_entries() {
        let entries = parse_allowlist("panic-policy | nowhere.rs | * | obsolete\n").unwrap();
        let report = lint_sources(&[], &RuleConfig::default(), &entries);
        assert!(!report.is_clean(), "stale entry must dirty the report");
        let jsonl = report.to_jsonl();
        assert!(jsonl.contains("\"rule\":\"stale-allow\""), "{jsonl}");
        assert!(jsonl.contains("nowhere.rs"), "{jsonl}");
    }

    #[test]
    fn empty_sources_with_empty_allowlist_are_clean() {
        let report = lint_sources(&[], &RuleConfig::default(), &[]);
        assert!(report.is_clean());
        assert_eq!(report.to_jsonl(), "");
    }
}
