//! A comment/string/raw-string-aware Rust lexer.
//!
//! This is *not* a full Rust tokenizer: the rule engine only needs to know,
//! for every byte of a source file, whether it is **code**, a **comment**, or
//! the interior of a **string/char literal** — so that a rule looking for
//! `unsafe` never fires on `"unsafe"` inside a string literal, a `// SAFETY:`
//! requirement is satisfied only by real comments, and `.unwrap()` in a doc
//! example does not count as library code. The tricky Rust lexical features
//! are all handled:
//!
//! * line comments (`//`, `///`, `//!`) to end of line;
//! * block comments (`/* … */`), **nested** as in real Rust;
//! * string literals with escapes (`"…\"…"`), including multi-line strings;
//! * raw strings with any hash depth (`r"…"`, `r#"…"#`, `br##"…"##`);
//! * byte strings (`b"…"`) and byte/char literals (`b'{'`, `'x'`, `'\n'`);
//! * lifetimes (`'a`, `'static`) and labels, which start with `'` but are
//!   *not* char literals.

/// Classification of one contiguous span of source bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// Ordinary code: identifiers, punctuation, keywords, whitespace.
    Code,
    /// A `//` comment including its introducer, excluding the newline.
    LineComment,
    /// A `/* … */` comment (possibly nested), including delimiters.
    BlockComment,
    /// A string, raw string, byte string, char, or byte literal, including
    /// quotes, prefix (`r`, `b`, `br`) and raw-string hashes.
    Literal,
}

/// One lexed span: `src[start..end]` is uniformly of kind `kind`.
#[derive(Clone, Copy, Debug)]
pub struct Span {
    /// Span classification.
    pub kind: SpanKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

/// Lex `src` into a complete, contiguous span cover (spans never overlap,
/// and every byte belongs to exactly one span).
pub fn lex(src: &str) -> Vec<Span> {
    let b = src.as_bytes();
    let n = b.len();
    let mut spans: Vec<Span> = Vec::new();
    let mut code_start = 0usize;
    let mut i = 0usize;

    // Close the current run of code bytes (if any) before a non-code span.
    let flush_code = |spans: &mut Vec<Span>, code_start: usize, here: usize| {
        if here > code_start {
            spans.push(Span {
                kind: SpanKind::Code,
                start: code_start,
                end: here,
            });
        }
    };

    while i < n {
        let c = b[i];
        // Line comment.
        if c == b'/' && i + 1 < n && b[i + 1] == b'/' {
            flush_code(&mut spans, code_start, i);
            let start = i;
            while i < n && b[i] != b'\n' {
                i += 1;
            }
            spans.push(Span {
                kind: SpanKind::LineComment,
                start,
                end: i,
            });
            code_start = i;
            continue;
        }
        // Block comment (nested).
        if c == b'/' && i + 1 < n && b[i + 1] == b'*' {
            flush_code(&mut spans, code_start, i);
            let start = i;
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            spans.push(Span {
                kind: SpanKind::BlockComment,
                start,
                end: i,
            });
            code_start = i;
            continue;
        }
        // Raw string (r"…", r#"…"#) possibly byte-prefixed (br#"…"#).
        if c == b'r' || (c == b'b' && i + 1 < n && b[i + 1] == b'r') {
            let prefix = if c == b'b' { 2 } else { 1 };
            let mut j = i + prefix;
            let mut hashes = 0usize;
            while j < n && b[j] == b'#' {
                hashes += 1;
                j += 1;
            }
            if j < n && b[j] == b'"' && is_token_boundary(b, i) {
                flush_code(&mut spans, code_start, i);
                let start = i;
                j += 1; // past the opening quote
                'raw: while j < n {
                    if b[j] == b'"' {
                        let mut k = 0usize;
                        while k < hashes && j + 1 + k < n && b[j + 1 + k] == b'#' {
                            k += 1;
                        }
                        if k == hashes {
                            j += 1 + hashes;
                            break 'raw;
                        }
                    }
                    j += 1;
                }
                spans.push(Span {
                    kind: SpanKind::Literal,
                    start,
                    end: j,
                });
                i = j;
                code_start = i;
                continue;
            }
            // Not a raw string (`r` starting an identifier): fall through.
        }
        // Plain or byte string.
        if c == b'"' || (c == b'b' && i + 1 < n && b[i + 1] == b'"' && is_token_boundary(b, i)) {
            flush_code(&mut spans, code_start, i);
            let start = i;
            i += if c == b'b' { 2 } else { 1 };
            while i < n {
                match b[i] {
                    b'\\' => i = (i + 2).min(n),
                    b'"' => {
                        i += 1;
                        break;
                    }
                    _ => i += 1,
                }
            }
            spans.push(Span {
                kind: SpanKind::Literal,
                start,
                end: i,
            });
            code_start = i;
            continue;
        }
        // Char / byte literal vs. lifetime.
        if c == b'\'' || (c == b'b' && i + 1 < n && b[i + 1] == b'\'' && is_token_boundary(b, i)) {
            let q = if c == b'b' { i + 1 } else { i };
            if let Some(end) = char_literal_end(b, q) {
                flush_code(&mut spans, code_start, i);
                spans.push(Span {
                    kind: SpanKind::Literal,
                    start: i,
                    end,
                });
                i = end;
                code_start = i;
                continue;
            }
            // A lifetime or label: consume the quote + identifier as code.
            i = q + 1;
            while i < n && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            continue;
        }
        // Skip identifiers wholesale so a trailing `r`/`b` inside one never
        // gets mistaken for a raw/byte-string prefix.
        if c.is_ascii_alphanumeric() || c == b'_' {
            i += 1;
            while i < n && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            continue;
        }
        i += 1;
    }
    flush_code(&mut spans, code_start, n);
    spans
}

/// `true` when position `i` starts a fresh token (not the tail of an
/// identifier like `habr"x"` — impossible in valid Rust, but cheap to guard).
fn is_token_boundary(b: &[u8], i: usize) -> bool {
    i == 0 || !(b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_')
}

/// If a char/byte literal opens at the `'` at `q`, return the offset one
/// past its closing quote; `None` when `'` introduces a lifetime instead.
fn char_literal_end(b: &[u8], q: usize) -> Option<usize> {
    let n = b.len();
    if q + 1 >= n {
        return None;
    }
    if b[q + 1] == b'\\' {
        // Escaped char: scan to the next unescaped quote.
        let mut j = q + 2;
        while j < n {
            match b[j] {
                b'\\' => j += 2,
                b'\'' => return Some(j + 1),
                _ => j += 1,
            }
        }
        return None;
    }
    // `'x'`: exactly one (possibly multi-byte UTF-8) char then a quote.
    let mut j = q + 1;
    if b[j] == b'\'' {
        return None; // `''` is not a literal
    }
    // Advance one UTF-8 scalar.
    j += 1;
    while j < n && (b[j] & 0xC0) == 0x80 {
        j += 1;
    }
    if j < n && b[j] == b'\'' {
        // `'a'` is a char literal; but `'a'` where `a` continues as an
        // identifier (`'ab'` is invalid Rust anyway) — accept the simple case.
        Some(j + 1)
    } else {
        None
    }
}

/// The source with every non-code byte replaced by a space (newlines kept),
/// so byte offsets and line numbers stay aligned with the original. Rules
/// search this mask for code patterns without ever matching comments or
/// literal contents.
pub fn code_mask(src: &str, spans: &[Span]) -> String {
    let mut out = src.as_bytes().to_vec();
    for sp in spans {
        if sp.kind != SpanKind::Code {
            for byte in &mut out[sp.start..sp.end] {
                if *byte != b'\n' {
                    *byte = b' ';
                }
            }
        }
    }
    // Lexing never splits UTF-8 sequences across kinds in a way that leaves
    // broken bytes: non-ASCII can only appear inside comments/literals, which
    // are blanked wholesale, or in identifiers, which stay intact.
    String::from_utf8(out).unwrap_or_else(|e| String::from_utf8_lossy(e.as_bytes()).into_owned())
}

/// The source with everything *except* comment bytes blanked (newlines
/// kept) — the view rules search for `SAFETY:` markers.
pub fn comment_mask(src: &str, spans: &[Span]) -> String {
    let mut out = src.as_bytes().to_vec();
    for sp in spans {
        let keep = matches!(sp.kind, SpanKind::LineComment | SpanKind::BlockComment);
        if !keep {
            for byte in &mut out[sp.start..sp.end] {
                if *byte != b'\n' {
                    *byte = b' ';
                }
            }
        }
    }
    String::from_utf8(out).unwrap_or_else(|e| String::from_utf8_lossy(e.as_bytes()).into_owned())
}

/// 1-based line number of byte offset `pos` in `src`.
pub fn line_of(src: &str, pos: usize) -> usize {
    src.as_bytes()[..pos.min(src.len())]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
        + 1
}

/// Byte offsets at which every word-boundary occurrence of `word` starts in
/// `hay` (a word byte is `[A-Za-z0-9_]`).
pub fn find_word(hay: &str, word: &str) -> Vec<usize> {
    let h = hay.as_bytes();
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(rel) = hay[from..].find(word) {
        let at = from + rel;
        let before_ok = at == 0 || !is_word_byte(h[at - 1]);
        let after = at + word.len();
        let after_ok = after >= h.len() || !is_word_byte(h[after]);
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + word.len().max(1);
    }
    out
}

fn is_word_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}
