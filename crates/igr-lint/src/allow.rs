//! The checked-in allowlist: `lint.allow` at the workspace root.
//!
//! Every entry suppresses a specific class of finding *and must say why* —
//! an entry without a justification is itself an error. Format, one entry
//! per line (blank lines and `#` comments ignored):
//!
//! ```text
//! rule | path-suffix | line-pattern | justification
//! ```
//!
//! * `rule` — the rule id the entry applies to (exact match);
//! * `path-suffix` — matches findings whose root-relative path *ends with*
//!   this suffix (so entries survive a repo rename; `*` matches any file);
//! * `line-pattern` — a substring the finding's snippet must contain
//!   (`*` matches any snippet) — pinning entries to the offending
//!   expression instead of a brittle line number;
//! * `justification` — free text, mandatory, shown in findings output.
//!
//! Unused entries are reported as `stale-allow` warnings so the file cannot
//! silently rot as code is fixed.

use crate::findings::Finding;

/// One parsed allowlist entry.
#[derive(Clone, Debug)]
pub struct AllowEntry {
    /// Rule id this entry suppresses.
    pub rule: String,
    /// Root-relative path suffix (`*` = any file).
    pub path_suffix: String,
    /// Snippet substring (`*` = any snippet).
    pub pattern: String,
    /// Mandatory one-line justification.
    pub justification: String,
    /// 1-based line in `lint.allow` (for stale-entry reporting).
    pub line: usize,
}

impl AllowEntry {
    /// Does this entry cover `f`?
    pub fn matches(&self, f: &Finding) -> bool {
        self.rule == f.rule
            && (self.path_suffix == "*" || f.file.ends_with(&self.path_suffix))
            && (self.pattern == "*" || f.snippet.contains(&self.pattern))
    }
}

/// Parse the allowlist text. Returns the entries or a list of per-line
/// syntax errors (missing fields, empty justification).
pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, Vec<String>> {
    let mut entries = Vec::new();
    let mut errors = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.splitn(4, '|').map(str::trim).collect();
        if parts.len() != 4 {
            errors.push(format!(
                "lint.allow:{}: expected `rule | path-suffix | pattern | justification`, got {} field(s)",
                idx + 1,
                parts.len()
            ));
            continue;
        }
        if parts[3].is_empty() {
            errors.push(format!(
                "lint.allow:{}: entry for rule `{}` has an empty justification — every exception must say why",
                idx + 1,
                parts[0]
            ));
            continue;
        }
        if parts[0].is_empty() || parts[1].is_empty() || parts[2].is_empty() {
            errors.push(format!("lint.allow:{}: empty field", idx + 1));
            continue;
        }
        entries.push(AllowEntry {
            rule: parts[0].to_string(),
            path_suffix: parts[1].replace('\\', "/"),
            pattern: parts[2].to_string(),
            justification: parts[3].to_string(),
            line: idx + 1,
        });
    }
    if errors.is_empty() {
        Ok(entries)
    } else {
        Err(errors)
    }
}

/// Mark findings covered by an entry as `allowed` (attaching the
/// justification) and return the indices of entries that matched nothing —
/// stale entries the caller should surface.
pub fn apply_allowlist(entries: &[AllowEntry], findings: &mut [Finding]) -> Vec<usize> {
    let mut used = vec![false; entries.len()];
    for f in findings.iter_mut() {
        for (i, e) in entries.iter().enumerate() {
            if e.matches(f) {
                f.allowed = true;
                f.justification = Some(e.justification.clone());
                used[i] = true;
                break;
            }
        }
    }
    used.iter()
        .enumerate()
        .filter_map(|(i, &u)| (!u).then_some(i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, snippet: &str) -> Finding {
        Finding {
            rule,
            file: file.into(),
            line: 1,
            snippet: snippet.into(),
            message: String::new(),
            allowed: false,
            justification: None,
        }
    }

    #[test]
    fn entry_without_justification_is_an_error() {
        let err = parse_allowlist("panic-policy | a.rs | unwrap |  ").unwrap_err();
        assert_eq!(err.len(), 1);
        assert!(err[0].contains("empty justification"), "{}", err[0]);
    }

    #[test]
    fn malformed_line_is_an_error() {
        let err = parse_allowlist("panic-policy | a.rs").unwrap_err();
        assert!(err[0].contains("expected"), "{}", err[0]);
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let entries = parse_allowlist("# header\n\n  # more\n").unwrap();
        assert!(entries.is_empty());
    }

    #[test]
    fn matching_marks_allowed_and_reports_stale() {
        let entries = parse_allowlist(
            "panic-policy | src/q.rs | .expect( | invariant documented\n\
             docs-policy | * | * | never matches anything here\n",
        )
        .unwrap();
        let mut fs = vec![
            finding(
                "panic-policy",
                "crates/x/src/q.rs",
                "g.lock().expect(\"ok\")",
            ),
            finding("panic-policy", "crates/x/src/q.rs", "v.unwrap()"),
        ];
        let stale = apply_allowlist(&entries, &mut fs);
        assert!(fs[0].allowed);
        assert_eq!(fs[0].justification.as_deref(), Some("invariant documented"));
        assert!(!fs[1].allowed, "pattern must not cover unwrap()");
        assert_eq!(stale, vec![1]);
    }
}
