//! Findings: what a rule reports, and the JSON-lines serialization.
//!
//! One finding per line, hand-rolled JSON in the workspace tradition (the
//! build environment has no serde). The schema is append-only: consumers
//! must tolerate unknown keys.

/// One rule violation (or allowlisted exception) at a source location.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Rule identifier (kebab-case, e.g. `unsafe-requires-safety`).
    pub rule: &'static str,
    /// Path relative to the lint root, with forward slashes.
    pub file: String,
    /// 1-based line number (0 for whole-file findings).
    pub line: usize,
    /// The offending source line (or a synthetic description for
    /// whole-file findings), trimmed.
    pub snippet: String,
    /// Human-readable explanation of what the rule demands.
    pub message: String,
    /// `true` when a `lint.allow` entry covers this finding.
    pub allowed: bool,
    /// The allowlist entry's justification, when `allowed`.
    pub justification: Option<String>,
}

impl Finding {
    /// Encode as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(160);
        s.push_str("{\"rule\":");
        json_str(&mut s, self.rule);
        s.push_str(",\"file\":");
        json_str(&mut s, &self.file);
        s.push_str(&format!(",\"line\":{}", self.line));
        s.push_str(",\"snippet\":");
        json_str(&mut s, &self.snippet);
        s.push_str(",\"message\":");
        json_str(&mut s, &self.message);
        s.push_str(&format!(",\"allowed\":{}", self.allowed));
        if let Some(j) = &self.justification {
            s.push_str(",\"justification\":");
            json_str(&mut s, j);
        }
        s.push('}');
        s
    }
}

/// Append `v` to `out` as a JSON string literal.
pub fn json_str(out: &mut String, v: &str) {
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_quotes_and_control_chars() {
        let f = Finding {
            rule: "panic-policy",
            file: "a/b.rs".into(),
            line: 3,
            snippet: "x.expect(\"bad\\n\")".into(),
            message: "no unwrap".into(),
            allowed: true,
            justification: Some("it's fine\t really".into()),
        };
        let j = f.to_json();
        assert!(j.contains("\\\"bad\\\\n\\\")"), "{j}");
        assert!(j.contains("\\t really"), "{j}");
        assert!(j.starts_with('{') && j.ends_with('}'));
    }
}
