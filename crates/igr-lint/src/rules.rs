//! The rule engine: each rule scans lexed source views and emits findings.
//!
//! Rules are *lexical*, not semantic — the offline environment has no `syn`
//! or `clippy` — but the lexer (`crate::lexer`) makes them precise enough to
//! be load-bearing: code patterns are searched in a mask where every
//! comment and string literal has been blanked, so `"unsafe"` in a test
//! string or `.unwrap()` in a doc example can never fire, and `// SAFETY:`
//! is only honored when it is a real comment.
//!
//! The catalog (see `docs/ANALYSIS.md` for the policy rationale):
//!
//! | rule | invariant |
//! |---|---|
//! | `unsafe-requires-safety` | every `unsafe` is preceded by `// SAFETY:` |
//! | `no-wall-clock-in-hashed-paths` | no `Instant`/`SystemTime` in content-hash codec modules |
//! | `no-unordered-iteration-in-codecs` | no `HashMap`/`HashSet` in persist/protocol/checkpoint encoders |
//! | `panic-policy` | no `.unwrap()`/`.expect(` in non-test library code of core crates |
//! | `docs-policy` | public-surface crates carry `#![deny(missing_docs)]` |

use crate::findings::Finding;
use crate::lexer;

/// A lexed source file ready for rule scans.
pub struct SourceFile {
    /// Path relative to the lint root, forward slashes.
    pub rel_path: String,
    /// Raw file contents.
    pub text: String,
    /// Code view: comments and literals blanked (newlines kept).
    pub code: String,
    /// Comment view: everything but comments blanked (newlines kept).
    pub comments: String,
}

impl SourceFile {
    /// Lex `text` into the masked views rules need.
    pub fn new(rel_path: String, text: String) -> Self {
        let spans = lexer::lex(&text);
        let code = lexer::code_mask(&text, &spans);
        let comments = lexer::comment_mask(&text, &spans);
        SourceFile {
            rel_path,
            text,
            code,
            comments,
        }
    }

    /// The original source line containing byte offset `pos`, trimmed.
    fn line_at(&self, pos: usize) -> (usize, String) {
        let line = lexer::line_of(&self.text, pos);
        let snippet = self
            .text
            .lines()
            .nth(line - 1)
            .unwrap_or_default()
            .trim()
            .to_string();
        (line, snippet)
    }
}

/// Which files each scoped rule applies to. Paths are root-relative
/// suffix/prefix strings with forward slashes.
pub struct RuleConfig {
    /// `no-wall-clock-in-hashed-paths`: modules feeding the
    /// `CONTENT_HASH_VERSION` codecs — a wall-clock value reaching these
    /// files risks perturbing content hashes or wire bytes.
    pub hashed_path_files: Vec<&'static str>,
    /// `no-unordered-iteration-in-codecs`: encoder modules whose output
    /// must be byte-stable — `HashMap`/`HashSet` iteration order would make
    /// identical results serialize differently run to run.
    pub codec_files: Vec<&'static str>,
    /// `panic-policy`: crate source prefixes whose non-test library code
    /// must not `unwrap`/`expect` (campaign workers isolate panics, but a
    /// panic in core solver code destroys an in-flight rank universe).
    pub panic_free_prefixes: Vec<&'static str>,
    /// `docs-policy`: lib.rs files excluded from the missing_docs
    /// requirement (vendored stand-ins are API mirrors, not public surface).
    pub docs_exempt_prefixes: Vec<&'static str>,
}

impl Default for RuleConfig {
    fn default() -> Self {
        RuleConfig {
            hashed_path_files: vec![
                "crates/igr-campaign/src/spec.rs",
                "crates/igr-campaign/src/persist.rs",
                "crates/igr-campaign/src/protocol.rs",
            ],
            codec_files: vec![
                "crates/igr-campaign/src/persist.rs",
                "crates/igr-campaign/src/protocol.rs",
                "crates/igr-app/src/checkpoint.rs",
                "crates/igr-app/src/actions.rs",
                "crates/igr-app/src/recovery.rs",
            ],
            panic_free_prefixes: vec![
                "crates/igr-core/src/",
                "crates/igr-grid/src/",
                "crates/igr-campaign/src/",
            ],
            docs_exempt_prefixes: vec!["vendor/"],
        }
    }
}

/// Run every rule over `files`, appending findings.
pub fn run_all(files: &[SourceFile], cfg: &RuleConfig, out: &mut Vec<Finding>) {
    for f in files {
        unsafe_requires_safety(f, out);
        banned_words_in(
            f,
            cfg.hashed_path_files.iter(),
            &["Instant", "SystemTime"],
            "no-wall-clock-in-hashed-paths",
            "wall-clock types must not reach content-hash codec modules; keep telemetry \
             timing in queue/exec state (never hashed, never serialized)",
            out,
        );
        banned_words_in(
            f,
            cfg.codec_files.iter(),
            &["HashMap", "HashSet"],
            "no-unordered-iteration-in-codecs",
            "encoder modules must be byte-stable: use Vec/BTreeMap or sort before \
             iterating — HashMap order varies per process and would torture \
             byte-level store/wire diffs",
            out,
        );
        panic_policy(f, cfg, out);
        docs_policy(f, cfg, out);
    }
}

/// `unsafe-requires-safety`: every `unsafe` token in code must have a
/// comment containing `SAFETY:` either on the same line or in the comment
/// block immediately above (blank and attribute lines may intervene; any
/// other code line breaks the link).
fn unsafe_requires_safety(f: &SourceFile, out: &mut Vec<Finding>) {
    for at in lexer::find_word(&f.code, "unsafe") {
        let (line, snippet) = f.line_at(at);
        if has_safety_comment(f, line) {
            continue;
        }
        out.push(Finding {
            rule: "unsafe-requires-safety",
            file: f.rel_path.clone(),
            line,
            snippet,
            message: "`unsafe` without an adjacent `// SAFETY:` comment — state the \
                      disjointness/lifetime argument the block relies on"
                .into(),
            allowed: false,
            justification: None,
        });
    }
}

/// Is line `line` (1-based) covered by a `SAFETY:` comment?
fn has_safety_comment(f: &SourceFile, line: usize) -> bool {
    let comment_lines: Vec<&str> = f.comments.lines().collect();
    let code_lines: Vec<&str> = f.code.lines().collect();
    let idx = line - 1;
    // Same line (trailing comment).
    if comment_lines
        .get(idx)
        .is_some_and(|l| l.contains("SAFETY:"))
    {
        return true;
    }
    // Walk upward through the adjacent comment/attribute/blank block.
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let comment = comment_lines.get(i).map_or("", |l| l.trim());
        let code = code_lines.get(i).map_or("", |l| l.trim());
        if comment.contains("SAFETY:") {
            return true;
        }
        let is_attr = code.starts_with("#[") || code.starts_with("#![");
        if !code.is_empty() && !is_attr {
            return false; // hit a real code line: the comment block ended
        }
        // Pure comment (without the marker), blank, or attribute line:
        // keep walking upward.
    }
    false
}

/// Shared scanner for "these identifiers must not appear in these files".
fn banned_words_in<'a>(
    f: &SourceFile,
    files: impl Iterator<Item = &'a &'static str>,
    words: &[&str],
    rule: &'static str,
    message: &str,
    out: &mut Vec<Finding>,
) {
    let applies = files.into_iter().any(|suffix| f.rel_path.ends_with(suffix));
    if !applies {
        return;
    }
    for word in words {
        for at in lexer::find_word(&f.code, word) {
            let (line, snippet) = f.line_at(at);
            out.push(Finding {
                rule,
                file: f.rel_path.clone(),
                line,
                snippet,
                message: format!("`{word}` in `{}`: {message}", f.rel_path),
                allowed: false,
                justification: None,
            });
        }
    }
}

/// `panic-policy`: `.unwrap()` / `.expect(` outside `#[cfg(test)]` regions
/// of the configured crates' library sources.
fn panic_policy(f: &SourceFile, cfg: &RuleConfig, out: &mut Vec<Finding>) {
    let applies = cfg
        .panic_free_prefixes
        .iter()
        .any(|p| f.rel_path.starts_with(p));
    if !applies {
        return;
    }
    let tests = test_regions(&f.code);
    for pat in [".unwrap()", ".expect("] {
        let mut from = 0usize;
        while let Some(rel) = f.code[from..].find(pat) {
            let at = from + rel;
            from = at + pat.len();
            if tests.iter().any(|r| r.contains(&at)) {
                continue;
            }
            let (line, snippet) = f.line_at(at);
            out.push(Finding {
                rule: "panic-policy",
                file: f.rel_path.clone(),
                line,
                snippet,
                message: "unwrap/expect in non-test library code — return an error or \
                          justify the invariant in lint.allow"
                    .into(),
                allowed: false,
                justification: None,
            });
        }
    }
}

/// Byte ranges of `#[cfg(test)]`-gated items (the following `mod`/`fn`/item
/// body, brace-matched on the code mask so strings never confuse it).
pub fn test_regions(code: &str) -> Vec<std::ops::Range<usize>> {
    let mut out = Vec::new();
    let bytes = code.as_bytes();
    for marker in ["#[cfg(test)]", "#[cfg(all(test"] {
        let mut from = 0usize;
        while let Some(rel) = code[from..].find(marker) {
            let attr_at = from + rel;
            from = attr_at + marker.len();
            // Scan forward to the gated item's opening `{` (or a `;` for
            // body-less items), skipping any further attributes.
            let mut i = attr_at + marker.len();
            let mut open = None;
            while i < bytes.len() {
                match bytes[i] {
                    b'{' => {
                        open = Some(i);
                        break;
                    }
                    b';' => break,
                    _ => i += 1,
                }
            }
            let Some(open) = open else { continue };
            let mut depth = 0usize;
            let mut j = open;
            while j < bytes.len() {
                match bytes[j] {
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            out.push(attr_at..j + 1);
        }
    }
    out
}

/// `docs-policy`: crate roots (`src/lib.rs`) must carry
/// `#![deny(missing_docs)]` unless exempted (vendored stand-ins).
fn docs_policy(f: &SourceFile, cfg: &RuleConfig, out: &mut Vec<Finding>) {
    let is_lib_root = f.rel_path.ends_with("/src/lib.rs") || f.rel_path == "src/lib.rs";
    if !is_lib_root {
        return;
    }
    if cfg
        .docs_exempt_prefixes
        .iter()
        .any(|p| f.rel_path.starts_with(p))
    {
        return;
    }
    if f.code.contains("#![deny(missing_docs)]") {
        return;
    }
    out.push(Finding {
        rule: "docs-policy",
        file: f.rel_path.clone(),
        line: 0,
        snippet: format!("crate root {} lacks #![deny(missing_docs)]", f.rel_path),
        message: "public-surface crates must deny missing docs (igr-campaign/igr-obs \
                  set the bar); allowlist with a justification while a crate's doc \
                  pass is pending"
            .into(),
        allowed: false,
        justification: None,
    });
}
