//! The staged WENO5 + HLLC scheme, implementing [`igr_core::RhsScheme`].
//!
//! Unlike the paper's fused IGR kernel, the classic pipeline *materializes*
//! its intermediates: primitive variables, left/right reconstructed states
//! per direction, and interface fluxes per direction all live in persistent
//! arrays (this is how MFC's optimized WENO path is structured, and it is
//! what the paper's 25× memory-footprint comparison counts). The stages are
//!
//! 1. primitive conversion (5 arrays),
//! 2. per direction: componentwise WENO5 reconstruction of primitives into
//!    `qL`/`qR` (10 arrays per direction),
//! 3. per direction: HLLC fluxes into `F` (5 arrays per direction),
//! 4. per direction: flux difference accumulated into the RHS,
//! 5. (viscous runs) central velocity-gradient arrays (9 more).
//!
//! WENO's smoothness indicators are ill-conditioned below FP64 (§4.3) — the
//! scheme is precision-generic here exactly so the Fig. 5 / Table 3
//! experiments can demonstrate that.

use crate::hllc::hllc_flux_prim;
use crate::weno::weno5_pair;
use igr_core::bc::BcSet;
use igr_core::config::RkOrder;
use igr_core::eos::{Prim, NV};
use igr_core::memory::MemoryReport;
use igr_core::rhs::par_over_chunks;
use igr_core::solver::{GhostOps, RhsScheme, SchemeParams};
use igr_core::state::State;
use igr_grid::{Axis, Domain, Field, GridShape};
use igr_prec::{Real, Storage};
use rayon::prelude::*;

/// Baseline configuration (the subset of `IgrConfig` that applies: no α, no
/// elliptic solve).
#[derive(Clone, Debug)]
pub struct WenoConfig {
    pub gamma: f64,
    pub mu: f64,
    pub zeta: f64,
    pub cfl: f64,
    pub rk: RkOrder,
    pub bc: BcSet,
}

impl Default for WenoConfig {
    fn default() -> Self {
        WenoConfig {
            gamma: 1.4,
            mu: 0.0,
            zeta: 0.0,
            cfl: 0.4,
            rk: RkOrder::Rk3,
            bc: BcSet::all_periodic(),
        }
    }
}

/// Per-direction persistent intermediates.
pub(crate) struct DirBuffers<R: Real, S: Storage<R>> {
    pub(crate) axis: Axis,
    /// Left/right reconstructed *primitive* states at interfaces
    /// (stored at the index of the interface's lower cell).
    pub(crate) ql: State<R, S>,
    pub(crate) qr: State<R, S>,
    /// Interface fluxes (conservative).
    pub(crate) flux: State<R, S>,
}

/// The staged WENO5+HLLC spatial scheme.
pub struct WenoHllcScheme<R: Real, S: Storage<R>> {
    pub cfg: WenoConfig,
    pub domain: Domain,
    /// Cell-centred primitive variables (ρ, u, v, w, p in the five slots).
    prim: State<R, S>,
    dirs: Vec<DirBuffers<R, S>>,
    /// Cell-centred velocity gradients (du_a/dx_b), allocated when viscous.
    grads: Vec<Field<R, S>>,
}

impl<R: Real, S: Storage<R>> WenoHllcScheme<R, S> {
    pub fn new(cfg: WenoConfig, domain: Domain) -> Self {
        cfg.bc.validate().expect("invalid boundary conditions");
        let shape = domain.shape;
        let dirs = shape
            .active_axes()
            .map(|axis| DirBuffers {
                axis,
                ql: State::zeros(shape),
                qr: State::zeros(shape),
                flux: State::zeros(shape),
            })
            .collect();
        let grads = if cfg.mu != 0.0 || cfg.zeta != 0.0 {
            (0..9).map(|_| Field::zeros(shape)).collect()
        } else {
            Vec::new()
        };
        WenoHllcScheme {
            cfg,
            domain,
            prim: State::zeros(shape),
            dirs,
            grads,
        }
    }

    /// Stage 1: primitive conversion over every stored cell (ghosts too, so
    /// reconstruction windows are valid).
    fn compute_primitives(&mut self, q: &State<R, S>) {
        let gamma = R::from_f64(self.cfg.gamma);
        let shape = q.shape();
        let sxy = shape.stride(Axis::Z).max(shape.stride(Axis::Y));
        par_over_chunks(&mut self.prim, sxy, |ci, chunks| {
            let off = ci * sxy;
            let [c_rho, c_u, c_v, c_w, c_p] = chunks;
            for (loc, pr) in c_rho.iter_mut().enumerate() {
                let lin = off + loc;
                let q5 = q.cons_at_lin(lin);
                if q5[0] == R::ZERO {
                    continue; // untouched corner ghost
                }
                let prim = igr_core::eos::cons_to_prim(&q5, gamma);
                *pr = S::pack(prim.rho);
                c_u[loc] = S::pack(prim.vel[0]);
                c_v[loc] = S::pack(prim.vel[1]);
                c_w[loc] = S::pack(prim.vel[2]);
                c_p[loc] = S::pack(prim.p);
            }
        });
    }

    /// Stage 5 (viscous only): central velocity gradients at cell centres.
    ///
    /// Extends one layer into the ghost region along every active axis: the
    /// interface-gradient average in [`subtract_viscous`] reads the gradient
    /// of the cell on *each* side of boundary interfaces, so the first ghost
    /// cell needs a value too (its own stencil stays in the stored block
    /// because the ghost width is 3). Without this, boundary-interface
    /// viscous fluxes are silently halved.
    fn compute_gradients(&mut self) {
        if self.grads.is_empty() {
            return;
        }
        let shape = self.prim.shape();
        let inv2dx = [
            R::from_f64(0.5 / self.domain.dx(Axis::X)),
            R::from_f64(0.5 / self.domain.dx(Axis::Y)),
            R::from_f64(0.5 / self.domain.dx(Axis::Z)),
        ];
        let ext = |axis: Axis| if shape.is_active(axis) { 1i32 } else { 0 };
        let (ex, ey, ez) = (ext(Axis::X), ext(Axis::Y), ext(Axis::Z));
        let prim = &self.prim;
        let sxy = shape.stride(Axis::Z);
        let gz = shape.ghosts(Axis::Z);
        for a in 0..3 {
            for (b, axis) in Axis::ALL.iter().enumerate() {
                let g = &mut self.grads[a * 3 + b];
                if !shape.is_active(*axis) {
                    g.fill(R::ZERO);
                    continue;
                }
                let st = shape.stride(*axis);
                let vel_field = [&prim.mx, &prim.my, &prim.mz][a];
                g.packed_mut()
                    .par_chunks_mut(sxy)
                    .enumerate()
                    .for_each(|(layer, chunk)| {
                        let k = layer as i32 - gz as i32;
                        if k < -ez || k >= shape.nz as i32 + ez {
                            return;
                        }
                        for j in -ey..shape.ny as i32 + ey {
                            for i in -ex..shape.nx as i32 + ex {
                                let lin = shape.idx(i, j, k);
                                let d = (vel_field.at_lin(lin + st) - vel_field.at_lin(lin - st))
                                    * inv2dx[b];
                                chunk[lin - layer * sxy] = S::pack(d);
                            }
                        }
                    });
            }
        }
    }

    /// Stage 2: componentwise WENO5 of each primitive field along `axis`,
    /// for every interface the RHS needs (cells `-1..n-1` along the axis).
    fn reconstruct(&mut self, di: usize) {
        let shape = self.prim.shape();
        let axis = self.dirs[di].axis;
        let st = shape.stride(axis);
        let prim = &self.prim;
        let (lo, hi) = interface_cell_range(shape, axis);

        let DirBuffers { ql, qr, .. } = &mut self.dirs[di];
        let ql_fields = ql.fields_mut();
        let qr_fields = qr.fields_mut();
        for ((v, dst_l), dst_r) in (0..NV).zip(ql_fields).zip(qr_fields) {
            let src = prim.fields()[v];
            par_interface_map::<R, S>(
                shape,
                axis,
                lo,
                hi,
                dst_l.packed_mut(),
                dst_r.packed_mut(),
                |lin| {
                    let base = lin - 2 * st;
                    let w: [R; 6] = std::array::from_fn(|o| src.at_lin(base + o * st));
                    weno5_pair(&w)
                },
            );
        }
    }

    /// Stage 3: HLLC flux (+ viscous) at every interface along `axis`.
    fn compute_fluxes(&mut self, di: usize) {
        let shape = self.prim.shape();
        let axis = self.dirs[di].axis;
        let d = axis.dim();
        let gamma = R::from_f64(self.cfg.gamma);
        let st = shape.stride(axis);
        let (lo, hi) = interface_cell_range(shape, axis);
        let viscous = !self.grads.is_empty();
        let mu = R::from_f64(self.cfg.mu);
        let zeta = R::from_f64(self.cfg.zeta);

        let grads = &self.grads;
        let sxy = layer_stride(shape);
        let DirBuffers { ql, qr, flux, .. } = &mut self.dirs[di];
        let (ql, qr) = (&*ql, &*qr);
        par_over_chunks(flux, sxy, |ci, chunks| {
            let off = ci * sxy;
            let [c0, c1, c2, c3, c4] = chunks;
            let n_loc = c0.len();
            for loc in 0..n_loc {
                let lin = off + loc;
                let Some((i, j, k)) = in_interface_range(shape, axis, lin, lo, hi) else {
                    continue;
                };
                let _ = (i, j, k);
                let prl = prim_at(ql, lin);
                let prr = prim_at(qr, lin);
                if prl.rho <= R::ZERO || prr.rho <= R::ZERO || prl.p <= R::ZERO || prr.p <= R::ZERO
                {
                    // Reconstruction failed positivity: fall back to cell values.
                    continue;
                }
                let qcl = prl.to_cons(gamma);
                let qcr = prr.to_cons(gamma);
                let mut f = hllc_flux_prim(d, &qcl, &prl, &qcr, &prr, gamma);
                if viscous {
                    subtract_viscous(&mut f, d, lin, st, grads, &prl, &prr, mu, zeta);
                }
                c0[loc] = S::pack(f[0]);
                c1[loc] = S::pack(f[1]);
                c2[loc] = S::pack(f[2]);
                c3[loc] = S::pack(f[3]);
                c4[loc] = S::pack(f[4]);
            }
        });
    }

    /// Stage 4: `rhs += (F_{c-1} − F_c)/Δx` along `axis`.
    fn accumulate(&self, di: usize, rhs: &mut State<R, S>) {
        let shape = self.prim.shape();
        let axis = self.dirs[di].axis;
        let st = shape.stride(axis);
        let inv_dx = R::from_f64(1.0 / self.domain.dx(axis));
        let flux = &self.dirs[di].flux;
        let sxy = layer_stride(shape);
        par_over_chunks(rhs, sxy, |ci, chunks| {
            let off = ci * sxy;
            let [c0, c1, c2, c3, c4] = chunks;
            let n_loc = c0.len();
            for loc in 0..n_loc {
                let lin = off + loc;
                let Some((i, j, k)) = stored_coords(shape, lin) else {
                    continue;
                };
                if !shape.in_interior(i, j, k) {
                    continue;
                }
                let fm = flux.cons_at_lin(lin - st);
                let fp = flux.cons_at_lin(lin);
                let add = |c: &mut S::Packed, v: usize| {
                    *c = S::pack(S::unpack(*c) + (fm[v] - fp[v]) * inv_dx);
                };
                add(&mut c0[loc], 0);
                add(&mut c1[loc], 1);
                add(&mut c2[loc], 2);
                add(&mut c3[loc], 3);
                add(&mut c4[loc], 4);
            }
        });
    }
}

/// Primitive tuple from the 5-slot container used for primitive storage.
#[inline(always)]
pub(crate) fn prim_at<R: Real, S: Storage<R>>(p: &State<R, S>, lin: usize) -> Prim<R> {
    Prim {
        rho: p.rho.at_lin(lin),
        vel: [p.mx.at_lin(lin), p.my.at_lin(lin), p.mz.at_lin(lin)],
        p: p.en.at_lin(lin),
    }
}

#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn subtract_viscous<R: Real, S: Storage<R>>(
    f: &mut [R; NV],
    d: usize,
    lin: usize,
    st: usize,
    grads: &[Field<R, S>],
    prl: &Prim<R>,
    prr: &Prim<R>,
    mu: R,
    zeta: R,
) {
    // Interface gradient = average of the two adjacent cell-centred values.
    let g = |a: usize, b: usize| -> R {
        R::HALF * (grads[a * 3 + b].at_lin(lin) + grads[a * 3 + b].at_lin(lin + st))
    };
    let div = g(0, 0) + g(1, 1) + g(2, 2);
    let bulk = (zeta - R::TWO * mu / R::from_f64(3.0)) * div;
    for a in 0..3 {
        let mut tau = mu * (g(a, d) + g(d, a));
        if a == d {
            tau += bulk;
        }
        f[1 + a] -= tau;
        f[4] -= R::HALF * (prl.vel[a] + prr.vel[a]) * tau;
    }
}

/// Interfaces along `axis` live at cells `-1 ..= n-2` plus the one at `n-1`
/// (i.e. cells `-1..n`); we compute for cells in `[-1, n-1]`.
pub(crate) fn interface_cell_range(shape: GridShape, axis: Axis) -> (i32, i32) {
    (-1, shape.extent(axis) as i32 - 1)
}

/// Chunk stride: full xy-planes in 3-D, x-rows in 2-D/1-D.
pub(crate) fn layer_stride(shape: GridShape) -> usize {
    if shape.is_active(Axis::Z) {
        shape.stride(Axis::Z)
    } else {
        shape.stride(Axis::Y)
    }
}

/// Stored coordinates of a linear index, or None if out of the stored block.
#[inline(always)]
pub(crate) fn stored_coords(shape: GridShape, lin: usize) -> Option<(i32, i32, i32)> {
    if lin >= shape.n_total() {
        return None;
    }
    Some(shape.coords(lin))
}

/// Is `lin` a cell whose `axis` coordinate lies in `[lo, hi]` with the other
/// coordinates interior? Returns the coordinates when so.
#[inline(always)]
pub(crate) fn in_interface_range(
    shape: GridShape,
    axis: Axis,
    lin: usize,
    lo: i32,
    hi: i32,
) -> Option<(i32, i32, i32)> {
    let (i, j, k) = stored_coords(shape, lin)?;
    let (c, a_ok, b_ok) = match axis {
        Axis::X => (
            i,
            j >= 0 && (j as usize) < shape.ny,
            k >= 0 && (k as usize) < shape.nz,
        ),
        Axis::Y => (
            j,
            i >= 0 && (i as usize) < shape.nx,
            k >= 0 && (k as usize) < shape.nz,
        ),
        Axis::Z => (
            k,
            i >= 0 && (i as usize) < shape.nx,
            j >= 0 && (j as usize) < shape.ny,
        ),
    };
    if c >= lo && c <= hi && a_ok && b_ok {
        Some((i, j, k))
    } else {
        None
    }
}

/// Parallel map over interface cells along `axis`, writing one (left, right)
/// pair per interface into two packed arrays.
pub(crate) fn par_interface_map<R: Real, S: Storage<R>>(
    shape: GridShape,
    axis: Axis,
    lo: i32,
    hi: i32,
    dst_l: &mut [S::Packed],
    dst_r: &mut [S::Packed],
    f: impl Fn(usize) -> (R, R) + Sync,
) {
    let sxy = layer_stride(shape);
    dst_l
        .par_chunks_mut(sxy)
        .zip(dst_r.par_chunks_mut(sxy))
        .enumerate()
        .for_each(|(ci, (cl, cr))| {
            let off = ci * sxy;
            for loc in 0..cl.len() {
                let lin = off + loc;
                if in_interface_range(shape, axis, lin, lo, hi).is_none() {
                    continue;
                }
                let (l, r) = f(lin);
                cl[loc] = S::pack(l);
                cr[loc] = S::pack(r);
            }
        });
}

impl<R: Real, S: Storage<R>> RhsScheme<R, S> for WenoHllcScheme<R, S> {
    fn name(&self) -> &'static str {
        "weno5-hllc"
    }

    fn params(&self) -> SchemeParams {
        SchemeParams {
            gamma: self.cfg.gamma,
            mu: self.cfg.mu,
            zeta: self.cfg.zeta,
            cfl: self.cfg.cfl,
            rk: self.cfg.rk,
        }
    }

    fn compute_rhs(
        &mut self,
        q: &mut State<R, S>,
        t: f64,
        rhs: &mut State<R, S>,
        ghost: &mut dyn GhostOps<R, S>,
    ) {
        ghost.fill_state(q, t);
        self.compute_primitives(q);
        self.compute_gradients();
        rhs.zero();
        for di in 0..self.dirs.len() {
            self.reconstruct(di);
            self.compute_fluxes(di);
            self.accumulate(di, rhs);
        }
    }

    fn memory_report(&self, report: &mut MemoryReport) {
        let n = self.domain.shape.n_total();
        report.push("prim (5 arrays)", 5 * n, self.prim.storage_bytes());
        for dir in &self.dirs {
            let name = dir.axis.name();
            report.push(
                format!("qL_{name} (5 arrays)"),
                5 * n,
                dir.ql.storage_bytes(),
            );
            report.push(
                format!("qR_{name} (5 arrays)"),
                5 * n,
                dir.qr.storage_bytes(),
            );
            report.push(
                format!("flux_{name} (5 arrays)"),
                5 * n,
                dir.flux.storage_bytes(),
            );
        }
        if !self.grads.is_empty() {
            let bytes: usize = self.grads.iter().map(|g| g.storage_bytes()).sum();
            report.push("velocity gradients (9 arrays)", 9 * n, bytes);
        }
    }
}

/// Convenience constructor mirroring `igr_core::solver::igr_solver`.
pub fn weno_solver<R: Real, S: Storage<R>>(
    cfg: WenoConfig,
    domain: Domain,
    q: State<R, S>,
) -> igr_core::solver::Solver<R, S, WenoHllcScheme<R, S>, igr_core::solver::BcGhostOps> {
    let ghost = igr_core::solver::BcGhostOps::new(domain, cfg.bc.clone(), cfg.gamma);
    let scheme = WenoHllcScheme::new(cfg, domain);
    igr_core::solver::Solver::new(scheme, ghost, domain, q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use igr_prec::StoreF64;

    type St = State<f64, StoreF64>;

    fn smooth_state(shape: GridShape) -> (WenoConfig, Domain, St) {
        let domain = Domain::unit(shape);
        let cfg = WenoConfig::default();
        let mut q = St::zeros(shape);
        let tau = std::f64::consts::TAU;
        q.set_prim_field(&domain, cfg.gamma, |p| {
            Prim::new(
                1.0 + 0.2 * (tau * p[0]).sin() * (tau * p[1]).cos(),
                [0.3, -0.1, 0.2],
                1.0 + 0.1 * (tau * p[2]).sin(),
            )
        });
        (cfg, domain, q)
    }

    #[test]
    fn uniform_state_is_equilibrium() {
        let shape = GridShape::new(8, 6, 4, 3);
        let domain = Domain::unit(shape);
        let cfg = WenoConfig::default();
        let mut q = St::zeros(shape);
        q.set_prim_field(&domain, cfg.gamma, |_| {
            Prim::new(1.0, [0.4, 0.2, -0.1], 2.0)
        });
        let mut solver = weno_solver(cfg, domain, q);
        solver.fixed_dt = Some(1e-3);
        solver.step().unwrap();
        // State must remain uniform to machine precision.
        let pr = solver.q.prim_at(3, 3, 2, 1.4);
        assert!((pr.rho - 1.0).abs() < 1e-12);
        assert!((pr.p - 2.0).abs() < 1e-11);
    }

    #[test]
    fn conservation_on_periodic_box() {
        let (cfg, domain, q) = smooth_state(GridShape::new(12, 10, 8, 3));
        let before = q.totals(&domain);
        let mut solver = weno_solver(cfg, domain, q);
        for _ in 0..5 {
            solver.step().unwrap();
        }
        let after = solver.q.totals(&domain);
        for v in 0..5 {
            let scale = before[v].abs().max(1.0);
            assert!(
                (after[v] - before[v]).abs() < 1e-12 * scale,
                "var {v}: {} -> {}",
                before[v],
                after[v]
            );
        }
    }

    #[test]
    fn memory_footprint_dwarfs_igr() {
        // The point of the paper's Table: the staged baseline holds many
        // more persistent arrays than fused IGR (3-D: 15 shared + 5 prim +
        // 45 staged = 65 vs IGR's 18).
        let (cfg, domain, q) = smooth_state(GridShape::new(8, 8, 8, 3));
        let weno = weno_solver(cfg, domain, q.clone());
        let weno_mem = weno.memory_report();
        let igr = igr_core::solver::igr_solver(igr_core::IgrConfig::default(), domain, q);
        let igr_mem = igr.memory_report();
        assert_eq!(weno_mem.total_scalars(), 65 * domain.shape.n_total());
        assert_eq!(igr_mem.total_scalars(), 18 * domain.shape.n_total());
        let ratio = weno_mem.total_bytes() as f64 / igr_mem.total_bytes() as f64;
        assert!(ratio > 3.5, "scalar-count ratio {ratio}");
    }

    #[test]
    fn one_d_allocates_only_one_direction() {
        let shape = GridShape::new(32, 1, 1, 3);
        let (cfg, domain, q) = {
            let domain = Domain::unit(shape);
            let cfg = WenoConfig::default();
            let mut q = St::zeros(shape);
            q.set_prim_field(&domain, cfg.gamma, |_| Prim::new(1.0, [0.0; 3], 1.0));
            (cfg, domain, q)
        };
        let solver = weno_solver(cfg, domain, q);
        let r = solver.memory_report();
        // 15 shared + 5 prim + 15 (x only) = 35 arrays.
        assert_eq!(r.total_scalars(), 35 * shape.n_total());
    }

    #[test]
    fn smooth_advection_stays_accurate() {
        // Advect a smooth density wave one period and compare to the exact
        // translation: WENO5+HLLC should transport it with tiny error.
        let n = 64;
        let shape = GridShape::new(n, 1, 1, 3);
        let domain = Domain::unit(shape);
        let cfg = WenoConfig {
            cfl: 0.4,
            ..Default::default()
        };
        let tau = std::f64::consts::TAU;
        let mut q = St::zeros(shape);
        q.set_prim_field(&domain, cfg.gamma, |p| {
            Prim::new(1.0 + 0.05 * (tau * p[0]).sin(), [1.0, 0.0, 0.0], 1.0)
        });
        let mut solver = weno_solver(cfg, domain, q);
        solver.run_until(0.1, 10_000).unwrap();
        // Compare against exact advection of the initial profile.
        let mut err = 0.0f64;
        for i in 0..n as i32 {
            let x = domain.center(Axis::X, i);
            // The small-amplitude wave advects at ~u=1 (acoustic corrections
            // are O(amplitude)); tolerance accounts for that.
            let expect = 1.0 + 0.05 * (tau * (x - 0.1)).sin();
            err = err.max((solver.q.rho.at(i, 0, 0) - expect).abs());
        }
        assert!(err < 6e-3, "advection error {err}");
        assert!(solver.q.find_non_finite().is_none());
    }

    #[test]
    fn viscous_configuration_allocates_gradients() {
        let shape = GridShape::new(8, 8, 1, 3);
        let domain = Domain::unit(shape);
        let cfg = WenoConfig {
            mu: 0.01,
            ..Default::default()
        };
        let mut q = St::zeros(shape);
        q.set_prim_field(&domain, cfg.gamma, |_| Prim::new(1.0, [0.0; 3], 1.0));
        let solver = weno_solver(cfg, domain, q);
        let r = solver.memory_report();
        let has_grads = r.entries.iter().any(|e| e.name.contains("gradients"));
        assert!(has_grads);
    }
}
