//! The state-of-the-art baseline the paper benchmarks IGR against.
//!
//! MFC's production path — and the "Baseline" rows/curves of Table 3, Fig. 5,
//! and Fig. 8 — is 5th-order WENO reconstruction plus an HLLC approximate
//! Riemann solver. This crate implements that scheme as a [`igr_core::RhsScheme`],
//! in the *staged* (stored-intermediate) form whose memory footprint the
//! paper's fused IGR kernel beats 25-fold, plus the supporting numerics:
//!
//! * [`weno`] — WENO5-JS nonlinear reconstruction, whose smoothness
//!   indicators are the ill-conditioned operation that makes the baseline
//!   FP64-only in practice (§4.3);
//! * [`hllc`] — the HLLC approximate Riemann solver (Toro);
//! * [`scheme`] — [`scheme::WenoHllcScheme`]: staged RHS with persistent
//!   reconstruction/flux arrays and the associated memory accounting;
//! * [`exact_riemann`] — Toro's exact Riemann solver (shock-tube ground
//!   truth for validation and Fig. 2's "Exact" curves);
//! * [`lad`] — localized artificial diffusivity (Cook–Cabot-style), the
//!   viscous regularization IGR is contrasted with in Fig. 2.

pub mod exact_riemann;
pub mod hllc;
pub mod lad;
pub mod scheme;
pub mod staged_igr;
pub mod weno;

pub use exact_riemann::ExactRiemann;
pub use scheme::{WenoConfig, WenoHllcScheme};
