//! HLLC approximate Riemann solver (Harten–Lax–van Leer–Contact; Toro 2019),
//! the flux used by the paper's baseline ("MFC's optimized implementation of
//! WENO nonlinear reconstructions and HLLC approximate Riemann solves").

use igr_core::eos::{cons_to_prim, inviscid_flux, Cons, Prim, NV};
use igr_prec::Real;

/// HLLC numerical flux along axis `d` for left/right conservative states.
///
/// Wave-speed estimates follow Davis/Einfeldt:
/// `S_L = min(u_L − c_L, u_R − c_R)`, `S_R = max(u_L + c_L, u_R + c_R)`,
/// with the contact speed `S_*` from Toro's pressure-based formula.
#[inline(always)]
pub fn hllc_flux<R: Real>(d: usize, ql: &Cons<R>, qr: &Cons<R>, gamma: R) -> Cons<R> {
    let pl = cons_to_prim(ql, gamma);
    let pr = cons_to_prim(qr, gamma);
    hllc_flux_prim(d, ql, &pl, qr, &pr, gamma)
}

/// HLLC flux with precomputed primitives.
#[inline(always)]
pub fn hllc_flux_prim<R: Real>(
    d: usize,
    ql: &Cons<R>,
    pl: &Prim<R>,
    qr: &Cons<R>,
    pr: &Prim<R>,
    gamma: R,
) -> Cons<R> {
    let cl = pl.sound_speed(gamma);
    let cr = pr.sound_speed(gamma);
    let (ul, ur) = (pl.vel[d], pr.vel[d]);

    let sl = (ul - cl).min(ur - cr);
    let sr = (ul + cl).max(ur + cr);

    if sl >= R::ZERO {
        return inviscid_flux(d, ql, pl, pl.p);
    }
    if sr <= R::ZERO {
        return inviscid_flux(d, qr, pr, pr.p);
    }

    // Contact wave speed (Toro eq. 10.37).
    let num = pr.p - pl.p + pl.rho * ul * (sl - ul) - pr.rho * ur * (sr - ur);
    let den = pl.rho * (sl - ul) - pr.rho * (sr - ur);
    let s_star = num / den;

    if s_star >= R::ZERO {
        let f = inviscid_flux(d, ql, pl, pl.p);
        let q_star = star_state(d, ql, pl, sl, s_star);
        let mut out = [R::ZERO; NV];
        for v in 0..NV {
            out[v] = f[v] + sl * (q_star[v] - ql[v]);
        }
        out
    } else {
        let f = inviscid_flux(d, qr, pr, pr.p);
        let q_star = star_state(d, qr, pr, sr, s_star);
        let mut out = [R::ZERO; NV];
        for v in 0..NV {
            out[v] = f[v] + sr * (q_star[v] - qr[v]);
        }
        out
    }
}

/// The star-region state behind wave `s_k` (Toro eq. 10.39).
#[inline(always)]
fn star_state<R: Real>(d: usize, q: &Cons<R>, p: &Prim<R>, s_k: R, s_star: R) -> Cons<R> {
    let u_k = p.vel[d];
    let factor = p.rho * (s_k - u_k) / (s_k - s_star);
    let mut out = [R::ZERO; NV];
    out[0] = factor;
    for a in 0..3 {
        out[1 + a] = factor * if a == d { s_star } else { p.vel[a] };
    }
    let e_term = q[4] / p.rho + (s_star - u_k) * (s_star + p.p / (p.rho * (s_k - u_k)));
    out[4] = factor * e_term;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use igr_core::eos::Prim;

    const G: f64 = 1.4;

    fn cons(rho: f64, vel: [f64; 3], p: f64) -> (Cons<f64>, Prim<f64>) {
        let pr = Prim::new(rho, vel, p);
        (pr.to_cons(G), pr)
    }

    #[test]
    fn identical_states_give_exact_flux() {
        let (q, pr) = cons(1.3, [0.4, -0.2, 0.1], 0.9);
        for d in 0..3 {
            let f = hllc_flux(d, &q, &q, G);
            let exact = inviscid_flux(d, &q, &pr, pr.p);
            for v in 0..5 {
                assert!((f[v] - exact[v]).abs() < 1e-13, "d={d} v={v}");
            }
        }
    }

    #[test]
    fn consistency_flux_is_upwind_for_supersonic_flow() {
        // Mach 3 to the right: the flux must be the left state's physical flux.
        let (ql, prl) = cons(1.0, [3.0 * G.sqrt(), 0.0, 0.0], 1.0);
        let (qr, _) = cons(0.5, [3.0 * G.sqrt(), 0.0, 0.0], 0.3);
        let f = hllc_flux(0, &ql, &qr, G);
        let exact = inviscid_flux(0, &ql, &prl, prl.p);
        for v in 0..5 {
            assert!(
                (f[v] - exact[v]).abs() < 1e-12,
                "v={v}: {} vs {}",
                f[v],
                exact[v]
            );
        }
    }

    #[test]
    fn symmetry_under_mirror_reflection() {
        // Mirroring both states about the interface flips the sign of mass
        // and energy flux and preserves the normal-momentum flux.
        let (ql, _) = cons(1.0, [0.3, 0.1, 0.0], 1.0);
        let (qr, _) = cons(0.6, [-0.2, -0.4, 0.0], 0.5);
        let mirror = |q: &Cons<f64>| [q[0], -q[1], -q[2], -q[3], q[4]];
        let f = hllc_flux(0, &ql, &qr, G);
        let fm = hllc_flux(0, &mirror(&qr), &mirror(&ql), G);
        assert!((f[0] + fm[0]).abs() < 1e-12, "mass flux antisymmetric");
        assert!(
            (f[1] - fm[1]).abs() < 1e-12,
            "normal momentum flux symmetric"
        );
        assert!((f[4] + fm[4]).abs() < 1e-12, "energy flux antisymmetric");
    }

    #[test]
    fn contact_preservation() {
        // A stationary contact (equal p and u = 0, different rho) must
        // produce zero mass/energy flux and pure pressure momentum flux —
        // the property HLLC adds over HLL.
        let (ql, _) = cons(1.0, [0.0; 3], 0.7);
        let (qr, _) = cons(0.125, [0.0; 3], 0.7);
        let f = hllc_flux(0, &ql, &qr, G);
        assert!(f[0].abs() < 1e-14, "mass flux {}", f[0]);
        assert!((f[1] - 0.7).abs() < 1e-14, "momentum flux {}", f[1]);
        assert!(f[4].abs() < 1e-14, "energy flux {}", f[4]);
    }

    #[test]
    fn moving_contact_advects_exactly() {
        // Contact moving at u > 0: upwind side is left; flux must be the
        // left state's physical flux.
        let u = 0.3;
        let (ql, prl) = cons(1.0, [u, 0.0, 0.0], 1.0);
        let (qr, _) = cons(0.25, [u, 0.0, 0.0], 1.0);
        let f = hllc_flux(0, &ql, &qr, G);
        let exact = inviscid_flux(0, &ql, &prl, prl.p);
        for v in 0..5 {
            assert!((f[v] - exact[v]).abs() < 1e-12, "v={v}");
        }
    }

    #[test]
    fn tangential_momentum_upwinds_with_the_contact() {
        // s* > 0 => tangential velocity comes from the left state.
        let (ql, _) = cons(1.0, [0.5, 0.9, 0.0], 1.0);
        let (qr, _) = cons(1.0, [0.5, -0.7, 0.0], 1.0);
        let f = hllc_flux(0, &ql, &qr, G);
        // Tangential momentum flux = (mass flux) * v_left.
        assert!((f[2] - f[0] * 0.9).abs() < 1e-12);
    }

    #[test]
    fn sod_interface_flux_is_sane() {
        let (ql, _) = cons(1.0, [0.0; 3], 1.0);
        let (qr, _) = cons(0.125, [0.0; 3], 0.1);
        let f = hllc_flux(0, &ql, &qr, G);
        // Flow accelerates rightward through the interface.
        assert!(f[0] > 0.0, "mass flows right: {}", f[0]);
        assert!(
            f[1] > 0.0 && f[1] < 1.0,
            "momentum flux between the two pressures"
        );
        assert!(f.iter().all(|x| x.is_finite()));
    }
}
