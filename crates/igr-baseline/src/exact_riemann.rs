//! Exact Riemann solver for the 1-D Euler equations (Toro, ch. 4).
//!
//! Ground truth for shock-tube validation of both the IGR solver and the
//! WENO+HLLC baseline, and the "Exact" curve of the Fig. 2 reproduction.

/// A 1-D primitive state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PrimitiveState {
    pub rho: f64,
    pub u: f64,
    pub p: f64,
}

impl PrimitiveState {
    pub fn new(rho: f64, u: f64, p: f64) -> Self {
        assert!(rho > 0.0 && p > 0.0, "exact solver needs positive rho, p");
        PrimitiveState { rho, u, p }
    }

    fn sound_speed(&self, gamma: f64) -> f64 {
        (gamma * self.p / self.rho).sqrt()
    }
}

/// The solved wave structure of one Riemann problem.
#[derive(Clone, Copy, Debug)]
pub struct ExactRiemann {
    pub gamma: f64,
    pub left: PrimitiveState,
    pub right: PrimitiveState,
    /// Star-region pressure.
    pub p_star: f64,
    /// Star-region (contact) velocity.
    pub u_star: f64,
}

impl ExactRiemann {
    /// Solve the pressure equation by Newton iteration with a positivity
    /// guard (Toro's two-rarefaction initial guess).
    pub fn solve(left: PrimitiveState, right: PrimitiveState, gamma: f64) -> Self {
        let (cl, cr) = (left.sound_speed(gamma), right.sound_speed(gamma));
        // Vacuum check: pressure positivity condition.
        let du = right.u - left.u;
        assert!(
            2.0 * (cl + cr) / (gamma - 1.0) > du,
            "initial states generate vacuum; exact solver does not cover it"
        );

        // Two-rarefaction guess.
        let z = (gamma - 1.0) / (2.0 * gamma);
        let mut p = ((cl + cr - 0.5 * (gamma - 1.0) * du)
            / (cl / left.p.powf(z) + cr / right.p.powf(z)))
        .powf(1.0 / z);
        p = p.max(1e-12);

        for _ in 0..100 {
            let (fl, dfl) = pressure_function(p, &left, gamma);
            let (fr, dfr) = pressure_function(p, &right, gamma);
            let f = fl + fr + du;
            let step = f / (dfl + dfr);
            let p_new = (p - step).max(1e-14);
            if (p_new - p).abs() / (0.5 * (p_new + p)) < 1e-14 {
                p = p_new;
                break;
            }
            p = p_new;
        }

        let (fl, _) = pressure_function(p, &left, gamma);
        let (fr, _) = pressure_function(p, &right, gamma);
        let u_star = 0.5 * (left.u + right.u) + 0.5 * (fr - fl);
        ExactRiemann {
            gamma,
            left,
            right,
            p_star: p,
            u_star,
        }
    }

    /// Sample the self-similar solution at `xi = x / t`.
    pub fn sample(&self, xi: f64) -> PrimitiveState {
        let g = self.gamma;
        if xi <= self.u_star {
            sample_side(&self.left, self.p_star, self.u_star, g, xi, -1.0)
        } else {
            sample_side(&self.right, self.p_star, self.u_star, g, xi, 1.0)
        }
    }

    /// Sample onto `n` cell centers of the domain `[x0, x1]` with the
    /// initial discontinuity at `x_disc`, at time `t`.
    pub fn sample_profile(
        &self,
        n: usize,
        x0: f64,
        x1: f64,
        x_disc: f64,
        t: f64,
    ) -> Vec<PrimitiveState> {
        assert!(t > 0.0, "profile sampling needs t > 0");
        let dx = (x1 - x0) / n as f64;
        (0..n)
            .map(|i| {
                let x = x0 + (i as f64 + 0.5) * dx;
                self.sample((x - x_disc) / t)
            })
            .collect()
    }
}

/// Toro's `f_K(p)` and its derivative: shock branch for `p > p_K`,
/// rarefaction branch otherwise.
fn pressure_function(p: f64, s: &PrimitiveState, gamma: f64) -> (f64, f64) {
    let c = s.sound_speed(gamma);
    if p > s.p {
        // Shock.
        let a = 2.0 / ((gamma + 1.0) * s.rho);
        let b = (gamma - 1.0) / (gamma + 1.0) * s.p;
        let sq = (a / (p + b)).sqrt();
        let f = (p - s.p) * sq;
        let df = sq * (1.0 - 0.5 * (p - s.p) / (p + b));
        (f, df)
    } else {
        // Rarefaction.
        let z = (gamma - 1.0) / (2.0 * gamma);
        let f = 2.0 * c / (gamma - 1.0) * ((p / s.p).powf(z) - 1.0);
        let df = 1.0 / (s.rho * c) * (p / s.p).powf(-(gamma + 1.0) / (2.0 * gamma));
        (f, df)
    }
}

/// Sample one side of the contact. `sign = -1` for left, `+1` for right.
fn sample_side(
    s: &PrimitiveState,
    p_star: f64,
    u_star: f64,
    gamma: f64,
    xi: f64,
    sign: f64,
) -> PrimitiveState {
    let c = s.sound_speed(gamma);
    let gm1 = gamma - 1.0;
    let gp1 = gamma + 1.0;

    if p_star > s.p {
        // Shock on this side.
        let ratio = p_star / s.p;
        let shock_speed =
            s.u + sign * c * (gp1 / (2.0 * gamma) * ratio + gm1 / (2.0 * gamma)).sqrt();
        let outside = if sign < 0.0 {
            xi < shock_speed
        } else {
            xi > shock_speed
        };
        if outside {
            *s
        } else {
            let rho_star = s.rho * ((ratio + gm1 / gp1) / (gm1 / gp1 * ratio + 1.0));
            PrimitiveState {
                rho: rho_star,
                u: u_star,
                p: p_star,
            }
        }
    } else {
        // Rarefaction fan on this side.
        let c_star = c * (p_star / s.p).powf(gm1 / (2.0 * gamma));
        let head = s.u + sign * c;
        let tail = u_star + sign * c_star;
        let before_head = if sign < 0.0 { xi < head } else { xi > head };
        let after_tail = if sign < 0.0 { xi > tail } else { xi < tail };
        if before_head {
            *s
        } else if after_tail {
            let rho_star = s.rho * (p_star / s.p).powf(1.0 / gamma);
            PrimitiveState {
                rho: rho_star,
                u: u_star,
                p: p_star,
            }
        } else {
            // Inside the fan.
            let u = 2.0 / gp1 * (-sign * c + gm1 / 2.0 * s.u + xi);
            let c_local = 2.0 / gp1 * (c - sign * gm1 / 2.0 * (s.u - xi));
            let rho = s.rho * (c_local / c).powf(2.0 / gm1);
            let p = s.p * (c_local / c).powf(2.0 * gamma / gm1);
            PrimitiveState { rho, u, p }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const G: f64 = 1.4;

    fn sod() -> ExactRiemann {
        ExactRiemann::solve(
            PrimitiveState::new(1.0, 0.0, 1.0),
            PrimitiveState::new(0.125, 0.0, 0.1),
            G,
        )
    }

    #[test]
    fn sod_star_values_match_literature() {
        // Toro's table 4.2: p* = 0.30313, u* = 0.92745.
        let r = sod();
        assert!((r.p_star - 0.30313).abs() < 1e-4, "p* = {}", r.p_star);
        assert!((r.u_star - 0.92745).abs() < 1e-4, "u* = {}", r.u_star);
    }

    #[test]
    fn sod_density_plateaus() {
        let r = sod();
        // Left star density (through rarefaction): 0.42632;
        // right star density (through shock): 0.26557.
        let left_star = r.sample(r.u_star - 1e-6);
        let right_star = r.sample(r.u_star + 1e-6);
        assert!((left_star.rho - 0.42632).abs() < 1e-4, "{}", left_star.rho);
        assert!(
            (right_star.rho - 0.26557).abs() < 1e-4,
            "{}",
            right_star.rho
        );
    }

    #[test]
    fn symmetric_expansion_has_zero_contact_velocity() {
        let r = ExactRiemann::solve(
            PrimitiveState::new(1.0, -1.0, 0.4),
            PrimitiveState::new(1.0, 1.0, 0.4),
            G,
        );
        assert!(r.u_star.abs() < 1e-12);
        assert!(r.p_star < 0.4, "two rarefactions drop the pressure");
    }

    #[test]
    fn symmetric_compression_produces_two_shocks() {
        let r = ExactRiemann::solve(
            PrimitiveState::new(1.0, 1.0, 1.0),
            PrimitiveState::new(1.0, -1.0, 1.0),
            G,
        );
        assert!(r.u_star.abs() < 1e-12);
        assert!(r.p_star > 1.0, "compression raises the pressure");
        // Post-shock density bounded by the strong-shock limit (gp1/gm1 = 6).
        let mid = r.sample(0.0);
        assert!(mid.rho > 1.0 && mid.rho < 6.0);
    }

    #[test]
    fn far_field_recovers_initial_states() {
        let r = sod();
        let l = r.sample(-10.0);
        let rr = r.sample(10.0);
        assert_eq!(l, r.left);
        assert_eq!(rr, r.right);
    }

    #[test]
    fn rankine_hugoniot_holds_across_the_right_shock() {
        let r = sod();
        // Right shock speed from the sampled jump itself.
        let ratio = r.p_star / r.right.p;
        let c = (G * r.right.p / r.right.rho).sqrt();
        let s_shock =
            r.right.u + c * ((G + 1.0) / (2.0 * G) * ratio + (G - 1.0) / (2.0 * G)).sqrt();
        let pre = r.right;
        let post = r.sample(s_shock - 1e-9);
        // Mass: rho1(u1 - s) = rho2(u2 - s).
        let m1 = pre.rho * (pre.u - s_shock);
        let m2 = post.rho * (post.u - s_shock);
        assert!((m1 - m2).abs() < 1e-6, "mass jump {m1} vs {m2}");
        // Momentum: m*u + p continuous.
        let mo1 = m1 * pre.u + pre.p;
        let mo2 = m2 * post.u + post.p;
        assert!((mo1 - mo2).abs() < 1e-6, "momentum jump {mo1} vs {mo2}");
    }

    #[test]
    fn riemann_invariant_constant_through_left_rarefaction() {
        let r = sod();
        // u + 2c/(gamma-1) is constant across a left rarefaction.
        let inv = |s: &PrimitiveState| s.u + 2.0 * (G * s.p / s.rho).sqrt() / (G - 1.0);
        let head = r.sample(-1.18); // just inside the fan
        let tail = r.sample(-0.1);
        assert!((inv(&head) - inv(&r.left)).abs() < 1e-9);
        assert!((inv(&tail) - inv(&r.left)).abs() < 1e-9);
    }

    #[test]
    fn profile_sampling_matches_pointwise_sampling() {
        let r = sod();
        let prof = r.sample_profile(100, 0.0, 1.0, 0.5, 0.2);
        assert_eq!(prof.len(), 100);
        let x = 0.0 + 37.5 * 0.01 + 0.005; // center of cell 37... direct check:
        let xi = (x - 0.5) / 0.2;
        let _ = xi;
        let direct = r.sample(((0.0 + (37.0 + 0.5) * 0.01) - 0.5) / 0.2);
        assert_eq!(prof[37], direct);
    }

    #[test]
    #[should_panic(expected = "vacuum")]
    fn vacuum_generating_data_is_rejected() {
        ExactRiemann::solve(
            PrimitiveState::new(1.0, -10.0, 0.01),
            PrimitiveState::new(1.0, 10.0, 0.01),
            G,
        );
    }
}
