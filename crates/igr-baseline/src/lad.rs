//! Localized artificial diffusivity (LAD) in one dimension — the viscous
//! regularization IGR is contrasted with in the paper's Fig. 2 (citing Cook &
//! Cabot 2004).
//!
//! LAD adds an *artificial bulk viscosity* proportional to a high-order
//! derivative of the dilatation, so dissipation concentrates at shocks:
//!
//! ```text
//! β* = C_β ρ Δx⁴ |∂²θ/∂x²|,    θ = ∂u/∂x,
//! ```
//!
//! smoothed with a truncated-Gaussian filter. The shock is spread over a
//! user-defined width (grows with `C_β`), but the resulting profile is only
//! C⁰-smooth — the sensor switches on and off — which is exactly the failure
//! mode Fig. 2(a,i) illustrates; and raising `C_β` to widen the shock also
//! damps genuine oscillatory features, Fig. 2(b,i).

/// 1-D Euler solver with 5th-order linear reconstruction, Lax–Friedrichs
/// fluxes, and LAD bulk viscosity, on a periodic domain.
#[derive(Clone, Debug)]
pub struct Lad1d {
    pub n: usize,
    pub length: f64,
    pub gamma: f64,
    /// Artificial-viscosity strength (`C_β`); 0 disables LAD.
    pub c_beta: f64,
    pub rho: Vec<f64>,
    pub m: Vec<f64>,
    pub en: Vec<f64>,
    t: f64,
}

impl Lad1d {
    /// Initialize from primitive profiles.
    pub fn new(
        n: usize,
        length: f64,
        gamma: f64,
        c_beta: f64,
        init: impl Fn(f64) -> (f64, f64, f64), // x -> (rho, u, p)
    ) -> Self {
        let dx = length / n as f64;
        let mut s = Lad1d {
            n,
            length,
            gamma,
            c_beta,
            rho: vec![0.0; n],
            m: vec![0.0; n],
            en: vec![0.0; n],
            t: 0.0,
        };
        for i in 0..n {
            let (r, u, p) = init((i as f64 + 0.5) * dx);
            s.rho[i] = r;
            s.m[i] = r * u;
            s.en[i] = p / (gamma - 1.0) + 0.5 * r * u * u;
        }
        s
    }

    pub fn dx(&self) -> f64 {
        self.length / self.n as f64
    }

    pub fn t(&self) -> f64 {
        self.t
    }

    #[inline]
    fn wrap(&self, i: isize) -> usize {
        i.rem_euclid(self.n as isize) as usize
    }

    pub fn u(&self, i: usize) -> f64 {
        self.m[i] / self.rho[i]
    }

    pub fn p(&self, i: usize) -> f64 {
        let u = self.u(i);
        (self.gamma - 1.0) * (self.en[i] - 0.5 * self.rho[i] * u * u)
    }

    /// Artificial bulk viscosity field: sensor + two smoothing passes.
    pub fn beta_art(&self, rho: &[f64], m: &[f64]) -> Vec<f64> {
        let n = self.n;
        let dx = self.dx();
        if self.c_beta == 0.0 {
            return vec![0.0; n];
        }
        let u: Vec<f64> = (0..n).map(|i| m[i] / rho[i]).collect();
        // theta = du/dx (central).
        let theta: Vec<f64> = (0..n)
            .map(|i| (u[self.wrap(i as isize + 1)] - u[self.wrap(i as isize - 1)]) / (2.0 * dx))
            .collect();
        // |d2 theta/dx2|.
        let sensor: Vec<f64> = (0..n)
            .map(|i| {
                let d2 = (theta[self.wrap(i as isize + 1)] - 2.0 * theta[i]
                    + theta[self.wrap(i as isize - 1)])
                    / (dx * dx);
                self.c_beta * rho[i] * dx.powi(4) * d2.abs()
            })
            .collect();
        // Two passes of a [1, 2, 1]/4 truncated-Gaussian filter.
        let filter = |v: &[f64]| -> Vec<f64> {
            (0..n)
                .map(|i| {
                    0.25 * v[self.wrap(i as isize - 1)]
                        + 0.5 * v[i]
                        + 0.25 * v[self.wrap(i as isize + 1)]
                })
                .collect()
        };
        filter(&filter(&sensor))
    }

    /// CFL-limited time step (acoustic + artificial-viscous).
    pub fn stable_dt(&self, cfl: f64) -> f64 {
        let dx = self.dx();
        let beta = self.beta_art(&self.rho.clone(), &self.m.clone());
        let mut smax = 1e-12f64;
        for i in 0..self.n {
            let c = (self.gamma * self.p(i) / self.rho[i]).sqrt();
            let acoustic = (self.u(i).abs() + c) / dx;
            let viscous = 2.0 * beta[i] / (self.rho[i] * dx * dx);
            smax = smax.max(acoustic + viscous);
        }
        cfl / smax
    }

    /// One SSP-RK3 step.
    pub fn step(&mut self, dt: f64) {
        let (r0, m0, e0) = (self.rho.clone(), self.m.clone(), self.en.clone());
        let rhs1 = self.rhs(&r0, &m0, &e0);
        let s1 = apply(&[&r0, &m0, &e0], &rhs1, dt);
        let rhs2 = self.rhs(&s1[0], &s1[1], &s1[2]);
        let s2raw = apply(&[&s1[0], &s1[1], &s1[2]], &rhs2, dt);
        let s2: Vec<Vec<f64>> = (0..3)
            .map(|v| {
                (0..self.n)
                    .map(|i| 0.75 * [&r0, &m0, &e0][v][i] + 0.25 * s2raw[v][i])
                    .collect()
            })
            .collect();
        let rhs3 = self.rhs(&s2[0], &s2[1], &s2[2]);
        let s3raw = apply(&[&s2[0], &s2[1], &s2[2]], &rhs3, dt);
        for i in 0..self.n {
            self.rho[i] = (r0[i] + 2.0 * s3raw[0][i]) / 3.0;
            self.m[i] = (m0[i] + 2.0 * s3raw[1][i]) / 3.0;
            self.en[i] = (e0[i] + 2.0 * s3raw[2][i]) / 3.0;
        }
        self.t += dt;
    }

    /// Flux-difference RHS: linear 5th-order reconstruction + LF + LAD.
    fn rhs(&self, rho: &[f64], m: &[f64], en: &[f64]) -> [Vec<f64>; 3] {
        let n = self.n;
        let dx = self.dx();
        let g = self.gamma;
        let beta = self.beta_art(rho, m);

        let prim = |i: usize| -> (f64, f64, f64) {
            let u = m[i] / rho[i];
            let p = (g - 1.0) * (en[i] - 0.5 * rho[i] * u * u);
            (rho[i], u, p)
        };

        // Interface fluxes.
        let mut fr = vec![0.0; n];
        let mut fm = vec![0.0; n];
        let mut fe = vec![0.0; n];
        for c in 0..n {
            // 5th-order linear recon of each conserved variable.
            let win = |v: &[f64]| -> [f64; 6] {
                std::array::from_fn(|o| v[self.wrap(c as isize + o as isize - 2)])
            };
            let rec = |w: &[f64; 6]| -> (f64, f64) {
                let cl = [2.0, -13.0, 47.0, 27.0, -3.0].map(|x| x / 60.0);
                let l = cl[0] * w[0] + cl[1] * w[1] + cl[2] * w[2] + cl[3] * w[3] + cl[4] * w[4];
                let r = cl[0] * w[5] + cl[1] * w[4] + cl[2] * w[3] + cl[3] * w[2] + cl[4] * w[1];
                (l, r)
            };
            let (rl, rr) = rec(&win(rho));
            let (ml, mr) = rec(&win(m));
            let (el, er) = rec(&win(en));
            // Positivity fallback to donor cells.
            let (rl, ml, el, rr, mr, er) = {
                let pl = (g - 1.0) * (el - 0.5 * ml * ml / rl.max(1e-14));
                let pr = (g - 1.0) * (er - 0.5 * mr * mr / rr.max(1e-14));
                if rl <= 0.0 || rr <= 0.0 || pl <= 0.0 || pr <= 0.0 {
                    let ip = self.wrap(c as isize + 1);
                    (rho[c], m[c], en[c], rho[ip], m[ip], en[ip])
                } else {
                    (rl, ml, el, rr, mr, er)
                }
            };
            let (ul, ur) = (ml / rl, mr / rr);
            let pl = (g - 1.0) * (el - 0.5 * rl * ul * ul);
            let pr = (g - 1.0) * (er - 0.5 * rr * ur * ur);
            let lam = (ul.abs() + (g * pl / rl).sqrt()).max(ur.abs() + (g * pr / rr).sqrt());
            fr[c] = 0.5 * (ml + mr) - 0.5 * lam * (rr - rl);
            fm[c] = 0.5 * (ml * ul + pl + mr * ur + pr) - 0.5 * lam * (mr - ml);
            fe[c] = 0.5 * ((el + pl) * ul + (er + pr) * ur) - 0.5 * lam * (er - el);

            // LAD viscous flux: tau = beta* du/dx at the interface.
            let ip = self.wrap(c as isize + 1);
            let b_face = 0.5 * (beta[c] + beta[ip]);
            let dudx = (m[ip] / rho[ip] - m[c] / rho[c]) / dx;
            let tau = b_face * dudx;
            let u_face = 0.5 * (m[c] / rho[c] + m[ip] / rho[ip]);
            fm[c] -= tau;
            fe[c] -= u_face * tau;
            let _ = prim;
        }

        let mut out = [vec![0.0; n], vec![0.0; n], vec![0.0; n]];
        for i in 0..n {
            let im = self.wrap(i as isize - 1);
            out[0][i] = -(fr[i] - fr[im]) / dx;
            out[1][i] = -(fm[i] - fm[im]) / dx;
            out[2][i] = -(fe[i] - fe[im]) / dx;
        }
        out
    }

    pub fn totals(&self) -> (f64, f64, f64) {
        let dx = self.dx();
        (
            self.rho.iter().sum::<f64>() * dx,
            self.m.iter().sum::<f64>() * dx,
            self.en.iter().sum::<f64>() * dx,
        )
    }

    pub fn is_finite(&self) -> bool {
        self.rho.iter().all(|x| x.is_finite())
            && self.m.iter().all(|x| x.is_finite())
            && self.en.iter().all(|x| x.is_finite())
    }
}

fn apply(state: &[&Vec<f64>; 3], rhs: &[Vec<f64>; 3], dt: f64) -> Vec<Vec<f64>> {
    (0..3)
        .map(|v| {
            state[v]
                .iter()
                .zip(&rhs[v])
                .map(|(s, r)| s + dt * r)
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::TAU;

    fn steepening_wave(c_beta: f64, n: usize) -> Lad1d {
        Lad1d::new(n, 1.0, 1.4, c_beta, |x| (1.0, 0.5 * (TAU * x).sin(), 1.0))
    }

    #[test]
    fn conservation_through_shock_formation() {
        let mut s = steepening_wave(1.0, 256);
        let (m0, p0, e0) = s.totals();
        while s.t() < 0.4 {
            let dt = s.stable_dt(0.35);
            s.step(dt);
        }
        let (m1, p1, e1) = s.totals();
        assert!((m1 - m0).abs() < 1e-10);
        assert!((p1 - p0).abs() < 1e-10);
        assert!((e1 - e0).abs() < 1e-10);
        assert!(s.is_finite());
    }

    #[test]
    fn sensor_localizes_at_the_steepened_front() {
        // Run past shock formation (t* ~ 1/(0.5*tau) ~ 0.32) so the front
        // dominates the sensor.
        let mut s = steepening_wave(1.0, 256);
        while s.t() < 0.45 {
            let dt = s.stable_dt(0.35);
            s.step(dt);
        }
        let beta = s.beta_art(&s.rho.clone(), &s.m.clone());
        let bmax = beta.iter().cloned().fold(0.0f64, f64::max);
        assert!(bmax > 0.0);
        // Concentration: the top 10% of cells must carry most of the total
        // artificial viscosity.
        let mut sorted = beta.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let total: f64 = sorted.iter().sum();
        let top: f64 = sorted[..s.n / 10].iter().sum();
        assert!(
            top > 0.6 * total,
            "top-10% cells carry only {:.0}% of the sensor mass",
            100.0 * top / total
        );
    }

    #[test]
    fn zero_coefficient_disables_lad() {
        let s = steepening_wave(0.0, 64);
        let beta = s.beta_art(&s.rho.clone(), &s.m.clone());
        assert!(beta.iter().all(|&b| b == 0.0));
    }

    #[test]
    fn larger_c_beta_widens_the_shock() {
        // Width proxy: number of cells where the density gradient exceeds
        // half its max — grows with C_beta.
        let width = |c_beta: f64| -> usize {
            let mut s = steepening_wave(c_beta, 512);
            while s.t() < 0.45 {
                let dt = s.stable_dt(0.3);
                s.step(dt);
            }
            assert!(s.is_finite(), "LAD c_beta={c_beta} blew up");
            let n = s.n;
            let grads: Vec<f64> = (0..n)
                .map(|i| (s.rho[(i + 1) % n] - s.rho[i]).abs())
                .collect();
            let gmax = grads.iter().cloned().fold(0.0f64, f64::max);
            grads.iter().filter(|&&g| g > 0.5 * gmax).count()
        };
        let w_small = width(0.5);
        let w_large = width(8.0);
        assert!(
            w_large > w_small,
            "shock width must grow with C_beta: {w_small} vs {w_large}"
        );
    }

    #[test]
    fn oscillatory_features_dissipate_more_with_larger_c_beta() {
        // Fig. 2(b): an acoustic wave train loses amplitude under strong LAD.
        let run = |c_beta: f64| -> f64 {
            let mut s = Lad1d::new(256, 1.0, 1.4, c_beta, |x| {
                // Small-amplitude high-frequency acoustic packet.
                let a = 0.02 * (8.0 * TAU * x).sin();
                (1.0 + a, a, 1.0 + 1.4 * a)
            });
            while s.t() < 0.3 {
                let dt = s.stable_dt(0.3);
                s.step(dt);
            }
            // Remaining density fluctuation amplitude.
            let mean = s.rho.iter().sum::<f64>() / s.n as f64;
            s.rho.iter().map(|r| (r - mean).abs()).fold(0.0, f64::max)
        };
        let amp_weak = run(0.5);
        let amp_strong = run(50.0);
        assert!(
            amp_strong < amp_weak,
            "strong LAD must damp oscillations more: {amp_strong} !< {amp_weak}"
        );
    }
}
