//! WENO5-JS reconstruction (Jiang & Shu), the paper's reference for
//! "state-of-the-art numerical shock capturing".
//!
//! The scheme blends three 3rd-order candidate stencils with nonlinear
//! weights derived from smoothness indicators `β_k`. The `β_k` are sums of
//! squares of small differences of near-equal numbers — the catastrophic-
//! cancellation-prone operation that makes WENO effectively FP64-only
//! (paper §4.3, citing Brogi et al.): in FP32 the indicators lose most of
//! their significant bits in smooth regions, and in FP16-storage mode the
//! storage rounding itself masquerades as non-smoothness.

use igr_prec::Real;

/// Jiang–Shu sensitivity constant. Scaled like the square of the data, it
/// guards the division; the classic choice 1e-6 is used in MFC.
pub const WENO_EPS: f64 = 1e-6;

/// Linear (optimal) weights of the three candidate stencils for the left
/// state at `i+1/2`.
const D: [f64; 3] = [0.1, 0.6, 0.3];

/// The Jiang–Shu smoothness indicators `β_0..β_2` of the left-biased stencil.
///
/// Differences of near-equal numbers, squared: the relative error of a `β`
/// computed in precision `R` is roughly `ε_R · (q/Δq)`, which for
/// small-amplitude data on top of an O(1) mean loses most significant bits —
/// the conditioning argument for why WENO is FP64-only (§4.3).
#[inline(always)]
pub fn smoothness_indicators<R: Real>(w: &[R; 5]) -> [R; 3] {
    let c13_12 = R::from_f64(13.0 / 12.0);
    let quarter = R::from_f64(0.25);
    let b0 = c13_12 * (w[0] - R::TWO * w[1] + w[2]).powi(2)
        + quarter * (w[0] - R::from_f64(4.0) * w[1] + R::from_f64(3.0) * w[2]).powi(2);
    let b1 = c13_12 * (w[1] - R::TWO * w[2] + w[3]).powi(2) + quarter * (w[1] - w[3]).powi(2);
    let b2 = c13_12 * (w[2] - R::TWO * w[3] + w[4]).powi(2)
        + quarter * (R::from_f64(3.0) * w[2] - R::from_f64(4.0) * w[3] + w[4]).powi(2);
    [b0, b1, b2]
}

/// Reconstruct the left-biased WENO5 value at `i+1/2` from the window
/// `w = q[i-2..=i+2]`.
#[inline(always)]
pub fn weno5_left<R: Real>(w: &[R; 5]) -> R {
    let eps = R::from_f64(WENO_EPS);
    let [b0, b1, b2] = smoothness_indicators(w);

    let a0 = R::from_f64(D[0]) / (eps + b0).powi(2);
    let a1 = R::from_f64(D[1]) / (eps + b1).powi(2);
    let a2 = R::from_f64(D[2]) / (eps + b2).powi(2);
    let inv_sum = R::ONE / (a0 + a1 + a2);

    // Candidate reconstructions.
    let q0 =
        (R::TWO * w[0] - R::from_f64(7.0) * w[1] + R::from_f64(11.0) * w[2]) / R::from_f64(6.0);
    let q1 = (-w[1] + R::from_f64(5.0) * w[2] + R::TWO * w[3]) / R::from_f64(6.0);
    let q2 = (R::TWO * w[2] + R::from_f64(5.0) * w[3] - w[4]) / R::from_f64(6.0);

    (a0 * q0 + a1 * q1 + a2 * q2) * inv_sum
}

/// Reconstruct the right-biased WENO5 value at `i+1/2` from the window
/// `w = q[i-1..=i+3]` (mirror of [`weno5_left`]).
#[inline(always)]
pub fn weno5_right<R: Real>(w: &[R; 5]) -> R {
    let rev = [w[4], w[3], w[2], w[1], w[0]];
    weno5_left(&rev)
}

/// Left/right states at interface `i+1/2` from the 6-cell window
/// `q[i-2..=i+3]` — same window contract as `igr_core::recon::recon5`.
#[inline(always)]
pub fn weno5_pair<R: Real>(w6: &[R; 6]) -> (R, R) {
    let wl = [w6[0], w6[1], w6[2], w6[3], w6[4]];
    let wr = [w6[1], w6[2], w6[3], w6[4], w6[5]];
    (weno5_left(&wl), weno5_right(&wr))
}

#[cfg(test)]
mod tests {
    use super::*;
    use igr_core::recon::recon5;

    #[test]
    fn constant_data_reconstructs_exactly() {
        let w = [3.25f64; 5];
        assert!((weno5_left(&w) - 3.25).abs() < 1e-14);
    }

    #[test]
    fn smooth_data_recovers_the_linear_scheme() {
        // On smooth data the nonlinear weights collapse to the optimal
        // weights, so WENO5 matches the 5th-order linear reconstruction to
        // high accuracy.
        let h = 0.01f64;
        let avg = |i: f64| (((i + 0.5) * h + 1.0).sin() - ((i - 0.5) * h + 1.0).sin()) / h;
        let w6: [f64; 6] = std::array::from_fn(|q| avg(q as f64 - 2.0));
        let (l_weno, r_weno) = weno5_pair(&w6);
        let (l_lin, r_lin) = recon5(&w6);
        assert!((l_weno - l_lin).abs() < 1e-9, "{l_weno} vs {l_lin}");
        assert!((r_weno - r_lin).abs() < 1e-9);
    }

    #[test]
    fn discontinuity_does_not_overshoot() {
        // Step data: the reconstruction must stay within the data range
        // (ENO property), unlike the linear scheme which overshoots.
        let w6 = [0.0f64, 0.0, 0.0, 1.0, 1.0, 1.0];
        let (l_weno, r_weno) = weno5_pair(&w6);
        assert!((-1e-12..=1.0 + 1e-12).contains(&l_weno), "left {l_weno}");
        assert!((-1e-12..=1.0 + 1e-12).contains(&r_weno), "right {r_weno}");
        let (l_lin, _) = recon5(&w6);
        assert!(
            l_lin < 0.0 || l_lin > 1.0 || (l_weno - l_lin).abs() > 1e-3,
            "linear recon should overshoot or differ markedly at a step"
        );
    }

    #[test]
    fn near_discontinuity_prefers_smooth_stencil() {
        // Window with a jump between cells 0 and 1: stencil 2 (rightmost) is
        // smooth; its weight must dominate.
        let w = [10.0f64, 1.0, 1.0, 1.0, 1.0];
        let v = weno5_left(&w);
        assert!(
            (v - 1.0).abs() < 1e-2,
            "should reconstruct from smooth side: {v}"
        );
    }

    #[test]
    fn fifth_order_on_smooth_data() {
        let err = |h: f64| {
            let phase = 0.7;
            let avg = |i: f64| (((i + 0.5) * h + phase).sin() - ((i - 0.5) * h + phase).sin()) / h;
            let w: [f64; 5] = std::array::from_fn(|q| avg(q as f64 - 2.0));
            (weno5_left(&w) - (0.5 * h + phase).cos()).abs()
        };
        let order = (err(0.02) / err(0.01)).log2();
        assert!(
            order > 4.3,
            "WENO5 must be ~5th order on smooth data, got {order}"
        );
    }

    /// The precision pathology the paper leans on (§4.3, citing Brogi et
    /// al.): the smoothness indicators are differences of near-equal numbers,
    /// squared. For small-amplitude data on an O(1) mean, FP32 destroys most
    /// of their significant bits — the *relative* error of β computed in
    /// FP32 is orders of magnitude above FP32 roundoff.
    #[test]
    fn fp32_smoothness_indicators_lose_their_significance() {
        let mean = 1.0f64;
        let amp = 1e-5; // plausible turbulence-level fluctuation
        let data = |i: f64| mean + amp * (1.7 * i).sin();
        let w64: [f64; 5] = std::array::from_fn(|q| data(q as f64 - 2.0));
        let w32: [f32; 5] = std::array::from_fn(|q| data(q as f64 - 2.0) as f32);
        let b64 = smoothness_indicators(&w64);
        let b32 = smoothness_indicators(&w32);
        let mut worst_rel = 0.0f64;
        for k in 0..3 {
            let rel = ((b32[k] as f64 - b64[k]) / b64[k]).abs();
            worst_rel = worst_rel.max(rel);
        }
        // Well-conditioned FP32 arithmetic would give rel ~ 1e-7; the
        // cancellation inflates it by orders of magnitude.
        assert!(
            worst_rel > 1e-3,
            "beta conditioning: worst relative error {worst_rel:.3e} should be >> FP32 eps"
        );
        // Sanity: in FP64 the indicators are meaningful (positive, finite).
        assert!(b64.iter().all(|&b| b > 0.0 && b.is_finite()));
    }
}
