//! Staged IGR: the ablation that isolates *kernel fusion* from *numerics*.
//!
//! The paper's 25× memory-footprint claim mixes two effects: (i) IGR's
//! simpler numerics need fewer intermediates than WENO+HLLC, and (ii) the
//! fused single-kernel implementation (§5.4) materializes none of them.
//! This scheme runs IGR's exact numerics (linear 5th-order reconstruction,
//! Lax–Friedrichs flux with entropic pressure, the same elliptic solve)
//! through the *staged* pipeline of the WENO baseline — persistent
//! reconstruction and flux arrays per direction — so
//!
//! * `StagedIgrScheme` vs `IgrScheme` (fused) measures the fusion effect
//!   alone (identical physics, ~4× the persistent arrays);
//! * `StagedIgrScheme` vs `WenoHllcScheme` measures the numerics effect
//!   alone (identical staging, different kernels).

use crate::scheme::{
    in_interface_range, interface_cell_range, layer_stride, par_interface_map, stored_coords,
    DirBuffers,
};
use igr_core::config::{EllipticKind, IgrConfig};
use igr_core::eos::{inviscid_flux, max_wave_speed, NV};
use igr_core::memory::MemoryReport;
use igr_core::recon::recon5;
use igr_core::rhs::par_over_chunks;
use igr_core::sigma::{compute_igr_source, gauss_seidel_sweep, jacobi_sweep};
use igr_core::solver::{GhostOps, RhsScheme, SchemeParams};
use igr_core::state::State;
use igr_grid::{Domain, Field};
use igr_prec::{Real, Storage};

/// IGR numerics in staged (stored-intermediate) form.
pub struct StagedIgrScheme<R: Real, S: Storage<R>> {
    pub cfg: IgrConfig,
    pub domain: Domain,
    alpha: f64,
    /// Per-direction reconstructed states and fluxes (15 arrays each).
    dirs: Vec<DirBuffers<R, S>>,
    /// Reconstructed Σ at interfaces, per direction (2 arrays each).
    sigma_recon: Vec<(Field<R, S>, Field<R, S>)>,
    sigma: Field<R, S>,
    sigma_tmp: Option<Field<R, S>>,
    igr_rhs: Field<R, S>,
    warm: bool,
}

impl<R: Real, S: Storage<R>> StagedIgrScheme<R, S> {
    pub fn new(cfg: IgrConfig, domain: Domain) -> Self {
        cfg.validate().expect("invalid IgrConfig");
        let shape = domain.shape;
        let alpha = cfg.alpha(domain.dx_max());
        let dirs: Vec<_> = shape
            .active_axes()
            .map(|axis| DirBuffers {
                axis,
                ql: State::zeros(shape),
                qr: State::zeros(shape),
                flux: State::zeros(shape),
            })
            .collect();
        let sigma_recon = dirs
            .iter()
            .map(|_| (Field::zeros(shape), Field::zeros(shape)))
            .collect();
        let sigma_tmp = match cfg.elliptic {
            EllipticKind::Jacobi => Some(Field::zeros(shape)),
            EllipticKind::GaussSeidel => None,
        };
        StagedIgrScheme {
            cfg,
            domain,
            alpha,
            dirs,
            sigma_recon,
            sigma: Field::zeros(shape),
            sigma_tmp,
            igr_rhs: Field::zeros(shape),
            warm: false,
        }
    }

    fn solve_sigma(&mut self, q: &State<R, S>, ghost: &mut dyn GhostOps<R, S>) {
        compute_igr_source(q, &self.domain, self.alpha, &mut self.igr_rhs);
        let sweeps = if self.warm {
            self.cfg.sweeps
        } else {
            self.cfg.sweeps.max(self.cfg.cold_start_sweeps)
        };
        self.warm = true;
        for _ in 0..sweeps {
            ghost.fill_scalar(&mut self.sigma);
            match self.cfg.elliptic {
                EllipticKind::Jacobi => {
                    let tmp = self.sigma_tmp.as_mut().expect("Jacobi needs sigma_tmp");
                    jacobi_sweep(
                        &q.rho,
                        &self.igr_rhs,
                        &self.sigma,
                        tmp,
                        &self.domain,
                        self.alpha,
                    );
                    std::mem::swap(&mut self.sigma, tmp);
                }
                EllipticKind::GaussSeidel => gauss_seidel_sweep(
                    &q.rho,
                    &self.igr_rhs,
                    &mut self.sigma,
                    &self.domain,
                    self.alpha,
                ),
            }
        }
        ghost.fill_scalar(&mut self.sigma);
    }

    /// Stage 2: linear recon of the five *conservative* variables and Σ
    /// along `axis` — the same inputs the fused kernel reconstructs, so the
    /// two implementations differ only in staging, not numerics.
    fn reconstruct(&mut self, di: usize, q: &State<R, S>) {
        let shape = q.shape();
        let axis = self.dirs[di].axis;
        let st = shape.stride(axis);
        let (lo, hi) = interface_cell_range(shape, axis);

        let DirBuffers { ql, qr, .. } = &mut self.dirs[di];
        for ((v, dst_l), dst_r) in (0..NV).zip(ql.fields_mut()).zip(qr.fields_mut()) {
            let src = q.fields()[v];
            par_interface_map::<R, S>(
                shape,
                axis,
                lo,
                hi,
                dst_l.packed_mut(),
                dst_r.packed_mut(),
                |lin| {
                    let base = lin - 2 * st;
                    let w: [R; 6] = std::array::from_fn(|o| src.at_lin(base + o * st));
                    recon5(&w)
                },
            );
        }
        let sigma = &self.sigma;
        let (sl, sr) = &mut self.sigma_recon[di];
        par_interface_map::<R, S>(
            shape,
            axis,
            lo,
            hi,
            sl.packed_mut(),
            sr.packed_mut(),
            |lin| {
                let base = lin - 2 * st;
                let w: [R; 6] = std::array::from_fn(|o| sigma.at_lin(base + o * st));
                recon5(&w)
            },
        );
    }

    /// Stage 3: Lax–Friedrichs flux with Σ at every interface.
    fn compute_fluxes(&mut self, di: usize) {
        let shape = self.domain.shape;
        let axis = self.dirs[di].axis;
        let d = axis.dim();
        let gamma = R::from_f64(self.cfg.gamma);
        let (lo, hi) = interface_cell_range(shape, axis);
        let sxy = layer_stride(shape);
        let (sig_l, sig_r) = &self.sigma_recon[di];
        let DirBuffers { ql, qr, flux, .. } = &mut self.dirs[di];
        let (ql, qr) = (&*ql, &*qr);
        par_over_chunks(flux, sxy, |ci, chunks| {
            let off = ci * sxy;
            let [c0, c1, c2, c3, c4] = chunks;
            for loc in 0..c0.len() {
                let lin = off + loc;
                if in_interface_range(shape, axis, lin, lo, hi).is_none() {
                    continue;
                }
                let qcl = ql.cons_at_lin(lin);
                let qcr = qr.cons_at_lin(lin);
                let prl = igr_core::eos::cons_to_prim(&qcl, gamma);
                let prr = igr_core::eos::cons_to_prim(&qcr, gamma);
                if prl.rho <= R::ZERO || prr.rho <= R::ZERO || prl.p <= R::ZERO || prr.p <= R::ZERO
                {
                    continue; // positivity fallback handled as zero-flux skip
                }
                let sl = sig_l.at_lin(lin);
                let sr = sig_r.at_lin(lin);
                let lam =
                    max_wave_speed(d, &prl, sl, gamma).max(max_wave_speed(d, &prr, sr, gamma));
                let fl = inviscid_flux(d, &qcl, &prl, prl.p + sl);
                let fr = inviscid_flux(d, &qcr, &prr, prr.p + sr);
                let mut f = [R::ZERO; NV];
                for v in 0..NV {
                    f[v] = R::HALF * (fl[v] + fr[v]) - R::HALF * lam * (qcr[v] - qcl[v]);
                }
                c0[loc] = S::pack(f[0]);
                c1[loc] = S::pack(f[1]);
                c2[loc] = S::pack(f[2]);
                c3[loc] = S::pack(f[3]);
                c4[loc] = S::pack(f[4]);
            }
        });
    }

    /// Stage 4: flux difference into the RHS.
    fn accumulate(&self, di: usize, rhs: &mut State<R, S>) {
        let shape = self.domain.shape;
        let axis = self.dirs[di].axis;
        let st = shape.stride(axis);
        let inv_dx = R::from_f64(1.0 / self.domain.dx(axis));
        let flux = &self.dirs[di].flux;
        let sxy = layer_stride(shape);
        par_over_chunks(rhs, sxy, |ci, chunks| {
            let off = ci * sxy;
            let [c0, c1, c2, c3, c4] = chunks;
            for loc in 0..c0.len() {
                let lin = off + loc;
                let Some((i, j, k)) = stored_coords(shape, lin) else {
                    continue;
                };
                if !shape.in_interior(i, j, k) {
                    continue;
                }
                let fm = flux.cons_at_lin(lin - st);
                let fp = flux.cons_at_lin(lin);
                let add = |c: &mut S::Packed, v: usize| {
                    *c = S::pack(S::unpack(*c) + (fm[v] - fp[v]) * inv_dx);
                };
                add(&mut c0[loc], 0);
                add(&mut c1[loc], 1);
                add(&mut c2[loc], 2);
                add(&mut c3[loc], 3);
                add(&mut c4[loc], 4);
            }
        });
    }
}

impl<R: Real, S: Storage<R>> RhsScheme<R, S> for StagedIgrScheme<R, S> {
    fn name(&self) -> &'static str {
        "igr-staged"
    }

    fn params(&self) -> SchemeParams {
        SchemeParams {
            gamma: self.cfg.gamma,
            mu: self.cfg.mu,
            zeta: self.cfg.zeta,
            cfl: self.cfg.cfl,
            rk: self.cfg.rk,
        }
    }

    fn compute_rhs(
        &mut self,
        q: &mut State<R, S>,
        t: f64,
        rhs: &mut State<R, S>,
        ghost: &mut dyn GhostOps<R, S>,
    ) {
        ghost.fill_state(q, t);
        if self.alpha > 0.0 {
            self.solve_sigma(q, ghost);
        }
        rhs.zero();
        for di in 0..self.dirs.len() {
            self.reconstruct(di, q);
            self.compute_fluxes(di);
            self.accumulate(di, rhs);
        }
    }

    fn memory_report(&self, report: &mut MemoryReport) {
        let n = self.domain.shape.n_total();
        for (dir, (sl, sr)) in self.dirs.iter().zip(&self.sigma_recon) {
            let name = dir.axis.name();
            report.push(format!("qL_{name} (5)"), 5 * n, dir.ql.storage_bytes());
            report.push(format!("qR_{name} (5)"), 5 * n, dir.qr.storage_bytes());
            report.push(format!("flux_{name} (5)"), 5 * n, dir.flux.storage_bytes());
            report.push(format!("sigmaL_{name}"), n, sl.storage_bytes());
            report.push(format!("sigmaR_{name}"), n, sr.storage_bytes());
        }
        report.push("sigma", n, self.sigma.storage_bytes());
        report.push("igr_rhs", n, self.igr_rhs.storage_bytes());
        if let Some(tmp) = &self.sigma_tmp {
            report.push("sigma_tmp (Jacobi)", n, tmp.storage_bytes());
        }
    }
}

/// Convenience constructor mirroring `igr_core::solver::igr_solver`.
pub fn staged_igr_solver<R: Real, S: Storage<R>>(
    cfg: IgrConfig,
    domain: Domain,
    q: State<R, S>,
) -> igr_core::solver::Solver<R, S, StagedIgrScheme<R, S>, igr_core::solver::BcGhostOps> {
    let ghost = igr_core::solver::BcGhostOps::new(domain, cfg.bc.clone(), cfg.gamma);
    let scheme = StagedIgrScheme::new(cfg, domain);
    igr_core::solver::Solver::new(scheme, ghost, domain, q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use igr_core::eos::Prim;
    use igr_grid::GridShape;
    use igr_prec::StoreF64;

    fn smooth_case(n: usize) -> (IgrConfig, Domain, State<f64, StoreF64>) {
        let shape = GridShape::new(n, n / 2, 1, 3);
        let domain = Domain::unit(shape);
        let cfg = IgrConfig::default();
        let tau = std::f64::consts::TAU;
        let mut q = State::zeros(shape);
        q.set_prim_field(&domain, cfg.gamma, |p| {
            Prim::new(
                1.0 + 0.2 * (tau * p[0]).sin() * (tau * p[1]).cos(),
                [0.4 * (tau * p[1]).sin(), -0.2 * (tau * p[0]).cos(), 0.0],
                1.0,
            )
        });
        (cfg, domain, q)
    }

    /// The defining property: staged and fused IGR compute identical
    /// numerics (same conservative-variable reconstruction, same flux),
    /// differing only in intermediate-rounding order through the staged
    /// arrays — results agree to near machine precision.
    #[test]
    fn staged_matches_fused_igr_closely() {
        let (cfg, domain, q) = smooth_case(32);
        let mut fused = igr_core::solver::igr_solver(cfg.clone(), domain, q.clone());
        let mut staged = staged_igr_solver(cfg, domain, q);
        let dt = fused.stable_dt().min(staged.stable_dt());
        fused.fixed_dt = Some(dt);
        staged.fixed_dt = Some(dt);
        for _ in 0..5 {
            fused.step().unwrap();
            staged.step().unwrap();
        }
        let diff = fused.q.max_diff(&staged.q);
        assert!(
            diff < 1e-12,
            "staged and fused IGR numerics must agree to rounding: {diff}"
        );
    }

    #[test]
    fn staged_conserves_on_periodic_box() {
        let (cfg, domain, q) = smooth_case(24);
        let before = q.totals(&domain);
        let mut solver = staged_igr_solver(cfg, domain, q);
        for _ in 0..5 {
            solver.step().unwrap();
        }
        let after = solver.q.totals(&domain);
        for v in 0..5 {
            let scale = before[v].abs().max(1.0);
            assert!((after[v] - before[v]).abs() < 1e-12 * scale, "var {v}");
        }
    }

    /// The fusion ablation: same numerics, ~3x the persistent arrays in 2-D
    /// (fused: 18; staged: 15 shared + 5 prim + 2x17 staged + 3 sigma = 57).
    #[test]
    fn staging_multiplies_the_memory_footprint() {
        let (cfg, domain, q) = smooth_case(24);
        let fused = igr_core::solver::igr_solver(cfg.clone(), domain, q.clone());
        let staged = staged_igr_solver(cfg, domain, q);
        let f = fused.memory_report().total_scalars();
        let s = staged.memory_report().total_scalars();
        let n = domain.shape.n_total();
        assert_eq!(f, 18 * n);
        // 15 shared + 2 directions x (15 recon/flux + 2 sigma recon) + 3 sigma.
        assert_eq!(s, (15 + 2 * 17 + 3) * n);
        assert!(s as f64 / f as f64 > 2.8);
    }
}
