//! Property-based tests for the Riemann machinery: the exact solver's
//! mathematical invariants and HLLC's consistency with it.

use igr_baseline::exact_riemann::{ExactRiemann, PrimitiveState};
use igr_baseline::hllc::hllc_flux;
use igr_core::eos::{inviscid_flux, Prim};
use proptest::prelude::*;

const G: f64 = 1.4;

/// Random non-vacuum-generating states.
fn state_strategy() -> impl Strategy<Value = (PrimitiveState, PrimitiveState)> {
    (
        0.1..4.0f64,
        -1.0..1.0f64,
        0.1..4.0f64,
        0.1..4.0f64,
        -1.0..1.0f64,
        0.1..4.0f64,
    )
        .prop_map(|(rl, ul, pl, rr, ur, pr)| {
            (
                PrimitiveState::new(rl, ul, pl),
                PrimitiveState::new(rr, ur, pr),
            )
        })
        .prop_filter("no vacuum", |(l, r)| {
            let cl = (G * l.p / l.rho).sqrt();
            let cr = (G * r.p / r.rho).sqrt();
            2.0 * (cl + cr) / (G - 1.0) > (r.u - l.u) + 0.2
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The star pressure is positive and the sampled solution matches the
    /// input states in the far field.
    #[test]
    fn exact_solver_far_field_and_positivity((l, r) in state_strategy()) {
        let sol = ExactRiemann::solve(l, r, G);
        prop_assert!(sol.p_star > 0.0);
        let far_l = sol.sample(-100.0);
        let far_r = sol.sample(100.0);
        prop_assert!((far_l.rho - l.rho).abs() < 1e-12);
        prop_assert!((far_r.p - r.p).abs() < 1e-12);
    }

    /// Pressure and velocity are continuous across the contact; density may
    /// jump (the defining structure of the solution).
    #[test]
    fn exact_solver_contact_jump_structure((l, r) in state_strategy()) {
        let sol = ExactRiemann::solve(l, r, G);
        let eps = 1e-9;
        let a = sol.sample(sol.u_star - eps);
        let b = sol.sample(sol.u_star + eps);
        prop_assert!((a.p - b.p).abs() < 1e-6, "pressure continuous: {} vs {}", a.p, b.p);
        prop_assert!((a.u - b.u).abs() < 1e-6, "velocity continuous");
    }

    /// Every sampled state is physically admissible.
    #[test]
    fn exact_solver_samples_are_admissible((l, r) in state_strategy(), xi in -3.0..3.0f64) {
        let sol = ExactRiemann::solve(l, r, G);
        let s = sol.sample(xi);
        prop_assert!(s.rho > 0.0 && s.p > 0.0);
        prop_assert!(s.rho.is_finite() && s.u.is_finite() && s.p.is_finite());
    }

    /// Mirror symmetry: solving the reflected problem gives the reflected
    /// solution (u* flips sign, p* invariant).
    #[test]
    fn exact_solver_mirror_symmetry((l, r) in state_strategy()) {
        let sol = ExactRiemann::solve(l, r, G);
        let mirrored = ExactRiemann::solve(
            PrimitiveState::new(r.rho, -r.u, r.p),
            PrimitiveState::new(l.rho, -l.u, l.p),
            G,
        );
        prop_assert!((sol.p_star - mirrored.p_star).abs() < 1e-9 * sol.p_star.max(1.0));
        prop_assert!((sol.u_star + mirrored.u_star).abs() < 1e-9);
    }

    /// HLLC consistency: for identical inputs it returns the physical flux.
    #[test]
    fn hllc_is_consistent(rho in 0.1..4.0f64, u in -2.0..2.0f64, v in -1.0..1.0f64, p in 0.1..4.0f64) {
        let pr = Prim::new(rho, [u, v, 0.0], p);
        let q = pr.to_cons(G);
        let f = hllc_flux(0, &q, &q, G);
        let exact = inviscid_flux(0, &q, &pr, pr.p);
        for vv in 0..5 {
            prop_assert!((f[vv] - exact[vv]).abs() < 1e-11 * (1.0 + exact[vv].abs()));
        }
    }

    /// HLLC's interface signal respects upwinding: for strongly supersonic
    /// flow the flux equals the upwind state's physical flux.
    #[test]
    fn hllc_upwinds_supersonic_flow(rho in 0.2..2.0f64, p in 0.2..2.0f64, mach in 1.5..4.0f64) {
        let c = (G * p / rho).sqrt();
        let u = mach * c;
        let left = Prim::new(rho, [u, 0.1, 0.0], p);
        let right = Prim::new(0.7 * rho, [u, -0.2, 0.0], 1.3 * p);
        // Right-moving supersonic: but the wave bound is min(uL-cL, uR-cR);
        // choose both states supersonic so SL > 0 for sure.
        let ql = left.to_cons(G);
        let qr = right.to_cons(G);
        let cr = (G * right.p / right.rho).sqrt();
        prop_assume!(u - cr > 0.0);
        let f = hllc_flux(0, &ql, &qr, G);
        let exact = inviscid_flux(0, &ql, &left, left.p);
        for vv in 0..5 {
            prop_assert!((f[vv] - exact[vv]).abs() < 1e-10 * (1.0 + exact[vv].abs()));
        }
    }

    /// HLLC flux agrees with the exact Riemann solution's interface flux to
    /// leading order for weak jumps (both converge to the linearized flux).
    #[test]
    fn hllc_matches_exact_for_weak_waves(rho in 0.5..2.0f64, p in 0.5..2.0f64, eps in 0.0..0.05f64) {
        let l = PrimitiveState::new(rho, 0.0, p);
        let r = PrimitiveState::new(rho * (1.0 + eps), 0.0, p * (1.0 + eps));
        let sol = ExactRiemann::solve(l, r, G);
        let s0 = sol.sample(0.0);
        let exact_pr = Prim::new(s0.rho, [s0.u, 0.0, 0.0], s0.p);
        let exact_flux = inviscid_flux(0, &exact_pr.to_cons(G), &exact_pr, exact_pr.p);
        let ql = Prim::new(l.rho, [l.u, 0.0, 0.0], l.p).to_cons(G);
        let qr = Prim::new(r.rho, [r.u, 0.0, 0.0], r.p).to_cons(G);
        let f = hllc_flux(0, &ql, &qr, G);
        for vv in 0..5 {
            let scale = 1.0 + exact_flux[vv].abs();
            prop_assert!(
                (f[vv] - exact_flux[vv]).abs() < 0.05 * scale + 2.0 * eps * eps,
                "var {}: hllc {} vs exact {}", vv, f[vv], exact_flux[vv]
            );
        }
    }
}
