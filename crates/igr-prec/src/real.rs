//! Compute-precision abstraction.
//!
//! Every numerical kernel in the solver stack is generic over [`Real`], so
//! the same code runs the paper's FP64 and FP32 compute paths. (FP16 is a
//! *storage* format only — the paper computes in FP32 and stores in FP16 —
//! so `f16` deliberately does not implement `Real`.)

use std::fmt::{Debug, Display, LowerExp};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Floating-point compute precision (`f32` or `f64`).
///
/// The trait is intentionally small: just what the finite-volume kernels,
/// the IGR elliptic solve, and the WENO/HLLC baseline need. Constants are
/// provided as conversions from `f64` literals via [`Real::from_f64`].
pub trait Real:
    Copy
    + Clone
    + Debug
    + Display
    + LowerExp
    + Default
    + PartialEq
    + PartialOrd
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
{
    const ZERO: Self;
    const ONE: Self;
    const TWO: Self;
    const HALF: Self;

    /// Machine epsilon of the compute type.
    const EPSILON: Self;

    /// Name used in reports ("fp32"/"fp64").
    const NAME: &'static str;

    fn from_f64(x: f64) -> Self;
    fn to_f64(self) -> f64;
    fn from_usize(n: usize) -> Self {
        Self::from_f64(n as f64)
    }

    fn abs(self) -> Self;
    fn sqrt(self) -> Self;
    fn powi(self, n: i32) -> Self;
    fn exp(self) -> Self;
    fn ln(self) -> Self;
    fn sin(self) -> Self;
    fn cos(self) -> Self;
    fn tanh(self) -> Self;
    fn floor(self) -> Self;
    fn min(self, other: Self) -> Self;
    fn max(self, other: Self) -> Self;
    fn is_finite(self) -> bool;
    fn is_nan(self) -> bool;

    /// Fused multiply-add when available; falls back to `a*b + self`.
    fn mul_add(self, a: Self, b: Self) -> Self;
}

macro_rules! impl_real {
    ($t:ty, $name:literal) => {
        impl Real for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const TWO: Self = 2.0;
            const HALF: Self = 0.5;
            const EPSILON: Self = <$t>::EPSILON;
            const NAME: &'static str = $name;

            #[inline(always)]
            fn from_f64(x: f64) -> Self {
                x as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline(always)]
            fn powi(self, n: i32) -> Self {
                <$t>::powi(self, n)
            }
            #[inline(always)]
            fn exp(self) -> Self {
                <$t>::exp(self)
            }
            #[inline(always)]
            fn ln(self) -> Self {
                <$t>::ln(self)
            }
            #[inline(always)]
            fn sin(self) -> Self {
                <$t>::sin(self)
            }
            #[inline(always)]
            fn cos(self) -> Self {
                <$t>::cos(self)
            }
            #[inline(always)]
            fn tanh(self) -> Self {
                <$t>::tanh(self)
            }
            #[inline(always)]
            fn floor(self) -> Self {
                <$t>::floor(self)
            }
            #[inline(always)]
            fn min(self, other: Self) -> Self {
                <$t>::min(self, other)
            }
            #[inline(always)]
            fn max(self, other: Self) -> Self {
                <$t>::max(self, other)
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
            #[inline(always)]
            fn is_nan(self) -> bool {
                <$t>::is_nan(self)
            }
            #[inline(always)]
            fn mul_add(self, a: Self, b: Self) -> Self {
                <$t>::mul_add(self, a, b)
            }
        }
    };
}

impl_real!(f32, "fp32");
impl_real!(f64, "fp64");

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_root<R: Real>(a: R, b: R, c: R) -> R {
        // Generic kernel exercising a representative mix of trait ops.
        let disc = (b * b - R::from_f64(4.0) * a * c).max(R::ZERO);
        (-b + disc.sqrt()) / (R::TWO * a)
    }

    #[test]
    fn generic_kernel_agrees_across_precisions() {
        let r64 = quadratic_root(1.0f64, -3.0, 2.0);
        let r32 = quadratic_root(1.0f32, -3.0, 2.0);
        assert!((r64 - 2.0).abs() < 1e-14);
        assert!((r32 - 2.0).abs() < 1e-6);
    }

    #[test]
    fn constants_are_consistent() {
        assert_eq!(f64::ZERO, 0.0);
        assert_eq!(f64::ONE, 1.0);
        assert_eq!(f32::HALF, 0.5);
        assert_eq!(f64::NAME, "fp64");
        assert_eq!(f32::NAME, "fp32");
    }

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(f32::from_f64(1.5).to_f64(), 1.5);
        assert_eq!(f64::from_usize(42), 42.0);
        assert_eq!(f32::from_usize(42), 42.0f32);
    }

    #[test]
    fn min_max_and_finiteness() {
        assert_eq!(2.0f64.min(3.0), 2.0);
        assert_eq!(Real::max(2.0f32, 3.0), 3.0);
        assert!(!(f64::NAN).is_finite());
        assert!(Real::is_nan(f32::NAN));
        assert!(Real::is_finite(1.0f64));
    }

    #[test]
    fn mul_add_matches_separate_ops() {
        let x = 1.25f64;
        assert!((Real::mul_add(x, 2.0, 0.5) - (x * 2.0 + 0.5)).abs() < 1e-15);
    }
}
