//! Software IEEE 754 binary16 ("half precision").
//!
//! Layout: 1 sign bit, 5 exponent bits (bias 15), 10 mantissa bits.
//! Conversions implement round-to-nearest, ties-to-even — the default IEEE
//! rounding mode and the one hardware FP16 units use — so simulation results
//! match what the paper's GH200/MI300A storage path would produce.

use std::cmp::Ordering;
use std::fmt;

/// IEEE 754 binary16 floating point number.
///
/// Stored as its raw bit pattern. All arithmetic is performed by widening to
/// `f32` (exactly representable: binary16 ⊂ binary32), mirroring the paper's
/// "FP32 compute, FP16 storage" strategy where the half values only ever live
/// in memory, never in registers.
#[allow(non_camel_case_types)]
#[derive(Clone, Copy, Default, PartialEq, Eq)]
#[repr(transparent)]
pub struct f16(pub u16);

impl f16 {
    pub const ZERO: f16 = f16(0x0000);
    pub const NEG_ZERO: f16 = f16(0x8000);
    pub const ONE: f16 = f16(0x3C00);
    pub const NEG_ONE: f16 = f16(0xBC00);
    pub const INFINITY: f16 = f16(0x7C00);
    pub const NEG_INFINITY: f16 = f16(0xFC00);
    /// A quiet NaN.
    pub const NAN: f16 = f16(0x7E00);
    /// Largest finite value: 65504.
    pub const MAX: f16 = f16(0x7BFF);
    /// Smallest finite value: -65504.
    pub const MIN: f16 = f16(0xFBFF);
    /// Smallest positive normal value: 2^-14.
    pub const MIN_POSITIVE: f16 = f16(0x0400);
    /// Smallest positive subnormal value: 2^-24.
    pub const MIN_POSITIVE_SUBNORMAL: f16 = f16(0x0001);
    /// Machine epsilon: 2^-10.
    pub const EPSILON: f16 = f16(0x1400);

    const EXP_MASK: u16 = 0x7C00;
    const MAN_MASK: u16 = 0x03FF;
    const SIGN_MASK: u16 = 0x8000;

    /// Reinterpret raw bits as `f16`.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        f16(bits)
    }

    /// The raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Convert from `f32` with round-to-nearest-even.
    ///
    /// Values above the binary16 range saturate to ±infinity (matching IEEE
    /// conversion semantics); NaN payloads are quieted.
    #[inline]
    pub fn from_f32(x: f32) -> Self {
        let bits = x.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let man = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // Infinity or NaN. Keep a nonzero mantissa bit for NaN.
            return if man != 0 {
                f16(sign | Self::EXP_MASK | 0x0200 | ((man >> 13) as u16 & Self::MAN_MASK))
            } else {
                f16(sign | Self::EXP_MASK)
            };
        }

        // Unbiased exponent in binary32; binary16 bias is 15.
        let unbiased = exp - 127;
        let half_exp = unbiased + 15;

        if half_exp >= 0x1F {
            // Overflow: round-to-nearest maps to infinity.
            return f16(sign | Self::EXP_MASK);
        }

        if half_exp <= 0 {
            // Subnormal or underflow-to-zero range.
            if half_exp < -10 {
                // Magnitude below half the smallest subnormal: rounds to zero.
                return f16(sign);
            }
            // Implicit leading 1 becomes explicit; shift right so the result
            // lands in the 10-bit subnormal mantissa field.
            let man32 = man | 0x0080_0000;
            let shift = (14 - half_exp) as u32; // in [14, 24]
            let half_man = man32 >> shift;
            // Round to nearest even on the bits shifted out.
            let rem = man32 & ((1u32 << shift) - 1);
            let halfway = 1u32 << (shift - 1);
            let rounded = match rem.cmp(&halfway) {
                Ordering::Greater => half_man + 1,
                Ordering::Less => half_man,
                Ordering::Equal => half_man + (half_man & 1),
            };
            // Rounding can carry into the exponent field (subnormal -> MIN_POSITIVE);
            // the bit layout makes that carry arithmetically correct.
            return f16(sign | rounded as u16);
        }

        // Normal range: drop 13 mantissa bits with round-to-nearest-even.
        let half_man = (man >> 13) as u16;
        let rem = man & 0x1FFF;
        let base = sign | ((half_exp as u16) << 10) | half_man;
        let rounded = match rem.cmp(&0x1000) {
            Ordering::Greater => base + 1,
            Ordering::Less => base,
            Ordering::Equal => base + (base & 1),
        };
        // A carry out of the mantissa correctly increments the exponent; a
        // carry to exp=31 correctly produces infinity.
        f16(rounded)
    }

    /// Convert from `f64` (via the correctly-rounded `f64 -> f32` step; double
    /// rounding is harmless here because binary32 has >2x the precision of
    /// binary16 plus a guard margin for all binary64 inputs except a measure-
    /// zero set irrelevant to stored simulation data).
    #[inline]
    pub fn from_f64(x: f64) -> Self {
        Self::from_f32(x as f32)
    }

    /// Widen to `f32` (exact).
    #[inline]
    pub fn to_f32(self) -> f32 {
        let sign = ((self.0 & Self::SIGN_MASK) as u32) << 16;
        let exp = ((self.0 & Self::EXP_MASK) >> 10) as u32;
        let man = (self.0 & Self::MAN_MASK) as u32;

        let bits = if exp == 0x1F {
            // Infinity / NaN.
            sign | 0x7F80_0000 | (man << 13)
        } else if exp == 0 {
            if man == 0 {
                sign // signed zero
            } else {
                // Subnormal: value = man * 2^-24 with man in [1, 0x3FF].
                // Normalize: man = 2^k * 1.xxx where k is the MSB index.
                let k = 31 - man.leading_zeros(); // k in [0, 9]
                let unbiased = k as i32 - 24;
                let man32 = (man << (23 - k)) & 0x007F_FFFF;
                sign | (((unbiased + 127) as u32) << 23) | man32
            }
        } else {
            sign | ((exp + 127 - 15) << 23) | (man << 13)
        };
        f32::from_bits(bits)
    }

    /// Widen to `f64` (exact).
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }

    #[inline]
    pub fn is_nan(self) -> bool {
        (self.0 & Self::EXP_MASK) == Self::EXP_MASK && (self.0 & Self::MAN_MASK) != 0
    }

    #[inline]
    pub fn is_infinite(self) -> bool {
        (self.0 & !Self::SIGN_MASK) == Self::EXP_MASK
    }

    #[inline]
    pub fn is_finite(self) -> bool {
        (self.0 & Self::EXP_MASK) != Self::EXP_MASK
    }

    #[inline]
    pub fn is_sign_negative(self) -> bool {
        self.0 & Self::SIGN_MASK != 0
    }

    #[inline]
    pub fn is_subnormal(self) -> bool {
        (self.0 & Self::EXP_MASK) == 0 && (self.0 & Self::MAN_MASK) != 0
    }

    #[inline]
    pub fn abs(self) -> Self {
        f16(self.0 & !Self::SIGN_MASK)
    }

    /// The unit roundoff of the FP16 *storage* channel: 2^-11.
    ///
    /// Storing an FP32 value x in FP16 perturbs it by at most
    /// `|x| * STORAGE_ROUNDOFF` (in the normal range). This is the noise the
    /// paper says seeds hydrodynamic instabilities earlier (Fig. 5) while
    /// leaving the resolved flow faithful.
    pub const STORAGE_ROUNDOFF: f32 = 4.8828125e-4; // 2^-11
}

impl fmt::Debug for f16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f16({})", self.to_f32())
    }
}

impl fmt::Display for f16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

impl PartialOrd for f16 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl From<f16> for f32 {
    fn from(h: f16) -> f32 {
        h.to_f32()
    }
}

impl From<f16> for f64 {
    fn from(h: f16) -> f64 {
        h.to_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(x: f32) -> f32 {
        f16::from_f32(x).to_f32()
    }

    #[test]
    fn exact_small_integers_roundtrip() {
        for i in -2048..=2048 {
            let x = i as f32;
            assert_eq!(roundtrip(x), x, "integer {i} must be exact in binary16");
        }
    }

    #[test]
    fn known_constants() {
        assert_eq!(f16::from_f32(1.0).to_bits(), 0x3C00);
        assert_eq!(f16::from_f32(-1.0).to_bits(), 0xBC00);
        assert_eq!(f16::from_f32(0.5).to_bits(), 0x3800);
        assert_eq!(f16::from_f32(2.0).to_bits(), 0x4000);
        assert_eq!(f16::from_f32(65504.0).to_bits(), 0x7BFF);
        assert_eq!(f16::from_f32(0.0).to_bits(), 0x0000);
        assert_eq!(f16::from_f32(-0.0).to_bits(), 0x8000);
        // 1/3 rounds to 0x3555 (0.33325195) in round-to-nearest-even.
        assert_eq!(f16::from_f32(1.0 / 3.0).to_bits(), 0x3555);
    }

    #[test]
    fn widening_known_bit_patterns() {
        assert_eq!(f16::from_bits(0x3C00).to_f32(), 1.0);
        assert_eq!(f16::from_bits(0x3800).to_f32(), 0.5);
        assert_eq!(f16::from_bits(0x7BFF).to_f32(), 65504.0);
        assert_eq!(f16::from_bits(0x0400).to_f32(), 6.103515625e-5); // 2^-14
        assert_eq!(f16::from_bits(0x0001).to_f32(), 5.960464477539063e-8); // 2^-24
        assert_eq!(f16::from_bits(0x03FF).to_f32(), 6.097555160522461e-5); // max subnormal
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert_eq!(f16::from_f32(65520.0).to_bits(), 0x7C00); // ties to even -> inf
        assert_eq!(f16::from_f32(1.0e6), f16::INFINITY);
        assert_eq!(f16::from_f32(-1.0e6), f16::NEG_INFINITY);
        assert_eq!(f16::from_f32(f32::INFINITY), f16::INFINITY);
    }

    #[test]
    fn underflow_flushes_to_zero_below_half_min_subnormal() {
        let half_min_sub = 2.0f32.powi(-25);
        assert_eq!(f16::from_f32(half_min_sub * 0.99).to_bits(), 0x0000);
        // Exactly half the min subnormal: ties-to-even -> zero (even).
        assert_eq!(f16::from_f32(half_min_sub).to_bits(), 0x0000);
        // Just above: rounds up to the min subnormal.
        assert_eq!(f16::from_f32(half_min_sub * 1.01).to_bits(), 0x0001);
        assert_eq!(f16::from_f32(-half_min_sub * 1.01).to_bits(), 0x8001);
    }

    #[test]
    fn subnormal_conversion_roundtrips() {
        for bits in 1u16..=0x03FF {
            let h = f16::from_bits(bits);
            assert!(h.is_subnormal());
            assert_eq!(f16::from_f32(h.to_f32()).to_bits(), bits);
        }
    }

    #[test]
    fn all_finite_bit_patterns_roundtrip_exactly() {
        // Exhaustive: every finite f16 widens to f32 and narrows back bit-identically.
        for bits in 0u16..=0xFFFF {
            let h = f16::from_bits(bits);
            if h.is_nan() {
                assert!(f16::from_f32(h.to_f32()).is_nan());
            } else {
                assert_eq!(
                    f16::from_f32(h.to_f32()).to_bits(),
                    bits,
                    "bits {bits:#06x}"
                );
            }
        }
    }

    #[test]
    fn rounding_is_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and 1+2^-10; even -> 1.0.
        let x = 1.0f32 + 2.0f32.powi(-11);
        assert_eq!(f16::from_f32(x).to_bits(), 0x3C00);
        // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9; even -> 1+2^-9.
        let y = 1.0f32 + 3.0 * 2.0f32.powi(-11);
        assert_eq!(f16::from_f32(y).to_bits(), 0x3C02);
        // Slightly above halfway rounds up.
        let z = 1.0f32 + 2.0f32.powi(-11) + 2.0f32.powi(-20);
        assert_eq!(f16::from_f32(z).to_bits(), 0x3C01);
    }

    #[test]
    fn rounding_error_bound_holds() {
        // |round(x) - x| <= |x| * 2^-11 for normal-range x.
        let mut x = 6.2e-5f32;
        while x < 6.0e4 {
            let e = (roundtrip(x) - x).abs();
            assert!(e <= x * f16::STORAGE_ROUNDOFF * 1.0001, "x={x} err={e}");
            x *= 1.37;
        }
    }

    #[test]
    fn nan_propagates() {
        assert!(f16::from_f32(f32::NAN).is_nan());
        assert!(f16::NAN.to_f32().is_nan());
        assert!(f16::NAN.is_nan());
        assert!(!f16::INFINITY.is_nan());
        assert!(f16::INFINITY.is_infinite());
        assert!(!f16::MAX.is_infinite());
        assert!(f16::MAX.is_finite());
    }

    #[test]
    fn ordering_matches_f32_ordering() {
        let vals = [-65504.0f32, -1.5, -0.0, 0.0, 1.0e-7, 0.3, 1.0, 1.5, 65504.0];
        for &a in &vals {
            for &b in &vals {
                let (ha, hb) = (f16::from_f32(a), f16::from_f32(b));
                assert_eq!(
                    ha.partial_cmp(&hb),
                    ha.to_f32().partial_cmp(&hb.to_f32()),
                    "ordering mismatch for {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn abs_and_sign() {
        assert_eq!(f16::from_f32(-2.5).abs(), f16::from_f32(2.5));
        assert!(f16::from_f32(-2.5).is_sign_negative());
        assert!(!f16::from_f32(2.5).is_sign_negative());
        assert!(f16::NEG_ZERO.is_sign_negative());
    }

    #[test]
    fn from_f64_matches_from_f32_for_representables() {
        for i in -100..=100 {
            let x = i as f64 * 0.125;
            assert_eq!(
                f16::from_f64(x).to_bits(),
                f16::from_f32(x as f32).to_bits()
            );
        }
    }
}
