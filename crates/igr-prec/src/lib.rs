//! Precision substrate for the IGR solver stack.
//!
//! The paper stores state in IEEE 754 binary16 ("FP16") while computing in
//! FP32, which halves the memory footprint and doubles the maximum problem
//! size relative to pure FP32 (§5.6). Rust has no stable `f16`, and the
//! sanctioned dependency set has no half-precision crate, so this crate
//! implements binary16 from scratch:
//!
//! * [`f16`](struct@f16) — a bit-exact software binary16 with round-to-nearest-even
//!   conversions from/to `f32`, subnormal handling, and total-order helpers.
//! * [`Real`] — the compute-precision abstraction (implemented for `f32` and
//!   `f64`) that lets every kernel in `igr-core`/`igr-baseline` be generic
//!   over compute precision.
//! * [`Storage`] + [`PrecisionMode`] — the storage-precision abstraction: a
//!   field array stores `f16`/`f32`/`f64` and exposes loads/stores in the
//!   compute type, mirroring the paper's FP16-storage/FP32-compute split.

mod half;
mod real;
mod storage;

pub use half::f16;
pub use real::Real;
pub use storage::{MixedVec, PrecisionMode, Storage, StoreF16, StoreF32, StoreF64};

/// Bytes used to *store* one scalar in each precision mode.
///
/// This is the quantity that enters the paper's memory-footprint arithmetic
/// (17 floats per cell; FP16 storage halves it relative to FP32).
pub const fn bytes_per_scalar(mode: PrecisionMode) -> usize {
    match mode {
        PrecisionMode::Fp64 => 8,
        PrecisionMode::Fp32 => 4,
        PrecisionMode::Fp16Fp32 => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_per_scalar_matches_modes() {
        assert_eq!(bytes_per_scalar(PrecisionMode::Fp64), 8);
        assert_eq!(bytes_per_scalar(PrecisionMode::Fp32), 4);
        assert_eq!(bytes_per_scalar(PrecisionMode::Fp16Fp32), 2);
    }
}
