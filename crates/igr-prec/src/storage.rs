//! Storage-precision abstraction: how field arrays live in memory.
//!
//! The paper's mixed-precision strategy (§5.6) stores conserved variables in
//! FP16 while all arithmetic happens in FP32. [`Storage`] captures that
//! split: a storage format `S: Storage<R>` holds scalars in some packed form
//! and loads/stores them in the compute type `R`. [`MixedVec`] is the
//! resulting field container used by the solvers.

use crate::half::f16;
use crate::real::Real;

/// Runtime tag for the three precision configurations evaluated in the paper
/// (Table 3 rows: FP64, FP32, FP16/32).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PrecisionMode {
    /// FP64 compute, FP64 storage.
    Fp64,
    /// FP32 compute, FP32 storage.
    Fp32,
    /// FP32 compute, FP16 storage — the paper's mixed mode.
    Fp16Fp32,
}

impl PrecisionMode {
    pub const ALL: [PrecisionMode; 3] = [
        PrecisionMode::Fp64,
        PrecisionMode::Fp32,
        PrecisionMode::Fp16Fp32,
    ];

    /// Label matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            PrecisionMode::Fp64 => "FP64",
            PrecisionMode::Fp32 => "FP32",
            PrecisionMode::Fp16Fp32 => "FP16/32",
        }
    }
}

impl std::fmt::Display for PrecisionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A storage format for compute type `R`.
///
/// `Packed` is the in-memory representation; `load`/`store` convert at the
/// memory boundary, exactly where a GPU's FP16 load/store units would.
pub trait Storage<R: Real>: Copy + Send + Sync + 'static {
    type Packed: Copy + Default + Send + Sync + 'static;

    const BYTES: usize;
    const MODE: PrecisionMode;

    fn pack(x: R) -> Self::Packed;
    fn unpack(p: Self::Packed) -> R;
}

/// FP64 storage for FP64 compute.
#[derive(Clone, Copy, Debug, Default)]
pub struct StoreF64;

impl Storage<f64> for StoreF64 {
    type Packed = f64;
    const BYTES: usize = 8;
    const MODE: PrecisionMode = PrecisionMode::Fp64;

    #[inline(always)]
    fn pack(x: f64) -> f64 {
        x
    }
    #[inline(always)]
    fn unpack(p: f64) -> f64 {
        p
    }
}

/// FP32 storage for FP32 compute.
#[derive(Clone, Copy, Debug, Default)]
pub struct StoreF32;

impl Storage<f32> for StoreF32 {
    type Packed = f32;
    const BYTES: usize = 4;
    const MODE: PrecisionMode = PrecisionMode::Fp32;

    #[inline(always)]
    fn pack(x: f32) -> f32 {
        x
    }
    #[inline(always)]
    fn unpack(p: f32) -> f32 {
        p
    }
}

/// FP16 storage for FP32 compute — the paper's mixed-precision mode.
#[derive(Clone, Copy, Debug, Default)]
pub struct StoreF16;

impl Storage<f32> for StoreF16 {
    type Packed = f16;
    const BYTES: usize = 2;
    const MODE: PrecisionMode = PrecisionMode::Fp16Fp32;

    #[inline(always)]
    fn pack(x: f32) -> f16 {
        f16::from_f32(x)
    }
    #[inline(always)]
    fn unpack(p: f16) -> f32 {
        p.to_f32()
    }
}

/// A field array with storage precision decoupled from compute precision.
///
/// This is a thin, allocation-conscious wrapper over a `Vec` of packed
/// scalars; the solvers use it for the persistent state (the `17 N` floats of
/// §5.2) while keeping all thread-local temporaries in the compute type.
#[derive(Clone, Debug)]
pub struct MixedVec<R: Real, S: Storage<R>> {
    data: Vec<S::Packed>,
    _marker: std::marker::PhantomData<(R, S)>,
}

impl<R: Real, S: Storage<R>> MixedVec<R, S> {
    /// Zero-initialized array of `n` scalars.
    pub fn zeros(n: usize) -> Self {
        MixedVec {
            data: vec![S::Packed::default(); n],
            _marker: std::marker::PhantomData,
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Bytes of backing storage (the paper's footprint accounting unit).
    pub fn storage_bytes(&self) -> usize {
        self.data.len() * S::BYTES
    }

    #[inline(always)]
    pub fn get(&self, i: usize) -> R {
        S::unpack(self.data[i])
    }

    #[inline(always)]
    pub fn set(&mut self, i: usize, x: R) {
        self.data[i] = S::pack(x);
    }

    /// Raw packed slice (for halo packing / I/O).
    pub fn packed(&self) -> &[S::Packed] {
        &self.data
    }

    pub fn packed_mut(&mut self) -> &mut [S::Packed] {
        &mut self.data
    }

    /// Unpack the whole array into a compute-precision `Vec`.
    pub fn to_compute_vec(&self) -> Vec<R> {
        self.data.iter().map(|&p| S::unpack(p)).collect()
    }

    /// Overwrite from a compute-precision slice (packs every element).
    pub fn copy_from_compute(&mut self, src: &[R]) {
        assert_eq!(src.len(), self.data.len());
        for (d, &s) in self.data.iter_mut().zip(src) {
            *d = S::pack(s);
        }
    }

    pub fn fill(&mut self, x: R) {
        let p = S::pack(x);
        self.data.iter_mut().for_each(|d| *d = p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_storage_is_lossless() {
        let mut v: MixedVec<f64, StoreF64> = MixedVec::zeros(8);
        v.set(3, 0.1234567890123456789);
        assert_eq!(v.get(3), 0.1234567890123456789);
        assert_eq!(v.storage_bytes(), 64);
    }

    #[test]
    fn f16_storage_rounds_but_bounds_error() {
        let mut v: MixedVec<f32, StoreF16> = MixedVec::zeros(4);
        let x = 1.2345678f32;
        v.set(0, x);
        let err = (v.get(0) - x).abs();
        assert!(err > 0.0, "1.2345678 is not representable in binary16");
        assert!(err <= x * f16::STORAGE_ROUNDOFF);
        assert_eq!(v.storage_bytes(), 8);
    }

    #[test]
    fn mixed_modes_report_bytes() {
        assert_eq!(<StoreF64 as Storage<f64>>::BYTES, 8);
        assert_eq!(<StoreF32 as Storage<f32>>::BYTES, 4);
        assert_eq!(<StoreF16 as Storage<f32>>::BYTES, 2);
        assert_eq!(<StoreF16 as Storage<f32>>::MODE, PrecisionMode::Fp16Fp32);
    }

    #[test]
    fn copy_roundtrip_through_compute_vec() {
        let src: Vec<f32> = (0..16).map(|i| i as f32 * 0.25).collect();
        let mut v: MixedVec<f32, StoreF16> = MixedVec::zeros(16);
        v.copy_from_compute(&src);
        // Quarter-integers up to 4 are exactly representable in binary16.
        assert_eq!(v.to_compute_vec(), src);
    }

    #[test]
    fn fill_sets_every_element() {
        let mut v: MixedVec<f32, StoreF32> = MixedVec::zeros(5);
        v.fill(2.5);
        assert!(v.to_compute_vec().iter().all(|&x| x == 2.5));
    }

    #[test]
    fn labels_match_paper_tables() {
        assert_eq!(PrecisionMode::Fp64.label(), "FP64");
        assert_eq!(PrecisionMode::Fp32.label(), "FP32");
        assert_eq!(PrecisionMode::Fp16Fp32.label(), "FP16/32");
        assert_eq!(PrecisionMode::ALL.len(), 3);
    }
}
