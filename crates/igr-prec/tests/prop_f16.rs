//! Property-based tests for the software binary16 implementation.
//!
//! The reference for correct narrowing is a bit-level reimplementation via
//! integer arithmetic on `f64` (exact for all f32 inputs), plus algebraic
//! invariants (monotonicity, sign symmetry, error bounds) that any correct
//! IEEE round-to-nearest-even conversion must satisfy.

use igr_prec::f16;
use proptest::prelude::*;

/// Reference narrowing: round an f64 value to the binary16 grid by scaling to
/// integer significand space and using round-half-to-even integer rounding.
fn reference_narrow(x: f64) -> f16 {
    if x.is_nan() {
        return f16::NAN;
    }
    let sign = if x.is_sign_negative() { 0x8000u16 } else { 0 };
    let a = x.abs();
    if a == 0.0 {
        return f16::from_bits(sign);
    }
    // Max finite binary16 is 65504; the rounding boundary to infinity is 65520.
    if a >= 65520.0 {
        return f16::from_bits(sign | 0x7C00);
    }
    // Find the binary16 quantum for this magnitude.
    let e = a.log2().floor() as i32;
    let e = e.clamp(-14, 15); // subnormals share the 2^-14 quantum scale
    let quantum = 2f64.powi(e - 10);
    let q = a / quantum;
    // round half to even on q
    let fl = q.floor();
    let frac = q - fl;
    let mut n = if frac > 0.5 {
        fl + 1.0
    } else if frac < 0.5 {
        fl
    } else if (fl as u64) % 2 == 0 {
        fl
    } else {
        fl + 1.0
    };
    let mut e = e;
    // Rounding may push the significand to 2048 => bump exponent.
    if n >= 2048.0 {
        n /= 2.0;
        e += 1;
        if e > 15 {
            return f16::from_bits(sign | 0x7C00);
        }
    }
    let val = n * 2f64.powi(e - 10);
    // Reconstruct bits from the exact value.
    if val == 0.0 {
        return f16::from_bits(sign);
    }
    let ee = val.log2().floor() as i32;
    if ee < -14 {
        // subnormal: value = m * 2^-24
        let m = (val / 2f64.powi(-24)).round() as u16;
        f16::from_bits(sign | m)
    } else {
        let m = (val / 2f64.powi(ee - 10)) as u64;
        debug_assert!((1024..2048).contains(&m));
        f16::from_bits(sign | (((ee + 15) as u16) << 10) | ((m as u16) & 0x3FF))
    }
}

proptest! {
    #[test]
    fn narrow_matches_reference(bits in any::<u32>()) {
        let x = f32::from_bits(bits);
        prop_assume!(!x.is_nan());
        let got = f16::from_f32(x);
        let want = reference_narrow(x as f64);
        prop_assert_eq!(got.to_bits(), want.to_bits(),
            "x={} got={:#06x} want={:#06x}", x, got.to_bits(), want.to_bits());
    }

    #[test]
    fn widening_then_narrowing_is_identity(bits in any::<u16>()) {
        let h = f16::from_bits(bits);
        prop_assume!(!h.is_nan());
        prop_assert_eq!(f16::from_f32(h.to_f32()).to_bits(), bits);
    }

    #[test]
    fn narrowing_is_monotone(a in -7e4f32..7e4, b in -7e4f32..7e4) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let (hl, hh) = (f16::from_f32(lo).to_f32(), f16::from_f32(hi).to_f32());
        prop_assert!(hl <= hh, "monotonicity violated: {lo} -> {hl}, {hi} -> {hh}");
    }

    #[test]
    fn narrowing_is_sign_symmetric(x in -7e4f32..7e4) {
        let pos = f16::from_f32(x.abs()).to_bits();
        let neg = f16::from_f32(-x.abs()).to_bits();
        prop_assert_eq!(pos | 0x8000, neg | 0x8000);
        prop_assert_eq!(pos & 0x7FFF, neg & 0x7FFF);
    }

    #[test]
    fn relative_error_bounded_in_normal_range(x in 6.2e-5f32..6.5e4) {
        let r = f16::from_f32(x).to_f32();
        let rel = ((r - x) / x).abs();
        prop_assert!(rel <= f16::STORAGE_ROUNDOFF, "x={x} r={r} rel={rel}");
    }

    #[test]
    fn absolute_error_bounded_in_subnormal_range(x in -6.1e-5f32..6.1e-5) {
        // In the subnormal range the quantum is 2^-24; nearest rounding is
        // within half a quantum.
        let r = f16::from_f32(x).to_f32();
        prop_assert!((r - x).abs() <= 2f32.powi(-25) * 1.0001);
    }

    #[test]
    fn nearest_property_no_closer_representable(bits in any::<u16>(), x in -65519.0f32..65519.0) {
        // The chosen value is at least as close to x as an arbitrary other
        // representable value. (Restricted to the non-overflow range: beyond
        // +-65520 IEEE nearest rounding saturates to infinity by definition.)
        let chosen = f16::from_f32(x);
        let other = f16::from_bits(bits);
        prop_assume!(!other.is_nan() && !other.is_infinite());
        let dc = (chosen.to_f32() - x).abs();
        let do_ = (other.to_f32() - x).abs();
        prop_assert!(dc <= do_, "x={x}: chosen {} worse than {}", chosen.to_f32(), other.to_f32());
    }
}
