//! The scenario DSL: a declarative, hashable description of one run.
//!
//! A [`ScenarioSpec`] captures everything that determines a simulation's
//! result — base case, resolution, precision, scheme, engine-layout
//! overrides (engine-out sets, gimbal schedules, ambient backpressure), and
//! solver knobs — in plain data. Two consequences:
//!
//! * the executor can **deduplicate and cache** runs by the spec's stable
//!   [content hash](ScenarioSpec::content_hash) (same physics ⇒ same hash,
//!   any physics change ⇒ new hash);
//! * sweeps ([`crate::sweep`]) can enumerate thousands of scenarios without
//!   touching solver machinery.

use igr_app::cases::{self, CaseSetup};
use igr_app::jets::{self, GimbalSchedule, JetConditions, ScheduledJetInflow};
use igr_core::bc::Bc;
use igr_grid::Axis;
use igr_prec::PrecisionMode;
use std::sync::Arc;

/// Which solver scheme runs the scenario.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchemeKind {
    /// Information geometric regularization (the paper's method).
    Igr,
    /// WENO5-JS + HLLC (the state-of-the-art baseline).
    WenoBaseline,
}

impl SchemeKind {
    /// Short name used in scenario names, reports, and the wire protocol.
    pub fn name(self) -> &'static str {
        match self {
            SchemeKind::Igr => "igr",
            SchemeKind::WenoBaseline => "weno",
        }
    }
}

/// The case-library workload a scenario starts from.
#[derive(Clone, Debug, PartialEq)]
pub enum BaseCase {
    /// Sod shock tube (1-D validation workload).
    Sod,
    /// Steepening wave (Fig. 2a).
    SteepeningWave {
        /// Velocity amplitude of the initial wave.
        amp: f64,
    },
    /// Shu–Osher shock/entropy-wave interaction.
    ShuOsher,
    /// 2-D isentropic vortex (smooth-accuracy workload).
    IsentropicVortex,
    /// Single Mach-10 jet in 3-D (Table 3's representative problem).
    SingleJet3d,
    /// Three engines in a row, 2-D, noise-seeded (Fig. 5).
    ThreeEngine2d {
        /// Amplitude of the seeded initial-field noise.
        noise_amp: f64,
        /// PRNG seed for the noise field.
        seed: u64,
    },
    /// `engines` engines in a 2-D row (the base-heating sweep workload).
    EngineRow2d {
        /// How many engines the row carries.
        engines: usize,
    },
    /// The 33-engine Super-Heavy-inspired array, 3-D (Fig. 1).
    SuperHeavy3d,
}

impl BaseCase {
    /// Short name used in derived scenario names and reports.
    pub fn name(&self) -> String {
        match self {
            BaseCase::Sod => "sod".into(),
            BaseCase::SteepeningWave { .. } => "steepening-wave".into(),
            BaseCase::ShuOsher => "shu-osher".into(),
            BaseCase::IsentropicVortex => "isentropic-vortex".into(),
            BaseCase::SingleJet3d => "single-jet-3d".into(),
            BaseCase::ThreeEngine2d { .. } => "three-engine-2d".into(),
            BaseCase::EngineRow2d { engines } => format!("engine-row{engines}-2d"),
            BaseCase::SuperHeavy3d => "super-heavy-33".into(),
        }
    }

    /// Does this base case carry an engine array (and thus accept
    /// engine-layout overrides)?
    pub fn is_jet(&self) -> bool {
        matches!(
            self,
            BaseCase::SingleJet3d
                | BaseCase::ThreeEngine2d { .. }
                | BaseCase::EngineRow2d { .. }
                | BaseCase::SuperHeavy3d
        )
    }

    fn build(&self, n: usize) -> CaseSetup {
        match self {
            BaseCase::Sod => cases::sod(n),
            BaseCase::SteepeningWave { amp } => cases::steepening_wave(n, *amp),
            BaseCase::ShuOsher => cases::shu_osher(n),
            BaseCase::IsentropicVortex => cases::isentropic_vortex(n),
            BaseCase::SingleJet3d => cases::single_jet_3d(n),
            BaseCase::ThreeEngine2d { noise_amp, seed } => {
                cases::three_engine_2d(n, *noise_amp, *seed)
            }
            BaseCase::EngineRow2d { engines } => {
                cases::engine_row_2d(n, *engines, JetConditions::mach10())
            }
            BaseCase::SuperHeavy3d => cases::super_heavy_3d(n),
        }
    }
}

/// A closed-loop gimbal feedback controller riding on a scenario — the
/// campaign-facing mirror of [`igr_app::driver::GimbalFeedbackController`].
///
/// The controller observes the probe-sampled thrust-asymmetry cost every
/// `every` timed steps and issues `SetGimbal` actions proportional to the
/// measured base-heating centroid offset. All three knobs are physics:
/// they change the actions applied mid-run and therefore the result, so
/// the whole struct is **part of the content hash** (as a trailing
/// optional tag — specs without a controller keep their existing hashes).
#[derive(Clone, Debug, PartialEq)]
pub struct ControllerSpec {
    /// Proportional gain mapping centroid offset to commanded gimbal angle.
    pub gain: f64,
    /// Gimbal slew rate (rad per unit time) for the issued ramps; `0.0`
    /// means snap instantly to the commanded angle.
    pub rate: f64,
    /// Fire the control law every `every` timed steps (>= 1).
    pub every: usize,
}

impl ControllerSpec {
    /// A proportional controller with the given gain, snapping gimbals
    /// instantly and firing on every step.
    pub fn proportional(gain: f64) -> Self {
        ControllerSpec {
            gain,
            rate: 0.0,
            every: 1,
        }
    }
}

/// A self-healing recovery policy riding on a scenario — the campaign-facing
/// mirror of [`igr_app::RecoveryPolicy`].
///
/// When set, the executor drives the run through the recovering run-loop: a
/// ring of in-memory snapshots, rollback on divergence, and a backed-off
/// fixed dt held for a window after each rollback. The knobs are **physics**:
/// once a rollback fires, the dt schedule (and therefore the trajectory)
/// depends on them, so the whole struct is part of the content hash — as a
/// trailing optional tag, so recovery-free specs keep their existing hashes.
#[derive(Clone, Debug, PartialEq)]
pub struct RecoverySpec {
    /// How many healthy snapshots the in-memory ring retains (>= 1).
    pub snapshot_ring_depth: usize,
    /// Snapshot (and divergence-scan) cadence in absolute steps (>= 1).
    pub snapshot_every: usize,
    /// Rollbacks tolerated per divergence chain before the run fails (>= 1).
    pub max_retries: usize,
    /// Each retry multiplies the backed-off dt by this factor (in (0, 1)).
    pub dt_backoff_factor: f64,
    /// Steps the backed-off dt is pinned after a rollback (>= 1).
    pub backoff_hold_steps: usize,
}

impl Default for RecoverySpec {
    /// Mirrors [`igr_app::RecoveryPolicy::default`].
    fn default() -> Self {
        RecoverySpec {
            snapshot_ring_depth: 2,
            snapshot_every: 16,
            max_retries: 3,
            dt_backoff_factor: 0.5,
            backoff_hold_steps: 32,
        }
    }
}

impl RecoverySpec {
    /// The driver-level policy this spec configures.
    pub fn to_policy(&self) -> igr_app::RecoveryPolicy {
        igr_app::RecoveryPolicy {
            snapshot_ring_depth: self.snapshot_ring_depth,
            snapshot_every: self.snapshot_every,
            max_retries: self.max_retries,
            dt_backoff_factor: self.dt_backoff_factor,
            backoff_hold_steps: self.backoff_hold_steps,
        }
    }
}

/// A declarative description of one parameterized run.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSpec {
    /// Optional human label. **Excluded from the content hash**: labels name
    /// a scenario, they don't change its physics, so relabeled resubmissions
    /// still hit the result cache.
    pub label: Option<String>,
    /// The case-library workload the scenario starts from.
    pub base: BaseCase,
    /// Resolution parameter passed to the case constructor (cells across
    /// the characteristic length; the constructor fixes the aspect ratio).
    pub resolution: usize,
    /// FP64, FP32, or FP16-storage/FP32-compute.
    pub precision: PrecisionMode,
    /// IGR or the WENO baseline.
    pub scheme: SchemeKind,
    /// Untimed warm-up steps before measurement.
    pub warmup: usize,
    /// Timed steps.
    pub steps: usize,
    /// Engine indices (into the base layout) shut down — §3's engine-failure
    /// scenarios. Sorted and deduplicated by [`Self::normalize`].
    pub engine_out: Vec<usize>,
    /// Per-engine gimbal schedules, `(engine index into the base layout,
    /// schedule)` — thrust-vectoring overrides. Indices refer to the layout
    /// *before* engine-out removal and must not collide with it.
    pub gimbal: Vec<(usize, GimbalSchedule)>,
    /// Ambient backpressure override: the altitude condition. `Some(p)`
    /// replaces the jet conditions with Mach-10 exhaust into ambient
    /// pressure `p` (under-expanded for `p < 1`).
    pub backpressure: Option<f64>,
    /// CFL override (None = case default).
    pub cfl: Option<f64>,
    /// Elliptic-sweep-count override (IGR only; None = default).
    pub elliptic_sweeps: Option<usize>,
    /// IGR strength prefactor override (None = default).
    pub alpha_factor: Option<f64>,
    /// Run decomposed over this many `igr-comm` thread-ranks (IGR/FP64
    /// only). None or Some(1) = single-block run.
    pub ranks: Option<usize>,
    /// Record a diagnostics [`igr_app::diagnostics::Sample`] every `n`
    /// timed steps; the series rides in the result
    /// ([`crate::report::ScenarioResult::series`]) and persists in the
    /// store. **Part of the content hash when set** (it changes what the
    /// result record contains), encoded as a trailing optional tag so
    /// `None` specs keep their pre-existing hashes.
    pub series_every: Option<usize>,
    /// Autosave a restart checkpoint every `n` timed steps (requires
    /// [`crate::exec::ExecConfig::checkpoint_dir`]). Single-block scenarios
    /// write one `<hash>.ckpt`; decomposed (`ranks > 1`) scenarios write one
    /// `<hash>.rank<N>.ckpt` per rank, validated as a set on resume.
    /// **Excluded from the content hash**, like `label`: resume is
    /// bitwise-identical to an uninterrupted run, so the policy does not
    /// change the physics *or* the recorded result.
    pub checkpoint_every: Option<usize>,
    /// Closed-loop gimbal feedback controller (jet cases, IGR scheme,
    /// single-block only). **Part of the content hash when set** — the
    /// controller mutates boundary conditions mid-run, so its knobs are
    /// physics. Encoded as a trailing optional tag after `series`, so every
    /// controller-free spec keeps its pre-existing hash.
    pub controller: Option<ControllerSpec>,
    /// Self-healing recovery policy (IGR scheme, single-block only).
    /// **Part of the content hash when set** — after a rollback the dt
    /// schedule depends on these knobs, so they are physics. Encoded as a
    /// trailing optional tag after `ctrl`, so every recovery-free spec keeps
    /// its pre-existing hash.
    pub recovery: Option<RecoverySpec>,
}

impl ScenarioSpec {
    /// A single-block IGR/FP64 scenario of `base` at resolution `n` with no
    /// overrides — the starting point sweeps mutate.
    ///
    /// ```
    /// use igr_campaign::{BaseCase, ScenarioSpec};
    ///
    /// let mut spec = ScenarioSpec::new(BaseCase::EngineRow2d { engines: 3 }, 32);
    /// spec.engine_out = vec![1];          // §3: one engine fails…
    /// spec.backpressure = Some(0.25);     // …at altitude
    /// let h = spec.content_hash();        // stable across processes
    /// spec.label = Some("hero run".into());
    /// assert_eq!(spec.content_hash(), h, "labels don't change physics");
    /// ```
    pub fn new(base: BaseCase, resolution: usize) -> Self {
        ScenarioSpec {
            label: None,
            base,
            resolution,
            precision: PrecisionMode::Fp64,
            scheme: SchemeKind::Igr,
            warmup: 1,
            steps: 4,
            engine_out: Vec::new(),
            gimbal: Vec::new(),
            backpressure: None,
            cfl: None,
            elliptic_sweeps: None,
            alpha_factor: None,
            ranks: None,
            series_every: None,
            checkpoint_every: None,
            controller: None,
            recovery: None,
        }
    }

    /// Canonicalize order-insensitive fields so that equivalent specs hash
    /// identically: engine-out sets and gimbal lists are sorted and
    /// deduplicated (last schedule per engine wins), and gimbal overrides
    /// on shut-down engines are dropped — a dead engine's thrust vector is
    /// physically meaningless, so a cartesian sweep's `(out=[0], gimbal on
    /// 0)` point collapses onto `(out=[0])` and dedups against it.
    pub fn normalize(&mut self) {
        self.engine_out.sort_unstable();
        self.engine_out.dedup();
        self.gimbal.sort_by_key(|(i, _)| *i);
        self.gimbal.reverse();
        self.gimbal.dedup_by_key(|(i, _)| *i);
        self.gimbal.reverse();
        let out = std::mem::take(&mut self.engine_out);
        self.gimbal.retain(|(i, _)| !out.contains(i));
        self.engine_out = out;
        if self.ranks == Some(1) {
            self.ranks = None;
        }
    }

    /// Check the spec is executable before it reaches a worker.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.resolution < 8 {
            return Err(SpecError(format!(
                "resolution {} too coarse for the 5th-order stencil",
                self.resolution
            )));
        }
        if self.steps == 0 {
            return Err(SpecError("steps must be positive".into()));
        }
        if !self.base.is_jet() {
            if !self.engine_out.is_empty() || !self.gimbal.is_empty() || self.backpressure.is_some()
            {
                return Err(SpecError(format!(
                    "base case '{}' has no engine array: engine_out/gimbal/backpressure \
                     overrides do not apply",
                    self.base.name()
                )));
            }
        }
        if let Some(p) = self.backpressure {
            if p <= 0.0 {
                return Err(SpecError(format!("backpressure must be positive, got {p}")));
            }
        }
        if let Some(n) = self.ranks {
            if n == 0 {
                return Err(SpecError("ranks must be >= 1".into()));
            }
            if n > 1 && self.scheme != SchemeKind::Igr {
                return Err(SpecError(
                    "decomposed runs support the IGR scheme only".into(),
                ));
            }
            if n > 1 && self.precision != PrecisionMode::Fp64 {
                return Err(SpecError(
                    "decomposed runs support FP64 only (gather is FP64)".into(),
                ));
            }
        }
        if self.series_every == Some(0) {
            return Err(SpecError("series_every must be >= 1 when set".into()));
        }
        if self.checkpoint_every == Some(0) {
            return Err(SpecError("checkpoint_every must be >= 1 when set".into()));
        }
        if let Some(c) = &self.controller {
            if !self.base.is_jet() {
                return Err(SpecError(format!(
                    "base case '{}' has no engine array: a gimbal feedback \
                     controller does not apply",
                    self.base.name()
                )));
            }
            if self.scheme != SchemeKind::Igr {
                return Err(SpecError("controllers support the IGR scheme only".into()));
            }
            if self.ranks.is_some_and(|r| r > 1) {
                return Err(SpecError(
                    "controllers support single-block scenarios only".into(),
                ));
            }
            if c.every == 0 {
                return Err(SpecError("controller cadence must be >= 1".into()));
            }
            if !c.gain.is_finite() {
                return Err(SpecError(format!(
                    "controller gain must be finite, got {}",
                    c.gain
                )));
            }
            if !c.rate.is_finite() || c.rate < 0.0 {
                return Err(SpecError(format!(
                    "controller rate must be finite and non-negative, got {}",
                    c.rate
                )));
            }
        }
        if let Some(r) = &self.recovery {
            if self.scheme != SchemeKind::Igr {
                return Err(SpecError("recovery supports the IGR scheme only".into()));
            }
            if self.ranks.is_some_and(|n| n > 1) {
                return Err(SpecError(
                    "recovery supports single-block scenarios only".into(),
                ));
            }
            if self.controller.is_some() {
                return Err(SpecError(
                    "recovery re-runs windows after rollback; combining it with a \
                     feedback controller would double-apply control actions"
                        .into(),
                ));
            }
            if r.snapshot_ring_depth == 0 {
                return Err(SpecError("recovery ring depth must be >= 1".into()));
            }
            if r.snapshot_every == 0 {
                return Err(SpecError("recovery snapshot cadence must be >= 1".into()));
            }
            if r.max_retries == 0 {
                return Err(SpecError("recovery max_retries must be >= 1".into()));
            }
            if !(r.dt_backoff_factor > 0.0 && r.dt_backoff_factor < 1.0) {
                return Err(SpecError(format!(
                    "recovery dt backoff factor must be in (0, 1), got {}",
                    r.dt_backoff_factor
                )));
            }
            if r.backoff_hold_steps == 0 {
                return Err(SpecError("recovery backoff hold must be >= 1".into()));
            }
        }
        Ok(())
    }

    /// Stable 64-bit content hash over every physics-determining field
    /// (label excluded). FNV-1a over a canonical field-tagged encoding:
    /// independent of process, platform, and std hasher seeding, so it can
    /// key an on-disk result cache.
    ///
    /// The encoding is versioned (see [`CONTENT_HASH_VERSION`]): the version
    /// is folded into the hash itself, so hashes from incompatible encodings
    /// can never collide with current ones, and the on-disk store
    /// ([`crate::persist`]) additionally records the version per line and
    /// ignores stale entries on load.
    pub fn content_hash(&self) -> u64 {
        let mut h = Canon::new();
        h.tag("v");
        h.u64(CONTENT_HASH_VERSION);
        h.tag("base");
        match &self.base {
            BaseCase::Sod => h.tag("sod"),
            BaseCase::SteepeningWave { amp } => {
                h.tag("steepening");
                h.f64(*amp);
            }
            BaseCase::ShuOsher => h.tag("shu-osher"),
            BaseCase::IsentropicVortex => h.tag("vortex"),
            BaseCase::SingleJet3d => h.tag("single-jet"),
            BaseCase::ThreeEngine2d { noise_amp, seed } => {
                h.tag("three-engine");
                h.f64(*noise_amp);
                h.u64(*seed);
            }
            BaseCase::EngineRow2d { engines } => {
                h.tag("engine-row");
                h.u64(*engines as u64);
            }
            BaseCase::SuperHeavy3d => h.tag("super-heavy"),
        }
        h.tag("res");
        h.u64(self.resolution as u64);
        h.tag("prec");
        h.tag(match self.precision {
            PrecisionMode::Fp64 => "fp64",
            PrecisionMode::Fp32 => "fp32",
            PrecisionMode::Fp16Fp32 => "fp16fp32",
        });
        h.tag("scheme");
        h.tag(self.scheme.name());
        h.tag("warmup");
        h.u64(self.warmup as u64);
        h.tag("steps");
        h.u64(self.steps as u64);
        h.tag("out");
        let mut out = self.engine_out.clone();
        out.sort_unstable();
        out.dedup();
        for i in &out {
            h.u64(*i as u64);
        }
        h.tag("gimbal");
        // Mirror normalize() exactly: last schedule per engine wins, and
        // gimbal on a shut-down engine does not exist. A BTreeMap gives both
        // (later inserts overwrite) plus sorted iteration.
        let gim: std::collections::BTreeMap<usize, &GimbalSchedule> = self
            .gimbal
            .iter()
            .filter(|(i, _)| !out.contains(i))
            .map(|(i, s)| (*i, s))
            .collect();
        for (i, sched) in gim {
            h.u64(i as u64);
            for (t, a) in &sched.knots {
                h.f64(*t);
                h.f64(a[0]);
                h.f64(a[1]);
            }
        }
        h.tag("pamb");
        h.opt_f64(self.backpressure);
        h.tag("cfl");
        h.opt_f64(self.cfl);
        h.tag("sweeps");
        h.opt_u64(self.elliptic_sweeps.map(|s| s as u64));
        h.tag("alpha");
        h.opt_f64(self.alpha_factor);
        h.tag("ranks");
        h.opt_u64(self.ranks.map(|r| r as u64));
        // Trailing optional tags: folded in only when set, so every spec
        // without them hashes exactly as it did before the field existed
        // (the on-disk store stays warm across the upgrade). Tags are
        // length-prefixed, so present-vs-absent cannot collide.
        if let Some(n) = self.series_every {
            h.tag("series");
            h.u64(n as u64);
        }
        if let Some(c) = &self.controller {
            h.tag("ctrl");
            h.f64(c.gain);
            h.f64(c.rate);
            h.u64(c.every as u64);
        }
        if let Some(r) = &self.recovery {
            h.tag("recovery");
            h.u64(r.snapshot_ring_depth as u64);
            h.u64(r.snapshot_every as u64);
            h.u64(r.max_retries as u64);
            h.f64(r.dt_backoff_factor);
            h.u64(r.backoff_hold_steps as u64);
        }
        // checkpoint_every is deliberately NOT hashed (see its field doc).
        h.finish()
    }

    /// The content hash as a fixed-width hex string (report/cache key form).
    pub fn hash_hex(&self) -> String {
        format!("{:016x}", self.content_hash())
    }

    /// Human-readable name: the label if set, else derived from the
    /// parameters (`engine-row3-2d-n32+out[1]+pamb0.25+fp32+weno`).
    pub fn scenario_name(&self) -> String {
        if let Some(l) = &self.label {
            return l.clone();
        }
        let mut s = format!("{}-n{}", self.base.name(), self.resolution);
        if !self.engine_out.is_empty() {
            let ids: Vec<String> = self.engine_out.iter().map(|i| i.to_string()).collect();
            s.push_str(&format!("+out[{}]", ids.join(",")));
        }
        for (i, sched) in &self.gimbal {
            let a = sched.at(f64::INFINITY); // final angles
            if a[1] == 0.0 {
                s.push_str(&format!("+g{}@{:.2}", i, a[0]));
            } else {
                s.push_str(&format!("+g{}@{:.2},{:.2}", i, a[0], a[1]));
            }
            if sched.knots.len() > 1 {
                s.push('~'); // marks a time-varying schedule
            }
        }
        if let Some(p) = self.backpressure {
            s.push_str(&format!("+pamb{p:.3}"));
        }
        if let Some(c) = &self.controller {
            s.push_str(&format!("+ctrl{:.2}", c.gain));
            if c.rate != 0.0 {
                s.push_str(&format!("r{:.2}", c.rate));
            }
            if c.every != 1 {
                s.push_str(&format!("e{}", c.every));
            }
        }
        if let Some(r) = &self.recovery {
            s.push_str(&format!("+rec{}x{:.2}", r.max_retries, r.dt_backoff_factor));
        }
        s.push_str(match self.precision {
            PrecisionMode::Fp64 => "+fp64",
            PrecisionMode::Fp32 => "+fp32",
            PrecisionMode::Fp16Fp32 => "+fp16",
        });
        s.push('+');
        s.push_str(self.scheme.name());
        if let Some(r) = self.ranks {
            if r > 1 {
                s.push_str(&format!("+ranks{r}"));
            }
        }
        s
    }

    /// Materialize the spec into a runnable [`CaseSetup`], applying the
    /// engine-layout overrides on top of the base case.
    pub fn build_case(&self) -> Result<CaseSetup, SpecError> {
        self.validate()?;
        let mut case = self.base.build(self.resolution);
        case.name = self.scenario_name();

        let needs_rebuild =
            !self.engine_out.is_empty() || !self.gimbal.is_empty() || self.backpressure.is_some();
        if !needs_rebuild {
            return Ok(case);
        }

        // Rebuild the inflow with the overridden engine set/conditions,
        // reusing the base case's geometry (domain, plane, flow axis).
        let base_inflow = case
            .jet_inflow
            .as_ref()
            .expect("validate() guarantees a jet case here");
        let conditions = match self.backpressure {
            Some(p) => JetConditions::mach10_at_altitude(p),
            None => base_inflow.conditions,
        };

        // Static gimbal (schedule value at t = 0) is applied to the engine
        // structs so diagnostics see it; time variation goes through the
        // scheduled inflow profile below.
        let mut engines = base_inflow.engines.clone();
        for (i, sched) in &self.gimbal {
            if *i >= engines.len() {
                return Err(SpecError(format!(
                    "gimbal override for engine {i}, but the layout has {}",
                    engines.len()
                )));
            }
            engines[*i] = engines[*i].with_gimbal(sched.at(0.0));
        }
        for &i in &self.engine_out {
            if i >= engines.len() {
                return Err(SpecError(format!(
                    "engine-out index {i}, but the layout has {}",
                    engines.len()
                )));
            }
        }
        // Map scheduled indices through the engine-out removal.
        let survivors: Vec<usize> = (0..engines.len())
            .filter(|i| !self.engine_out.contains(i))
            .collect();
        let engines = jets::without_engines(engines, &self.engine_out);

        let flow_dim = base_inflow.flow_dim;
        let plane_dims = base_inflow.plane_dims;
        let name = case.name.clone();
        let mut rebuilt =
            cases::jet_case_with(name, case.domain, engines, plane_dims, flow_dim, conditions);
        // three_engine_2d seeds the initial field with noise; keep the base
        // case's initial state rather than the rebuilt plain-ambient one
        // when no backpressure change invalidates it.
        if self.backpressure.is_none() {
            rebuilt.init = case.init.clone();
        }

        // Time-varying schedules need the scheduled inflow profile on the
        // boundary (the static `jet_inflow` stays for diagnostics).
        let time_varying: Vec<(usize, GimbalSchedule)> = self
            .gimbal
            .iter()
            .filter(|(_, s)| s.knots.len() > 1)
            .filter_map(|(i, s)| {
                survivors
                    .iter()
                    .position(|&sv| sv == *i)
                    .map(|new_i| (new_i, s.clone()))
            })
            .collect();
        if !time_varying.is_empty() {
            let base = rebuilt
                .jet_inflow
                .as_ref()
                .expect("jet_case_with always sets the inflow");
            let scheduled = ScheduledJetInflow::new(
                jets::JetArrayInflow {
                    engines: base.engines.clone(),
                    conditions: base.conditions,
                    plane_dims: base.plane_dims,
                    flow_dim: base.flow_dim,
                    lip_width: base.lip_width,
                },
                time_varying,
            );
            let flow_axis = [Axis::X, Axis::Y, Axis::Z][flow_dim];
            rebuilt.bc = rebuilt
                .bc
                .with_face(flow_axis, 0, Bc::InflowProfile(Arc::new(scheduled)));
        }
        Ok(rebuilt)
    }

    /// The IGR config for this spec (case defaults + spec knob overrides).
    pub fn igr_config(&self, case: &CaseSetup) -> igr_core::IgrConfig {
        let mut cfg = case.igr_config();
        if let Some(c) = self.cfl {
            cfg.cfl = c;
        }
        if let Some(s) = self.elliptic_sweeps {
            cfg.sweeps = s;
        }
        if let Some(a) = self.alpha_factor {
            cfg.alpha_factor = a;
        }
        cfg
    }

    /// The WENO baseline config for this spec.
    pub fn weno_config(&self, case: &CaseSetup) -> igr_baseline::WenoConfig {
        let mut cfg = case.weno_config();
        if let Some(c) = self.cfl {
            cfg.cfl = c;
        }
        cfg
    }
}

/// A spec that cannot be executed (inconsistent overrides, bad parameters).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError(pub String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid scenario spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

/// Version of the canonical hash encoding. Bump whenever the encoding (or
/// the float canonicalization below) changes, so stale on-disk cache entries
/// keyed by an older encoding are never served for current specs.
///
/// History:
/// * **v1** (implicit, unversioned): floats hashed by raw `to_bits`, so
///   `-0.0` and `0.0` — the same physics — split into two hashes.
/// * **v2**: the version is folded into the stream, `-0.0` canonicalizes to
///   `0.0`, and every NaN canonicalizes to one quiet-NaN bit pattern before
///   hashing (physically identical specs share a content hash — mandatory
///   once hashes key an on-disk store).
pub const CONTENT_HASH_VERSION: u64 = 2;

/// FNV-1a over a canonical field-tagged byte stream. Tags separate fields
/// so `(warmup=1, steps=12)` and `(warmup=11, steps=2)` cannot collide by
/// concatenation; floats hash by canonicalized `to_bits` (`-0.0` folds onto
/// `0.0`, all NaNs fold onto one quiet-NaN pattern — exact otherwise).
struct Canon {
    h: u64,
}

impl Canon {
    fn new() -> Self {
        Canon {
            h: 0xcbf2_9ce4_8422_2325,
        }
    }

    fn byte(&mut self, b: u8) {
        self.h ^= b as u64;
        self.h = self.h.wrapping_mul(0x0000_0100_0000_01B3);
    }

    fn tag(&mut self, t: &str) {
        // Length-prefix the tag so tag boundaries are unambiguous.
        self.u64(t.len() as u64);
        for b in t.bytes() {
            self.byte(b);
        }
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    fn f64(&mut self, v: f64) {
        // Canonicalize before hashing: -0.0 == 0.0 physically, and every
        // NaN is the same (absent) value regardless of payload bits.
        let bits = if v.is_nan() {
            0x7ff8_0000_0000_0000 // the canonical quiet NaN
        } else if v == 0.0 {
            0 // folds -0.0 onto +0.0
        } else {
            v.to_bits()
        };
        self.u64(bits);
    }

    fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            None => self.byte(0),
            Some(x) => {
                self.byte(1);
                self.f64(x);
            }
        }
    }

    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.byte(0),
            Some(x) => {
                self.byte(1);
                self.u64(x);
            }
        }
    }

    fn finish(&self) -> u64 {
        self.h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jet_spec() -> ScenarioSpec {
        ScenarioSpec::new(BaseCase::EngineRow2d { engines: 3 }, 16)
    }

    #[test]
    fn hash_is_stable_and_label_independent() {
        let a = jet_spec();
        let mut b = jet_spec();
        assert_eq!(a.content_hash(), b.content_hash());
        b.label = Some("hero run".into());
        assert_eq!(
            a.content_hash(),
            b.content_hash(),
            "labels don't change physics"
        );
    }

    #[test]
    fn every_physics_field_perturbs_the_hash() {
        let base = jet_spec();
        let h0 = base.content_hash();
        let mut variants: Vec<ScenarioSpec> = Vec::new();
        variants.push(ScenarioSpec {
            base: BaseCase::SuperHeavy3d,
            ..base.clone()
        });
        variants.push(ScenarioSpec {
            resolution: 24,
            ..base.clone()
        });
        variants.push(ScenarioSpec {
            precision: PrecisionMode::Fp32,
            ..base.clone()
        });
        variants.push(ScenarioSpec {
            scheme: SchemeKind::WenoBaseline,
            ..base.clone()
        });
        variants.push(ScenarioSpec {
            warmup: 2,
            ..base.clone()
        });
        variants.push(ScenarioSpec {
            steps: 5,
            ..base.clone()
        });
        variants.push(ScenarioSpec {
            engine_out: vec![1],
            ..base.clone()
        });
        variants.push(ScenarioSpec {
            gimbal: vec![(0, GimbalSchedule::constant([0.1, 0.0]))],
            ..base.clone()
        });
        variants.push(ScenarioSpec {
            backpressure: Some(0.25),
            ..base.clone()
        });
        variants.push(ScenarioSpec {
            cfl: Some(0.3),
            ..base.clone()
        });
        variants.push(ScenarioSpec {
            elliptic_sweeps: Some(3),
            ..base.clone()
        });
        variants.push(ScenarioSpec {
            alpha_factor: Some(5.0),
            ..base.clone()
        });
        variants.push(ScenarioSpec {
            ranks: Some(2),
            ..base.clone()
        });
        variants.push(ScenarioSpec {
            series_every: Some(2),
            ..base.clone()
        });
        variants.push(ScenarioSpec {
            series_every: Some(3),
            ..base.clone()
        });
        variants.push(ScenarioSpec {
            controller: Some(ControllerSpec::proportional(1.5)),
            ..base.clone()
        });
        variants.push(ScenarioSpec {
            controller: Some(ControllerSpec::proportional(2.0)),
            ..base.clone()
        });
        variants.push(ScenarioSpec {
            controller: Some(ControllerSpec {
                gain: 1.5,
                rate: 0.5,
                every: 1,
            }),
            ..base.clone()
        });
        variants.push(ScenarioSpec {
            controller: Some(ControllerSpec {
                gain: 1.5,
                rate: 0.0,
                every: 5,
            }),
            ..base.clone()
        });
        variants.push(ScenarioSpec {
            recovery: Some(RecoverySpec::default()),
            ..base.clone()
        });
        variants.push(ScenarioSpec {
            recovery: Some(RecoverySpec {
                max_retries: 5,
                ..RecoverySpec::default()
            }),
            ..base.clone()
        });
        variants.push(ScenarioSpec {
            recovery: Some(RecoverySpec {
                dt_backoff_factor: 0.25,
                ..RecoverySpec::default()
            }),
            ..base.clone()
        });
        variants.push(ScenarioSpec {
            recovery: Some(RecoverySpec {
                snapshot_every: 8,
                ..RecoverySpec::default()
            }),
            ..base.clone()
        });
        variants.push(ScenarioSpec {
            recovery: Some(RecoverySpec {
                snapshot_ring_depth: 3,
                ..RecoverySpec::default()
            }),
            ..base.clone()
        });
        variants.push(ScenarioSpec {
            recovery: Some(RecoverySpec {
                backoff_hold_steps: 16,
                ..RecoverySpec::default()
            }),
            ..base.clone()
        });
        let mut seen = vec![h0];
        for v in &variants {
            let h = v.content_hash();
            assert!(!seen.contains(&h), "hash collision for {v:?}");
            seen.push(h);
        }
    }

    #[test]
    fn duplicate_gimbal_entries_hash_like_their_normalized_form() {
        // normalize() keeps the *last* schedule per engine; the hash must
        // agree with that semantics without requiring normalize() first.
        let mut dup = jet_spec();
        dup.gimbal = vec![
            (0, GimbalSchedule::constant([0.05, 0.0])),
            (0, GimbalSchedule::constant([0.1, 0.0])),
        ];
        let mut last = jet_spec();
        last.gimbal = vec![(0, GimbalSchedule::constant([0.1, 0.0]))];
        assert_eq!(dup.content_hash(), last.content_hash());
        let mut normalized = dup.clone();
        normalized.normalize();
        assert_eq!(normalized.gimbal, last.gimbal);
        assert_eq!(dup.content_hash(), normalized.content_hash());
    }

    #[test]
    fn negative_zero_hashes_like_positive_zero() {
        // The same physics must share one content hash — a gimbal angle of
        // -0.0 rad *is* 0.0 rad. (Pre-v2, to_bits split these.)
        let mut a = jet_spec();
        a.gimbal = vec![(0, GimbalSchedule::constant([0.0, 0.0]))];
        let mut b = jet_spec();
        b.gimbal = vec![(0, GimbalSchedule::constant([-0.0, -0.0]))];
        assert_eq!(a.content_hash(), b.content_hash());

        let wa = ScenarioSpec::new(BaseCase::SteepeningWave { amp: 0.0 }, 64);
        let wb = ScenarioSpec::new(BaseCase::SteepeningWave { amp: -0.0 }, 64);
        assert_eq!(wa.content_hash(), wb.content_hash());
    }

    #[test]
    fn nan_payloads_share_one_hash() {
        let mut a = ScenarioSpec::new(BaseCase::SteepeningWave { amp: f64::NAN }, 64);
        let b = ScenarioSpec::new(
            BaseCase::SteepeningWave {
                amp: f64::from_bits(0x7ff8_0000_0000_0001), // distinct payload
            },
            64,
        );
        assert_eq!(a.content_hash(), b.content_hash());
        // …but NaN is still distinct from every real amplitude.
        a.base = BaseCase::SteepeningWave { amp: 0.2 };
        assert_ne!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn hash_encoding_is_versioned() {
        // Golden value: locks the v2 encoding. If this assertion fires you
        // changed the canonical encoding — bump CONTENT_HASH_VERSION and
        // update the golden (the on-disk store keys off it).
        assert_eq!(CONTENT_HASH_VERSION, 2);
        let h = ScenarioSpec::new(BaseCase::Sod, 64).content_hash();
        assert_eq!(h, 0xe62c_84ef_880f_ea33);
    }

    #[test]
    fn checkpoint_policy_is_hash_neutral_like_labels() {
        // Resume is bitwise-identical to an uninterrupted run, so the
        // autosave cadence must not split the cache key: a resubmission
        // with checkpointing enabled still hits the cached result.
        let a = jet_spec();
        let mut b = jet_spec();
        b.checkpoint_every = Some(4);
        assert_eq!(a.content_hash(), b.content_hash());
        // But invalid cadences are rejected before execution.
        b.checkpoint_every = Some(0);
        assert!(b.validate().is_err());
        let mut c = jet_spec();
        c.series_every = Some(0);
        assert!(c.validate().is_err());
        let mut d = jet_spec();
        d.checkpoint_every = Some(2);
        d.ranks = Some(2);
        assert!(
            d.validate().is_ok(),
            "decomposed runs checkpoint per rank: {:?}",
            d.validate()
        );
        assert_eq!(
            d.content_hash(),
            {
                let mut plain = jet_spec();
                plain.ranks = Some(2);
                plain.content_hash()
            },
            "per-rank checkpointing stays hash-neutral too"
        );
    }

    #[test]
    fn controller_validation_gates_non_jet_schemes_and_ranks() {
        let mut s = ScenarioSpec::new(BaseCase::Sod, 64);
        s.controller = Some(ControllerSpec::proportional(1.0));
        assert!(s.validate().is_err(), "controllers need an engine array");

        let mut s = jet_spec();
        s.controller = Some(ControllerSpec::proportional(1.0));
        assert!(s.validate().is_ok());
        s.scheme = SchemeKind::WenoBaseline;
        assert!(s.validate().is_err(), "controllers are IGR-only");

        let mut s = jet_spec();
        s.controller = Some(ControllerSpec::proportional(1.0));
        s.ranks = Some(2);
        assert!(s.validate().is_err(), "controllers are single-block-only");

        let mut s = jet_spec();
        s.controller = Some(ControllerSpec {
            gain: 1.0,
            rate: 0.0,
            every: 0,
        });
        assert!(s.validate().is_err(), "cadence 0 never fires");
        let mut s = jet_spec();
        s.controller = Some(ControllerSpec::proportional(f64::NAN));
        assert!(s.validate().is_err(), "NaN gain is not a controller");
        let mut s = jet_spec();
        s.controller = Some(ControllerSpec {
            gain: 1.0,
            rate: -0.1,
            every: 1,
        });
        assert!(s.validate().is_err(), "negative slew rate is invalid");
    }

    #[test]
    fn controller_is_a_trailing_hash_tag() {
        // None must hash exactly like the pre-controller encoding (the
        // golden in hash_encoding_is_versioned pins this globally); Some
        // must perturb it.
        let a = jet_spec();
        let mut b = jet_spec();
        b.controller = Some(ControllerSpec::proportional(1.5));
        assert_ne!(a.content_hash(), b.content_hash());
        let name = b.scenario_name();
        assert!(name.contains("+ctrl1.50"), "{name}");
    }

    #[test]
    fn recovery_is_a_trailing_hash_tag() {
        // None hashes exactly like the pre-recovery encoding (the golden in
        // hash_encoding_is_versioned pins this globally); Some perturbs it.
        let a = jet_spec();
        let mut b = jet_spec();
        b.recovery = Some(RecoverySpec::default());
        assert_ne!(a.content_hash(), b.content_hash());
        let name = b.scenario_name();
        assert!(name.contains("+rec3x0.50"), "{name}");
    }

    #[test]
    fn recovery_validation_gates_schemes_ranks_controllers_and_knobs() {
        let mut s = jet_spec();
        s.recovery = Some(RecoverySpec::default());
        assert!(s.validate().is_ok());
        s.scheme = SchemeKind::WenoBaseline;
        assert!(s.validate().is_err(), "recovery is IGR-only");

        let mut s = jet_spec();
        s.recovery = Some(RecoverySpec::default());
        s.ranks = Some(2);
        assert!(s.validate().is_err(), "recovery is single-block-only");

        let mut s = jet_spec();
        s.recovery = Some(RecoverySpec::default());
        s.controller = Some(ControllerSpec::proportional(1.0));
        assert!(
            s.validate().is_err(),
            "re-run windows would double-apply control actions"
        );

        for bad in [
            RecoverySpec {
                snapshot_ring_depth: 0,
                ..RecoverySpec::default()
            },
            RecoverySpec {
                snapshot_every: 0,
                ..RecoverySpec::default()
            },
            RecoverySpec {
                max_retries: 0,
                ..RecoverySpec::default()
            },
            RecoverySpec {
                dt_backoff_factor: 0.0,
                ..RecoverySpec::default()
            },
            RecoverySpec {
                dt_backoff_factor: 1.0,
                ..RecoverySpec::default()
            },
            RecoverySpec {
                dt_backoff_factor: f64::NAN,
                ..RecoverySpec::default()
            },
            RecoverySpec {
                backoff_hold_steps: 0,
                ..RecoverySpec::default()
            },
        ] {
            let mut s = jet_spec();
            s.recovery = Some(bad.clone());
            assert!(s.validate().is_err(), "knob set {bad:?} must be rejected");
        }
    }

    #[test]
    fn engine_out_order_does_not_change_the_hash() {
        let mut a = jet_spec();
        a.engine_out = vec![2, 0];
        let mut b = jet_spec();
        b.engine_out = vec![0, 2, 2];
        assert_eq!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn overrides_on_non_jet_cases_are_rejected() {
        let mut s = ScenarioSpec::new(BaseCase::Sod, 64);
        s.backpressure = Some(0.5);
        assert!(s.validate().is_err());
        s.backpressure = None;
        s.engine_out = vec![0];
        assert!(s.validate().is_err());
    }

    #[test]
    fn build_case_applies_engine_out_and_backpressure() {
        let mut s = jet_spec();
        s.engine_out = vec![1];
        s.backpressure = Some(0.25);
        let case = s.build_case().unwrap();
        let inflow = case.jet_inflow.as_ref().unwrap();
        assert_eq!(inflow.engines.len(), 2);
        assert!((inflow.conditions.ambient.p - 0.25).abs() < 1e-14);
        assert!((inflow.conditions.pressure_ratio - 4.0).abs() < 1e-12);
    }

    #[test]
    fn build_case_applies_static_gimbal_to_survivors() {
        let mut s = jet_spec();
        s.engine_out = vec![0];
        s.gimbal = vec![(2, GimbalSchedule::constant([0.1, 0.0]))];
        let case = s.build_case().unwrap();
        let engines = &case.jet_inflow.as_ref().unwrap().engines;
        assert_eq!(engines.len(), 2);
        // Engine 2 of the base layout survives as index 1.
        assert_eq!(engines[1].gimbal, [0.1, 0.0]);
        assert_eq!(engines[0].gimbal, [0.0, 0.0]);
    }

    #[test]
    fn gimbal_on_removed_engine_collapses_onto_the_plain_engine_out_point() {
        let mut s = jet_spec();
        s.engine_out = vec![1];
        s.gimbal = vec![(1, GimbalSchedule::constant([0.1, 0.0]))];
        let mut plain = jet_spec();
        plain.engine_out = vec![1];
        assert_eq!(
            s.content_hash(),
            plain.content_hash(),
            "a dead engine's gimbal is physically meaningless"
        );
        s.normalize();
        assert!(s.gimbal.is_empty());
    }

    #[test]
    fn scenario_names_encode_the_overrides() {
        let mut s = jet_spec();
        s.engine_out = vec![0, 2];
        s.backpressure = Some(0.5);
        s.scheme = SchemeKind::WenoBaseline;
        let n = s.scenario_name();
        assert!(n.contains("out[0,2]"), "{n}");
        assert!(n.contains("pamb0.500"), "{n}");
        assert!(n.contains("weno"), "{n}");
        s.label = Some("hero".into());
        assert_eq!(s.scenario_name(), "hero");
    }
}
