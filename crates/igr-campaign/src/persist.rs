//! The on-disk result store: append-only JSON-lines keyed by content hash.
//!
//! [`ScenarioSpec::content_hash`](crate::spec::ScenarioSpec::content_hash)
//! is deliberately stable across processes and platforms (versioned FNV-1a
//! over a canonical encoding), so `hash → ScenarioResult` can outlive the
//! process that computed it. This module gives [`crate::store::ResultStore`]
//! that durability:
//!
//! * **Format** — one JSON object per line (`\n`-terminated). Every line
//!   carries `"v"` (the [`CONTENT_HASH_VERSION`] it was hashed under) and
//!   `"hash"` (16 hex digits) followed by the flattened [`ScenarioResult`].
//!   Floats are written in Rust's shortest round-trip decimal form; the
//!   non-finite values JSON cannot express are the strings `"NaN"`,
//!   `"inf"`, and `"-inf"` (a NaN with a non-default payload is
//!   `"NaN:<16 hex digits>"`, so every f64 bit pattern round-trips).
//! * **Load-on-open** ([`open`]) — every parseable, version-matching line
//!   becomes a cache entry (last write wins on duplicate hashes, so
//!   re-appended results converge on the most recent). Unparseable lines —
//!   the truncated tail a crash mid-append leaves, or garbage from a bad
//!   merge — are *skipped and counted*, never fatal: a cache must degrade
//!   to a smaller cache, not an error.
//! * **Append-on-insert** ([`AppendLog::append`]) — each insert writes one
//!   line and flushes, so a concurrently opened reader (or a crash) sees
//!   every completed result. If the recovered file did not end in a
//!   newline, the opener first writes one so the next append starts clean.
//!
//! The file is plain text: `cat`-able, `grep`-able, mergeable across
//! machines with `cat a.jsonl b.jsonl > merged.jsonl`.

use crate::report::{RunStatus, ScenarioResult};
use crate::spec::CONTENT_HASH_VERSION;
use igr_app::actions::{Action, ActionRecord};
use igr_app::base::BaseHeatingReport;
use igr_app::recovery::RecoveryRecord;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// What [`open`] found in an existing store file.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreRecovery {
    /// Entries loaded into the cache (after last-write-wins dedup this may
    /// exceed the resulting cache size).
    pub loaded: usize,
    /// Lines skipped: truncated tails, corrupt bytes, or entries written
    /// under a different [`CONTENT_HASH_VERSION`].
    pub skipped: usize,
}

/// The append half of an open store file.
#[derive(Debug)]
pub struct AppendLog {
    file: File,
    path: PathBuf,
}

impl AppendLog {
    /// Append one `hash → result` line and flush it to the OS.
    pub fn append(&mut self, hash: u64, result: &ScenarioResult) -> io::Result<()> {
        let line = encode_line(hash, result);
        // One write_all per line: O_APPEND keeps concurrent same-host
        // appenders from interleaving within a line.
        self.file.write_all(line.as_bytes())?;
        self.file.flush()
    }

    /// The backing file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Atomically replace the store file at `path` with exactly `entries` (one
/// line each, in the given order): write a sibling temp file, fsync-flush,
/// and rename it over the original. Returns a fresh append handle on the
/// rewritten file. This is [`compact`](crate::store::ResultStore::compact)'s
/// engine — a crash at any point leaves either the old file or the new one,
/// never a mix.
pub(crate) fn rewrite(path: &Path, entries: &[(u64, &ScenarioResult)]) -> io::Result<AppendLog> {
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".compact-tmp");
    let tmp = PathBuf::from(tmp);
    {
        let mut f = File::create(&tmp)?;
        for (hash, result) in entries {
            f.write_all(encode_line(*hash, result).as_bytes())?;
        }
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    let file = OpenOptions::new().append(true).open(path)?;
    Ok(AppendLog {
        file,
        path: path.to_path_buf(),
    })
}

/// Everything [`open`] hands back: recovered entries, recovery accounting,
/// and the append handle for future inserts.
pub struct LoadedStore {
    /// Every valid `(hash, result)` line, in file order (duplicates kept:
    /// the store layer's insert order makes the last one win).
    pub entries: Vec<(u64, ScenarioResult)>,
    /// How many lines loaded vs. were skipped.
    pub recovery: StoreRecovery,
    /// The append handle for future inserts.
    pub log: AppendLog,
}

/// Open (creating if absent) a store file: load every valid line, tolerate
/// a truncated/corrupt tail, and return an append handle positioned after
/// a trailing newline.
pub fn open(path: impl AsRef<Path>) -> io::Result<LoadedStore> {
    let path = path.as_ref().to_path_buf();
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let raw = match std::fs::read(&path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let text = String::from_utf8_lossy(&raw);
    let mut entries = Vec::new();
    let mut recovery = StoreRecovery::default();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match decode_line(line) {
            Ok((hash, result)) => {
                entries.push((hash, result));
                recovery.loaded += 1;
            }
            Err(_) => recovery.skipped += 1,
        }
    }
    let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
    // A crash mid-append leaves a partial final line with no newline;
    // terminate it so the next append starts a fresh line instead of
    // corrupting itself onto the tail.
    if !raw.is_empty() && raw.last() != Some(&b'\n') {
        file.write_all(b"\n")?;
        file.flush()?;
    }
    Ok(LoadedStore {
        entries,
        recovery,
        log: AppendLog { file, path },
    })
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// One result as one newline-terminated JSON line.
pub(crate) fn encode_line(hash: u64, r: &ScenarioResult) -> String {
    let mut s = encode_result_obj(hash, r);
    s.push('\n');
    s
}

/// Stable 64-bit digest of one stored result: FNV-1a over the canonical
/// store-line object (the same bytes the wire embeds and the store file
/// persists). Two stores hold "the same" result for a hash exactly when
/// their digests match bit for bit — the anti-entropy `SYNC` exchange
/// compares these instead of shipping full lines, so a converged federation
/// settles into digest-only traffic. Process- and platform-independent for
/// the same reason the content hash is: the line encoding is bit-exact.
pub fn result_digest(hash: u64, r: &ScenarioResult) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in encode_result_obj(hash, r).as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One result as one JSON object (no trailing newline) — the store-line
/// payload, also embedded verbatim in wire-protocol responses
/// ([`crate::protocol`]), so the two formats can never drift apart.
pub(crate) fn encode_result_obj(hash: u64, r: &ScenarioResult) -> String {
    let mut s = String::with_capacity(320);
    s.push_str(&format!(
        "{{\"v\":{CONTENT_HASH_VERSION},\"hash\":\"{hash:016x}\",\"name\":{}",
        json_str(&r.name)
    ));
    match &r.status {
        RunStatus::Completed => s.push_str(",\"status\":\"completed\""),
        RunStatus::Failed(msg) => s.push_str(&format!(
            ",\"status\":\"failed\",\"error\":{}",
            json_str(msg)
        )),
    }
    s.push_str(&format!(
        ",\"cells\":{},\"steps\":{},\"ranks\":{},\"wall_s\":{},\
         \"grind_ns_per_cell_step\":{},\"mass_drift\":{},\"energy_drift\":{}",
        r.cells,
        r.steps,
        r.ranks,
        json_f64(r.wall_s),
        json_f64(r.ns_per_cell_step),
        json_f64(r.mass_drift),
        json_f64(r.energy_drift),
    ));
    match &r.base_heating {
        None => s.push_str(",\"base_heating\":null"),
        Some(b) => s.push_str(&format!(
            ",\"base_heating\":{{\"heated_fraction\":{},\"recirculation_flux\":{},\
             \"mean_backflow_enthalpy\":{},\"peak_temperature\":{},\"mean_pressure\":{},\
             \"footprint_centroid\":[{},{}],\"cells_sampled\":{}}}",
            json_f64(b.heated_fraction),
            json_f64(b.recirculation_flux),
            json_f64(b.mean_backflow_enthalpy),
            json_f64(b.peak_temperature),
            json_f64(b.mean_pressure),
            json_f64(b.footprint_centroid[0]),
            json_f64(b.footprint_centroid[1]),
            b.cells_sampled,
        )),
    }
    // Trailing optional fields (absent keys decode as None, so stores
    // written before these existed keep loading).
    if let Some(rf) = r.resumed_from {
        s.push_str(&format!(",\"resumed_from\":{rf}"));
    }
    if let Some(series) = &r.series {
        s.push_str(&format!(
            ",\"series\":{{\"every\":{},\"samples\":[",
            series.every
        ));
        for (i, sm) in series.samples.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            // Positional row: [step, t, m, mx, my, mz, E, ke, mach, min_rho].
            s.push_str(&format!(
                "[{},{},{},{},{},{},{},{},{},{}]",
                sm.step,
                json_f64(sm.t),
                json_f64(sm.totals[0]),
                json_f64(sm.totals[1]),
                json_f64(sm.totals[2]),
                json_f64(sm.totals[3]),
                json_f64(sm.totals[4]),
                json_f64(sm.kinetic_energy),
                json_f64(sm.max_mach),
                json_f64(sm.min_rho),
            ));
        }
        s.push_str("]}");
    }
    if let Some(actions) = &r.actions {
        s.push_str(",\"actions\":[");
        for (i, rec) in actions.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&encode_action_record(rec));
        }
        s.push(']');
    }
    if let Some(recs) = &r.recoveries {
        s.push_str(",\"recoveries\":[");
        for (i, rec) in recs.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&encode_recovery_record(rec));
        }
        s.push(']');
    }
    s.push('}');
    s
}

/// One applied action as a store-JSON object. Step counters are full u64
/// and may exceed 2^53 (JSON numbers decode through f64 here), so they
/// encode as decimal *strings*; floats use the tagged [`json_f64`] form,
/// so every bit pattern — NaN payloads included — round-trips exactly.
pub(crate) fn encode_action_record(rec: &ActionRecord) -> String {
    let mut s = format!(
        "{{\"step\":\"{}\",\"t\":{},\"kind\":\"{}\"",
        rec.step,
        json_f64(rec.t),
        rec.action.kind_name()
    );
    match &rec.action {
        Action::SetGimbal {
            engine,
            target,
            rate,
        } => s.push_str(&format!(
            ",\"engine\":{},\"target\":[{},{}],\"rate\":{}",
            engine,
            json_f64(target[0]),
            json_f64(target[1]),
            json_f64(*rate)
        )),
        Action::EngineOut { engine } => s.push_str(&format!(",\"engine\":{engine}")),
        Action::SetBackpressure { pressure } => {
            s.push_str(&format!(",\"pressure\":{}", json_f64(*pressure)))
        }
        Action::SwapInflow {
            ambient_rho,
            ambient_p,
            mach,
            gamma,
            pressure_ratio,
            density_ratio,
        } => s.push_str(&format!(
            ",\"ambient_rho\":{},\"ambient_p\":{},\"mach\":{},\"gamma\":{},\
             \"pressure_ratio\":{},\"density_ratio\":{}",
            json_f64(*ambient_rho),
            json_f64(*ambient_p),
            json_f64(*mach),
            json_f64(*gamma),
            json_f64(*pressure_ratio),
            json_f64(*density_ratio)
        )),
        Action::SetFixedDt { dt } => match dt {
            Some(dt) => s.push_str(&format!(",\"dt\":{}", json_f64(*dt))),
            None => s.push_str(",\"dt\":null"),
        },
        Action::RequestCheckpoint => {}
    }
    s.push('}');
    s
}

/// One recovery rollback as a store-JSON object. Same conventions as
/// [`encode_action_record`]: step counters are full u64 and encode as
/// decimal strings; the dts use the tagged [`json_f64`] form, so the NaN
/// "was adaptive" sentinel in `prev_dt` — payload bits and all — round-trips
/// exactly.
pub(crate) fn encode_recovery_record(rec: &RecoveryRecord) -> String {
    format!(
        "{{\"trip_step\":\"{}\",\"rollback_step\":\"{}\",\"rollback_t\":{},\
         \"prev_dt\":{},\"backoff_dt\":{},\"hold_until\":\"{}\",\"retry\":\"{}\"}}",
        rec.trip_step,
        rec.rollback_step,
        json_f64(rec.rollback_t),
        json_f64(rec.prev_dt),
        json_f64(rec.backoff_dt),
        rec.hold_until,
        rec.retry
    )
}

/// Decode one recovery object written by [`encode_recovery_record`].
pub(crate) fn decode_recovery_record(obj: &[(String, Json)]) -> Result<RecoveryRecord, String> {
    let step = |key: &str| -> Result<u64, String> {
        get(obj, key)?
            .as_str()
            .ok_or_else(|| format!("recovery '{key}' is not a decimal string"))?
            .parse::<u64>()
            .map_err(|e| format!("bad recovery {key}: {e}"))
    };
    Ok(RecoveryRecord {
        trip_step: step("trip_step")?,
        rollback_step: step("rollback_step")?,
        rollback_t: num(obj, "rollback_t")?,
        prev_dt: num(obj, "prev_dt")?,
        backoff_dt: num(obj, "backoff_dt")?,
        hold_until: step("hold_until")?,
        retry: step("retry")?,
    })
}

/// Decode one action object written by [`encode_action_record`].
pub(crate) fn decode_action_record(obj: &[(String, Json)]) -> Result<ActionRecord, String> {
    let step = get(obj, "step")?
        .as_str()
        .ok_or("action 'step' is not a decimal string")?
        .parse::<u64>()
        .map_err(|e| format!("bad action step: {e}"))?;
    let t = num(obj, "t")?;
    let engine = |key: &str| -> Result<usize, String> {
        Ok(get(obj, key)?
            .as_u64()
            .ok_or_else(|| format!("action '{key}' is not an integer"))? as usize)
    };
    let action = match get(obj, "kind")?.as_str() {
        Some("set_gimbal") => {
            let target = get(obj, "target")?
                .as_array()
                .ok_or("action 'target' is not an array")?;
            if target.len() != 2 {
                return Err("action 'target' is not a pair".into());
            }
            Action::SetGimbal {
                engine: engine("engine")?,
                target: [
                    target[0].as_f64().ok_or("target[0] is not a number")?,
                    target[1].as_f64().ok_or("target[1] is not a number")?,
                ],
                rate: num(obj, "rate")?,
            }
        }
        Some("engine_out") => Action::EngineOut {
            engine: engine("engine")?,
        },
        Some("set_backpressure") => Action::SetBackpressure {
            pressure: num(obj, "pressure")?,
        },
        Some("swap_inflow") => Action::SwapInflow {
            ambient_rho: num(obj, "ambient_rho")?,
            ambient_p: num(obj, "ambient_p")?,
            mach: num(obj, "mach")?,
            gamma: num(obj, "gamma")?,
            pressure_ratio: num(obj, "pressure_ratio")?,
            density_ratio: num(obj, "density_ratio")?,
        },
        Some("set_fixed_dt") => Action::SetFixedDt {
            dt: match get(obj, "dt")? {
                Json::Null => None,
                v => Some(v.as_f64().ok_or("action 'dt' is not a number")?),
            },
        },
        Some("request_checkpoint") => Action::RequestCheckpoint,
        Some(other) => return Err(format!("unknown action kind '{other}'")),
        None => return Err("action 'kind' is not a string".into()),
    };
    Ok(ActionRecord { step, t, action })
}

/// Exact float encoding: Rust's `Display` for finite f64 is the shortest
/// decimal that round-trips bit-for-bit; non-finite values (which JSON has
/// no literal for) become tagged strings. The canonical quiet NaN is
/// `"NaN"`; a NaN with any other payload is `"NaN:<16 hex digits>"` so
/// even NaN bit patterns survive a round trip exactly.
pub(crate) fn json_f64(x: f64) -> String {
    if x.is_nan() {
        let bits = x.to_bits();
        if bits == 0x7ff8_0000_0000_0000 {
            "\"NaN\"".into()
        } else {
            format!("\"NaN:{bits:016x}\"")
        }
    } else if x == f64::INFINITY {
        "\"inf\"".into()
    } else if x == f64::NEG_INFINITY {
        "\"-inf\"".into()
    } else {
        format!("{x}")
    }
}

/// JSON string literal with the escapes the store format needs.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Parse one store line back into `(hash, result)`. Any structural problem
/// — bad JSON, missing field, version mismatch — is an `Err(reason)`; the
/// loader counts it and moves on.
pub(crate) fn decode_line(line: &str) -> Result<(u64, ScenarioResult), String> {
    let value = Json::parse(line)?;
    let obj = value.as_object().ok_or("line is not a JSON object")?;
    decode_result_obj(obj)
}

/// Decode one store-line object (already parsed) into `(hash, result)` —
/// shared by [`decode_line`] and the wire protocol's embedded result
/// payloads.
pub(crate) fn decode_result_obj(obj: &[(String, Json)]) -> Result<(u64, ScenarioResult), String> {
    let v = get(obj, "v")?.as_u64().ok_or("'v' is not an integer")?;
    if v != CONTENT_HASH_VERSION {
        return Err(format!(
            "hash version {v} (current {CONTENT_HASH_VERSION}): stale entry"
        ));
    }
    let hash_hex = get(obj, "hash")?.as_str().ok_or("'hash' is not a string")?;
    let hash = u64::from_str_radix(hash_hex, 16).map_err(|e| format!("bad hash hex: {e}"))?;
    if hash_hex.len() != 16 {
        return Err("hash is not 16 hex digits".into());
    }
    let status = match get(obj, "status")?.as_str() {
        Some("completed") => RunStatus::Completed,
        Some("failed") => RunStatus::Failed(
            get(obj, "error")?
                .as_str()
                .ok_or("'error' is not a string")?
                .to_string(),
        ),
        _ => return Err("unknown status".into()),
    };
    let base_heating = match get(obj, "base_heating")? {
        Json::Null => None,
        Json::Obj(fields) => {
            let centroid = get(fields, "footprint_centroid")?
                .as_array()
                .ok_or("'footprint_centroid' is not an array")?;
            if centroid.len() != 2 {
                return Err("'footprint_centroid' is not a pair".into());
            }
            Some(BaseHeatingReport {
                heated_fraction: num(fields, "heated_fraction")?,
                recirculation_flux: num(fields, "recirculation_flux")?,
                mean_backflow_enthalpy: num(fields, "mean_backflow_enthalpy")?,
                peak_temperature: num(fields, "peak_temperature")?,
                mean_pressure: num(fields, "mean_pressure")?,
                footprint_centroid: [
                    centroid[0].as_f64().ok_or("centroid[0] is not a number")?,
                    centroid[1].as_f64().ok_or("centroid[1] is not a number")?,
                ],
                cells_sampled: get(fields, "cells_sampled")?
                    .as_u64()
                    .ok_or("'cells_sampled' is not an integer")?
                    as usize,
            })
        }
        _ => return Err("'base_heating' is neither object nor null".into()),
    };
    let result = ScenarioResult {
        name: get(obj, "name")?
            .as_str()
            .ok_or("'name' is not a string")?
            .to_string(),
        hash_hex: hash_hex.to_string(),
        status,
        cells: get(obj, "cells")?.as_u64().ok_or("'cells' not integer")? as usize,
        steps: get(obj, "steps")?.as_u64().ok_or("'steps' not integer")? as usize,
        ranks: get(obj, "ranks")?.as_u64().ok_or("'ranks' not integer")? as usize,
        wall_s: num(obj, "wall_s")?,
        ns_per_cell_step: num(obj, "grind_ns_per_cell_step")?,
        mass_drift: num(obj, "mass_drift")?,
        energy_drift: num(obj, "energy_drift")?,
        base_heating,
        resumed_from: match opt_get(obj, "resumed_from") {
            Some(v) => Some(v.as_u64().ok_or("'resumed_from' is not an integer")? as usize),
            None => None,
        },
        series: match opt_get(obj, "series") {
            None | Some(Json::Null) => None,
            Some(Json::Obj(fields)) => {
                let every = get(fields, "every")?
                    .as_u64()
                    .ok_or("'series.every' is not an integer")?
                    as usize;
                let rows = get(fields, "samples")?
                    .as_array()
                    .ok_or("'series.samples' is not an array")?;
                let mut samples = Vec::with_capacity(rows.len());
                for row in rows {
                    let cells = row.as_array().ok_or("series sample is not an array")?;
                    if cells.len() != 10 {
                        return Err("series sample is not a 10-column row".into());
                    }
                    let f = |i: usize| -> Result<f64, String> {
                        cells[i]
                            .as_f64()
                            .ok_or_else(|| format!("series column {i} is not a number"))
                    };
                    samples.push(igr_app::diagnostics::Sample {
                        step: cells[0].as_u64().ok_or("series step is not an integer")? as usize,
                        t: f(1)?,
                        totals: [f(2)?, f(3)?, f(4)?, f(5)?, f(6)?],
                        kinetic_energy: f(7)?,
                        max_mach: f(8)?,
                        min_rho: f(9)?,
                    });
                }
                Some(crate::report::ScenarioSeries { every, samples })
            }
            Some(_) => return Err("'series' is neither object nor null".into()),
        },
        actions: match opt_get(obj, "actions") {
            None | Some(Json::Null) => None,
            Some(Json::Arr(items)) => {
                let mut records = Vec::with_capacity(items.len());
                for item in items {
                    let fields = item.as_object().ok_or("action is not a JSON object")?;
                    records.push(decode_action_record(fields)?);
                }
                Some(records)
            }
            Some(_) => return Err("'actions' is neither array nor null".into()),
        },
        recoveries: match opt_get(obj, "recoveries") {
            None | Some(Json::Null) => None,
            Some(Json::Arr(items)) => {
                let mut records = Vec::with_capacity(items.len());
                for item in items {
                    let fields = item.as_object().ok_or("recovery is not a JSON object")?;
                    records.push(decode_recovery_record(fields)?);
                }
                Some(records)
            }
            Some(_) => return Err("'recoveries' is neither array nor null".into()),
        },
    };
    Ok((hash, result))
}

/// Field lookup in a parsed JSON object, with a "missing field" error.
pub(crate) fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a Json, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field '{key}'"))
}

/// Optional-field lookup: absent keys are `None` (fields added after the
/// format shipped must tolerate their own absence in old store lines).
pub(crate) fn opt_get<'a>(obj: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Required-number field lookup (accepting the tagged non-finite strings).
pub(crate) fn num(obj: &[(String, Json)], key: &str) -> Result<f64, String> {
    get(obj, key)?
        .as_f64()
        .ok_or_else(|| format!("'{key}' is not a number"))
}

/// A minimal JSON value + recursive-descent parser — the workspace is
/// offline (no serde), and the store format only needs the subset below.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub(crate) fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }

    pub(crate) fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(f) => Some(f),
            _ => None,
        }
    }

    pub(crate) fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numbers, plus the tagged non-finite strings [`json_f64`] writes.
    pub(crate) fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::Str(s) => match s.as_str() {
                "NaN" => Some(f64::from_bits(0x7ff8_0000_0000_0000)),
                "inf" => Some(f64::INFINITY),
                "-inf" => Some(f64::NEG_INFINITY),
                other => {
                    // Payload-carrying NaN: "NaN:<16 hex digits>".
                    let bits = u64::from_str_radix(other.strip_prefix("NaN:")?, 16).ok()?;
                    let x = f64::from_bits(bits);
                    x.is_nan().then_some(x)
                }
            },
            _ => None,
        }
    }

    pub(crate) fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => Some(*x as u64),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input came from &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| "invalid UTF-8 in string")?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "bad number bytes")?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number '{text}': {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(status: RunStatus, heating: Option<BaseHeatingReport>) -> ScenarioResult {
        ScenarioResult {
            name: "engine-row3-2d-n24+out[0,2]+pamb0.250+fp64+igr".into(),
            hash_hex: format!("{:016x}", 0xdead_beef_u64),
            status,
            cells: 1152,
            steps: 60,
            ranks: 1,
            wall_s: 0.123456789,
            ns_per_cell_step: 431.0 / 7.0, // not exactly representable in decimal
            mass_drift: 1.0e-15,
            energy_drift: -0.0,
            base_heating: heating,
            series: None,
            resumed_from: None,
            actions: None,
            recoveries: None,
        }
    }

    fn heating() -> BaseHeatingReport {
        BaseHeatingReport {
            heated_fraction: 0.25,
            recirculation_flux: 1.0 / 3.0,
            mean_backflow_enthalpy: 2.5,
            peak_temperature: 3.75,
            mean_pressure: 0.99,
            footprint_centroid: [0.1, -0.2],
            cells_sampled: 42,
        }
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let r = sample(RunStatus::Completed, Some(heating()));
        let line = encode_line(0xdead_beef, &r);
        assert!(line.ends_with('\n'));
        assert_eq!(line.matches('\n').count(), 1, "one line per result");
        let (hash, back) = decode_line(line.trim_end()).unwrap();
        assert_eq!(hash, 0xdead_beef);
        assert_eq!(back.name, r.name);
        assert_eq!(back.status, r.status);
        assert_eq!(back.cells, r.cells);
        assert_eq!(back.wall_s.to_bits(), r.wall_s.to_bits());
        assert_eq!(
            back.ns_per_cell_step.to_bits(),
            r.ns_per_cell_step.to_bits()
        );
        assert_eq!(back.mass_drift.to_bits(), r.mass_drift.to_bits());
        assert_eq!(back.energy_drift.to_bits(), r.energy_drift.to_bits());
        let (a, b) = (back.base_heating.unwrap(), heating());
        assert_eq!(
            a.recirculation_flux.to_bits(),
            b.recirculation_flux.to_bits()
        );
        assert_eq!(a.footprint_centroid, b.footprint_centroid);
        assert_eq!(a.cells_sampled, b.cells_sampled);
    }

    #[test]
    fn series_and_resume_marker_round_trip_bit_exactly() {
        use crate::report::ScenarioSeries;
        use igr_app::diagnostics::Sample;
        let mut r = sample(RunStatus::Completed, None);
        r.resumed_from = Some(17);
        r.series = Some(ScenarioSeries {
            every: 5,
            samples: vec![
                Sample {
                    step: 5,
                    t: 0.1,
                    totals: [1.0, 1.0 / 3.0, -0.0, 0.0, 2.5],
                    kinetic_energy: 0.25,
                    max_mach: 9.9,
                    min_rho: 0.125,
                },
                Sample {
                    step: 10,
                    t: 0.2,
                    totals: [1.0, 0.3, 0.0, f64::NAN, 2.5],
                    kinetic_energy: f64::INFINITY,
                    max_mach: 10.1,
                    min_rho: 1e-300,
                },
            ],
        });
        let (_, back) = decode_line(encode_line(7, &r).trim_end()).unwrap();
        assert_eq!(back.resumed_from, Some(17));
        let (a, b) = (back.series.unwrap(), r.series.unwrap());
        assert_eq!(a.every, b.every);
        assert_eq!(a.samples.len(), b.samples.len());
        for (x, y) in a.samples.iter().zip(&b.samples) {
            assert_eq!(x.step, y.step);
            assert_eq!(x.t.to_bits(), y.t.to_bits());
            for (u, v) in x.totals.iter().zip(&y.totals) {
                assert_eq!(u.to_bits(), v.to_bits(), "totals must be bit-exact");
            }
            assert_eq!(x.kinetic_energy.to_bits(), y.kinetic_energy.to_bits());
            assert_eq!(x.max_mach.to_bits(), y.max_mach.to_bits());
            assert_eq!(x.min_rho.to_bits(), y.min_rho.to_bits());
        }
        // Lines without the new keys (pre-upgrade stores) still decode.
        let plain = sample(RunStatus::Completed, None);
        let (_, old) = decode_line(encode_line(8, &plain).trim_end()).unwrap();
        assert!(old.series.is_none() && old.resumed_from.is_none());
    }

    #[test]
    fn action_log_round_trips_bit_exactly_with_u64_steps_and_nan_payloads() {
        let mut r = sample(RunStatus::Completed, None);
        r.actions = Some(vec![
            ActionRecord {
                step: u64::MAX, // > 2^53: must survive the f64-based parser
                t: 0.1,
                action: Action::SetGimbal {
                    engine: 2,
                    target: [f64::from_bits(0x7ff8_dead_beef_cafe), -0.0],
                    rate: f64::INFINITY,
                },
            },
            ActionRecord {
                step: 9_007_199_254_740_993, // 2^53 + 1
                t: f64::NEG_INFINITY,
                action: Action::SwapInflow {
                    ambient_rho: 1.0,
                    ambient_p: f64::NAN,
                    mach: 10.0,
                    gamma: 1.4,
                    pressure_ratio: 4.0,
                    density_ratio: 1.0 / 3.0,
                },
            },
            ActionRecord {
                step: 3,
                t: 0.3,
                action: Action::SetFixedDt { dt: None },
            },
            ActionRecord {
                step: 4,
                t: 0.4,
                action: Action::RequestCheckpoint,
            },
        ]);
        let (_, back) = decode_line(encode_line(11, &r).trim_end()).unwrap();
        let (a, b) = (back.actions.unwrap(), r.actions.unwrap());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.step, y.step, "u64 steps survive as decimal strings");
            assert_eq!(x.t.to_bits(), y.t.to_bits());
        }
        match (&a[0].action, &b[0].action) {
            (
                Action::SetGimbal {
                    engine: ea,
                    target: ta,
                    rate: ra,
                },
                Action::SetGimbal {
                    engine: eb,
                    target: tb,
                    rate: rb,
                },
            ) => {
                assert_eq!(ea, eb);
                assert_eq!(ta[0].to_bits(), tb[0].to_bits(), "NaN payload bits");
                assert_eq!(ta[1].to_bits(), tb[1].to_bits(), "-0.0 bits");
                assert_eq!(ra.to_bits(), rb.to_bits());
            }
            other => panic!("kind mismatch: {other:?}"),
        }
        match &a[1].action {
            Action::SwapInflow {
                ambient_p,
                density_ratio,
                ..
            } => {
                assert!(ambient_p.is_nan());
                assert_eq!(density_ratio.to_bits(), (1.0f64 / 3.0).to_bits());
            }
            other => panic!("kind mismatch: {other:?}"),
        }
        assert!(matches!(a[2].action, Action::SetFixedDt { dt: None }));
        assert!(matches!(a[3].action, Action::RequestCheckpoint));
        // Pre-upgrade lines (no 'actions' key) still decode to None.
        let plain = sample(RunStatus::Completed, None);
        let (_, old) = decode_line(encode_line(12, &plain).trim_end()).unwrap();
        assert!(old.actions.is_none());
    }

    #[test]
    fn recovery_log_round_trips_bit_exactly_with_u64_steps_and_nonfinite_dts() {
        let mut r = sample(RunStatus::Completed, None);
        r.recoveries = Some(vec![
            RecoveryRecord {
                trip_step: u64::MAX,                  // > 2^53: must survive the f64-based parser
                rollback_step: 9_007_199_254_740_993, // 2^53 + 1
                rollback_t: 1.0 / 3.0,
                prev_dt: f64::NAN, // the "was adaptive" sentinel
                backoff_dt: 1e-300,
                hold_until: u64::MAX - 1,
                retry: 1,
            },
            RecoveryRecord {
                trip_step: 48,
                rollback_step: 32,
                rollback_t: -0.0,
                prev_dt: f64::from_bits(0x7ff8_dead_beef_cafe), // NaN payload
                backoff_dt: f64::INFINITY,
                hold_until: 64,
                retry: 2,
            },
            RecoveryRecord {
                trip_step: 50,
                rollback_step: 32,
                rollback_t: 0.25,
                prev_dt: f64::NEG_INFINITY,
                backoff_dt: 0.125,
                hold_until: 80,
                retry: 3,
            },
        ]);
        let (_, back) = decode_line(encode_line(13, &r).trim_end()).unwrap();
        let (a, b) = (back.recoveries.unwrap(), r.recoveries.clone().unwrap());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.trip_step, y.trip_step, "u64 steps survive as strings");
            assert_eq!(x.rollback_step, y.rollback_step);
            assert_eq!(x.hold_until, y.hold_until);
            assert_eq!(x.retry, y.retry);
            assert_eq!(x.rollback_t.to_bits(), y.rollback_t.to_bits());
            assert_eq!(x.prev_dt.to_bits(), y.prev_dt.to_bits(), "NaN payloads");
            assert_eq!(x.backoff_dt.to_bits(), y.backoff_dt.to_bits());
        }
        // An armed-but-untripped run persists as an *empty* array, which is
        // distinct from the key being absent.
        let mut armed = sample(RunStatus::Completed, None);
        armed.recoveries = Some(vec![]);
        let (_, back) = decode_line(encode_line(14, &armed).trim_end()).unwrap();
        assert!(matches!(&back.recoveries, Some(v) if v.is_empty()));
        // Pre-upgrade lines (no 'recoveries' key) still decode to None.
        let plain = sample(RunStatus::Completed, None);
        let (_, old) = decode_line(encode_line(15, &plain).trim_end()).unwrap();
        assert!(old.recoveries.is_none());
        // And the digest distinguishes the three forms.
        let with = {
            let mut x = sample(RunStatus::Completed, None);
            x.recoveries = r.recoveries.clone();
            x
        };
        assert_ne!(result_digest(1, &plain), result_digest(1, &armed));
        assert_ne!(result_digest(1, &armed), result_digest(1, &with));
    }

    #[test]
    fn failed_status_and_nonfinite_floats_survive() {
        let mut r = sample(
            RunStatus::Failed("non-finite value, \"quoted\"\nmultiline".into()),
            None,
        );
        r.mass_drift = f64::NAN;
        r.energy_drift = f64::INFINITY;
        r.wall_s = f64::NEG_INFINITY;
        let line = encode_line(7, &r);
        let (_, back) = decode_line(line.trim_end()).unwrap();
        assert_eq!(back.status, r.status);
        assert!(back.mass_drift.is_nan());
        assert_eq!(back.energy_drift, f64::INFINITY);
        assert_eq!(back.wall_s, f64::NEG_INFINITY);
        assert!(back.base_heating.is_none());
    }

    #[test]
    fn stale_hash_versions_are_rejected() {
        let r = sample(RunStatus::Completed, None);
        let line = encode_line(1, &r).replace("\"v\":2", "\"v\":1");
        assert!(decode_line(line.trim_end()).unwrap_err().contains("stale"));
    }

    #[test]
    fn garbage_lines_are_errors_not_panics() {
        for bad in [
            "",
            "{",
            "{\"v\":2}",
            "not json at all",
            "{\"v\":2,\"hash\":\"xyz\"}",
            "[1,2,3]",
            "{\"v\":2,\"hash\":\"0000000000000007\",\"name\":\"x\",\"status\":\"weird\"}",
        ] {
            assert!(decode_line(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn open_tolerates_truncated_tail_and_keeps_appending() {
        let path = std::env::temp_dir().join(format!(
            "igr-persist-unit-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);

        // First session: two inserts, then a simulated crash mid-append.
        {
            let mut s = open(&path).unwrap();
            assert_eq!(s.recovery, StoreRecovery::default());
            s.log
                .append(1, &sample(RunStatus::Completed, None))
                .unwrap();
            s.log
                .append(2, &sample(RunStatus::Completed, Some(heating())))
                .unwrap();
        }
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"v\":2,\"hash\":\"00000000000000").unwrap(); // torn line
        }

        // Second session: both whole lines load, the torn tail is skipped,
        // and a fresh append lands on its own line.
        {
            let mut s = open(&path).unwrap();
            assert_eq!(s.recovery.loaded, 2);
            assert_eq!(s.recovery.skipped, 1);
            assert_eq!(s.entries.len(), 2);
            s.log
                .append(3, &sample(RunStatus::Completed, None))
                .unwrap();
        }
        {
            let s = open(&path).unwrap();
            assert_eq!(s.recovery.loaded, 3);
            assert_eq!(s.recovery.skipped, 1, "torn tail stays isolated");
            let hashes: Vec<u64> = s.entries.iter().map(|(h, _)| *h).collect();
            assert_eq!(hashes, vec![1, 2, 3]);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn duplicate_hashes_keep_the_last_write() {
        let path = std::env::temp_dir().join(format!(
            "igr-persist-dup-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        {
            let mut s = open(&path).unwrap();
            let mut first = sample(RunStatus::Completed, None);
            first.steps = 1;
            let mut second = sample(RunStatus::Completed, None);
            second.steps = 2;
            s.log.append(9, &first).unwrap();
            s.log.append(9, &second).unwrap();
        }
        let s = open(&path).unwrap();
        // The loader reports both; the store layer's insert order makes the
        // last one win.
        assert_eq!(s.entries.len(), 2);
        assert_eq!(s.entries.last().unwrap().1.steps, 2);
        let _ = std::fs::remove_file(&path);
    }
}
