//! Async job-queue front end over the campaign executor.
//!
//! [`Campaign::run`](crate::exec::Campaign::run) is a synchronous batch
//! API: the whole sweep must exist before anything executes, and nothing
//! comes back until everything has. [`CampaignQueue`] inverts that —
//! scenarios are **submitted** one at a time (with priorities) while
//! background workers drain them, results **stream** back incrementally in
//! completion order, and queued work can be **cancelled**. That lets a long
//! campaign run while the sweep is still being authored, and is the natural
//! seam for serving scenario requests from network traffic.
//!
//! Semantics:
//!
//! * **Dedup by content hash, like the batch executor.** Submitting a spec
//!   whose hash is already in the store completes immediately (a cache
//!   hit). Submitting one that is already queued or running *coalesces*:
//!   both jobs complete from the single execution, the first submitter
//!   marked fresh and the rest as cache hits.
//! * **Priorities.** Higher `priority` runs first; FIFO within a priority
//!   level. Re-submitting a queued scenario at a higher priority escalates
//!   the pending execution.
//! * **Cancellation** applies to queued jobs only: once a job's execution
//!   is running, [`CampaignQueue::cancel`] returns `false` and the job
//!   completes normally. Cancelling every job of a queued execution
//!   removes the execution itself.
//! * **Streaming.** [`CampaignQueue::next_completed`] yields `(job, result,
//!   cached)` in completion order; [`CampaignQueue::wait_all`] blocks until
//!   the queue is drained.
//!
//! Workers recover from panicking scenarios
//! ([`crate::exec::run_scenario_caught`]) and from poisoned locks, so one
//! diverging run cannot wedge the queue.
//!
//! ```no_run
//! use igr_campaign::{BaseCase, CampaignQueue, ExecConfig, ScenarioSpec};
//! use std::time::Duration;
//!
//! let queue = CampaignQueue::new(ExecConfig::default());
//! let urgent = queue.submit(&ScenarioSpec::new(BaseCase::Sod, 64), /*priority*/ 5);
//! while let Some((job, result, cached)) = queue.next_completed(Duration::from_secs(60)) {
//!     println!("job {job}: {} (cached: {cached})", result.name);
//! }
//! let store = queue.shutdown(); // join workers, keep every result
//! ```

use crate::exec::{run_scenario_caught_with, ExecConfig};
use crate::report::ScenarioResult;
use crate::spec::ScenarioSpec;
use crate::store::ResultStore;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Handle to one submitted scenario.
pub type JobId = u64;

/// Where a job is in its lifecycle, as reported by
/// [`CampaignQueue::poll`].
#[derive(Clone, Debug)]
pub enum JobState {
    /// Waiting for a worker (or coalesced onto another queued job).
    Queued {
        /// Current effective priority of the pending execution.
        priority: i32,
    },
    /// A worker is executing it (or the execution it coalesced onto).
    Running,
    /// Finished; `cached` is true when the result came from the store or
    /// from an execution another job triggered.
    Done {
        /// The measured (or cache-served) result.
        result: Arc<ScenarioResult>,
        /// True when no fresh execution was spent on this job.
        cached: bool,
    },
    /// Cancelled while queued; it will never run.
    Cancelled,
}

/// One submitted job's bookkeeping.
struct Job {
    hash: u64,
    phase: JobPhase,
    /// Released by its submitter ([`CampaignQueue::release_jobs`]): its
    /// completion is recorded but never enqueued for streaming — no
    /// consumer will come back for it.
    detached: bool,
}

enum JobPhase {
    Waiting,
    Cancelled,
    Done { cached: bool },
}

/// One *execution*: the de-duplicated unit of work a set of jobs waits on.
struct Execution {
    spec: ScenarioSpec,
    waiters: Vec<JobId>,
    running: bool,
    /// Highest priority among live waiters (heap entries are lazily
    /// superseded on escalation).
    priority: i32,
    /// When the execution was planned — feeds the `queue.time_in_queue`
    /// histogram when a worker claims it. Wall-clock only; never hashed.
    enqueued: Instant,
    /// When a worker claimed it — feeds `queue.exec_latency` on completion.
    started: Option<Instant>,
}

/// Max-heap entry: higher priority first, then FIFO by submission sequence.
#[derive(PartialEq, Eq)]
struct HeapEntry {
    priority: i32,
    seq: u64,
    hash: u64,
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.priority, std::cmp::Reverse(self.seq))
            .cmp(&(other.priority, std::cmp::Reverse(other.seq)))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct Inner {
    store: ResultStore,
    /// Restart-file directory the workers checkpoint into — also where
    /// orphaned `<hash>.ckpt` / `<hash>.rank<N>.ckpt` files are swept when
    /// a scenario fails permanently or its last waiter is cancelled.
    ckpt_dir: Option<std::path::PathBuf>,
    jobs: HashMap<JobId, Job>,
    /// Queued/running executions by content hash.
    executions: HashMap<u64, Execution>,
    heap: BinaryHeap<HeapEntry>,
    /// Completed `(job, result, cached)` tuples not yet consumed by
    /// [`CampaignQueue::next_completed`].
    completed: VecDeque<(JobId, Arc<ScenarioResult>, bool)>,
    next_job: JobId,
    next_seq: u64,
    /// Executions queued or running — 0 means drained.
    outstanding: usize,
    /// Executions actually run to completion (cache hits and coalesced
    /// waiters excluded) — the "how much compute did this queue burn"
    /// counter the wire protocol's `STATS` reports.
    executed: u64,
    shutdown: bool,
}

struct Shared {
    inner: Mutex<Inner>,
    /// Signalled when work arrives or shutdown is requested.
    work: Condvar,
    /// Signalled when a job completes.
    done: Condvar,
}

/// Mutex access that shrugs off poisoning: queue state is only ever
/// mutated under short, panic-free critical sections, so a poisoned lock
/// means a *worker* died elsewhere — the state itself is still consistent.
fn lock(shared: &Shared) -> MutexGuard<'_, Inner> {
    shared.inner.lock().unwrap_or_else(|p| p.into_inner())
}

/// The async front end: submit/poll/cancel + streaming results.
pub struct CampaignQueue {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl CampaignQueue {
    /// A queue over a fresh in-memory store, with `cfg.workers` background
    /// worker threads.
    pub fn new(cfg: ExecConfig) -> Self {
        Self::with_store(cfg, ResultStore::new())
    }

    /// A queue over an existing store (e.g. a persistent one from
    /// [`ResultStore::open`], so submissions hit the cross-process cache).
    pub fn with_store(cfg: ExecConfig, store: ResultStore) -> Self {
        let mut queue = Self::build(store, cfg.checkpoint_dir.clone());
        let solver_threads = cfg.solver_threads();
        for _ in 0..cfg.workers {
            let shared = Arc::clone(&queue.shared);
            let ckpt_dir = cfg.checkpoint_dir.clone();
            queue.handles.push(std::thread::spawn(move || {
                worker_loop(&shared, solver_threads, ckpt_dir.as_deref())
            }));
        }
        queue
    }

    /// A queue with **no** background workers: jobs run only when the
    /// caller drives [`Self::run_next`]. Deterministic by construction —
    /// what the ordering/cancellation tests (and single-threaded embedders)
    /// want.
    pub fn manual(store: ResultStore) -> Self {
        Self::build(store, None)
    }

    /// [`Self::manual`] with a restart-file directory: driven runs
    /// checkpoint into (and resume from) `dir`, and the queue sweeps
    /// orphaned restart files on permanent failure or cancellation.
    pub fn manual_with_checkpoints(store: ResultStore, dir: impl Into<std::path::PathBuf>) -> Self {
        Self::build(store, Some(dir.into()))
    }

    fn build(store: ResultStore, ckpt_dir: Option<std::path::PathBuf>) -> Self {
        CampaignQueue {
            shared: Arc::new(Shared {
                inner: Mutex::new(Inner {
                    store,
                    ckpt_dir,
                    jobs: HashMap::new(),
                    executions: HashMap::new(),
                    heap: BinaryHeap::new(),
                    completed: VecDeque::new(),
                    next_job: 1,
                    next_seq: 0,
                    outstanding: 0,
                    executed: 0,
                    shutdown: false,
                }),
                work: Condvar::new(),
                done: Condvar::new(),
            }),
            handles: Vec::new(),
        }
    }

    /// Submit one scenario at `priority` (higher runs first). Returns
    /// immediately; completion is observed via [`Self::poll`] /
    /// [`Self::next_completed`].
    pub fn submit(&self, spec: &ScenarioSpec, priority: i32) -> JobId {
        self.submit_detailed(spec, priority).0
    }

    /// [`Self::submit`], additionally reporting — atomically, under the
    /// same lock — whether the job was actually enqueued (`true`) or born
    /// `Done` from the store (`false`). A separate submit-then-poll would
    /// misreport a fast fresh execution as a cache hit; the wire server's
    /// `queued` acknowledgement field comes from here.
    pub fn submit_detailed(&self, spec: &ScenarioSpec, priority: i32) -> (JobId, bool) {
        let mut spec = spec.clone();
        spec.normalize();
        let hash = spec.content_hash();
        igr_obs::Registry::global().counter_add("queue.submit", 1);
        let mut g = lock(&self.shared);
        let id = g.next_job;
        g.next_job += 1;

        // Already settled (completed, or a quarantined/permanent failure):
        // the job is born Done. A transient failure with retry budget left
        // falls through and re-executes (see docs/RECOVERY.md).
        if g.store.settled(hash) {
            let result = g.store.fetch(hash).expect("settled() just said so");
            g.jobs.insert(
                id,
                Job {
                    hash,
                    phase: JobPhase::Done { cached: true },
                    detached: false,
                },
            );
            g.completed.push_back((id, result, true));
            drop(g);
            igr_obs::Registry::global().counter_add("queue.cache_hit", 1);
            self.shared.done.notify_all();
            return (id, false);
        }

        // Already queued/running: coalesce onto the existing execution,
        // escalating its priority if this submission outbids it.
        if let Some(exec) = g.executions.get_mut(&hash) {
            exec.waiters.push(id);
            let escalate = !exec.running && priority > exec.priority;
            if escalate {
                exec.priority = priority;
            }
            g.jobs.insert(
                id,
                Job {
                    hash,
                    phase: JobPhase::Waiting,
                    detached: false,
                },
            );
            if escalate {
                let seq = g.next_seq;
                g.next_seq += 1;
                g.heap.push(HeapEntry {
                    priority,
                    seq,
                    hash,
                });
            }
            drop(g);
            igr_obs::Registry::global().counter_add("queue.coalesce", 1);
            return (id, true);
        }

        // Fresh work: plan the execution. For a truly absent hash the
        // failed lookup above *is* the cache miss — count it the way
        // Campaign::run does. A retryable failure being re-executed is
        // neither hit nor miss: no counter traffic.
        if !g.store.contains(hash) {
            let _ = g.store.fetch(hash);
        }
        g.executions.insert(
            hash,
            Execution {
                spec,
                waiters: vec![id],
                running: false,
                priority,
                enqueued: Instant::now(),
                started: None,
            },
        );
        g.jobs.insert(
            id,
            Job {
                hash,
                phase: JobPhase::Waiting,
                detached: false,
            },
        );
        let seq = g.next_seq;
        g.next_seq += 1;
        g.heap.push(HeapEntry {
            priority,
            seq,
            hash,
        });
        g.outstanding += 1;
        drop(g);
        self.shared.work.notify_one();
        (id, true)
    }

    /// Submit a batch in order at one priority.
    pub fn submit_all(&self, specs: &[ScenarioSpec], priority: i32) -> Vec<JobId> {
        specs.iter().map(|s| self.submit(s, priority)).collect()
    }

    /// Where is this job now? `None` for an unknown id.
    pub fn poll(&self, id: JobId) -> Option<JobState> {
        igr_obs::Registry::global().counter_add("queue.poll", 1);
        let g = lock(&self.shared);
        let job = g.jobs.get(&id)?;
        Some(match &job.phase {
            JobPhase::Cancelled => JobState::Cancelled,
            JobPhase::Done { cached } => JobState::Done {
                result: Arc::clone(
                    g.store
                        .peek(job.hash)
                        .expect("done jobs have a stored result"),
                ),
                cached: *cached,
            },
            JobPhase::Waiting => match g.executions.get(&job.hash) {
                Some(e) if e.running => JobState::Running,
                Some(e) => JobState::Queued {
                    priority: e.priority,
                },
                // Unreachable in a consistent queue; report Running rather
                // than panic so poll stays infallible.
                None => JobState::Running,
            },
        })
    }

    /// Cancel a queued job. Returns `true` if the job will now never
    /// produce a result; `false` if it is unknown, already running (the
    /// solve is not interrupted), or already finished/cancelled.
    pub fn cancel(&self, id: JobId) -> bool {
        let mut g = lock(&self.shared);
        let Some(job) = g.jobs.get(&id) else {
            return false;
        };
        if !matches!(job.phase, JobPhase::Waiting) {
            return false;
        }
        let hash = job.hash;
        let Some(exec) = g.executions.get_mut(&hash) else {
            return false;
        };
        if exec.running {
            return false;
        }
        exec.waiters.retain(|&w| w != id);
        let drop_execution = exec.waiters.is_empty();
        if drop_execution {
            // Heap entries for it become stale and are skipped on pop.
            g.executions.remove(&hash);
            g.outstanding -= 1;
        }
        g.jobs.get_mut(&id).expect("checked above").phase = JobPhase::Cancelled;
        igr_obs::Registry::global().counter_add("queue.cancel", 1);
        if drop_execution {
            // Nobody is waiting and nothing will run: a restart file left
            // by an earlier interrupted/failed attempt is now an orphan.
            let sweep = g.ckpt_dir.clone();
            drop(g);
            if let Some(dir) = sweep {
                remove_orphan_checkpoints(&dir, hash);
            }
            // Wake any wait_all() blocked on the outstanding count.
            self.shared.done.notify_all();
        }
        true
    }

    /// Pop the next completed `(job, result, cached)`, waiting up to
    /// `timeout` for one to arrive. `None` on timeout.
    pub fn next_completed(&self, timeout: Duration) -> Option<(JobId, Arc<ScenarioResult>, bool)> {
        let deadline = Instant::now() + timeout;
        let mut g = lock(&self.shared);
        loop {
            if let Some(item) = g.completed.pop_front() {
                return Some(item);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .shared
                .done
                .wait_timeout(g, deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            g = guard;
        }
    }

    /// Pop the next completed `(job, result, cached)` **belonging to
    /// `ids`**, waiting up to `timeout`. Completions of jobs outside `ids`
    /// are left queued for their own consumer — this is how the wire server
    /// streams each connection only its own results while sharing one
    /// queue. `None` on timeout.
    pub fn claim_completed(
        &self,
        ids: &[JobId],
        timeout: Duration,
    ) -> Option<(JobId, Arc<ScenarioResult>, bool)> {
        let deadline = Instant::now() + timeout;
        // Hash the id set once so each deque scan is O(completed), not
        // O(completed × ids) — this runs under the global queue lock.
        let ids: std::collections::HashSet<JobId> = ids.iter().copied().collect();
        let mut g = lock(&self.shared);
        loop {
            if let Some(idx) = g.completed.iter().position(|(id, _, _)| ids.contains(id)) {
                return g.completed.remove(idx);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .shared
                .done
                .wait_timeout(g, deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            g = guard;
        }
    }

    /// Detach jobs whose submitter has gone away (e.g. a dropped network
    /// connection): their pending completion entries are discarded and
    /// future completions are recorded but not enqueued for streaming.
    /// Running executions are **not** interrupted — a coalesced waiter from
    /// another submitter still gets its result, and the store keeps the
    /// computed entry either way.
    pub fn release_jobs(&self, ids: &[JobId]) {
        let mut g = lock(&self.shared);
        g.completed.retain(|(id, _, _)| !ids.contains(id));
        for id in ids {
            match g.jobs.get_mut(id) {
                // Still waiting on an execution: keep the record (the
                // completion path needs it) but flag it so the finished
                // result is dropped instead of enqueued.
                Some(job) if matches!(job.phase, JobPhase::Waiting) => job.detached = true,
                // Done/cancelled records have no future reader — drop them
                // outright so a long-lived server's job map stays bounded
                // by in-flight work, not by lifetime submissions.
                Some(_) => {
                    g.jobs.remove(id);
                }
                None => {}
            }
        }
    }

    /// Block until nothing is queued or running (or `timeout` elapses).
    /// Returns `true` when drained.
    pub fn wait_all(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut g = lock(&self.shared);
        loop {
            if g.outstanding == 0 {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .shared
                .done
                .wait_timeout(g, deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            g = guard;
        }
    }

    /// Run the single highest-priority queued execution on the calling
    /// thread (manual mode's engine; also usable alongside background
    /// workers). Returns the execution's first waiter, or `None` when
    /// nothing is queued.
    pub fn run_next(&self) -> Option<JobId> {
        let (hash, spec, first, ckpt_dir) = {
            let mut g = lock(&self.shared);
            let (hash, spec) = pop_execution(&mut g)?;
            let first = g.executions[&hash].waiters.first().copied();
            (hash, spec, first, g.ckpt_dir.clone())
        };
        let result = run_scenario_caught_with(&spec, ckpt_dir.as_deref());
        complete_execution(&self.shared, hash, result);
        first
    }

    /// Jobs queued or running.
    pub fn outstanding(&self) -> usize {
        lock(&self.shared).outstanding
    }

    /// Completed results waiting to be streamed out.
    pub fn ready(&self) -> usize {
        lock(&self.shared).completed.len()
    }

    /// Executions this queue actually ran to completion. Cache hits,
    /// coalesced waiters, and results loaded from a warm store file all
    /// leave this at 0 — it counts compute, not answers.
    pub fn executed(&self) -> u64 {
        lock(&self.shared).executed
    }

    /// Snapshot of the underlying store's `(entries, hits, misses)`.
    pub fn store_stats(&self) -> (usize, u64, u64) {
        let g = lock(&self.shared);
        (g.store.len(), g.store.hits(), g.store.misses())
    }

    /// Cached failures that will never re-execute (permanent failures plus
    /// transient ones past their retry budget) — the wire protocol's
    /// `STATS` reports this; see [`ResultStore::quarantined`].
    pub fn quarantined(&self) -> usize {
        lock(&self.shared).store.quarantined()
    }

    /// Compact the underlying store's backing file (see
    /// [`ResultStore::compact`]); `Ok(None)` when the store is in-memory.
    /// The wire protocol's `COMPACT` verb lands here.
    ///
    /// The rewrite runs under the queue lock, so submissions and
    /// completions serialize behind it for the duration — acceptable at
    /// campaign-store sizes (hundreds of lines); a maintenance-thread
    /// snapshot would be the next step if stores grow by orders of
    /// magnitude.
    pub fn compact_store(&self) -> std::io::Result<Option<crate::store::CompactStats>> {
        lock(&self.shared).store.compact()
    }

    /// Anti-entropy inventory of the underlying store: `(hash, digest)` for
    /// every successful result (see [`ResultStore::digests`]). The wire
    /// protocol's `SYNC` verb exchanges these.
    pub fn store_digests(&self) -> Vec<(u64, u64)> {
        lock(&self.shared).store.digests()
    }

    /// Full results for `hashes` from the underlying store; unknown hashes
    /// and failed results are skipped (see [`ResultStore::export`]).
    pub fn export_results(&self, hashes: &[u64]) -> Vec<(u64, Arc<ScenarioResult>)> {
        lock(&self.shared).store.export(hashes)
    }

    /// Import a result executed elsewhere (the `SYNC`/`PUSH` receive path).
    ///
    /// Returns `true` when the result was accepted into the store. Failed
    /// results are rejected (they never travel), and a hash the local store
    /// already holds a successful result for is left untouched — imports
    /// are idempotent and never clobber local compute. An accepted import
    /// also completes any *queued* execution of the same hash: its waiters
    /// stream out as cache hits and the pending execution is dropped, so a
    /// backfilled result saves local compute, not just disk. A *running*
    /// execution is left alone — its own completion supersedes harmlessly
    /// (same content hash, same physics).
    pub fn import_result(&self, hash: u64, result: ScenarioResult) -> bool {
        if !result.status.is_ok() {
            return false;
        }
        let mut g = lock(&self.shared);
        if g.store.peek(hash).is_some_and(|r| r.status.is_ok()) {
            return false;
        }
        g.store.insert(hash, result);
        igr_obs::Registry::global().counter_add("queue.import", 1);
        // A queued (not yet claimed) execution of this hash is now
        // redundant: complete its waiters from the imported result. Heap
        // entries for it go stale and are skipped on pop.
        let mut notified = false;
        if g.executions.get(&hash).is_some_and(|e| !e.running) {
            let exec = g.executions.remove(&hash).expect("checked above");
            let arc = Arc::clone(g.store.peek(hash).expect("just inserted"));
            for id in exec.waiters {
                let Some(job) = g.jobs.get_mut(&id) else {
                    continue;
                };
                if matches!(job.phase, JobPhase::Cancelled) {
                    continue;
                }
                let detached = job.detached;
                job.phase = JobPhase::Done { cached: true };
                let _ = g.store.fetch(hash); // served from cache: count the hit
                if detached {
                    g.jobs.remove(&id);
                } else {
                    g.completed.push_back((id, Arc::clone(&arc), true));
                }
            }
            g.outstanding -= 1;
            notified = true;
        }
        drop(g);
        if notified {
            self.shared.done.notify_all();
        }
        true
    }

    fn stop_workers(&mut self) {
        lock(&self.shared).shutdown = true;
        self.shared.work.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }

    /// Stop accepting background work, join the workers, and hand back the
    /// store (with every completed result) — e.g. to seed a batch
    /// [`crate::exec::Campaign`] or to reopen later.
    pub fn shutdown(mut self) -> ResultStore {
        self.stop_workers();
        let shared = Arc::clone(&self.shared);
        drop(self);
        match Arc::try_unwrap(shared) {
            Ok(sh) => {
                sh.inner
                    .into_inner()
                    .unwrap_or_else(|p| p.into_inner())
                    .store
            }
            // Workers are joined, so this arm is unreachable; an empty
            // store is still a safe answer.
            Err(_) => ResultStore::new(),
        }
    }
}

impl Drop for CampaignQueue {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

/// Claim the best queued execution, skipping stale heap entries (cancelled
/// executions, superseded priorities, already-running hashes).
fn pop_execution(g: &mut Inner) -> Option<(u64, ScenarioSpec)> {
    while let Some(entry) = g.heap.pop() {
        if let Some(exec) = g.executions.get_mut(&entry.hash) {
            if !exec.running && entry.priority == exec.priority {
                exec.running = true;
                exec.started = Some(Instant::now());
                igr_obs::Registry::global()
                    .record_duration("queue.time_in_queue", exec.enqueued.elapsed());
                return Some((entry.hash, exec.spec.clone()));
            }
        }
    }
    None
}

/// Record a finished execution: store the result, complete every live
/// waiter (first one fresh, the rest as cache hits), and wake the stream.
fn complete_execution(shared: &Shared, hash: u64, result: ScenarioResult) {
    let mut g = lock(shared);
    let Some(exec) = g.executions.remove(&hash) else {
        return;
    };
    let obs = igr_obs::Registry::global();
    if let Some(started) = exec.started {
        obs.record_duration("queue.exec_latency", started.elapsed());
    }
    if !result.status.is_ok() {
        // run_scenario_caught_with turns worker panics into Failed results;
        // a failure counter split by cause keeps the fleet dashboard honest.
        let panicked = matches!(&result.status, crate::report::RunStatus::Failed(m)
            if m.contains("panicked"));
        obs.counter_add(
            if panicked {
                "queue.panic"
            } else {
                "queue.failed"
            },
            1,
        );
    }
    g.store.insert(hash, result);
    g.executed += 1;
    // A failure that is now settled (structural, or transient past its
    // retry budget) will never re-execute: its restart files are orphans,
    // and the quarantine is worth a counter on the fleet dashboard.
    let quarantine_sweep = match g.store.peek(hash) {
        Some(r) if !r.status.is_ok() && !g.store.is_retryable(hash) => {
            obs.counter_add("queue.quarantine", 1);
            g.ckpt_dir.clone()
        }
        _ => None,
    };
    let arc = Arc::clone(g.store.peek(hash).expect("just inserted"));
    let mut fresh_given = false;
    for id in exec.waiters {
        let Some(job) = g.jobs.get_mut(&id) else {
            continue;
        };
        if matches!(job.phase, JobPhase::Cancelled) {
            continue;
        }
        let cached = fresh_given;
        let detached = job.detached;
        job.phase = JobPhase::Done { cached };
        if cached {
            // Coalesced waiters are cache traffic: count the hit.
            let _ = g.store.fetch(hash);
        }
        fresh_given = true;
        if detached {
            // The submitter is gone: nobody will stream or poll this job
            // again, so drop its record instead of retaining it forever.
            g.jobs.remove(&id);
        } else {
            g.completed.push_back((id, Arc::clone(&arc), cached));
        }
    }
    g.outstanding -= 1;
    drop(g);
    if let Some(dir) = quarantine_sweep {
        remove_orphan_checkpoints(&dir, hash);
    }
    shared.done.notify_all();
}

/// Sweep the restart files a scenario can have left in `dir`: the
/// single-block `<hash>.ckpt` and any decomposed `<hash>.rank<N>.ckpt`
/// set. Called when the files can never be consumed again — the scenario
/// failed permanently or its last waiter was cancelled. Best-effort:
/// missing files and IO errors are ignored (the files are only disk
/// weight, never a correctness hazard).
fn remove_orphan_checkpoints(dir: &std::path::Path, hash: u64) {
    let stem = format!("{hash:016x}");
    let _ = std::fs::remove_file(dir.join(format!("{stem}.ckpt")));
    let rank_prefix = format!("{stem}.rank");
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.starts_with(&rank_prefix) && name.ends_with(".ckpt") {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }
}

fn worker_loop(shared: &Shared, solver_threads: usize, checkpoint_dir: Option<&std::path::Path>) {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(solver_threads)
        .build()
        .expect("rayon pool");
    loop {
        let (hash, spec) = {
            let mut g = lock(shared);
            loop {
                if g.shutdown {
                    return;
                }
                if let Some(claimed) = pop_execution(&mut g) {
                    break claimed;
                }
                g = shared.work.wait(g).unwrap_or_else(|p| p.into_inner());
            }
        };
        let result = pool.install(|| run_scenario_caught_with(&spec, checkpoint_dir));
        complete_execution(shared, hash, result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::RunStatus;
    use crate::spec::BaseCase;

    fn quick(n: usize) -> ScenarioSpec {
        let mut s = ScenarioSpec::new(BaseCase::SteepeningWave { amp: 0.2 }, n);
        s.warmup = 0;
        s.steps = 1;
        s
    }

    #[test]
    fn manual_queue_runs_by_priority_then_fifo() {
        let q = CampaignQueue::manual(ResultStore::new());
        let low = q.submit(&quick(48), 0);
        let high = q.submit(&quick(56), 5);
        let mid_a = q.submit(&quick(64), 1);
        let mid_b = q.submit(&quick(72), 1);
        assert_eq!(q.outstanding(), 4);

        let order: Vec<JobId> = std::iter::from_fn(|| q.run_next()).collect();
        assert_eq!(order, vec![high, mid_a, mid_b, low]);
        assert_eq!(q.outstanding(), 0);

        // Streaming yields the same order, all fresh.
        for expect in [high, mid_a, mid_b, low] {
            let (id, result, cached) = q.next_completed(Duration::from_secs(1)).unwrap();
            assert_eq!(id, expect);
            assert!(!cached);
            assert!(result.status.is_ok());
        }
        assert!(q.next_completed(Duration::from_millis(10)).is_none());
    }

    #[test]
    fn cancel_only_affects_queued_jobs() {
        let q = CampaignQueue::manual(ResultStore::new());
        let keep = q.submit(&quick(48), 0);
        let drop_me = q.submit(&quick(64), 0);
        assert!(matches!(
            q.poll(drop_me),
            Some(JobState::Queued { priority: 0 })
        ));
        assert!(q.cancel(drop_me));
        assert!(matches!(q.poll(drop_me), Some(JobState::Cancelled)));
        assert!(!q.cancel(drop_me), "double-cancel is a no-op");
        assert_eq!(q.outstanding(), 1, "cancelled execution dequeued");

        assert_eq!(q.run_next(), Some(keep));
        assert!(q.run_next().is_none(), "cancelled job never runs");
        assert!(matches!(q.poll(keep), Some(JobState::Done { .. })));
        assert!(!q.cancel(keep), "finished jobs cannot be cancelled");
        assert!(!q.cancel(9999), "unknown ids cannot be cancelled");

        // Exactly one completion streams out.
        assert!(q.next_completed(Duration::from_secs(1)).is_some());
        assert!(q.next_completed(Duration::from_millis(10)).is_none());
    }

    #[test]
    fn duplicate_submissions_coalesce_onto_one_execution() {
        let q = CampaignQueue::manual(ResultStore::new());
        let first = q.submit(&quick(48), 0);
        let second = q.submit(&quick(48), 0);
        assert_eq!(q.outstanding(), 1, "same hash, one execution");

        assert_eq!(q.run_next(), Some(first));
        assert!(q.run_next().is_none());

        let (id_a, res_a, cached_a) = q.next_completed(Duration::from_secs(1)).unwrap();
        let (id_b, res_b, cached_b) = q.next_completed(Duration::from_secs(1)).unwrap();
        assert_eq!((id_a, cached_a), (first, false));
        assert_eq!((id_b, cached_b), (second, true));
        assert!(Arc::ptr_eq(&res_a, &res_b), "one result, shared");
        let (len, hits, misses) = q.store_stats();
        assert_eq!(len, 1);
        assert_eq!(misses, 1, "the first submission's planning miss");
        assert_eq!(hits, 1, "the coalesced waiter counts as a hit");
    }

    #[test]
    fn queue_metrics_feed_the_global_registry() {
        // The registry is process-global and cumulative, so assert on
        // deltas — other tests in this binary also record into it.
        let reg = igr_obs::Registry::global();
        let before = reg.snapshot();
        let q = CampaignQueue::manual(ResultStore::new());
        let a = q.submit(&quick(40), 0);
        let _b = q.submit(&quick(40), 0); // coalesces onto a's execution
        q.run_next();
        let _ = q.poll(a);
        let after = reg.snapshot();
        let dc = |name: &str| after.counter(name).unwrap_or(0) - before.counter(name).unwrap_or(0);
        let dh = |name: &str| {
            after.histogram(name).map_or(0, |h| h.count)
                - before.histogram(name).map_or(0, |h| h.count)
        };
        assert!(dc("queue.submit") >= 2, "both submissions counted");
        assert!(dc("queue.coalesce") >= 1, "the duplicate coalesced");
        assert!(dc("queue.poll") >= 1);
        assert!(dh("queue.time_in_queue") >= 1, "claimed execution timed");
        assert!(dh("queue.exec_latency") >= 1, "completed execution timed");
    }

    #[test]
    fn resubmitting_a_done_scenario_is_an_immediate_cache_hit() {
        let q = CampaignQueue::manual(ResultStore::new());
        let first = q.submit(&quick(48), 0);
        q.run_next();
        let hit = q.submit(&quick(48), 0);
        assert_ne!(first, hit);
        match q.poll(hit) {
            Some(JobState::Done { cached, .. }) => assert!(cached),
            s => panic!("expected immediate Done, got {s:?}"),
        }
        assert_eq!(q.outstanding(), 0, "no execution was queued");
    }

    #[test]
    fn priority_escalation_reorders_queued_work() {
        let q = CampaignQueue::manual(ResultStore::new());
        let a = q.submit(&quick(48), 0);
        let b = q.submit(&quick(64), 0);
        // Someone urgent re-submits b's physics at priority 9.
        let b2 = q.submit(&quick(64), 9);
        assert_eq!(q.run_next(), Some(b), "escalated execution runs first");
        assert_eq!(q.run_next(), Some(a));
        // b and b2 both completed from the one execution.
        assert!(matches!(
            q.poll(b),
            Some(JobState::Done { cached: false, .. })
        ));
        assert!(matches!(
            q.poll(b2),
            Some(JobState::Done { cached: true, .. })
        ));
    }

    #[test]
    fn panicking_scenario_fails_its_job_and_queue_survives() {
        let q = CampaignQueue::manual(ResultStore::new());
        let mut bad = quick(48);
        bad.label = Some("__panic_injection__".into());
        let bad_id = q.submit(&bad, 0);
        let good_id = q.submit(&quick(64), 0);
        q.run_next();
        q.run_next();
        match q.poll(bad_id) {
            Some(JobState::Done { result, .. }) => match &result.status {
                RunStatus::Failed(msg) => assert!(msg.contains("panicked"), "{msg}"),
                s => panic!("expected Failed, got {s:?}"),
            },
            s => panic!("expected Done, got {s:?}"),
        }
        assert!(matches!(q.poll(good_id), Some(JobState::Done { .. })));
    }

    #[test]
    fn quarantine_settles_transient_failures_and_sweeps_their_restart_files() {
        let dir = std::env::temp_dir().join("igr_queue_quarantine_sweep");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let q = CampaignQueue::manual_with_checkpoints(ResultStore::new(), dir.clone());

        let mut bad = quick(48);
        bad.label = Some("__panic_injection__".into());
        let mut normalized = bad.clone();
        normalized.normalize();
        let hash = normalized.content_hash();

        // Orphans a dying worker could have left: the single-block restart
        // file and a rank shard — plus a *foreign* scenario's file that the
        // sweep must leave alone.
        let mine = dir.join(format!("{hash:016x}.ckpt"));
        let mine_rank = dir.join(format!("{hash:016x}.rank1.ckpt"));
        let foreign = dir.join("00000000deadbeef.ckpt");
        for p in [&mine, &mine_rank, &foreign] {
            std::fs::write(p, b"stale").unwrap();
        }

        // Transient failures burn retry attempts; while retry budget
        // remains the scenario might still complete on a future attempt,
        // so its restart files stay.
        for attempt in 1..crate::store::QUARANTINE_AFTER {
            let id = q.submit(&bad, 0);
            assert_eq!(q.run_next(), Some(id), "attempt {attempt} re-executes");
            assert!(mine.exists(), "retryable failure keeps restart files");
            assert!(mine_rank.exists());
        }
        assert_eq!(q.quarantined(), 0, "retry budget not exhausted yet");

        // The final attempt quarantines the scenario: the failure settles
        // and its orphaned restart files are swept.
        let last = q.submit(&bad, 0);
        assert_eq!(q.run_next(), Some(last));
        assert_eq!(q.quarantined(), 1);
        assert!(!mine.exists(), "quarantine sweeps the restart file");
        assert!(!mine_rank.exists(), "quarantine sweeps rank shards too");
        assert!(foreign.exists(), "other scenarios' files are untouched");

        // Settled: a resubmission is served the cached failure, no compute.
        let done = q.submit(&bad, 0);
        assert!(matches!(
            q.poll(done),
            Some(JobState::Done { cached: true, .. })
        ));
        assert!(q.run_next().is_none());
    }

    #[test]
    fn cancelling_a_queued_job_sweeps_its_restart_files() {
        let dir = std::env::temp_dir().join("igr_queue_cancel_sweep");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let q = CampaignQueue::manual_with_checkpoints(ResultStore::new(), dir.clone());

        let mut spec = quick(48);
        spec.normalize();
        let hash = spec.content_hash();
        let mine = dir.join(format!("{hash:016x}.ckpt"));
        let foreign = dir.join("00000000deadbeef.ckpt");
        std::fs::write(&mine, b"stale").unwrap();
        std::fs::write(&foreign, b"stale").unwrap();

        // Cancelling the last waiter drops the pending execution — nothing
        // will ever consume its restart file, so it goes too.
        let id = q.submit(&spec, 0);
        assert!(q.cancel(id));
        assert!(!mine.exists(), "cancelled execution keeps no restart file");
        assert!(foreign.exists(), "other scenarios' files are untouched");
    }

    #[test]
    fn imported_results_complete_queued_executions_as_cache_hits() {
        let q = CampaignQueue::manual(ResultStore::new());
        let mut spec = quick(48);
        spec.normalize();
        let hash = spec.content_hash();
        let id = q.submit(&spec, 0);
        assert_eq!(q.outstanding(), 1);

        // A peer's result for the same hash arrives before a worker claims
        // the execution: the queued job completes as a cache hit and the
        // pending execution evaporates.
        let peer_result = {
            let mut r = crate::report::ScenarioResult {
                name: "peer".into(),
                hash_hex: format!("{hash:016x}"),
                status: RunStatus::Completed,
                cells: 1,
                steps: 1,
                ranks: 1,
                wall_s: 0.0,
                ns_per_cell_step: 0.0,
                mass_drift: 0.0,
                energy_drift: 0.0,
                base_heating: None,
                series: None,
                resumed_from: None,
                actions: None,
                recoveries: None,
            };
            r.steps = 7;
            r
        };
        assert!(q.import_result(hash, peer_result.clone()));
        assert!(
            !q.import_result(hash, peer_result.clone()),
            "imports never clobber a successful local entry"
        );
        assert_eq!(q.outstanding(), 0);
        assert!(q.run_next().is_none(), "stale heap entry is skipped");
        match q.poll(id) {
            Some(JobState::Done { result, cached }) => {
                assert!(cached);
                assert_eq!(result.name, "peer");
            }
            s => panic!("expected Done, got {s:?}"),
        }
        let (jid, _, cached) = q.next_completed(Duration::from_secs(1)).unwrap();
        assert_eq!(jid, id);
        assert!(cached);
        assert_eq!(q.executed(), 0, "no local compute was spent");

        // Failed results are rejected outright.
        let mut failed = peer_result;
        failed.status = RunStatus::Failed("peer blew up".into());
        assert!(!q.import_result(999, failed));

        // The inventory reflects what a SYNC would advertise.
        let digests = q.store_digests();
        assert_eq!(digests.len(), 1);
        assert_eq!(digests[0].0, hash);
        let exported = q.export_results(&[hash, 999]);
        assert_eq!(exported.len(), 1, "unknown hashes are skipped");
        assert_eq!(exported[0].1.steps, 7);
    }

    #[test]
    fn background_workers_stream_a_growing_submission_set() {
        let q = CampaignQueue::with_store(
            ExecConfig {
                workers: 2,
                threads_per_worker: 1,
                ..Default::default()
            },
            ResultStore::new(),
        );
        // Submit in two waves, polling between them — the queue never sees
        // the whole "sweep" at once.
        let wave1 = q.submit_all(&[quick(48), quick(56)], 0);
        let mut seen = Vec::new();
        while seen.len() < 2 {
            let (id, result, _) = q
                .next_completed(Duration::from_secs(30))
                .expect("wave 1 completes");
            assert!(result.status.is_ok());
            seen.push(id);
        }
        let wave2 = q.submit_all(&[quick(64), quick(72)], 3);
        while seen.len() < 4 {
            let (id, _, _) = q
                .next_completed(Duration::from_secs(30))
                .expect("wave 2 completes");
            seen.push(id);
        }
        assert!(q.wait_all(Duration::from_secs(30)));
        let mut expected: Vec<JobId> = wave1.iter().chain(&wave2).copied().collect();
        expected.sort_unstable();
        seen.sort_unstable();
        assert_eq!(seen, expected);

        let store = q.shutdown();
        assert_eq!(store.len(), 4);
    }
}
