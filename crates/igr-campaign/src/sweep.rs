//! Sweep expansion: parameter axes → scenario lists.
//!
//! §3 of the paper frames the whole exercise as *simulation campaigns*:
//! engineers sweep engine-out combinations, thrust-vectoring angles, and
//! altitude/backpressure conditions — "conducting simulation campaigns for
//! design and failure-mode coverage" — rather than running one hero case.
//! [`Sweep`] is that campaign enumerator: declare axes of parameter values,
//! expand to the cartesian product (or a zip, or a seeded random sample of
//! the product), and hand the resulting [`ScenarioSpec`]s to the executor.

use crate::spec::{BaseCase, ControllerSpec, ScenarioSpec, SchemeKind};
use igr_app::jets::GimbalSchedule;
use igr_prec::PrecisionMode;

/// One value of one campaign parameter.
#[derive(Clone, Debug, PartialEq)]
pub enum Delta {
    /// Set the resolution parameter (cells across the characteristic
    /// length).
    Resolution(usize),
    /// Set the floating-point mode (FP64 / FP32 / FP16-storage).
    Precision(PrecisionMode),
    /// Set the solver scheme (IGR or the WENO baseline).
    Scheme(SchemeKind),
    /// Set the timed step count.
    Steps(usize),
    /// Set the untimed warm-up step count.
    Warmup(usize),
    /// Replace the engine-out set.
    EngineOut(Vec<usize>),
    /// Replace the gimbal overrides.
    Gimbal(Vec<(usize, GimbalSchedule)>),
    /// Set the ambient backpressure (altitude condition).
    Backpressure(f64),
    /// `None` restores the base-case ambient.
    BackpressureDefault,
    /// Override the CFL number.
    Cfl(f64),
    /// Override the elliptic sweep count (IGR only).
    EllipticSweeps(usize),
    /// Override the IGR strength prefactor.
    AlphaFactor(f64),
    /// Decompose the run over this many `igr-comm` thread-ranks.
    Ranks(usize),
    /// Replace the base case itself (e.g. sweep over workloads).
    Base(BaseCase),
    /// Attach a closed-loop gimbal feedback controller.
    Controller(ControllerSpec),
    /// `None` removes the controller (the open-loop point of a gain sweep).
    ControllerOff,
}

impl Delta {
    /// A gimbal override ramping `engine` from neutral to `to` at a fixed
    /// angular slew rate starting at t = 0 — the schedule-shaped axis value
    /// for ramp-rate sweeps (see [`GimbalSchedule::ramp_at_rate`]).
    pub fn gimbal_ramp(engine: usize, to: [f64; 2], rate: f64) -> Delta {
        Delta::Gimbal(vec![(
            engine,
            GimbalSchedule::ramp_at_rate(0.0, [0.0, 0.0], to, rate),
        )])
    }

    /// A gimbal override following `knots` re-timed to honour a slew limit
    /// (see [`GimbalSchedule::slew_limited`]) — the axis value for
    /// actuator-limit sweeps.
    pub fn gimbal_slew(engine: usize, knots: Vec<(f64, [f64; 2])>, max_rate: f64) -> Delta {
        Delta::Gimbal(vec![(
            engine,
            GimbalSchedule::slew_limited(knots, max_rate),
        )])
    }

    fn apply(&self, spec: &mut ScenarioSpec) {
        match self {
            Delta::Resolution(n) => spec.resolution = *n,
            Delta::Precision(p) => spec.precision = *p,
            Delta::Scheme(s) => spec.scheme = *s,
            Delta::Steps(n) => spec.steps = *n,
            Delta::Warmup(n) => spec.warmup = *n,
            Delta::EngineOut(out) => spec.engine_out = out.clone(),
            Delta::Gimbal(g) => spec.gimbal = g.clone(),
            Delta::Backpressure(p) => spec.backpressure = Some(*p),
            Delta::BackpressureDefault => spec.backpressure = None,
            Delta::Cfl(c) => spec.cfl = Some(*c),
            Delta::EllipticSweeps(s) => spec.elliptic_sweeps = Some(*s),
            Delta::AlphaFactor(a) => spec.alpha_factor = Some(*a),
            Delta::Ranks(r) => spec.ranks = Some(*r),
            Delta::Base(b) => spec.base = b.clone(),
            Delta::Controller(c) => spec.controller = Some(c.clone()),
            Delta::ControllerOff => spec.controller = None,
        }
    }
}

/// A named list of values for one parameter.
#[derive(Clone, Debug)]
pub struct ParamAxis {
    /// Axis label (reports and zip-length error messages).
    pub name: String,
    /// The values the axis takes, one scenario dimension each.
    pub values: Vec<Delta>,
}

impl ParamAxis {
    /// A named axis; panics on an empty value list (an empty axis would
    /// silently collapse a cartesian product to zero scenarios).
    pub fn new(name: impl Into<String>, values: Vec<Delta>) -> Self {
        let name = name.into();
        assert!(!values.is_empty(), "axis '{name}' has no values");
        ParamAxis { name, values }
    }
}

/// How axes combine during expansion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExpandMode {
    /// Every combination of axis values (product of axis lengths).
    Cartesian,
    /// Element-wise pairing: all axes must have equal length; scenario `i`
    /// takes value `i` of every axis.
    Zip,
    /// A seeded uniform sample (without replacement) of `count` points from
    /// the cartesian product — campaigns whose full product is too large.
    Sampled {
        /// Scenarios to draw (capped at the full product size).
        count: usize,
        /// PRNG seed: the same seed reproduces the same sample.
        seed: u64,
    },
}

/// A campaign sweep: a base spec plus parameter axes.
///
/// ```
/// use igr_campaign::{BaseCase, Delta, ScenarioSpec, Sweep};
///
/// let sweep = Sweep::cartesian(ScenarioSpec::new(BaseCase::EngineRow2d { engines: 3 }, 24))
///     .axis("engine_out", vec![
///         Delta::EngineOut(vec![]),
///         Delta::EngineOut(vec![0]),
///         Delta::EngineOut(vec![1]),
///     ])
///     .axis("altitude", vec![
///         Delta::Backpressure(1.0),
///         Delta::Backpressure(0.25),
///     ]);
/// assert_eq!(sweep.len(), 3 * 2);
/// assert_eq!(sweep.expand().len(), 6);
/// ```
#[derive(Clone, Debug)]
pub struct Sweep {
    /// The spec every scenario starts from.
    pub base: ScenarioSpec,
    /// Parameter axes, applied in declaration order.
    pub axes: Vec<ParamAxis>,
    /// How the axes combine.
    pub mode: ExpandMode,
}

impl Sweep {
    /// A sweep expanding to the cartesian product of its axes.
    pub fn cartesian(base: ScenarioSpec) -> Self {
        Sweep {
            base,
            axes: Vec::new(),
            mode: ExpandMode::Cartesian,
        }
    }

    /// A sweep pairing its axes element-wise (all must be equal length).
    pub fn zip(base: ScenarioSpec) -> Self {
        Sweep {
            base,
            axes: Vec::new(),
            mode: ExpandMode::Zip,
        }
    }

    /// A sweep drawing a seeded uniform sample of `count` points from the
    /// cartesian product.
    pub fn sampled(base: ScenarioSpec, count: usize, seed: u64) -> Self {
        Sweep {
            base,
            axes: Vec::new(),
            mode: ExpandMode::Sampled { count, seed },
        }
    }

    /// Add an axis (builder style).
    pub fn axis(mut self, name: impl Into<String>, values: Vec<Delta>) -> Self {
        self.axes.push(ParamAxis::new(name, values));
        self
    }

    /// Number of scenarios [`Self::expand`] will produce.
    pub fn len(&self) -> usize {
        match self.mode {
            ExpandMode::Cartesian => self.axes.iter().map(|a| a.values.len()).product::<usize>(),
            ExpandMode::Zip => self.axes.first().map(|a| a.values.len()).unwrap_or(1),
            ExpandMode::Sampled { count, .. } => {
                count.min(self.axes.iter().map(|a| a.values.len()).product::<usize>())
            }
        }
    }

    /// True when [`Self::expand`] would produce nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expand to the scenario list. Each scenario is the base spec with one
    /// value per axis applied (later axes after earlier ones), normalized.
    pub fn expand(&self) -> Vec<ScenarioSpec> {
        let total: usize = self.axes.iter().map(|a| a.values.len()).product();
        let indices: Vec<Vec<usize>> = match self.mode {
            ExpandMode::Cartesian => (0..total).map(|flat| self.unflatten(flat)).collect(),
            ExpandMode::Zip => {
                let n = self.axes.first().map(|a| a.values.len()).unwrap_or(0);
                for a in &self.axes {
                    assert_eq!(
                        a.values.len(),
                        n,
                        "zip sweep: axis '{}' length differs",
                        a.name
                    );
                }
                if self.axes.is_empty() {
                    vec![Vec::new()]
                } else {
                    (0..n).map(|i| vec![i; self.axes.len()]).collect()
                }
            }
            ExpandMode::Sampled { count, seed } => sampled_prefix(total, count, seed)
                .into_iter()
                .map(|f| self.unflatten(f))
                .collect(),
        };
        indices
            .into_iter()
            .map(|idx| {
                let mut spec = self.base.clone();
                for (axis, &vi) in self.axes.iter().zip(&idx) {
                    axis.values[vi].apply(&mut spec);
                }
                spec.normalize();
                spec
            })
            .collect()
    }

    /// Mixed-radix decomposition of a flat cartesian index (first axis
    /// varies slowest).
    fn unflatten(&self, mut flat: usize) -> Vec<usize> {
        let mut idx = vec![0usize; self.axes.len()];
        for (k, axis) in self.axes.iter().enumerate().rev() {
            let len = axis.values.len();
            idx[k] = flat % len;
            flat /= len;
        }
        idx
    }
}

/// A seeded uniform sample (without replacement) of `count` flat indices
/// from `0..total`: a Fisher–Yates prefix driven by splitmix64.
///
/// The per-step draw uses Lemire's multiply-shift bounded sampling with
/// rejection, so every index in the shrinking `i..total` window is exactly
/// equally likely — a plain `next() % bound` is biased toward small values
/// whenever `bound` does not divide 2^64, which silently skews which corner
/// of a parameter box a sampled campaign covers.
fn sampled_prefix(total: usize, count: usize, seed: u64) -> Vec<usize> {
    let mut flat: Vec<usize> = (0..total).collect();
    let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    // Lemire 2019 (doi:10.1145/3230636): u64 → [0, bound) via the high half
    // of a 128-bit product, rejecting the small sliver of inputs whose low
    // half would make some residues appear one extra time.
    let mut bounded = move |bound: u64| -> u64 {
        debug_assert!(bound > 0);
        let mut m = (next() as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound; // (2^64 - bound) % bound
            while lo < threshold {
                m = (next() as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    };
    let take = count.min(total);
    for i in 0..take {
        let j = i + bounded((total - i) as u64) as usize;
        flat.swap(i, j);
    }
    flat.truncate(take);
    flat
}

/// The ISSUE's canonical example: engine-out × gimbal angle × backpressure
/// on the 3-engine array at laptop-scale resolution. Gimbal tilts the two
/// outer engines inward by the given angle (the steering configuration).
pub fn engine_out_gimbal_backpressure(
    resolution: usize,
    steps: usize,
    engine_out_sets: &[Vec<usize>],
    gimbal_angles: &[f64],
    backpressures: &[f64],
) -> Sweep {
    let mut base = ScenarioSpec::new(BaseCase::EngineRow2d { engines: 3 }, resolution);
    base.steps = steps;
    Sweep::cartesian(base)
        .axis(
            "engine_out",
            engine_out_sets
                .iter()
                .map(|s| Delta::EngineOut(s.clone()))
                .collect(),
        )
        .axis(
            "gimbal",
            gimbal_angles
                .iter()
                .map(|&a| {
                    if a == 0.0 {
                        Delta::Gimbal(Vec::new())
                    } else {
                        Delta::Gimbal(vec![
                            (0, GimbalSchedule::constant([a, 0.0])),
                            (2, GimbalSchedule::constant([-a, 0.0])),
                        ])
                    }
                })
                .collect(),
        )
        .axis(
            "backpressure",
            backpressures
                .iter()
                .map(|&p| Delta::Backpressure(p))
                .collect(),
        )
}

/// A ramp-rate axis for the 3-engine steering configuration: each value
/// ramps the outer pair inward to `angle` at one of the given slew rates
/// (so the sweep covers "how fast can we vector?" rather than only "how
/// far?"). Rate 0 is shorthand for the instantaneous (constant) gimbal.
pub fn gimbal_ramp_rate_axis(angle: f64, rates: &[f64]) -> Vec<Delta> {
    rates
        .iter()
        .map(|&r| {
            if r == 0.0 {
                Delta::Gimbal(vec![
                    (0, GimbalSchedule::constant([angle, 0.0])),
                    (2, GimbalSchedule::constant([-angle, 0.0])),
                ])
            } else {
                Delta::Gimbal(vec![
                    (
                        0,
                        GimbalSchedule::ramp_at_rate(0.0, [0.0, 0.0], [angle, 0.0], r),
                    ),
                    (
                        2,
                        GimbalSchedule::ramp_at_rate(0.0, [0.0, 0.0], [-angle, 0.0], r),
                    ),
                ])
            }
        })
        .collect()
}

/// A controller-gain axis for closed-loop campaigns: each value attaches a
/// proportional gimbal feedback controller with one of the given gains
/// (slewing at `rate`, firing every `every` timed steps). Gain 0 is
/// shorthand for the open-loop point — no controller at all — so a gain
/// sweep always brackets its uncontrolled baseline. Mirrors
/// [`gimbal_ramp_rate_axis`] in shape.
pub fn controller_gain_axis(gains: &[f64], rate: f64, every: usize) -> Vec<Delta> {
    gains
        .iter()
        .map(|&g| {
            if g == 0.0 {
                Delta::ControllerOff
            } else {
                Delta::Controller(ControllerSpec {
                    gain: g,
                    rate,
                    every,
                })
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ScenarioSpec {
        ScenarioSpec::new(BaseCase::EngineRow2d { engines: 3 }, 16)
    }

    #[test]
    fn cartesian_count_is_the_product_of_axis_lengths() {
        let sweep = engine_out_gimbal_backpressure(
            16,
            2,
            &[vec![], vec![0], vec![1], vec![2]],
            &[0.0, 0.06, 0.12],
            &[1.0, 0.25],
        );
        assert_eq!(sweep.len(), 24);
        let specs = sweep.expand();
        assert_eq!(specs.len(), 24);
        // All distinct physics.
        let mut hashes: Vec<u64> = specs.iter().map(|s| s.content_hash()).collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), 24, "every cartesian point is unique");
    }

    #[test]
    fn zip_pairs_axes_elementwise() {
        let sweep = Sweep::zip(base())
            .axis(
                "precision",
                vec![
                    Delta::Precision(PrecisionMode::Fp64),
                    Delta::Precision(PrecisionMode::Fp32),
                ],
            )
            .axis(
                "resolution",
                vec![Delta::Resolution(16), Delta::Resolution(24)],
            );
        assert_eq!(sweep.len(), 2);
        let specs = sweep.expand();
        assert_eq!(specs[0].precision, PrecisionMode::Fp64);
        assert_eq!(specs[0].resolution, 16);
        assert_eq!(specs[1].precision, PrecisionMode::Fp32);
        assert_eq!(specs[1].resolution, 24);
    }

    #[test]
    #[should_panic(expected = "length differs")]
    fn zip_rejects_unequal_axes() {
        Sweep::zip(base())
            .axis("a", vec![Delta::Steps(1), Delta::Steps(2)])
            .axis("b", vec![Delta::Warmup(0)])
            .expand();
    }

    #[test]
    fn sampled_draws_distinct_points_deterministically() {
        let full = engine_out_gimbal_backpressure(
            16,
            2,
            &[vec![], vec![0], vec![1], vec![2]],
            &[0.0, 0.06, 0.12],
            &[1.0, 0.25],
        );
        let sampled = Sweep {
            mode: ExpandMode::Sampled { count: 10, seed: 7 },
            ..full.clone()
        };
        assert_eq!(sampled.len(), 10);
        let a = sampled.expand();
        let b = sampled.expand();
        assert_eq!(a.len(), 10);
        let ha: Vec<u64> = a.iter().map(|s| s.content_hash()).collect();
        let hb: Vec<u64> = b.iter().map(|s| s.content_hash()).collect();
        assert_eq!(ha, hb, "same seed, same sample");
        let mut dedup = ha.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10, "sampling is without replacement");
        // Oversampling clamps to the product size.
        let over = Sweep {
            mode: ExpandMode::Sampled { count: 99, seed: 7 },
            ..full
        };
        assert_eq!(over.expand().len(), 24);
    }

    #[test]
    fn bounded_sampling_is_uniform_across_the_window() {
        // Distribution test for the Lemire bounded draw that replaced the
        // modulo-biased `next() % bound`: the first Fisher–Yates pick over a
        // 7-wide window must land on each index equally often across seeds.
        // 7000 trials, expected 1000 each, σ = √(7000·(1/7)(6/7)) ≈ 29 —
        // the ±150 band is > 5σ, so a false failure is ~impossible while a
        // systematic skew (what modulo bias produces at large bounds) fails.
        const TOTAL: usize = 7;
        const TRIALS: u64 = 7000;
        let mut counts = [0usize; TOTAL];
        for seed in 0..TRIALS {
            let picks = sampled_prefix(TOTAL, 1, seed);
            counts[picks[0]] += 1;
        }
        let expected = TRIALS as f64 / TOTAL as f64;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected).abs() < 150.0,
                "index {i} drawn {c} times, expected ~{expected}: {counts:?}"
            );
        }
    }

    #[test]
    fn sampled_prefix_is_a_permutation_prefix() {
        // Every draw stays in range, without replacement, for many window
        // sizes (incl. bounds adjacent to powers of two, where rejection
        // thresholds are exercised).
        for total in [1usize, 2, 3, 5, 8, 9, 15, 16, 17, 100] {
            let picks = sampled_prefix(total, total, 42);
            let mut sorted = picks.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), total, "total={total}: {picks:?}");
            assert!(sorted.iter().all(|&i| i < total));
        }
    }

    /// The schedule-shaped axis expands like any other — every ramp rate is
    /// a distinct scenario, the schedules survive into the expanded specs,
    /// and scenario names flag the time variation.
    #[test]
    fn ramp_rate_axis_expands_to_distinct_time_varying_scenarios() {
        let rates = [0.0, 0.05, 0.2];
        let sweep = Sweep::cartesian(base())
            .axis("ramp_rate", gimbal_ramp_rate_axis(0.1, &rates))
            .axis(
                "altitude",
                vec![Delta::Backpressure(1.0), Delta::Backpressure(0.25)],
            );
        assert_eq!(sweep.len(), 6);
        let specs = sweep.expand();
        let mut hashes: Vec<u64> = specs.iter().map(|s| s.content_hash()).collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), 6, "every (rate, altitude) point is unique");
        // Rate 0.05: the outer engines take 0.1/0.05 = 2 time units to
        // reach full deflection; halfway through they are halfway there.
        let slow = &specs[2]; // rates[1] × backpressure[0]
        let sched = &slow.gimbal.iter().find(|(i, _)| *i == 0).unwrap().1;
        assert_eq!(sched.knots.len(), 2);
        assert!((sched.at(1.0)[0] - 0.05).abs() < 1e-14);
        assert!((sched.at(10.0)[0] - 0.1).abs() < 1e-14);
        assert!(
            slow.scenario_name().contains('~'),
            "time-varying marker: {}",
            slow.scenario_name()
        );
        // Rate 0 collapses to the constant steering configuration.
        assert_eq!(specs[0].gimbal[0].1.knots.len(), 1);
    }

    /// The controller axis expands like the ramp-rate axis: every gain is a
    /// distinct scenario, gain 0 is the open-loop baseline, and the
    /// controller spec survives into the expanded specs (and their names).
    #[test]
    fn controller_gain_axis_expands_to_distinct_closed_loop_scenarios() {
        let gains = [0.0, 0.5, 1.5];
        let sweep = Sweep::cartesian(base())
            .axis("gain", controller_gain_axis(&gains, 0.2, 5))
            .axis(
                "engine_out",
                vec![Delta::EngineOut(vec![]), Delta::EngineOut(vec![1])],
            );
        assert_eq!(sweep.len(), 6);
        let specs = sweep.expand();
        let mut hashes: Vec<u64> = specs.iter().map(|s| s.content_hash()).collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), 6, "every (gain, out) point is unique");
        // Gain 0 is the open-loop baseline — no controller attached.
        assert_eq!(specs[0].controller, None);
        // Non-zero gains carry the full controller spec through expansion.
        let closed = &specs[2]; // gains[1] × engine_out[0]
        let c = closed.controller.as_ref().expect("gain 0.5 is closed-loop");
        assert_eq!(c.gain, 0.5);
        assert_eq!(c.rate, 0.2);
        assert_eq!(c.every, 5);
        assert!(
            closed.scenario_name().contains("+ctrl0.50"),
            "{}",
            closed.scenario_name()
        );
        // Every expanded point is executable (the axis respects validate()).
        for s in &specs {
            s.validate().expect("expanded controller specs are valid");
        }
    }

    #[test]
    fn controller_off_delta_clears_an_inherited_controller() {
        // A zip sweep whose base already carries a controller: the axis can
        // switch it off for specific points.
        let mut b = base();
        b.controller = Some(ControllerSpec::proportional(2.0));
        let sweep = Sweep::zip(b).axis(
            "gain",
            vec![
                Delta::ControllerOff,
                Delta::Controller(ControllerSpec::proportional(1.0)),
            ],
        );
        let specs = sweep.expand();
        assert_eq!(specs[0].controller, None);
        assert_eq!(specs[1].controller.as_ref().unwrap().gain, 1.0);
    }

    #[test]
    fn slew_delta_applies_a_limited_schedule() {
        let sweep = Sweep::cartesian(base()).axis(
            "slew",
            vec![Delta::gimbal_slew(
                1,
                vec![(0.0, [0.0, 0.0]), (0.1, [0.2, 0.0])],
                0.5,
            )],
        );
        let specs = sweep.expand();
        let sched = &specs[0].gimbal[0].1;
        // 0.2 rad at ≤ 0.5 rad/t needs ≥ 0.4 t (the requested 0.1 t is
        // stretched).
        assert!((sched.knots[1].0 - 0.4).abs() < 1e-14, "{:?}", sched.knots);
    }

    #[test]
    fn no_axes_yields_the_base_spec() {
        let sweep = Sweep::cartesian(base());
        let specs = sweep.expand();
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].content_hash(), {
            let mut b = base();
            b.normalize();
            b.content_hash()
        });
    }
}
