//! The campaign wire protocol: line-delimited JSON over a byte stream.
//!
//! This module is the *codec* — message types plus their encode/decode —
//! shared by the TCP server and client in [`crate::serve`]. The normative
//! specification (grammar, version negotiation, error codes, examples)
//! lives in `docs/PROTOCOL.md`; this doc comment is the implementation
//! summary.
//!
//! Framing: every message is **one JSON object on one `\n`-terminated
//! line**, UTF-8, in the same hand-rolled JSON dialect as the store file
//! ([`crate::persist`]) — notably, non-finite floats are the tagged strings
//! `"NaN"` / `"inf"` / `"-inf"`, and `u64` values that may exceed 2⁵³
//! (RNG seeds) travel as decimal strings. Result payloads embed the store's
//! line object *verbatim*, so the wire format and the file format can never
//! drift apart.
//!
//! A session is: one [`Request::Hello`] handshake (carrying
//! [`PROTO_VERSION`] and [`CONTENT_HASH_VERSION`]; either mismatching is a
//! [`ErrorCode::VersionMismatch`]), then any number of request/response
//! exchanges. Every response line carries `"ok"`; failures are
//! [`Response::Error`] with a machine-readable [`ErrorCode`] — and fail
//! only that request, never the connection (except version mismatches and
//! server shutdown).
//!
//! ```no_run
//! use igr_campaign::protocol::{Request, Response, PROTO_VERSION};
//! use igr_campaign::{ScenarioSpec, BaseCase, CONTENT_HASH_VERSION};
//!
//! let req = Request::Submit {
//!     spec: ScenarioSpec::new(BaseCase::Sod, 64),
//!     priority: 5,
//! };
//! let line = req.encode(); // one JSON line, "\n"-terminated
//! let back = Request::decode(line.trim_end()).unwrap();
//! assert!(matches!(back, Request::Submit { priority: 5, .. }));
//! ```

use crate::persist::{self, get, num, Json};
use crate::queue::JobId;
use crate::report::ScenarioResult;
#[allow(unused_imports)] // referenced by doc links
use crate::spec::CONTENT_HASH_VERSION;
use crate::spec::{BaseCase, ControllerSpec, RecoverySpec, ScenarioSpec, SchemeKind};
use igr_app::jets::GimbalSchedule;
use igr_prec::PrecisionMode;

/// Version of the wire protocol. Negotiated in the `HELLO` handshake; the
/// server rejects clients speaking a different major version so the wire
/// format can evolve alongside [`CONTENT_HASH_VERSION`] (which is
/// negotiated in the same handshake — a client keyed to a different hash
/// encoding would silently miss every cache entry).
///
/// History: **v1** — the original grammar. **v2** — the scenario-spec
/// object gained `series_every` (which participates in the content hash
/// when set) and `checkpoint_every`. A v1 peer would silently drop the
/// fields and serve/compute the *plain* spec's cached result for an
/// instrumented submission, so mixed v1/v2 pairs are refused at connect
/// time rather than skewing at cache-hit time. (Decoders still tolerate
/// the keys' absence within v2 — see `docs/PROTOCOL.md` §5.)
/// **v3** — the spec object gained `controller` (a closed-loop
/// [`crate::ControllerSpec`], part of the content hash when set) and
/// result payloads gained the optional `actions` key (the applied
/// [`igr_app::actions::ActionLog`]). A v2 peer would strip the controller
/// and serve the *open-loop* cached result for a closed-loop submission,
/// so the same refuse-at-connect rule applies. (Decoders still tolerate
/// the keys' absence within v3.)
/// **v4** — the spec object gained `recovery` (a self-healing
/// [`crate::RecoverySpec`], part of the content hash when set), result
/// payloads gained the optional `recoveries` key (the rollback log a
/// recovered run accumulated), and `STATS` gained `quarantined`. A v3 peer
/// would strip the recovery policy and serve the *unguarded* cached result
/// for a self-healing submission — the same silent-cache-skew hazard as v2
/// and v3 — so mixed v3/v4 pairs are refused at connect time. (Decoders
/// still tolerate the keys' absence within v4.)
pub const PROTO_VERSION: u64 = 4;

/// Machine-readable failure categories carried by [`Response::Error`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request line was not valid JSON or not a JSON object.
    ParseError,
    /// A request arrived before the `HELLO` handshake.
    HandshakeRequired,
    /// `HELLO` carried a different [`PROTO_VERSION`] or
    /// [`CONTENT_HASH_VERSION`]. The server closes the connection after
    /// sending this.
    VersionMismatch,
    /// The `"op"` field named no known verb.
    UnknownOp,
    /// A required field was missing or had the wrong type/range.
    BadRequest,
    /// `POLL`/`CANCEL` named a job id this connection never submitted.
    UnknownJob,
    /// `SUBMIT` carried a spec that fails [`ScenarioSpec::validate`].
    InvalidSpec,
    /// `COMPACT` on a server whose store has no backing file.
    NotPersistent,
    /// The server is shutting down; no further requests are served.
    ShuttingDown,
    /// The request panicked inside the server; the connection survives.
    Internal,
    /// The peer did not answer within the client's deadline (connect or
    /// read). Generated client-side — it never travels on the wire from a
    /// server — so the federation layer can tell a dead node from a slow
    /// request and fail over.
    Timeout,
}

impl ErrorCode {
    /// The wire spelling (`"parse-error"`, …).
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::ParseError => "parse-error",
            ErrorCode::HandshakeRequired => "handshake-required",
            ErrorCode::VersionMismatch => "version-mismatch",
            ErrorCode::UnknownOp => "unknown-op",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::UnknownJob => "unknown-job",
            ErrorCode::InvalidSpec => "invalid-spec",
            ErrorCode::NotPersistent => "not-persistent",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::Internal => "internal",
            ErrorCode::Timeout => "timeout",
        }
    }

    /// Parse the wire spelling back; `None` for unknown codes (forward
    /// compatibility: clients must treat unknown codes as fatal for the
    /// request, not the connection).
    pub fn parse(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "parse-error" => ErrorCode::ParseError,
            "handshake-required" => ErrorCode::HandshakeRequired,
            "version-mismatch" => ErrorCode::VersionMismatch,
            "unknown-op" => ErrorCode::UnknownOp,
            "bad-request" => ErrorCode::BadRequest,
            "unknown-job" => ErrorCode::UnknownJob,
            "invalid-spec" => ErrorCode::InvalidSpec,
            "not-persistent" => ErrorCode::NotPersistent,
            "shutting-down" => ErrorCode::ShuttingDown,
            "internal" => ErrorCode::Internal,
            "timeout" => ErrorCode::Timeout,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One protocol-level failure: a code plus a human-readable detail.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// What category of failure this is.
    pub code: ErrorCode,
    /// Free-form diagnostic text (never required for dispatch).
    pub detail: String,
}

impl WireError {
    /// Shorthand constructor.
    pub fn new(code: ErrorCode, detail: impl Into<String>) -> Self {
        WireError {
            code,
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.detail)
    }
}

impl std::error::Error for WireError {}

/// A client→server message.
#[derive(Clone, Debug)]
pub enum Request {
    /// Mandatory first message: version handshake.
    Hello {
        /// The client's [`PROTO_VERSION`].
        proto: u64,
        /// The client's [`CONTENT_HASH_VERSION`].
        hash_version: u64,
    },
    /// Submit one scenario at a priority (higher runs first).
    Submit {
        /// The scenario to run (or serve from cache).
        spec: ScenarioSpec,
        /// Queue priority; higher runs first, FIFO within a level.
        priority: i32,
    },
    /// Ask where a previously submitted job is in its lifecycle.
    Poll {
        /// Ticket returned by `SUBMIT`.
        job: JobId,
    },
    /// Cancel a queued job (running/finished jobs are not interrupted).
    Cancel {
        /// Ticket returned by `SUBMIT`.
        job: JobId,
    },
    /// Stream up to `max` completed results of this connection's jobs as
    /// they finish, then a `stream-end` marker.
    Stream {
        /// Maximum results to deliver in this exchange.
        max: usize,
        /// Overall deadline for the exchange, milliseconds.
        timeout_ms: u64,
    },
    /// Request server/store statistics.
    Stats,
    /// Request the server's telemetry registry: queue/server counters and
    /// latency histograms. Additive v2 verb (see `docs/PROTOCOL.md` §6):
    /// an older server answers `unknown-op`, which fails only the request.
    Metrics,
    /// Compact the server's backing store file.
    Compact,
    /// Anti-entropy exchange: the requester sends its store's
    /// `(hash, digest)` inventory; the responder answers with the full
    /// result lines the requester lacks (or holds a different digest for)
    /// plus a `want` list of hashes the *responder* lacks. Additive v3 verb
    /// (see `docs/PROTOCOL.md` §6): an older server answers `unknown-op`,
    /// which fails only the request.
    Sync {
        /// The requester's inventory as `(content_hash, result_digest)`
        /// pairs — see [`crate::persist::result_digest`].
        digests: Vec<(u64, u64)>,
    },
    /// Anti-entropy backfill: push full result lines to the responder
    /// (typically answering its `SYNC` `want` list). Additive v3 verb, like
    /// `SYNC`.
    Push {
        /// Full results keyed by content hash, store-line encoding.
        results: Vec<(u64, ScenarioResult)>,
    },
    /// Gracefully stop the server (it finishes by handing its store back
    /// to whoever started it).
    Shutdown,
}

impl Request {
    /// Encode as one `\n`-terminated JSON line.
    pub fn encode(&self) -> String {
        let mut s = match self {
            Request::Hello {
                proto,
                hash_version,
            } => format!("{{\"op\":\"hello\",\"proto\":{proto},\"hash_v\":{hash_version}}}"),
            Request::Submit { spec, priority } => format!(
                "{{\"op\":\"submit\",\"priority\":{priority},\"spec\":{}}}",
                encode_spec(spec)
            ),
            Request::Poll { job } => format!("{{\"op\":\"poll\",\"job\":{job}}}"),
            Request::Cancel { job } => format!("{{\"op\":\"cancel\",\"job\":{job}}}"),
            Request::Stream { max, timeout_ms } => {
                format!("{{\"op\":\"stream\",\"max\":{max},\"timeout_ms\":{timeout_ms}}}")
            }
            Request::Stats => "{\"op\":\"stats\"}".to_string(),
            Request::Metrics => "{\"op\":\"metrics\"}".to_string(),
            Request::Compact => "{\"op\":\"compact\"}".to_string(),
            Request::Sync { digests } => {
                // Hashes and digests are 16-hex strings (the store's hash
                // spelling; digests use it too so the full u64 range
                // survives JSON's 2^53 number window).
                let mut s = String::from("{\"op\":\"sync\",\"digests\":[");
                for (i, (hash, digest)) in digests.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str(&format!("[\"{hash:016x}\",\"{digest:016x}\"]"));
                }
                s.push_str("]}");
                s
            }
            Request::Push { results } => {
                let mut s = String::from("{\"op\":\"push\",\"results\":[");
                for (i, (hash, result)) in results.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str(&persist::encode_result_obj(*hash, result));
                }
                s.push_str("]}");
                s
            }
            Request::Shutdown => "{\"op\":\"shutdown\"}".to_string(),
        };
        s.push('\n');
        s
    }

    /// Decode one request line (without its trailing newline).
    pub fn decode(line: &str) -> Result<Request, WireError> {
        let value = Json::parse(line)
            .map_err(|e| WireError::new(ErrorCode::ParseError, format!("bad JSON: {e}")))?;
        let obj = value
            .as_object()
            .ok_or_else(|| WireError::new(ErrorCode::ParseError, "request is not a JSON object"))?;
        let op = get(obj, "op")
            .and_then(|v| v.as_str().ok_or_else(|| "'op' is not a string".into()))
            .map_err(|e| WireError::new(ErrorCode::ParseError, e))?;
        let bad = |detail: String| WireError::new(ErrorCode::BadRequest, detail);
        match op {
            "hello" => Ok(Request::Hello {
                proto: req_u64(obj, "proto").map_err(bad)?,
                hash_version: req_u64(obj, "hash_v").map_err(bad)?,
            }),
            "submit" => {
                let priority = req_u64_signed(obj, "priority").map_err(bad)?;
                let spec_json = get(obj, "spec").map_err(bad)?;
                let spec = decode_spec_json(spec_json)
                    .map_err(|e| WireError::new(ErrorCode::BadRequest, format!("spec: {e}")))?;
                Ok(Request::Submit { spec, priority })
            }
            "poll" => Ok(Request::Poll {
                job: req_u64(obj, "job").map_err(bad)?,
            }),
            "cancel" => Ok(Request::Cancel {
                job: req_u64(obj, "job").map_err(bad)?,
            }),
            "stream" => Ok(Request::Stream {
                max: req_u64(obj, "max").map_err(bad)? as usize,
                timeout_ms: req_u64(obj, "timeout_ms").map_err(bad)?,
            }),
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "compact" => Ok(Request::Compact),
            "sync" => {
                let mut digests = Vec::new();
                for pair in get(obj, "digests")
                    .map_err(bad)?
                    .as_array()
                    .ok_or_else(|| bad("'digests' is not an array".into()))?
                {
                    let pair = pair
                        .as_array()
                        .ok_or_else(|| bad("digest entry is not an array".into()))?;
                    if pair.len() != 2 {
                        return Err(bad("digest entry is not [hash, digest]".into()));
                    }
                    digests.push((
                        hex_u64(&pair[0], "hash").map_err(bad)?,
                        hex_u64(&pair[1], "digest").map_err(bad)?,
                    ));
                }
                Ok(Request::Sync { digests })
            }
            "push" => {
                let mut results = Vec::new();
                for entry in get(obj, "results")
                    .map_err(bad)?
                    .as_array()
                    .ok_or_else(|| bad("'results' is not an array".into()))?
                {
                    let robj = entry
                        .as_object()
                        .ok_or_else(|| bad("result entry is not an object".into()))?;
                    results.push(persist::decode_result_obj(robj).map_err(bad)?);
                }
                Ok(Request::Push { results })
            }
            "shutdown" => Ok(Request::Shutdown),
            other => Err(WireError::new(
                ErrorCode::UnknownOp,
                format!("unknown op '{other}'"),
            )),
        }
    }
}

/// A job's lifecycle state as reported over the wire (`POLL` responses).
#[derive(Clone, Debug)]
pub enum WireJobState {
    /// Waiting for a worker at this priority.
    Queued {
        /// Current effective priority of the pending execution.
        priority: i32,
    },
    /// A worker is executing it (or the execution it coalesced onto).
    Running,
    /// Cancelled while queued; it will never produce a result.
    Cancelled,
    /// Finished; the result travels inline.
    Done {
        /// The measured (or cache-served) result.
        result: ScenarioResult,
        /// True when served from the store or a coalesced execution.
        cached: bool,
    },
}

/// Server/store statistics (`STATS` responses).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// The server's [`PROTO_VERSION`].
    pub proto: u64,
    /// The server's [`CONTENT_HASH_VERSION`].
    pub hash_version: u64,
    /// Results in the store (memory view, after last-write-wins).
    pub entries: usize,
    /// Store lookups that found an entry.
    pub hits: u64,
    /// Store lookups that found nothing.
    pub misses: u64,
    /// Executions the queue actually ran (cache hits excluded).
    pub executed: u64,
    /// Executions currently queued or running.
    pub outstanding: usize,
    /// Failed scenarios whose transient-retry budget is exhausted — they
    /// will not be re-executed on resubmission (see `docs/RECOVERY.md`).
    pub quarantined: usize,
}

/// One named latency histogram in a `METRICS` response — the wire view of
/// an `igr_obs::HistSnapshot` (log₂ nanosecond buckets).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricHistogram {
    /// Histogram (phase/queue stage) name.
    pub name: String,
    /// Number of recorded durations.
    pub count: u64,
    /// Sum of recorded durations in nanoseconds. Travels as a decimal
    /// string on the wire: a long-lived server's totals can exceed the
    /// 2⁵³ range JSON numbers carry exactly.
    pub total_ns: u64,
    /// Smallest recorded duration, nanoseconds (0 when empty).
    pub min_ns: u64,
    /// Largest recorded duration, nanoseconds.
    pub max_ns: u64,
    /// Non-empty buckets as `(lower_bound_ns, count)`, ascending. A bucket
    /// spans `[lo, 2·max(lo,1))`; bounds are exact powers of two, so they
    /// survive JSON's f64 numbers bit-exactly.
    pub buckets: Vec<(u64, u64)>,
}

/// Server telemetry (`METRICS` responses): every counter and duration
/// histogram the server's `igr-obs` registry holds — queue traffic
/// (`queue.submit`, `queue.coalesce`, …), latency distributions
/// (`queue.time_in_queue`, `queue.exec_latency`), and any solver phases
/// recorded while executing scenarios.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServerMetrics {
    /// Counters as `(name, value)`, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// Histograms, name-sorted.
    pub histograms: Vec<MetricHistogram>,
}

impl ServerMetrics {
    /// Snapshot the process-global `igr-obs` registry into the wire form.
    pub fn from_global_registry() -> ServerMetrics {
        let snap = igr_obs::Registry::global().snapshot();
        ServerMetrics {
            counters: snap.counters,
            histograms: snap
                .histograms
                .into_iter()
                .map(|h| MetricHistogram {
                    name: h.name,
                    count: h.count,
                    total_ns: h.total_ns,
                    min_ns: h.min_ns,
                    max_ns: h.max_ns,
                    buckets: h.buckets,
                })
                .collect(),
        }
    }

    /// Look up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&MetricHistogram> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }
}

/// One streamed completion (`STREAM` responses).
#[derive(Clone, Debug)]
pub struct StreamedResult {
    /// The ticket this result answers.
    pub job: JobId,
    /// True when served from the store or a coalesced execution.
    pub cached: bool,
    /// The content hash the result is stored under.
    pub hash: u64,
    /// The result itself.
    pub result: ScenarioResult,
}

/// A server→client message.
#[derive(Clone, Debug)]
pub enum Response {
    /// Successful handshake, echoing the server's versions.
    Hello {
        /// The server's [`PROTO_VERSION`].
        proto: u64,
        /// The server's [`CONTENT_HASH_VERSION`].
        hash_version: u64,
    },
    /// `SUBMIT` accepted.
    Submitted {
        /// Ticket for `POLL`/`CANCEL`/`STREAM`.
        job: JobId,
        /// The spec's content hash (16 hex digits).
        hash_hex: String,
        /// False when the job was born `Done` from the cache.
        queued: bool,
    },
    /// `POLL` answer.
    Polled {
        /// The polled ticket.
        job: JobId,
        /// Where the job is now.
        state: WireJobState,
    },
    /// `CANCEL` answer.
    Cancelled {
        /// The cancelled ticket.
        job: JobId,
        /// True when the job will now never run.
        cancelled: bool,
    },
    /// One streamed completion (followed by more, then `StreamEnd`).
    Result(StreamedResult),
    /// End of one `STREAM` exchange.
    StreamEnd {
        /// Results delivered in this exchange.
        delivered: usize,
    },
    /// `STATS` answer.
    Stats(ServerStats),
    /// `METRICS` answer.
    Metrics(ServerMetrics),
    /// `COMPACT` answer.
    Compacted {
        /// Live entries the rewritten store file holds.
        live: usize,
        /// Dead lines the rewrite dropped.
        dropped_lines: usize,
    },
    /// `SYNC` answer: the responder's side of the anti-entropy exchange.
    Synced {
        /// Full results the requester lacks (absent hash, or a hash whose
        /// digest differs — last-write-wins is resolved by the requester).
        results: Vec<(u64, ScenarioResult)>,
        /// Hashes the *responder* lacks; the requester answers with `PUSH`.
        want: Vec<u64>,
    },
    /// `PUSH` answer.
    Pushed {
        /// Results the responder imported (already-known hashes are
        /// counted as accepted — the exchange is idempotent).
        accepted: usize,
    },
    /// `SHUTDOWN` acknowledged; the server closes the connection next.
    ShuttingDown,
    /// The request failed; the connection stays usable (except
    /// [`ErrorCode::VersionMismatch`] / [`ErrorCode::ShuttingDown`]).
    Error(WireError),
}

impl Response {
    /// Encode as one `\n`-terminated JSON line.
    pub fn encode(&self) -> String {
        let mut s = match self {
            Response::Hello {
                proto,
                hash_version,
            } => format!(
                "{{\"ok\":true,\"op\":\"hello\",\"proto\":{proto},\"hash_v\":{hash_version}}}"
            ),
            Response::Submitted {
                job,
                hash_hex,
                queued,
            } => format!(
                "{{\"ok\":true,\"op\":\"submit\",\"job\":{job},\"hash\":\"{hash_hex}\",\
                 \"queued\":{queued}}}"
            ),
            Response::Polled { job, state } => match state {
                WireJobState::Queued { priority } => format!(
                    "{{\"ok\":true,\"op\":\"poll\",\"job\":{job},\"state\":\"queued\",\
                     \"priority\":{priority}}}"
                ),
                WireJobState::Running => {
                    format!("{{\"ok\":true,\"op\":\"poll\",\"job\":{job},\"state\":\"running\"}}")
                }
                WireJobState::Cancelled => {
                    format!("{{\"ok\":true,\"op\":\"poll\",\"job\":{job},\"state\":\"cancelled\"}}")
                }
                WireJobState::Done { result, cached } => {
                    let hash = u64::from_str_radix(&result.hash_hex, 16).unwrap_or(0);
                    format!(
                        "{{\"ok\":true,\"op\":\"poll\",\"job\":{job},\"state\":\"done\",\
                         \"cached\":{cached},\"result\":{}}}",
                        persist::encode_result_obj(hash, result)
                    )
                }
            },
            Response::Cancelled { job, cancelled } => {
                format!("{{\"ok\":true,\"op\":\"cancel\",\"job\":{job},\"cancelled\":{cancelled}}}")
            }
            Response::Result(r) => format!(
                "{{\"ok\":true,\"op\":\"result\",\"job\":{},\"cached\":{},\"result\":{}}}",
                r.job,
                r.cached,
                persist::encode_result_obj(r.hash, &r.result)
            ),
            Response::StreamEnd { delivered } => {
                format!("{{\"ok\":true,\"op\":\"stream-end\",\"delivered\":{delivered}}}")
            }
            Response::Stats(st) => format!(
                "{{\"ok\":true,\"op\":\"stats\",\"proto\":{},\"hash_v\":{},\"entries\":{},\
                 \"hits\":{},\"misses\":{},\"executed\":{},\"outstanding\":{},\
                 \"quarantined\":{}}}",
                st.proto,
                st.hash_version,
                st.entries,
                st.hits,
                st.misses,
                st.executed,
                st.outstanding,
                st.quarantined
            ),
            Response::Metrics(m) => {
                let mut s = String::from("{\"ok\":true,\"op\":\"metrics\",\"counters\":{");
                for (i, (name, v)) in m.counters.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str(&format!("{}:{v}", persist::json_str(name)));
                }
                s.push_str("},\"histograms\":[");
                for (i, h) in m.histograms.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str(&format!(
                        "{{\"name\":{},\"count\":{},\"total_ns\":\"{}\",\"min_ns\":{},\
                         \"max_ns\":{},\"buckets\":[",
                        persist::json_str(&h.name),
                        h.count,
                        h.total_ns,
                        h.min_ns,
                        h.max_ns
                    ));
                    for (k, (lo, c)) in h.buckets.iter().enumerate() {
                        if k > 0 {
                            s.push(',');
                        }
                        s.push_str(&format!("[{lo},{c}]"));
                    }
                    s.push_str("]}");
                }
                s.push_str("]}");
                s
            }
            Response::Compacted {
                live,
                dropped_lines,
            } => format!(
                "{{\"ok\":true,\"op\":\"compact\",\"live\":{live},\"dropped\":{dropped_lines}}}"
            ),
            Response::Synced { results, want } => {
                let mut s = String::from("{\"ok\":true,\"op\":\"sync\",\"results\":[");
                for (i, (hash, result)) in results.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str(&persist::encode_result_obj(*hash, result));
                }
                s.push_str("],\"want\":[");
                for (i, hash) in want.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str(&format!("\"{hash:016x}\""));
                }
                s.push_str("]}");
                s
            }
            Response::Pushed { accepted } => {
                format!("{{\"ok\":true,\"op\":\"push\",\"accepted\":{accepted}}}")
            }
            Response::ShuttingDown => "{\"ok\":true,\"op\":\"shutdown\"}".to_string(),
            Response::Error(e) => format!(
                "{{\"ok\":false,\"code\":\"{}\",\"detail\":{}}}",
                e.code.as_str(),
                persist::json_str(&e.detail)
            ),
        };
        s.push('\n');
        s
    }

    /// Decode one response line (without its trailing newline).
    pub fn decode(line: &str) -> Result<Response, String> {
        let value = Json::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
        let obj = value.as_object().ok_or("response is not a JSON object")?;
        let ok = match get(obj, "ok")? {
            Json::Bool(b) => *b,
            _ => return Err("'ok' is not a boolean".into()),
        };
        if !ok {
            let code_str = get(obj, "code")?.as_str().ok_or("'code' is not a string")?;
            let code = ErrorCode::parse(code_str).unwrap_or(ErrorCode::Internal);
            let detail = get(obj, "detail")?
                .as_str()
                .ok_or("'detail' is not a string")?
                .to_string();
            return Ok(Response::Error(WireError { code, detail }));
        }
        let op = get(obj, "op")?.as_str().ok_or("'op' is not a string")?;
        match op {
            "hello" => Ok(Response::Hello {
                proto: req_u64(obj, "proto")?,
                hash_version: req_u64(obj, "hash_v")?,
            }),
            "submit" => Ok(Response::Submitted {
                job: req_u64(obj, "job")?,
                hash_hex: get(obj, "hash")?
                    .as_str()
                    .ok_or("'hash' is not a string")?
                    .to_string(),
                queued: req_bool(obj, "queued")?,
            }),
            "poll" => {
                let job = req_u64(obj, "job")?;
                let state = match get(obj, "state")?.as_str() {
                    Some("queued") => WireJobState::Queued {
                        priority: req_u64_signed(obj, "priority")?,
                    },
                    Some("running") => WireJobState::Running,
                    Some("cancelled") => WireJobState::Cancelled,
                    Some("done") => {
                        let (_, result) = decode_embedded_result(obj)?;
                        WireJobState::Done {
                            result,
                            cached: req_bool(obj, "cached")?,
                        }
                    }
                    _ => return Err("unknown poll state".into()),
                };
                Ok(Response::Polled { job, state })
            }
            "cancel" => Ok(Response::Cancelled {
                job: req_u64(obj, "job")?,
                cancelled: req_bool(obj, "cancelled")?,
            }),
            "result" => {
                let (hash, result) = decode_embedded_result(obj)?;
                Ok(Response::Result(StreamedResult {
                    job: req_u64(obj, "job")?,
                    cached: req_bool(obj, "cached")?,
                    hash,
                    result,
                }))
            }
            "stream-end" => Ok(Response::StreamEnd {
                delivered: req_u64(obj, "delivered")? as usize,
            }),
            "stats" => Ok(Response::Stats(ServerStats {
                proto: req_u64(obj, "proto")?,
                hash_version: req_u64(obj, "hash_v")?,
                entries: req_u64(obj, "entries")? as usize,
                hits: req_u64(obj, "hits")?,
                misses: req_u64(obj, "misses")?,
                executed: req_u64(obj, "executed")?,
                outstanding: req_u64(obj, "outstanding")? as usize,
                quarantined: tolerant_u64(obj, "quarantined")?.unwrap_or(0) as usize,
            })),
            "metrics" => {
                let mut counters = Vec::new();
                for (name, v) in get(obj, "counters")?
                    .as_object()
                    .ok_or("'counters' is not an object")?
                {
                    counters.push((name.clone(), v.as_u64().ok_or("counter not a u64")?));
                }
                let mut histograms = Vec::new();
                for h in get(obj, "histograms")?
                    .as_array()
                    .ok_or("'histograms' is not an array")?
                {
                    let hobj = h.as_object().ok_or("histogram entry is not an object")?;
                    let total_ns = get(hobj, "total_ns")?
                        .as_str()
                        .ok_or("'total_ns' is not a string")?
                        .parse::<u64>()
                        .map_err(|e| format!("bad total_ns: {e}"))?;
                    let mut buckets = Vec::new();
                    for b in get(hobj, "buckets")?
                        .as_array()
                        .ok_or("'buckets' is not an array")?
                    {
                        let pair = b.as_array().ok_or("bucket is not an array")?;
                        if pair.len() != 2 {
                            return Err("bucket is not a 2-element array".into());
                        }
                        let lo = pair[0].as_u64().ok_or("bucket lo not a u64")?;
                        let c = pair[1].as_u64().ok_or("bucket count not a u64")?;
                        buckets.push((lo, c));
                    }
                    histograms.push(MetricHistogram {
                        name: get(hobj, "name")?
                            .as_str()
                            .ok_or("histogram 'name' is not a string")?
                            .to_string(),
                        count: req_u64(hobj, "count")?,
                        total_ns,
                        min_ns: req_u64(hobj, "min_ns")?,
                        max_ns: req_u64(hobj, "max_ns")?,
                        buckets,
                    });
                }
                Ok(Response::Metrics(ServerMetrics {
                    counters,
                    histograms,
                }))
            }
            "compact" => Ok(Response::Compacted {
                live: req_u64(obj, "live")? as usize,
                dropped_lines: req_u64(obj, "dropped")? as usize,
            }),
            "sync" => {
                let mut results = Vec::new();
                for entry in get(obj, "results")?
                    .as_array()
                    .ok_or("'results' is not an array")?
                {
                    let robj = entry.as_object().ok_or("result entry is not an object")?;
                    results.push(persist::decode_result_obj(robj)?);
                }
                let mut want = Vec::new();
                for h in get(obj, "want")?
                    .as_array()
                    .ok_or("'want' is not an array")?
                {
                    want.push(hex_u64(h, "want entry")?);
                }
                Ok(Response::Synced { results, want })
            }
            "push" => Ok(Response::Pushed {
                accepted: req_u64(obj, "accepted")? as usize,
            }),
            "shutdown" => Ok(Response::ShuttingDown),
            other => Err(format!("unknown response op '{other}'")),
        }
    }
}

fn decode_embedded_result(obj: &[(String, Json)]) -> Result<(u64, ScenarioResult), String> {
    let result_obj = get(obj, "result")?
        .as_object()
        .ok_or("'result' is not an object")?;
    persist::decode_result_obj(result_obj)
}

// ---------------------------------------------------------------------------
// Scenario-spec codec
// ---------------------------------------------------------------------------

/// Encode a [`ScenarioSpec`] as one JSON object (no newline). Floats use
/// the store's bit-exact encoding (shortest decimal; `"NaN"`/`"inf"`/
/// `"-inf"` for non-finite values); the RNG seed travels as a decimal
/// string because it may exceed JSON's 2⁵³ integer range. Guaranteed to
/// round-trip through [`decode_spec`] bit-for-bit — in particular
/// preserving [`ScenarioSpec::content_hash`] — which the wire-codec
/// property test pins down.
pub fn encode_spec(spec: &ScenarioSpec) -> String {
    let f = persist::json_f64;
    let mut s = String::with_capacity(256);
    s.push('{');
    match &spec.label {
        None => s.push_str("\"label\":null"),
        Some(l) => s.push_str(&format!("\"label\":{}", persist::json_str(l))),
    }
    s.push_str(",\"base\":");
    match &spec.base {
        BaseCase::Sod => s.push_str("{\"kind\":\"sod\"}"),
        BaseCase::SteepeningWave { amp } => s.push_str(&format!(
            "{{\"kind\":\"steepening-wave\",\"amp\":{}}}",
            f(*amp)
        )),
        BaseCase::ShuOsher => s.push_str("{\"kind\":\"shu-osher\"}"),
        BaseCase::IsentropicVortex => s.push_str("{\"kind\":\"isentropic-vortex\"}"),
        BaseCase::SingleJet3d => s.push_str("{\"kind\":\"single-jet-3d\"}"),
        BaseCase::ThreeEngine2d { noise_amp, seed } => s.push_str(&format!(
            "{{\"kind\":\"three-engine-2d\",\"noise_amp\":{},\"seed\":\"{seed}\"}}",
            f(*noise_amp)
        )),
        BaseCase::EngineRow2d { engines } => s.push_str(&format!(
            "{{\"kind\":\"engine-row-2d\",\"engines\":{engines}}}"
        )),
        BaseCase::SuperHeavy3d => s.push_str("{\"kind\":\"super-heavy-3d\"}"),
    }
    s.push_str(&format!(
        ",\"resolution\":{},\"precision\":\"{}\",\"scheme\":\"{}\",\"warmup\":{},\"steps\":{}",
        spec.resolution,
        match spec.precision {
            PrecisionMode::Fp64 => "fp64",
            PrecisionMode::Fp32 => "fp32",
            PrecisionMode::Fp16Fp32 => "fp16fp32",
        },
        spec.scheme.name(),
        spec.warmup,
        spec.steps,
    ));
    s.push_str(",\"engine_out\":[");
    for (i, e) in spec.engine_out.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&e.to_string());
    }
    s.push_str("],\"gimbal\":[");
    for (i, (engine, sched)) in spec.gimbal.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("{{\"engine\":{engine},\"knots\":["));
        for (k, (t, a)) in sched.knots.iter().enumerate() {
            if k > 0 {
                s.push(',');
            }
            s.push_str(&format!("[{},{},{}]", f(*t), f(a[0]), f(a[1])));
        }
        s.push_str("]}");
    }
    s.push(']');
    let opt_f = |v: Option<f64>| v.map(f).unwrap_or_else(|| "null".into());
    let opt_u = |v: Option<usize>| v.map(|x| x.to_string()).unwrap_or_else(|| "null".into());
    s.push_str(&format!(
        ",\"backpressure\":{},\"cfl\":{},\"elliptic_sweeps\":{},\"alpha_factor\":{},\"ranks\":{},\
         \"series_every\":{},\"checkpoint_every\":{}",
        opt_f(spec.backpressure),
        opt_f(spec.cfl),
        opt_u(spec.elliptic_sweeps),
        opt_f(spec.alpha_factor),
        opt_u(spec.ranks),
        opt_u(spec.series_every),
        opt_u(spec.checkpoint_every),
    ));
    match &spec.controller {
        None => s.push_str(",\"controller\":null"),
        Some(c) => s.push_str(&format!(
            ",\"controller\":{{\"gain\":{},\"rate\":{},\"every\":{}}}",
            f(c.gain),
            f(c.rate),
            c.every
        )),
    }
    match &spec.recovery {
        None => s.push_str(",\"recovery\":null"),
        Some(r) => s.push_str(&format!(
            ",\"recovery\":{{\"snapshot_ring_depth\":{},\"snapshot_every\":{},\
             \"max_retries\":{},\"dt_backoff_factor\":{},\"backoff_hold_steps\":{}}}",
            r.snapshot_ring_depth,
            r.snapshot_every,
            r.max_retries,
            f(r.dt_backoff_factor),
            r.backoff_hold_steps
        )),
    }
    s.push('}');
    s
}

/// Decode a [`ScenarioSpec`] from the JSON text [`encode_spec`] produces.
pub fn decode_spec(text: &str) -> Result<ScenarioSpec, String> {
    decode_spec_json(&Json::parse(text)?)
}

/// Decode a spec from an already-parsed JSON value (nested use inside
/// request decoding).
pub(crate) fn decode_spec_json(v: &Json) -> Result<ScenarioSpec, String> {
    let obj = v.as_object().ok_or("spec is not a JSON object")?;
    let label = match get(obj, "label")? {
        Json::Null => None,
        Json::Str(s) => Some(s.clone()),
        _ => return Err("'label' is neither string nor null".into()),
    };
    let base_obj = get(obj, "base")?
        .as_object()
        .ok_or("'base' is not an object")?;
    let base = match get(base_obj, "kind")?.as_str() {
        Some("sod") => BaseCase::Sod,
        Some("steepening-wave") => BaseCase::SteepeningWave {
            amp: num(base_obj, "amp")?,
        },
        Some("shu-osher") => BaseCase::ShuOsher,
        Some("isentropic-vortex") => BaseCase::IsentropicVortex,
        Some("single-jet-3d") => BaseCase::SingleJet3d,
        Some("three-engine-2d") => BaseCase::ThreeEngine2d {
            noise_amp: num(base_obj, "noise_amp")?,
            seed: get(base_obj, "seed")?
                .as_str()
                .ok_or("'seed' is not a string")?
                .parse::<u64>()
                .map_err(|e| format!("bad seed: {e}"))?,
        },
        Some("engine-row-2d") => BaseCase::EngineRow2d {
            engines: req_u64(base_obj, "engines")? as usize,
        },
        Some("super-heavy-3d") => BaseCase::SuperHeavy3d,
        _ => return Err("unknown base-case kind".into()),
    };
    let precision = match get(obj, "precision")?.as_str() {
        Some("fp64") => PrecisionMode::Fp64,
        Some("fp32") => PrecisionMode::Fp32,
        Some("fp16fp32") => PrecisionMode::Fp16Fp32,
        _ => return Err("unknown precision".into()),
    };
    let scheme = match get(obj, "scheme")?.as_str() {
        Some("igr") => SchemeKind::Igr,
        Some("weno") => SchemeKind::WenoBaseline,
        _ => return Err("unknown scheme".into()),
    };
    let engine_out = get(obj, "engine_out")?
        .as_array()
        .ok_or("'engine_out' is not an array")?
        .iter()
        .map(|e| e.as_u64().map(|x| x as usize).ok_or("bad engine index"))
        .collect::<Result<Vec<_>, _>>()?;
    let mut gimbal = Vec::new();
    for entry in get(obj, "gimbal")?
        .as_array()
        .ok_or("'gimbal' is not an array")?
    {
        let entry = entry.as_object().ok_or("gimbal entry is not an object")?;
        let engine = req_u64(entry, "engine")? as usize;
        let mut knots = Vec::new();
        for knot in get(entry, "knots")?
            .as_array()
            .ok_or("'knots' is not an array")?
        {
            let knot = knot.as_array().ok_or("knot is not an array")?;
            if knot.len() != 3 {
                return Err("knot is not [t, a0, a1]".into());
            }
            let t = knot[0].as_f64().ok_or("knot t is not a number")?;
            let a0 = knot[1].as_f64().ok_or("knot a0 is not a number")?;
            let a1 = knot[2].as_f64().ok_or("knot a1 is not a number")?;
            knots.push((t, [a0, a1]));
        }
        if knots.is_empty() {
            return Err("gimbal schedule has no knots".into());
        }
        // Construct directly (not via GimbalSchedule::new, which re-sorts):
        // the wire must reproduce the sender's knot order bit-for-bit so
        // the content hash is preserved.
        gimbal.push((engine, GimbalSchedule { knots }));
    }
    Ok(ScenarioSpec {
        label,
        base,
        resolution: req_u64(obj, "resolution")? as usize,
        precision,
        scheme,
        warmup: req_u64(obj, "warmup")? as usize,
        steps: req_u64(obj, "steps")? as usize,
        engine_out,
        gimbal,
        backpressure: opt_f64(obj, "backpressure")?,
        cfl: opt_f64(obj, "cfl")?,
        elliptic_sweeps: opt_u64(obj, "elliptic_sweeps")?.map(|x| x as usize),
        alpha_factor: opt_f64(obj, "alpha_factor")?,
        ranks: opt_u64(obj, "ranks")?.map(|x| x as usize),
        series_every: tolerant_u64(obj, "series_every")?.map(|x| x as usize),
        checkpoint_every: tolerant_u64(obj, "checkpoint_every")?.map(|x| x as usize),
        controller: decode_controller(obj)?,
        recovery: decode_recovery(obj)?,
    })
}

/// Decode the optional `controller` key — absent/null means open-loop.
/// Added in `PROTO_VERSION` 3; tolerating the missing key keeps pre-v3
/// store lines and spec objects decodable.
fn decode_controller(obj: &[(String, Json)]) -> Result<Option<ControllerSpec>, String> {
    let v = match persist::opt_get(obj, "controller") {
        None | Some(Json::Null) => return Ok(None),
        Some(v) => v,
    };
    let cobj = v.as_object().ok_or("'controller' is not an object")?;
    Ok(Some(ControllerSpec {
        gain: num(cobj, "gain")?,
        rate: num(cobj, "rate")?,
        every: req_u64(cobj, "every")? as usize,
    }))
}

/// Decode the optional `recovery` key — absent/null means no self-healing.
/// Added in `PROTO_VERSION` 4; tolerating the missing key keeps pre-v4
/// store lines and spec objects decodable.
fn decode_recovery(obj: &[(String, Json)]) -> Result<Option<RecoverySpec>, String> {
    let v = match persist::opt_get(obj, "recovery") {
        None | Some(Json::Null) => return Ok(None),
        Some(v) => v,
    };
    let robj = v.as_object().ok_or("'recovery' is not an object")?;
    Ok(Some(RecoverySpec {
        snapshot_ring_depth: req_u64(robj, "snapshot_ring_depth")? as usize,
        snapshot_every: req_u64(robj, "snapshot_every")? as usize,
        max_retries: req_u64(robj, "max_retries")? as usize,
        dt_backoff_factor: num(robj, "dt_backoff_factor")?,
        backoff_hold_steps: req_u64(robj, "backoff_hold_steps")? as usize,
    }))
}

// ---------------------------------------------------------------------------
// Field helpers
// ---------------------------------------------------------------------------

/// A u64 carried as a 16-hex-digit string (hashes, digests): the store's
/// spelling, immune to JSON's 2^53 number window.
fn hex_u64(v: &Json, what: &str) -> Result<u64, String> {
    let s = v
        .as_str()
        .ok_or_else(|| format!("{what} is not a string"))?;
    u64::from_str_radix(s, 16).map_err(|e| format!("bad {what} '{s}': {e}"))
}

fn req_u64(obj: &[(String, Json)], key: &str) -> Result<u64, String> {
    get(obj, key)?
        .as_u64()
        .ok_or_else(|| format!("'{key}' is not a non-negative integer"))
}

/// Small signed integers (priorities) — JSON numbers, possibly negative.
fn req_u64_signed(obj: &[(String, Json)], key: &str) -> Result<i32, String> {
    match get(obj, key)? {
        Json::Num(x) if x.fract() == 0.0 && *x >= i32::MIN as f64 && *x <= i32::MAX as f64 => {
            Ok(*x as i32)
        }
        _ => Err(format!("'{key}' is not an integer")),
    }
}

fn req_bool(obj: &[(String, Json)], key: &str) -> Result<bool, String> {
    match get(obj, key)? {
        Json::Bool(b) => Ok(*b),
        _ => Err(format!("'{key}' is not a boolean")),
    }
}

fn opt_f64(obj: &[(String, Json)], key: &str) -> Result<Option<f64>, String> {
    match get(obj, key)? {
        Json::Null => Ok(None),
        v => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| format!("'{key}' is neither number nor null")),
    }
}

fn opt_u64(obj: &[(String, Json)], key: &str) -> Result<Option<u64>, String> {
    match get(obj, key)? {
        Json::Null => Ok(None),
        v => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("'{key}' is neither integer nor null")),
    }
}

/// [`opt_u64`] that also tolerates a *missing* key — for fields added after
/// `PROTO_VERSION` 1 shipped (an additive, backwards-compatible extension:
/// older peers simply never send them).
fn tolerant_u64(obj: &[(String, Json)], key: &str) -> Result<Option<u64>, String> {
    match persist::opt_get(obj, key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("'{key}' is neither integer nor null")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::RunStatus;

    fn rich_spec() -> ScenarioSpec {
        let mut s = ScenarioSpec::new(BaseCase::EngineRow2d { engines: 3 }, 24);
        s.label = Some("wire \"quoted\"\nlabel".into());
        s.engine_out = vec![2, 0];
        s.gimbal = vec![
            (1, GimbalSchedule::ramp(0.0, [0.0, 0.0], 1.0, [0.12, 0.0])),
            (2, GimbalSchedule::constant([-0.0, f64::NAN])),
        ];
        s.backpressure = Some(0.25);
        s.cfl = Some(0.45);
        s.elliptic_sweeps = Some(3);
        s.alpha_factor = Some(f64::INFINITY);
        s.ranks = Some(2);
        s.controller = Some(ControllerSpec {
            gain: 1.25,
            rate: f64::NAN, // bit-exactness must cover non-finite gains too
            every: 3,
        });
        s
    }

    fn rich_recovered_spec() -> ScenarioSpec {
        let mut s = rich_spec();
        // Recovery excludes controllers (validate() rejects the combo), so
        // the recovery-armed wire fixture drops the closed loop.
        s.controller = None;
        s.recovery = Some(RecoverySpec {
            snapshot_ring_depth: 3,
            snapshot_every: 8,
            max_retries: 5,
            dt_backoff_factor: 0.375, // exactly representable
            backoff_hold_steps: 17,
        });
        s
    }

    #[test]
    fn spec_round_trips_bit_exactly_and_preserves_the_hash() {
        let spec = rich_spec();
        let back = decode_spec(&encode_spec(&spec)).unwrap();
        assert_eq!(back.label, spec.label);
        assert_eq!(back.engine_out, spec.engine_out);
        assert_eq!(back.content_hash(), spec.content_hash());
        let ctrl = back.controller.as_ref().expect("controller rides the wire");
        assert_eq!(ctrl.gain, 1.25);
        assert!(ctrl.rate.is_nan());
        assert_eq!(ctrl.every, 3);
        let mut open_loop = spec.clone();
        open_loop.controller = None;
        let open_back = decode_spec(&encode_spec(&open_loop)).unwrap();
        assert!(open_back.controller.is_none());
        assert_eq!(open_back.content_hash(), open_loop.content_hash());
        let recovered = rich_recovered_spec();
        let rec_back = decode_spec(&encode_spec(&recovered)).unwrap();
        let r = rec_back.recovery.as_ref().expect("recovery rides the wire");
        assert_eq!(r.snapshot_ring_depth, 3);
        assert_eq!(r.snapshot_every, 8);
        assert_eq!(r.max_retries, 5);
        assert_eq!(r.dt_backoff_factor, 0.375);
        assert_eq!(r.backoff_hold_steps, 17);
        assert_eq!(rec_back.content_hash(), recovered.content_hash());
        assert_ne!(rec_back.content_hash(), open_loop.content_hash());
        assert_eq!(
            back.gimbal[1].1.knots[0].1[1].to_bits(),
            spec.gimbal[1].1.knots[0].1[1].to_bits(),
            "NaN payload survives"
        );
        assert_eq!(back.alpha_factor.unwrap(), f64::INFINITY);
    }

    #[test]
    fn large_seeds_survive_the_string_encoding() {
        let spec = ScenarioSpec::new(
            BaseCase::ThreeEngine2d {
                noise_amp: 0.01,
                seed: u64::MAX,
            },
            32,
        );
        let back = decode_spec(&encode_spec(&spec)).unwrap();
        assert_eq!(back.content_hash(), spec.content_hash());
        assert!(matches!(back.base, BaseCase::ThreeEngine2d { seed, .. } if seed == u64::MAX));
    }

    #[test]
    fn every_request_round_trips() {
        let reqs = vec![
            Request::Hello {
                proto: PROTO_VERSION,
                hash_version: CONTENT_HASH_VERSION,
            },
            Request::Submit {
                spec: rich_spec(),
                priority: i32::MIN, // the decode bound must admit both extremes
            },
            Request::Submit {
                spec: rich_spec(),
                priority: i32::MAX,
            },
            Request::Poll { job: 42 },
            Request::Cancel { job: 7 },
            Request::Stream {
                max: 16,
                timeout_ms: 2500,
            },
            Request::Stats,
            Request::Metrics,
            Request::Compact,
            Request::Sync {
                digests: vec![(0, u64::MAX), (0xfeed, 0xdead_beef)],
            },
            Request::Push { results: vec![] },
            Request::Shutdown,
        ];
        for req in reqs {
            let line = req.encode();
            assert!(line.ends_with('\n'));
            assert_eq!(line.matches('\n').count(), 1, "one line per message");
            let back = Request::decode(line.trim_end()).unwrap();
            match (&req, &back) {
                (
                    Request::Submit { spec, priority },
                    Request::Submit {
                        spec: s2,
                        priority: p2,
                    },
                ) => {
                    assert_eq!(spec.content_hash(), s2.content_hash());
                    assert_eq!(priority, p2);
                }
                (Request::Sync { digests }, Request::Sync { digests: d2 }) => {
                    assert_eq!(digests, d2, "u64 extremes survive the hex strings");
                }
                _ => assert_eq!(std::mem::discriminant(&req), std::mem::discriminant(&back)),
            }
        }
    }

    #[test]
    fn responses_round_trip_including_embedded_results() {
        let result = ScenarioResult {
            name: "wire".into(),
            hash_hex: format!("{:016x}", 0xfeed_u64),
            status: RunStatus::Completed,
            cells: 10,
            steps: 3,
            ranks: 1,
            wall_s: 1.0 / 3.0,
            ns_per_cell_step: f64::INFINITY,
            mass_drift: f64::NAN,
            energy_drift: -0.0,
            base_heating: None,
            series: Some(crate::report::ScenarioSeries {
                every: 2,
                samples: vec![igr_app::diagnostics::Sample {
                    step: 2,
                    t: 0.25,
                    totals: [1.0, 0.1, -0.0, 0.0, 2.5],
                    kinetic_energy: 0.05,
                    max_mach: 3.0,
                    min_rho: 0.125,
                }],
            }),
            resumed_from: Some(1),
            actions: Some(vec![igr_app::actions::ActionRecord {
                step: 2,
                t: 0.25,
                action: igr_app::actions::Action::SetGimbal {
                    engine: 1,
                    target: [0.1, f64::NAN],
                    rate: 0.5,
                },
            }]),
            recoveries: Some(vec![igr_app::recovery::RecoveryRecord {
                trip_step: 5,
                rollback_step: 4,
                rollback_t: 0.5,
                prev_dt: f64::NAN, // "was adaptive" sentinel
                backoff_dt: 1e-4,
                hold_until: 36,
                retry: 1,
            }]),
        };
        let resp = Response::Result(StreamedResult {
            job: 9,
            cached: true,
            hash: 0xfeed,
            result: result.clone(),
        });
        match Response::decode(resp.encode().trim_end()).unwrap() {
            Response::Result(r) => {
                assert_eq!(r.job, 9);
                assert!(r.cached);
                assert_eq!(r.hash, 0xfeed);
                assert_eq!(r.result.wall_s.to_bits(), result.wall_s.to_bits());
                assert!(r.result.mass_drift.is_nan());
                assert_eq!(r.result.ns_per_cell_step, f64::INFINITY);
                assert_eq!(r.result.resumed_from, Some(1));
                let series = r.result.series.as_ref().expect("series rides the wire");
                assert_eq!(series, result.series.as_ref().unwrap());
                let recs = r.result.recoveries.as_ref().expect("recoveries ride");
                assert_eq!(recs.len(), 1);
                assert_eq!(recs[0].trip_step, 5);
                assert!(recs[0].prev_dt.is_nan());
                assert_eq!(recs[0].backoff_dt.to_bits(), (1e-4f64).to_bits());
                assert_eq!(recs[0].hold_until, 36);
                let actions = r.result.actions.as_ref().expect("actions ride the wire");
                assert_eq!(actions.len(), 1);
                assert_eq!(actions[0].step, 2);
                match actions[0].action {
                    igr_app::actions::Action::SetGimbal {
                        engine,
                        target,
                        rate,
                    } => {
                        assert_eq!(engine, 1);
                        assert_eq!(target[0], 0.1);
                        assert!(target[1].is_nan());
                        assert_eq!(rate, 0.5);
                    }
                    ref other => panic!("expected SetGimbal, got {other:?}"),
                }
            }
            other => panic!("expected Result, got {other:?}"),
        }

        let err = Response::Error(WireError::new(ErrorCode::InvalidSpec, "resolution 2"));
        match Response::decode(err.encode().trim_end()).unwrap() {
            Response::Error(e) => {
                assert_eq!(e.code, ErrorCode::InvalidSpec);
                assert_eq!(e.detail, "resolution 2");
            }
            other => panic!("expected Error, got {other:?}"),
        }

        let stats = Response::Stats(ServerStats {
            proto: PROTO_VERSION,
            hash_version: CONTENT_HASH_VERSION,
            entries: 5,
            hits: 7,
            misses: 2,
            executed: 2,
            outstanding: 1,
            quarantined: 3,
        });
        match Response::decode(stats.encode().trim_end()).unwrap() {
            Response::Stats(s) => {
                assert_eq!(s.executed, 2);
                assert_eq!(s.quarantined, 3);
            }
            other => panic!("expected Stats, got {other:?}"),
        }
    }

    #[test]
    fn sync_and_push_payloads_round_trip_bit_exactly() {
        // The anti-entropy verbs move full store lines and 64-bit digests;
        // nothing may be lossy or the digest comparison itself lies.
        let mut result = ScenarioResult {
            name: "synced".into(),
            hash_hex: format!("{:016x}", u64::MAX),
            status: RunStatus::Completed,
            cells: 99,
            steps: 12,
            ranks: 2,
            wall_s: 0.1,
            ns_per_cell_step: f64::NEG_INFINITY,
            mass_drift: f64::NAN,
            energy_drift: -0.0,
            base_heating: None,
            series: None,
            resumed_from: Some(6),
            actions: None,
            recoveries: None,
        };

        let req = Request::Push {
            results: vec![(u64::MAX, result.clone()), (0, result.clone())],
        };
        match Request::decode(req.encode().trim_end()).unwrap() {
            Request::Push { results } => {
                assert_eq!(results.len(), 2);
                assert_eq!(results[0].0, u64::MAX);
                assert_eq!(results[1].0, 0);
                assert!(results[0].1.mass_drift.is_nan());
                assert_eq!(results[0].1.ns_per_cell_step, f64::NEG_INFINITY);
                assert_eq!(results[0].1.energy_drift.to_bits(), (-0.0f64).to_bits());
                assert_eq!(results[0].1.resumed_from, Some(6));
            }
            other => panic!("expected Push, got {other:?}"),
        }

        result.name = "served-back".into();
        let resp = Response::Synced {
            results: vec![(0xfeed, result.clone())],
            want: vec![u64::MAX, 0, 7],
        };
        match Response::decode(resp.encode().trim_end()).unwrap() {
            Response::Synced { results, want } => {
                assert_eq!(results.len(), 1);
                assert_eq!(results[0].0, 0xfeed);
                assert_eq!(results[0].1.name, "served-back");
                assert!(results[0].1.mass_drift.is_nan());
                assert_eq!(want, vec![u64::MAX, 0, 7]);
            }
            other => panic!("expected Synced, got {other:?}"),
        }

        // Empty exchanges (fully converged peers) stay well-formed.
        match Response::decode(
            Response::Synced {
                results: vec![],
                want: vec![],
            }
            .encode()
            .trim_end(),
        )
        .unwrap()
        {
            Response::Synced { results, want } => {
                assert!(results.is_empty());
                assert!(want.is_empty());
            }
            other => panic!("expected Synced, got {other:?}"),
        }
        match Response::decode(Response::Pushed { accepted: 3 }.encode().trim_end()).unwrap() {
            Response::Pushed { accepted } => assert_eq!(accepted, 3),
            other => panic!("expected Pushed, got {other:?}"),
        }
    }

    #[test]
    fn metrics_round_trip_preserves_wide_nanosecond_totals() {
        // total_ns travels as a decimal string because a long-lived server
        // can accumulate past 2^53 ns; pin a value JSON numbers would mangle.
        let wide = (1u64 << 53) + 3;
        let metrics = Response::Metrics(ServerMetrics {
            counters: vec![
                ("queue.submit".into(), 4),
                // Counters share the STATS dialect: plain JSON numbers,
                // valid up to 2^53 (the codec rejects, never mangles, above).
                ("queue.\"odd\" name".into(), 1u64 << 53),
            ],
            histograms: vec![
                MetricHistogram {
                    name: "queue.exec_latency".into(),
                    count: 3,
                    total_ns: wide,
                    min_ns: 1024,
                    max_ns: 1 << 40,
                    buckets: vec![(1024, 2), (1 << 40, 1)],
                },
                MetricHistogram {
                    name: "empty".into(),
                    ..MetricHistogram::default()
                },
            ],
        });
        match Response::decode(metrics.encode().trim_end()).unwrap() {
            Response::Metrics(m) => {
                assert_eq!(m.counter("queue.submit"), Some(4));
                assert_eq!(m.counter("queue.\"odd\" name"), Some(1u64 << 53));
                let h = m.histogram("queue.exec_latency").expect("histogram");
                assert_eq!(h.total_ns, wide);
                assert_eq!(h.count, 3);
                assert_eq!(h.buckets, vec![(1024, 2), (1 << 40, 1)]);
                assert_eq!(m.histogram("empty").unwrap().count, 0);
            }
            other => panic!("expected Metrics, got {other:?}"),
        }
    }

    #[test]
    fn malformed_requests_carry_machine_readable_codes() {
        for (line, code) in [
            ("not json", ErrorCode::ParseError),
            ("[1,2]", ErrorCode::ParseError),
            ("{\"op\":\"warp\"}", ErrorCode::UnknownOp),
            ("{\"op\":\"poll\"}", ErrorCode::BadRequest),
            (
                "{\"op\":\"submit\",\"priority\":0,\"spec\":{}}",
                ErrorCode::BadRequest,
            ),
        ] {
            let err = Request::decode(line).unwrap_err();
            assert_eq!(err.code, code, "{line}");
            assert_eq!(ErrorCode::parse(err.code.as_str()), Some(err.code));
        }
    }
}
