//! Content-hash result cache.
//!
//! Scenario results are keyed by
//! [`ScenarioSpec::content_hash`](crate::spec::ScenarioSpec::content_hash):
//! resubmitting a scenario whose physics is unchanged is a
//! lookup, not a re-simulation. This is what turns the app layer's
//! one-case-at-a-time workflow into a cheap, iterable campaign loop — the
//! expensive part of "change one axis value and re-run the sweep" is only
//! the scenarios that actually changed.
//!
//! Two backing modes share one type:
//!
//! * [`ResultStore::new`] — in-memory only, dies with the process;
//! * [`ResultStore::open`] — additionally backed by an append-only
//!   JSON-lines file ([`crate::persist`]): all valid entries load on open,
//!   every insert appends one line, so the cache survives restarts and can
//!   be shipped between machines.
//!
//! Results are held as `Arc<ScenarioResult>`: a cache hit is a pointer
//! bump, not a deep clone of the (report-sized) result.
//!
//! The backing file is append-only, so re-inserted hashes and recovered
//! garbage accumulate as *dead lines*. [`ResultStore::compact`] rewrites the
//! file down to the live entries (atomically: temp file + rename), and
//! [`ResultStore::insert`] triggers it automatically once the file is at
//! least [`COMPACT_MIN_LINES`] long and more than half dead — long-lived
//! campaign caches stay lean without anyone scheduling maintenance.

use crate::persist::{self, AppendLog, StoreRecovery};
use crate::report::ScenarioResult;
use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::Arc;

/// What one [`ResultStore::compact`] pass did to the backing file.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompactStats {
    /// Live entries the rewritten file now holds (one line each).
    pub live: usize,
    /// Lines the rewrite dropped: superseded duplicates, skipped garbage,
    /// and stale-hash-version entries.
    pub dropped_lines: usize,
}

/// Automatic compaction ([`ResultStore::insert`]) never triggers below this
/// many file lines — tiny stores are not worth rewriting.
pub const COMPACT_MIN_LINES: usize = 64;

/// Transient failures stop being retryable after this many failed
/// executions of the same content hash: the scenario is *quarantined* and
/// resubmissions are served the cached failure instead of burning more
/// compute (see `docs/RECOVERY.md`).
pub const QUARANTINE_AFTER: u64 = 3;

/// Is this failure message one that a retry could plausibly clear?
///
/// Worker panics, non-finite blowups, divergence-guard trips, and
/// exhausted recovery budgets are all *environmental or numerical*
/// failures: a rerun (possibly on a healthier worker, possibly past a
/// transient) can succeed. Spec-validation failures are *structural* —
/// the same spec fails the same way forever — so anything not matching a
/// transient marker is permanent from the first failure.
pub(crate) fn is_transient_failure(msg: &str) -> bool {
    ["panicked", "non-finite", "diverg", "recovery"]
        .iter()
        .any(|marker| msg.contains(marker))
}

/// Result cache with hit/miss accounting and optional file persistence.
#[derive(Default)]
pub struct ResultStore {
    map: HashMap<u64, Arc<ScenarioResult>>,
    hits: u64,
    misses: u64,
    log: Option<AppendLog>,
    recovery: Option<StoreRecovery>,
    /// Inserts whose append to the backing file failed (the in-memory entry
    /// still lands; persistence degrades, execution does not).
    persist_errors: u64,
    /// Lines currently in the backing file (valid + dead + garbage).
    file_lines: usize,
    /// Cache entries with `Completed` status — the ones a compaction pass
    /// would keep (failed results are never persisted).
    live_persistable: usize,
    /// Failed-execution attempts per content hash (transient failures
    /// only); drives the [`QUARANTINE_AFTER`] retry budget. In-memory
    /// only, like the failures themselves.
    attempts: HashMap<u64, u64>,
}

impl ResultStore {
    /// An empty in-memory store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open a persistent store backed by the JSON-lines file at `path`
    /// (created if absent). Every valid line becomes a cache entry — later
    /// duplicates of a hash win — and unparseable lines (truncated tails,
    /// stale hash versions) are skipped, never fatal; see
    /// [`Self::recovery`] for the accounting.
    ///
    /// ```no_run
    /// use igr_campaign::ResultStore;
    ///
    /// let store = ResultStore::open("campaign_store.jsonl")?;
    /// let rec = store.recovery().unwrap();
    /// println!("{} loaded, {} skipped", rec.loaded, rec.skipped);
    /// # Ok::<(), std::io::Error>(())
    /// ```
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let loaded = persist::open(path)?;
        let file_lines = loaded.recovery.loaded + loaded.recovery.skipped;
        let mut map = HashMap::with_capacity(loaded.entries.len());
        for (hash, result) in loaded.entries {
            map.insert(hash, Arc::new(result));
        }
        let live_persistable = map.len();
        Ok(ResultStore {
            map,
            hits: 0,
            misses: 0,
            log: Some(loaded.log),
            recovery: Some(loaded.recovery),
            persist_errors: 0,
            file_lines,
            live_persistable,
            attempts: HashMap::new(),
        })
    }

    /// Look up a result by content hash, counting a hit or miss. A hit is
    /// O(1): the `Arc` clone bumps a refcount, it does not copy the result.
    pub fn fetch(&mut self, hash: u64) -> Option<Arc<ScenarioResult>> {
        match self.map.get(&hash) {
            Some(r) => {
                self.hits += 1;
                Some(Arc::clone(r))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Peek without touching the counters (planning/dedup passes).
    pub fn contains(&self, hash: u64) -> bool {
        self.map.contains_key(&hash)
    }

    /// Is this hash's cached entry *settled* — i.e. should a planner serve
    /// it from the cache rather than re-execute? Completed results and
    /// quarantined/permanent failures are settled; a transient failure
    /// with retry budget left ([`Self::is_retryable`]) is not, and an
    /// absent hash trivially is not.
    pub fn settled(&self, hash: u64) -> bool {
        self.map.contains_key(&hash) && !self.is_retryable(hash)
    }

    /// True when the cached entry for `hash` is a *transient* failure that
    /// has not yet exhausted its [`QUARANTINE_AFTER`] retry budget —
    /// planning passes treat such entries as absent so resubmission gets
    /// the scenario re-executed. Completed results, permanent (structural)
    /// failures, and quarantined hashes all return `false`.
    pub fn is_retryable(&self, hash: u64) -> bool {
        match self.map.get(&hash) {
            Some(r) => match &r.status {
                crate::report::RunStatus::Failed(msg) => {
                    is_transient_failure(msg)
                        && self.attempts.get(&hash).copied().unwrap_or(0) < QUARANTINE_AFTER
                }
                _ => false,
            },
            None => false,
        }
    }

    /// Cached failures that will never re-execute: permanent (structural)
    /// failures plus transient ones whose retry budget is exhausted. The
    /// wire protocol's `STATS` reports this.
    pub fn quarantined(&self) -> usize {
        self.map
            .iter()
            .filter(|(h, r)| !r.status.is_ok() && !self.is_retryable(**h))
            .count()
    }

    /// Counter-free lookup: reading back a result the caller just executed
    /// and inserted is not cache traffic.
    pub fn peek(&self, hash: u64) -> Option<&Arc<ScenarioResult>> {
        self.map.get(&hash)
    }

    /// Insert a result; if the store is persistent, append it to the
    /// backing file too. A failed append degrades persistence (counted in
    /// [`Self::persist_errors`]) but never loses the in-memory entry.
    ///
    /// Only `Completed` results are persisted: within a session, caching a
    /// failure stops a known-bad scenario from re-burning compute, but a
    /// failure written to disk would outlive its cause — a transient panic
    /// or a killed worker would block that scenario in every future
    /// process with no retry path. Restarting the process *is* the retry.
    pub fn insert(&mut self, hash: u64, result: ScenarioResult) {
        match &result.status {
            crate::report::RunStatus::Failed(msg) if is_transient_failure(msg) => {
                *self.attempts.entry(hash).or_insert(0) += 1;
            }
            // A success (or a permanent failure, which never retries)
            // resets the transient-attempt history for the hash.
            _ => {
                self.attempts.remove(&hash);
            }
        }
        if result.status.is_ok() {
            if let Some(log) = &mut self.log {
                match log.append(hash, &result) {
                    Ok(()) => self.file_lines += 1,
                    Err(_) => self.persist_errors += 1,
                }
            }
            let superseding = self.map.get(&hash).is_some_and(|prev| prev.status.is_ok());
            if !superseding {
                self.live_persistable += 1;
            }
        } else if self.map.get(&hash).is_some_and(|prev| prev.status.is_ok()) {
            // A failed result shadowing a completed one in memory: the old
            // line stays on disk but a compaction pass would drop it.
            self.live_persistable -= 1;
        }
        self.map.insert(hash, Arc::new(result));
        self.compact_if_needed();
    }

    /// Dead weight in the backing file: lines a [`Self::compact`] pass would
    /// drop (superseded duplicates, garbage, stale hash versions). 0 for
    /// in-memory stores.
    pub fn dead_lines(&self) -> usize {
        self.file_lines.saturating_sub(self.live_persistable)
    }

    /// Rewrite the backing file down to the live entries: one line per
    /// cached `Completed` result (last write already won in memory), in
    /// ascending hash order, atomically (temp file + rename). Superseded
    /// duplicate lines, unparseable garbage, and stale-hash-version entries
    /// are dropped. Failed results remain in-memory-only, exactly as
    /// [`Self::insert`] treats them.
    ///
    /// Returns `Ok(None)` for in-memory stores (nothing to compact).
    ///
    /// **Ownership caveat**: compaction assumes this process is the file's
    /// only live writer. The rewrite replaces the inode, so another
    /// process holding an open append handle to the same path would keep
    /// appending to the unlinked old file — coordinate externally before
    /// sharing one store file between concurrently *running* processes
    /// (sequential sharing, the supported model, is unaffected).
    pub fn compact(&mut self) -> io::Result<Option<CompactStats>> {
        let Some(log) = &self.log else {
            return Ok(None);
        };
        let path = log.path().to_path_buf();
        let mut entries: Vec<(u64, &ScenarioResult)> = self
            .map
            .iter()
            .filter(|(_, r)| r.status.is_ok())
            .map(|(h, r)| (*h, r.as_ref()))
            .collect();
        entries.sort_unstable_by_key(|(h, _)| *h);
        let live = entries.len();
        let new_log = persist::rewrite(&path, &entries)?;
        let dropped_lines = self.file_lines.saturating_sub(live);
        self.log = Some(new_log);
        self.file_lines = live;
        self.live_persistable = live;
        Ok(Some(CompactStats {
            live,
            dropped_lines,
        }))
    }

    /// The [`Self::insert`]-time trigger: compact once the file has at
    /// least [`COMPACT_MIN_LINES`] lines and more than half of them are
    /// dead. A failed rewrite counts as a persist error and the append-only
    /// file keeps working as-is.
    fn compact_if_needed(&mut self) {
        if self.log.is_some()
            && self.file_lines >= COMPACT_MIN_LINES
            && self.dead_lines() * 2 > self.file_lines
            && self.compact().is_err()
        {
            self.persist_errors += 1;
        }
    }

    /// Anti-entropy inventory: `(content_hash, line_digest)` for every
    /// cached `Completed` result, in ascending hash order. The digest is
    /// [`persist::result_digest`] — FNV-1a over the canonical store line —
    /// so two stores hold bitwise-identical results for a hash exactly when
    /// their digests match. Failed results are excluded, mirroring what
    /// persists to disk.
    pub fn digests(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self
            .map
            .iter()
            .filter(|(_, r)| r.status.is_ok())
            .map(|(h, r)| (*h, persist::result_digest(*h, r)))
            .collect();
        v.sort_unstable_by_key(|(h, _)| *h);
        v
    }

    /// Full results for `hashes`, counter-free (sync traffic is not cache
    /// traffic). Unknown hashes and failed results are silently skipped —
    /// only what would persist to disk travels between stores.
    pub fn export(&self, hashes: &[u64]) -> Vec<(u64, Arc<ScenarioResult>)> {
        hashes
            .iter()
            .filter_map(|&h| {
                self.map
                    .get(&h)
                    .filter(|r| r.status.is_ok())
                    .map(|r| (h, Arc::clone(r)))
            })
            .collect()
    }

    /// Cached results.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// [`Self::fetch`] calls that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// [`Self::fetch`] calls that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// What loading the backing file recovered (`None` for in-memory
    /// stores).
    pub fn recovery(&self) -> Option<StoreRecovery> {
        self.recovery
    }

    /// The backing file, if this store is persistent.
    pub fn path(&self) -> Option<&Path> {
        self.log.as_ref().map(|l| l.path())
    }

    /// True when the store is backed by a file.
    pub fn is_persistent(&self) -> bool {
        self.log.is_some()
    }

    /// Inserts whose file append failed (0 for healthy/persistent-less
    /// stores).
    pub fn persist_errors(&self) -> u64 {
        self.persist_errors
    }

    /// Drop all cached results (counters survive — they describe traffic,
    /// not contents). The backing file, if any, is left untouched: clear
    /// empties the session view, it does not destroy the durable cache.
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::RunStatus;

    fn dummy(name: &str) -> ScenarioResult {
        ScenarioResult {
            name: name.into(),
            hash_hex: "0".repeat(16),
            status: RunStatus::Completed,
            cells: 1,
            steps: 1,
            ranks: 1,
            wall_s: 0.0,
            ns_per_cell_step: 0.0,
            mass_drift: 0.0,
            energy_drift: 0.0,
            base_heating: None,
            series: None,
            resumed_from: None,
            actions: None,
            recoveries: None,
        }
    }

    #[test]
    fn transient_failures_retry_until_quarantined_but_permanent_ones_settle() {
        let mut store = ResultStore::new();
        let fail = |msg: &str| {
            let mut r = dummy("flaky");
            r.status = RunStatus::Failed(msg.into());
            r
        };

        // A structural failure settles on the first insert: no retry path.
        store.insert(1, fail("invalid scenario spec: resolution 2"));
        assert!(!store.is_retryable(1));
        assert!(store.settled(1));
        assert_eq!(store.quarantined(), 1);

        // A transient failure stays retryable until the budget runs out…
        for attempt in 1..=QUARANTINE_AFTER {
            store.insert(2, fail("scenario worker panicked: boom"));
            let expect_retry = attempt < QUARANTINE_AFTER;
            assert_eq!(store.is_retryable(2), expect_retry, "attempt {attempt}");
            assert_eq!(store.settled(2), !expect_retry, "attempt {attempt}");
        }
        assert_eq!(store.quarantined(), 2, "budget exhausted: quarantined");

        // …and a success wipes the attempt history clean.
        store.insert(3, fail("non-finite rho at step 5"));
        assert!(store.is_retryable(3));
        store.insert(3, dummy("recovered"));
        assert!(store.settled(3));
        assert_eq!(store.quarantined(), 2);
        store.insert(3, fail("solver diverged"));
        assert!(store.is_retryable(3), "attempts restart after a success");

        // Absent hashes are neither settled nor retryable.
        assert!(!store.settled(99));
        assert!(!store.is_retryable(99));
    }

    #[test]
    fn fetch_counts_hits_and_misses() {
        let mut store = ResultStore::new();
        assert!(store.fetch(1).is_none());
        store.insert(1, dummy("a"));
        assert_eq!(store.fetch(1).unwrap().name, "a");
        assert!(store.fetch(2).is_none());
        assert_eq!(store.hits(), 1);
        assert_eq!(store.misses(), 2);
        assert_eq!(store.len(), 1);
        assert!(!store.is_persistent());
        assert!(store.recovery().is_none());
    }

    #[test]
    fn contains_does_not_touch_counters() {
        let mut store = ResultStore::new();
        store.insert(7, dummy("x"));
        assert!(store.contains(7));
        assert!(!store.contains(8));
        assert_eq!(store.hits() + store.misses(), 0);
    }

    #[test]
    fn hits_share_one_allocation() {
        let mut store = ResultStore::new();
        store.insert(3, dummy("shared"));
        let a = store.fetch(3).unwrap();
        let b = store.fetch(3).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "a hit is a refcount bump, not a copy");
    }

    #[test]
    fn failed_results_cache_in_memory_but_never_persist() {
        let path = std::env::temp_dir().join(format!(
            "igr-store-failpersist-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        {
            let mut store = ResultStore::open(&path).unwrap();
            let mut failed = dummy("bad");
            failed.status = RunStatus::Failed("transient panic".into());
            store.insert(1, failed);
            store.insert(2, dummy("good"));
            // The session cache holds both (no same-process re-burn)…
            assert!(store.contains(1));
            assert!(store.contains(2));
        }
        // …but a fresh process only inherits the completed result: the
        // failure gets its retry.
        let store = ResultStore::open(&path).unwrap();
        assert!(!store.contains(1));
        assert!(store.contains(2));
        assert_eq!(store.recovery().unwrap().loaded, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compacted_file_loads_identically_and_sheds_dead_lines() {
        let path = std::env::temp_dir().join(format!(
            "igr-store-compact-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        {
            let mut store = ResultStore::open(&path).unwrap();
            let mut stale = dummy("one-stale");
            stale.steps = 1;
            store.insert(11, stale);
            let mut fresh = dummy("one-fresh");
            fresh.steps = 2;
            store.insert(11, fresh); // supersedes: first line is now dead
            store.insert(22, dummy("two"));
            let mut failed = dummy("bad");
            failed.status = RunStatus::Failed("boom".into());
            store.insert(33, failed); // in-memory only, never on disk
            assert_eq!(store.len(), 3);
            assert_eq!(store.dead_lines(), 1);

            let stats = store.compact().unwrap().unwrap();
            assert_eq!(
                stats,
                CompactStats {
                    live: 2,
                    dropped_lines: 1
                }
            );
            assert_eq!(store.dead_lines(), 0);
            // The compacted store keeps appending cleanly.
            store.insert(44, dummy("three"));
        }
        let lines = std::fs::read_to_string(&path).unwrap();
        assert_eq!(lines.lines().count(), 3, "2 compacted + 1 appended");

        let mut reopened = ResultStore::open(&path).unwrap();
        assert_eq!(reopened.recovery().unwrap().skipped, 0);
        assert_eq!(reopened.len(), 3);
        assert_eq!(reopened.fetch(11).unwrap().steps, 2, "last write won");
        assert_eq!(reopened.fetch(22).unwrap().name, "two");
        assert_eq!(reopened.fetch(44).unwrap().name, "three");
        assert!(!reopened.contains(33), "failures never persist");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn repeated_inserts_trigger_automatic_compaction() {
        let path = std::env::temp_dir().join(format!(
            "igr-store-autocompact-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        {
            let mut store = ResultStore::open(&path).unwrap();
            // Re-insert one hash until the dead-line fraction trips the
            // trigger; the file must stay bounded instead of growing by one
            // line per insert.
            for i in 0..(2 * COMPACT_MIN_LINES) {
                let mut r = dummy("hot");
                r.steps = i;
                store.insert(7, r);
            }
            assert_eq!(store.len(), 1);
            assert!(
                store.file_lines <= COMPACT_MIN_LINES,
                "file kept {} lines for 1 live entry",
                store.file_lines
            );
            assert_eq!(store.persist_errors(), 0);
        }
        let reopened = ResultStore::open(&path).unwrap();
        assert_eq!(reopened.len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn in_memory_stores_have_nothing_to_compact() {
        let mut store = ResultStore::new();
        store.insert(1, dummy("a"));
        assert_eq!(store.dead_lines(), 0);
        assert!(store.compact().unwrap().is_none());
    }

    #[test]
    fn persistent_store_survives_reopen() {
        let path = std::env::temp_dir().join(format!(
            "igr-store-unit-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        {
            let mut store = ResultStore::open(&path).unwrap();
            assert_eq!(store.recovery().unwrap().loaded, 0);
            store.insert(11, dummy("one"));
            store.insert(22, dummy("two"));
            assert_eq!(store.persist_errors(), 0);
        }
        {
            let mut store = ResultStore::open(&path).unwrap();
            assert_eq!(store.recovery().unwrap().loaded, 2);
            assert_eq!(store.len(), 2);
            assert_eq!(store.fetch(11).unwrap().name, "one");
            assert_eq!(store.fetch(22).unwrap().name, "two");
            assert_eq!(store.path().unwrap(), path.as_path());
        }
        let _ = std::fs::remove_file(&path);
    }
}
