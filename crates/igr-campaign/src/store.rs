//! Content-hash result cache.
//!
//! Scenario results are keyed by [`ScenarioSpec::content_hash`]
//! (`crate::spec`): resubmitting a scenario whose physics is unchanged is a
//! lookup, not a re-simulation. This is what turns the app layer's
//! one-case-at-a-time workflow into a cheap, iterable campaign loop — the
//! expensive part of "change one axis value and re-run the sweep" is only
//! the scenarios that actually changed.

use crate::report::ScenarioResult;
use std::collections::HashMap;

/// In-memory result cache with hit/miss accounting.
#[derive(Default)]
pub struct ResultStore {
    map: HashMap<u64, ScenarioResult>,
    hits: u64,
    misses: u64,
}

impl ResultStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up a result by content hash, counting a hit or miss.
    pub fn fetch(&mut self, hash: u64) -> Option<ScenarioResult> {
        match self.map.get(&hash) {
            Some(r) => {
                self.hits += 1;
                Some(r.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Peek without touching the counters (planning/dedup passes).
    pub fn contains(&self, hash: u64) -> bool {
        self.map.contains_key(&hash)
    }

    /// Counter-free lookup: reading back a result the caller just executed
    /// and inserted is not cache traffic.
    pub fn peek(&self, hash: u64) -> Option<&ScenarioResult> {
        self.map.get(&hash)
    }

    pub fn insert(&mut self, hash: u64, result: ScenarioResult) {
        self.map.insert(hash, result);
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Drop all cached results (counters survive — they describe traffic,
    /// not contents).
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::RunStatus;

    fn dummy(name: &str) -> ScenarioResult {
        ScenarioResult {
            name: name.into(),
            hash_hex: "0".repeat(16),
            status: RunStatus::Completed,
            cells: 1,
            steps: 1,
            ranks: 1,
            wall_s: 0.0,
            ns_per_cell_step: 0.0,
            mass_drift: 0.0,
            energy_drift: 0.0,
            base_heating: None,
        }
    }

    #[test]
    fn fetch_counts_hits_and_misses() {
        let mut store = ResultStore::new();
        assert!(store.fetch(1).is_none());
        store.insert(1, dummy("a"));
        assert_eq!(store.fetch(1).unwrap().name, "a");
        assert!(store.fetch(2).is_none());
        assert_eq!(store.hits(), 1);
        assert_eq!(store.misses(), 2);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn contains_does_not_touch_counters() {
        let mut store = ResultStore::new();
        store.insert(7, dummy("x"));
        assert!(store.contains(7));
        assert!(!store.contains(8));
        assert_eq!(store.hits() + store.misses(), 0);
    }
}
