//! Federated campaign serving: client-side failover across several
//! [`CampaignServer`] nodes, plus the server-side anti-entropy agent that
//! keeps their stores converged.
//!
//! A single `campaign_serve` node is a single point of failure: kill it
//! mid-sweep and every in-flight submission dies with it. Federation fixes
//! that without inventing a consensus layer, by leaning on two properties
//! the campaign stack already has:
//!
//! * **Scenarios are content-addressed.** A spec's identity is its
//!   [`content_hash`](crate::spec::ScenarioSpec::content_hash), everywhere.
//!   Re-submitting a job to a different node can at worst re-execute
//!   physics the first node also ran — never produce a *different* result
//!   row — and duplicate completions collapse by hash.
//! * **Results are idempotent store lines.** The `SYNC`/`PUSH` verbs
//!   ([`CampaignClient::sync`] / [`CampaignClient::push`]) move canonical
//!   store lines between nodes; importing one is a no-op when the
//!   receiving store already holds the hash.
//!
//! [`FederatedClient`] drives a sweep against N nodes: submissions
//! round-robin across the live set, results stream back from every node
//! and dedupe by hash, and a node that dies (connect/read timeout, torn
//! socket) has its detached jobs re-submitted to survivors. The sweep
//! completes as long as *one* node survives.
//!
//! [`AntiEntropy`] runs inside a serving process (`campaign_serve
//! --peers`): a background thread that periodically offers each peer this
//! node's store inventory, imports what the peer has that this node lacks,
//! and pushes back what the peer wants — so a preempted scenario's result
//! (or its per-rank checkpoint resume, executed on whichever node the
//! client failed over to) propagates to the whole fleet. Topology and
//! failure semantics are specified in `docs/FEDERATION.md`.

use crate::queue::JobId;
use crate::report::ScenarioResult;
use crate::serve::{CampaignClient, CampaignServer};
use crate::spec::ScenarioSpec;
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Liveness bounds for federated connections.
#[derive(Clone, Copy, Debug)]
pub struct FederationConfig {
    /// Cap on establishing a TCP connection to a node.
    pub connect_timeout: Duration,
    /// Cap on any single reply read; a node silent for longer is treated
    /// as dead (see [`CampaignClient::connect_timeout`]).
    pub read_timeout: Duration,
    /// How long one `STREAM` exchange asks a node to wait for results.
    /// Must be comfortably below `read_timeout`: during a stream the
    /// server legitimately says nothing until a result finishes or this
    /// window closes.
    pub stream_slice: Duration,
}

impl Default for FederationConfig {
    fn default() -> Self {
        FederationConfig {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(10),
            stream_slice: Duration::from_millis(500),
        }
    }
}

/// One member of the federation, as the client sees it.
struct Node {
    addr: String,
    client: Option<CampaignClient>,
}

impl Node {
    fn is_live(&self) -> bool {
        self.client.is_some()
    }
}

/// One submission's bookkeeping: which node currently owns it, and under
/// which per-node job id.
struct Tracked {
    spec: ScenarioSpec,
    hash: u64,
    node: usize,
    job: JobId,
    done: bool,
}

/// What a completed federated sweep reports beyond the results themselves.
#[derive(Clone, Debug, Default)]
pub struct FederationStats {
    /// Nodes that died (timed out or tore their connection) during the run.
    pub nodes_lost: usize,
    /// Jobs re-submitted to a surviving node after their owner died.
    pub resubmitted: usize,
    /// Duplicate completions dropped by content-hash dedup (a re-submitted
    /// job whose original owner had already streamed, or coalescing across
    /// nodes).
    pub deduped: usize,
}

/// A campaign client over several servers: round-robin submission,
/// dead-node failover, hash-deduplicated result streaming.
pub struct FederatedClient {
    nodes: Vec<Node>,
    cfg: FederationConfig,
    rr: usize,
    tracked: Vec<Tracked>,
    stats: FederationStats,
}

impl FederatedClient {
    /// Connect to `addrs`. Nodes that refuse or time out now are recorded
    /// as dead (they get no second chance — federation is failover, not
    /// membership management); at least one must be live.
    pub fn connect(addrs: &[String], cfg: FederationConfig) -> io::Result<FederatedClient> {
        let nodes: Vec<Node> = addrs
            .iter()
            .map(|addr| Node {
                addr: addr.clone(),
                client: CampaignClient::connect_timeout(
                    addr.as_str(),
                    cfg.connect_timeout,
                    cfg.read_timeout,
                )
                .ok(),
            })
            .collect();
        let dead = nodes.iter().filter(|n| !n.is_live()).count();
        if dead == nodes.len() {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("no live node among {addrs:?}"),
            ));
        }
        Ok(FederatedClient {
            nodes,
            cfg,
            rr: 0,
            tracked: Vec::new(),
            stats: FederationStats {
                nodes_lost: dead,
                ..Default::default()
            },
        })
    }

    /// Addresses of the nodes currently considered live.
    pub fn live_nodes(&self) -> Vec<&str> {
        self.nodes
            .iter()
            .filter(|n| n.is_live())
            .map(|n| n.addr.as_str())
            .collect()
    }

    /// Failover accounting so far.
    pub fn stats(&self) -> &FederationStats {
        &self.stats
    }

    /// Submit one scenario to the next live node (round-robin). Returns the
    /// spec's content hash — the federated ticket: node-local job ids are
    /// an implementation detail that dies with a node, the hash does not.
    /// A node that fails the exchange is marked dead and the submission
    /// moves on; `Err` only when every node is gone.
    pub fn submit(&mut self, spec: &ScenarioSpec) -> io::Result<u64> {
        let mut spec = spec.clone();
        spec.normalize();
        let hash = spec.content_hash();
        // Already tracked (sweep-level dedup): one execution serves both.
        if self.tracked.iter().any(|t| t.hash == hash) {
            self.stats.deduped += 1;
            return Ok(hash);
        }
        loop {
            let idx = self.next_live_node()?;
            match self.nodes[idx]
                .client
                .as_mut()
                .expect("next_live_node returned a live node")
                .submit(&spec, 0)
            {
                Ok(ack) => {
                    self.tracked.push(Tracked {
                        spec,
                        hash,
                        node: idx,
                        job: ack.job,
                        done: false,
                    });
                    return Ok(hash);
                }
                Err(e) if e.kind() == io::ErrorKind::InvalidInput => return Err(e), // spec rejected
                Err(_) => self.mark_dead(idx),
            }
        }
    }

    /// Submit a batch in order; returns the content hashes.
    pub fn submit_all(&mut self, specs: &[ScenarioSpec]) -> io::Result<Vec<u64>> {
        specs.iter().map(|s| self.submit(s)).collect()
    }

    /// Drive every tracked submission to completion: stream from each live
    /// node in short slices, fail dead nodes over by re-submitting their
    /// unfinished jobs to survivors, dedupe completions by hash. Returns
    /// `hash → result` for every tracked scenario, or an error when the
    /// deadline passes or the last node dies with work outstanding.
    pub fn collect(&mut self, timeout: Duration) -> io::Result<HashMap<u64, ScenarioResult>> {
        let deadline = Instant::now() + timeout;
        let mut out: HashMap<u64, ScenarioResult> = HashMap::new();
        while out.len() < self.tracked.len() {
            if Instant::now() >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!(
                        "federated collect timed out with {}/{} results",
                        out.len(),
                        self.tracked.len()
                    ),
                ));
            }
            // One streaming slice per live node that still owes results.
            for idx in 0..self.nodes.len() {
                let pending: Vec<JobId> = self
                    .tracked
                    .iter()
                    .filter(|t| t.node == idx && !t.done)
                    .map(|t| t.job)
                    .collect();
                if pending.is_empty() || !self.nodes[idx].is_live() {
                    continue;
                }
                let streamed = self.nodes[idx]
                    .client
                    .as_mut()
                    .expect("checked live")
                    .stream(pending.len(), self.cfg.stream_slice);
                match streamed {
                    Ok(results) => {
                        for r in results {
                            self.absorb(idx, r.job, r.hash, r.result, &mut out);
                        }
                    }
                    Err(_) => self.mark_dead(idx),
                }
            }
            self.resubmit_orphans(&out)?;
        }
        Ok(out)
    }

    /// Record one streamed completion, deduplicating by content hash.
    fn absorb(
        &mut self,
        node: usize,
        job: JobId,
        hash: u64,
        result: ScenarioResult,
        out: &mut HashMap<u64, ScenarioResult>,
    ) {
        // Mark every tracked entry for this hash done — after a failover
        // race both the original and the re-submitted job may stream.
        for t in self.tracked.iter_mut().filter(|t| t.hash == hash) {
            if t.done && !(t.node == node && t.job == job) {
                self.stats.deduped += 1;
            }
            t.done = true;
        }
        if out.insert(hash, result).is_some() {
            self.stats.deduped += 1;
        }
    }

    /// Re-home every unfinished job whose owner is dead. Jobs whose hash
    /// already completed on another node are just marked done.
    fn resubmit_orphans(&mut self, out: &HashMap<u64, ScenarioResult>) -> io::Result<()> {
        let orphans: Vec<usize> = self
            .tracked
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.done && !self.nodes[t.node].is_live())
            .map(|(i, _)| i)
            .collect();
        for i in orphans {
            if out.contains_key(&self.tracked[i].hash) {
                self.tracked[i].done = true;
                continue;
            }
            loop {
                let idx = self.next_live_node()?;
                let spec = self.tracked[i].spec.clone();
                match self.nodes[idx]
                    .client
                    .as_mut()
                    .expect("next_live_node returned a live node")
                    .submit(&spec, 0)
                {
                    Ok(ack) => {
                        self.tracked[i].node = idx;
                        self.tracked[i].job = ack.job;
                        self.stats.resubmitted += 1;
                        break;
                    }
                    Err(e) if e.kind() == io::ErrorKind::InvalidInput => return Err(e),
                    Err(_) => self.mark_dead(idx),
                }
            }
        }
        Ok(())
    }

    fn next_live_node(&mut self) -> io::Result<usize> {
        for _ in 0..self.nodes.len() {
            let idx = self.rr % self.nodes.len();
            self.rr += 1;
            if self.nodes[idx].is_live() {
                return Ok(idx);
            }
        }
        Err(io::Error::new(
            io::ErrorKind::ConnectionAborted,
            "every federation node is dead",
        ))
    }

    fn mark_dead(&mut self, idx: usize) {
        if self.nodes[idx].client.take().is_some() {
            self.stats.nodes_lost += 1;
        }
    }
}

/// Handle to a running anti-entropy agent; dropping it (or calling
/// [`AntiEntropy::stop`]) stops the background thread.
pub struct AntiEntropy {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl AntiEntropy {
    /// Spawn the agent inside `server`'s process: every `interval`, offer
    /// each of `peers` this node's store inventory over `SYNC`, import the
    /// results this node lacks, and `PUSH` back the ones the peer wants.
    /// Unreachable peers are skipped and retried next round — anti-entropy
    /// is eventually consistent by design, never blocking.
    ///
    /// The agent holds a handle on the server's queue, so **stop it before
    /// [`CampaignServer::join`]** — join hands the store back only once the
    /// queue has no other holder.
    pub fn spawn(
        server: &CampaignServer,
        peers: Vec<String>,
        interval: Duration,
        cfg: FederationConfig,
    ) -> AntiEntropy {
        let queue = server.queue_handle();
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            while !flag.load(Ordering::SeqCst) {
                for peer in &peers {
                    if flag.load(Ordering::SeqCst) {
                        return;
                    }
                    let digests = queue.store_digests();
                    let Ok(mut client) = CampaignClient::connect_timeout(
                        peer.as_str(),
                        cfg.connect_timeout,
                        cfg.read_timeout,
                    ) else {
                        continue;
                    };
                    let Ok((results, want)) = client.sync(&digests) else {
                        continue;
                    };
                    for (hash, result) in results {
                        queue.import_result(hash, result);
                    }
                    if !want.is_empty() {
                        let give: Vec<(u64, ScenarioResult)> = queue
                            .export_results(&want)
                            .into_iter()
                            .map(|(h, r)| (h, (*r).clone()))
                            .collect();
                        let _ = client.push(give);
                    }
                }
                // Sleep in short ticks so stop() stays responsive.
                let until = Instant::now() + interval;
                while Instant::now() < until && !flag.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(25).min(interval));
                }
            }
        });
        AntiEntropy {
            stop,
            handle: Some(handle),
        }
    }

    /// Stop the agent and join its thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for AntiEntropy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecConfig;
    use crate::spec::BaseCase;
    use crate::store::ResultStore;

    fn quick(n: usize) -> ScenarioSpec {
        let mut s = ScenarioSpec::new(BaseCase::SteepeningWave { amp: 0.2 }, n);
        s.warmup = 0;
        s.steps = 1;
        s
    }

    fn small_server() -> CampaignServer {
        CampaignServer::bind(
            "127.0.0.1:0",
            ExecConfig {
                workers: 1,
                threads_per_worker: 1,
                ..Default::default()
            },
            ResultStore::new(),
        )
        .expect("bind")
    }

    fn fast_cfg() -> FederationConfig {
        FederationConfig {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(10),
            stream_slice: Duration::from_millis(200),
        }
    }

    #[test]
    fn round_robin_spreads_a_sweep_and_dedupes_by_hash() {
        let a = small_server();
        let b = small_server();
        let addrs = vec![a.local_addr().to_string(), b.local_addr().to_string()];
        let mut fed = FederatedClient::connect(&addrs, fast_cfg()).unwrap();
        assert_eq!(fed.live_nodes().len(), 2);

        let specs = [quick(40), quick(48), quick(56), quick(40)]; // one dup
        let hashes = fed.submit_all(&specs).unwrap();
        assert_eq!(hashes[0], hashes[3], "same physics, same ticket");
        assert_eq!(fed.stats().deduped, 1, "duplicate never left the client");

        let results = fed.collect(Duration::from_secs(120)).unwrap();
        assert_eq!(results.len(), 3);
        for h in &hashes {
            assert!(results[h].status.is_ok());
        }
        assert_eq!(fed.stats().nodes_lost, 0);
        assert_eq!(fed.stats().resubmitted, 0);

        // Both nodes actually executed something (round-robin, not
        // primary/backup).
        let mut ca = CampaignClient::connect(a.local_addr()).unwrap();
        let mut cb = CampaignClient::connect(b.local_addr()).unwrap();
        assert!(ca.stats().unwrap().executed >= 1);
        assert!(cb.stats().unwrap().executed >= 1);
        ca.shutdown_server().unwrap();
        cb.shutdown_server().unwrap();
        a.join();
        b.join();
    }

    #[test]
    fn dead_node_at_connect_time_is_tolerated() {
        let a = small_server();
        // A port with nothing behind it: grab one, then drop the listener.
        let dead_addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let addrs = vec![dead_addr.clone(), a.local_addr().to_string()];
        let mut fed = FederatedClient::connect(&addrs, fast_cfg()).unwrap();
        assert_eq!(fed.live_nodes().len(), 1);
        assert_eq!(fed.stats().nodes_lost, 1);

        fed.submit(&quick(48)).unwrap();
        let results = fed.collect(Duration::from_secs(120)).unwrap();
        assert_eq!(results.len(), 1);

        // Nothing live at all: connect refuses.
        let err = match FederatedClient::connect(&[dead_addr], fast_cfg()) {
            Ok(_) => panic!("connected to a federation with no live node"),
            Err(e) => e,
        };
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);

        let mut c = CampaignClient::connect(a.local_addr()).unwrap();
        c.shutdown_server().unwrap();
        a.join();
    }

    #[test]
    fn anti_entropy_converges_two_nodes() {
        let a = small_server();
        let b = small_server();

        // Node A computes a result node B has never seen.
        let mut ca = CampaignClient::connect(a.local_addr()).unwrap();
        let ack = ca.submit(&quick(48), 0).unwrap();
        assert_eq!(ca.stream(1, Duration::from_secs(120)).unwrap().len(), 1);

        // B's agent gossips with A.
        let agent = AntiEntropy::spawn(
            &b,
            vec![a.local_addr().to_string()],
            Duration::from_millis(50),
            fast_cfg(),
        );
        let mut cb = CampaignClient::connect(b.local_addr()).unwrap();
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if cb.stats().unwrap().entries >= 1 {
                break;
            }
            assert!(Instant::now() < deadline, "anti-entropy never converged");
            std::thread::sleep(Duration::from_millis(25));
        }
        // The backfilled result serves B's submissions with zero compute.
        let again = cb.submit(&quick(48), 0).unwrap();
        assert!(!again.queued);
        assert_eq!(again.hash_hex, ack.hash_hex);
        assert_eq!(cb.stats().unwrap().executed, 0);

        // Now B computes something and the *push* half returns it to A:
        // B's agent syncs against A, learns A wants it, and pushes.
        let _ = cb.submit(&quick(64), 0).unwrap();
        assert_eq!(cb.stream(1, Duration::from_secs(120)).unwrap().len(), 1);
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if ca.stats().unwrap().entries >= 2 {
                break;
            }
            assert!(Instant::now() < deadline, "push half never converged");
            std::thread::sleep(Duration::from_millis(25));
        }
        agent.stop();
        ca.shutdown_server().unwrap();
        cb.shutdown_server().unwrap();
        assert_eq!(a.join().len(), 2);
        assert_eq!(b.join().len(), 2);
    }
}
