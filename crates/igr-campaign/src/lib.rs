//! Ensemble-campaign engine: scenario DSL, sweep expansion, sharded cached
//! execution, and aggregate reporting.
//!
//! The paper's §3 motivates the whole exercise with *simulation campaigns*:
//! engineers sweep engine-out combinations ("a small number of engine
//! failures can be compensated for"), thrust-vectoring angles, and
//! altitude/backpressure conditions across many runs — and IGR makes each
//! run cheap enough that the *ensemble*, not the single solve, becomes the
//! unit of work. This crate turns the one-case-at-a-time app layer into
//! that campaign engine:
//!
//! * [`spec`] — [`ScenarioSpec`]: a declarative, content-hashed description
//!   of one parameterized run (base case, resolution, precision, scheme,
//!   engine-out sets, per-engine gimbal schedules, ambient backpressure,
//!   solver knobs);
//! * [`sweep`] — [`Sweep`]: cartesian/zip/sampled parameter axes expanded
//!   into scenario lists (engine-out × gimbal × backpressure × …);
//! * [`exec`] — [`Campaign`]: a work-stealing worker pool that deduplicates
//!   by content hash, serves repeats from the result cache, runs the rest
//!   (optionally decomposed over `igr-comm` thread-ranks), and captures
//!   grind time per scenario;
//! * [`store`] — [`ResultStore`]: the content-hash result cache with
//!   hit/miss accounting, optionally backed by an on-disk store file;
//! * [`persist`] — the append-only JSON-lines store file: content hashes
//!   are stable across processes and platforms, so caches survive restarts
//!   and can be shipped between machines;
//! * [`queue`] — [`CampaignQueue`]: the async front end — submit/poll/
//!   cancel with priorities and incremental result streaming, so long
//!   campaigns run while sweeps are still being authored;
//! * [`protocol`] — the line-delimited JSON wire format (versioned
//!   handshake, message grammar, error codes; normative spec in
//!   `docs/PROTOCOL.md`);
//! * [`serve`] — [`CampaignServer`]/[`CampaignClient`]: the queue exposed
//!   over TCP — campaigns submitted from other processes and machines,
//!   coalesced across connections, sharing one store file;
//! * [`federation`] — [`FederatedClient`]/[`AntiEntropy`]: several servers
//!   as one failure-tolerant campaign fabric — round-robin submission with
//!   client-side failover, and store anti-entropy over the `SYNC`/`PUSH`
//!   verbs (topology in `docs/FEDERATION.md`);
//! * [`report`] — [`CampaignReport`]: per-scenario grind, conservation
//!   drift, and base-heating diagnostics aggregated into JSON/CSV/text.
//!
//! ```no_run
//! use igr_campaign::{Campaign, ExecConfig, sweep};
//!
//! // Engine-out × gimbal × backpressure on the 3-engine array.
//! let sweep = sweep::engine_out_gimbal_backpressure(
//!     32, 4,
//!     &[vec![], vec![0], vec![1], vec![2]],
//!     &[0.0, 0.06, 0.12],
//!     &[1.0, 0.25],
//! );
//! let mut campaign = Campaign::new(ExecConfig::default());
//! let report = campaign.run(&sweep.expand());
//! println!("{}", report.to_text());
//! std::fs::write("campaign.json", report.to_json()).unwrap();
//! ```

#![deny(missing_docs)]

pub mod exec;
pub mod federation;
pub mod persist;
pub mod protocol;
pub mod queue;
pub mod report;
pub mod serve;
pub mod spec;
pub mod store;
pub mod sweep;

pub use exec::{run_scenario, run_scenario_caught, Campaign, ExecConfig};
pub use federation::{AntiEntropy, FederatedClient, FederationConfig, FederationStats};
pub use persist::{result_digest, StoreRecovery};
pub use protocol::{
    ErrorCode, MetricHistogram, ServerMetrics, ServerStats, StreamedResult, WireJobState,
    PROTO_VERSION,
};
pub use queue::{CampaignQueue, JobId, JobState};
pub use report::{CampaignReport, ReportRow, RunStatus, ScenarioResult};
pub use serve::{CampaignClient, CampaignServer, SubmitAck};
pub use spec::{
    BaseCase, ControllerSpec, RecoverySpec, ScenarioSpec, SchemeKind, SpecError,
    CONTENT_HASH_VERSION,
};
pub use store::{CompactStats, ResultStore, COMPACT_MIN_LINES};
pub use sweep::{Delta, ExpandMode, ParamAxis, Sweep};
