//! Queue-native campaign serving: a TCP server over [`CampaignQueue`],
//! plus the matching blocking client.
//!
//! This is the ROADMAP's "queue-native campaign serving" layer: the queue's
//! submit/poll/cancel/stream semantics, exposed over the line-delimited
//! JSON protocol in [`crate::protocol`] so campaigns can be driven from
//! other processes and machines. The properties that make that safe:
//!
//! * **Shared store, cross-connection coalescing.** Every connection talks
//!   to one [`CampaignQueue`] over one [`ResultStore`]: two clients
//!   submitting the same spec share a single execution and a single cached
//!   result, and a spec already in a warm store file completes with zero
//!   compute.
//! * **Per-connection isolation.** A malformed line fails *that request*
//!   (a machine-readable [`crate::protocol::ErrorCode`]); a panic while
//!   handling a request fails that request; a torn connection detaches
//!   its jobs ([`CampaignQueue::release_jobs`]) without interrupting
//!   executions other clients may be waiting on. The server itself keeps
//!   serving.
//! * **Versioned handshake.** Connections open with a `HELLO` exchange
//!   pinning [`crate::protocol::PROTO_VERSION`] and the content-hash
//!   version, so neither the wire format nor the cache keying can skew
//!   silently.
//! * **Graceful shutdown.** The `SHUTDOWN` verb (or
//!   [`CampaignServer::request_shutdown`]) stops the accept loop, joins
//!   every connection and worker, and [`CampaignServer::join`] hands the
//!   store — with every result computed while serving — back to the caller,
//!   exactly like [`CampaignQueue::shutdown`].
//!
//! ```no_run
//! use igr_campaign::{CampaignClient, CampaignServer, ExecConfig, ResultStore};
//! use igr_campaign::{BaseCase, ScenarioSpec};
//! use std::time::Duration;
//!
//! let store = ResultStore::open("campaign_store.jsonl")?;
//! let server = CampaignServer::bind("127.0.0.1:0", ExecConfig::default(), store)?;
//!
//! let mut client = CampaignClient::connect(server.local_addr())?;
//! let ack = client.submit(&ScenarioSpec::new(BaseCase::Sod, 64), 0)?;
//! for r in client.stream(1, Duration::from_secs(60))? {
//!     println!("job {} -> {} (cached: {})", r.job, r.result.name, r.cached);
//! }
//! client.shutdown_server()?;
//! let store = server.join(); // every result, ready to reopen or hand off
//! # Ok::<(), std::io::Error>(())
//! ```

use crate::exec::ExecConfig;
use crate::protocol::{
    ErrorCode, Request, Response, ServerMetrics, ServerStats, StreamedResult, WireError,
    WireJobState, PROTO_VERSION,
};
use crate::queue::{CampaignQueue, JobId, JobState};
use crate::spec::{ScenarioSpec, CONTENT_HASH_VERSION};
use crate::store::ResultStore;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How often blocked reads wake up to check the shutdown flag.
const POLL_TICK: Duration = Duration::from_millis(100);

/// Upper bound a client can ask a single `STREAM` exchange to wait.
const MAX_STREAM_TIMEOUT: Duration = Duration::from_secs(3600);

/// Longest request line the server will buffer. A spec line is a few KB;
/// anything near this bound is garbage, and without a cap a peer that
/// streams newline-free bytes would grow server memory without limit.
const MAX_LINE_BYTES: usize = 1 << 20;

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// A TCP campaign server: accepts connections, speaks the
/// [`crate::protocol`] wire format, and fronts one shared
/// [`CampaignQueue`].
pub struct CampaignServer {
    queue: Arc<CampaignQueue>,
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
    conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl CampaignServer {
    /// Bind `addr` (use port 0 for an OS-assigned port) and start serving:
    /// `cfg.workers` background execution workers over `store`, plus one
    /// handler thread per accepted connection.
    pub fn bind(
        addr: impl ToSocketAddrs,
        cfg: ExecConfig,
        store: ResultStore,
    ) -> io::Result<CampaignServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let queue = Arc::new(CampaignQueue::with_store(cfg, store));
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept = {
            let queue = Arc::clone(&queue);
            let shutdown = Arc::clone(&shutdown);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || loop {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let queue = Arc::clone(&queue);
                        let shutdown = Arc::clone(&shutdown);
                        let handle = std::thread::spawn(move || {
                            serve_connection(&queue, &shutdown, stream);
                        });
                        conns.lock().unwrap_or_else(|p| p.into_inner()).push(handle);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(POLL_TICK / 4);
                    }
                    Err(_) => std::thread::sleep(POLL_TICK / 4),
                }
            })
        };

        Ok(CampaignServer {
            queue,
            addr,
            shutdown,
            accept: Some(accept),
            conns,
        })
    }

    /// The address the server is listening on (resolves port 0 binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared queue, for in-process agents (the anti-entropy thread
    /// reads inventories and imports peer results through this).
    pub(crate) fn queue_handle(&self) -> Arc<CampaignQueue> {
        Arc::clone(&self.queue)
    }

    /// True once a `SHUTDOWN` verb (or [`Self::request_shutdown`]) has been
    /// seen.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Begin a graceful shutdown from the hosting process (equivalent to a
    /// client sending the `SHUTDOWN` verb). [`Self::join`] completes it.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Block until shutdown is requested (by wire or locally), join the
    /// accept loop, every connection handler, and the queue's workers, then
    /// hand the store back — with every result computed while serving.
    pub fn join(mut self) -> ResultStore {
        while !self.shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(POLL_TICK / 4);
        }
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let handles: Vec<_> = self
            .conns
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
        let queue = Arc::clone(&self.queue);
        drop(self);
        match Arc::try_unwrap(queue) {
            Ok(q) => q.shutdown(),
            // All holders are joined, so this arm is unreachable; an empty
            // store is still a safe answer (mirrors CampaignQueue::shutdown).
            Err(_) => ResultStore::new(),
        }
    }
}

impl Drop for CampaignServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

/// Line reader that tolerates read timeouts (the server's shutdown ticks)
/// without losing partial lines.
struct LineReader {
    stream: TcpStream,
    buf: Vec<u8>,
}

enum ReadOutcome {
    Line(String),
    /// Read timed out; check flags and come back.
    Tick,
    /// Peer closed (or the connection died).
    Closed,
}

impl LineReader {
    fn next(&mut self) -> ReadOutcome {
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=pos).collect();
                let text = String::from_utf8_lossy(&line);
                return ReadOutcome::Line(text.trim_end_matches(['\n', '\r']).to_string());
            }
            if self.buf.len() > MAX_LINE_BYTES {
                // A "line" this long is not protocol traffic; drop the
                // connection rather than buffering without bound.
                return ReadOutcome::Closed;
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return ReadOutcome::Closed,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return ReadOutcome::Tick
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return ReadOutcome::Closed,
            }
        }
    }
}

/// Per-connection session state.
struct ConnState {
    hello_done: bool,
    /// Every job this connection submitted (released on disconnect).
    all_jobs: Vec<JobId>,
    /// Jobs not yet delivered by `STREAM` (and not cancelled).
    pending: Vec<JobId>,
}

/// Whether to keep reading from this connection after a request.
enum Flow {
    Continue,
    Close,
}

fn serve_connection(queue: &Arc<CampaignQueue>, shutdown: &AtomicBool, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(POLL_TICK));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = LineReader {
        stream,
        buf: Vec::new(),
    };
    let mut state = ConnState {
        hello_done: false,
        all_jobs: Vec::new(),
        pending: Vec::new(),
    };
    loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let line = match reader.next() {
            ReadOutcome::Line(l) => l,
            ReadOutcome::Tick => continue,
            ReadOutcome::Closed => break,
        };
        if line.is_empty() {
            continue;
        }
        // Panic isolation: one bad request (or a bug it tickles) fails that
        // request; the connection and the server keep going.
        let handled = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handle_request(queue, shutdown, &mut state, &line, &mut writer)
        }));
        let flow = match handled {
            Ok(Ok(flow)) => flow,
            Ok(Err(_io)) => Flow::Close, // the socket is gone
            Err(_panic) => {
                let resp = Response::Error(WireError::new(
                    ErrorCode::Internal,
                    "request handler panicked",
                ));
                match writer.write_all(resp.encode().as_bytes()) {
                    Ok(()) => Flow::Continue,
                    Err(_) => Flow::Close,
                }
            }
        };
        if matches!(flow, Flow::Close) {
            break;
        }
    }
    // Detach whatever this connection still owned: pending completions are
    // discarded, in-flight executions finish for the store (and for any
    // coalesced waiter on another connection).
    queue.release_jobs(&state.all_jobs);
}

fn handle_request(
    queue: &CampaignQueue,
    shutdown: &AtomicBool,
    state: &mut ConnState,
    line: &str,
    writer: &mut TcpStream,
) -> io::Result<Flow> {
    let send = |writer: &mut TcpStream, resp: Response| -> io::Result<()> {
        writer.write_all(resp.encode().as_bytes())?;
        writer.flush()
    };

    let request = match Request::decode(line) {
        Ok(r) => r,
        Err(e) => {
            send(writer, Response::Error(e))?;
            return Ok(Flow::Continue);
        }
    };

    // Handshake gate: everything but HELLO requires a completed handshake.
    if !state.hello_done && !matches!(request, Request::Hello { .. }) {
        send(
            writer,
            Response::Error(WireError::new(
                ErrorCode::HandshakeRequired,
                "send {\"op\":\"hello\",...} first",
            )),
        )?;
        return Ok(Flow::Continue);
    }

    match request {
        Request::Hello {
            proto,
            hash_version,
        } => {
            if proto != PROTO_VERSION || hash_version != CONTENT_HASH_VERSION {
                send(
                    writer,
                    Response::Error(WireError::new(
                        ErrorCode::VersionMismatch,
                        format!(
                            "server speaks proto {PROTO_VERSION} / hash v{CONTENT_HASH_VERSION}, \
                             client sent proto {proto} / hash v{hash_version}"
                        ),
                    )),
                )?;
                return Ok(Flow::Close);
            }
            state.hello_done = true;
            send(
                writer,
                Response::Hello {
                    proto: PROTO_VERSION,
                    hash_version: CONTENT_HASH_VERSION,
                },
            )?;
            Ok(Flow::Continue)
        }
        Request::Submit { spec, priority } => {
            if let Err(e) = spec.validate() {
                send(
                    writer,
                    Response::Error(WireError::new(ErrorCode::InvalidSpec, e.to_string())),
                )?;
                return Ok(Flow::Continue);
            }
            // submit_detailed reports queued-vs-born-done atomically; a
            // separate poll here would misreport a fast fresh execution
            // as a cache hit.
            let (job, queued) = queue.submit_detailed(&spec, priority);
            state.all_jobs.push(job);
            state.pending.push(job);
            send(
                writer,
                Response::Submitted {
                    job,
                    hash_hex: spec.hash_hex(),
                    queued,
                },
            )?;
            Ok(Flow::Continue)
        }
        Request::Poll { job } => {
            if !state.all_jobs.contains(&job) {
                send(
                    writer,
                    Response::Error(WireError::new(
                        ErrorCode::UnknownJob,
                        format!("job {job} was not submitted on this connection"),
                    )),
                )?;
                return Ok(Flow::Continue);
            }
            let state_wire = match queue.poll(job) {
                Some(JobState::Queued { priority }) => WireJobState::Queued { priority },
                Some(JobState::Running) => WireJobState::Running,
                Some(JobState::Cancelled) => WireJobState::Cancelled,
                Some(JobState::Done { result, cached }) => WireJobState::Done {
                    result: (*result).clone(),
                    cached,
                },
                None => {
                    send(
                        writer,
                        Response::Error(WireError::new(
                            ErrorCode::UnknownJob,
                            format!("job {job} is unknown to the queue"),
                        )),
                    )?;
                    return Ok(Flow::Continue);
                }
            };
            send(
                writer,
                Response::Polled {
                    job,
                    state: state_wire,
                },
            )?;
            Ok(Flow::Continue)
        }
        Request::Cancel { job } => {
            if !state.all_jobs.contains(&job) {
                send(
                    writer,
                    Response::Error(WireError::new(
                        ErrorCode::UnknownJob,
                        format!("job {job} was not submitted on this connection"),
                    )),
                )?;
                return Ok(Flow::Continue);
            }
            let cancelled = queue.cancel(job);
            if cancelled {
                if let Some(i) = state.pending.iter().position(|&j| j == job) {
                    state.pending.swap_remove(i);
                }
            }
            send(writer, Response::Cancelled { job, cancelled })?;
            Ok(Flow::Continue)
        }
        Request::Stream { max, timeout_ms } => {
            let deadline =
                Instant::now() + Duration::from_millis(timeout_ms).min(MAX_STREAM_TIMEOUT);
            let mut delivered = 0usize;
            while delivered < max && !state.pending.is_empty() && !shutdown.load(Ordering::SeqCst) {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let wait = (deadline - now).min(POLL_TICK * 2);
                let Some((job, result, cached)) = queue.claim_completed(&state.pending, wait)
                else {
                    continue;
                };
                if let Some(i) = state.pending.iter().position(|&j| j == job) {
                    state.pending.swap_remove(i);
                }
                let hash = u64::from_str_radix(&result.hash_hex, 16).unwrap_or(0);
                send(
                    writer,
                    Response::Result(StreamedResult {
                        job,
                        cached,
                        hash,
                        result: (*result).clone(),
                    }),
                )?;
                delivered += 1;
            }
            send(writer, Response::StreamEnd { delivered })?;
            Ok(Flow::Continue)
        }
        Request::Stats => {
            let (entries, hits, misses) = queue.store_stats();
            send(
                writer,
                Response::Stats(ServerStats {
                    proto: PROTO_VERSION,
                    hash_version: CONTENT_HASH_VERSION,
                    entries,
                    hits,
                    misses,
                    executed: queue.executed(),
                    outstanding: queue.outstanding(),
                    quarantined: queue.quarantined(),
                }),
            )?;
            Ok(Flow::Continue)
        }
        Request::Metrics => {
            send(
                writer,
                Response::Metrics(ServerMetrics::from_global_registry()),
            )?;
            Ok(Flow::Continue)
        }
        Request::Compact => match queue.compact_store() {
            Ok(Some(stats)) => {
                send(
                    writer,
                    Response::Compacted {
                        live: stats.live,
                        dropped_lines: stats.dropped_lines,
                    },
                )?;
                Ok(Flow::Continue)
            }
            Ok(None) => {
                send(
                    writer,
                    Response::Error(WireError::new(
                        ErrorCode::NotPersistent,
                        "the server's store has no backing file",
                    )),
                )?;
                Ok(Flow::Continue)
            }
            Err(e) => {
                send(
                    writer,
                    Response::Error(WireError::new(
                        ErrorCode::Internal,
                        format!("compaction failed: {e}"),
                    )),
                )?;
                Ok(Flow::Continue)
            }
        },
        Request::Sync { digests } => {
            // Anti-entropy exchange: the requester sent its full (hash,
            // digest) inventory. Ship back every successful result it lacks
            // outright, and name the hashes we lack so it can PUSH them. A
            // shared hash whose digests differ is left alone on both sides:
            // content-hash equality means the physics matched, and the
            // byte-level divergence is timing fields (wall_s) that neither
            // store should clobber the other's compute over.
            let theirs: std::collections::HashSet<u64> = digests.iter().map(|&(h, _)| h).collect();
            let local = queue.store_digests();
            let ours: std::collections::HashSet<u64> = local.iter().map(|&(h, _)| h).collect();
            let missing: Vec<u64> = local
                .iter()
                .filter(|(h, _)| !theirs.contains(h))
                .map(|&(h, _)| h)
                .collect();
            let results: Vec<(u64, crate::report::ScenarioResult)> = queue
                .export_results(&missing)
                .into_iter()
                .map(|(h, r)| (h, (*r).clone()))
                .collect();
            let want: Vec<u64> = digests
                .iter()
                .filter(|(h, _)| !ours.contains(h))
                .map(|&(h, _)| h)
                .collect();
            send(writer, Response::Synced { results, want })?;
            Ok(Flow::Continue)
        }
        Request::Push { results } => {
            let mut accepted = 0usize;
            for (hash, result) in results {
                if queue.import_result(hash, result) {
                    accepted += 1;
                }
            }
            send(writer, Response::Pushed { accepted })?;
            Ok(Flow::Continue)
        }
        Request::Shutdown => {
            send(writer, Response::ShuttingDown)?;
            shutdown.store(true, Ordering::SeqCst);
            Ok(Flow::Close)
        }
    }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// Acknowledgement of one `SUBMIT`.
#[derive(Clone, Debug)]
pub struct SubmitAck {
    /// Ticket for `POLL`/`CANCEL`/`STREAM`.
    pub job: JobId,
    /// The spec's content hash (16 hex digits) as the server computed it.
    pub hash_hex: String,
    /// False when the job completed immediately from the cache.
    pub queued: bool,
}

/// A blocking client for [`CampaignServer`]: one TCP connection, one
/// request/response exchange at a time, with the `HELLO` handshake done at
/// [`CampaignClient::connect`] time.
pub struct CampaignClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl CampaignClient {
    /// Connect and perform the version handshake. Fails with
    /// `InvalidData` if the server speaks a different [`PROTO_VERSION`] or
    /// content-hash version.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<CampaignClient> {
        let stream = TcpStream::connect(addr)?;
        Self::finish_connect(stream)
    }

    /// [`Self::connect`] with explicit liveness bounds: `connect` caps how
    /// long each resolved address may take to accept, and `read` caps how
    /// long any single reply may take to arrive. A dead or wedged node then
    /// fails fast with a typed [`ErrorCode::Timeout`] error
    /// ([`Self::is_timeout`]) instead of blocking the caller on OS TCP
    /// timeouts — the detection primitive federation failover is built on.
    ///
    /// The read timeout applies per read for the connection's lifetime;
    /// [`Self::set_read_timeout`] adjusts it (e.g. widen it around a long
    /// `STREAM` wait, where the server legitimately stays silent until a
    /// result finishes).
    pub fn connect_timeout(
        addr: impl ToSocketAddrs,
        connect: Duration,
        read: Duration,
    ) -> io::Result<CampaignClient> {
        let mut last_err = None;
        for resolved in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&resolved, connect) {
                Ok(stream) => {
                    stream.set_read_timeout(Some(read))?;
                    return Self::finish_connect(stream);
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
        }))
    }

    fn finish_connect(stream: TcpStream) -> io::Result<CampaignClient> {
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        let mut client = CampaignClient {
            reader,
            writer: stream,
        };
        match client.rpc(&Request::Hello {
            proto: PROTO_VERSION,
            hash_version: CONTENT_HASH_VERSION,
        })? {
            Response::Hello { .. } => Ok(client),
            Response::Error(e) => Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
            other => Err(unexpected(&other)),
        }
    }

    /// Adjust (or clear) the per-read timeout on the live connection.
    pub fn set_read_timeout(&self, read: Option<Duration>) -> io::Result<()> {
        self.writer.set_read_timeout(read)
    }

    /// True when `err` is a client-side read/connect timeout produced by
    /// this client (carries an [`ErrorCode::Timeout`] [`WireError`]) — the
    /// "treat this node as dead and fail over" signal, as distinct from a
    /// server-sent error or a closed socket.
    pub fn is_timeout(err: &io::Error) -> bool {
        err.get_ref()
            .and_then(|inner| inner.downcast_ref::<WireError>())
            .is_some_and(|w| w.code == ErrorCode::Timeout)
    }

    /// Submit one scenario at `priority` (higher runs first).
    pub fn submit(&mut self, spec: &ScenarioSpec, priority: i32) -> io::Result<SubmitAck> {
        match self.rpc(&Request::Submit {
            spec: spec.clone(),
            priority,
        })? {
            Response::Submitted {
                job,
                hash_hex,
                queued,
            } => Ok(SubmitAck {
                job,
                hash_hex,
                queued,
            }),
            Response::Error(e) => Err(io::Error::new(io::ErrorKind::InvalidInput, e.to_string())),
            other => Err(unexpected(&other)),
        }
    }

    /// Submit a batch in order at one priority.
    pub fn submit_all(
        &mut self,
        specs: &[ScenarioSpec],
        priority: i32,
    ) -> io::Result<Vec<SubmitAck>> {
        specs.iter().map(|s| self.submit(s, priority)).collect()
    }

    /// Where is this job now?
    pub fn poll(&mut self, job: JobId) -> io::Result<WireJobState> {
        match self.rpc(&Request::Poll { job })? {
            Response::Polled { state, .. } => Ok(state),
            Response::Error(e) => Err(io::Error::new(io::ErrorKind::InvalidInput, e.to_string())),
            other => Err(unexpected(&other)),
        }
    }

    /// Cancel a queued job; `Ok(true)` when it will now never run.
    pub fn cancel(&mut self, job: JobId) -> io::Result<bool> {
        match self.rpc(&Request::Cancel { job })? {
            Response::Cancelled { cancelled, .. } => Ok(cancelled),
            Response::Error(e) => Err(io::Error::new(io::ErrorKind::InvalidInput, e.to_string())),
            other => Err(unexpected(&other)),
        }
    }

    /// Stream up to `max` of this connection's completed results as they
    /// finish (the server pushes them incrementally, then a `stream-end`
    /// marker). Returns the results delivered within `timeout`.
    pub fn stream(&mut self, max: usize, timeout: Duration) -> io::Result<Vec<StreamedResult>> {
        self.send(&Request::Stream {
            max,
            // Clamp to the server's own cap, which also keeps the value
            // inside the 2^53 range the wire's JSON integers can carry
            // (Duration::MAX would otherwise be rejected as bad-request).
            timeout_ms: timeout.as_millis().min(MAX_STREAM_TIMEOUT.as_millis()) as u64,
        })?;
        let mut out = Vec::new();
        loop {
            match self.recv()? {
                Response::Result(r) => out.push(r),
                Response::StreamEnd { .. } => return Ok(out),
                Response::Error(e) => {
                    return Err(io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))
                }
                other => return Err(unexpected(&other)),
            }
        }
    }

    /// Server/store statistics.
    pub fn stats(&mut self) -> io::Result<ServerStats> {
        match self.rpc(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            Response::Error(e) => Err(io::Error::new(io::ErrorKind::InvalidInput, e.to_string())),
            other => Err(unexpected(&other)),
        }
    }

    /// Live telemetry snapshot: queue counters plus latency histograms.
    ///
    /// METRICS is an additive v2 verb (see `docs/PROTOCOL.md` §6): against
    /// an older server this fails with `unknown-op`, which is
    /// request-fatal only — the connection survives.
    pub fn metrics(&mut self) -> io::Result<ServerMetrics> {
        match self.rpc(&Request::Metrics)? {
            Response::Metrics(m) => Ok(m),
            Response::Error(e) => Err(io::Error::new(io::ErrorKind::InvalidInput, e.to_string())),
            other => Err(unexpected(&other)),
        }
    }

    /// Compact the server's store file; returns `(live, dropped_lines)`.
    pub fn compact(&mut self) -> io::Result<(usize, usize)> {
        match self.rpc(&Request::Compact)? {
            Response::Compacted {
                live,
                dropped_lines,
            } => Ok((live, dropped_lines)),
            Response::Error(e) => Err(io::Error::new(io::ErrorKind::InvalidInput, e.to_string())),
            other => Err(unexpected(&other)),
        }
    }

    /// Anti-entropy exchange (SYNC, an additive v3 verb — `unknown-op`
    /// against older servers, request-fatal only): send this store's full
    /// `(hash, digest)` inventory, get back every successful result the
    /// server holds that the inventory lacks, plus the hashes the server
    /// `want`s pushed back. See `docs/FEDERATION.md`.
    pub fn sync(
        &mut self,
        digests: &[(u64, u64)],
    ) -> io::Result<(Vec<(u64, crate::report::ScenarioResult)>, Vec<u64>)> {
        match self.rpc(&Request::Sync {
            digests: digests.to_vec(),
        })? {
            Response::Synced { results, want } => Ok((results, want)),
            Response::Error(e) => Err(io::Error::new(io::ErrorKind::InvalidInput, e.to_string())),
            other => Err(unexpected(&other)),
        }
    }

    /// Push full results to the server (PUSH, additive v3 — the other half
    /// of anti-entropy). Returns how many the server accepted; it never
    /// clobbers a successful result it already holds, so pushing is
    /// idempotent.
    pub fn push(
        &mut self,
        results: Vec<(u64, crate::report::ScenarioResult)>,
    ) -> io::Result<usize> {
        match self.rpc(&Request::Push { results })? {
            Response::Pushed { accepted } => Ok(accepted),
            Response::Error(e) => Err(io::Error::new(io::ErrorKind::InvalidInput, e.to_string())),
            other => Err(unexpected(&other)),
        }
    }

    /// Ask the server to shut down gracefully (it hands its store back to
    /// the process hosting it — see [`CampaignServer::join`]).
    pub fn shutdown_server(&mut self) -> io::Result<()> {
        match self.rpc(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            Response::Error(e) => Err(io::Error::new(io::ErrorKind::InvalidInput, e.to_string())),
            other => Err(unexpected(&other)),
        }
    }

    /// Send one raw line and return the raw response line — the diagnostic
    /// escape hatch the protocol tests use to exercise server-side error
    /// paths (malformed JSON, unknown verbs) through a real connection.
    pub fn raw_request(&mut self, line: &str) -> io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.read_line()
    }

    fn send(&mut self, req: &Request) -> io::Result<()> {
        self.writer.write_all(req.encode().as_bytes())?;
        self.writer.flush()
    }

    fn read_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
            Ok(_) => Ok(line.trim_end_matches(['\n', '\r']).to_string()),
            // SO_RCVTIMEO surfaces as WouldBlock on Unix and TimedOut on
            // Windows; both mean "the node went silent". Wrap them in a
            // typed Timeout WireError so callers can tell liveness failures
            // from protocol errors without string matching.
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    WireError::new(
                        ErrorCode::Timeout,
                        "server did not reply within the read timeout",
                    ),
                ))
            }
            Err(e) => Err(e),
        }
    }

    fn recv(&mut self) -> io::Result<Response> {
        let line = self.read_line()?;
        Response::decode(&line).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("undecodable response: {e}"),
            )
        })
    }

    fn rpc(&mut self, req: &Request) -> io::Result<Response> {
        self.send(req)?;
        self.recv()
    }
}

fn unexpected(resp: &Response) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected response: {resp:?}"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::BaseCase;

    fn quick(n: usize) -> ScenarioSpec {
        let mut s = ScenarioSpec::new(BaseCase::SteepeningWave { amp: 0.2 }, n);
        s.warmup = 0;
        s.steps = 1;
        s
    }

    fn small_server(store: ResultStore) -> CampaignServer {
        CampaignServer::bind(
            "127.0.0.1:0",
            ExecConfig {
                workers: 1,
                threads_per_worker: 1,
                ..Default::default()
            },
            store,
        )
        .expect("bind")
    }

    #[test]
    fn submit_stream_stats_round_trip_over_localhost() {
        let server = small_server(ResultStore::new());
        let mut client = CampaignClient::connect(server.local_addr()).unwrap();
        let ack = client.submit(&quick(48), 0).unwrap();
        assert!(ack.queued);
        let results = client.stream(1, Duration::from_secs(120)).unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].job, ack.job);
        assert!(!results[0].cached);
        assert!(results[0].result.status.is_ok());

        // Resubmitting the identical spec completes from the cache.
        let again = client.submit(&quick(48), 0).unwrap();
        assert!(!again.queued, "born done from the store");
        let results = client.stream(1, Duration::from_secs(30)).unwrap();
        assert!(results[0].cached);

        let stats = client.stats().unwrap();
        assert_eq!(stats.executed, 1, "one execution served two submissions");
        assert_eq!(stats.entries, 1);

        client.shutdown_server().unwrap();
        let store = server.join();
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn malformed_lines_fail_the_request_not_the_connection() {
        let server = small_server(ResultStore::new());
        let mut client = CampaignClient::connect(server.local_addr()).unwrap();
        let resp = client.raw_request("this is not json").unwrap();
        assert!(resp.contains("\"ok\":false"), "{resp}");
        assert!(resp.contains("parse-error"), "{resp}");
        let resp = client.raw_request("{\"op\":\"warp\"}").unwrap();
        assert!(resp.contains("unknown-op"), "{resp}");
        // The same connection still works.
        let stats = client.stats().unwrap();
        assert_eq!(stats.proto, PROTO_VERSION);
        client.shutdown_server().unwrap();
        server.join();
    }

    #[test]
    fn handshake_is_mandatory_and_version_checked() {
        let server = small_server(ResultStore::new());
        // Raw connection, no handshake: first non-hello request is refused.
        {
            let stream = TcpStream::connect(server.local_addr()).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            writer.write_all(b"{\"op\":\"stats\"}\n").unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(line.contains("handshake-required"), "{line}");
            // Wrong proto version: error + connection close.
            writer
                .write_all(b"{\"op\":\"hello\",\"proto\":999,\"hash_v\":2}\n")
                .unwrap();
            line.clear();
            reader.read_line(&mut line).unwrap();
            assert!(line.contains("version-mismatch"), "{line}");
            line.clear();
            assert_eq!(reader.read_line(&mut line).unwrap(), 0, "server closed");
        }
        // A well-behaved client still connects fine afterwards.
        let mut client = CampaignClient::connect(server.local_addr()).unwrap();
        client.shutdown_server().unwrap();
        server.join();
    }

    #[test]
    fn invalid_specs_are_rejected_with_a_code() {
        let server = small_server(ResultStore::new());
        let mut client = CampaignClient::connect(server.local_addr()).unwrap();
        let mut bad = quick(48);
        bad.backpressure = Some(0.5); // non-jet case: invalid override
        let err = client.submit(&bad, 0).unwrap_err();
        assert!(err.to_string().contains("invalid-spec"), "{err}");
        let stats = client.stats().unwrap();
        assert_eq!(stats.outstanding, 0, "nothing was queued");
        client.shutdown_server().unwrap();
        server.join();
    }

    #[test]
    fn silent_sockets_fail_fast_with_a_typed_timeout() {
        // A "server" that accepts the TCP connection and then never says a
        // word — the shape of a wedged or half-dead node. The plain client
        // would block in the HELLO read indefinitely; the timeout-configured
        // one must fail fast with a typed Timeout error, distinguishable
        // from protocol errors without string matching.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        let hold = std::thread::spawn(move || {
            let _held = listener.accept().unwrap();
            let _ = rx.recv(); // keep the socket open (silent) until told
        });
        let t0 = Instant::now();
        let err = match CampaignClient::connect_timeout(
            addr,
            Duration::from_secs(5),
            Duration::from_millis(150),
        ) {
            Ok(_) => panic!("handshake against a silent socket succeeded"),
            Err(e) => e,
        };
        assert!(t0.elapsed() < Duration::from_secs(4), "failed fast");
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert!(CampaignClient::is_timeout(&err), "{err}");
        drop(tx);
        let _ = hold.join();

        // Contrast: a server-sent error and a dead socket are NOT timeouts.
        let server = small_server(ResultStore::new());
        let mut client = CampaignClient::connect_timeout(
            server.local_addr(),
            Duration::from_secs(5),
            Duration::from_secs(5),
        )
        .unwrap();
        let err = client.compact().unwrap_err(); // not-persistent WireError
        assert!(!CampaignClient::is_timeout(&err), "{err}");
        client.shutdown_server().unwrap();
        server.join();
    }

    #[test]
    fn sync_and_push_converge_two_stores_over_the_wire() {
        // Node A and node B each executed a scenario the other lacks. One
        // SYNC + PUSH round against A (driven with B's inventory, as B's
        // anti-entropy agent would) must leave A holding both results.
        let server_a = small_server(ResultStore::new());
        let mut ca = CampaignClient::connect(server_a.local_addr()).unwrap();
        let ack_a = ca.submit(&quick(48), 0).unwrap();
        let r_a = ca.stream(1, Duration::from_secs(120)).unwrap().remove(0);

        let server_b = small_server(ResultStore::new());
        let mut cb = CampaignClient::connect(server_b.local_addr()).unwrap();
        let ack_b = cb.submit(&quick(64), 0).unwrap();
        let r_b = cb.stream(1, Duration::from_secs(120)).unwrap().remove(0);
        let hash_a = u64::from_str_radix(&ack_a.hash_hex, 16).unwrap();
        let hash_b = u64::from_str_radix(&ack_b.hash_hex, 16).unwrap();
        assert_ne!(hash_a, hash_b);

        // SYNC with B's inventory: A ships back what B lacks and names what
        // it wants from B.
        let inventory_b = vec![(hash_b, crate::persist::result_digest(hash_b, &r_b.result))];
        let (results, want) = ca.sync(&inventory_b).unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].0, hash_a);
        assert_eq!(
            crate::persist::result_digest(hash_a, &results[0].1),
            crate::persist::result_digest(hash_a, &r_a.result),
            "the synced line is bitwise the stored line"
        );
        assert_eq!(want, vec![hash_b]);

        // PUSH the wanted result: accepted once, idempotent after.
        assert_eq!(ca.push(vec![(hash_b, r_b.result.clone())]).unwrap(), 1);
        assert_eq!(ca.push(vec![(hash_b, r_b.result.clone())]).unwrap(), 0);

        // A now serves B's scenario from its store: zero compute.
        let again = ca.submit(&quick(64), 0).unwrap();
        assert!(!again.queued, "backfilled result is a cache hit");
        let stats = ca.stats().unwrap();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.executed, 1, "A never executed B's scenario");

        // Converged peers exchange nothing.
        let inv: Vec<(u64, u64)> = vec![
            (hash_a, crate::persist::result_digest(hash_a, &r_a.result)),
            (hash_b, crate::persist::result_digest(hash_b, &r_b.result)),
        ];
        let (results, want) = ca.sync(&inv).unwrap();
        assert!(results.is_empty());
        assert!(want.is_empty());

        ca.shutdown_server().unwrap();
        cb.shutdown_server().unwrap();
        assert_eq!(server_a.join().len(), 2);
        assert_eq!(server_b.join().len(), 1);
    }

    #[test]
    fn compact_on_an_in_memory_store_reports_not_persistent() {
        let server = small_server(ResultStore::new());
        let mut client = CampaignClient::connect(server.local_addr()).unwrap();
        let err = client.compact().unwrap_err();
        assert!(err.to_string().contains("not-persistent"), "{err}");
        client.shutdown_server().unwrap();
        server.join();
    }
}
