//! Campaign reports: per-scenario records and machine-readable aggregates.
//!
//! One campaign run produces one [`CampaignReport`]: a row per submitted
//! scenario (in submission order, cache-served or executed) carrying the
//! grind measurement, conservation drift, and base-heating diagnostics,
//! plus whole-campaign aggregates. Renders to JSON (no external
//! serialization crates exist in this environment, so the writer is
//! hand-rolled), CSV, and a fixed-width text table.

use igr_app::actions::{Action, ActionRecord};
use igr_app::base::BaseHeatingReport;
use igr_app::diagnostics::Sample;
use igr_app::recovery::RecoveryRecord;
use std::sync::Arc;

/// How a scenario run ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunStatus {
    /// The solver ran every step and produced a measurement.
    Completed,
    /// The solver diverged or rejected the configuration; the message is
    /// the solver/spec error. Failed runs are cached too — resubmitting a
    /// known-diverging scenario should not re-burn the compute.
    Failed(String),
}

impl RunStatus {
    /// True for [`RunStatus::Completed`].
    pub fn is_ok(&self) -> bool {
        matches!(self, RunStatus::Completed)
    }
}

/// A per-scenario diagnostics time series: flow samples taken every
/// `every` timed steps by the run driver's diagnostics observer
/// ([`crate::spec::ScenarioSpec::series_every`]). Persists in the result
/// store and rides the wire with the rest of the result.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ScenarioSeries {
    /// Sampling cadence in timed steps.
    pub every: usize,
    /// The samples, in step order. A resumed run's series covers the steps
    /// executed after the restore (earlier samples died with the
    /// interrupted process).
    pub samples: Vec<Sample>,
}

/// Everything measured about one scenario execution.
#[derive(Clone, Debug)]
pub struct ScenarioResult {
    /// The scenario's derived (or labelled) name.
    pub name: String,
    /// `ScenarioSpec::hash_hex` of the spec that produced this.
    pub hash_hex: String,
    /// How the run ended.
    pub status: RunStatus,
    /// Interior cells of the (global) grid.
    pub cells: usize,
    /// Timed steps.
    pub steps: usize,
    /// Thread-ranks the run was decomposed over (1 = single block).
    pub ranks: usize,
    /// Wall-clock of the timed region, seconds.
    pub wall_s: f64,
    /// Grind time, ns per cell per step (Table 3's metric).
    pub ns_per_cell_step: f64,
    /// Relative change of total mass over the run, `|m1 - m0| / m0`. For
    /// closed (periodic) cases this is a conservation check; for jet cases
    /// it reports the global mass-budget change through the boundaries.
    pub mass_drift: f64,
    /// Relative change of total energy over the run.
    pub energy_drift: f64,
    /// Base-plane heating diagnostics (jet cases only).
    pub base_heating: Option<BaseHeatingReport>,
    /// In-flight diagnostics series (when the spec asked for one).
    pub series: Option<ScenarioSeries>,
    /// Absolute step the run resumed from, when it restarted from an
    /// autosaved checkpoint instead of running start-to-finish.
    pub resumed_from: Option<usize>,
    /// The applied action log, when the scenario ran closed-loop
    /// ([`crate::spec::ScenarioSpec::controller`]): every mid-run mutation
    /// the controller issued, in application order. Persists in the result
    /// store and rides the wire as an additive optional key.
    pub actions: Option<Vec<ActionRecord>>,
    /// The recovery log, when the scenario ran self-healing
    /// ([`crate::spec::ScenarioSpec::recovery`]): one record per checkpoint
    /// rollback, in trip order. `Some(vec![])` means recovery was armed and
    /// the run never diverged. Persists in the result store and rides the
    /// wire as an additive optional key.
    pub recoveries: Option<Vec<RecoveryRecord>>,
}

/// One report row: the result plus how it was obtained. The result is the
/// store's own `Arc` — duplicated submissions and cache hits share one
/// allocation rather than cloning the result per row.
#[derive(Clone, Debug)]
pub struct ReportRow {
    /// The measurement (shared with the store's cache entry).
    pub result: Arc<ScenarioResult>,
    /// True when the row was served from the result cache.
    pub cached: bool,
}

/// The aggregated outcome of one executor batch.
#[derive(Clone, Debug, Default)]
pub struct CampaignReport {
    /// Per-scenario rows, in submission order.
    pub rows: Vec<ReportRow>,
    /// Scenarios actually simulated in this batch.
    pub executed: usize,
    /// Scenarios served from the result cache (duplicates within the batch
    /// and resubmissions across batches).
    pub cache_hits: usize,
    /// Worker threads the batch ran on.
    pub workers: usize,
    /// Wall-clock of the whole batch, seconds.
    pub batch_wall_s: f64,
}

impl CampaignReport {
    /// Completed rows only.
    pub fn completed(&self) -> impl Iterator<Item = &ReportRow> {
        self.rows.iter().filter(|r| r.result.status.is_ok())
    }

    /// Total cell-steps simulated (executed rows only — cached rows cost
    /// nothing, which is the point).
    pub fn cell_steps_executed(&self) -> u64 {
        self.rows
            .iter()
            .filter(|r| !r.cached && r.result.status.is_ok())
            .map(|r| r.result.cells as u64 * r.result.steps as u64)
            .sum()
    }

    /// Mean grind time over completed rows (ns/cell/step).
    pub fn mean_grind(&self) -> f64 {
        let (mut sum, mut n) = (0.0, 0usize);
        for r in self.completed() {
            sum += r.result.ns_per_cell_step;
            n += 1;
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// The completed scenario with the highest recirculation flux — the
    /// campaign's answer to "which configuration heats the base worst?".
    pub fn worst_base_heating(&self) -> Option<&ReportRow> {
        // Filtered to Some below; the None arm is unreachable and orders
        // last either way.
        let flux = |r: &ReportRow| {
            r.result
                .base_heating
                .as_ref()
                .map_or(f64::NEG_INFINITY, |h| h.recirculation_flux)
        };
        self.completed()
            .filter(|r| r.result.base_heating.is_some())
            .max_by(|a, b| flux(a).total_cmp(&flux(b)))
    }

    /// Machine-readable JSON: `{"summary": {...}, "scenarios": [...]}`.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256 * self.rows.len() + 256);
        s.push_str("{\n  \"summary\": {");
        s.push_str(&format!(
            "\"scenarios\": {}, \"executed\": {}, \"cache_hits\": {}, \
             \"workers\": {}, \"batch_wall_s\": {}, \"cell_steps_executed\": {}, \
             \"mean_grind_ns\": {}",
            self.rows.len(),
            self.executed,
            self.cache_hits,
            self.workers,
            json_f64(self.batch_wall_s),
            self.cell_steps_executed(),
            json_f64(self.mean_grind()),
        ));
        s.push_str("},\n  \"scenarios\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let r = &row.result;
            s.push_str("    {");
            s.push_str(&format!(
                "\"name\": {}, \"hash\": \"{}\", \"cached\": {}, \"status\": {}, \
                 \"cells\": {}, \"steps\": {}, \"ranks\": {}, \"wall_s\": {}, \
                 \"grind_ns_per_cell_step\": {}, \"mass_drift\": {}, \"energy_drift\": {}",
                json_str(&r.name),
                r.hash_hex,
                row.cached,
                match &r.status {
                    RunStatus::Completed => "\"completed\"".to_string(),
                    RunStatus::Failed(msg) => json_str(&format!("failed: {msg}")),
                },
                r.cells,
                r.steps,
                r.ranks,
                json_f64(r.wall_s),
                json_f64(r.ns_per_cell_step),
                json_f64(r.mass_drift),
                json_f64(r.energy_drift),
            ));
            if let Some(b) = &r.base_heating {
                s.push_str(&format!(
                    ", \"base_heating\": {{\"heated_fraction\": {}, \
                     \"recirculation_flux\": {}, \"mean_backflow_enthalpy\": {}, \
                     \"peak_temperature\": {}, \"mean_pressure\": {}, \
                     \"footprint_centroid\": [{}, {}]}}",
                    json_f64(b.heated_fraction),
                    json_f64(b.recirculation_flux),
                    json_f64(b.mean_backflow_enthalpy),
                    json_f64(b.peak_temperature),
                    json_f64(b.mean_pressure),
                    json_f64(b.footprint_centroid[0]),
                    json_f64(b.footprint_centroid[1]),
                ));
            }
            if let Some(rf) = r.resumed_from {
                s.push_str(&format!(", \"resumed_from\": {rf}"));
            }
            if let Some(actions) = &r.actions {
                s.push_str(", \"actions\": [");
                for (ai, rec) in actions.iter().enumerate() {
                    if ai > 0 {
                        s.push_str(", ");
                    }
                    s.push_str(&json_action_record(rec));
                }
                s.push(']');
            }
            if let Some(recs) = &r.recoveries {
                s.push_str(", \"recoveries\": [");
                for (ri, rec) in recs.iter().enumerate() {
                    if ri > 0 {
                        s.push_str(", ");
                    }
                    s.push_str(&json_recovery_record(rec));
                }
                s.push(']');
            }
            if let Some(series) = &r.series {
                s.push_str(&format!(
                    ", \"series\": {{\"every\": {}, \"samples\": [",
                    series.every
                ));
                for (si, sm) in series.samples.iter().enumerate() {
                    if si > 0 {
                        s.push_str(", ");
                    }
                    s.push_str(&format!(
                        "{{\"step\": {}, \"t\": {}, \"mass\": {}, \"energy\": {}, \
                         \"kinetic_energy\": {}, \"max_mach\": {}, \"min_rho\": {}}}",
                        sm.step,
                        json_f64(sm.t),
                        json_f64(sm.totals[0]),
                        json_f64(sm.totals[4]),
                        json_f64(sm.kinetic_energy),
                        json_f64(sm.max_mach),
                        json_f64(sm.min_rho),
                    ));
                }
                s.push_str("]}");
            }
            s.push('}');
            if i + 1 < self.rows.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// CSV with one row per scenario (base-heating columns empty for
    /// non-jet cases).
    pub fn to_csv(&self) -> String {
        let mut s = String::from(
            "name,hash,cached,status,cells,steps,ranks,wall_s,grind_ns_per_cell_step,\
             mass_drift,energy_drift,heated_fraction,recirc_flux,backflow_h0,peak_T,\
             mean_p_base,centroid_a,centroid_b,resumed_from,series_samples,actions,\
             recoveries\n",
        );
        for row in &self.rows {
            let r = &row.result;
            s.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{}",
                csv_str(&r.name),
                r.hash_hex,
                row.cached,
                match &r.status {
                    RunStatus::Completed => "completed".to_string(),
                    RunStatus::Failed(msg) => csv_str(&format!("failed: {msg}")),
                },
                r.cells,
                r.steps,
                r.ranks,
                r.wall_s,
                r.ns_per_cell_step,
                r.mass_drift,
                r.energy_drift,
            ));
            match &r.base_heating {
                Some(b) => s.push_str(&format!(
                    ",{},{},{},{},{},{},{}",
                    b.heated_fraction,
                    b.recirculation_flux,
                    b.mean_backflow_enthalpy,
                    b.peak_temperature,
                    b.mean_pressure,
                    b.footprint_centroid[0],
                    b.footprint_centroid[1],
                )),
                None => s.push_str(",,,,,,,"),
            }
            s.push_str(&format!(
                ",{},{},{},{}\n",
                r.resumed_from.map(|v| v.to_string()).unwrap_or_default(),
                r.series
                    .as_ref()
                    .map(|se| se.samples.len().to_string())
                    .unwrap_or_default(),
                r.actions
                    .as_ref()
                    .map(|a| a.len().to_string())
                    .unwrap_or_default(),
                r.recoveries
                    .as_ref()
                    .map(|a| a.len().to_string())
                    .unwrap_or_default(),
            ));
        }
        s
    }

    /// Fixed-width text table for terminals.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{:<60} {:>6} {:>10} {:>10} {:>10} {:>10}\n",
            "scenario", "cached", "grind ns", "wall s", "recirc", "peak T"
        ));
        s.push_str(&"-".repeat(112));
        s.push('\n');
        for row in &self.rows {
            let r = &row.result;
            let (recirc, peak) = match &r.base_heating {
                Some(b) => (
                    format!("{:.4}", b.recirculation_flux),
                    format!("{:.2}", b.peak_temperature),
                ),
                None => ("-".into(), "-".into()),
            };
            let grind = if r.status.is_ok() {
                format!("{:.0}", r.ns_per_cell_step)
            } else {
                "FAILED".into()
            };
            s.push_str(&format!(
                "{:<60} {:>6} {:>10} {:>10.3} {:>10} {:>10}\n",
                truncate(&r.name, 60),
                if row.cached { "yes" } else { "no" },
                grind,
                r.wall_s,
                recirc,
                peak
            ));
        }
        s.push_str(&format!(
            "\n{} scenarios | {} executed | {} cache hits | {:.2} s batch wall | \
             mean grind {:.0} ns/cell/step\n",
            self.rows.len(),
            self.executed,
            self.cache_hits,
            self.batch_wall_s,
            self.mean_grind()
        ));
        s
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!(
            "{}…",
            &s[..s
                .char_indices()
                .take(n - 1)
                .last()
                .map(|(i, c)| i + c.len_utf8())
                .unwrap_or(0)]
        )
    }
}

/// One applied action as a report-JSON object. This is the *human-facing*
/// rendering (non-finite parameters become null like every other report
/// float); the bit-exact round-trip form lives in [`crate::persist`].
fn json_action_record(rec: &ActionRecord) -> String {
    let mut s = format!(
        "{{\"step\": {}, \"t\": {}, \"kind\": \"{}\"",
        rec.step,
        json_f64(rec.t),
        rec.action.kind_name()
    );
    match &rec.action {
        Action::SetGimbal {
            engine,
            target,
            rate,
        } => s.push_str(&format!(
            ", \"engine\": {}, \"target\": [{}, {}], \"rate\": {}",
            engine,
            json_f64(target[0]),
            json_f64(target[1]),
            json_f64(*rate)
        )),
        Action::EngineOut { engine } => s.push_str(&format!(", \"engine\": {engine}")),
        Action::SetBackpressure { pressure } => {
            s.push_str(&format!(", \"pressure\": {}", json_f64(*pressure)))
        }
        Action::SwapInflow {
            ambient_rho,
            ambient_p,
            mach,
            gamma,
            pressure_ratio,
            density_ratio,
        } => s.push_str(&format!(
            ", \"ambient_rho\": {}, \"ambient_p\": {}, \"mach\": {}, \"gamma\": {}, \
             \"pressure_ratio\": {}, \"density_ratio\": {}",
            json_f64(*ambient_rho),
            json_f64(*ambient_p),
            json_f64(*mach),
            json_f64(*gamma),
            json_f64(*pressure_ratio),
            json_f64(*density_ratio)
        )),
        Action::SetFixedDt { dt } => match dt {
            Some(dt) => s.push_str(&format!(", \"dt\": {}", json_f64(*dt))),
            None => s.push_str(", \"dt\": null"),
        },
        Action::RequestCheckpoint => {}
    }
    s.push('}');
    s
}

/// One recovery rollback as a report-JSON object. Human-facing like
/// [`json_action_record`]: a NaN `prev_dt` (the "restore adaptive stepping"
/// sentinel) renders as null; the bit-exact form lives in [`crate::persist`].
fn json_recovery_record(rec: &RecoveryRecord) -> String {
    format!(
        "{{\"trip_step\": {}, \"rollback_step\": {}, \"rollback_t\": {}, \
         \"prev_dt\": {}, \"backoff_dt\": {}, \"hold_until\": {}, \"retry\": {}}}",
        rec.trip_step,
        rec.rollback_step,
        json_f64(rec.rollback_t),
        json_f64(rec.prev_dt),
        json_f64(rec.backoff_dt),
        rec.hold_until,
        rec.retry
    )
}

/// JSON number formatting: finite floats print bare, non-finite become
/// null (JSON has no NaN/Inf).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".into()
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn csv_str(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(name: &str, grind: f64, recirc: Option<f64>) -> ScenarioResult {
        ScenarioResult {
            name: name.into(),
            hash_hex: format!("{:016x}", 0xabcu64),
            status: RunStatus::Completed,
            cells: 100,
            steps: 4,
            ranks: 1,
            wall_s: 0.01,
            ns_per_cell_step: grind,
            mass_drift: 1e-15,
            energy_drift: 2e-15,
            base_heating: recirc.map(|f| BaseHeatingReport {
                recirculation_flux: f,
                ..Default::default()
            }),
            series: None,
            resumed_from: None,
            actions: None,
            recoveries: None,
        }
    }

    fn report() -> CampaignReport {
        CampaignReport {
            rows: vec![
                ReportRow {
                    result: Arc::new(result("a", 100.0, Some(0.5))),
                    cached: false,
                },
                ReportRow {
                    result: Arc::new(result("b", 300.0, Some(1.5))),
                    cached: false,
                },
                ReportRow {
                    result: Arc::new(result("a", 100.0, Some(0.5))),
                    cached: true,
                },
            ],
            executed: 2,
            cache_hits: 1,
            workers: 2,
            batch_wall_s: 0.5,
        }
    }

    #[test]
    fn aggregates_count_executed_rows_only() {
        let r = report();
        assert_eq!(r.cell_steps_executed(), 2 * 400);
        assert!((r.mean_grind() - (100.0 + 300.0 + 100.0) / 3.0).abs() < 1e-12);
        assert_eq!(r.worst_base_heating().unwrap().result.name, "b");
    }

    #[test]
    fn json_has_summary_and_all_rows() {
        let j = report().to_json();
        assert!(j.contains("\"executed\": 2"));
        assert!(j.contains("\"cache_hits\": 1"));
        assert_eq!(j.matches("\"name\"").count(), 3);
        assert!(j.contains("\"base_heating\""));
        // Balanced braces (cheap well-formedness check).
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn csv_row_count_matches() {
        let c = report().to_csv();
        assert_eq!(c.lines().count(), 4, "header + 3 rows");
        assert!(c.lines().nth(3).unwrap().starts_with("a,"));
    }

    #[test]
    fn action_log_renders_in_json_and_counts_in_csv() {
        let mut r = result("ctrl", 100.0, Some(0.5));
        r.actions = Some(vec![
            ActionRecord {
                step: 3,
                t: 0.1,
                action: Action::EngineOut { engine: 1 },
            },
            ActionRecord {
                step: 5,
                t: 0.2,
                action: Action::SetGimbal {
                    engine: 0,
                    target: [0.05, 0.0],
                    rate: f64::INFINITY, // non-finite params render as null
                },
            },
        ]);
        let rep = CampaignReport {
            rows: vec![ReportRow {
                result: Arc::new(r),
                cached: false,
            }],
            executed: 1,
            cache_hits: 0,
            workers: 1,
            batch_wall_s: 0.1,
        };
        let j = rep.to_json();
        assert!(j.contains("\"actions\": ["), "{j}");
        assert!(j.contains("\"kind\": \"engine_out\""), "{j}");
        assert!(j.contains("\"rate\": null"), "{j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        let c = rep.to_csv();
        assert!(c.lines().next().unwrap().ends_with(",actions,recoveries"));
        // 2 actions; no recovery log → empty trailing field.
        assert!(c.lines().nth(1).unwrap().ends_with(",2,"), "{c}");
    }

    #[test]
    fn recovery_log_renders_in_json_and_counts_in_csv() {
        let mut r = result("healed", 100.0, None);
        r.recoveries = Some(vec![igr_app::recovery::RecoveryRecord {
            trip_step: 40,
            rollback_step: 32,
            rollback_t: 0.4,
            prev_dt: f64::NAN, // "was adaptive" renders as null
            backoff_dt: 5e-5,
            hold_until: 64,
            retry: 1,
        }]);
        let rep = CampaignReport {
            rows: vec![ReportRow {
                result: Arc::new(r),
                cached: false,
            }],
            executed: 1,
            cache_hits: 0,
            workers: 1,
            batch_wall_s: 0.1,
        };
        let j = rep.to_json();
        assert!(j.contains("\"recoveries\": ["), "{j}");
        assert!(j.contains("\"trip_step\": 40"), "{j}");
        assert!(j.contains("\"prev_dt\": null"), "{j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        let c = rep.to_csv();
        // No action log → empty field; 1 recovery.
        assert!(c.lines().nth(1).unwrap().ends_with(",,1"), "{c}");
    }

    #[test]
    fn json_escapes_strings_and_nonfinite() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(1.5), "1.5");
    }
}
