//! The sharded campaign executor.
//!
//! Scenarios are deduplicated by content hash, looked up in the
//! [`ResultStore`], and the remainder executed on a pool of worker threads
//! that pull jobs from a shared cursor (work stealing at job granularity:
//! a worker that finishes a cheap 1-D scenario immediately steals the next
//! pending one while a 3-D scenario still occupies its neighbor). Each
//! worker runs its solver inside a `rayon` pool sized to its share of the
//! machine, so one campaign saturates the host without oversubscribing it;
//! decomposed scenarios (`ranks > 1`) additionally spread one run over
//! `igr-comm` thread-ranks inside the worker's slot.

use crate::report::{CampaignReport, ReportRow, RunStatus, ScenarioResult, ScenarioSeries};
use crate::spec::{ScenarioSpec, SchemeKind};
use crate::store::ResultStore;
use igr_app::actions::ActionLog;
use igr_app::base::BaseHeatingReport;
use igr_app::cases::CaseSetup;
use igr_app::checkpoint::CheckpointScalar;
use igr_app::diagnostics::History;
use igr_app::driver::{
    Cadence, CheckpointObserver, Checkpointable, DiagnosticsObserver, Driver, DriverError,
    GimbalFeedbackController, StopCondition,
};
use igr_app::parallel::{rank_ckpt_path, run_decomposed_resumable, DecompCheckpointing};
use igr_app::recovery::{RecoveryLog, RecoveryRecord};
use igr_core::solver::{BcGhostOps, RhsScheme, Solver, SolverError};
use igr_prec::{PrecisionMode, Real, Storage, StoreF16, StoreF32, StoreF64};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Executor configuration.
#[derive(Clone, Debug)]
pub struct ExecConfig {
    /// Concurrent scenario workers.
    pub workers: usize,
    /// `rayon` threads each worker's solver uses. 0 = machine parallelism
    /// divided evenly among workers (at least 1).
    pub threads_per_worker: usize,
    /// Directory for per-scenario restart files (`<hash>.ckpt`). When set
    /// and a spec asks for [`crate::spec::ScenarioSpec::checkpoint_every`],
    /// workers autosave while running and *resume* from an existing file on
    /// the next submission — an interrupted campaign re-enters mid-flight
    /// instead of restarting every scenario. Files are removed once their
    /// scenario completes (the result store takes over from there).
    pub checkpoint_dir: Option<PathBuf>,
}

impl Default for ExecConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ExecConfig {
            workers: cores.clamp(1, 8),
            threads_per_worker: 0,
            checkpoint_dir: None,
        }
    }
}

impl ExecConfig {
    /// `workers` concurrent scenario workers, solver threads split evenly.
    pub fn with_workers(workers: usize) -> Self {
        assert!(workers >= 1, "need at least one worker");
        ExecConfig {
            workers,
            ..Default::default()
        }
    }

    pub(crate) fn solver_threads(&self) -> usize {
        if self.threads_per_worker > 0 {
            return self.threads_per_worker;
        }
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        (cores / self.workers).max(1)
    }
}

/// A campaign session: an executor plus its result cache. Batches submitted
/// through one `Campaign` share the cache, so iterating on a sweep re-runs
/// only the scenarios that changed.
pub struct Campaign {
    cfg: ExecConfig,
    store: ResultStore,
}

impl Campaign {
    /// A campaign session over a fresh in-memory result cache.
    pub fn new(cfg: ExecConfig) -> Self {
        Campaign {
            cfg,
            store: ResultStore::new(),
        }
    }

    /// A campaign over an existing store — e.g. one recovered from disk via
    /// [`ResultStore::open`], or handed over from a finished
    /// [`crate::queue::CampaignQueue`].
    pub fn with_store(cfg: ExecConfig, store: ResultStore) -> Self {
        Campaign { cfg, store }
    }

    /// A campaign whose cache is backed by the JSON-lines store file at
    /// `path` (created if absent): results recorded by earlier processes
    /// are served as cache hits, and results executed here are appended for
    /// later ones.
    pub fn open(cfg: ExecConfig, path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        Ok(Campaign {
            cfg,
            store: ResultStore::open(path)?,
        })
    }

    /// The result cache (hit/miss counters, size).
    pub fn store(&self) -> &ResultStore {
        &self.store
    }

    /// Hand the cache off (e.g. to a [`crate::queue::CampaignQueue`] that
    /// should keep serving it).
    pub fn into_store(self) -> ResultStore {
        self.store
    }

    /// Run a batch of scenarios and report per-scenario results in
    /// submission order. Duplicates (within the batch or vs. earlier
    /// batches) are served from the cache; only unique, uncached scenarios
    /// are simulated.
    pub fn run(&mut self, specs: &[ScenarioSpec]) -> CampaignReport {
        let t0 = Instant::now();

        // Normalize and hash every submission.
        let submissions: Vec<(ScenarioSpec, u64)> = specs
            .iter()
            .map(|s| {
                let mut s = s.clone();
                s.normalize();
                let h = s.content_hash();
                (s, h)
            })
            .collect();

        // Plan: first unsettled occurrence of each hash becomes a job. A
        // settled entry (completed, or a quarantined/permanent failure) is
        // served from the cache; a transient failure with retry budget
        // left is treated as absent and re-executed (see docs/RECOVERY.md).
        let mut first_occurrence: HashMap<u64, usize> = HashMap::new();
        let mut jobs: Vec<(ScenarioSpec, u64)> = Vec::new();
        for (spec, hash) in &submissions {
            if self.store.settled(*hash) || first_occurrence.contains_key(hash) {
                continue;
            }
            first_occurrence.insert(*hash, jobs.len());
            // Record the miss now (planning *is* the cache lookup that
            // fails); the execution below fills the entry.
            let _ = self.store.fetch(*hash);
            jobs.push((spec.clone(), *hash));
        }

        // Execute the job list on the worker pool.
        let workers = self.cfg.workers.min(jobs.len()).max(1);
        let solver_threads = self.cfg.solver_threads();
        let executed = jobs.len();
        if !jobs.is_empty() {
            let cursor = AtomicUsize::new(0);
            let slots: Vec<Mutex<Option<ScenarioResult>>> =
                jobs.iter().map(|_| Mutex::new(None)).collect();
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| {
                        let pool = rayon::ThreadPoolBuilder::new()
                            .num_threads(solver_threads)
                            .build()
                            .expect("rayon pool");
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= jobs.len() {
                                break;
                            }
                            // run_scenario_caught absorbs panics into
                            // Failed rows, so one diverging/buggy scenario
                            // cannot take down the batch; a poisoned slot
                            // (a *previous* panic between lock and store)
                            // is recovered the same way.
                            let ckpt_dir = self.cfg.checkpoint_dir.as_deref();
                            let result =
                                pool.install(|| run_scenario_caught_with(&jobs[i].0, ckpt_dir));
                            match slots[i].lock() {
                                Ok(mut slot) => *slot = Some(result),
                                Err(poisoned) => *poisoned.into_inner() = Some(result),
                            }
                        }
                    });
                }
            });
            for ((spec, hash), slot) in jobs.iter().zip(slots) {
                let result = slot
                    .into_inner()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .unwrap_or_else(|| {
                        // A worker claimed the slot and died before filling
                        // it — record the scenario as failed rather than
                        // aborting the whole ensemble.
                        failed_result(spec, "worker died before reporting a result".into())
                    });
                self.store.insert(*hash, result);
            }
        }

        // Assemble rows in submission order; everything not in the job
        // list's first-occurrence slot is a cache-served row.
        let mut rows = Vec::with_capacity(submissions.len());
        let mut job_slot_used: Vec<bool> = vec![false; executed];
        let mut cache_hits = 0usize;
        for (_, hash) in &submissions {
            let fresh = match first_occurrence.get(hash) {
                Some(&j) if !job_slot_used[j] => {
                    job_slot_used[j] = true;
                    true
                }
                _ => false,
            };
            // Fresh rows read back the result they just produced — that is
            // not cache traffic, so bypass the hit counter; cache-served
            // rows go through the counting fetch.
            let result = if fresh {
                self.store
                    .peek(*hash)
                    .cloned()
                    .expect("every executed job was inserted")
            } else {
                cache_hits += 1;
                self.store
                    .fetch(*hash)
                    .expect("every submission is in the store by now")
            };
            rows.push(ReportRow {
                result,
                cached: !fresh,
            });
        }

        CampaignReport {
            rows,
            executed,
            cache_hits,
            workers,
            batch_wall_s: t0.elapsed().as_secs_f64(),
        }
    }
}

/// The `Failed` record for a scenario that produced no measurement.
fn failed_result(spec: &ScenarioSpec, msg: String) -> ScenarioResult {
    ScenarioResult {
        name: spec.scenario_name(),
        hash_hex: spec.hash_hex(),
        status: RunStatus::Failed(msg),
        cells: 0,
        steps: spec.steps,
        ranks: spec.ranks.unwrap_or(1),
        wall_s: 0.0,
        ns_per_cell_step: 0.0,
        mass_drift: 0.0,
        energy_drift: 0.0,
        base_heating: None,
        series: None,
        resumed_from: None,
        actions: None,
        recoveries: None,
    }
}

/// [`run_scenario`] hardened for worker pools: a panic anywhere in the
/// solver stack is caught and recorded as a [`RunStatus::Failed`] result,
/// so one bad scenario degrades to one failed row instead of poisoning
/// slot mutexes and killing the whole ensemble.
pub fn run_scenario_caught(spec: &ScenarioSpec) -> ScenarioResult {
    run_scenario_caught_with(spec, None)
}

/// [`run_scenario_caught`] with an optional restart-file directory (the
/// executor threads [`ExecConfig::checkpoint_dir`] through here).
pub fn run_scenario_caught_with(
    spec: &ScenarioSpec,
    checkpoint_dir: Option<&std::path::Path>,
) -> ScenarioResult {
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        #[cfg(test)]
        panic_injection(spec);
        run_scenario_with(spec, checkpoint_dir)
    }));
    match caught {
        Ok(result) => result,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".into());
            failed_result(spec, format!("worker panicked: {msg}"))
        }
    }
}

/// Test-only fault injection: lets the poison-recovery tests force a panic
/// inside a worker without a real solver bug. Labels are excluded from the
/// content hash, so the trigger does not perturb the cache keying under
/// test.
#[cfg(test)]
fn panic_injection(spec: &ScenarioSpec) {
    if spec.label.as_deref() == Some("__panic_injection__") {
        panic!("injected panic (test hook)");
    }
}

/// Test-only chaos injection: a label of `__nan_inject_<step>__` arms the
/// driver's one-shot NaN injection at that absolute step, so the recovery
/// tests can poison a run mid-flight through the public executor path.
/// Labels are hash-excluded, so the armed and clean submissions share a
/// cache key — which is exactly what the chaos tests exercise.
#[cfg(test)]
fn nan_inject_step(spec: &ScenarioSpec) -> Option<usize> {
    spec.label
        .as_deref()?
        .strip_prefix("__nan_inject_")?
        .strip_suffix("__")?
        .parse()
        .ok()
}

/// Run one scenario to completion (never panics on solver divergence: the
/// failure becomes a `RunStatus::Failed` row).
pub fn run_scenario(spec: &ScenarioSpec) -> ScenarioResult {
    run_scenario_with(spec, None)
}

/// [`run_scenario`] with an optional restart-file directory: when the spec
/// enables checkpointing and `<dir>/<hash>.ckpt` exists, the run resumes
/// from it bit-exactly instead of starting over.
pub fn run_scenario_with(
    spec: &ScenarioSpec,
    checkpoint_dir: Option<&std::path::Path>,
) -> ScenarioResult {
    let case = match spec.build_case() {
        Ok(c) => c,
        Err(e) => return failed_result(spec, e.to_string()),
    };
    if spec.ranks.is_some_and(|r| r > 1) {
        return run_decomposed_scenario_with(spec, &case, checkpoint_dir);
    }
    let ckpt = match (spec.checkpoint_every, checkpoint_dir) {
        (Some(_), Some(dir)) => {
            if let Err(e) = std::fs::create_dir_all(dir) {
                return failed_result(spec, format!("checkpoint dir {dir:?}: {e}"));
            }
            Some(dir.join(format!("{}.ckpt", spec.hash_hex())))
        }
        _ => None,
    };
    match (spec.scheme, spec.precision) {
        (SchemeKind::Igr, PrecisionMode::Fp64) => run_igr::<f64, StoreF64>(spec, &case, ckpt),
        (SchemeKind::Igr, PrecisionMode::Fp32) => run_igr::<f32, StoreF32>(spec, &case, ckpt),
        (SchemeKind::Igr, PrecisionMode::Fp16Fp32) => run_igr::<f32, StoreF16>(spec, &case, ckpt),
        (SchemeKind::WenoBaseline, PrecisionMode::Fp64) => {
            run_weno::<f64, StoreF64>(spec, &case, ckpt)
        }
        (SchemeKind::WenoBaseline, PrecisionMode::Fp32) => {
            run_weno::<f32, StoreF32>(spec, &case, ckpt)
        }
        (SchemeKind::WenoBaseline, PrecisionMode::Fp16Fp32) => {
            run_weno::<f32, StoreF16>(spec, &case, ckpt)
        }
    }
}

fn run_igr<R, S>(spec: &ScenarioSpec, case: &CaseSetup, ckpt: Option<PathBuf>) -> ScenarioResult
where
    R: Real,
    S: Storage<R>,
    S::Packed: CheckpointScalar,
{
    let cfg = spec.igr_config(case);
    let mut solver = igr_core::solver::igr_solver::<R, S>(cfg, case.domain, case.init_state());
    drive(spec, case, &mut solver, ckpt)
}

fn run_weno<R, S>(spec: &ScenarioSpec, case: &CaseSetup, ckpt: Option<PathBuf>) -> ScenarioResult
where
    R: Real,
    S: Storage<R>,
    S::Packed: CheckpointScalar,
{
    let cfg = spec.weno_config(case);
    let mut solver = igr_baseline::scheme::weno_solver::<R, S>(cfg, case.domain, case.init_state());
    drive(spec, case, &mut solver, ckpt)
}

/// Shared measurement path, marched through the unified [`Driver`]: grind
/// timing, conservation drift, base heating, and — when the spec asks —
/// an in-flight diagnostics series and checkpoint autosave/resume.
///
/// The timing contract matches `igr_app::grind`: untimed warm-up steps with
/// the per-step NaN check on, then a frozen dt and a check-free timed
/// region (observer cost rides inside it — it is part of running *this*
/// scenario), then one explicit divergence scan.
fn drive<R, S, Sch>(
    spec: &ScenarioSpec,
    case: &CaseSetup,
    solver: &mut Solver<R, S, Sch, BcGhostOps>,
    ckpt: Option<PathBuf>,
) -> ScenarioResult
where
    R: Real,
    S: Storage<R>,
    Sch: RhsScheme<R, S>,
    Solver<R, S, Sch, BcGhostOps>: Checkpointable,
{
    let totals0 = solver.q.totals(&case.domain);
    let cells = case.domain.shape.n_interior();
    let total_steps = spec.warmup + spec.steps;

    // Resume: an autosaved restart file re-enters the interrupted timeline
    // (state, Σ, clock, and the frozen dt restore bit-exactly). The file is
    // validated *before* the solver is touched — a foreign/stale snapshot
    // (wrong precision, shape, or a clock outside this spec's window) must
    // leave the fresh-start state unperturbed, not half-restored.
    let mut resumed_from = None;
    let mut seed_log = ActionLog::new();
    let mut seed_recoveries = RecoveryLog::new();
    if let Some(path) = ckpt.as_ref().filter(|p| p.exists()) {
        if let Ok(ck) = igr_app::Checkpoint::load(path) {
            if ck.step >= spec.warmup && ck.step <= total_steps && solver.restore(&ck).is_ok() {
                // The snapshot carries fields/Σ/clock but not boundary
                // conditions: replay its embedded action log so controller
                // mutations (gimbal ramps, knock-outs, backpressure) are
                // re-installed bit-identically. No-op for open-loop runs
                // (the log is empty).
                if igr_app::actions::replay(&ck.actions, solver).is_err() {
                    return failed_result(
                        spec,
                        "restart file's action log does not apply to this scenario".into(),
                    );
                }
                seed_log = ck.actions.clone();
                // Likewise the recovery log: seeding it replays the dt
                // schedule (backoff pins, hold expiries) bit-exactly, and
                // keeps a mid-recovery resume from re-firing the chaos
                // injection. Empty for recovery-free runs.
                seed_recoveries = ck.recoveries.clone();
                resumed_from = Some(ck.step);
            }
        }
    }

    #[allow(clippy::type_complexity)]
    let mut run = || -> Result<
        (
            ScenarioSeries,
            f64,
            usize,
            Option<Vec<_>>,
            Option<Vec<RecoveryRecord>>,
        ),
        DriverError,
    > {
        if resumed_from.is_none() {
            // Warm-up: adaptive dt, per-step NaN check (cheap insurance
            // against bad initial data), no instrumentation.
            solver.nan_check_every = 1;
            if spec.warmup > 0 {
                Driver::new().max_steps(spec.warmup).run(solver)?;
            }
            // Freeze dt so every timed step does identical work.
            solver.fixed_dt = Some(solver.stable_dt());
        }
        solver.nan_check_every = 0;

        let timed_remaining = total_steps.saturating_sub(solver.steps_taken());
        let mut history = History::new();
        let mut driver = Driver::new();
        if spec.recovery.is_none() {
            // run_recovered marches to an absolute step target through its
            // own window stops; a standing MaxSteps stop would cut windows
            // short of their snapshot boundaries.
            driver = driver.stop_when(StopCondition::MaxSteps(timed_remaining));
        }
        if let Some(every) = spec.series_every {
            driver = driver.observe(
                Cadence::EverySteps(every),
                DiagnosticsObserver::new(&mut history),
            );
        }
        if let Some(rspec) = &spec.recovery {
            // Self-healing: snapshots ring in memory, rollback + dt backoff
            // on divergence, every rollback logged. Autosaves (when the spec
            // checkpoints) go through checkpoint_to so the restart file
            // embeds the recovery log.
            driver = driver.seed_recoveries(seed_recoveries.clone());
            if let Some(path) = ckpt.as_ref() {
                driver = driver
                    .checkpoint_to(path.clone(), spec.checkpoint_every.map(Cadence::EverySteps));
            }
            #[cfg(test)]
            if let Some(step) = nan_inject_step(spec) {
                driver = driver.inject_nan_at(step);
            }
            let t0 = Instant::now();
            let summary = driver.run_recovered(solver, &rspec.to_policy(), total_steps)?;
            let wall_s = t0.elapsed().as_secs_f64();
            let recoveries = driver.take_recovery_log().records().to_vec();
            drop(driver);
            if let Some((var, pos)) = solver.q.find_non_finite() {
                return Err(SolverError::NonFinite {
                    step: solver.steps_taken(),
                    var,
                    pos,
                }
                .into());
            }
            // Re-run windows re-fire the series observer; keep the last
            // sample per step (the one from the surviving timeline) so the
            // recorded series matches an uninterrupted replay.
            let mut last: std::collections::BTreeMap<usize, igr_app::diagnostics::Sample> =
                std::collections::BTreeMap::new();
            for sm in history.samples.drain(..) {
                last.insert(sm.step, sm);
            }
            return Ok((
                ScenarioSeries {
                    every: spec.series_every.unwrap_or(0),
                    samples: last.into_values().collect(),
                },
                wall_s,
                summary.steps,
                None,
                Some(recoveries),
            ));
        }
        if let Some(c) = &spec.controller {
            // Closed loop: the feedback controller fires at its cadence and
            // the driver applies + logs its actions at step boundaries.
            // Snapshots go through checkpoint_to so they embed the log
            // (CheckpointObserver would write a log-free snapshot).
            driver = driver.seed_actions(seed_log.clone()).control(
                Cadence::EverySteps(c.every),
                GimbalFeedbackController {
                    gain: c.gain,
                    rate: c.rate,
                    ..GimbalFeedbackController::with_gain(c.gain)
                },
            );
            if let Some(path) = ckpt.as_ref() {
                driver = driver
                    .checkpoint_to(path.clone(), spec.checkpoint_every.map(Cadence::EverySteps));
            }
        } else if let (Some(every), Some(path)) = (spec.checkpoint_every, ckpt.as_ref()) {
            driver = driver.observe(
                Cadence::EverySteps(every),
                CheckpointObserver::autosave(path.clone()),
            );
        }
        let t0 = Instant::now();
        let summary = if spec.controller.is_some() {
            driver.run_controlled(solver)?
        } else {
            driver.run(solver)?
        };
        let wall_s = t0.elapsed().as_secs_f64();
        let actions = spec
            .controller
            .is_some()
            .then(|| driver.take_action_log().records().to_vec());
        drop(driver);
        // The timed region ran check-free; scan once at the end.
        if let Some((var, pos)) = solver.q.find_non_finite() {
            return Err(SolverError::NonFinite {
                step: solver.steps_taken(),
                var,
                pos,
            }
            .into());
        }
        Ok((
            ScenarioSeries {
                every: spec.series_every.unwrap_or(0),
                samples: history.samples,
            },
            wall_s,
            summary.steps,
            actions,
            None,
        ))
    };

    match run() {
        Ok((series, wall_s, steps_timed, actions, recoveries)) => {
            // The scenario is done: its restart file is consumed (the
            // result store serves every future submission).
            if let Some(path) = ckpt.as_ref() {
                let _ = std::fs::remove_file(path);
            }
            let totals1 = solver.q.totals(&case.domain);
            let base_heating = case.jet_inflow.as_ref().map(|inflow| {
                BaseHeatingReport::measure(&solver.q, &case.domain, case.gamma, inflow)
            });
            ScenarioResult {
                name: case.name.clone(),
                hash_hex: spec.hash_hex(),
                status: RunStatus::Completed,
                cells,
                steps: spec.steps,
                ranks: 1,
                wall_s,
                ns_per_cell_step: wall_s * 1e9 / (steps_timed.max(1) as f64 * cells as f64),
                mass_drift: rel_drift(totals0[0], totals1[0]),
                energy_drift: rel_drift(totals0[4], totals1[4]),
                base_heating,
                series: spec.series_every.is_some().then_some(series),
                resumed_from,
                actions,
                recoveries,
            }
        }
        Err(e) => ScenarioResult {
            name: case.name.clone(),
            hash_hex: spec.hash_hex(),
            status: RunStatus::Failed(e.to_string()),
            cells,
            steps: spec.steps,
            ranks: 1,
            wall_s: 0.0,
            ns_per_cell_step: 0.0,
            mass_drift: 0.0,
            energy_drift: 0.0,
            base_heating: None,
            series: None,
            resumed_from,
            actions: None,
            recoveries: None,
        },
    }
}

/// Decomposed (multi-rank) path: the whole run goes through `igr-app`'s
/// rank driver, which has no warmup/timed split — so every step (warmup
/// included) is timed and the grind normalizes by that same total count.
/// The timer necessarily wraps rank spawn/gather too, so the number is an
/// upper bound relative to the single-block path.
///
/// Takes an optional restart-file directory.
/// When the spec enables checkpointing, each rank autosaves its shard to
/// `<dir>/<hash>.rank<N>.ckpt`; a resubmission whose per-rank file set is
/// complete and consistent resumes mid-flight (on *any* node holding the
/// files — the trailer pins the decomposition, not the machine), and the
/// files are consumed on completion like the single-block `<hash>.ckpt`.
fn run_decomposed_scenario_with(
    spec: &ScenarioSpec,
    case: &CaseSetup,
    checkpoint_dir: Option<&std::path::Path>,
) -> ScenarioResult {
    let ranks = spec.ranks.unwrap_or(1);
    let cfg = spec.igr_config(case);
    let init = case.init.clone();
    let steps = spec.warmup + spec.steps;
    let cells = case.domain.shape.n_interior();
    let ckpt = match (spec.checkpoint_every, checkpoint_dir) {
        (Some(every), Some(dir)) => {
            if let Err(e) = std::fs::create_dir_all(dir) {
                return failed_result(spec, format!("checkpoint dir {dir:?}: {e}"));
            }
            Some(DecompCheckpointing {
                dir: dir.to_path_buf(),
                stem: spec.hash_hex(),
                every,
            })
        }
        _ => None,
    };
    let t0 = Instant::now();
    let res = run_decomposed_resumable::<f64, StoreF64>(
        &cfg,
        &case.domain,
        ranks,
        steps,
        move |p| init(p),
        ckpt.clone(),
        &[],
    );
    let wall_s = t0.elapsed().as_secs_f64();
    let run = res.run;
    let totals0: [f64; 5] = case.init_state::<f64, StoreF64>().totals(&case.domain);
    let totals1 = run.state.totals(&case.domain);
    let status = match run.state.find_non_finite() {
        None => RunStatus::Completed,
        Some((var, pos)) => RunStatus::Failed(format!(
            "non-finite value in variable {var} at {pos:?} after decomposed run"
        )),
    };
    if let (Some(c), RunStatus::Completed) = (&ckpt, &status) {
        // Completed: the per-rank restart set is consumed, same contract as
        // the single-block `<hash>.ckpt`.
        for rank in 0..ranks {
            let _ = std::fs::remove_file(rank_ckpt_path(&c.dir, &c.stem, rank));
        }
    }
    let base_heating = case
        .jet_inflow
        .as_ref()
        .map(|inflow| BaseHeatingReport::measure(&run.state, &case.domain, case.gamma, inflow));
    ScenarioResult {
        name: case.name.clone(),
        hash_hex: spec.hash_hex(),
        status,
        cells,
        // Every step of the decomposed run is timed, so both the reported
        // step count and the grind normalization use the full total.
        steps,
        ranks,
        wall_s,
        ns_per_cell_step: wall_s * 1e9 / (steps.max(1) as f64 * cells as f64),
        mass_drift: rel_drift(totals0[0], totals1[0]),
        energy_drift: rel_drift(totals0[4], totals1[4]),
        base_heating,
        series: None,
        resumed_from: res.resumed_from,
        actions: None,
        recoveries: None,
    }
}

fn rel_drift(before: f64, after: f64) -> f64 {
    (after - before).abs() / before.abs().max(f64::MIN_POSITIVE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::BaseCase;

    fn quick_spec() -> ScenarioSpec {
        let mut s = ScenarioSpec::new(BaseCase::SteepeningWave { amp: 0.2 }, 48);
        s.warmup = 1;
        s.steps = 2;
        s
    }

    #[test]
    fn duplicated_scenarios_are_served_from_cache() {
        let mut campaign = Campaign::new(ExecConfig {
            workers: 2,
            threads_per_worker: 1,
            ..Default::default()
        });
        let a = quick_spec();
        let mut b = quick_spec();
        b.resolution = 64;
        // Submit A twice and B once: 3 rows, 2 simulations.
        let report = campaign.run(&[a.clone(), b.clone(), a.clone()]);
        assert_eq!(report.rows.len(), 3);
        assert_eq!(report.executed, 2, "run count == unique count");
        assert_eq!(report.cache_hits, 1);
        assert!(!report.rows[0].cached);
        assert!(!report.rows[1].cached);
        assert!(report.rows[2].cached);
        // Resubmitting the whole batch is all cache hits.
        let again = campaign.run(&[a, b]);
        assert_eq!(again.executed, 0);
        assert_eq!(again.cache_hits, 2);
        assert!(again.rows.iter().all(|r| r.cached));
        assert_eq!(campaign.store().len(), 2);
    }

    #[test]
    fn cached_rows_match_executed_rows_bit_for_bit_in_physics() {
        let mut campaign = Campaign::new(ExecConfig {
            workers: 1,
            threads_per_worker: 1,
            ..Default::default()
        });
        let spec = quick_spec();
        let first = campaign.run(std::slice::from_ref(&spec));
        let second = campaign.run(std::slice::from_ref(&spec));
        let (a, b) = (&first.rows[0].result, &second.rows[0].result);
        assert_eq!(a.hash_hex, b.hash_hex);
        assert_eq!(a.mass_drift.to_bits(), b.mass_drift.to_bits());
        assert_eq!(a.energy_drift.to_bits(), b.energy_drift.to_bits());
        assert!(second.rows[0].cached);
    }

    #[test]
    fn invalid_specs_become_failed_rows_not_panics() {
        let mut bad = ScenarioSpec::new(BaseCase::Sod, 64);
        bad.backpressure = Some(0.5); // non-jet case: invalid override
        let mut campaign = Campaign::new(ExecConfig {
            workers: 1,
            threads_per_worker: 1,
            ..Default::default()
        });
        let report = campaign.run(std::slice::from_ref(&bad));
        assert_eq!(report.rows.len(), 1);
        assert!(matches!(report.rows[0].result.status, RunStatus::Failed(_)));
        // Failed results cache too: a resubmission is not re-attempted.
        let again = campaign.run(std::slice::from_ref(&bad));
        assert_eq!(again.executed, 0);
    }

    #[test]
    fn panicking_worker_fails_one_row_not_the_batch() {
        // One scenario panics inside the worker (injected via the
        // test-only label hook); the other is healthy. The batch must
        // complete, with the panic recorded as a Failed row — not abort
        // via a poisoned slot mutex.
        let mut panics = quick_spec();
        panics.label = Some("__panic_injection__".into());
        // Distinct physics: labels are hash-excluded, so without this the
        // two specs would dedup onto one job.
        let mut healthy = quick_spec();
        healthy.resolution = 64;
        let mut campaign = Campaign::new(ExecConfig {
            workers: 2,
            threads_per_worker: 1,
            ..Default::default()
        });
        let report = campaign.run(&[panics.clone(), healthy.clone()]);
        assert_eq!(report.rows.len(), 2);
        match &report.rows[0].result.status {
            RunStatus::Failed(msg) => assert!(msg.contains("panicked"), "{msg}"),
            s => panic!("expected Failed, got {s:?}"),
        }
        assert!(report.rows[1].result.status.is_ok());
        // A worker panic is a *transient* failure: resubmission re-executes
        // (the retry could land on a healthy worker) until the quarantine
        // budget runs out, after which the cached failure is served.
        for attempt in 2..=crate::store::QUARANTINE_AFTER {
            let again = campaign.run(std::slice::from_ref(&panics));
            assert_eq!(again.executed, 1, "attempt {attempt} re-executes");
            assert!(!again.rows[0].cached);
        }
        let quarantined = campaign.run(&[panics]);
        assert_eq!(quarantined.executed, 0, "quarantined: no more compute");
        assert!(quarantined.rows[0].cached);
    }

    #[test]
    fn series_request_rides_in_the_result_and_the_cache() {
        let mut spec = quick_spec();
        spec.warmup = 1;
        spec.steps = 6;
        spec.series_every = Some(2);
        let mut campaign = Campaign::new(ExecConfig {
            workers: 1,
            threads_per_worker: 1,
            ..Default::default()
        });
        let report = campaign.run(std::slice::from_ref(&spec));
        let r = &report.rows[0].result;
        assert!(r.status.is_ok(), "{:?}", r.status);
        let series = r.series.as_ref().expect("series requested");
        assert_eq!(series.every, 2);
        // Timed steps are absolute steps 2..=7; cadence fires on 2, 4, 6.
        let steps: Vec<usize> = series.samples.iter().map(|s| s.step).collect();
        assert_eq!(steps, vec![2, 4, 6]);
        assert!(series.samples.iter().all(|s| s.min_rho > 0.0));
        // A cached resubmission serves the same series.
        let again = campaign.run(std::slice::from_ref(&spec));
        assert_eq!(again.executed, 0);
        let cached = again.rows[0].result.series.as_ref().unwrap();
        assert_eq!(cached.samples.len(), 3);
        // And a spec without a series keys a *different* cache entry.
        let mut plain = spec.clone();
        plain.series_every = None;
        assert_ne!(plain.content_hash(), spec.content_hash());
    }

    #[test]
    fn interrupted_scenario_resumes_from_its_restart_file_bitwise() {
        use igr_app::driver::{Checkpointable, Driver};

        let dir = std::env::temp_dir().join("igr_exec_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let mut spec = quick_spec();
        spec.warmup = 2;
        spec.steps = 3;
        spec.checkpoint_every = Some(1);

        // The ground truth: the same spec run start-to-finish.
        let fresh = run_scenario(&spec);
        assert!(fresh.status.is_ok());
        assert!(fresh.resumed_from.is_none());

        // Simulate an interrupted worker: march exactly as `drive` does
        // (warm-up with NaN checks, freeze dt, one timed step), then
        // "crash", leaving only the autosaved restart file behind.
        let case = spec.build_case().unwrap();
        let cfg = spec.igr_config(&case);
        let mut solver =
            igr_core::solver::igr_solver::<f64, StoreF64>(cfg, case.domain, case.init_state());
        solver.nan_check_every = 1;
        Driver::new()
            .max_steps(spec.warmup)
            .run(&mut solver)
            .unwrap();
        solver.fixed_dt = Some(solver.stable_dt());
        solver.nan_check_every = 0;
        Driver::new().max_steps(1).run(&mut solver).unwrap();
        let path = dir.join(format!("{}.ckpt", spec.hash_hex()));
        solver.capture().save(&path).unwrap();

        // The resubmission resumes mid-flight...
        let resumed = run_scenario_with(&spec, Some(&dir));
        assert!(resumed.status.is_ok(), "{:?}", resumed.status);
        assert_eq!(resumed.resumed_from, Some(spec.warmup + 1));
        // ...reaches the identical final state (drift metrics are functions
        // of the final state, so they must agree bit for bit)...
        assert_eq!(resumed.mass_drift.to_bits(), fresh.mass_drift.to_bits());
        assert_eq!(resumed.energy_drift.to_bits(), fresh.energy_drift.to_bits());
        // ...and consumes the restart file on completion.
        assert!(!path.exists(), "completed scenario keeps no restart file");

        // A stale restart file whose clock is outside this spec's window
        // must be ignored *without touching the solver*: the run starts
        // from scratch and still reproduces the fresh result bit for bit.
        let mut early = igr_core::solver::igr_solver::<f64, StoreF64>(
            spec.igr_config(&case),
            case.domain,
            case.init_state(),
        );
        Driver::new().max_steps(1).run(&mut early).unwrap(); // step 1 < warmup
        early.capture().save(&path).unwrap();
        let scratch = run_scenario_with(&spec, Some(&dir));
        assert!(scratch.status.is_ok(), "{:?}", scratch.status);
        assert!(
            scratch.resumed_from.is_none(),
            "stale clock must not resume"
        );
        assert_eq!(scratch.mass_drift.to_bits(), fresh.mass_drift.to_bits());
        assert_eq!(scratch.energy_drift.to_bits(), fresh.energy_drift.to_bits());
    }

    #[test]
    fn closed_loop_scenario_records_its_actions_and_caches_them() {
        use crate::spec::ControllerSpec;

        // Engine 0 is out from the start, so the base-heating centroid sits
        // off-center and the proportional controller has an error signal.
        let mut spec = ScenarioSpec::new(BaseCase::EngineRow2d { engines: 3 }, 32);
        spec.warmup = 1;
        spec.steps = 12;
        spec.engine_out = vec![0];
        spec.controller = Some(ControllerSpec {
            gain: 1.5,
            rate: 0.0,
            every: 2,
        });
        let mut campaign = Campaign::new(ExecConfig {
            workers: 1,
            threads_per_worker: 1,
            ..Default::default()
        });
        let report = campaign.run(std::slice::from_ref(&spec));
        let r = &report.rows[0].result;
        assert!(r.status.is_ok(), "{:?}", r.status);
        let actions = r
            .actions
            .as_ref()
            .expect("closed-loop result carries its log");
        // Every applied action is a gimbal command (that is all this
        // controller emits), clamped to its authority limit.
        for rec in actions {
            match &rec.action {
                igr_app::Action::SetGimbal { target, .. } => {
                    assert!(target[0].abs() <= 0.35 && target[1].abs() <= 0.35);
                }
                other => panic!("unexpected action {other:?}"),
            }
        }
        assert!(
            r.name.contains("+ctrl1.50"),
            "controller shows in the name: {}",
            r.name
        );

        // Cached resubmission serves the identical log.
        let again = campaign.run(std::slice::from_ref(&spec));
        assert_eq!(again.executed, 0);
        let cached = again.rows[0].result.actions.as_ref().unwrap();
        assert_eq!(cached.len(), actions.len());

        // The open-loop point is distinct physics (and carries no log).
        let mut open = spec.clone();
        open.controller = None;
        assert_ne!(open.content_hash(), spec.content_hash());
    }

    #[test]
    fn jet_scenarios_carry_base_heating_and_grind() {
        let mut spec = ScenarioSpec::new(BaseCase::EngineRow2d { engines: 3 }, 16);
        spec.warmup = 1;
        spec.steps = 2;
        let result = run_scenario(&spec);
        assert!(result.status.is_ok(), "{:?}", result.status);
        assert!(result.base_heating.is_some());
        assert!(result.ns_per_cell_step > 0.0);
        assert_eq!(result.cells, 32 * 16);
    }

    #[test]
    fn preempted_decomposed_scenario_resumes_from_rank_files_bitwise() {
        // A ranks=2 scenario preempted mid-flight leaves one restart file
        // per rank; resubmitting the spec against that directory must pick
        // up at the cut (not t = 0) and land on the identical physics. The
        // rank files are decomposition-keyed, not machine-keyed, so this is
        // exactly the cross-node failover path the federation tier uses.
        let mut spec = ScenarioSpec::new(BaseCase::EngineRow2d { engines: 3 }, 16);
        spec.warmup = 0;
        spec.steps = 4;
        spec.ranks = Some(2);
        spec.checkpoint_every = Some(1);
        spec.validate().expect("decomposed checkpointing is legal");
        let case = spec.build_case().unwrap();
        let dir = std::env::temp_dir().join("igr_exec_rank_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();

        let fresh = run_scenario(&spec);
        assert!(fresh.status.is_ok(), "{:?}", fresh.status);
        assert!(fresh.resumed_from.is_none());

        // Preempt: march the same spec's physics for 2 of 4 steps with
        // autosave on, as the worker on the dying node would have.
        let cfg = spec.igr_config(&case);
        let init = case.init.clone();
        let cut = run_decomposed_resumable::<f64, StoreF64>(
            &cfg,
            &case.domain,
            2,
            2,
            move |p| init(p),
            Some(DecompCheckpointing {
                dir: dir.clone(),
                stem: spec.hash_hex(),
                every: 1,
            }),
            &[],
        );
        assert!(cut.resumed_from.is_none());
        for rank in 0..2 {
            assert!(rank_ckpt_path(&dir, &spec.hash_hex(), rank).exists());
        }

        // Resubmission (on "another node" holding the files): resumes at
        // the cut, reproduces the uninterrupted physics bit for bit, and
        // consumes the restart set.
        let resumed = run_scenario_with(&spec, Some(&dir));
        assert!(resumed.status.is_ok(), "{:?}", resumed.status);
        assert_eq!(resumed.resumed_from, Some(2), "must not restart from t=0");
        assert_eq!(resumed.mass_drift.to_bits(), fresh.mass_drift.to_bits());
        assert_eq!(resumed.energy_drift.to_bits(), fresh.energy_drift.to_bits());
        for rank in 0..2 {
            assert!(
                !rank_ckpt_path(&dir, &spec.hash_hex(), rank).exists(),
                "completed scenario keeps no rank restart files"
            );
        }
    }

    #[test]
    fn decomposed_scenario_is_rank_count_invariant() {
        // 1-rank and 2-rank decomposed runs take the identical adaptive-dt
        // path (rank-order reductions are deterministic), so the gathered
        // physics must agree to rounding. (The single-block executor path
        // is *not* comparable here: grind measurement freezes dt.)
        let mut spec = ScenarioSpec::new(BaseCase::EngineRow2d { engines: 3 }, 16);
        spec.warmup = 0;
        spec.steps = 2;
        spec.ranks = Some(2);
        let case = spec.build_case().unwrap();
        let one = {
            let mut s = spec.clone();
            s.ranks = Some(1);
            run_decomposed_scenario_with(&s, &case, None)
        };
        let two = run_decomposed_scenario_with(&spec, &case, None);
        assert!(two.status.is_ok(), "{:?}", two.status);
        assert_eq!(two.ranks, 2);
        let (a, b) = (
            one.base_heating.as_ref().unwrap(),
            two.base_heating.as_ref().unwrap(),
        );
        assert!(
            (a.mean_pressure - b.mean_pressure).abs() <= 1e-12 * a.mean_pressure.abs().max(1.0),
            "1 rank {} vs 2 ranks {}",
            a.mean_pressure,
            b.mean_pressure
        );
        assert!(
            (a.recirculation_flux - b.recirculation_flux).abs()
                <= 1e-12 * a.recirculation_flux.abs().max(1.0),
            "1 rank {} vs 2 ranks {}",
            a.recirculation_flux,
            b.recirculation_flux
        );
    }

    fn recovery_spec() -> crate::spec::RecoverySpec {
        crate::spec::RecoverySpec {
            snapshot_ring_depth: 2,
            snapshot_every: 4,
            max_retries: 3,
            dt_backoff_factor: 0.5,
            backoff_hold_steps: 4,
        }
    }

    /// `quick_spec` stretched to 12 total steps with recovery armed: room
    /// for a snapshot at 4, the chaos injection at 6, and a full backoff
    /// hold before the end.
    fn armed_spec() -> ScenarioSpec {
        let mut s = quick_spec();
        s.warmup = 2;
        s.steps = 10;
        s.recovery = Some(recovery_spec());
        s
    }

    /// `RecoveryRecord` carries NaN-able floats, so it has no `PartialEq`;
    /// compare the logs field by field at bit granularity.
    fn assert_recoveries_bit_equal(a: &[RecoveryRecord], b: &[RecoveryRecord]) {
        assert_eq!(a.len(), b.len(), "recovery log lengths differ");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.trip_step, y.trip_step, "record {i}");
            assert_eq!(x.rollback_step, y.rollback_step, "record {i}");
            assert_eq!(x.rollback_t.to_bits(), y.rollback_t.to_bits(), "record {i}");
            assert_eq!(x.prev_dt.to_bits(), y.prev_dt.to_bits(), "record {i}");
            assert_eq!(x.backoff_dt.to_bits(), y.backoff_dt.to_bits(), "record {i}");
            assert_eq!(x.hold_until, y.hold_until, "record {i}");
            assert_eq!(x.retry, y.retry, "record {i}");
        }
    }

    #[test]
    fn chaos_nan_injection_self_heals_with_zero_failed_rows() {
        // One scenario is poisoned mid-flight (via the test-only label
        // hook); both have recovery armed. The campaign must come back
        // with zero Failed rows: the poisoned run rolls back, backs off,
        // and completes — and its row carries the rollback history.
        let mut poisoned = armed_spec();
        poisoned.label = Some("__nan_inject_6__".into());
        // Distinct physics so the two specs don't dedup onto one job
        // (labels are hash-excluded).
        let mut healthy = armed_spec();
        healthy.resolution = 64;
        let mut campaign = Campaign::new(ExecConfig {
            workers: 2,
            threads_per_worker: 1,
            ..Default::default()
        });
        let report = campaign.run(&[poisoned, healthy]);
        assert_eq!(report.rows.len(), 2);
        for row in &report.rows {
            assert!(
                row.result.status.is_ok(),
                "self-healing run must not fail: {:?}",
                row.result.status
            );
        }
        let recs = report.rows[0].result.recoveries.as_ref().unwrap();
        assert!(!recs.is_empty(), "the poisoned run logs its rollback");
        assert_eq!(recs[0].trip_step, 6, "trip at the injection boundary");
        assert_eq!(recs[0].rollback_step, 4, "rollback to the last snapshot");
        // Armed but never tripped: the log is present and empty — the
        // report distinguishes "no divergence" from "recovery off".
        let clean = report.rows[1].result.recoveries.as_ref().unwrap();
        assert!(clean.is_empty());
    }

    #[test]
    fn recovered_runs_are_bitwise_deterministic_across_reruns() {
        // The dt schedule is a pure function of the recovery log, so
        // re-running the identical poisoned scenario must reproduce the
        // healed trajectory — and the log itself — bit for bit, at both
        // f64 and f32.
        for precision in [PrecisionMode::Fp64, PrecisionMode::Fp32] {
            let mut spec = armed_spec();
            spec.precision = precision;
            spec.label = Some("__nan_inject_6__".into());
            let a = run_scenario(&spec);
            let b = run_scenario(&spec);
            assert!(a.status.is_ok(), "{precision:?}: {:?}", a.status);
            assert!(b.status.is_ok(), "{precision:?}: {:?}", b.status);
            let ra = a.recoveries.as_ref().unwrap();
            assert!(!ra.is_empty(), "{precision:?}: injection must trip");
            assert_recoveries_bit_equal(ra, b.recoveries.as_ref().unwrap());
            assert_eq!(
                a.mass_drift.to_bits(),
                b.mass_drift.to_bits(),
                "{precision:?}"
            );
            assert_eq!(
                a.energy_drift.to_bits(),
                b.energy_drift.to_bits(),
                "{precision:?}"
            );
        }
    }

    macro_rules! mid_recovery_resume_test {
        ($name:ident, $real:ty, $store:ty, $prec:expr) => {
            #[test]
            fn $name() {
                let dir = std::env::temp_dir().join(stringify!($name));
                let _ = std::fs::remove_dir_all(&dir);
                std::fs::create_dir_all(&dir).unwrap();
                let mut spec = armed_spec();
                spec.precision = $prec;
                spec.checkpoint_every = Some(4);
                spec.label = Some("__nan_inject_6__".into());

                // Ground truth: the poisoned run, uninterrupted.
                let fresh = run_scenario(&spec);
                assert!(fresh.status.is_ok(), "{:?}", fresh.status);
                let fresh_recs = fresh.recoveries.as_ref().unwrap();
                assert!(!fresh_recs.is_empty(), "injection must trip");

                // Crash *mid-recovery*: march exactly as `drive` does to
                // absolute step 6 — past the injection, rollback, and
                // re-run, inside the backoff hold — then die, leaving the
                // autosave (recovery log embedded) behind.
                let case = spec.build_case().unwrap();
                let cfg = spec.igr_config(&case);
                let mut solver = igr_core::solver::igr_solver::<$real, $store>(
                    cfg,
                    case.domain,
                    case.init_state(),
                );
                solver.nan_check_every = 1;
                Driver::new()
                    .max_steps(spec.warmup)
                    .run(&mut solver)
                    .unwrap();
                solver.fixed_dt = Some(solver.stable_dt());
                solver.nan_check_every = 0;
                let path = dir.join(format!("{}.ckpt", spec.hash_hex()));
                let policy = spec.recovery.as_ref().unwrap().to_policy();
                let mut driver = Driver::new()
                    .checkpoint_to(path.clone(), None)
                    .inject_nan_at(6);
                driver.run_recovered(&mut solver, &policy, 6).unwrap();
                assert!(
                    !driver.take_recovery_log().is_empty(),
                    "the crash happens mid-recovery, after the rollback"
                );
                assert!(path.exists(), "autosave written at the cut");

                // The resubmission re-enters inside the backoff hold. It
                // must not re-fire the injection (the seeded log
                // suppresses it), replays the dt schedule from the log,
                // and lands on the identical final state and history.
                let resumed = run_scenario_with(&spec, Some(&dir));
                assert!(resumed.status.is_ok(), "{:?}", resumed.status);
                assert_eq!(resumed.resumed_from, Some(6));
                assert_recoveries_bit_equal(fresh_recs, resumed.recoveries.as_ref().unwrap());
                assert_eq!(resumed.mass_drift.to_bits(), fresh.mass_drift.to_bits());
                assert_eq!(resumed.energy_drift.to_bits(), fresh.energy_drift.to_bits());
                assert!(!path.exists(), "completed scenario keeps no restart file");
            }
        };
    }
    mid_recovery_resume_test!(
        mid_recovery_interrupt_resumes_bitwise_f64,
        f64,
        StoreF64,
        PrecisionMode::Fp64
    );
    mid_recovery_resume_test!(
        mid_recovery_interrupt_resumes_bitwise_f32,
        f32,
        StoreF32,
        PrecisionMode::Fp32
    );

    #[test]
    fn arming_recovery_without_divergence_is_physically_inert() {
        // The windowed recovered path must be a bit-identical
        // re-expression of the plain timed run when nothing trips: same
        // frozen dt, same step sequence — snapshots and NaN scans are
        // observers, never actors. This pins the recovery-disabled
        // contract too: a spec without `recovery` takes the pre-existing
        // path untouched and carries no log.
        let mut plain = quick_spec();
        plain.warmup = 2;
        plain.steps = 10;
        let mut armed = plain.clone();
        armed.recovery = Some(recovery_spec());
        assert_ne!(
            plain.content_hash(),
            armed.content_hash(),
            "recovery is an execution axis in the cache key"
        );
        let p = run_scenario(&plain);
        let a = run_scenario(&armed);
        assert!(p.status.is_ok(), "{:?}", p.status);
        assert!(a.status.is_ok(), "{:?}", a.status);
        assert!(p.recoveries.is_none(), "recovery-free runs carry no log");
        assert!(a.recoveries.as_ref().unwrap().is_empty());
        assert_eq!(p.mass_drift.to_bits(), a.mass_drift.to_bits());
        assert_eq!(p.energy_drift.to_bits(), a.energy_drift.to_bits());
    }

    #[test]
    fn super_heavy_chaos_run_self_heals_and_reproduces_bitwise() {
        // The acceptance scenario: a mid-run NaN on the 33-engine 3-D
        // case completes Ok with a non-empty recovery log, and a rerun
        // reproduces the healed trajectory bit for bit.
        let mut spec = ScenarioSpec::new(BaseCase::SuperHeavy3d, 8);
        spec.warmup = 1;
        spec.steps = 5;
        spec.recovery = Some(crate::spec::RecoverySpec {
            snapshot_ring_depth: 2,
            snapshot_every: 2,
            max_retries: 3,
            dt_backoff_factor: 0.5,
            backoff_hold_steps: 2,
        });
        spec.label = Some("__nan_inject_3__".into());
        spec.validate().expect("recovery on the hero case is legal");
        let a = run_scenario(&spec);
        assert!(a.status.is_ok(), "{:?}", a.status);
        let recs = a.recoveries.as_ref().unwrap();
        assert!(!recs.is_empty(), "injection must trip");
        let b = run_scenario(&spec);
        assert!(b.status.is_ok(), "{:?}", b.status);
        assert_recoveries_bit_equal(recs, b.recoveries.as_ref().unwrap());
        assert_eq!(a.mass_drift.to_bits(), b.mass_drift.to_bits());
        assert_eq!(a.energy_drift.to_bits(), b.energy_drift.to_bits());
    }
}
