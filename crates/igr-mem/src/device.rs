//! Device memory-system descriptions for the three machines of the paper.

/// The accelerator families evaluated in the paper (Table 2 / Table 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// NVIDIA Grace Hopper superchip (CSCS Alps).
    Gh200,
    /// One Graphics Compute Die of an AMD MI250X (OLCF Frontier).
    Mi250xGcd,
    /// AMD MI300A APU (LLNL El Capitan) — single physical HBM pool.
    Mi300a,
    /// The CPU this reproduction actually runs on.
    HostCpu,
}

/// Memory-system parameters of one device (plus its host-side share).
///
/// Numbers follow the paper's §6.1 hardware description:
/// * GH200: 96 GB HBM3 at 4 TB/s, 120 GB LPDDR5 at 500 GB/s, 900 GB/s
///   bidirectional NVLink-C2C (450 GB/s per direction);
/// * MI250X GCD: 64 GB HBM2E, 72 GB/s xGMI to the Trento host, 64 GB DDR4
///   share (512 GB / 8 GCDs);
/// * MI300A: 128 GB HBM3 shared by CPU and GPU — `unified_pool`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeviceSpec {
    pub kind: DeviceKind,
    pub name: &'static str,
    pub device_mem_bytes: u64,
    pub host_mem_bytes: u64,
    /// Device (HBM) bandwidth in bytes/s.
    pub device_bw: f64,
    /// Host link bandwidth in bytes/s, per direction.
    pub link_bw: f64,
    /// Host memory bandwidth in bytes/s (bounds zero-copy host accesses).
    pub host_bw: f64,
    /// CPU and GPU share one physical pool (MI300A).
    pub unified_pool: bool,
}

const GB: u64 = 1 << 30;
const GBS: f64 = 1e9;

impl DeviceSpec {
    pub const GH200: DeviceSpec = DeviceSpec {
        kind: DeviceKind::Gh200,
        name: "GH200",
        device_mem_bytes: 96 * GB,
        host_mem_bytes: 120 * GB,
        device_bw: 4000.0 * GBS,
        link_bw: 450.0 * GBS,
        host_bw: 500.0 * GBS,
        unified_pool: false,
    };

    pub const MI250X_GCD: DeviceSpec = DeviceSpec {
        kind: DeviceKind::Mi250xGcd,
        name: "MI250X GCD",
        device_mem_bytes: 64 * GB,
        host_mem_bytes: 64 * GB,
        device_bw: 1600.0 * GBS,
        link_bw: 72.0 * GBS,
        host_bw: 100.0 * GBS,
        unified_pool: false,
    };

    pub const MI300A: DeviceSpec = DeviceSpec {
        kind: DeviceKind::Mi300a,
        name: "MI300A",
        device_mem_bytes: 128 * GB,
        host_mem_bytes: 0, // same pool
        device_bw: 5300.0 * GBS,
        link_bw: 5300.0 * GBS, // no separate link: coherent HBM
        host_bw: 5300.0 * GBS,
        unified_pool: true,
    };

    /// A modest CPU node, for anchoring measured runs.
    pub const HOST_CPU: DeviceSpec = DeviceSpec {
        kind: DeviceKind::HostCpu,
        name: "host CPU",
        device_mem_bytes: 16 * GB,
        host_mem_bytes: 16 * GB,
        device_bw: 50.0 * GBS,
        link_bw: 50.0 * GBS,
        host_bw: 50.0 * GBS,
        unified_pool: true,
    };

    pub const ALL_PAPER_DEVICES: [DeviceSpec; 3] = [
        DeviceSpec::GH200,
        DeviceSpec::MI250X_GCD,
        DeviceSpec::MI300A,
    ];

    /// Total memory usable for one device's working set (device + host
    /// share; a single pool counts once).
    pub fn total_capacity(&self) -> u64 {
        if self.unified_pool {
            self.device_mem_bytes
        } else {
            self.device_mem_bytes + self.host_mem_bytes
        }
    }

    /// Ratio of link to device bandwidth — the first-order predictor of the
    /// unified-memory penalty (Table 3's unified column).
    pub fn link_ratio(&self) -> f64 {
        self.link_bw / self.device_bw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_capacities() {
        assert_eq!(DeviceSpec::GH200.device_mem_bytes, 96 * GB);
        assert_eq!(DeviceSpec::MI250X_GCD.device_mem_bytes, 64 * GB);
        assert_eq!(DeviceSpec::MI300A.device_mem_bytes, 128 * GB);
        // 4 MI250X per Frontier node = 8 GCDs * 64 GB = 512 GB (Table 2).
        assert_eq!(8 * DeviceSpec::MI250X_GCD.device_mem_bytes, 512 * GB);
    }

    #[test]
    fn unified_pool_has_no_separate_host_share() {
        assert!(DeviceSpec::MI300A.unified_pool);
        assert_eq!(DeviceSpec::MI300A.total_capacity(), 128 * GB);
        assert_eq!(DeviceSpec::GH200.total_capacity(), 216 * GB);
    }

    #[test]
    fn link_ratios_order_like_the_papers_unified_penalties() {
        // GH200's link is ~11% of HBM bandwidth; the MI250X GCD's is ~4.5%.
        // The MI300A has no penalty at all. Table 3's unified-memory
        // penalties (<5%, ~40-50%, 0%) follow this ordering.
        let gh = DeviceSpec::GH200.link_ratio();
        let gcd = DeviceSpec::MI250X_GCD.link_ratio();
        let apu = DeviceSpec::MI300A.link_ratio();
        assert!(apu == 1.0);
        assert!(gh > gcd, "GH200 ratio {gh} must exceed GCD ratio {gcd}");
        assert!((gh - 0.1125).abs() < 1e-10);
        assert!((gcd - 0.045).abs() < 1e-10);
    }
}
