//! Capacity-tracked buffer placement with unified-memory semantics.

use crate::device::DeviceSpec;

/// Handle to a tracked buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BufferId(usize);

/// Where a buffer lives — mirroring the paper's placements: device-resident
/// (`hipMalloc` / separate-memory CUDA), pinned host (`hipMallocManaged` +
/// advise, or `malloc` under `-gpu=mem:unified`), or managed with a
/// preferred location (CUDA UVM + `cudaMemAdvise`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Placement {
    Device,
    HostPinned,
    /// Managed: counts against the preferred pool, may spill to the other.
    Managed {
        prefer_device: bool,
    },
}

/// Advice hints (the `cudaMemAdvise`/`hipMemAdvise` analogue).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemAdvise {
    PreferredLocationDevice,
    PreferredLocationHost,
    AccessedByDevice,
}

/// Allocation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AllocError {
    /// Device pool exhausted and the buffer may not spill.
    DeviceOom { requested: u64, free: u64 },
    /// Host pool exhausted.
    HostOom { requested: u64, free: u64 },
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::DeviceOom { requested, free } => {
                write!(f, "device OOM: requested {requested} B, {free} B free")
            }
            AllocError::HostOom { requested, free } => {
                write!(f, "host OOM: requested {requested} B, {free} B free")
            }
        }
    }
}

impl std::error::Error for AllocError {}

#[derive(Clone, Debug)]
struct Buffer {
    name: String,
    bytes: u64,
    /// Where the bytes are currently accounted.
    on_device: bool,
    placement: Placement,
}

/// The unified-memory allocator of one device.
///
/// On a `unified_pool` device (MI300A) the device pool is the only pool and
/// every placement resolves to it — "all variables have a single copy in
/// memory" (§5.5.1).
#[derive(Clone, Debug)]
pub struct UnifiedAllocator {
    spec: DeviceSpec,
    buffers: Vec<Option<Buffer>>,
}

impl UnifiedAllocator {
    pub fn new(spec: DeviceSpec) -> Self {
        UnifiedAllocator {
            spec,
            buffers: Vec::new(),
        }
    }

    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    pub fn device_bytes_used(&self) -> u64 {
        self.buffers
            .iter()
            .flatten()
            .filter(|b| b.on_device)
            .map(|b| b.bytes)
            .sum()
    }

    pub fn host_bytes_used(&self) -> u64 {
        self.buffers
            .iter()
            .flatten()
            .filter(|b| !b.on_device)
            .map(|b| b.bytes)
            .sum()
    }

    pub fn device_bytes_free(&self) -> u64 {
        self.spec
            .device_mem_bytes
            .saturating_sub(self.device_bytes_used())
    }

    pub fn host_bytes_free(&self) -> u64 {
        if self.spec.unified_pool {
            self.device_bytes_free()
        } else {
            self.spec
                .host_mem_bytes
                .saturating_sub(self.host_bytes_used())
        }
    }

    /// Allocate a named buffer. Managed buffers preferring the device spill
    /// to the host when HBM is full (the UVM oversubscription the paper
    /// exploits); `Device` placements fail instead.
    pub fn alloc(
        &mut self,
        name: impl Into<String>,
        bytes: u64,
        placement: Placement,
    ) -> Result<BufferId, AllocError> {
        let on_device = if self.spec.unified_pool {
            if bytes > self.device_bytes_free() {
                return Err(AllocError::DeviceOom {
                    requested: bytes,
                    free: self.device_bytes_free(),
                });
            }
            true
        } else {
            match placement {
                Placement::Device => {
                    if bytes > self.device_bytes_free() {
                        return Err(AllocError::DeviceOom {
                            requested: bytes,
                            free: self.device_bytes_free(),
                        });
                    }
                    true
                }
                Placement::HostPinned => {
                    if bytes > self.host_bytes_free() {
                        return Err(AllocError::HostOom {
                            requested: bytes,
                            free: self.host_bytes_free(),
                        });
                    }
                    false
                }
                Placement::Managed { prefer_device } => {
                    if prefer_device && bytes <= self.device_bytes_free() {
                        true
                    } else if bytes <= self.host_bytes_free() {
                        false
                    } else if !prefer_device && bytes <= self.device_bytes_free() {
                        true
                    } else {
                        return Err(AllocError::HostOom {
                            requested: bytes,
                            free: self.host_bytes_free(),
                        });
                    }
                }
            }
        };
        let id = BufferId(self.buffers.len());
        self.buffers.push(Some(Buffer {
            name: name.into(),
            bytes,
            on_device,
            placement,
        }));
        Ok(id)
    }

    pub fn free(&mut self, id: BufferId) {
        assert!(self.buffers[id.0].take().is_some(), "double free of {id:?}");
    }

    /// Whether a buffer currently resides in device memory.
    pub fn is_on_device(&self, id: BufferId) -> bool {
        self.buffers[id.0].as_ref().expect("freed buffer").on_device
    }

    pub fn name(&self, id: BufferId) -> &str {
        &self.buffers[id.0].as_ref().expect("freed buffer").name
    }

    pub fn bytes(&self, id: BufferId) -> u64 {
        self.buffers[id.0].as_ref().expect("freed buffer").bytes
    }

    /// Apply a residency hint; managed buffers may migrate if capacity
    /// allows (prefetch semantics). Returns the bytes migrated.
    pub fn advise(&mut self, id: BufferId, advice: MemAdvise) -> u64 {
        if self.spec.unified_pool {
            return 0; // single pool: hints are no-ops, as on the MI300A
        }
        let buf = self.buffers[id.0].as_ref().expect("freed buffer");
        if !matches!(buf.placement, Placement::Managed { .. }) {
            return 0; // explicit placements don't migrate
        }
        let bytes = buf.bytes;
        let want_device = matches!(advice, MemAdvise::PreferredLocationDevice);
        let on_device = buf.on_device;
        if want_device == on_device {
            return 0;
        }
        let fits = if want_device {
            bytes <= self.device_bytes_free()
        } else {
            bytes <= self.host_bytes_free()
        };
        if fits {
            self.buffers[id.0].as_mut().unwrap().on_device = want_device;
            bytes
        } else {
            0
        }
    }

    /// Per-pool usage summary `(device_used, host_used)`.
    pub fn usage(&self) -> (u64, u64) {
        (self.device_bytes_used(), self.host_bytes_used())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;

    const GB: u64 = 1 << 30;

    #[test]
    fn device_placement_fails_beyond_capacity() {
        let mut a = UnifiedAllocator::new(DeviceSpec::GH200);
        let id = a.alloc("big", 90 * GB, Placement::Device).unwrap();
        assert!(a.is_on_device(id));
        let err = a.alloc("more", 10 * GB, Placement::Device).unwrap_err();
        assert!(matches!(err, AllocError::DeviceOom { .. }));
    }

    #[test]
    fn managed_buffers_spill_to_host() {
        let mut a = UnifiedAllocator::new(DeviceSpec::GH200);
        a.alloc("state", 90 * GB, Placement::Device).unwrap();
        // 90 of 96 GB used: a 20 GB managed buffer spills to host.
        let spill = a
            .alloc(
                "rk_stage",
                20 * GB,
                Placement::Managed {
                    prefer_device: true,
                },
            )
            .unwrap();
        assert!(!a.is_on_device(spill));
        assert_eq!(a.host_bytes_used(), 20 * GB);
    }

    #[test]
    fn oversubscription_grows_total_capacity() {
        // The point of §5.5: total usable memory = HBM + host.
        let mut a = UnifiedAllocator::new(DeviceSpec::GH200);
        let total = DeviceSpec::GH200.total_capacity();
        assert_eq!(total, 216 * GB);
        a.alloc("a", 96 * GB, Placement::Device).unwrap();
        a.alloc("b", 120 * GB, Placement::HostPinned).unwrap();
        assert!(a
            .alloc(
                "c",
                GB,
                Placement::Managed {
                    prefer_device: true
                }
            )
            .is_err());
    }

    #[test]
    fn unified_pool_ignores_placement_distinctions() {
        let mut a = UnifiedAllocator::new(DeviceSpec::MI300A);
        let h = a.alloc("x", 64 * GB, Placement::HostPinned).unwrap();
        assert!(
            a.is_on_device(h),
            "single pool: everything is device-resident"
        );
        let err = a.alloc("y", 65 * GB, Placement::Device).unwrap_err();
        assert!(matches!(err, AllocError::DeviceOom { .. }));
    }

    #[test]
    fn advise_migrates_managed_buffers_when_space_allows() {
        let mut a = UnifiedAllocator::new(DeviceSpec::GH200);
        let id = a
            .alloc(
                "managed",
                10 * GB,
                Placement::Managed {
                    prefer_device: true,
                },
            )
            .unwrap();
        assert!(a.is_on_device(id));
        let moved = a.advise(id, MemAdvise::PreferredLocationHost);
        assert_eq!(moved, 10 * GB);
        assert!(!a.is_on_device(id));
        // And back.
        assert_eq!(a.advise(id, MemAdvise::PreferredLocationDevice), 10 * GB);
        assert!(a.is_on_device(id));
    }

    #[test]
    fn advise_is_a_noop_for_explicit_and_unified_placements() {
        let mut a = UnifiedAllocator::new(DeviceSpec::GH200);
        let id = a.alloc("pinned", GB, Placement::HostPinned).unwrap();
        assert_eq!(a.advise(id, MemAdvise::PreferredLocationDevice), 0);
        let mut apu = UnifiedAllocator::new(DeviceSpec::MI300A);
        let id2 = apu
            .alloc(
                "x",
                GB,
                Placement::Managed {
                    prefer_device: true,
                },
            )
            .unwrap();
        assert_eq!(apu.advise(id2, MemAdvise::PreferredLocationHost), 0);
    }

    #[test]
    fn free_releases_capacity() {
        let mut a = UnifiedAllocator::new(DeviceSpec::MI250X_GCD);
        let id = a.alloc("x", 60 * GB, Placement::Device).unwrap();
        assert!(a.alloc("y", 60 * GB, Placement::Device).is_err());
        a.free(id);
        assert!(a.alloc("y", 60 * GB, Placement::Device).is_ok());
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = UnifiedAllocator::new(DeviceSpec::GH200);
        let id = a.alloc("x", GB, Placement::Device).unwrap();
        a.free(id);
        a.free(id);
    }
}
