//! Unified-memory substrate simulator.
//!
//! The paper's §5.5 grows the per-device problem size by spilling the
//! Runge–Kutta sub-step (and optionally the IGR temporaries) from device
//! HBM to host memory over a coherent link: NVLink-C2C on GH200,
//! InfinityFabric/xGMI on Frontier, and a single physical HBM pool on the
//! MI300A. No such hardware exists in this environment, so this crate
//! *simulates* the memory system: capacity-tracked pools, buffer placement
//! with `mem_advise`/prefetch semantics, and a bandwidth cost model that
//! converts per-step traffic into the grind-time penalty the paper measures
//! (<5 % on GH200, 42–51 % on the MI250X, 0 % on the MI300A — Table 3).
//!
//! The *capacity* side feeds Fig. 8 (maximum cells per node: 10.5 B for IGR
//! with unified memory vs 421 M for the FP64 in-core baseline) and the §7.2
//! problem-size records; the *bandwidth* side feeds Table 3's unified
//! column.

mod allocator;
mod device;
mod traffic;

pub use allocator::{AllocError, BufferId, MemAdvise, Placement, UnifiedAllocator};
pub use device::{DeviceKind, DeviceSpec};
pub use traffic::{StepTraffic, TrafficModel};
