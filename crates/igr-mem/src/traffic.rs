//! Bandwidth cost model: per-step memory traffic → simulated step time.
//!
//! CFD stencil kernels are bandwidth-bound (§4.2: "performance is limited by
//! memory bandwidth"), so step time is modeled as bytes moved divided by the
//! bandwidth of the pool each byte lives in:
//!
//! ```text
//! t_step = device_bytes / device_bw + max(link_bytes / link_bw,
//!                                         host_bytes / host_bw)
//! ```
//!
//! This reproduces the paper's Table 3 unified-memory penalties from first
//! principles: the GH200's 450 GB/s C2C link vs 4 TB/s HBM gives a few
//! percent for host-resident RK buffers; the MI250X's 72 GB/s xGMI gives
//! ~40–50 %; the MI300A's single pool gives zero.

use crate::device::DeviceSpec;

/// Bytes moved per time step, by pool.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StepTraffic {
    /// Bytes read+written against device HBM.
    pub device_bytes: f64,
    /// Bytes crossing the CPU–GPU link (zero-copy accesses to host memory).
    pub link_bytes: f64,
}

impl StepTraffic {
    pub fn total(&self) -> f64 {
        self.device_bytes + self.link_bytes
    }
}

/// The bandwidth model of one device.
#[derive(Clone, Copy, Debug)]
pub struct TrafficModel {
    pub spec: DeviceSpec,
}

impl TrafficModel {
    pub fn new(spec: DeviceSpec) -> Self {
        TrafficModel { spec }
    }

    /// Simulated time for one step's traffic, seconds.
    pub fn step_time_s(&self, t: &StepTraffic) -> f64 {
        if self.spec.unified_pool {
            // One pool: all traffic at HBM bandwidth.
            return t.total() / self.spec.device_bw;
        }
        let device_t = t.device_bytes / self.spec.device_bw;
        // Host-resident accesses are limited by the slower of the link and
        // the host memory system.
        let effective_host_bw = self.spec.link_bw.min(self.spec.host_bw);
        let host_t = t.link_bytes / effective_host_bw;
        device_t + host_t
    }

    /// Grind time in ns per cell per step for `cells` cells.
    pub fn grind_ns(&self, t: &StepTraffic, cells: f64) -> f64 {
        self.step_time_s(t) * 1e9 / cells
    }

    /// Relative slowdown of splitting the same total traffic with
    /// `host_fraction` of bytes host-resident, vs all-device.
    pub fn unified_penalty(&self, total_bytes: f64, host_fraction: f64) -> f64 {
        let in_core = StepTraffic {
            device_bytes: total_bytes,
            link_bytes: 0.0,
        };
        let unified = StepTraffic {
            device_bytes: total_bytes * (1.0 - host_fraction),
            link_bytes: total_bytes * host_fraction,
        };
        self.step_time_s(&unified) / self.step_time_s(&in_core) - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unified_pool_has_zero_penalty() {
        let m = TrafficModel::new(DeviceSpec::MI300A);
        let p = m.unified_penalty(1e12, 0.3);
        assert!(p.abs() < 1e-12, "MI300A penalty {p}");
    }

    /// Table 3's unified column: <5% on GH200, 42–51% on the MI250X GCD,
    /// 0% on the MI300A. The link-crossing traffic fraction is
    /// implementation-specific — the paper's GH200 path hides most C2C
    /// traffic behind `cudaMemPrefetchAsync` overlap (effective f ~ 0.5%),
    /// while Frontier's per-RK-update zero-copy exchange crosses ~2% of the
    /// step's bytes. With those fractions the model lands in the measured
    /// bands; and for any *common* fraction the penalty ordering is fixed by
    /// the link-to-HBM bandwidth ratio.
    #[test]
    fn penalties_match_the_papers_bands() {
        let gh = TrafficModel::new(DeviceSpec::GH200).unified_penalty(1e12, 0.005);
        assert!(gh > 0.0 && gh < 0.05, "GH200 penalty {gh} should be <5%");
        let gcd = TrafficModel::new(DeviceSpec::MI250X_GCD).unified_penalty(1e12, 0.02);
        assert!(
            gcd > 0.3 && gcd < 0.6,
            "MI250X penalty {gcd} should be ~42-51%"
        );
        // Ordering at a common fraction.
        for f in [0.005, 0.02, 0.05] {
            let gh = TrafficModel::new(DeviceSpec::GH200).unified_penalty(1e12, f);
            let gcd = TrafficModel::new(DeviceSpec::MI250X_GCD).unified_penalty(1e12, f);
            let apu = TrafficModel::new(DeviceSpec::MI300A).unified_penalty(1e12, f);
            assert!(gcd > gh && gh > apu, "f={f}: {gcd} > {gh} > {apu}");
        }
    }

    #[test]
    fn step_time_is_linear_in_traffic() {
        let m = TrafficModel::new(DeviceSpec::GH200);
        let t1 = m.step_time_s(&StepTraffic {
            device_bytes: 1e9,
            link_bytes: 0.0,
        });
        let t2 = m.step_time_s(&StepTraffic {
            device_bytes: 2e9,
            link_bytes: 0.0,
        });
        assert!((t2 / t1 - 2.0).abs() < 1e-12);
        // 1 GB at 4 TB/s = 0.25 ms.
        assert!((t1 - 0.25e-3).abs() < 1e-8);
    }

    #[test]
    fn grind_time_normalizes_by_cells() {
        let m = TrafficModel::new(DeviceSpec::GH200);
        // 136 B/cell/step (17 f64 arrays touched once) on 1e9 cells.
        let t = StepTraffic {
            device_bytes: 136.0 * 1e9,
            link_bytes: 0.0,
        };
        let g = m.grind_ns(&t, 1e9);
        assert!((g - 136.0 / 4000.0).abs() < 1e-9, "grind {g} ns");
    }

    #[test]
    fn host_bandwidth_caps_the_link() {
        // A device whose host memory is slower than its link must be limited
        // by the host memory system.
        let mut spec = DeviceSpec::GH200;
        spec.host_bw = 100e9; // slower than the 450 GB/s link
        let m = TrafficModel::new(spec);
        let t = StepTraffic {
            device_bytes: 0.0,
            link_bytes: 1e9,
        };
        assert!((m.step_time_s(&t) - 0.01).abs() < 1e-9);
    }
}
