//! Failure-injection tests of the unified-memory substrate: out-of-memory
//! paths, spill policies, and accounting invariants under adversarial
//! allocation sequences.

use igr_mem::{AllocError, DeviceSpec, MemAdvise, Placement, UnifiedAllocator};
use proptest::prelude::*;

const GB: u64 = 1 << 30;

#[test]
fn device_oom_reports_exact_free_bytes() {
    let mut a = UnifiedAllocator::new(DeviceSpec::GH200);
    let free = a.device_bytes_free();
    let id = a.alloc("state", free - GB, Placement::Device).unwrap();
    let err = a.alloc("too-big", 2 * GB, Placement::Device).unwrap_err();
    match err {
        AllocError::DeviceOom { requested, free } => {
            assert_eq!(requested, 2 * GB);
            assert_eq!(free, GB);
        }
        other => panic!("expected DeviceOom, got {other:?}"),
    }
    // Freeing restores capacity exactly.
    a.free(id);
    assert_eq!(a.device_bytes_free(), free);
}

#[test]
fn managed_buffers_spill_to_host_instead_of_failing() {
    // The UVM oversubscription path (§5.5.3): a managed buffer preferring
    // the device lands on the host once HBM is full.
    let mut a = UnifiedAllocator::new(DeviceSpec::GH200);
    let hbm = a.device_bytes_free();
    let big = a
        .alloc(
            "rk-stage",
            hbm,
            Placement::Managed {
                prefer_device: true,
            },
        )
        .unwrap();
    assert!(a.is_on_device(big));
    let spilled = a
        .alloc(
            "spill",
            4 * GB,
            Placement::Managed {
                prefer_device: true,
            },
        )
        .unwrap();
    assert!(!a.is_on_device(spilled), "must spill to host");
    // Device placement still fails — no silent spill for hipMalloc.
    assert!(matches!(
        a.alloc("strict", 4 * GB, Placement::Device),
        Err(AllocError::DeviceOom { .. })
    ));
}

#[test]
fn unified_pool_devices_have_one_pool() {
    // MI300A: "a single physical HBM pool accessed by both CPU and GPU".
    let mut a = UnifiedAllocator::new(DeviceSpec::MI300A);
    let cap = a.device_bytes_free();
    let id = a.alloc("everything", cap, Placement::HostPinned).unwrap();
    assert!(a.is_on_device(id), "every placement resolves to the pool");
    let err = a.alloc("one-more-byte", 1, Placement::Device).unwrap_err();
    assert!(matches!(err, AllocError::DeviceOom { .. }));
}

#[test]
#[should_panic(expected = "double free")]
fn double_free_is_rejected() {
    let mut a = UnifiedAllocator::new(DeviceSpec::GH200);
    let id = a.alloc("x", GB, Placement::Device).unwrap();
    a.free(id);
    a.free(id);
}

#[test]
fn host_oom_when_both_pools_are_exhausted() {
    let mut a = UnifiedAllocator::new(DeviceSpec::GH200);
    let hbm = a.device_bytes_free();
    let host = a.host_bytes_free();
    a.alloc("hbm-fill", hbm, Placement::Device).unwrap();
    a.alloc("host-fill", host, Placement::HostPinned).unwrap();
    let err = a
        .alloc(
            "nowhere",
            GB,
            Placement::Managed {
                prefer_device: true,
            },
        )
        .unwrap_err();
    assert!(matches!(err, AllocError::HostOom { .. }));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Accounting invariant under arbitrary alloc/advise/free sequences:
    /// used(device) + used(host) equals the sum of live buffer sizes, and
    /// neither pool exceeds its capacity.
    #[test]
    fn accounting_is_exact_under_random_traffic(
        ops in prop::collection::vec((0u8..3, 1u64..64, any::<bool>()), 1..40)
    ) {
        let mut a = UnifiedAllocator::new(DeviceSpec::GH200);
        let mut live: Vec<(igr_mem::BufferId, u64)> = Vec::new();
        for (op, size_gb, flag) in ops {
            match op {
                0 => {
                    let bytes = size_gb * GB / 4;
                    let placement = if flag {
                        Placement::Managed { prefer_device: true }
                    } else {
                        Placement::HostPinned
                    };
                    if let Ok(id) = a.alloc("buf", bytes, placement) {
                        live.push((id, bytes));
                    }
                }
                1 => {
                    if let Some((id, _)) = live.pop() {
                        a.free(id);
                    }
                }
                _ => {
                    if let Some(&(id, _)) = live.last() {
                        let advice = if flag {
                            MemAdvise::PreferredLocationDevice
                        } else {
                            MemAdvise::PreferredLocationHost
                        };
                        a.advise(id, advice);
                    }
                }
            }
            let (dev, host) = a.usage();
            let total_live: u64 = live.iter().map(|(_, b)| b).sum();
            prop_assert_eq!(dev + host, total_live, "accounting drift");
            prop_assert!(dev <= a.spec().device_mem_bytes);
            prop_assert!(host <= a.spec().host_mem_bytes);
        }
    }
}
