//! Typed mid-run actions, the deterministic action log, and the [`Actuate`]
//! surface that applies actions to a solver at a step boundary.
//!
//! The run-loop used to be strictly read-only: observers could watch a march
//! but never change it, so engine-out cascades, gimbal ramps, and
//! backpressure transients had to be frozen into the scenario spec before
//! step 0. This module is the mutate-between-steps channel the ROADMAP
//! called for: controllers propose [`Action`]s, the `Driver` applies them
//! *only at step boundaries* through [`Actuate`], and every applied action
//! is appended to an [`ActionLog`] stamped with the step and simulation time
//! it was applied at.
//!
//! Determinism contract:
//!
//! * actions mutate the solver only through the existing BC surface (the
//!   installed [`InflowProfile`] is cloned, rewritten, and reinstalled) and
//!   the inflow-plane cache is invalidated, so the post-action march is
//!   bitwise identical to a run that had the mutated configuration from the
//!   start of the step;
//! * the log records `(step, t, action)` and every action parameter is
//!   serialized bit-exactly (floats travel as IEEE-754 bit patterns), so
//!   replaying the log against a freshly built solver — [`replay`], the
//!   resume path — reconstructs the identical boundary state: ramps are
//!   rebuilt from the *recorded* application time, not the wall clock;
//! * nothing here feeds a content hash: like `resumed_from`, the log is a
//!   recorded outcome, not part of a scenario's identity.

use crate::jets::{GimbalSchedule, JetArrayInflow, ScheduledJetInflow};
use igr_core::bc::{Bc, InflowProfile};
use igr_core::eos::Prim;
use igr_core::solver::{BcGhostOps, RhsScheme, Solver};
use igr_prec::{Real, Storage};
use igr_species::SpeciesSolver;
use std::sync::Arc;

/// A typed request to mutate the running solver at the next step boundary.
///
/// Parameters are plain `f64`/`usize` so every variant serializes into the
/// fixed-layout binary record (checkpoint trailer) and the JSON store/wire
/// codec without loss.
#[derive(Clone, Debug)]
pub enum Action {
    /// Retarget one engine's gimbal. `rate > 0` slews at that angular rate
    /// from the engine's *current* angles (a [`GimbalSchedule::ramp_at_rate`]
    /// starting at the application time); `rate == 0` snaps instantly.
    SetGimbal {
        /// Index into the installed engine array.
        engine: usize,
        /// Target gimbal angles (radians, per in-plane direction).
        target: [f64; 2],
        /// Angular slew rate (radians per time unit); 0 = instantaneous.
        rate: f64,
    },
    /// Remove one engine from the installed array (indices of later engines
    /// shift down by one, exactly like `without_engines`).
    EngineOut {
        /// Index into the installed engine array.
        engine: usize,
    },
    /// Change the ambient backpressure while keeping the engine exit state
    /// fixed — the jets become under-/over-expanded, the §3 "varying ambient
    /// pressure as the rocket traverses the atmosphere" regime, mid-run.
    SetBackpressure {
        /// New ambient pressure (the ambient density follows isothermally).
        pressure: f64,
    },
    /// Replace the jet gas conditions wholesale (ambient state, exit Mach,
    /// ratios) — the mid-run analogue of installing a different inflow
    /// profile.
    SwapInflow {
        /// Ambient density.
        ambient_rho: f64,
        /// Ambient pressure.
        ambient_p: f64,
        /// Engine exit Mach number.
        mach: f64,
        /// Ratio of specific heats.
        gamma: f64,
        /// Exit-to-ambient pressure ratio.
        pressure_ratio: f64,
        /// Exit-to-ambient density ratio.
        density_ratio: f64,
    },
    /// Pin (or unpin) the time step.
    SetFixedDt {
        /// `Some(dt)` pins; `None` returns to the CFL scan.
        dt: Option<f64>,
    },
    /// Ask the driver to write a checkpoint (with the action log embedded)
    /// at this step boundary. Applied by the `Driver`, not the solver.
    RequestCheckpoint,
}

impl Action {
    /// Stable lowercase name of the variant (error messages, JSON codec).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Action::SetGimbal { .. } => "set_gimbal",
            Action::EngineOut { .. } => "engine_out",
            Action::SetBackpressure { .. } => "set_backpressure",
            Action::SwapInflow { .. } => "swap_inflow",
            Action::SetFixedDt { .. } => "set_fixed_dt",
            Action::RequestCheckpoint => "request_checkpoint",
        }
    }
}

/// One applied action, stamped with the step boundary it was applied at.
#[derive(Clone, Debug)]
pub struct ActionRecord {
    /// Absolute step counter at application (post-step boundary).
    pub step: u64,
    /// Simulation time at application.
    pub t: f64,
    /// What was applied.
    pub action: Action,
}

/// The deterministic, time-stamped log of every applied action.
///
/// Serialized (a) into the `IGRCKPT` trailer so a resumed run replays a
/// mutated boundary state bitwise, and (b) by `igr-campaign` into store
/// lines / the wire protocol as the additive optional `actions` key.
/// Equality is *bit-exact* (floats compare as bit patterns, so NaN-carrying
/// parameters round-trip and compare equal).
#[derive(Clone, Debug, Default)]
pub struct ActionLog {
    records: Vec<ActionRecord>,
}

/// Fixed binary record layout: step(8) + t(8) + kind(1) + index(8) + 6
/// f64 parameter slots (48).
const RECORD_BYTES: usize = 8 + 8 + 1 + 8 + 48;
/// Trailer magic + version, appended after an `IGRCKPT` payload.
pub(crate) const ACTLOG_MAGIC: &[u8; 8] = b"ACTLOG\x01\0";

impl ActionLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// The applied actions, in application order.
    pub fn records(&self) -> &[ActionRecord] {
        &self.records
    }

    /// Number of applied actions.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing has been applied.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Append one applied action.
    pub fn record(&mut self, step: u64, t: f64, action: Action) {
        self.records.push(ActionRecord { step, t, action });
    }

    /// Serialize as the checkpoint trailer: magic + count + fixed records.
    /// Every float is written as its IEEE-754 bit pattern (bit-exact,
    /// NaN/±inf included).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.records.len() * RECORD_BYTES);
        out.extend_from_slice(ACTLOG_MAGIC);
        out.extend_from_slice(&(self.records.len() as u64).to_le_bytes());
        for rec in &self.records {
            out.extend_from_slice(&rec.step.to_le_bytes());
            out.extend_from_slice(&rec.t.to_bits().to_le_bytes());
            let (kind, idx, p) = encode_action(&rec.action);
            out.push(kind);
            out.extend_from_slice(&idx.to_le_bytes());
            for v in p {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        out
    }

    /// Parse a trailer produced by [`ActionLog::encode`]. The byte slice
    /// must contain exactly one trailer (no slack).
    pub fn decode(bytes: &[u8]) -> Result<Self, String> {
        let (log, used) = Self::decode_prefix(bytes)?;
        if used != bytes.len() {
            return Err(format!(
                "action-log trailer has {} trailing bytes",
                bytes.len() - used
            ));
        }
        Ok(log)
    }

    /// Parse one trailer from the front of `bytes`, returning the log and
    /// the number of bytes consumed — the entry point for the multi-trailer
    /// checkpoint parser (an `ACTLOG` may be followed by a `RECLOG`).
    pub fn decode_prefix(bytes: &[u8]) -> Result<(Self, usize), String> {
        if bytes.len() < 16 || &bytes[..8] != ACTLOG_MAGIC {
            return Err("bad action-log magic".into());
        }
        let count = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
        let total = 16
            + count
                .checked_mul(RECORD_BYTES)
                .ok_or("action-log count overflows")?;
        if bytes.len() < total {
            return Err(format!(
                "action-log holds {} bytes, {count} records need {total}",
                bytes.len()
            ));
        }
        let mut records = Vec::with_capacity(count);
        for r in 0..count {
            let b = &bytes[16 + r * RECORD_BYTES..16 + (r + 1) * RECORD_BYTES];
            let step = u64::from_le_bytes(b[0..8].try_into().unwrap());
            let t = f64::from_bits(u64::from_le_bytes(b[8..16].try_into().unwrap()));
            let kind = b[16];
            let idx = u64::from_le_bytes(b[17..25].try_into().unwrap());
            let mut p = [0u64; 6];
            for (s, slot) in p.iter_mut().enumerate() {
                *slot = u64::from_le_bytes(b[25 + s * 8..33 + s * 8].try_into().unwrap());
            }
            let action = decode_action(kind, idx, &p)?;
            records.push(ActionRecord { step, t, action });
        }
        Ok((ActionLog { records }, total))
    }
}

/// Bit-exact equality via the canonical binary encoding.
impl PartialEq for ActionLog {
    fn eq(&self, other: &Self) -> bool {
        self.encode() == other.encode()
    }
}

/// `(kind tag, index slot, 6 f64-bit parameter slots)` of an action.
fn encode_action(a: &Action) -> (u8, u64, [u64; 6]) {
    let mut p = [0u64; 6];
    match a {
        Action::SetGimbal {
            engine,
            target,
            rate,
        } => {
            p[0] = target[0].to_bits();
            p[1] = target[1].to_bits();
            p[2] = rate.to_bits();
            (1, *engine as u64, p)
        }
        Action::EngineOut { engine } => (2, *engine as u64, p),
        Action::SetBackpressure { pressure } => {
            p[0] = pressure.to_bits();
            (3, 0, p)
        }
        Action::SwapInflow {
            ambient_rho,
            ambient_p,
            mach,
            gamma,
            pressure_ratio,
            density_ratio,
        } => {
            for (slot, v) in p.iter_mut().zip([
                ambient_rho,
                ambient_p,
                mach,
                gamma,
                pressure_ratio,
                density_ratio,
            ]) {
                *slot = v.to_bits();
            }
            (4, 0, p)
        }
        Action::SetFixedDt { dt } => {
            if let Some(dt) = dt {
                p[0] = dt.to_bits();
                (5, 1, p)
            } else {
                (5, 0, p)
            }
        }
        Action::RequestCheckpoint => (6, 0, p),
    }
}

fn decode_action(kind: u8, idx: u64, p: &[u64; 6]) -> Result<Action, String> {
    let f = |s: usize| f64::from_bits(p[s]);
    Ok(match kind {
        1 => Action::SetGimbal {
            engine: idx as usize,
            target: [f(0), f(1)],
            rate: f(2),
        },
        2 => Action::EngineOut {
            engine: idx as usize,
        },
        3 => Action::SetBackpressure { pressure: f(0) },
        4 => Action::SwapInflow {
            ambient_rho: f(0),
            ambient_p: f(1),
            mach: f(2),
            gamma: f(3),
            pressure_ratio: f(4),
            density_ratio: f(5),
        },
        5 => Action::SetFixedDt {
            dt: (idx != 0).then(|| f(0)),
        },
        6 => Action::RequestCheckpoint,
        other => return Err(format!("unknown action kind tag {other}")),
    })
}

/// Why an action could not be applied.
#[derive(Debug, Clone, PartialEq)]
pub enum ActuateError {
    /// The solver (or its installed boundary profile) cannot apply this
    /// action kind.
    Unsupported(String),
    /// The action's parameters are out of range for the current state
    /// (engine index past the array, non-positive pressure, ...).
    InvalidAction(String),
}

impl std::fmt::Display for ActuateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ActuateError::Unsupported(m) => write!(f, "unsupported action: {m}"),
            ActuateError::InvalidAction(m) => write!(f, "invalid action: {m}"),
        }
    }
}

impl std::error::Error for ActuateError {}

/// Apply [`Action`]s at step boundaries. Implemented by `igr_core::Solver`
/// (any scheme, single-block BC ghosts) and `igr_species::SpeciesSolver`.
///
/// `t` is the simulation time the action is applied at — the step-boundary
/// clock during a live run, the *recorded* time during a resume replay, so
/// slew ramps rebuild identically either way.
pub trait Actuate {
    /// Apply one action. Errors must leave the solver unchanged.
    fn actuate(&mut self, action: &Action, t: f64) -> Result<(), ActuateError>;
}

/// Re-apply a log against a freshly built solver — the resume path.
/// [`Action::RequestCheckpoint`] records are skipped (they never mutated the
/// solver).
pub fn replay<A: Actuate + ?Sized>(log: &ActionLog, sys: &mut A) -> Result<(), ActuateError> {
    for rec in log.records() {
        if !matches!(rec.action, Action::RequestCheckpoint) {
            sys.actuate(&rec.action, rec.t)?;
        }
    }
    Ok(())
}

/// The jet array installed on a BC surface, if any, together with every
/// engine's current gimbal angles at time `t` (schedules evaluated). Lets
/// feedback controllers derive "current command" from the installed state
/// rather than internal memory — the stateless-controller pattern that
/// keeps controlled resumes bitwise (replay reconstructs the profile, and
/// with it the controller's view).
pub(crate) fn installed_jet_state(
    bcs: &igr_core::bc::BcSet,
    t: f64,
) -> Option<(JetArrayInflow, Vec<[f64; 2]>)> {
    for face in bcs.faces.iter().flatten() {
        if let Bc::InflowProfile(p) = face {
            let any = p.as_any()?;
            if let Some(j) = any.downcast_ref::<JetArrayInflow>() {
                let gimbals = j.engines.iter().map(|e| e.gimbal).collect();
                return Some((j.clone(), gimbals));
            }
            if let Some(s) = any.downcast_ref::<ScheduledJetInflow>() {
                let gimbals = (0..s.base.engines.len())
                    .map(|i| s.gimbal_at(i, t))
                    .collect();
                return Some((s.base.clone(), gimbals));
            }
            return None;
        }
    }
    None
}

/// Rewrite the jet profile behind an installed [`InflowProfile`] according
/// to `action`, returning the replacement profile. Instant-only outcomes
/// degenerate back to the memoizable static array.
fn mutate_jet_profile(
    profile: &dyn InflowProfile,
    action: &Action,
    t: f64,
) -> Result<Arc<dyn InflowProfile>, ActuateError> {
    let any = profile.as_any().ok_or_else(|| {
        ActuateError::Unsupported("installed inflow profile is not actuatable".into())
    })?;
    let mut s = if let Some(s) = any.downcast_ref::<ScheduledJetInflow>() {
        s.clone()
    } else if let Some(j) = any.downcast_ref::<JetArrayInflow>() {
        ScheduledJetInflow {
            base: j.clone(),
            schedules: Vec::new(),
        }
    } else {
        return Err(ActuateError::Unsupported(
            "installed inflow profile is not a jet array".into(),
        ));
    };
    apply_to_scheduled(&mut s, action, t)?;
    if s.schedules.is_empty() {
        // No time dependence left: reinstall as the static array so the
        // inflow-plane memoization keeps applying.
        Ok(Arc::new(s.base))
    } else {
        Ok(Arc::new(s))
    }
}

fn apply_to_scheduled(
    s: &mut ScheduledJetInflow,
    action: &Action,
    t: f64,
) -> Result<(), ActuateError> {
    let n = s.base.engines.len();
    let check = |engine: usize| {
        if engine >= n {
            Err(ActuateError::InvalidAction(format!(
                "engine index {engine} out of range (array has {n})"
            )))
        } else {
            Ok(())
        }
    };
    match action {
        Action::SetGimbal {
            engine,
            target,
            rate,
        } => {
            check(*engine)?;
            if !(rate.is_finite() && *rate >= 0.0) {
                return Err(ActuateError::InvalidAction(format!(
                    "slew rate {rate} must be finite and >= 0"
                )));
            }
            let current = s.gimbal_at(*engine, t);
            s.schedules.retain(|(e, _)| e != engine);
            if *rate > 0.0 {
                s.schedules.push((
                    *engine,
                    GimbalSchedule::ramp_at_rate(t, current, *target, *rate),
                ));
            } else {
                s.base.engines[*engine].gimbal = *target;
            }
        }
        Action::EngineOut { engine } => {
            check(*engine)?;
            s.base.engines.remove(*engine);
            s.schedules.retain(|(e, _)| e != engine);
            for (e, _) in &mut s.schedules {
                if *e > *engine {
                    *e -= 1;
                }
            }
        }
        Action::SetBackpressure { pressure } => {
            if !(pressure.is_finite() && *pressure > 0.0) {
                return Err(ActuateError::InvalidAction(format!(
                    "ambient pressure {pressure} must be finite and positive"
                )));
            }
            // Keep the engine exit state fixed; only the ambient (and, via
            // the ratios, the expansion regime) changes — the mid-run
            // analogue of `JetConditions::mach10_at_altitude`.
            let cond = &mut s.base.conditions;
            let exit = cond.exit_state(s.base.flow_dim);
            cond.ambient = Prim::new(*pressure, [0.0; 3], *pressure);
            cond.pressure_ratio = exit.p / pressure;
            cond.density_ratio = exit.rho / pressure;
        }
        Action::SwapInflow {
            ambient_rho,
            ambient_p,
            mach,
            gamma,
            pressure_ratio,
            density_ratio,
        } => {
            for (name, v) in [
                ("ambient_rho", ambient_rho),
                ("ambient_p", ambient_p),
                ("mach", mach),
                ("gamma", gamma),
                ("pressure_ratio", pressure_ratio),
                ("density_ratio", density_ratio),
            ] {
                if !(v.is_finite() && *v > 0.0) {
                    return Err(ActuateError::InvalidAction(format!(
                        "{name} {v} must be finite and positive"
                    )));
                }
            }
            let cond = &mut s.base.conditions;
            cond.ambient = Prim::new(*ambient_rho, [0.0; 3], *ambient_p);
            cond.mach = *mach;
            cond.gamma = *gamma;
            cond.pressure_ratio = *pressure_ratio;
            cond.density_ratio = *density_ratio;
        }
        Action::SetFixedDt { .. } | Action::RequestCheckpoint => {
            unreachable!("handled before the jet path")
        }
    }
    Ok(())
}

/// The jet path shared by every solver flavor that owns a [`BcSet`]:
/// find the installed inflow-profile face, rewrite it, reinstall.
fn actuate_jet_on_bcs(
    bcs: &mut igr_core::bc::BcSet,
    action: &Action,
    t: f64,
) -> Result<(), ActuateError> {
    let mut found = None;
    'faces: for d in 0..3 {
        for side in 0..2 {
            if let Bc::InflowProfile(p) = &bcs.faces[d][side] {
                found = Some((d, side, p.clone()));
                break 'faces;
            }
        }
    }
    let (d, side, profile) = found.ok_or_else(|| {
        ActuateError::Unsupported("no inflow-profile boundary face to actuate".into())
    })?;
    let replacement = mutate_jet_profile(profile.as_ref(), action, t)?;
    bcs.faces[d][side] = Bc::InflowProfile(replacement);
    Ok(())
}

/// The single-block solver applies every action kind: dt policy directly,
/// jet actions by rewriting the installed inflow profile through the BC
/// surface (and invalidating the memoized inflow planes so the next ghost
/// fill re-evaluates the new boundary).
impl<R, S, Sch> Actuate for Solver<R, S, Sch, BcGhostOps>
where
    R: Real,
    S: Storage<R>,
    Sch: RhsScheme<R, S>,
{
    fn actuate(&mut self, action: &Action, t: f64) -> Result<(), ActuateError> {
        match action {
            Action::SetFixedDt { dt } => {
                self.fixed_dt = *dt;
                Ok(())
            }
            Action::RequestCheckpoint => Ok(()),
            jet_action => {
                actuate_jet_on_bcs(&mut self.ghost.bcs, jet_action, t)?;
                self.ghost.invalidate_inflow_cache();
                Ok(())
            }
        }
    }
}

/// Decomposed solvers apply the same action set: every rank holds the full
/// [`igr_core::bc::BcSet`] and mutates it with identical parameters, so the
/// actuated boundary state stays rank-count invariant (each rank's wall
/// faces re-evaluate the same rewritten profile after its inflow cache is
/// invalidated).
impl<R, S, Sch> Actuate for Solver<R, S, Sch, crate::parallel::HaloGhostOps>
where
    R: Real + igr_comm::CommData,
    S: Storage<R>,
    Sch: RhsScheme<R, S>,
{
    fn actuate(&mut self, action: &Action, t: f64) -> Result<(), ActuateError> {
        match action {
            Action::SetFixedDt { dt } => {
                self.fixed_dt = *dt;
                Ok(())
            }
            Action::RequestCheckpoint => Ok(()),
            jet_action => {
                actuate_jet_on_bcs(&mut self.ghost.bcs, jet_action, t)?;
                self.ghost.invalidate_inflow_cache();
                Ok(())
            }
        }
    }
}

/// The two-fluid solver has no jet-array boundary surface (its inflow
/// profiles are `MixInflowProfile`s), so only the dt policy is actuatable;
/// jet actions are refused.
impl<R, S> Actuate for SpeciesSolver<R, S>
where
    R: Real,
    S: Storage<R>,
{
    fn actuate(&mut self, action: &Action, _t: f64) -> Result<(), ActuateError> {
        match action {
            Action::SetFixedDt { dt } => {
                self.fixed_dt = *dt;
                Ok(())
            }
            Action::RequestCheckpoint => Ok(()),
            other => Err(ActuateError::Unsupported(format!(
                "species solver cannot apply {}",
                other.kind_name()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases;
    use igr_prec::StoreF64;

    fn nontrivial_log() -> ActionLog {
        let mut log = ActionLog::new();
        log.record(
            5,
            0.125,
            Action::SetGimbal {
                engine: 2,
                target: [0.1, -0.05],
                rate: 0.25,
            },
        );
        log.record(9, 0.25, Action::EngineOut { engine: 0 });
        log.record(12, 0.375, Action::SetBackpressure { pressure: 0.1 });
        log.record(
            15,
            0.5,
            Action::SwapInflow {
                ambient_rho: 0.2,
                ambient_p: 0.2,
                mach: 8.0,
                gamma: 1.3,
                pressure_ratio: 5.0,
                density_ratio: 5.0,
            },
        );
        log.record(18, 0.625, Action::SetFixedDt { dt: Some(1e-4) });
        log.record(20, 0.75, Action::SetFixedDt { dt: None });
        log.record(22, 0.875, Action::RequestCheckpoint);
        log
    }

    #[test]
    fn binary_roundtrip_is_bit_exact_including_nonfinite() {
        let mut log = nontrivial_log();
        // Non-finite parameters must survive bit-for-bit (payload NaNs too).
        log.record(
            u64::MAX,
            f64::NAN,
            Action::SetGimbal {
                engine: usize::MAX >> 1,
                target: [f64::INFINITY, f64::NEG_INFINITY],
                rate: f64::from_bits(0x7ff8_dead_beef_cafe),
            },
        );
        let bytes = log.encode();
        let back = ActionLog::decode(&bytes).unwrap();
        assert_eq!(back, log, "bit-exact round-trip");
        assert_eq!(back.encode(), bytes, "re-encode is byte-identical");
    }

    #[test]
    fn decode_refuses_garbage_and_truncation() {
        assert!(ActionLog::decode(b"nope").is_err());
        let mut bytes = nontrivial_log().encode();
        bytes.pop();
        assert!(ActionLog::decode(&bytes).is_err());
        let empty = ActionLog::new().encode();
        assert_eq!(ActionLog::decode(&empty).unwrap(), ActionLog::new());
    }

    #[test]
    fn gimbal_retarget_rewrites_the_installed_profile() {
        let case = cases::engine_row_2d(48, 3, crate::jets::JetConditions::mach10());
        let mut solver = case.igr_solver::<f64, StoreF64>();
        solver
            .actuate(
                &Action::SetGimbal {
                    engine: 1,
                    target: [0.2, 0.0],
                    rate: 0.0,
                },
                0.0,
            )
            .unwrap();
        // The installed profile now reports the new gimbal on engine 1.
        let jet = installed_jet(&solver.ghost.bcs);
        assert_eq!(jet.engines[1].gimbal, [0.2, 0.0]);
        // Instant retarget keeps the static (memoizable) array.
        assert!(!installed_profile(&solver.ghost.bcs).time_varying());
    }

    #[test]
    fn ramped_retarget_installs_a_schedule_anchored_at_t() {
        let case = cases::engine_row_2d(48, 3, crate::jets::JetConditions::mach10());
        let mut solver = case.igr_solver::<f64, StoreF64>();
        solver
            .actuate(
                &Action::SetGimbal {
                    engine: 0,
                    target: [0.1, 0.0],
                    rate: 0.5,
                },
                2.0,
            )
            .unwrap();
        let profile = installed_profile(&solver.ghost.bcs);
        assert!(
            profile.time_varying(),
            "ramp makes the profile time-varying"
        );
        let sched = profile
            .as_any()
            .unwrap()
            .downcast_ref::<ScheduledJetInflow>()
            .unwrap();
        assert_eq!(sched.gimbal_at(0, 2.0), [0.0, 0.0], "starts at current");
        assert_eq!(sched.gimbal_at(0, 2.2), [0.1, 0.0], "0.1 rad at 0.5/t");
    }

    #[test]
    fn engine_out_removes_and_remaps() {
        let case = cases::engine_row_2d(48, 3, crate::jets::JetConditions::mach10());
        let mut solver = case.igr_solver::<f64, StoreF64>();
        let before = installed_jet(&solver.ghost.bcs).engines.clone();
        solver
            .actuate(&Action::EngineOut { engine: 1 }, 0.0)
            .unwrap();
        let after = installed_jet(&solver.ghost.bcs).engines.clone();
        assert_eq!(after.len(), before.len() - 1);
        assert_eq!(after[0], before[0]);
        assert_eq!(after[1], before[2]);
        // Out-of-range engine is refused without mutating anything.
        let err = solver
            .actuate(&Action::EngineOut { engine: 99 }, 0.0)
            .unwrap_err();
        assert!(matches!(err, ActuateError::InvalidAction(_)));
        assert_eq!(installed_jet(&solver.ghost.bcs).engines.len(), 2);
    }

    #[test]
    fn backpressure_keeps_the_exit_state_fixed() {
        let case = cases::engine_row_2d(48, 3, crate::jets::JetConditions::mach10());
        let mut solver = case.igr_solver::<f64, StoreF64>();
        let exit_before = installed_jet(&solver.ghost.bcs).conditions.exit_state(1);
        solver
            .actuate(&Action::SetBackpressure { pressure: 0.1 }, 0.0)
            .unwrap();
        let cond = installed_jet(&solver.ghost.bcs).conditions;
        let exit_after = cond.exit_state(1);
        assert!((cond.ambient.p - 0.1).abs() < 1e-15);
        assert!((exit_after.p - exit_before.p).abs() < 1e-12);
        assert!((exit_after.rho - exit_before.rho).abs() < 1e-12);
    }

    #[test]
    fn replay_reconstructs_the_identical_boundary() {
        let case = cases::engine_row_2d(48, 3, crate::jets::JetConditions::mach10());
        let mut live = case.igr_solver::<f64, StoreF64>();
        let mut log = ActionLog::new();
        for (step, t, a) in [
            (
                4u64,
                0.01,
                Action::SetGimbal {
                    engine: 2,
                    target: [0.15, 0.0],
                    rate: 0.75,
                },
            ),
            (8, 0.02, Action::EngineOut { engine: 0 }),
            (12, 0.03, Action::SetBackpressure { pressure: 0.5 }),
        ] {
            live.actuate(&a, t).unwrap();
            log.record(step, t, a);
        }
        let mut resumed = case.igr_solver::<f64, StoreF64>();
        replay(&log, &mut resumed).unwrap();
        // Both installed profiles evaluate identically everywhere/everywhen.
        let (pl, pr) = (
            installed_profile(&live.ghost.bcs),
            installed_profile(&resumed.ghost.bcs),
        );
        for t in [0.0, 0.025, 0.2, 1.0] {
            for x in [-0.4, -0.1, 0.0, 0.2, 0.45] {
                let a = pl.prim([x, 0.0, 0.0], t);
                let b = pr.prim([x, 0.0, 0.0], t);
                assert_eq!(a.rho.to_bits(), b.rho.to_bits());
                assert_eq!(a.p.to_bits(), b.p.to_bits());
                for d in 0..3 {
                    assert_eq!(a.vel[d].to_bits(), b.vel[d].to_bits());
                }
            }
        }
    }

    #[test]
    fn species_solver_supports_only_dt_policy() {
        use igr_grid::{Domain, GridShape};
        use igr_species::eos::MixPrim;
        use igr_species::{species_solver, SpeciesConfig, SpeciesState};
        let shape = GridShape::new(16, 1, 1, 3);
        let domain = Domain::unit(shape);
        let cfg = SpeciesConfig::default();
        let mut q = SpeciesState::zeros(shape);
        q.set_prim_field(&domain, &cfg.eos, |_| {
            MixPrim::new([0.5, 0.5], [0.0; 3], 1.0, 0.5)
        });
        let mut solver = species_solver::<f64, StoreF64>(cfg, domain, q);
        solver
            .actuate(&Action::SetFixedDt { dt: Some(1e-3) }, 0.0)
            .unwrap();
        assert_eq!(solver.fixed_dt, Some(1e-3));
        let err = solver
            .actuate(&Action::EngineOut { engine: 0 }, 0.0)
            .unwrap_err();
        assert!(matches!(err, ActuateError::Unsupported(_)));
    }

    fn installed_profile(bcs: &igr_core::bc::BcSet) -> Arc<dyn InflowProfile> {
        for d in 0..3 {
            for side in 0..2 {
                if let Bc::InflowProfile(p) = &bcs.faces[d][side] {
                    return p.clone();
                }
            }
        }
        panic!("no inflow profile installed");
    }

    fn installed_jet(bcs: &igr_core::bc::BcSet) -> JetArrayInflow {
        let p = installed_profile(bcs);
        let any = p.as_any().unwrap();
        if let Some(j) = any.downcast_ref::<JetArrayInflow>() {
            j.clone()
        } else if let Some(s) = any.downcast_ref::<ScheduledJetInflow>() {
            s.base.clone()
        } else {
            panic!("installed profile is not a jet array")
        }
    }
}
