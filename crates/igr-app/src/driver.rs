//! The unified run-loop: one instrumented way to march **any** solver.
//!
//! Every workload in this repro used to hand-roll its own stepping loop —
//! examples, figure bins, the campaign executor, and the species solver each
//! re-implemented "step until X while watching Y". This module replaces
//! those loops with one composable surface:
//!
//! * [`Steppable`] — the minimal march contract (time, `stable_dt`,
//!   `step() → StepInfo`), implemented by `igr_core::Solver` (any scheme)
//!   and `igr_species::SpeciesSolver`;
//! * [`Probe`] — scheme-agnostic flow sampling ([`Sample`]) for
//!   diagnostics-driven observers and stop rules;
//! * [`Checkpointable`] — bit-exact capture/restore, built on the
//!   [`Checkpoint`] format (state + Σ + clock + pinned dt), powering
//!   [`CheckpointObserver`] autosaves and [`Driver::resume_from`];
//! * [`Observer`]s with [`Cadence`]s — every-N-steps, every-Δt of
//!   simulation time, or wall-clock intervals;
//! * [`StopCondition`]s — `t_end` (never overshooting — the driver clips
//!   the final steps exactly like the old `run_until`), max steps,
//!   wall-clock budget, NaN/divergence guard, steady-state residual;
//! * a progress/abort hook ([`Driver::on_progress`]);
//! * [`Controller`]s — the **act** phase of the two-phase loop. Observers
//!   stay read-only; controllers return typed [`Action`] requests after
//!   observing a step, and [`Driver::run_controlled`] applies them at the
//!   step boundary through [`crate::actions::Actuate`], appending every
//!   applied action to the driver's [`ActionLog`]. The log rides in
//!   checkpoints, so [`Driver::resume_controlled`] replays a mutated run
//!   bitwise (see docs/DRIVER.md "Controllers & determinism").
//!
//! ```
//! use igr_app::cases;
//! use igr_app::diagnostics::History;
//! use igr_app::driver::{Cadence, DiagnosticsObserver, Driver};
//! use igr_prec::StoreF64;
//!
//! let case = cases::steepening_wave(64, 0.3);
//! let mut solver = case.igr_solver::<f64, StoreF64>();
//! let mut history = History::new();
//! let summary = Driver::new()
//!     .until(0.05)
//!     .max_steps(10_000)
//!     .observe(Cadence::EverySteps(5), DiagnosticsObserver::new(&mut history))
//!     .run(&mut solver)
//!     .unwrap();
//! assert!((solver.t() - 0.05).abs() < 1e-12, "t_end is hit exactly");
//! assert!(!history.samples.is_empty());
//! # let _ = summary;
//! ```

use crate::actions::{installed_jet_state, Action, ActionLog, Actuate};
use crate::checkpoint::{Checkpoint, CheckpointError, CheckpointScalar};
use crate::diagnostics::{sample_state, History, Sample};
use crate::recovery::RecoveryLog;
use igr_core::solver::{BcGhostOps, GhostOps, RhsScheme, Solver, SolverError, StepInfo};
use igr_core::IgrScheme;
use igr_grid::Domain;
use igr_prec::{Real, Storage};
use igr_species::SpeciesSolver;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// The march contracts
// ---------------------------------------------------------------------------

/// The minimal time-marching contract the [`Driver`] needs.
///
/// Implementors: `igr_core::Solver` (IGR and the WENO baseline alike) and
/// `igr_species::SpeciesSolver`. The `fixed_dt` accessors let the driver
/// clip the final steps of a `t_end` run without overshooting, restoring
/// the caller's pinned dt afterwards.
pub trait Steppable {
    /// Current simulated time.
    fn time(&self) -> f64;
    /// Steps taken since construction (or since the restored checkpoint).
    fn steps_taken(&self) -> usize;
    /// CFL-limited time step for the current state.
    fn stable_dt(&self) -> f64;
    /// The pinned time step, if any.
    fn fixed_dt(&self) -> Option<f64>;
    /// Pin (or unpin) the time step.
    fn set_fixed_dt(&mut self, dt: Option<f64>);
    /// Advance one step.
    fn step(&mut self) -> Result<StepInfo, SolverError>;
    /// The domain being marched on.
    fn domain(&self) -> &Domain;
    /// First non-finite conserved value, if any (divergence guard).
    fn find_non_finite(&self) -> Option<(usize, (i32, i32, i32))>;
}

/// Scheme-agnostic flow sampling: what diagnostics observers and
/// steady-state stop rules read. Both solvers map their state onto the
/// single [`Sample`] record (the two-fluid solver reports mixture totals).
pub trait Probe: Steppable {
    /// Sample the current flow state.
    fn probe(&self) -> Sample;
}

/// Bit-exact capture/restore of everything a resumed run needs: conserved
/// state, Σ (warm-start trajectory), clock, and pinned dt.
pub trait Checkpointable: Steppable {
    /// Snapshot the current state.
    fn capture(&self) -> Checkpoint;
    /// Restore a snapshot (shape/precision validated), including the march
    /// clock and pinned dt.
    fn restore(&mut self, ck: &Checkpoint) -> Result<(), CheckpointError>;
}

/// Solvers that can write a VTK snapshot of their current state (the
/// [`VtkObserver`] contract).
pub trait VtkSnapshot: Steppable {
    /// Write the visualization bundle for the current state.
    fn write_vtk(&self, path: &Path, title: &str) -> std::io::Result<()>;
}

// ---------------------------------------------------------------------------
// Trait implementations for the solvers
// ---------------------------------------------------------------------------

impl<R, S, Sch, G> Steppable for Solver<R, S, Sch, G>
where
    R: Real,
    S: Storage<R>,
    Sch: RhsScheme<R, S>,
    G: GhostOps<R, S>,
{
    fn time(&self) -> f64 {
        self.t()
    }
    fn steps_taken(&self) -> usize {
        Solver::steps_taken(self)
    }
    fn stable_dt(&self) -> f64 {
        Solver::stable_dt(self)
    }
    fn fixed_dt(&self) -> Option<f64> {
        self.fixed_dt
    }
    fn set_fixed_dt(&mut self, dt: Option<f64>) {
        self.fixed_dt = dt;
    }
    fn step(&mut self) -> Result<StepInfo, SolverError> {
        Solver::step(self)
    }
    fn domain(&self) -> &Domain {
        Solver::domain(self)
    }
    fn find_non_finite(&self) -> Option<(usize, (i32, i32, i32))> {
        self.q.find_non_finite()
    }
}

impl<R, S, Sch, G> Probe for Solver<R, S, Sch, G>
where
    R: Real,
    S: Storage<R>,
    Sch: RhsScheme<R, S>,
    G: GhostOps<R, S>,
{
    fn probe(&self) -> Sample {
        let gamma = self.scheme.params().gamma;
        sample_state(
            &self.q,
            Solver::domain(self),
            gamma,
            Solver::steps_taken(self),
            self.t(),
        )
    }
}

impl<R, S, Sch, G> VtkSnapshot for Solver<R, S, Sch, G>
where
    R: Real,
    S: Storage<R>,
    Sch: RhsScheme<R, S>,
    G: GhostOps<R, S>,
{
    fn write_vtk(&self, path: &Path, title: &str) -> std::io::Result<()> {
        let gamma = self.scheme.params().gamma;
        crate::vtk::write_state_vtk(path, title, &self.q, Solver::domain(self), gamma)
    }
}

/// The IGR solver checkpoints its Σ field alongside the conserved state, so
/// a restored run's warm-started elliptic solve stays on the identical
/// trajectory.
impl<R, S, G> Checkpointable for Solver<R, S, IgrScheme<R, S>, G>
where
    R: Real,
    S: Storage<R>,
    S::Packed: CheckpointScalar,
    G: GhostOps<R, S>,
{
    fn capture(&self) -> Checkpoint {
        Checkpoint::capture_fields(
            &self.q.fields(),
            Some(self.scheme.sigma()),
            self.t(),
            Solver::steps_taken(self),
            self.fixed_dt,
        )
    }

    fn restore(&mut self, ck: &Checkpoint) -> Result<(), CheckpointError> {
        ck.restore_fields(&mut self.q.fields_mut(), Some(self.scheme.sigma_mut()))?;
        self.reset_clock(ck.t, ck.step);
        self.fixed_dt = ck.fixed_dt;
        Ok(())
    }
}

/// The WENO baseline recomputes every per-step buffer from the conserved
/// state, so its snapshot is the state plus the clock — no Σ.
impl<R, S, G> Checkpointable for Solver<R, S, igr_baseline::WenoHllcScheme<R, S>, G>
where
    R: Real,
    S: Storage<R>,
    S::Packed: CheckpointScalar,
    G: GhostOps<R, S>,
{
    fn capture(&self) -> Checkpoint {
        Checkpoint::capture_fields(
            &self.q.fields(),
            None,
            self.t(),
            Solver::steps_taken(self),
            self.fixed_dt,
        )
    }

    fn restore(&mut self, ck: &Checkpoint) -> Result<(), CheckpointError> {
        ck.restore_fields(&mut self.q.fields_mut(), None)?;
        self.reset_clock(ck.t, ck.step);
        self.fixed_dt = ck.fixed_dt;
        Ok(())
    }
}

impl<R, S> Steppable for SpeciesSolver<R, S>
where
    R: Real,
    S: Storage<R>,
{
    fn time(&self) -> f64 {
        self.t()
    }
    fn steps_taken(&self) -> usize {
        SpeciesSolver::steps_taken(self)
    }
    fn stable_dt(&self) -> f64 {
        SpeciesSolver::stable_dt(self)
    }
    fn fixed_dt(&self) -> Option<f64> {
        self.fixed_dt
    }
    fn set_fixed_dt(&mut self, dt: Option<f64>) {
        self.fixed_dt = dt;
    }
    fn step(&mut self) -> Result<StepInfo, SolverError> {
        SpeciesSolver::step(self)
    }
    fn domain(&self) -> &Domain {
        SpeciesSolver::domain(self)
    }
    fn find_non_finite(&self) -> Option<(usize, (i32, i32, i32))> {
        self.q.find_non_finite()
    }
}

impl<R, S> Probe for SpeciesSolver<R, S>
where
    R: Real,
    S: Storage<R>,
{
    /// Two-fluid probe: totals report the *mixture* (ρ₁+ρ₂ as mass, the
    /// shared momenta and energy), Mach uses the mixture sound speed.
    fn probe(&self) -> Sample {
        use igr_species::eos::{I_E, I_MX, I_R1, I_R2};
        let eos = &self.cfg.eos;
        let domain = SpeciesSolver::domain(self);
        let shape = self.q.shape();
        let vol = domain.cell_volume();
        let mut ke = 0.0f64;
        let mut max_mach = 0.0f64;
        let mut min_rho = f64::INFINITY;
        for k in 0..shape.nz as i32 {
            for j in 0..shape.ny as i32 {
                for i in 0..shape.nx as i32 {
                    let pr = self.q.prim_at(i, j, k, eos);
                    let rho = pr.rho().to_f64();
                    let speed2 = pr.vel.iter().map(|v| v.to_f64().powi(2)).sum::<f64>();
                    ke += 0.5 * rho * speed2;
                    let c = pr.sound_speed(eos).to_f64();
                    if c > 0.0 {
                        max_mach = max_mach.max(speed2.sqrt() / c);
                    }
                    min_rho = min_rho.min(rho);
                }
            }
        }
        let t7 = self.q.totals(domain);
        Sample {
            step: SpeciesSolver::steps_taken(self),
            t: self.t(),
            totals: [
                t7[I_R1] + t7[I_R2],
                t7[I_MX],
                t7[I_MX + 1],
                t7[I_MX + 2],
                t7[I_E],
            ],
            kinetic_energy: ke * vol,
            max_mach,
            min_rho,
        }
    }
}

impl<R, S> Checkpointable for SpeciesSolver<R, S>
where
    R: Real,
    S: Storage<R>,
    S::Packed: CheckpointScalar,
{
    fn capture(&self) -> Checkpoint {
        Checkpoint::capture_fields(
            &self.q.fields(),
            Some(self.sigma()),
            self.t(),
            SpeciesSolver::steps_taken(self),
            self.fixed_dt,
        )
    }

    fn restore(&mut self, ck: &Checkpoint) -> Result<(), CheckpointError> {
        // Split the borrow: fields_mut() and sigma_mut() both take &mut self.
        let (t, step, fixed_dt) = (ck.t, ck.step, ck.fixed_dt);
        ck.restore_fields(&mut self.q.fields_mut(), None)?;
        // `restore_fields` with `None` sigma succeeds on a sigma-carrying
        // snapshot; pull Σ explicitly afterwards.
        ck.restore_sigma_into(self.sigma_mut())?;
        self.reset_clock(t, step);
        self.fixed_dt = fixed_dt;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Observers
// ---------------------------------------------------------------------------

/// How often an observer (or the progress hook) fires.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Cadence {
    /// After every step.
    EveryStep,
    /// Every `n` steps, aligned to the absolute step counter (so a resumed
    /// run fires on the same steps the uninterrupted run would).
    EverySteps(usize),
    /// Whenever at least `Δt` of *simulation* time has passed since the
    /// last firing.
    EveryTime(f64),
    /// Whenever at least this much wall-clock time has passed since the
    /// last firing.
    EveryWall(Duration),
}

/// Per-observer cadence bookkeeping.
struct CadenceState {
    last_t: f64,
    last_wall: Instant,
}

impl Cadence {
    fn validate(&self) {
        match self {
            Cadence::EverySteps(n) => assert!(*n >= 1, "EverySteps cadence needs n >= 1"),
            Cadence::EveryTime(dt) => assert!(*dt > 0.0, "EveryTime cadence needs dt > 0"),
            _ => {}
        }
    }

    fn fires(&self, state: &mut CadenceState, info: &StepInfo) -> bool {
        match self {
            Cadence::EveryStep => true,
            Cadence::EverySteps(n) => info.step % n == 0,
            Cadence::EveryTime(dt) => {
                if info.t >= state.last_t + dt {
                    state.last_t = info.t;
                    true
                } else {
                    false
                }
            }
            Cadence::EveryWall(d) => {
                if state.last_wall.elapsed() >= *d {
                    state.last_wall = Instant::now();
                    true
                } else {
                    false
                }
            }
        }
    }
}

/// Anything the driver can fail with.
#[derive(Debug)]
pub enum DriverError {
    /// The solver itself failed (NaN blow-up, degenerate dt).
    Solver(SolverError),
    /// An observer's I/O failed (VTK/CSV write).
    Io(std::io::Error),
    /// Checkpoint save/load/restore failed.
    Checkpoint(CheckpointError),
    /// A controller-requested action could not be applied (unsupported by
    /// the solver, parameters out of range, or `RequestCheckpoint` without
    /// a configured [`Driver::checkpoint_to`] path).
    Action(String),
    /// [`StopCondition::DivergenceGuard`] tripped: the flow is blowing up
    /// (KE growth or positivity loss) even though every value is still
    /// finite. Recoverable via [`Driver::run_recovered`].
    Diverged {
        /// Absolute step the guard tripped at.
        step: usize,
        /// Kinetic energy at the trip.
        kinetic_energy: f64,
        /// Kinetic energy at the previous probe (NaN if none).
        prev: f64,
    },
    /// A recovered run rolled back `retries` times within one backoff
    /// chain without getting past the trip — the divergence is persistent,
    /// not transient.
    RetriesExhausted {
        /// Absolute step the final trip happened at.
        step: usize,
        /// The policy's retry budget that was exhausted.
        retries: usize,
    },
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriverError::Solver(e) => write!(f, "solver: {e}"),
            DriverError::Io(e) => write!(f, "observer I/O: {e}"),
            DriverError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
            DriverError::Action(m) => write!(f, "action: {m}"),
            DriverError::Diverged {
                step,
                kinetic_energy,
                prev,
            } => write!(
                f,
                "diverged at step {step}: kinetic energy {kinetic_energy:e} (was {prev:e})"
            ),
            DriverError::RetriesExhausted { step, retries } => write!(
                f,
                "recovery retries exhausted: still diverged at step {step} after {retries} rollbacks"
            ),
        }
    }
}

impl std::error::Error for DriverError {}

impl From<SolverError> for DriverError {
    fn from(e: SolverError) -> Self {
        DriverError::Solver(e)
    }
}
impl From<std::io::Error> for DriverError {
    fn from(e: std::io::Error) -> Self {
        DriverError::Io(e)
    }
}
impl From<CheckpointError> for DriverError {
    fn from(e: CheckpointError) -> Self {
        DriverError::Checkpoint(e)
    }
}

/// A composable run-loop instrument. Observers see the system immutably
/// *after* each step they fire on; they mutate only their own sinks
/// (history buffers, files on disk).
pub trait Observer<P: ?Sized> {
    /// Called after a step on which the observer's cadence fires.
    fn on_step(&mut self, sys: &P, info: &StepInfo) -> Result<(), DriverError>;
    /// Called once when the run ends (any stop reason; not on error).
    fn on_finish(&mut self, sys: &P) -> Result<(), DriverError> {
        let _ = sys;
        Ok(())
    }
}

/// Records a [`Sample`] time series into a caller-owned [`History`] — the
/// in-flight diagnostics every long campaign run wants (conserved-total
/// drift, kinetic energy, peak Mach, positivity watch).
pub struct DiagnosticsObserver<'h> {
    history: &'h mut History,
}

impl<'h> DiagnosticsObserver<'h> {
    pub fn new(history: &'h mut History) -> Self {
        DiagnosticsObserver { history }
    }
}

impl<P: Probe + ?Sized> Observer<P> for DiagnosticsObserver<'_> {
    fn on_step(&mut self, sys: &P, _info: &StepInfo) -> Result<(), DriverError> {
        self.history.push(sys.probe());
        Ok(())
    }
}

/// Snapshots per-phase wall-time totals from the `igr-obs` registry into a
/// caller-owned [`History`] at cadence: each firing records, per phase, the
/// seconds and span count accumulated *since the previous firing* (so the
/// series integrates to the run's phase breakdown). Construction enables
/// span recording globally ([`igr_obs::enable`]); it is left on afterwards
/// — instrumentation never perturbs FP results, only wall time.
pub struct MetricsObserver<'h> {
    history: &'h mut History,
    /// Per-phase `(total_ns, count)` at the previous firing.
    last: std::collections::BTreeMap<String, (u64, u64)>,
}

impl<'h> MetricsObserver<'h> {
    pub fn new(history: &'h mut History) -> Self {
        igr_obs::enable();
        // Deltas are measured against the registry as it stands now, not
        // against zero — a second instrumented run in the same process must
        // not inherit the first run's totals.
        let last = Self::totals(&igr_obs::Registry::global().snapshot());
        MetricsObserver { history, last }
    }

    fn totals(snap: &igr_obs::Snapshot) -> std::collections::BTreeMap<String, (u64, u64)> {
        snap.histograms
            .iter()
            .map(|h| (h.name.clone(), (h.total_ns, h.count)))
            .collect()
    }
}

impl<P: Steppable + ?Sized> Observer<P> for MetricsObserver<'_> {
    fn on_step(&mut self, _sys: &P, info: &StepInfo) -> Result<(), DriverError> {
        let now = Self::totals(&igr_obs::Registry::global().snapshot());
        let mut phases = Vec::new();
        for (name, (total_ns, count)) in &now {
            let (prev_ns, prev_n) = self.last.get(name).copied().unwrap_or((0, 0));
            let d_ns = total_ns.saturating_sub(prev_ns);
            let d_n = count.saturating_sub(prev_n);
            if d_n > 0 {
                phases.push((name.clone(), d_ns as f64 * 1e-9, d_n));
            }
        }
        self.last = now;
        self.history.push_phases(crate::diagnostics::PhaseSample {
            step: info.step,
            t: info.t,
            phases,
        });
        Ok(())
    }
}

/// Streams the `igr-obs` event buffer to a trace file when the run ends.
/// Construction enables span recording *and* event capture; `on_finish`
/// writes either a `chrome://tracing`-compatible `trace.json` or an
/// append-only JSONL event log, depending on the constructor used.
pub struct TraceObserver {
    path: PathBuf,
    chrome: bool,
}

impl TraceObserver {
    /// Write a `chrome://tracing` / Perfetto `trace.json` to `path` when
    /// the run finishes.
    pub fn chrome(path: impl Into<PathBuf>) -> Self {
        igr_obs::enable();
        igr_obs::Registry::global().set_capture_events(true);
        TraceObserver {
            path: path.into(),
            chrome: true,
        }
    }

    /// Write a JSON-lines event log to `path` when the run finishes.
    pub fn jsonl(path: impl Into<PathBuf>) -> Self {
        igr_obs::enable();
        igr_obs::Registry::global().set_capture_events(true);
        TraceObserver {
            path: path.into(),
            chrome: false,
        }
    }

    /// The output path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl<P: ?Sized> Observer<P> for TraceObserver {
    fn on_step(&mut self, _sys: &P, _info: &StepInfo) -> Result<(), DriverError> {
        Ok(())
    }

    fn on_finish(&mut self, _sys: &P) -> Result<(), DriverError> {
        let mut f = std::io::BufWriter::new(std::fs::File::create(&self.path)?);
        let reg = igr_obs::Registry::global();
        if self.chrome {
            reg.export_chrome_trace(&mut f)?;
        } else {
            reg.export_jsonl(&mut f)?;
        }
        use std::io::Write;
        f.flush()?;
        Ok(())
    }
}

/// Autosaves a restart file. Each firing captures a full bit-exact
/// [`Checkpoint`] and replaces the file atomically through the one shared
/// writer ([`Checkpoint::save_atomic`]: uniquely named tmp + rename), so a
/// crash mid-save leaves the previous restart intact and a concurrent
/// controller-requested snapshot on the same path can never interleave
/// bytes with an autosave.
pub struct CheckpointObserver {
    path: PathBuf,
    /// How many snapshots this observer has written.
    pub saved: usize,
}

impl CheckpointObserver {
    /// Autosave to `path`, overwriting (latest-wins restart-file semantics).
    pub fn autosave(path: impl Into<PathBuf>) -> Self {
        CheckpointObserver {
            path: path.into(),
            saved: 0,
        }
    }

    /// The restart-file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl<P: Checkpointable + ?Sized> Observer<P> for CheckpointObserver {
    fn on_step(&mut self, sys: &P, _info: &StepInfo) -> Result<(), DriverError> {
        sys.capture().save_atomic(&self.path)?;
        self.saved += 1;
        Ok(())
    }
}

/// Writes step-numbered VTK snapshots (`<stem>_NNNNNN.vtk`) for volume
/// rendering — the Fig. 1 pipeline as an observer.
pub struct VtkObserver {
    dir: PathBuf,
    stem: String,
    title: String,
    /// Paths written so far, in order.
    pub written: Vec<PathBuf>,
}

impl VtkObserver {
    pub fn new(dir: impl Into<PathBuf>, stem: impl Into<String>, title: impl Into<String>) -> Self {
        VtkObserver {
            dir: dir.into(),
            stem: stem.into(),
            title: title.into(),
            written: Vec::new(),
        }
    }
}

impl<P: VtkSnapshot + ?Sized> Observer<P> for VtkObserver {
    fn on_step(&mut self, sys: &P, info: &StepInfo) -> Result<(), DriverError> {
        let path = self.dir.join(format!("{}_{:06}.vtk", self.stem, info.step));
        sys.write_vtk(&path, &self.title)?;
        self.written.push(path);
        Ok(())
    }
}

/// Adapter turning a closure into an observer — the escape hatch for
/// bespoke per-run instrumentation (figure bins record custom series with
/// this instead of hand-rolling a loop).
pub struct FnObserver<F>(pub F);

impl<P: ?Sized, F> Observer<P> for FnObserver<F>
where
    F: FnMut(&P, &StepInfo) -> Result<(), DriverError>,
{
    fn on_step(&mut self, sys: &P, info: &StepInfo) -> Result<(), DriverError> {
        (self.0)(sys, info)
    }
}

// ---------------------------------------------------------------------------
// Controllers — the act phase
// ---------------------------------------------------------------------------

/// The act phase of the two-phase loop: after observing a step (same
/// immutable view as an [`Observer`]), a controller returns the [`Action`]s
/// it wants applied. The driver applies them **at the step boundary**, in
/// the order returned, through [`Actuate`], and appends each applied action
/// to the run's [`ActionLog`].
///
/// Determinism: a controller fired at a deterministic cadence
/// ([`Cadence::EverySteps`] is absolute-step aligned) whose decisions are a
/// pure function of `(sys, info)` yields the same action sequence on every
/// run — and because the log replays on resume, an interrupted controlled
/// run matches the uninterrupted one bitwise. Wall-clock cadences or
/// stateful controllers forfeit that.
pub trait Controller<P: ?Sized> {
    /// Observe the post-step state and return the actions to apply now.
    fn control(&mut self, sys: &P, info: &StepInfo) -> Vec<Action>;
}

/// A scripted controller: emits each `(step, action)` entry the first time
/// the run reaches (or passes) that absolute step. The injected-fault
/// workhorse — engine-out cascades and backpressure transients for tests
/// and examples.
pub struct ScheduledActions {
    schedule: Vec<(usize, Action)>,
    next: usize,
}

impl ScheduledActions {
    /// Build from `(absolute step, action)` pairs; entries are applied in
    /// step order (stable for equal steps).
    pub fn new(mut schedule: Vec<(usize, Action)>) -> Self {
        schedule.sort_by_key(|(s, _)| *s);
        ScheduledActions { schedule, next: 0 }
    }

    /// Drop entries at or before `step` — for resumed runs, where the
    /// checkpoint's replayed log already covers everything up to the
    /// snapshot step.
    pub fn skip_through(mut self, step: usize) -> Self {
        while self.next < self.schedule.len() && self.schedule[self.next].0 <= step {
            self.next += 1;
        }
        self
    }
}

impl<P: ?Sized> Controller<P> for ScheduledActions {
    fn control(&mut self, _sys: &P, info: &StepInfo) -> Vec<Action> {
        let mut out = Vec::new();
        while self.next < self.schedule.len() && self.schedule[self.next].0 <= info.step {
            out.push(self.schedule[self.next].1.clone());
            self.next += 1;
        }
        out
    }
}

/// Proportional feedback gimbal controller on the probe-sampled
/// thrust-asymmetry cost.
///
/// The cost signal is the flux-weighted backflow centroid of the base
/// plane ([`crate::base::BaseHeatingReport::footprint_centroid`]): on a
/// symmetric engine array it sits at the array centroid; an engine-out or
/// gimbal imbalance pushes it off-center. The controller steers every
/// engine's gimbal proportionally against that offset
/// (`target = clamp(-gain · offset, ±max_angle)`), emitting
/// [`Action::SetGimbal`] only when the correction exceeds `deadband`.
///
/// The controller is **stateless**: its output is a pure function of the
/// observed state and the installed inflow profile, so a resumed run (which
/// reconstructs the profile by replaying the action log) recomputes the
/// identical commands — controlled resume stays bitwise.
pub struct GimbalFeedbackController {
    /// Proportional gain mapping centroid offset (domain units) to gimbal
    /// angle (radians).
    pub gain: f64,
    /// Slew rate forwarded to [`Action::SetGimbal`]; 0 = instant retarget.
    pub rate: f64,
    /// Minimum command change (radians, per axis) worth acting on.
    pub deadband: f64,
    /// Gimbal authority limit (radians, per axis).
    pub max_angle: f64,
}

impl GimbalFeedbackController {
    /// A controller with the given gain, instant retargets, and the default
    /// deadband (1e-4 rad) and authority limit (0.35 rad ≈ 20°).
    pub fn with_gain(gain: f64) -> Self {
        GimbalFeedbackController {
            gain,
            rate: 0.0,
            deadband: 1e-4,
            max_angle: 0.35,
        }
    }
}

impl<R, S, Sch> Controller<Solver<R, S, Sch, BcGhostOps>> for GimbalFeedbackController
where
    R: Real,
    S: Storage<R>,
    Sch: RhsScheme<R, S>,
{
    fn control(&mut self, sys: &Solver<R, S, Sch, BcGhostOps>, info: &StepInfo) -> Vec<Action> {
        let Some((jet, gimbals)) = installed_jet_state(&sys.ghost.bcs, info.t) else {
            return Vec::new();
        };
        if jet.engines.is_empty() {
            return Vec::new();
        }
        let gamma = sys.scheme.params().gamma;
        let report =
            crate::base::BaseHeatingReport::measure(&sys.q, Solver::domain(sys), gamma, &jet);
        let n = jet.engines.len() as f64;
        let center = jet.engines.iter().fold([0.0f64; 2], |acc, e| {
            [acc[0] + e.center[0] / n, acc[1] + e.center[1] / n]
        });
        let offset = [
            report.footprint_centroid[0] - center[0],
            report.footprint_centroid[1] - center[1],
        ];
        if !(offset[0].is_finite() && offset[1].is_finite()) {
            // No backflow sampled (zero-flux centroid is NaN): nothing to
            // correct against yet.
            return Vec::new();
        }
        let target = [
            (-self.gain * offset[0]).clamp(-self.max_angle, self.max_angle),
            (-self.gain * offset[1]).clamp(-self.max_angle, self.max_angle),
        ];
        let mut out = Vec::new();
        for (i, g) in gimbals.iter().enumerate() {
            let delta = (target[0] - g[0]).abs().max((target[1] - g[1]).abs());
            if delta > self.deadband {
                out.push(Action::SetGimbal {
                    engine: i,
                    target,
                    rate: self.rate,
                });
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Stop conditions
// ---------------------------------------------------------------------------

/// Why a run may end. All conditions on a driver are checked every step;
/// the first that holds ends the run (its [`StopReason`] is reported).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StopCondition {
    /// March to `t_end` exactly (the driver clips the last steps so the run
    /// never overshoots, like the old `run_until`).
    TimeReached(f64),
    /// At most this many steps *in this run* (a resumed run gets a fresh
    /// budget).
    MaxSteps(usize),
    /// March to this **absolute** step count (`Steppable::steps_taken`),
    /// checked before each step — the recovery loop's window boundary,
    /// which must land on the same absolute steps whether the run is
    /// fresh, re-run after a rollback, or resumed from a checkpoint.
    StepReached(usize),
    /// Wall-clock budget for this run.
    WallClock(Duration),
    /// Scan the state for NaN/Inf every `every` steps and fail the run (as
    /// [`SolverError::NonFinite`]) if any — the guard for benchmark-style
    /// runs that disable the solver's own per-step check.
    NanGuard {
        /// Scan cadence in steps.
        every: usize,
    },
    /// Declare steady state when the relative change of volume-integrated
    /// kinetic energy between consecutive probes (taken every `every`
    /// steps) drops below `tol`.
    SteadyState {
        /// Probe cadence in steps.
        every: usize,
        /// Relative-change threshold.
        tol: f64,
    },
    /// Probe every `every` steps and fail the run
    /// ([`DriverError::Diverged`]) when the flow is blowing up *before*
    /// the NaNs arrive: kinetic energy non-finite or growing faster than
    /// `max_growth`× between consecutive probes, or density no longer
    /// positive. Catching the spike early keeps the recovery rollback
    /// window short.
    DivergenceGuard {
        /// Probe cadence in steps.
        every: usize,
        /// Maximum allowed KE ratio between consecutive probes (> 1).
        max_growth: f64,
    },
}

/// How a completed run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// [`StopCondition::TimeReached`] was hit (exactly).
    TimeReached,
    /// [`StopCondition::MaxSteps`] exhausted.
    MaxSteps,
    /// [`StopCondition::WallClock`] exhausted.
    WallClock,
    /// [`StopCondition::SteadyState`] held.
    SteadyState,
    /// [`StopCondition::StepReached`] was hit (absolute step count).
    StepReached,
    /// The progress hook returned `false`.
    Aborted,
}

/// What a completed (non-error) run did.
#[derive(Clone, Copy, Debug)]
pub struct RunSummary {
    /// Steps taken by this `run` call.
    pub steps: usize,
    /// Simulation time at the end.
    pub t: f64,
    /// Which condition ended the run.
    pub stop: StopReason,
    /// Wall-clock seconds spent inside `run`.
    pub wall_s: f64,
}

// ---------------------------------------------------------------------------
// The driver
// ---------------------------------------------------------------------------

type ProgressHook<'a, P> = Box<dyn FnMut(&P, &StepInfo) -> bool + 'a>;

/// Composable run-loop: observers + stop conditions + progress hook over
/// any [`Probe`]-capable solver. Build with the fluent methods, then call
/// [`Driver::run`] (repeatedly, if marching in segments — cadence state
/// resets per call, stop conditions persist).
pub struct Driver<'a, P: ?Sized> {
    observers: Vec<(Cadence, Box<dyn Observer<P> + 'a>)>,
    pub(crate) controllers: Vec<(Cadence, Box<dyn Controller<P> + 'a>)>,
    pub(crate) stops: Vec<StopCondition>,
    progress: Option<(Cadence, ProgressHook<'a, P>)>,
    /// Controlled-run checkpoint target: `(path, optional autosave cadence)`.
    pub(crate) checkpoint: Option<(PathBuf, Option<Cadence>)>,
    pub(crate) action_log: ActionLog,
    /// Rollbacks performed so far (filled by `run_recovered`, seeded on
    /// resume so the dt schedule replays bit-exactly).
    pub(crate) recovery_log: RecoveryLog,
    /// Chaos hook: poison one cell with NaN at this absolute step boundary
    /// (once, while the recovery log is empty).
    pub(crate) nan_injection: Option<usize>,
}

impl<'a, P: ?Sized> Default for Driver<'a, P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a, P: ?Sized> Driver<'a, P> {
    pub fn new() -> Self {
        Driver {
            observers: Vec::new(),
            controllers: Vec::new(),
            stops: Vec::new(),
            progress: None,
            checkpoint: None,
            action_log: ActionLog::new(),
            recovery_log: RecoveryLog::new(),
            nan_injection: None,
        }
    }

    /// Attach an observer at a cadence.
    pub fn observe(mut self, cadence: Cadence, obs: impl Observer<P> + 'a) -> Self {
        cadence.validate();
        self.observers.push((cadence, Box::new(obs)));
        self
    }

    /// Attach a controller at a cadence (requires [`Driver::run_controlled`]).
    /// Controllers fire after all observers and the progress hook, in
    /// attachment order; their actions apply at the step boundary, before
    /// the next step begins. Use [`Cadence::EverySteps`] (absolute-step
    /// aligned) for resume-deterministic control.
    pub fn control(mut self, cadence: Cadence, ctrl: impl Controller<P> + 'a) -> Self {
        cadence.validate();
        self.controllers.push((cadence, Box::new(ctrl)));
        self
    }

    /// Set the restart file controlled runs write: controller
    /// [`Action::RequestCheckpoint`]s snapshot here, and with
    /// `autosave = Some(cadence)` the driver also autosaves periodically.
    /// Both paths embed the current [`ActionLog`] and go through the one
    /// atomic writer ([`Checkpoint::save_atomic`]), so they can never race
    /// each other on the file.
    pub fn checkpoint_to(mut self, path: impl Into<PathBuf>, autosave: Option<Cadence>) -> Self {
        if let Some(c) = &autosave {
            c.validate();
        }
        self.checkpoint = Some((path.into(), autosave));
        self
    }

    /// Seed the action log (builder-style resume path: callers that restore
    /// and replay a snapshot themselves hand its log over here, so
    /// subsequent autosaves and [`Action::RequestCheckpoint`]s carry the
    /// full history).
    pub fn seed_actions(mut self, log: ActionLog) -> Self {
        self.action_log = log;
        self
    }

    /// The actions applied so far (across `run_controlled` calls, plus any
    /// seeded by [`Driver::resume_controlled`]).
    pub fn action_log(&self) -> &ActionLog {
        &self.action_log
    }

    /// Take ownership of the accumulated action log (leaves an empty one).
    pub fn take_action_log(&mut self) -> ActionLog {
        std::mem::take(&mut self.action_log)
    }

    /// Seed the recovery log (resume path for recovered runs: hand over the
    /// checkpoint's embedded log so [`Driver::run_recovered`] replays the
    /// identical dt schedule and does not re-fire the chaos injection).
    pub fn seed_recoveries(mut self, log: RecoveryLog) -> Self {
        self.recovery_log = log;
        self
    }

    /// Chaos-engineering hook: poison one cell with NaN when the run first
    /// reaches absolute step `step` (an injection, not physics — see
    /// [`crate::recovery::InjectNan`]). Fires once, and only while the
    /// recovery log is empty, so resumed mid-recovery runs stay bitwise.
    pub fn inject_nan_at(mut self, step: usize) -> Self {
        self.nan_injection = Some(step);
        self
    }

    /// The rollbacks performed so far (across `run_recovered` calls, plus
    /// any seeded for resume).
    pub fn recovery_log(&self) -> &RecoveryLog {
        &self.recovery_log
    }

    /// Take ownership of the accumulated recovery log (leaves an empty one).
    pub fn take_recovery_log(&mut self) -> RecoveryLog {
        std::mem::take(&mut self.recovery_log)
    }

    /// Add a stop condition (the first condition to hold ends the run).
    pub fn stop_when(mut self, cond: StopCondition) -> Self {
        if let StopCondition::NanGuard { every }
        | StopCondition::SteadyState { every, .. }
        | StopCondition::DivergenceGuard { every, .. } = &cond
        {
            assert!(*every >= 1, "stop-condition cadence needs every >= 1");
        }
        if let StopCondition::DivergenceGuard { max_growth, .. } = &cond {
            assert!(
                *max_growth > 1.0 && max_growth.is_finite(),
                "DivergenceGuard needs a finite max_growth > 1"
            );
        }
        self.stops.push(cond);
        self
    }

    /// Sugar for [`StopCondition::TimeReached`].
    pub fn until(self, t_end: f64) -> Self {
        self.stop_when(StopCondition::TimeReached(t_end))
    }

    /// Sugar for [`StopCondition::MaxSteps`].
    pub fn max_steps(self, n: usize) -> Self {
        self.stop_when(StopCondition::MaxSteps(n))
    }

    /// Attach a progress hook. Return `false` to abort the run cleanly
    /// (observers still see their `on_finish`; the summary reports
    /// [`StopReason::Aborted`]).
    pub fn on_progress(
        mut self,
        cadence: Cadence,
        hook: impl FnMut(&P, &StepInfo) -> bool + 'a,
    ) -> Self {
        cadence.validate();
        self.progress = Some((cadence, Box::new(hook)));
        self
    }

    /// Restore `sys` from a restart file: conserved state (bit-exact), Σ,
    /// march clock, and pinned dt. Returns the loaded snapshot so callers
    /// can inspect `t`/`step`.
    pub fn resume_from(sys: &mut P, path: impl AsRef<Path>) -> Result<Checkpoint, DriverError>
    where
        P: Checkpointable,
    {
        let ck = Checkpoint::load(path)?;
        sys.restore(&ck)?;
        Ok(ck)
    }

    /// Resume a *controlled* run: restore the snapshot, then **replay** its
    /// embedded action log against the freshly built solver (checkpoints
    /// carry fields/Σ/clock but not boundary conditions — the replay
    /// reconstructs engine knock-outs, gimbal ramps, and backpressure
    /// changes bit-identically from their recorded application times), and
    /// seed this driver's log so subsequent snapshots carry the full
    /// history. Returns the loaded snapshot.
    pub fn resume_controlled(
        &mut self,
        sys: &mut P,
        path: impl AsRef<Path>,
    ) -> Result<Checkpoint, DriverError>
    where
        P: Checkpointable + Actuate,
    {
        let ck = Checkpoint::load(path)?;
        sys.restore(&ck)?;
        crate::actions::replay(&ck.actions, sys).map_err(|e| DriverError::Action(e.to_string()))?;
        self.action_log = ck.actions.clone();
        self.recovery_log = ck.recoveries.clone();
        Ok(ck)
    }

    /// March `sys` until a stop condition holds. Every driver needs at
    /// least one of [`StopCondition::TimeReached`], [`StopCondition::MaxSteps`],
    /// or [`StopCondition::WallClock`] — guards alone would loop forever.
    ///
    /// Read-only entry point: panics if controllers are attached (they need
    /// [`Driver::run_controlled`], whose solver bound can apply actions).
    pub fn run(&mut self, sys: &mut P) -> Result<RunSummary, DriverError>
    where
        P: Probe,
    {
        assert!(
            self.controllers.is_empty(),
            "controllers attached: use run_controlled (the solver must implement Actuate + Checkpointable)"
        );
        self.run_core(
            sys,
            &mut |_, _, _, _| unreachable!("no controllers in run()"),
            &mut |_, _| Ok(()),
        )
    }

    /// March `sys` with the full two-phase loop: observers (read-only),
    /// then controllers, whose returned [`Action`]s are applied **at the
    /// step boundary** in order — [`Action::RequestCheckpoint`] snapshots
    /// to the [`Driver::checkpoint_to`] path with the log embedded, every
    /// other action goes through [`Actuate::actuate`] — and appended to the
    /// driver's [`ActionLog`]. With an autosave cadence configured, the
    /// driver also snapshots periodically (same path, same atomic writer).
    pub fn run_controlled(&mut self, sys: &mut P) -> Result<RunSummary, DriverError>
    where
        P: Probe + Actuate + Checkpointable,
    {
        let ck_path = self.checkpoint.as_ref().map(|(p, _)| p.clone());
        let apply_path = ck_path.clone();
        // Recovery log is immutable during a controlled run; clone it into
        // the save closures so resumed-then-controlled runs keep carrying
        // their rollback history (empty log ⇒ no trailer ⇒ unchanged bytes).
        let rec_log = self.recovery_log.clone();
        let rec_log_auto = rec_log.clone();
        self.run_core(
            sys,
            &mut move |sys: &mut P, action: &Action, info: &StepInfo, log: &mut ActionLog| {
                match action {
                    Action::RequestCheckpoint => {
                        let path = apply_path.as_ref().ok_or_else(|| {
                            DriverError::Action(
                                "RequestCheckpoint needs a checkpoint_to path".into(),
                            )
                        })?;
                        // Record the request BEFORE capturing, so the
                        // snapshot's embedded log covers it and a resumed
                        // run's log matches the uninterrupted run's.
                        log.record(info.step as u64, info.t, Action::RequestCheckpoint);
                        sys.capture()
                            .with_actions(log.clone())
                            .with_recoveries(rec_log.clone())
                            .save_atomic(path)?;
                    }
                    other => {
                        sys.actuate(other, info.t)
                            .map_err(|e| DriverError::Action(e.to_string()))?;
                        log.record(info.step as u64, info.t, other.clone());
                    }
                }
                Ok(())
            },
            &mut move |sys: &mut P, log: &ActionLog| {
                if let Some(path) = ck_path.as_ref() {
                    sys.capture()
                        .with_actions(log.clone())
                        .with_recoveries(rec_log_auto.clone())
                        .save_atomic(path)?;
                }
                Ok(())
            },
        )
    }

    /// The shared loop behind [`Driver::run`] and [`Driver::run_controlled`]:
    /// `apply` handles one controller action, `autosave` writes the
    /// periodic driver-level snapshot (both are no-ops / unreachable for
    /// read-only runs).
    pub(crate) fn run_core(
        &mut self,
        sys: &mut P,
        apply: &mut dyn FnMut(
            &mut P,
            &Action,
            &StepInfo,
            &mut ActionLog,
        ) -> Result<(), DriverError>,
        autosave: &mut dyn FnMut(&mut P, &ActionLog) -> Result<(), DriverError>,
    ) -> Result<RunSummary, DriverError>
    where
        P: Probe,
    {
        assert!(
            self.stops.iter().any(|s| matches!(
                s,
                StopCondition::TimeReached(_)
                    | StopCondition::MaxSteps(_)
                    | StopCondition::StepReached(_)
                    | StopCondition::WallClock(_)
                    | StopCondition::SteadyState { .. }
            )),
            "driver needs a terminating stop condition"
        );
        let wall0 = Instant::now();
        let now = Instant::now();
        let mut cadences: Vec<CadenceState> = self
            .observers
            .iter()
            .map(|_| CadenceState {
                last_t: sys.time(),
                last_wall: now,
            })
            .collect();
        let mut progress_state = CadenceState {
            last_t: sys.time(),
            last_wall: now,
        };
        let mut ctrl_states: Vec<CadenceState> = self
            .controllers
            .iter()
            .map(|_| CadenceState {
                last_t: sys.time(),
                last_wall: now,
            })
            .collect();
        let mut autosave_state = CadenceState {
            last_t: sys.time(),
            last_wall: now,
        };
        // The nearest t_end across TimeReached conditions bounds every dt.
        let t_end = self
            .stops
            .iter()
            .filter_map(|s| match s {
                StopCondition::TimeReached(t) => Some(*t),
                _ => None,
            })
            .fold(None::<f64>, |acc, t| Some(acc.map_or(t, |a: f64| a.min(t))));
        let mut last_ke: Option<f64> = None;
        let mut last_div_ke: Option<f64> = None;
        let mut steps_this_run = 0usize;

        let finish = |observers: &mut Vec<(Cadence, Box<dyn Observer<P> + 'a>)>,
                      sys: &P,
                      stop: StopReason,
                      steps: usize,
                      wall0: Instant|
         -> Result<RunSummary, DriverError> {
            for (_, obs) in observers.iter_mut() {
                obs.on_finish(sys)?;
            }
            Ok(RunSummary {
                steps,
                t: sys.time(),
                stop,
                wall_s: wall0.elapsed().as_secs_f64(),
            })
        };

        loop {
            // Pre-step termination checks (a zero-step run is legal).
            if let Some(te) = t_end {
                if sys.time() >= te {
                    return finish(
                        &mut self.observers,
                        sys,
                        StopReason::TimeReached,
                        steps_this_run,
                        wall0,
                    );
                }
            }
            for s in &self.stops {
                match s {
                    StopCondition::MaxSteps(n) if steps_this_run >= *n => {
                        return finish(
                            &mut self.observers,
                            sys,
                            StopReason::MaxSteps,
                            steps_this_run,
                            wall0,
                        );
                    }
                    StopCondition::StepReached(n) if sys.steps_taken() >= *n => {
                        return finish(
                            &mut self.observers,
                            sys,
                            StopReason::StepReached,
                            steps_this_run,
                            wall0,
                        );
                    }
                    StopCondition::WallClock(d) if wall0.elapsed() >= *d => {
                        return finish(
                            &mut self.observers,
                            sys,
                            StopReason::WallClock,
                            steps_this_run,
                            wall0,
                        );
                    }
                    _ => {}
                }
            }

            // Step, clipping dt so a TimeReached run never overshoots
            // (identical arithmetic to the old `run_until`: the pinned-or-CFL
            // dt is min'ed against the remaining time).
            let info = if let Some(te) = t_end {
                let prev_fixed = sys.fixed_dt();
                let dt = prev_fixed.unwrap_or_else(|| sys.stable_dt());
                sys.set_fixed_dt(Some(dt.min(te - sys.time())));
                let r = sys.step();
                sys.set_fixed_dt(prev_fixed);
                r?
            } else {
                sys.step()?
            };
            steps_this_run += 1;

            // Observers fire after the step.
            for ((cadence, obs), state) in self.observers.iter_mut().zip(&mut cadences) {
                if cadence.fires(state, &info) {
                    obs.on_step(sys, &info)?;
                }
            }
            if let Some((cadence, hook)) = &mut self.progress {
                if cadence.fires(&mut progress_state, &info) && !hook(sys, &info) {
                    return finish(
                        &mut self.observers,
                        sys,
                        StopReason::Aborted,
                        steps_this_run,
                        wall0,
                    );
                }
            }

            // Phase two: controllers observe, then their actions apply at
            // this step boundary (before the next step begins) and are
            // appended to the log.
            if !self.controllers.is_empty() {
                let mut pending: Vec<Action> = Vec::new();
                for ((cadence, ctrl), state) in self.controllers.iter_mut().zip(&mut ctrl_states) {
                    if cadence.fires(state, &info) {
                        pending.extend(ctrl.control(sys, &info));
                    }
                }
                for action in &pending {
                    apply(sys, action, &info, &mut self.action_log)?;
                }
            }
            if let Some((_, Some(cadence))) = &self.checkpoint {
                if cadence.fires(&mut autosave_state, &info) {
                    autosave(sys, &self.action_log)?;
                }
            }

            // Post-step guards and steady-state detection.
            for s in &self.stops {
                match s {
                    StopCondition::NanGuard { every } if info.step % every == 0 => {
                        if let Some((var, pos)) = sys.find_non_finite() {
                            return Err(SolverError::NonFinite {
                                step: info.step,
                                var,
                                pos,
                            }
                            .into());
                        }
                    }
                    StopCondition::SteadyState { every, tol } if info.step % every == 0 => {
                        let ke = sys.probe().kinetic_energy;
                        if let Some(prev) = last_ke {
                            let rel = (ke - prev).abs() / prev.abs().max(f64::MIN_POSITIVE);
                            if rel < *tol {
                                return finish(
                                    &mut self.observers,
                                    sys,
                                    StopReason::SteadyState,
                                    steps_this_run,
                                    wall0,
                                );
                            }
                        }
                        last_ke = Some(ke);
                    }
                    StopCondition::DivergenceGuard { every, max_growth }
                        if info.step % every == 0 =>
                    {
                        let sample = sys.probe();
                        let ke = sample.kinetic_energy;
                        let blown = !ke.is_finite()
                            || !sample.min_rho.is_finite()
                            || sample.min_rho <= 0.0
                            || matches!(last_div_ke, Some(prev) if prev > 0.0 && ke > prev * max_growth);
                        if blown {
                            return Err(DriverError::Diverged {
                                step: info.step,
                                kinetic_energy: ke,
                                prev: last_div_ke.unwrap_or(f64::NAN),
                            });
                        }
                        last_div_ke = Some(ke);
                    }
                    _ => {}
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases;
    use igr_prec::{StoreF32, StoreF64};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("igr_driver_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn until_hits_t_end_exactly_and_matches_run_until() {
        let case = cases::steepening_wave(96, 0.3);
        let mut a = case.igr_solver::<f64, StoreF64>();
        let mut b = case.igr_solver::<f64, StoreF64>();
        a.run_until(0.08, 10_000).unwrap();
        let summary = Driver::new()
            .until(0.08)
            .max_steps(10_000)
            .run(&mut b)
            .unwrap();
        assert_eq!(summary.stop, StopReason::TimeReached);
        assert_eq!(
            a.t().to_bits(),
            b.t().to_bits(),
            "same clipped-dt arithmetic"
        );
        assert_eq!(
            a.q.max_diff(&b.q),
            0.0,
            "driver must replay run_until bitwise"
        );
    }

    #[test]
    fn observers_fire_on_their_cadence() {
        let case = cases::steepening_wave(48, 0.2);
        let mut solver = case.igr_solver::<f64, StoreF64>();
        let mut hist = History::new();
        let mut every_step = 0usize;
        Driver::new()
            .max_steps(12)
            .observe(Cadence::EverySteps(4), DiagnosticsObserver::new(&mut hist))
            .observe(
                Cadence::EveryStep,
                FnObserver(|_: &_, _: &StepInfo| {
                    every_step += 1;
                    Ok(())
                }),
            )
            .run(&mut solver)
            .unwrap();
        assert_eq!(every_step, 12);
        assert_eq!(hist.samples.len(), 3, "steps 4, 8, 12");
        assert_eq!(hist.samples[0].step, 4);
        assert_eq!(hist.samples[2].step, 12);
    }

    #[test]
    fn sim_time_cadence_fires_at_intervals() {
        let case = cases::steepening_wave(48, 0.2);
        let mut solver = case.igr_solver::<f64, StoreF64>();
        let mut fired: Vec<f64> = Vec::new();
        Driver::new()
            .until(0.05)
            .max_steps(10_000)
            .observe(
                Cadence::EveryTime(0.01),
                FnObserver(|_: &_, info: &StepInfo| {
                    fired.push(info.t);
                    Ok(())
                }),
            )
            .run(&mut solver)
            .unwrap();
        assert!(
            fired.len() >= 4 && fired.len() <= 6,
            "~5 firings: {fired:?}"
        );
        for w in fired.windows(2) {
            assert!(w[1] - w[0] >= 0.01 - 1e-12, "firings at least Δt apart");
        }
    }

    #[test]
    fn checkpoint_observer_resume_is_bitwise() {
        let case = cases::steepening_wave(64, 0.25);
        let path = tmp("driver_autosave.ckpt");
        let _ = std::fs::remove_file(&path);

        let mut straight = case.igr_solver::<f64, StoreF64>();
        Driver::new().max_steps(10).run(&mut straight).unwrap();

        let mut first = case.igr_solver::<f64, StoreF64>();
        let mut driver = Driver::new()
            .max_steps(6)
            .observe(Cadence::EverySteps(3), CheckpointObserver::autosave(&path));
        driver.run(&mut first).unwrap();

        let mut resumed = case.igr_solver::<f64, StoreF64>();
        let ck = Driver::<_>::resume_from(&mut resumed, &path).unwrap();
        assert_eq!(ck.step, 6, "autosave overwrote down to the latest step");
        Driver::new().max_steps(4).run(&mut resumed).unwrap();
        assert_eq!(resumed.steps_taken(), 10);
        assert_eq!(
            straight.q.max_diff(&resumed.q),
            0.0,
            "resume must reproduce the uninterrupted run bitwise"
        );
    }

    #[test]
    fn species_solver_drives_probes_and_resumes() {
        use igr_core::config::EllipticKind;
        use igr_grid::{Domain, GridShape};
        use igr_species::eos::MixPrim;
        use igr_species::{species_solver, SpeciesConfig, SpeciesState};

        let shape = GridShape::new(48, 1, 1, 3);
        let domain = Domain::unit(shape);
        let cfg = SpeciesConfig {
            elliptic: EllipticKind::GaussSeidel,
            ..Default::default()
        };
        let make = || {
            let mut q = SpeciesState::zeros(shape);
            let w = 4.0 / 48.0;
            q.set_prim_field(&domain, &cfg.eos, |p| {
                let a = (0.5 * ((p[0] - 0.3) / w).tanh() - 0.5 * ((p[0] - 0.7) / w).tanh())
                    .clamp(0.0, 1.0);
                MixPrim::new([a, (1.0 - a) * 0.138], [0.5, 0.0, 0.0], 1.0, a)
            });
            species_solver::<f64, StoreF64>(cfg.clone(), domain, q)
        };

        let mut straight = make();
        let mut hist = History::new();
        Driver::new()
            .max_steps(8)
            .observe(Cadence::EverySteps(2), DiagnosticsObserver::new(&mut hist))
            .run(&mut straight)
            .unwrap();
        assert_eq!(hist.samples.len(), 4);
        assert!(hist.samples[0].kinetic_energy > 0.0);
        assert!(hist.samples[0].min_rho > 0.0);
        // Periodic box: mixture mass conserved across the series.
        let (m0, m1) = (hist.samples[0].totals[0], hist.samples[3].totals[0]);
        assert!((m1 - m0).abs() < 1e-12 * m0.abs());

        // Mid-run snapshot → fresh solver → bitwise-equal final state.
        let path = tmp("driver_species.ckpt");
        let mut first = make();
        let mut driver = Driver::new()
            .max_steps(4)
            .observe(Cadence::EverySteps(4), CheckpointObserver::autosave(&path));
        driver.run(&mut first).unwrap();
        let mut resumed = make();
        Driver::<_>::resume_from(&mut resumed, &path).unwrap();
        Driver::new().max_steps(4).run(&mut resumed).unwrap();
        assert_eq!(straight.q.max_diff(&resumed.q), 0.0);
    }

    #[test]
    fn f32_storage_resume_is_bitwise() {
        let case = cases::steepening_wave(48, 0.25);
        let path = tmp("driver_f32.ckpt");
        let mut straight = case.igr_solver::<f32, StoreF32>();
        Driver::new().max_steps(8).run(&mut straight).unwrap();

        let mut first = case.igr_solver::<f32, StoreF32>();
        let mut driver = Driver::new()
            .max_steps(4)
            .observe(Cadence::EverySteps(4), CheckpointObserver::autosave(&path));
        driver.run(&mut first).unwrap();
        let mut resumed = case.igr_solver::<f32, StoreF32>();
        Driver::<_>::resume_from(&mut resumed, &path).unwrap();
        Driver::new().max_steps(4).run(&mut resumed).unwrap();
        assert_eq!(straight.q.max_diff(&resumed.q), 0.0);
    }

    #[test]
    fn metrics_and_trace_observers_record_phase_timings() {
        let case = cases::steepening_wave(48, 0.2);
        let mut solver = case.igr_solver::<f64, StoreF64>();
        let mut hist = History::new();
        let trace_path = tmp("driver_trace.json");
        let _ = std::fs::remove_file(&trace_path);
        Driver::new()
            .max_steps(6)
            .observe(Cadence::EverySteps(3), MetricsObserver::new(&mut hist))
            .observe(Cadence::EveryStep, TraceObserver::chrome(&trace_path))
            .run(&mut solver)
            .unwrap();

        assert_eq!(hist.phase_samples.len(), 2, "fired on steps 3 and 6");
        let names: std::collections::BTreeSet<&str> = hist.phase_samples[0]
            .phases
            .iter()
            .map(|(n, _, _)| n.as_str())
            .collect();
        for phase in [
            "solver.step",
            "ghost.fill_state",
            "igr.source",
            "sigma.sweep",
            "flux.sweep",
        ] {
            assert!(names.contains(phase), "missing phase {phase}: {names:?}");
        }
        for (_, secs, spans) in &hist.phase_samples[0].phases {
            assert!(*secs >= 0.0 && *spans > 0);
        }
        let csv = hist.phases_to_csv();
        assert!(csv.starts_with("step,t,phase,seconds,spans\n"));
        assert!(csv.contains("flux.sweep"));

        let trace = std::fs::read_to_string(&trace_path).unwrap();
        assert!(
            trace.trim_start().starts_with('['),
            "chrome trace is a JSON array"
        );
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("solver.step"));
        igr_obs::Registry::global().set_capture_events(false);
    }

    #[test]
    fn nan_guard_catches_injected_divergence() {
        let case = cases::steepening_wave(48, 0.2);
        let mut solver = case.igr_solver::<f64, StoreF64>();
        solver.nan_check_every = 0; // benchmark-style: solver's own check off
        let mut poisoned = false;
        let result = Driver::new()
            .max_steps(50)
            .observe(
                Cadence::EverySteps(3),
                FnObserver(|_: &_, _: &StepInfo| {
                    poisoned = true;
                    Ok(())
                }),
            )
            .stop_when(StopCondition::NanGuard { every: 1 })
            .run(&mut {
                solver.q.en.set(5, 0, 0, f64::NAN);
                solver
            });
        match result {
            Err(DriverError::Solver(SolverError::NonFinite { .. })) => {}
            other => panic!("expected NonFinite, got {other:?}"),
        }
    }

    #[test]
    fn steady_state_stop_triggers_on_settled_flow() {
        // A uniform-flow periodic box is exactly steady: KE never changes.
        use igr_core::eos::Prim;
        use igr_core::{IgrConfig, State};
        use igr_grid::{Domain, GridShape};
        let shape = GridShape::new(32, 1, 1, 3);
        let domain = Domain::unit(shape);
        let cfg = IgrConfig::default();
        let mut q: State<f64, StoreF64> = State::zeros(shape);
        q.set_prim_field(&domain, cfg.gamma, |_| Prim::new(1.0, [0.5, 0.0, 0.0], 1.0));
        let mut solver = igr_core::solver::igr_solver(cfg, domain, q);
        let summary = Driver::new()
            .max_steps(1000)
            .stop_when(StopCondition::SteadyState {
                every: 2,
                tol: 1e-12,
            })
            .run(&mut solver)
            .unwrap();
        assert_eq!(summary.stop, StopReason::SteadyState);
        assert!(summary.steps <= 6, "two probes suffice: {}", summary.steps);
    }

    #[test]
    fn progress_hook_can_abort() {
        let case = cases::steepening_wave(48, 0.2);
        let mut solver = case.igr_solver::<f64, StoreF64>();
        let summary = Driver::new()
            .max_steps(100)
            .on_progress(Cadence::EveryStep, |_: &_, info: &StepInfo| info.step < 7)
            .run(&mut solver)
            .unwrap();
        assert_eq!(summary.stop, StopReason::Aborted);
        assert_eq!(summary.steps, 7);
    }

    #[test]
    fn wall_clock_budget_stops_the_run() {
        let case = cases::steepening_wave(48, 0.2);
        let mut solver = case.igr_solver::<f64, StoreF64>();
        let summary = Driver::new()
            .max_steps(1_000_000)
            .stop_when(StopCondition::WallClock(Duration::from_millis(50)))
            .run(&mut solver)
            .unwrap();
        assert_eq!(summary.stop, StopReason::WallClock);
        assert!(summary.wall_s < 5.0);
    }

    #[test]
    fn controlled_run_applies_scheduled_actions_and_logs_them() {
        let case = cases::engine_row_2d(48, 3, crate::jets::JetConditions::mach10());
        let mut solver = case.igr_solver::<f64, StoreF64>();
        let mut driver = Driver::new().max_steps(6).control(
            Cadence::EveryStep,
            ScheduledActions::new(vec![
                (2, Action::EngineOut { engine: 1 }),
                (4, Action::SetFixedDt { dt: Some(1e-4) }),
            ]),
        );
        driver.run_controlled(&mut solver).unwrap();
        let log = driver.action_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log.records()[0].step, 2);
        assert!(matches!(
            log.records()[0].action,
            Action::EngineOut { engine: 1 }
        ));
        assert_eq!(log.records()[1].step, 4);
        assert_eq!(solver.fixed_dt, Some(1e-4), "dt policy applied");
        // Run again: the same driver keeps accumulating into one log.
        driver.run_controlled(&mut solver).unwrap();
        assert_eq!(driver.action_log().len(), 2, "schedule already drained");
    }

    #[test]
    fn run_panics_when_controllers_are_attached() {
        let result = std::panic::catch_unwind(|| {
            let case = cases::steepening_wave(32, 0.2);
            let mut solver = case.igr_solver::<f64, StoreF64>();
            Driver::new()
                .max_steps(2)
                .control(Cadence::EveryStep, ScheduledActions::new(vec![]))
                .run(&mut solver)
                .unwrap();
        });
        assert!(result.is_err(), "run() must direct to run_controlled");
    }

    #[test]
    fn controlled_resume_replays_the_action_log_bitwise() {
        let case = cases::engine_row_2d(48, 3, crate::jets::JetConditions::mach10());
        let path = tmp("driver_controlled.ckpt");
        let _ = std::fs::remove_file(&path);
        let schedule = || {
            ScheduledActions::new(vec![
                (
                    2,
                    Action::SetGimbal {
                        engine: 0,
                        target: [0.12, 0.0],
                        rate: 2.0,
                    },
                ),
                (3, Action::EngineOut { engine: 2 }),
                (5, Action::RequestCheckpoint),
                (7, Action::SetBackpressure { pressure: 0.6 }),
            ])
        };

        // Uninterrupted controlled run: 10 steps, checkpoint at step 5.
        let mut straight = case.igr_solver::<f64, StoreF64>();
        let mut d1 = Driver::new()
            .max_steps(10)
            .checkpoint_to(&path, None)
            .control(Cadence::EveryStep, schedule());
        d1.run_controlled(&mut straight).unwrap();
        assert_eq!(d1.action_log().len(), 4);

        // Resume from the step-5 snapshot with the tail of the schedule.
        let ck = Checkpoint::load(&path).unwrap();
        assert_eq!(ck.step, 5);
        assert_eq!(ck.actions.len(), 3, "log up to and incl. the request");
        let mut resumed = case.igr_solver::<f64, StoreF64>();
        let mut d2 = Driver::new()
            .max_steps(5)
            .control(Cadence::EveryStep, schedule().skip_through(5));
        d2.resume_controlled(&mut resumed, &path).unwrap();
        d2.run_controlled(&mut resumed).unwrap();

        assert_eq!(resumed.steps_taken(), 10);
        assert_eq!(
            straight.q.max_diff(&resumed.q),
            0.0,
            "controlled resume must be bitwise"
        );
        assert_eq!(
            d2.action_log(),
            d1.action_log(),
            "resumed log matches the uninterrupted log bit-exactly"
        );
    }

    #[test]
    fn gimbal_feedback_counters_an_engine_out() {
        // After knocking out an outer engine the backflow centroid shifts;
        // the proportional controller must emit gimbal commands steering
        // against the offset (commands are clamped and deadbanded).
        let case = cases::engine_row_2d(64, 3, crate::jets::JetConditions::mach10());
        let mut solver = case.igr_solver::<f64, StoreF64>();
        let mut driver = Driver::new()
            .max_steps(30)
            .control(
                Cadence::EveryStep,
                ScheduledActions::new(vec![(10, Action::EngineOut { engine: 0 })]),
            )
            .control(
                Cadence::EverySteps(5),
                GimbalFeedbackController::with_gain(1.5),
            );
        driver.run_controlled(&mut solver).unwrap();
        let log = driver.action_log();
        let gimbal_cmds: Vec<_> = log
            .records()
            .iter()
            .filter(|r| matches!(r.action, Action::SetGimbal { .. }))
            .collect();
        assert!(
            !gimbal_cmds.is_empty(),
            "controller issued no commands: {log:?}"
        );
        for r in &gimbal_cmds {
            if let Action::SetGimbal { target, .. } = r.action {
                assert!(target[0].abs() <= 0.35 && target[1].abs() <= 0.35);
            }
        }
    }

    #[test]
    fn vtk_observer_writes_step_numbered_snapshots() {
        let case = cases::steepening_wave(24, 0.2);
        let mut solver = case.igr_solver::<f64, StoreF64>();
        let dir = std::env::temp_dir().join("igr_driver_vtk");
        std::fs::create_dir_all(&dir).unwrap();
        let vtk = VtkObserver::new(&dir, "wave", "driver test");
        let mut driver = Driver::new()
            .max_steps(4)
            .observe(Cadence::EverySteps(2), vtk);
        driver.run(&mut solver).unwrap();
        // Ownership moved into the driver; verify via the filesystem.
        for step in [2, 4] {
            let p = dir.join(format!("wave_{step:06}.vtk"));
            assert!(p.exists(), "{p:?} missing");
            std::fs::remove_file(p).unwrap();
        }
    }
}
