//! The case library: every workload the paper's evaluation uses.

use crate::jets::{three_engine_row, JetArrayInflow, JetConditions};
use igr_baseline::scheme::WenoConfig;
use igr_core::bc::{Bc, BcSet};
use igr_core::eos::Prim;
use igr_core::{IgrConfig, State};
use igr_grid::{Axis, Domain, GridShape};
use igr_prec::{Real, Storage};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A fully specified problem: geometry, physics parameters, boundary
/// conditions, and initial state. Both schemes (IGR and the WENO baseline)
/// consume the same setup, which is what makes Table 3/Fig. 5-style
/// comparisons apples-to-apples.
#[derive(Clone)]
pub struct CaseSetup {
    pub name: String,
    pub domain: Domain,
    pub gamma: f64,
    pub mu: f64,
    pub zeta: f64,
    pub bc: BcSet,
    pub init: Arc<dyn Fn([f64; 3]) -> Prim<f64> + Send + Sync>,
    /// The engine-array inflow for jet cases (None for non-jet workloads) —
    /// diagnostics like [`crate::base::BaseHeatingReport`] need the layout.
    pub jet_inflow: Option<Arc<JetArrayInflow>>,
}

impl CaseSetup {
    /// IGR configuration for this case (paper defaults elsewhere).
    pub fn igr_config(&self) -> IgrConfig {
        IgrConfig {
            gamma: self.gamma,
            mu: self.mu,
            zeta: self.zeta,
            bc: self.bc.clone(),
            ..IgrConfig::default()
        }
    }

    /// Baseline configuration for this case.
    pub fn weno_config(&self) -> WenoConfig {
        WenoConfig {
            gamma: self.gamma,
            mu: self.mu,
            zeta: self.zeta,
            bc: self.bc.clone(),
            ..WenoConfig::default()
        }
    }

    /// Initial state in the requested precision.
    pub fn init_state<R: Real, S: Storage<R>>(&self) -> State<R, S> {
        let mut q = State::zeros(self.domain.shape);
        let f = &self.init;
        q.set_prim_field(&self.domain, self.gamma, |p| f(p));
        q
    }

    /// Ready-to-run IGR solver.
    pub fn igr_solver<R: Real, S: Storage<R>>(
        &self,
    ) -> igr_core::solver::Solver<R, S, igr_core::IgrScheme<R, S>, igr_core::solver::BcGhostOps>
    {
        igr_core::solver::igr_solver(self.igr_config(), self.domain, self.init_state())
    }

    /// Ready-to-run WENO+HLLC baseline solver.
    pub fn weno_solver<R: Real, S: Storage<R>>(
        &self,
    ) -> igr_core::solver::Solver<
        R,
        S,
        igr_baseline::WenoHllcScheme<R, S>,
        igr_core::solver::BcGhostOps,
    > {
        igr_baseline::scheme::weno_solver(self.weno_config(), self.domain, self.init_state())
    }
}

/// Sod shock tube on `[0, 1]` (validation ground truth via the exact
/// Riemann solver).
///
/// The initial jump is smoothed over two cells: a zero-width discontinuity
/// is not an admissible state for the *regularized* equations (its O(1/Δx)
/// gradient pumps a transient Σ spike whose acoustic remnant pollutes the
/// solution), and the smoothing is an O(Δx) perturbation of the exact-
/// solution comparison. Use [`sod_sharp`] for schemes that want the raw jump.
pub fn sod(n: usize) -> CaseSetup {
    let mut case = sod_sharp(n);
    let w = 2.0 / n as f64;
    case.init = Arc::new(move |p| {
        let blend = 0.5 * (1.0 - ((p[0] - 0.5) / w).tanh());
        Prim::new(0.125 + 0.875 * blend, [0.0; 3], 0.1 + 0.9 * blend)
    });
    case
}

/// Sod tube with the textbook zero-width initial discontinuity.
pub fn sod_sharp(n: usize) -> CaseSetup {
    let shape = GridShape::new(n, 1, 1, 3);
    CaseSetup {
        name: "sod".into(),
        domain: Domain::unit(shape),
        gamma: 1.4,
        mu: 0.0,
        zeta: 0.0,
        bc: BcSet::all_outflow(),
        init: Arc::new(|p| {
            if p[0] < 0.5 {
                Prim::new(1.0, [0.0; 3], 1.0)
            } else {
                Prim::new(0.125, [0.0; 3], 0.1)
            }
        }),
        jet_inflow: None,
    }
}

/// A steepening wave that forms a shock — Fig. 2(a)'s "shock problem".
/// `amp` sets the velocity amplitude (shock formation at t* ≈ 1/(amp·2π)).
pub fn steepening_wave(n: usize, amp: f64) -> CaseSetup {
    let shape = GridShape::new(n, 1, 1, 3);
    CaseSetup {
        name: "steepening-wave".into(),
        domain: Domain::unit(shape),
        gamma: 1.4,
        mu: 0.0,
        zeta: 0.0,
        bc: BcSet::all_periodic(),
        init: Arc::new(move |p| {
            Prim::new(
                1.0,
                [amp * (std::f64::consts::TAU * p[0]).sin(), 0.0, 0.0],
                1.0,
            )
        }),
        jet_inflow: None,
    }
}

/// Shu–Osher shock/entropy-wave interaction on `[-5, 5]`: a Mach-3 shock
/// runs into a sinusoidal density field. The canonical stress test of
/// Fig. 2's claim — a method must carry a strong shock *and* preserve the
/// oscillatory waves it excites downstream. Run to `t = 1.8`.
pub fn shu_osher(n: usize) -> CaseSetup {
    let shape = GridShape::new(n, 1, 1, 3);
    let domain = Domain::new([-5.0, 0.0, 0.0], [5.0, 1.0, 1.0], shape);
    let w = 2.0 * domain.dx(Axis::X); // admissible-data smoothing, as in sod()
    CaseSetup {
        name: "shu-osher".into(),
        domain,
        gamma: 1.4,
        mu: 0.0,
        zeta: 0.0,
        bc: BcSet::all_outflow(),
        init: Arc::new(move |p| {
            let x = p[0];
            let blend = 0.5 * (1.0 - ((x + 4.0) / w).tanh()); // 1 left of -4
            let rho_r = 1.0 + 0.2 * (5.0 * x).sin();
            Prim::new(
                rho_r + blend * (3.857143 - rho_r),
                [blend * 2.629369, 0.0, 0.0],
                1.0 + blend * (10.33333 - 1.0),
            )
        }),
        jet_inflow: None,
    }
}

/// A small-amplitude high-wavenumber acoustic packet — Fig. 2(b)'s
/// "oscillatory problem". Right-running simple wave with `k` periods.
pub fn acoustic_packet(n: usize, k: usize, amp: f64) -> CaseSetup {
    let shape = GridShape::new(n, 1, 1, 3);
    let gamma = 1.4;
    CaseSetup {
        name: "acoustic-packet".into(),
        domain: Domain::unit(shape),
        gamma,
        mu: 0.0,
        zeta: 0.0,
        bc: BcSet::all_periodic(),
        init: Arc::new(move |p| {
            let s = amp * (std::f64::consts::TAU * k as f64 * p[0]).sin();
            // Linear acoustic relations around (rho, p) = (1, 1).
            let c = (gamma * 1.0f64 / 1.0).sqrt();
            Prim::new(1.0 + s, [c * s, 0.0, 0.0], 1.0 + gamma * s)
        }),
        jet_inflow: None,
    }
}

/// 2-D isentropic vortex (periodic; exact solution is pure advection) —
/// the smooth-accuracy workhorse.
pub fn isentropic_vortex(n: usize) -> CaseSetup {
    let shape = GridShape::new(n, n, 1, 3);
    let gamma = 1.4;
    CaseSetup {
        name: "isentropic-vortex".into(),
        domain: Domain::new([-5.0, -5.0, 0.0], [5.0, 5.0, 1.0], shape),
        gamma,
        mu: 0.0,
        zeta: 0.0,
        bc: BcSet::all_periodic(),
        init: Arc::new(move |p| {
            let (x, y) = (p[0], p[1]);
            let beta = 5.0;
            let r2 = x * x + y * y;
            let factor = beta / std::f64::consts::TAU * (0.5 * (1.0 - r2)).exp();
            let du = -y * factor;
            let dv = x * factor;
            let dt_temp = -(gamma - 1.0) * beta * beta
                / (8.0 * gamma * std::f64::consts::PI * std::f64::consts::PI)
                * (1.0 - r2).exp();
            let temp = 1.0 + dt_temp;
            let rho = temp.powf(1.0 / (gamma - 1.0));
            let pres = temp.powf(gamma / (gamma - 1.0));
            Prim::new(rho, [1.0 + du, 0.5 + dv, 0.0], pres)
        }),
        jet_inflow: None,
    }
}

/// The representative Table 3 workload: a single Mach-10 jet entering a
/// 3-D box through the x=0 face. `n` is the resolution across the box; the
/// jet diameter spans ~n/4 cells.
pub fn single_jet_3d(n: usize) -> CaseSetup {
    let shape = GridShape::new(2 * n, n, n, 3);
    let domain = Domain::new([0.0, -0.5, -0.5], [2.0, 0.5, 0.5], shape);
    jet_case(
        "single-jet-3d",
        domain,
        crate::jets::single_engine(0.125),
        (1, 2),
        0,
    )
}

/// The Fig. 5 configuration: three engines in a row, 2-D (one cell deep in
/// z), exhausting along +y from the y=0 face, seeded with smooth random
/// noise (the paper seeds "with smooth, random noise in all cases").
pub fn three_engine_2d(n: usize, noise_amp: f64, seed: u64) -> CaseSetup {
    let shape = GridShape::new(2 * n, n, 1, 3);
    // z is the degenerate axis; center it on the engine plane (z = 0) so
    // the in-plane distance of the inflow profile carries no z offset.
    let domain = Domain::new([-1.0, 0.0, -0.5], [1.0, 1.0, 0.5], shape);
    let mut case = jet_case(
        "three-engine-2d",
        domain,
        three_engine_row(0.08, 0.3),
        (0, 2),
        1,
    );
    // Smooth random noise: a few low-wavenumber modes with random phases.
    let mut rng = StdRng::seed_from_u64(seed);
    let modes: Vec<(f64, f64, f64)> = (0..6)
        .map(|_| {
            (
                rng.gen_range(1.0..4.0f64).round(),
                rng.gen_range(1.0..4.0f64).round(),
                rng.gen_range(0.0..std::f64::consts::TAU),
            )
        })
        .collect();
    let base = case.init.clone();
    case.init = Arc::new(move |p| {
        let mut s = 0.0;
        for &(kx, ky, ph) in &modes {
            s += (std::f64::consts::TAU * (kx * p[0] + ky * p[1]) + ph).sin();
        }
        let pr = base(p);
        Prim::new(
            pr.rho * (1.0 + noise_amp * s / 6.0),
            pr.vel,
            pr.p * (1.0 + noise_amp * s / 6.0),
        )
    });
    case
}

/// The headline demonstration: the 33-engine Super-Heavy-inspired array
/// exhausting along +z, at laptop scale. `n` cells across the booster
/// diameter.
pub fn super_heavy_3d(n: usize) -> CaseSetup {
    let shape = GridShape::new(n, n, n, 3);
    let domain = Domain::new([-1.5, -1.5, 0.0], [1.5, 1.5, 3.0], shape);
    jet_case(
        "super-heavy-33",
        domain,
        crate::jets::super_heavy_33(1.0),
        (0, 1),
        2,
    )
}

/// A 2-D row of `n_engines` engines exhausting along +y at the given
/// conditions — the base-heating sweep workload (engine count × altitude,
/// the parameter plane §3 of the paper motivates; prior work topped out at
/// 7 engines).
pub fn engine_row_2d(n: usize, n_engines: usize, conditions: JetConditions) -> CaseSetup {
    assert!(n_engines >= 1);
    let shape = GridShape::new(2 * n, n, 1, 3);
    let domain = Domain::new([-1.0, 0.0, -0.5], [1.0, 1.0, 0.5], shape);
    // Fit the row into [-0.75, 0.75] regardless of count.
    let radius = (0.5 / n_engines as f64).min(0.08);
    let pitch = if n_engines > 1 {
        1.5 / (n_engines as f64 - 1.0)
    } else {
        0.0
    };
    let engines = (0..n_engines)
        .map(|i| {
            let x = if n_engines == 1 {
                0.0
            } else {
                -0.75 + i as f64 * pitch
            };
            crate::jets::Engine::new([x, 0.0], radius)
        })
        .collect();
    jet_case_with("engine-row-2d", domain, engines, (0, 2), 1, conditions)
}

/// Three engines in a row with the outer two gimbaled *inward* by `angle`
/// radians — a steering configuration that squeezes the center plume and
/// intensifies plume–plume interaction.
pub fn three_engine_gimbaled_2d(n: usize, angle: f64) -> CaseSetup {
    let shape = GridShape::new(2 * n, n, 1, 3);
    let domain = Domain::new([-1.0, 0.0, -0.5], [1.0, 1.0, 0.5], shape);
    let mut engines = three_engine_row(0.08, 0.3);
    engines[0] = engines[0].with_gimbal([angle, 0.0]); // tilt toward +x
    engines[2] = engines[2].with_gimbal([-angle, 0.0]); // tilt toward -x
    jet_case_with(
        "three-engine-gimbaled-2d",
        domain,
        engines,
        (0, 2),
        1,
        JetConditions::mach10(),
    )
}

/// The 33-engine array with the engines at `out` shut down — the
/// engine-failure/landing-throttle scenario of §3.
pub fn super_heavy_engine_out(n: usize, out: &[usize]) -> CaseSetup {
    let shape = GridShape::new(n, n, n, 3);
    let domain = Domain::new([-1.5, -1.5, 0.0], [1.5, 1.5, 3.0], shape);
    let engines = crate::jets::without_engines(crate::jets::super_heavy_33(1.0), out);
    jet_case_with(
        "super-heavy-engine-out",
        domain,
        engines,
        (0, 1),
        2,
        JetConditions::mach10(),
    )
}

/// A 2-D jet case (one cell deep in z, exhausting along +y) with an
/// arbitrary engine set and conditions — the campaign engine's entry point
/// for derived scenarios (engine-out subsets, per-engine gimbal, altitude
/// backpressure) that have no dedicated constructor above.
pub fn engine_array_2d(
    name: impl Into<String>,
    n: usize,
    engines: Vec<crate::jets::Engine>,
    conditions: JetConditions,
) -> CaseSetup {
    let shape = GridShape::new(2 * n, n, 1, 3);
    let domain = Domain::new([-1.0, 0.0, -0.5], [1.0, 1.0, 0.5], shape);
    jet_case_with(name, domain, engines, (0, 2), 1, conditions)
}

/// A 3-D jet case (exhausting along +z from the z=0 face) with an arbitrary
/// engine set and conditions — the campaign-engine entry point at
/// Super-Heavy-like geometry.
pub fn engine_array_3d(
    name: impl Into<String>,
    n: usize,
    engines: Vec<crate::jets::Engine>,
    conditions: JetConditions,
) -> CaseSetup {
    let shape = GridShape::new(n, n, n, 3);
    let domain = Domain::new([-1.5, -1.5, 0.0], [1.5, 1.5, 3.0], shape);
    jet_case_with(name, domain, engines, (0, 1), 2, conditions)
}

fn jet_case(
    name: impl Into<String>,
    domain: Domain,
    engines: Vec<crate::jets::Engine>,
    plane_dims: (usize, usize),
    flow_dim: usize,
) -> CaseSetup {
    jet_case_with(
        name,
        domain,
        engines,
        plane_dims,
        flow_dim,
        JetConditions::mach10(),
    )
}

/// Assemble a jet [`CaseSetup`]: ambient initial state, outflow everywhere
/// except the engine-array inflow face.
pub fn jet_case_with(
    name: impl Into<String>,
    domain: Domain,
    engines: Vec<crate::jets::Engine>,
    plane_dims: (usize, usize),
    flow_dim: usize,
    conditions: JetConditions,
) -> CaseSetup {
    let dx = domain.dx(Axis::X);
    let inflow = Arc::new(JetArrayInflow {
        engines,
        conditions,
        plane_dims,
        flow_dim,
        lip_width: 2.0 * dx,
    });
    let flow_axis = [Axis::X, Axis::Y, Axis::Z][flow_dim];
    let bc = BcSet::all_outflow().with_face(flow_axis, 0, Bc::InflowProfile(inflow.clone()));
    let ambient = conditions.ambient;
    CaseSetup {
        name: name.into(),
        domain,
        gamma: conditions.gamma,
        mu: 0.0,
        zeta: 0.0,
        bc,
        init: Arc::new(move |_| ambient),
        jet_inflow: Some(inflow),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igr_prec::StoreF64;

    #[test]
    fn sod_initializes_the_two_states() {
        let case = sod_sharp(64);
        let q: State<f64, StoreF64> = case.init_state();
        let left = q.prim_at(5, 0, 0, case.gamma);
        let right = q.prim_at(60, 0, 0, case.gamma);
        assert!((left.rho - 1.0).abs() < 1e-14);
        assert!((right.rho - 0.125).abs() < 1e-14);
        assert!((right.p - 0.1).abs() < 1e-14);
    }

    #[test]
    fn acoustic_packet_is_a_right_running_simple_wave() {
        let case = acoustic_packet(64, 8, 1e-3);
        let q: State<f64, StoreF64> = case.init_state();
        // u and (rho - 1) must have the same sign everywhere (right-runner).
        for i in 0..64 {
            let pr = q.prim_at(i, 0, 0, case.gamma);
            let drho = pr.rho - 1.0;
            if drho.abs() > 1e-5 {
                assert!(pr.vel[0] * drho > 0.0, "cell {i}");
            }
        }
    }

    #[test]
    fn vortex_center_is_a_pressure_minimum() {
        let case = isentropic_vortex(32);
        let q: State<f64, StoreF64> = case.init_state();
        let center = q.prim_at(16, 16, 0, case.gamma);
        let corner = q.prim_at(0, 0, 0, case.gamma);
        assert!(center.p < corner.p);
        // Background advection velocity present.
        assert!((corner.vel[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn jet_cases_have_inflow_on_the_right_face() {
        let case = single_jet_3d(16);
        assert!(matches!(case.bc.face(Axis::X, 0), Bc::InflowProfile(_)));
        assert!(matches!(case.bc.face(Axis::X, 1), Bc::Outflow));
        let sh = three_engine_2d(16, 1e-3, 42);
        assert!(matches!(sh.bc.face(Axis::Y, 0), Bc::InflowProfile(_)));
        let sup = super_heavy_3d(16);
        assert!(matches!(sup.bc.face(Axis::Z, 0), Bc::InflowProfile(_)));
    }

    #[test]
    fn noise_seed_is_deterministic_and_seed_dependent() {
        let a: State<f64, StoreF64> = three_engine_2d(16, 1e-3, 1).init_state();
        let b: State<f64, StoreF64> = three_engine_2d(16, 1e-3, 1).init_state();
        let c: State<f64, StoreF64> = three_engine_2d(16, 1e-3, 2).init_state();
        assert_eq!(a.max_diff(&b), 0.0, "same seed, same field");
        assert!(a.max_diff(&c) > 0.0, "different seed, different field");
    }

    #[test]
    fn engine_row_fits_any_count_inside_the_domain() {
        for n_engines in [1usize, 3, 7, 11] {
            let case = engine_row_2d(32, n_engines, JetConditions::mach10());
            let inflow = case.jet_inflow.as_ref().unwrap();
            assert_eq!(inflow.engines.len(), n_engines);
            for e in &inflow.engines {
                assert!(
                    e.center[0].abs() + e.radius <= 0.85,
                    "engine at {:?}",
                    e.center
                );
            }
        }
    }

    #[test]
    fn gimbaled_case_tilts_only_the_outer_pair() {
        let case = three_engine_gimbaled_2d(32, 0.1);
        let engines = &case.jet_inflow.as_ref().unwrap().engines;
        assert_eq!(engines[0].gimbal, [0.1, 0.0]);
        assert_eq!(engines[1].gimbal, [0.0, 0.0]);
        assert_eq!(engines[2].gimbal, [-0.1, 0.0]);
    }

    #[test]
    fn engine_out_case_drops_the_requested_engines() {
        let full = super_heavy_3d(16);
        let out = super_heavy_engine_out(16, &[0, 1, 2]);
        let n_full = full.jet_inflow.as_ref().unwrap().engines.len();
        let n_out = out.jet_inflow.as_ref().unwrap().engines.len();
        assert_eq!(n_full, 33);
        assert_eq!(n_out, 30, "the three core engines are shut down");
    }

    #[test]
    fn altitude_case_carries_the_thin_ambient() {
        let case = engine_row_2d(32, 1, JetConditions::mach10_at_altitude(0.25));
        let q: State<f64, StoreF64> = case.init_state();
        let pr = q.prim_at(5, 20, 0, case.gamma);
        assert!((pr.p - 0.25).abs() < 1e-12, "ambient pressure {}", pr.p);
        assert!((pr.rho - 0.25).abs() < 1e-12);
    }

    #[test]
    fn shu_osher_initializes_shock_and_wavetrain() {
        let case = shu_osher(400);
        let q: State<f64, StoreF64> = case.init_state();
        let left = q.prim_at(5, 0, 0, case.gamma);
        assert!((left.rho - 3.857143).abs() < 1e-3);
        assert!((left.p - 10.33333).abs() < 1e-2);
        // Pre-shock sinusoid: rho(x) = 1 + 0.2 sin(5x) at x = 2.0125.
        let i = (0.7 * 400.0) as i32; // x = -5 + 10*0.70125-ish
        let x = case.domain.center(igr_grid::Axis::X, i);
        let pr = q.prim_at(i, 0, 0, case.gamma);
        assert!((pr.rho - (1.0 + 0.2 * (5.0 * x).sin())).abs() < 1e-12);
        assert!((pr.p - 1.0).abs() < 1e-12);
    }

    #[test]
    fn both_solvers_construct_and_step_on_a_small_case() {
        let case = steepening_wave(32, 0.1);
        let mut igr = case.igr_solver::<f64, StoreF64>();
        igr.step().unwrap();
        let mut weno = case.weno_solver::<f64, StoreF64>();
        weno.step().unwrap();
    }
}
